module Flow = Dpa_core.Flow
module Report = Dpa_core.Report
module Netlist = Dpa_logic.Netlist

let small_profile seed =
  { Dpa_workload.Generator.default with
    Dpa_workload.Generator.seed;
    n_inputs = 16;
    n_outputs = 5;
    gates_per_output = 8;
    and_bias = 0.35;
    inverter_prob = 0.1;
    reuse_fraction = 0.4 }

let test_flow_untimed () =
  let net = Dpa_workload.Generator.combinational (small_profile 1) in
  let r = Flow.compare_ma_mp net in
  Alcotest.(check int) "pis" 16 r.Flow.n_pi;
  Alcotest.(check int) "pos" 5 r.Flow.n_po;
  Alcotest.(check bool) "clockless" true (r.Flow.clock = None);
  Alcotest.(check bool) "both met untimed" true (r.Flow.ma.Flow.met && r.Flow.mp.Flow.met);
  (* MP is exhaustive here (5 ≤ 10) hence power-optimal: never worse *)
  Alcotest.(check string) "mp strategy" "exhaustive" r.Flow.mp.Flow.strategy;
  Alcotest.(check bool) "mp no worse" true (r.Flow.mp.Flow.power <= r.Flow.ma.Flow.power +. 1e-9);
  Alcotest.(check bool) "saving consistent" true
    (Testkit.approx ~eps:1e-6
       (Dpa_util.Stats.percent_change ~from:r.Flow.ma.Flow.power ~to_:r.Flow.mp.Flow.power)
       r.Flow.power_saving_pct)

let test_flow_timed () =
  let net = Dpa_workload.Generator.combinational (small_profile 2) in
  let config = { Flow.default_config with timing = Some Flow.default_timing } in
  let r = Flow.compare_ma_mp ~config net in
  (match r.Flow.clock with
  | None -> Alcotest.fail "expected a clock constraint"
  | Some clk ->
    Alcotest.(check bool) "positive clock" true (clk > 0.0);
    (* the 0.85 factor forces MA to resize; it must still close timing *)
    Alcotest.(check bool) "ma met" true r.Flow.ma.Flow.met;
    Alcotest.(check bool) "ma within clock" true (r.Flow.ma.Flow.critical_delay <= clk +. 1e-9))

let test_flow_exhaustive_mp_optimal () =
  (* with few outputs, MP's exhaustive search beats or ties every single
     alternative assignment *)
  let net = Dpa_workload.Generator.combinational (small_profile 3) in
  let r = Flow.compare_ma_mp net in
  let opt = Dpa_synth.Opt.optimize net in
  let probs = Array.make (Netlist.num_inputs opt) 0.5 in
  let measure = Dpa_phase.Measure.create ~input_probs:probs opt in
  Seq.iter
    (fun a ->
      let s = Dpa_phase.Measure.eval measure a in
      Alcotest.(check bool) "mp optimal" true (r.Flow.mp.Flow.power <= s.Dpa_phase.Measure.power +. 1e-9))
    (Dpa_synth.Phase.enumerate ~num_outputs:5)

let test_report_table () =
  let net = Dpa_workload.Generator.combinational (small_profile 4) in
  let r = Flow.compare_ma_mp net in
  let s = Report.table ~title:"Test table" [ ("Synthetic", r) ] in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  let contains needle = Testkit.contains_substring s needle in
  Alcotest.(check bool) "has average row" true (contains "Average");
  Alcotest.(check bool) "has circuit name" true (contains "synthetic")

let test_report_summary_and_averages () =
  let net = Dpa_workload.Generator.combinational (small_profile 5) in
  let r = Flow.compare_ma_mp net in
  let s = Report.summary r in
  Alcotest.(check bool) "summary nonempty" true (String.length s > 40);
  let pen, sav = Report.averages [ r; r ] in
  Testkit.check_approx "pen avg" r.Flow.area_penalty_pct pen;
  Testkit.check_approx "sav avg" r.Flow.power_saving_pct sav

let test_flow_rejects_empty () =
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  ignore a;
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Optimizer.minimize_power: network has no outputs") (fun () ->
      ignore (Flow.compare_ma_mp t))

let test_seq_flow () =
  let sn =
    Dpa_workload.Generator.sequential
      { (small_profile 8) with Dpa_workload.Generator.n_outputs = 3 }
      ~n_ffs:4
  in
  let r = Dpa_core.Seq_flow.compare_ma_mp sn in
  (* the combinational comparison covers primary outputs AND D pins *)
  Alcotest.(check int) "block outputs" 7 r.Dpa_core.Seq_flow.comb.Flow.n_po;
  Alcotest.(check int) "ff probabilities" 4 (Array.length r.Dpa_core.Seq_flow.ff_probs);
  Array.iter
    (fun p -> Alcotest.(check bool) "probability range" true (p >= 0.0 && p <= 1.0))
    r.Dpa_core.Seq_flow.ff_probs;
  Alcotest.(check bool) "fvs is valid" true
    (Dpa_seq.Mfvs.is_feedback_vertex_set
       (Dpa_seq.Sgraph.of_seq_netlist sn)
       r.Dpa_core.Seq_flow.fvs);
  (* 7 outputs ≤ the exhaustive limit, so MP is optimal and never worse *)
  Alcotest.(check bool) "mp no worse" true
    (r.Dpa_core.Seq_flow.comb.Flow.mp.Flow.power
    <= r.Dpa_core.Seq_flow.comb.Flow.ma.Flow.power +. 1e-9)

let test_report_csv () =
  let net = Dpa_workload.Generator.combinational (small_profile 6) in
  let r = Flow.compare_ma_mp net in
  let csv = Report.csv [ ("Synthetic", r) ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row" 2 (List.length lines);
  (match lines with
  | [ header; row ] ->
    Alcotest.(check int) "header columns" 17
      (List.length (String.split_on_char ',' header));
    Alcotest.(check int) "row columns" 17 (List.length (String.split_on_char ',' row));
    Alcotest.(check bool) "row names circuit" true
      (Testkit.contains_substring row r.Flow.circuit)
  | _ -> Alcotest.fail "unexpected csv shape")

let test_flow_probs_length_mismatch () =
  let net = Dpa_workload.Generator.combinational (small_profile 9) in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Flow.compare_ma_mp_probs: input_probs length mismatch") (fun () ->
      ignore (Flow.compare_ma_mp_probs ~input_probs:[| 0.5 |] net))

(* property: the flow is deterministic — same circuit, same result *)
let prop_flow_deterministic =
  Testkit.qcheck_case ~count:10 ~name:"flow deterministic"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let net () = Dpa_workload.Generator.combinational (small_profile seed) in
      let r1 = Flow.compare_ma_mp (net ()) in
      let r2 = Flow.compare_ma_mp (net ()) in
      r1.Flow.mp.Flow.power = r2.Flow.mp.Flow.power
      && r1.Flow.ma.Flow.size = r2.Flow.ma.Flow.size
      && Dpa_synth.Phase.equal r1.Flow.mp.Flow.assignment r2.Flow.mp.Flow.assignment)

let suite =
  [ Alcotest.test_case "untimed flow" `Quick test_flow_untimed;
    Alcotest.test_case "timed flow" `Quick test_flow_timed;
    Alcotest.test_case "mp exhaustive optimal" `Quick test_flow_exhaustive_mp_optimal;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "report summary" `Quick test_report_summary_and_averages;
    Alcotest.test_case "flow rejects empty" `Quick test_flow_rejects_empty;
    Alcotest.test_case "sequential flow" `Quick test_seq_flow;
    Alcotest.test_case "report csv" `Quick test_report_csv;
    Alcotest.test_case "probs length mismatch" `Quick test_flow_probs_length_mismatch;
    prop_flow_deterministic ]
