module Vectors = Dpa_sim.Vectors
module Simulator = Dpa_sim.Simulator
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Mapped = Dpa_domino.Mapped
module Estimate = Dpa_power.Estimate

let test_vectors_probabilities () =
  let rng = Dpa_util.Rng.create 5 in
  let probs = [| 0.1; 0.5; 0.9 |] in
  let vectors = Vectors.generate rng ~probs ~cycles:20_000 in
  let emp = Vectors.empirical_probs vectors in
  Array.iteri
    (fun k p ->
      Alcotest.(check bool)
        (Printf.sprintf "input %d near %.1f" k p)
        true
        (Float.abs (emp.(k) -. p) < 0.02))
    probs

let test_vectors_empty () =
  Alcotest.(check (array (float 0.0))) "no vectors" [||] (Vectors.empirical_probs [||])

let fig5_mapped assignment =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  Mapped.map (Dpa_synth.Inverterless.realize net assignment)

let test_measured_power_matches_estimate () =
  (* the PowerMill substitute must agree with the BDD estimator on the
     Fig. 5 circuit within Monte Carlo error *)
  let probs = Array.make 4 0.9 in
  List.iter
    (fun assignment ->
      let mapped = fig5_mapped assignment in
      let est = Estimate.of_mapped ~input_probs:probs mapped in
      let rng = Dpa_util.Rng.create 17 in
      let meas =
        Estimate.of_activity mapped
          (Simulator.measure ~cycles:40_000 rng ~input_probs:probs mapped)
      in
      let rel =
        Dpa_util.Stats.relative_error ~expected:est.Estimate.total
          ~actual:meas.Estimate.total
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 5%%" (Phase.to_string assignment))
        true (rel < 0.05))
    [ [| Phase.Negative; Phase.Positive |]; [| Phase.Positive; Phase.Negative |] ]

let test_property_2_1_empirical () =
  (* measured switching of every dynamic cell equals its measured signal
     probability: the simulator counts discharges, so fire_counts/cycles
     must match the BDD signal probabilities *)
  let probs = Array.make 4 0.5 in
  let mapped = fig5_mapped (Phase.all_positive 2) in
  let est_probs = Estimate.probabilities_of_block ~input_probs:probs mapped in
  let rng = Dpa_util.Rng.create 23 in
  let meas = Simulator.measure ~cycles:50_000 rng ~input_probs:probs mapped in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | Some _ ->
        let s = float_of_int meas.Simulator.fire_counts.(i) /. 50_000.0 in
        Alcotest.(check bool) "S within 2%" true (Float.abs (s -. est_probs.(i)) < 0.02)
      | None -> ())
    (Mapped.net mapped)

let test_property_2_2_no_glitches () =
  (* under adversarial input arrival orders, every node of the domino
     block makes at most one transition per evaluate phase and settles to
     the zero-delay value *)
  let mapped = fig5_mapped [| Phase.Positive; Phase.Negative |] in
  let rng = Dpa_util.Rng.create 31 in
  for m = 0 to 15 do
    let vec = Array.init 4 (fun k -> (m lsr k) land 1 = 1) in
    let trace = Simulator.event_evaluate rng mapped vec in
    Array.iter
      (fun rises -> Alcotest.(check bool) "at most one rise" true (rises <= 1))
      trace.Simulator.rises;
    (* settles to zero-delay evaluation *)
    let lits = Mapped.literals mapped in
    let lit_vec =
      Array.map
        (fun (pos, pol) ->
          match pol with
          | Dpa_synth.Inverterless.Pos -> vec.(pos)
          | Dpa_synth.Inverterless.Neg -> not vec.(pos))
        lits
    in
    let expected = Dpa_logic.Eval.all_nodes (Mapped.net mapped) lit_vec in
    Alcotest.(check (array bool)) "settles to zero-delay values" expected
      trace.Simulator.final
  done

let test_compound_simulation_matches_estimate () =
  (* absorbed AND terms are invisible to pricing in BOTH the estimator and
     the simulator; the two must still agree under compound mapping *)
  let t = Netlist.create () in
  let xs = Array.init 6 (fun k -> Netlist.add_input ~name:(Printf.sprintf "x%d" k) t) in
  let t1 = Netlist.add_gate t (Dpa_logic.Gate.And [| xs.(0); xs.(1) |]) in
  let t2 = Netlist.add_gate t (Dpa_logic.Gate.And [| xs.(2); xs.(3); xs.(4) |]) in
  let f = Netlist.add_gate t (Dpa_logic.Gate.Or [| t1; t2; xs.(5) |]) in
  Netlist.add_output t "f" f;
  let library = Dpa_domino.Library.with_compound Dpa_domino.Library.default in
  let mapped =
    Mapped.map ~library (Dpa_synth.Inverterless.realize t [| Phase.Negative |])
  in
  let probs = Array.make 6 0.4 in
  let est = Estimate.of_mapped ~input_probs:probs mapped in
  let rng = Dpa_util.Rng.create 41 in
  let meas =
    Estimate.of_activity mapped
      (Simulator.measure ~cycles:40_000 rng ~input_probs:probs mapped)
  in
  let rel =
    Dpa_util.Stats.relative_error ~expected:est.Estimate.total
      ~actual:meas.Estimate.total
  in
  Alcotest.(check bool) "within 5%" true (rel < 0.05)

let test_measure_cycle_validation () =
  let mapped = fig5_mapped (Phase.all_positive 2) in
  Alcotest.check_raises "cycles > 0"
    (Invalid_argument "Simulator.measure: cycles must be positive") (fun () ->
      ignore
        (Simulator.measure ~cycles:0 (Dpa_util.Rng.create 1) ~input_probs:(Array.make 4 0.5)
           mapped))

(* property: estimator and simulator agree on random circuits *)
let prop_sim_matches_estimate =
  Testkit.qcheck_case ~count:15 ~name:"simulation matches BDD estimate"
    (Testkit.arbitrary_netlist ~n_inputs:5 ~max_gates:10 ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Dpa_synth.Inverterless.realize net a) in
      let probs = Array.make (Netlist.num_inputs net) 0.5 in
      let est = Estimate.of_mapped ~input_probs:probs mapped in
      let rng = Dpa_util.Rng.create 7 in
      let meas =
        Estimate.of_activity mapped
          (Simulator.measure ~cycles:30_000 rng ~input_probs:probs mapped)
      in
      (* absolute tolerance scaled by block size: each node's Monte Carlo
         error is a few per mille over 30k cycles *)
      let tolerance = 0.05 *. Float.max est.Estimate.total 1.0 in
      Float.abs (est.Estimate.total -. meas.Estimate.total) < tolerance)

(* property: event-driven evaluation never glitches on random circuits *)
let prop_no_glitches =
  Testkit.qcheck_case ~count:40 ~name:"domino blocks never glitch"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Dpa_synth.Inverterless.realize net a) in
      let rng = Dpa_util.Rng.create 99 in
      let n = Netlist.num_inputs net in
      let ok = ref true in
      for m = 0 to min 15 ((1 lsl n) - 1) do
        let vec = Array.init n (fun k -> (m lsr k) land 1 = 1) in
        let trace = Simulator.event_evaluate rng mapped vec in
        Array.iter (fun r -> if r > 1 then ok := false) trace.Simulator.rises
      done;
      !ok)

let test_static_sim_inverter_chain_no_glitches () =
  (* a chain has a single path: no reconvergence, no glitches *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let n1 = Netlist.add_gate t (Dpa_logic.Gate.Not a) in
  let n2 = Netlist.add_gate t (Dpa_logic.Gate.Not n1) in
  Netlist.add_output t "f" n2;
  let rng = Dpa_util.Rng.create 3 in
  let m = Dpa_sim.Static_sim.measure ~cycles:4000 rng ~input_probs:[| 0.5 |] t in
  Testkit.check_approx ~eps:1e-9 "clean ratio" 1.0 m.Dpa_sim.Static_sim.glitch_ratio;
  (* both inverters toggle whenever a toggles: 2 × 2·p(1-p) = 1 per cycle *)
  Alcotest.(check bool) "zero-delay near 1" true
    (Float.abs (m.Dpa_sim.Static_sim.zero_delay -. 1.0) < 0.06)

let test_static_sim_reconvergence_glitches () =
  (* f = a ⊕ a-delayed-through-gates: changing a in two steps glitches f.
     Use f = (a ∧ b) ∨ (¬a ∧ b): logically = b, but the realization
     glitches when a changes while b stays high. *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let na = Netlist.add_gate t (Dpa_logic.Gate.Not a) in
  let t1 = Netlist.add_gate t (Dpa_logic.Gate.And [| a; b |]) in
  let t2 = Netlist.add_gate t (Dpa_logic.Gate.And [| na; b |]) in
  let f = Netlist.add_gate t (Dpa_logic.Gate.Or [| t1; t2 |]) in
  Netlist.add_output t "f" f;
  let rng = Dpa_util.Rng.create 5 in
  let m = Dpa_sim.Static_sim.measure ~cycles:6000 rng ~input_probs:[| 0.5; 0.9 |] t in
  (* f's final value is b: it "never changes" at steady b, yet the OR must
     glitch while a's change races through the two branches *)
  Alcotest.(check bool) "glitches observed" true
    (m.Dpa_sim.Static_sim.with_glitches > m.Dpa_sim.Static_sim.zero_delay +. 0.05)

let test_static_sim_validation () =
  let t = Netlist.create () in
  let _a = Netlist.add_input t in
  Alcotest.check_raises "cycles > 0"
    (Invalid_argument "Static_sim.measure: cycles must be positive") (fun () ->
      ignore
        (Dpa_sim.Static_sim.measure ~cycles:0 (Dpa_util.Rng.create 1) ~input_probs:[| 0.5 |] t))

(* property: glitches only ever add transitions, and the zero-delay count
   matches the analytic 2p(1-p) total within Monte Carlo error *)
let prop_static_sim_consistent =
  Testkit.qcheck_case ~count:15 ~name:"static sim: glitches ≥ zero-delay ≈ analytic"
    (Testkit.arbitrary_netlist ~n_inputs:5 ~max_gates:8 ())
    (fun net ->
      let rng = Dpa_util.Rng.create 11 in
      let probs = Array.make 5 0.5 in
      let m = Dpa_sim.Static_sim.measure ~cycles:20_000 rng ~input_probs:probs net in
      let analytic =
        (Dpa_power.Static_model.of_netlist ~input_probs:probs net)
          .Dpa_power.Static_model.gate_total
      in
      m.Dpa_sim.Static_sim.with_glitches >= m.Dpa_sim.Static_sim.zero_delay -. 1e-9
      && Float.abs (m.Dpa_sim.Static_sim.zero_delay -. analytic)
         <= 0.05 *. Float.max analytic 1.0)

let suite =
  [ Alcotest.test_case "vector probabilities" `Quick test_vectors_probabilities;
    Alcotest.test_case "static sim clean chain" `Quick
      test_static_sim_inverter_chain_no_glitches;
    Alcotest.test_case "static sim glitches" `Quick test_static_sim_reconvergence_glitches;
    Alcotest.test_case "static sim validation" `Quick test_static_sim_validation;
    prop_static_sim_consistent;
    Alcotest.test_case "vectors empty" `Quick test_vectors_empty;
    Alcotest.test_case "measurement matches estimate" `Quick test_measured_power_matches_estimate;
    Alcotest.test_case "property 2.1 empirical" `Quick test_property_2_1_empirical;
    Alcotest.test_case "property 2.2 no glitches" `Quick test_property_2_2_no_glitches;
    Alcotest.test_case "compound sim matches estimate" `Quick test_compound_simulation_matches_estimate;
    Alcotest.test_case "cycle validation" `Quick test_measure_cycle_validation;
    prop_sim_matches_estimate;
    prop_no_glitches ]
