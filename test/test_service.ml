(* The service layer end to end: wire-protocol round-trips for every
   request kind, structured errors for malformed input (and the worker
   surviving them), the bounded job queue's blocking/close semantics,
   bit-identity of concurrent service results against the sequential
   in-process pipeline, and graceful shutdown draining in-flight work.

   The server tests run a real server — own domain, real Unix socket,
   real worker pool — via [Client.with_self_hosted], so they cover the
   same code path as [dominoflow serve]. *)

module Jsonlite = Dpa_util.Jsonlite
module Dpa_error = Dpa_util.Dpa_error
module Protocol = Dpa_service.Protocol
module Handler = Dpa_service.Handler
module Jobqueue = Dpa_service.Jobqueue
module Client = Dpa_service.Client

let frg1 = "../data/frg1_synthetic.blif"
let apex7 = "../data/apex7_synthetic.blif"

let roundtrip env =
  match Protocol.parse_request (Protocol.request_line env) with
  | Ok env' -> env'
  | Error e -> Alcotest.failf "round-trip failed: %s" (Dpa_error.to_string e)

(* ---- protocol round-trips ----------------------------------------- *)

let test_roundtrip_simple () =
  List.iter
    (fun request ->
      let env = { Protocol.id = 42; request; cache = `Use } in
      let env' = roundtrip env in
      Alcotest.(check int) "id" 42 env'.Protocol.id;
      Alcotest.(check string)
        "cmd"
        (Protocol.cmd_name request)
        (Protocol.cmd_name env'.Protocol.request))
    [ Protocol.Ping; Protocol.Shutdown ]

let test_roundtrip_estimate () =
  let request =
    Protocol.Estimate
      {
        source = Protocol.Inline { text = "in a\nout y = a\n"; format = `Dln };
        input_prob = 0.25;
        phases = Some "+-";
        budget =
          Some
            {
              Protocol.max_bdd_nodes = Some 4096;
              deadline_s = Some 1.5;
              fallback = Dpa_power.Engine.No_fallback;
              sim_backend = Dpa_sim.Backend.Interp;
            };
      }
  in
  match (roundtrip { Protocol.id = 7; request; cache = `Use }).Protocol.request with
  | Protocol.Estimate { source; input_prob; phases; budget } ->
    (match source with
    | Protocol.Inline { text; format = `Dln } ->
      Alcotest.(check string) "inline text" "in a\nout y = a\n" text
    | _ -> Alcotest.fail "source changed shape");
    Alcotest.(check (float 0.0)) "input_prob" 0.25 input_prob;
    Alcotest.(check (option string)) "phases" (Some "+-") phases;
    (match budget with
    | Some { Protocol.max_bdd_nodes; deadline_s; fallback; sim_backend } ->
      Alcotest.(check (option int)) "max_bdd_nodes" (Some 4096) max_bdd_nodes;
      Alcotest.(check (option (float 0.0))) "deadline_s" (Some 1.5) deadline_s;
      Alcotest.(check bool) "fallback" true (fallback = Dpa_power.Engine.No_fallback);
      Alcotest.(check bool) "sim_backend" true (sim_backend = Dpa_sim.Backend.Interp)
    | None -> Alcotest.fail "budget dropped")
  | _ -> Alcotest.fail "request changed kind"

let test_roundtrip_flow_cmds () =
  List.iter
    (fun make ->
      let request =
        make
          ~source:(Protocol.File "design.blif")
          ~input_prob:0.75 ~seed:9 ~budget:None
      in
      match (roundtrip { Protocol.id = 3; request; cache = `Use }).Protocol.request with
      | Protocol.Optimize { source = Protocol.File p; input_prob; seed; budget = None }
      | Protocol.Compare { source = Protocol.File p; input_prob; seed; budget = None } ->
        Alcotest.(check string) "file" "design.blif" p;
        Alcotest.(check (float 0.0)) "input_prob" 0.75 input_prob;
        Alcotest.(check int) "seed" 9 seed
      | _ -> Alcotest.fail "request changed shape")
    [
      (fun ~source ~input_prob ~seed ~budget ->
        Protocol.Optimize { source; input_prob; seed; budget });
      (fun ~source ~input_prob ~seed ~budget ->
        Protocol.Compare { source; input_prob; seed; budget });
    ]

let test_roundtrip_info () =
  match
    (roundtrip
       {
         Protocol.id = 1;
         request = Protocol.Info { source = Protocol.File "x.dln" };
         cache = `Use;
       })
      .Protocol.request
  with
  | Protocol.Info { source = Protocol.File p } -> Alcotest.(check string) "file" "x.dln" p
  | _ -> Alcotest.fail "request changed shape"

(* ---- request validation ------------------------------------------- *)

let expect_error line =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "expected an error for %s" line
  | Error e -> e

let test_malformed_json_is_parse_error () =
  match expect_error "{not json" with
  | Dpa_error.Parse _ -> ()
  | e -> Alcotest.failf "wanted Parse, got %s" (Dpa_error.to_string e)

let test_validation_errors () =
  let invalid line =
    match expect_error line with
    | Dpa_error.Invalid_input _ -> ()
    | e -> Alcotest.failf "wanted Invalid_input for %s, got %s" line (Dpa_error.to_string e)
  in
  invalid "[1,2]";
  invalid {|{"cmd":"frobnicate"}|};
  invalid {|{"cmd":"estimate"}|};
  invalid {|{"cmd":"estimate","file":"a","netlist":"b"}|};
  invalid {|{"cmd":"estimate","file":"a","input_prob":1.5}|};
  invalid {|{"cmd":"estimate","file":"a","max_bdd_nodes":-3}|};
  invalid {|{"cmd":"estimate","file":"a","fallback":"maybe"}|};
  invalid {|{"cmd":"estimate","netlist":"in a\nout y = a\n","format":"vhdl"}|}

let test_error_response_shape () =
  let line = Protocol.error_response ~id:5 (Dpa_error.Invalid_input "nope") in
  let json = Jsonlite.parse line in
  Alcotest.(check bool) "ok" false (Jsonlite.to_bool (Jsonlite.member "ok" json));
  Alcotest.(check int) "id" 5 (Jsonlite.to_int (Jsonlite.member "id" json));
  let err = Jsonlite.member "error" json in
  Alcotest.(check string)
    "kind" "invalid-input"
    (Jsonlite.to_string (Jsonlite.member "kind" err));
  Alcotest.(check int) "exit_code" 65 (Jsonlite.to_int (Jsonlite.member "exit_code" err))

(* ---- float fidelity through the encoder --------------------------- *)

let test_encode_floats_roundtrip () =
  List.iter
    (fun f ->
      let encoded = Jsonlite.encode (Jsonlite.Num f) in
      match Jsonlite.parse encoded with
      | Jsonlite.Num f' ->
        if f <> f' then Alcotest.failf "%.17g reparsed as %.17g via %s" f f' encoded
      | _ -> Alcotest.failf "%s did not parse as a number" encoded)
    [
      0.1; 1.0 /. 3.0; 0.30000000000000004; 1e-17; 6.02214076e23; 217.88970947265625;
      0.0; 1.0; -1.0; 4503599627370497.0;
    ]

(* ---- job queue ----------------------------------------------------- *)

let test_jobqueue_fifo_and_close () =
  let q = Jobqueue.create ~capacity:4 in
  Alcotest.(check bool) "push a" true (Jobqueue.push q "a");
  Alcotest.(check bool) "push b" true (Jobqueue.push q "b");
  Alcotest.(check int) "length" 2 (Jobqueue.length q);
  Jobqueue.close q;
  Alcotest.(check bool) "push after close" false (Jobqueue.push q "c");
  (* close drains: queued jobs are still handed out, then None *)
  Alcotest.(check (option string)) "pop a" (Some "a") (Jobqueue.pop q);
  Alcotest.(check (option string)) "pop b" (Some "b") (Jobqueue.pop q);
  Alcotest.(check (option string)) "pop end" None (Jobqueue.pop q)

let test_jobqueue_blocking_handoff () =
  (* capacity 1: the producer can only advance as the consumer pops, so a
     full producer/consumer cycle across domains proves both condition
     variables actually wake their waiters *)
  let q = Jobqueue.create ~capacity:1 in
  let n = 100 in
  let consumer =
    Domain.spawn (fun () ->
        let rec take acc =
          match Jobqueue.pop q with Some v -> take (v :: acc) | None -> List.rev acc
        in
        take [])
  in
  for i = 1 to n do
    ignore (Jobqueue.push q (string_of_int i))
  done;
  Jobqueue.close q;
  let got = Domain.join consumer in
  Alcotest.(check int) "all delivered" n (List.length got);
  Alcotest.(check (list string))
    "in order"
    (List.init n (fun i -> string_of_int (i + 1)))
    got

(* ---- the server end to end ---------------------------------------- *)

let test_server_ping_and_malformed () =
  Client.with_self_hosted ~workers:1 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* malformed JSON: a structured parse error comes back... *)
      let r = Client.request c "this is not json" in
      (match Protocol.parse_response r with
      | Ok { Protocol.ok = false; result; _ } ->
        Alcotest.(check string)
          "kind" "parse"
          (Jsonlite.to_string (Jsonlite.member "kind" result))
      | Ok _ -> Alcotest.fail "malformed line was accepted"
      | Error msg -> Alcotest.failf "unparseable response: %s" msg);
      (* ...and the worker survives to serve the next request *)
      let r = Client.request c {|{"id":2,"cmd":"ping"}|} in
      match Protocol.parse_response r with
      | Ok { Protocol.rid = 2; ok = true; _ } -> ()
      | _ -> Alcotest.failf "worker did not survive the malformed line: %s" r)

let test_server_missing_file_is_io_error () =
  Client.with_self_hosted ~workers:1 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let r = Client.request c {|{"id":1,"cmd":"estimate","file":"/nonexistent.blif"}|} in
      match Protocol.parse_response r with
      | Ok { Protocol.ok = false; result; _ } ->
        Alcotest.(check string)
          "kind" "io"
          (Jsonlite.to_string (Jsonlite.member "kind" result))
      | _ -> Alcotest.failf "wanted an io error, got %s" r)

(* Bit-identity: many concurrent estimates across a 4-domain pool must
   reproduce the sequential in-process pipeline byte for byte — private
   BDD managers per worker may not change a single ulp of any
   probability or power figure. *)
let test_server_concurrent_bit_identity () =
  let files = [ frg1; apex7 ] in
  let copies = 4 in
  let envelopes =
    List.concat_map
      (fun file ->
        List.init copies (fun k ->
            {
              Protocol.id = (Hashtbl.hash (file, k) land 0xFFFF);
              request =
                Protocol.Estimate
                  {
                    source = Protocol.File file;
                    input_prob = 0.5;
                    phases = None;
                    budget = None;
                  };
              (* bypass: this test measures the pool, not the cache — 4
                 identical copies per file would otherwise collapse into
                 one execution and three hits *)
              cache = `Bypass;
            }))
      files
  in
  (* ids must be distinct for response correlation *)
  let envelopes =
    List.mapi (fun i e -> { e with Protocol.id = i + 1 }) envelopes
  in
  let expected =
    List.map
      (fun e ->
        ( e.Protocol.id,
          Protocol.ok_response ~id:e.Protocol.id
            ~cmd:(Protocol.cmd_name e.Protocol.request)
            (Handler.execute e.Protocol.request) ))
      envelopes
  in
  Client.with_self_hosted ~workers:4 (fun ~socket ->
      let responses =
        Client.run_batch ~socket (List.map Protocol.request_line envelopes)
      in
      Alcotest.(check int)
        "one response per request"
        (List.length envelopes) (List.length responses);
      List.iter
        (fun line ->
          match Protocol.parse_response line with
          | Ok { Protocol.rid; _ } ->
            let want =
              match List.assoc_opt rid expected with
              | Some w -> w
              | None -> Alcotest.failf "unknown response id %d" rid
            in
            Alcotest.(check string)
              (Printf.sprintf "response %d bit-identical" rid)
              want line
          | Error msg -> Alcotest.failf "unparseable response: %s" msg)
        responses)

let test_server_shutdown_drains () =
  (* pipeline several estimates, then shutdown, over one connection with a
     single worker: every estimate must still be answered (the queue is
     drained, not dropped) and the response set must include the shutdown
     acknowledgment *)
  let estimates =
    List.init 5 (fun i ->
        Protocol.request_line
          {
            Protocol.id = i + 1;
            request =
              Protocol.Estimate
                {
                  source = Protocol.File frg1;
                  input_prob = 0.5;
                  phases = None;
                  budget = None;
                };
            cache = `Bypass;
          })
  in
  let shutdown =
    Protocol.request_line { Protocol.id = 99; request = Protocol.Shutdown; cache = `Use }
  in
  Client.with_self_hosted ~workers:1 (fun ~socket ->
      let responses = Client.run_batch ~socket (estimates @ [ shutdown ]) in
      Alcotest.(check int) "all answered" 6 (List.length responses);
      let ids =
        List.filter_map
          (fun l ->
            match Protocol.parse_response l with
            | Ok { Protocol.rid; ok = true; _ } -> Some rid
            | _ -> None)
          responses
      in
      List.iter
        (fun want ->
          if not (List.mem want ids) then Alcotest.failf "no ok response for id %d" want)
        [ 1; 2; 3; 4; 5; 99 ])

(* ---- fault-injection hardening ------------------------------------ *)

module Fault = Dpa_util.Fault
module Chaos = Dpa_service.Chaos

let tiny_dln = ".model tiny\n.inputs a b\ng = and a b\n.outputs g\n"

let estimate_line ~id ?budget () =
  Protocol.request_line
    {
      Protocol.id;
      request =
        Protocol.Estimate
          {
            source = Protocol.Inline { text = tiny_dln; format = `Dln };
            input_prob = 0.5;
            phases = None;
            budget;
          };
      (* bypass: the fault tests need every request to reach a worker's
         estimation pipeline, where the injection points live *)
      cache = `Bypass;
    }

let response_kind line =
  match Protocol.parse_response line with
  | Ok { Protocol.ok = true; _ } -> None
  | Ok { Protocol.result; _ } -> (
    match Jsonlite.member_opt "kind" result with
    | Some (Jsonlite.Str k) -> Some k
    | _ -> Some "?")
  | Error m -> Alcotest.failf "unparseable response: %s" m

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_jobqueue_try_push () =
  let q = Jobqueue.create ~capacity:1 in
  Alcotest.(check bool) "admitted" true (Jobqueue.try_push q "a" = `Ok);
  Alcotest.(check bool) "shed when full" true (Jobqueue.try_push q "b" = `Full);
  Alcotest.(check (option string)) "pop" (Some "a") (Jobqueue.pop q);
  Alcotest.(check bool) "admitted again" true (Jobqueue.try_push q "c" = `Ok);
  Jobqueue.close q;
  Alcotest.(check bool) "refused after close" true (Jobqueue.try_push q "d" = `Closed);
  Alcotest.(check (option string)) "close drains" (Some "c") (Jobqueue.pop q);
  Alcotest.(check (option string)) "then ends" None (Jobqueue.pop q)

let test_jobqueue_close_with_waiters () =
  (* a producer blocked on a full queue is woken by close and refused,
     without losing the job already queued *)
  let q = Jobqueue.create ~capacity:1 in
  ignore (Jobqueue.push q "x");
  let producer = Domain.spawn (fun () -> Jobqueue.push q "y") in
  Unix.sleepf 0.05;
  Jobqueue.close q;
  Alcotest.(check bool) "blocked push refused" false (Domain.join producer);
  Alcotest.(check (option string)) "queued job survives" (Some "x") (Jobqueue.pop q);
  Alcotest.(check (option string)) "then drained" None (Jobqueue.pop q);
  (* every consumer blocked on an empty queue is woken with None *)
  let q2 = Jobqueue.create ~capacity:2 in
  let consumers = List.init 3 (fun _ -> Domain.spawn (fun () -> Jobqueue.pop q2)) in
  Unix.sleepf 0.05;
  Jobqueue.close q2;
  List.iter
    (fun d -> Alcotest.(check (option string)) "woken with None" None (Domain.join d))
    consumers

let test_server_deadline_enforced () =
  (* a cone build stalled for 2 s under a 50 ms deadline must come back
     as a prompt structured error — the cancellation token interrupts
     the stall instead of letting the client wait out the full sleep *)
  Fault.configure ~seed:1 [ (Fault.Slow_cone, 1.0, Some 2.0) ];
  Fun.protect ~finally:Fault.clear @@ fun () ->
  Client.with_self_hosted ~workers:1 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let budget =
        {
          Protocol.max_bdd_nodes = None;
          deadline_s = Some 0.05;
          fallback = Dpa_power.Engine.No_fallback;
          sim_backend = Dpa_sim.Backend.default;
        }
      in
      let t0 = Unix.gettimeofday () in
      let r = Client.request c (estimate_line ~id:1 ~budget ()) in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match response_kind r with
      | Some ("deadline_exceeded" | "budget") -> ()
      | k ->
        Alcotest.failf "wanted deadline_exceeded, got %s (%s)"
          (Option.value ~default:"ok" k) r);
      Alcotest.(check bool)
        (Printf.sprintf "answered promptly (%.3fs)" elapsed)
        true (elapsed < 0.75))

let test_server_overload_shed_and_retry () =
  (* one slow worker, queue capacity 1: a burst of six requests must be
     partially shed with typed [overloaded] answers carrying a backoff
     hint — and the retrying client must then land every one of them *)
  Fault.configure ~seed:2 [ (Fault.Slow_cone, 1.0, Some 0.12) ];
  Fun.protect ~finally:Fault.clear @@ fun () ->
  Client.with_self_hosted ~workers:1 ~queue_capacity:1 (fun ~socket ->
      let lines = List.init 6 (fun i -> estimate_line ~id:(i + 1) ()) in
      let responses = Client.run_batch ~socket lines in
      Alcotest.(check int) "one response per request" 6 (List.length responses);
      let overloaded =
        List.filter (fun l -> response_kind l = Some "overloaded") responses
      in
      Alcotest.(check bool) "burst partially shed" true (overloaded <> []);
      List.iter
        (fun l ->
          match Protocol.parse_response l with
          | Ok { Protocol.result; _ } -> (
            match Jsonlite.member_opt "retry_after_ms" result with
            | Some (Jsonlite.Num ms) ->
              Alcotest.(check bool) "usable backoff hint" true (ms >= 25.0)
            | _ -> Alcotest.failf "no retry_after_ms in %s" l)
          | Error m -> Alcotest.fail m)
        overloaded;
      let retry =
        { Client.default_retry with max_attempts = 12; base_delay_ms = 20 }
      in
      let responses = Client.run_batch ~retry ~socket lines in
      List.iteri
        (fun i l ->
          match Protocol.parse_response l with
          | Ok { Protocol.rid; ok = true; _ } ->
            Alcotest.(check int) "request order" (i + 1) rid
          | _ -> Alcotest.failf "request %d not ok after retries: %s" (i + 1) l)
        responses)

let stats_line =
  Protocol.request_line { Protocol.id = 77; request = Protocol.Stats; cache = `Use }

let stat_int stats key =
  match Jsonlite.member_opt key stats with
  | Some (Jsonlite.Num f) -> int_of_float f
  | _ -> -1

let test_server_watchdog_replaces_panicked_worker () =
  Client.with_self_hosted ~workers:2 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* the in-flight request of a dying worker still gets an answer *)
      Fault.configure ~seed:3 [ (Fault.Worker_panic, 1.0, None) ];
      let r =
        Fun.protect ~finally:Fault.clear @@ fun () ->
        Client.request c (estimate_line ~id:1 ())
      in
      (match response_kind r with
      | Some "internal" -> ()
      | k ->
        Alcotest.failf "wanted internal, got %s (%s)" (Option.value ~default:"ok" k) r);
      (* ...and the watchdog joins the corpse and staffs a replacement *)
      (* the reply races ahead of the crash bookkeeping: poll until the
         watchdog has both noticed the corpse and staffed a replacement *)
      let rec stats_at_strength tries =
        let r = Client.request c stats_line in
        match Protocol.parse_response r with
        | Ok { Protocol.ok = true; result; _ } ->
          let healed =
            stat_int result "strength" >= 2
            && stat_int result "panics" >= 1
            && stat_int result "replacements" >= 1
          in
          if healed || tries <= 0 then result
          else begin
            Unix.sleepf 0.1;
            stats_at_strength (tries - 1)
          end
        | _ -> Alcotest.failf "stats request failed: %s" r
      in
      let stats = stats_at_strength 30 in
      Alcotest.(check int) "strength restored" 2 (stat_int stats "strength");
      Alcotest.(check bool) "panic counted" true (stat_int stats "panics" >= 1);
      Alcotest.(check bool)
        "replacement counted" true
        (stat_int stats "replacements" >= 1))

let test_server_max_request_bytes () =
  Client.with_self_hosted ~workers:1 ~max_request_bytes:128 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let r = Client.request c (String.make 300 'z') in
      (match response_kind r with
      | Some "invalid-input" -> ()
      | k ->
        Alcotest.failf "wanted invalid-input, got %s (%s)"
          (Option.value ~default:"ok" k) r);
      (match Protocol.parse_response r with
      | Ok { Protocol.result; _ } -> (
        match Jsonlite.member_opt "message" result with
        | Some (Jsonlite.Str m) ->
          Alcotest.(check bool) "names the limit" true (contains ~sub:"max_request_bytes" m)
        | _ -> Alcotest.failf "no message in %s" r)
      | Error m -> Alcotest.fail m);
      (* an oversized complete frame is rejected, not fatal to the conn *)
      let r2 = Client.request c {|{"id":2,"cmd":"ping"}|} in
      match Protocol.parse_response r2 with
      | Ok { Protocol.rid = 2; ok = true; _ } -> ()
      | _ -> Alcotest.failf "connection did not survive oversized frame: %s" r2)

let test_client_retry_survives_midbatch_drop () =
  (* a hand-rolled server whose first connection answers two of five
     requests and hangs up: the retrying client must reconnect and
     deliver all five responses, in request order *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpa_drop_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lsock (Unix.ADDR_UNIX path);
  Unix.listen lsock 8;
  let answer fd line =
    match Protocol.parse_request line with
    | Ok { Protocol.id; _ } ->
      let resp = Protocol.ok_response ~id ~cmd:"ping" (Jsonlite.Obj []) ^ "\n" in
      ignore (Unix.write_substring fd resp 0 (String.length resp))
    | Error _ -> ()
  in
  let serve ~limit =
    match Unix.accept lsock with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      let ic = Unix.in_channel_of_descr fd in
      (try
         let n = ref 0 in
         while limit = 0 || !n < limit do
           answer fd (input_line ic);
           incr n
         done
       with End_of_file | Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let srv =
    Domain.spawn (fun () ->
        serve ~limit:2;
        serve ~limit:0)
  in
  Fun.protect
    ~finally:(fun () ->
      (* unblock a still-pending accept so the join cannot hang *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
         Unix.close fd
       with Unix.Unix_error _ -> ());
      Domain.join srv;
      Unix.close lsock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  let lines =
    List.init 5 (fun i ->
        Protocol.request_line { Protocol.id = i + 1; request = Protocol.Ping; cache = `Use })
  in
  let retry = { Client.default_retry with base_delay_ms = 10 } in
  let responses = Client.run_batch ~retry ~socket:path lines in
  Alcotest.(check int) "all answered" 5 (List.length responses);
  List.iteri
    (fun i line ->
      match Protocol.parse_response line with
      | Ok { Protocol.rid; ok = true; _ } ->
        Alcotest.(check int) "request order" (i + 1) rid
      | _ -> Alcotest.failf "bad response: %s" line)
    responses

let test_chaos_soak_small () =
  let r = Chaos.soak ~seed:5 ~workers:2 ~requests:24 ~garbage:5 () in
  Alcotest.(check int)
    "every request answered exactly once" 24
    (r.Chaos.ok + List.fold_left (fun a (_, n) -> a + n) 0 r.Chaos.errors);
  Alcotest.(check int) "garbage all answered" 5 r.Chaos.garbage_probes;
  Alcotest.(check int) "pool back at full strength" 2 r.Chaos.strength

let suite =
  [
    Alcotest.test_case "roundtrip: ping/shutdown" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip: estimate" `Quick test_roundtrip_estimate;
    Alcotest.test_case "roundtrip: optimize/compare" `Quick test_roundtrip_flow_cmds;
    Alcotest.test_case "roundtrip: info" `Quick test_roundtrip_info;
    Alcotest.test_case "malformed JSON is a parse error" `Quick
      test_malformed_json_is_parse_error;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "error response shape" `Quick test_error_response_shape;
    Alcotest.test_case "float encode round-trip" `Quick test_encode_floats_roundtrip;
    Alcotest.test_case "jobqueue: fifo + close drains" `Quick test_jobqueue_fifo_and_close;
    Alcotest.test_case "jobqueue: blocking handoff" `Quick test_jobqueue_blocking_handoff;
    Alcotest.test_case "server: malformed line, worker survives" `Quick
      test_server_ping_and_malformed;
    Alcotest.test_case "server: missing file is io error" `Quick
      test_server_missing_file_is_io_error;
    Alcotest.test_case "server: concurrent bit-identity" `Quick
      test_server_concurrent_bit_identity;
    Alcotest.test_case "server: shutdown drains in-flight jobs" `Quick
      test_server_shutdown_drains;
    Alcotest.test_case "jobqueue: try_push sheds when full" `Quick test_jobqueue_try_push;
    Alcotest.test_case "jobqueue: close wakes blocked waiters" `Quick
      test_jobqueue_close_with_waiters;
    Alcotest.test_case "server: deadline interrupts a stalled cone" `Quick
      test_server_deadline_enforced;
    Alcotest.test_case "server: overload shed + client retry" `Quick
      test_server_overload_shed_and_retry;
    Alcotest.test_case "server: watchdog replaces panicked worker" `Quick
      test_server_watchdog_replaces_panicked_worker;
    Alcotest.test_case "server: oversized frame rejected, conn survives" `Quick
      test_server_max_request_bytes;
    Alcotest.test_case "client: retry survives mid-batch drop" `Quick
      test_client_retry_survives_midbatch_drop;
    Alcotest.test_case "chaos: small soak, nothing lost" `Quick test_chaos_soak_small;
  ]
