module Generator = Dpa_workload.Generator
module Profiles = Dpa_workload.Profiles
module Corpus = Dpa_workload.Corpus
module Netlist = Dpa_logic.Netlist
module Struct_hash = Dpa_logic.Struct_hash

let digest_of_profile p =
  match Profiles.build p with
  | Profiles.Comb net -> Struct_hash.digest net
  | Profiles.Seq sn ->
    (* same network the corpus digests: core + D-pin outputs *)
    let core = Dpa_logic.Netlist.copy (Dpa_seq.Seq_netlist.comb sn) in
    Array.iteri
      (fun k ff ->
        Dpa_logic.Netlist.add_output core
          (Printf.sprintf "ff%d.d" k)
          ff.Dpa_seq.Seq_netlist.data)
      (Dpa_seq.Seq_netlist.ffs sn);
    Struct_hash.digest core

(* one representative per family: same (profile, seed) must rebuild to the
   identical structural digest, and a seed bump must not *)
let family_reps = [ "parity_smoke"; "add4x8"; "mult8"; "ctrl_smoke" ]

let reseed p =
  let open Profiles in
  match p.shape with
  | Windowed g -> { p with shape = Windowed { g with Generator.seed = g.Generator.seed + 1 } }
  | Parity_chain g ->
    { p with shape = Parity_chain { g with Generator.seed = g.Generator.seed + 1 } }
  | Adder g -> { p with shape = Adder { g with Generator.seed = g.Generator.seed + 1 } }
  | Multiplier g ->
    { p with shape = Multiplier { g with Generator.seed = g.Generator.seed + 1 } }
  | Controller g ->
    { p with shape = Controller { g with Generator.seed = g.Generator.seed + 1 } }

let test_family_determinism () =
  List.iter
    (fun name ->
      match Profiles.find name with
      | None -> Alcotest.failf "missing corpus profile %s" name
      | Some p ->
        Alcotest.(check string)
          (name ^ " rebuilds identically")
          (digest_of_profile p) (digest_of_profile p);
        (* the adder's function is seed-independent but its structure is
           not: the digest is structural, so reseeding must move it *)
        Alcotest.(check bool)
          (name ^ " seed changes digest")
          true
          (digest_of_profile p <> digest_of_profile (reseed p)))
    family_reps

let test_dag_at_1e5_gates () =
  (* scale the deep-parity family past 10⁵ gates and demand a well-formed
     DAG — this is the generator's production-size contract *)
  let net =
    Generator.parity_chain
      {
        Generator.name = "parity_1e5";
        seed = 991;
        n_inputs = 192;
        n_outputs = 6;
        support = 48;
        stages = 4400;
        mix_prob = 0.0;
        and_bias = 0.5;
      }
  in
  (match Netlist.validate net with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid netlist at scale: %s" e);
  Alcotest.(check bool)
    (Printf.sprintf "gate count %d >= 100000" (Netlist.gate_count net))
    true
    (Netlist.gate_count net >= 100_000);
  Alcotest.(check int) "outputs" 6 (Netlist.num_outputs net)

let test_all_profiles_wellformed () =
  (* every corpus profile (largest included) builds a valid network with
     the interface its metadata promises *)
  List.iter
    (fun p ->
      let n_pi, n_po, n_ffs = Profiles.interface p in
      match Profiles.build p with
      | Profiles.Comb net ->
        (match Netlist.validate net with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s invalid: %s" p.Profiles.name e);
        Alcotest.(check int) (p.Profiles.name ^ " PIs") n_pi (Netlist.num_inputs net);
        Alcotest.(check int) (p.Profiles.name ^ " POs") n_po (Netlist.num_outputs net)
      | Profiles.Seq sn ->
        let comb = Dpa_seq.Seq_netlist.comb sn in
        (match Netlist.validate comb with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s invalid: %s" p.Profiles.name e);
        Alcotest.(check int)
          (p.Profiles.name ^ " real PIs")
          n_pi
          (Dpa_seq.Seq_netlist.n_real_inputs sn);
        Alcotest.(check int) (p.Profiles.name ^ " POs") n_po (Netlist.num_outputs comb);
        Alcotest.(check int)
          (p.Profiles.name ^ " FFs")
          n_ffs
          (Dpa_seq.Seq_netlist.n_ffs sn))
    Profiles.corpus

let test_largest_profile_scale () =
  match Profiles.find "parity_deep" with
  | None -> Alcotest.fail "parity_deep vanished"
  | Some p ->
    let net = Profiles.build_comb p in
    Alcotest.(check bool)
      (Printf.sprintf "parity_deep %d gates >= 50000" (Netlist.gate_count net))
      true
      (Netlist.gate_count net >= 50_000)

let test_adder_multiplier_functions () =
  (* the carry logic must actually add/multiply — evaluate against integer
     arithmetic. Operand k's bit i is input "a<k>b<i>" for the adder and
     a<i>/b<i> for the multiplier, both created bit-interleaved. *)
  let eval_int net assign width_out =
    let inputs = Array.make (Netlist.num_inputs net) false in
    List.iter (fun (idx, v) -> inputs.(idx) <- v) assign;
    let outs = Dpa_logic.Eval.outputs net inputs in
    let v = ref 0 in
    for i = width_out - 1 downto 0 do
      v := (2 * !v) + if outs.(i) then 1 else 0
    done;
    !v
  in
  let adder = Generator.adder_array { Generator.name = "a"; seed = 5; width = 3; operands = 4 } in
  (* interleaved creation order: input id of operand k bit i is i*operands + k *)
  let rng = Dpa_util.Rng.create 77 in
  for _ = 1 to 32 do
    let ops = Array.init 4 (fun _ -> Dpa_util.Rng.int rng 8) in
    let assign = ref [] in
    Array.iteri
      (fun k v ->
        for i = 0 to 2 do
          assign := ((i * 4) + k, v land (1 lsl i) <> 0) :: !assign
        done)
      ops;
    let expect = Array.fold_left ( + ) 0 ops in
    Alcotest.(check int) "adder sums" expect
      (eval_int adder !assign (Netlist.num_outputs adder))
  done;
  let mult = Generator.multiplier { Generator.name = "m"; seed = 5; width = 4 } in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let assign = ref [] in
      for i = 0 to 3 do
        assign := ((2 * i) + 0, a land (1 lsl i) <> 0) :: !assign;
        assign := ((2 * i) + 1, b land (1 lsl i) <> 0) :: !assign
      done;
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" a b)
        (a * b)
        (eval_int mult !assign 8)
    done
  done

let test_controller_nontrivial_mfvs () =
  List.iter
    (fun name ->
      match Profiles.find name with
      | None -> Alcotest.failf "missing profile %s" name
      | Some p -> (
        match Profiles.build p with
        | Profiles.Comb _ -> Alcotest.failf "%s should be sequential" name
        | Profiles.Seq sn ->
          let r = Dpa_seq.Mfvs.solve (Dpa_seq.Sgraph.of_seq_netlist sn) in
          let n_ffs = Dpa_seq.Seq_netlist.n_ffs sn in
          let cut = List.length r.Dpa_seq.Mfvs.fvs in
          (* dense wrap-around feedback: the cut must be real work — more
             than a handful of flip-flops, but never the trivial "cut
             everything" answer either *)
          Alcotest.(check bool)
            (Printf.sprintf "%s fvs %d in (n_ffs/8, n_ffs)" name cut)
            true
            (cut > n_ffs / 8 && cut < n_ffs);
          Alcotest.(check bool)
            (name ^ " is a real feedback vertex set")
            true
            (Dpa_seq.Mfvs.is_feedback_vertex_set
               (Dpa_seq.Sgraph.of_seq_netlist sn)
               r.Dpa_seq.Mfvs.fvs)))
    [ "ctrl_smoke"; "ctrl_dense" ]

let sample_outcome =
  {
    Corpus.name = "sample";
    family = "parity";
    digest = "abc123";
    gates = 4211;
    n_pi = 32;
    n_po = 4;
    n_ffs = 0;
    fvs = 0;
    supervertices = 0;
    ma_size = 700;
    ma_power = 123.4567890123;
    mp_size = 710;
    mp_power = 0.1 +. 0.2 (* deliberately non-representable: 0.30000000000000004 *);
    mp_phases = 4;
    phase_flips = 1;
    duplicated_gates = 10;
    power_saving_pct = 3.25;
    area_penalty_pct = 1.4285714285714286;
    ladder = "exact";
    bdd_nodes = 55_000;
    runtime_s = 1.75;
  }

let test_baseline_roundtrip () =
  let dir = Filename.temp_file "corpus" "" in
  Sys.remove dir;
  let o = sample_outcome in
  Corpus.write_baseline ~dir o;
  (match Corpus.read_baseline ~dir "sample" with
  | None -> Alcotest.fail "baseline vanished"
  | Some got ->
    Alcotest.(check bool) "round-trip is exact (floats included)" true (got = o);
    Alcotest.(check (list string)) "diff of identical is clean" []
      (Corpus.diff ~expected:o ~actual:got ()));
  Alcotest.(check bool) "missing baseline reads None" true
    (Corpus.read_baseline ~dir "nope" = None);
  Sys.remove (Corpus.baseline_path ~dir "sample");
  Sys.rmdir dir

let test_baseline_diff_catches_drift () =
  let o = sample_outcome in
  let check_dirty what mutated =
    Alcotest.(check bool) (what ^ " flagged") true
      (Corpus.diff ~expected:o ~actual:mutated () <> [])
  in
  check_dirty "digest" { o with Corpus.digest = "def456" };
  check_dirty "one-ULP power drift"
    { o with Corpus.mp_power = o.Corpus.mp_power +. epsilon_float *. o.Corpus.mp_power };
  check_dirty "ladder rung" { o with Corpus.ladder = "3ex+0re+1sim" };
  check_dirty "phase flip" { o with Corpus.phase_flips = 2 };
  check_dirty "perf blowout" { o with Corpus.runtime_s = o.Corpus.runtime_s *. 50.0 };
  (* runtime alone, inside slack: informational, not a regression *)
  Alcotest.(check (list string)) "runtime within slack is clean" []
    (Corpus.diff ~expected:o ~actual:{ o with Corpus.runtime_s = 3.0 } ());
  Alcotest.(check (list string)) "perf check can be disabled" []
    (Corpus.diff ~perf_slack:0.0 ~expected:o
       ~actual:{ o with Corpus.runtime_s = 1000.0 }
       ())

let test_outcome_json_version_gate () =
  let j = Corpus.json_of_outcome sample_outcome in
  (match j with
  | Dpa_util.Jsonlite.Obj fields ->
    let bumped =
      Dpa_util.Jsonlite.Obj
        (List.map
           (function
             | "version", _ -> ("version", Dpa_util.Jsonlite.Num 99.0)
             | kv -> kv)
           fields)
    in
    Alcotest.check_raises "future versions are rejected"
      (Dpa_util.Jsonlite.Parse_error "baseline version 99 (this build reads 1)")
      (fun () -> ignore (Corpus.outcome_of_json bumped))
  | _ -> Alcotest.fail "outcome did not encode as an object")

let test_find_resolves_corpus_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("find " ^ p.Profiles.name)
        true
        (Profiles.find p.Profiles.name = Some p);
      Alcotest.(check bool)
        ("find is case-insensitive for " ^ p.Profiles.name)
        true
        (Profiles.find (String.uppercase_ascii p.Profiles.name) = Some p))
    Profiles.corpus;
  Alcotest.(check (list string)) "names are sorted" (List.sort compare Profiles.names)
    Profiles.names;
  Alcotest.(check int) "names cover tables + corpus"
    (List.length Profiles.table1 + List.length Profiles.corpus)
    (List.length Profiles.names)

let test_manifest_invariants () =
  Alcotest.(check bool) "full has >= 10 circuits" true
    (List.length Corpus.full.Corpus.specs >= 10);
  let families m =
    List.sort_uniq compare
      (List.map
         (fun s -> Profiles.family_name s.Corpus.profile.Profiles.family)
         m.Corpus.specs)
  in
  Alcotest.(check (list string)) "full spans every family"
    [ "arith"; "control"; "parity"; "sequential" ]
    (families Corpus.full);
  Alcotest.(check (list string)) "smoke spans every family"
    [ "arith"; "control"; "parity"; "sequential" ]
    (families Corpus.smoke);
  Alcotest.(check bool) "smoke is a strict subset by size" true
    (List.length Corpus.smoke.Corpus.specs < List.length Corpus.full.Corpus.specs);
  (* deadline budgets are machine-dependent; manifests must never carry one *)
  List.iter
    (fun s ->
      match s.Corpus.budget with
      | None -> ()
      | Some b ->
        Alcotest.(check bool)
          (s.Corpus.profile.Profiles.name ^ " budget has no deadline")
          true
          (b.Dpa_power.Engine.deadline_s = None))
    (Corpus.full.Corpus.specs @ Corpus.smoke.Corpus.specs)

let test_run_spec_deterministic () =
  (* the whole outcome except wall time must be reproducible — this is the
     property the baseline diff's exact equality rests on *)
  match Corpus.find_spec Corpus.smoke "ctrl_smoke" with
  | None -> Alcotest.fail "ctrl_smoke not in smoke manifest"
  | Some spec ->
    let a = Corpus.run_spec spec in
    let b = Corpus.run_spec spec in
    Alcotest.(check (list string)) "identical reruns diff clean" []
      (Corpus.diff ~expected:a ~actual:b ());
    Alcotest.(check bool) "controller flow cuts flip-flops" true (a.Corpus.fvs > 0)

let suite =
  [ Alcotest.test_case "family determinism" `Quick test_family_determinism;
    Alcotest.test_case "DAG at 1e5 gates" `Slow test_dag_at_1e5_gates;
    Alcotest.test_case "profiles well-formed" `Slow test_all_profiles_wellformed;
    Alcotest.test_case "largest >= 5e4 gates" `Slow test_largest_profile_scale;
    Alcotest.test_case "adder/multiplier arithmetic" `Quick test_adder_multiplier_functions;
    Alcotest.test_case "controller MFVS nontrivial" `Quick test_controller_nontrivial_mfvs;
    Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "baseline diff drift" `Quick test_baseline_diff_catches_drift;
    Alcotest.test_case "baseline version gate" `Quick test_outcome_json_version_gate;
    Alcotest.test_case "find corpus names" `Quick test_find_resolves_corpus_names;
    Alcotest.test_case "manifest invariants" `Quick test_manifest_invariants;
    Alcotest.test_case "run_spec deterministic" `Quick test_run_spec_deterministic ]
