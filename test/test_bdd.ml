module Robdd = Dpa_bdd.Robdd
module Ordering = Dpa_bdd.Ordering
module Build = Dpa_bdd.Build
module Netlist = Dpa_logic.Netlist
module Eval = Dpa_logic.Eval

let test_terminals () =
  let m = Robdd.create ~nvars:2 in
  Alcotest.(check bool) "false terminal" true (Robdd.is_terminal Robdd.bdd_false);
  Alcotest.(check bool) "true terminal" true (Robdd.is_terminal Robdd.bdd_true);
  Alcotest.(check int) "neg false" Robdd.bdd_true (Robdd.neg m Robdd.bdd_false);
  Alcotest.(check int) "neg true" Robdd.bdd_false (Robdd.neg m Robdd.bdd_true)

let test_var_and_eval () =
  let m = Robdd.create ~nvars:3 in
  let x0 = Robdd.var m 0 and x2 = Robdd.var m 2 in
  Alcotest.(check bool) "x0 true" true (Robdd.eval m x0 [| true; false; false |]);
  Alcotest.(check bool) "x0 false" false (Robdd.eval m x0 [| false; true; true |]);
  let f = Robdd.apply_and m x0 (Robdd.neg m x2) in
  Alcotest.(check bool) "x0 ∧ ¬x2" true (Robdd.eval m f [| true; true; false |]);
  Alcotest.(check bool) "x0 ∧ ¬x2 f" false (Robdd.eval m f [| true; true; true |])

let test_canonicity () =
  let m = Robdd.create ~nvars:2 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  (* (a ∧ b) ∨ (a ∧ ¬b) = a: structural identity must hold *)
  let lhs =
    Robdd.apply_or m (Robdd.apply_and m a b) (Robdd.apply_and m a (Robdd.neg m b))
  in
  Alcotest.(check int) "reduced to a" a lhs;
  (* De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b *)
  let dm1 = Robdd.neg m (Robdd.apply_and m a b) in
  let dm2 = Robdd.apply_or m (Robdd.neg m a) (Robdd.neg m b) in
  Alcotest.(check int) "de morgan" dm1 dm2

let test_xor_and_size () =
  let m = Robdd.create ~nvars:3 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 and c = Robdd.var m 2 in
  let x = Robdd.apply_xor m (Robdd.apply_xor m a b) c in
  (* 3-variable parity has 2 nodes per level under any order *)
  Alcotest.(check int) "parity size" (1 + 2 + 2) (Robdd.size m x);
  Alcotest.(check bool) "parity eval" true (Robdd.eval m x [| true; true; true |]);
  Alcotest.(check bool) "parity eval2" false (Robdd.eval m x [| true; true; false |])

let test_probability_basic () =
  let m = Robdd.create ~nvars:2 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  let f = Robdd.apply_and m a b in
  Testkit.check_approx "P(ab)" 0.06 (Robdd.probability m [| 0.2; 0.3 |] f);
  let g = Robdd.apply_or m a b in
  Testkit.check_approx "P(a+b)" (1.0 -. (0.8 *. 0.7)) (Robdd.probability m [| 0.2; 0.3 |] g);
  Testkit.check_approx "P(true)" 1.0 (Robdd.probability m [| 0.2; 0.3 |] Robdd.bdd_true);
  Testkit.check_approx "P(false)" 0.0 (Robdd.probability m [| 0.2; 0.3 |] Robdd.bdd_false)

let test_var_bounds () =
  let m = Robdd.create ~nvars:2 in
  Alcotest.check_raises "level oob" (Invalid_argument "Robdd.var: level 2 out of range")
    (fun () -> ignore (Robdd.var m 2))

(* property: BDD built from a netlist computes the same outputs as direct
   evaluation, under every ordering heuristic *)
let prop_bdd_equals_eval =
  Testkit.qcheck_case ~count:60 ~name:"bdd matches netlist evaluation"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let check_order order =
        let b = Build.of_netlist ~order net in
        let pos_of_level = b.Build.order in
        let level_of_pos = Array.make (Array.length pos_of_level) 0 in
        Array.iteri (fun lvl pos -> level_of_pos.(pos) <- lvl) pos_of_level;
        Testkit.same_function (Netlist.num_inputs net)
          (fun vec -> Array.to_list (Eval.outputs net vec))
          (fun vec ->
            let assignment = Array.make (Array.length vec) false in
            Array.iteri (fun pos v -> assignment.(level_of_pos.(pos)) <- v) vec;
            Array.to_list
              (Array.map
                 (fun (_, d) -> Robdd.eval b.Build.manager b.Build.roots.(d) assignment)
                 (Netlist.outputs net)))
      in
      check_order (Ordering.reverse_topological net)
      && check_order (Ordering.topological net)
      && check_order (Ordering.declaration net)
      && check_order (Ordering.disturbed net))

(* property: BDD probabilities equal brute-force enumeration *)
let prop_probability_exact =
  Testkit.qcheck_case ~count:40 ~name:"bdd probabilities are exact"
    QCheck2.Gen.(pair (Testkit.arbitrary_netlist ()) (Testkit.probs_gen 5))
    (fun (net, probs) ->
      let expected = Eval.exact_probabilities net probs in
      let actual = Build.probabilities ~input_probs:probs net in
      let ok = ref true in
      Array.iteri
        (fun i e -> if not (Testkit.approx ~eps:1e-9 e actual.(i)) then ok := false)
        expected;
      !ok)

(* property: at full width (12 inputs), the packed-table kernel still agrees
   with exhaustive truth-table enumeration to 1e-12, through both the
   fresh-memo and the shared-memo entry points *)
let prop_probability_exact_wide =
  Testkit.qcheck_case ~count:20 ~name:"bdd probabilities exact at 12 inputs"
    QCheck2.Gen.(
      pair (Testkit.arbitrary_netlist ~n_inputs:12 ~max_gates:20 ()) (Testkit.probs_gen 12))
    (fun (net, probs) ->
      let expected = Eval.exact_probabilities net probs in
      let b = Build.of_netlist net in
      let shared = Build.probabilities_of_built ~input_probs:probs b in
      let fresh = Build.probabilities ~input_probs:probs net in
      let ok = ref true in
      Array.iteri
        (fun i e ->
          if
            not
              (Testkit.approx ~eps:1e-12 e shared.(i)
              && Testkit.approx ~eps:1e-12 e fresh.(i))
          then ok := false)
        expected;
      !ok)

(* property: a persistent prob_cache returns the same numbers as the
   fresh-memo path even as the manager keeps growing under it *)
let prop_prob_cache_consistent =
  Testkit.qcheck_case ~count:40 ~name:"prob_cache matches probability"
    QCheck2.Gen.(pair (Testkit.arbitrary_netlist ()) (Testkit.probs_gen 5))
    (fun (net, probs) ->
      let b = Build.of_netlist net in
      let level_probs = Array.map (fun pos -> probs.(pos)) b.Build.order in
      let cache = Robdd.prob_cache b.Build.manager level_probs in
      let before =
        Array.map (Robdd.cached_probability cache) b.Build.roots
      in
      (* grow the manager after the cache was created *)
      let extra =
        Robdd.apply_xor b.Build.manager b.Build.roots.(0)
          (Robdd.neg b.Build.manager b.Build.roots.(Array.length b.Build.roots - 1))
      in
      let ok = ref (Testkit.approx ~eps:1e-12
                      (Robdd.probability b.Build.manager level_probs extra)
                      (Robdd.cached_probability cache extra)) in
      Array.iteri
        (fun i root ->
          if
            not
              (Testkit.approx ~eps:1e-12 before.(i)
                 (Robdd.probability b.Build.manager level_probs root))
          then ok := false)
        b.Build.roots;
      !ok)

let test_stats_counters () =
  let m = Robdd.create ~nvars:4 in
  let s0 = Robdd.stats m in
  Alcotest.(check int) "terminals only" 2 s0.Robdd.nodes;
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  let f = Robdd.apply_and m a b in
  let _ = Robdd.apply_and m a b in
  let s1 = Robdd.stats m in
  Alcotest.(check bool) "nodes grew" true (s1.Robdd.nodes > s0.Robdd.nodes);
  Alcotest.(check bool) "unique probed" true (s1.Robdd.unique_probes > 0);
  Alcotest.(check bool) "ite cache hit on repeat" true (s1.Robdd.ite_hits > 0);
  Alcotest.(check int) "nodes = total_nodes" (Robdd.total_nodes m) s1.Robdd.nodes;
  (* interning: the repeated apply created no new node *)
  Alcotest.(check int) "f interned" f (Robdd.apply_and m a b);
  ignore (Format.asprintf "%a" Robdd.pp_stats s1)

(* property: orderings are permutations of input positions *)
let prop_orderings_are_permutations =
  Testkit.qcheck_case ~count:60 ~name:"orderings are permutations"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let is_perm a =
        let n = Netlist.num_inputs net in
        Array.length a = n
        &&
        let seen = Array.make n false in
        Array.for_all
          (fun x ->
            x >= 0 && x < n && not seen.(x) && (seen.(x) <- true; true))
          a
      in
      is_perm (Ordering.reverse_topological net)
      && is_perm (Ordering.topological net)
      && is_perm (Ordering.declaration net)
      && is_perm (Ordering.disturbed net)
      && is_perm (Ordering.shuffled (Dpa_util.Rng.create 1) net))

let test_fig10_counts () =
  let net = Dpa_workload.Examples.fig10 () in
  let shared order = Build.shared_output_size net (Build.of_netlist ~order net) in
  Alcotest.(check int) "reverse topological = 7" 7 (shared (Ordering.reverse_topological net));
  Alcotest.(check int) "topological = 11" 11 (shared (Ordering.topological net));
  Alcotest.(check int) "disturbed = 8" 8 (shared (Ordering.disturbed net))

let test_fig10_orders () =
  let net = Dpa_workload.Examples.fig10 () in
  (* paper: x5,x4,x3,x2,x1 top-to-bottom; positions are 0-based *)
  Alcotest.(check (array int)) "reverse topo order" [| 4; 3; 2; 1; 0 |]
    (Ordering.reverse_topological net);
  Alcotest.(check (array int)) "topological order" [| 0; 1; 2; 3; 4 |]
    (Ordering.topological net);
  (* paper: x5,x1,x4,x3,x2 *)
  Alcotest.(check (array int)) "disturbed order" [| 4; 0; 3; 2; 1 |]
    (Ordering.disturbed net)

let test_shared_all_size () =
  let net = Dpa_workload.Examples.fig10 () in
  let b = Build.of_netlist ~order:(Ordering.reverse_topological net) net in
  (* all three outputs are the only gates, so both metrics agree *)
  Alcotest.(check int) "all-gates sharing" (Build.shared_output_size net b)
    (Build.shared_all_size net b)

let test_total_nodes_monotone () =
  let m = Robdd.create ~nvars:4 in
  let before = Robdd.total_nodes m in
  ignore (Robdd.apply_and m (Robdd.var m 0) (Robdd.var m 1));
  Alcotest.(check bool) "nodes grow" true (Robdd.total_nodes m > before)

let test_support () =
  let m = Robdd.create ~nvars:4 in
  let f = Robdd.apply_and m (Robdd.var m 0) (Robdd.var m 3) in
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Robdd.support m f);
  Alcotest.(check (list int)) "terminal support" [] (Robdd.support m Robdd.bdd_true);
  (* (a ∧ b) ∨ (a ∧ ¬b) = a: b leaves the support *)
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  let g = Robdd.apply_or m (Robdd.apply_and m a b) (Robdd.apply_and m a (Robdd.neg m b)) in
  Alcotest.(check (list int)) "reduced support" [ 0 ] (Robdd.support m g)

let test_to_dot () =
  let m = Robdd.create ~nvars:2 in
  let f = Robdd.apply_and m (Robdd.var m 0) (Robdd.var m 1) in
  let dot = Robdd.to_dot m [ ("f", f) ] in
  Alcotest.(check bool) "digraph" true (Testkit.contains_substring dot "digraph robdd");
  Alcotest.(check bool) "has root label" true (Testkit.contains_substring dot "r_f");
  Alcotest.(check bool) "has dashed edge" true (Testkit.contains_substring dot "dashed")

module Isop = Dpa_bdd.Isop

let test_isop_basics () =
  let m = Robdd.create ~nvars:3 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  (* constants *)
  Alcotest.(check int) "false = empty cover" 0 (List.length (Isop.of_node m Robdd.bdd_false));
  (match Isop.of_node m Robdd.bdd_true with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "true = single tautology cube");
  (* a ∧ b: one cube, two literals *)
  let cover = Isop.of_node m (Robdd.apply_and m a b) in
  Alcotest.(check int) "one cube" 1 (List.length cover);
  Alcotest.(check int) "two literals" 2 (Isop.literal_count cover);
  (* a ∨ b: two cubes, irredundant means 2 literals total *)
  let cover = Isop.of_node m (Robdd.apply_or m a b) in
  Alcotest.(check int) "two cubes" 2 (List.length cover);
  Alcotest.(check int) "two literals total" 2 (Isop.literal_count cover)

let test_isop_exactness_xor () =
  let m = Robdd.create ~nvars:3 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 and c = Robdd.var m 2 in
  let f = Robdd.apply_xor m (Robdd.apply_xor m a b) c in
  let cover = Isop.of_node m f in
  (* parity of 3 needs exactly 4 minterm cubes *)
  Alcotest.(check int) "4 cubes" 4 (List.length cover);
  Alcotest.(check int) "12 literals" 12 (Isop.literal_count cover);
  Alcotest.(check int) "cover equals f" f (Isop.cover_to_bdd m cover)

let test_isop_interval () =
  let m = Robdd.create ~nvars:2 in
  let a = Robdd.var m 0 and b = Robdd.var m 1 in
  (* lower = a∧b, upper = a: the single-literal cube "a" fits the interval *)
  let cover = Isop.of_interval m ~lower:(Robdd.apply_and m a b) ~upper:a in
  Alcotest.(check int) "one cube" 1 (List.length cover);
  Alcotest.(check int) "one literal" 1 (Isop.literal_count cover);
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Isop.of_interval: lower is not contained in upper") (fun () ->
      ignore (Isop.of_interval m ~lower:a ~upper:(Robdd.apply_and m a b)))

(* property: the ISOP cover computes exactly the function, and is
   irredundant (dropping any cube loses coverage) *)
let prop_isop_exact_and_irredundant =
  Testkit.qcheck_case ~count:60 ~name:"isop exact and cube-irredundant"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let built = Build.of_netlist net in
      let m = built.Build.manager in
      Array.for_all
        (fun (_, d) ->
          let f = built.Build.roots.(d) in
          let cover = Isop.of_node m f in
          Isop.cover_to_bdd m cover = f
          && List.for_all
               (fun cube ->
                 let rest = List.filter (fun c -> c != cube) cover in
                 Isop.cover_to_bdd m rest <> f)
               cover)
        (Netlist.outputs net))

module Equiv = Dpa_bdd.Equiv

let test_equiv_optimize_pairs () =
  let net = Dpa_workload.Examples.fig5 () in
  let opt = Dpa_synth.Opt.optimize net in
  (match Equiv.check net opt with
  | Equiv.Equivalent -> ()
  | Equiv.Differ _ | Equiv.Interface_mismatch _ -> Alcotest.fail "optimize broke fig5");
  Equiv.check_exn net opt

let test_equiv_detects_difference () =
  let make flip =
    let t = Netlist.create () in
    let a = Netlist.add_input t in
    let b = Netlist.add_input t in
    let g =
      if flip then Netlist.add_gate t (Dpa_logic.Gate.Or [| a; b |])
      else Netlist.add_gate t (Dpa_logic.Gate.And [| a; b |])
    in
    Netlist.add_output t "f" g;
    t
  in
  match Equiv.check (make false) (make true) with
  | Equiv.Differ { output; witness } ->
    Alcotest.(check int) "output 0" 0 output;
    (* the witness must actually distinguish AND from OR *)
    let v = witness in
    Alcotest.(check bool) "valid witness" true ((v.(0) && v.(1)) <> (v.(0) || v.(1)))
  | Equiv.Equivalent -> Alcotest.fail "missed the difference"
  | Equiv.Interface_mismatch m -> Alcotest.failf "unexpected mismatch: %s" m

let test_equiv_interface_mismatch () =
  let one = Netlist.create () in
  let a = Netlist.add_input one in
  Netlist.add_output one "f" a;
  let two = Netlist.create () in
  let x = Netlist.add_input two in
  let _y = Netlist.add_input two in
  Netlist.add_output two "f" x;
  match Equiv.check one two with
  | Equiv.Interface_mismatch _ -> ()
  | Equiv.Equivalent | Equiv.Differ _ -> Alcotest.fail "expected interface mismatch"

(* property: equivalence verdicts agree with truth tables, and witnesses
   are genuine *)
let prop_equiv_sound =
  Testkit.qcheck_case ~count:60 ~name:"equiv checker sound"
    QCheck2.Gen.(pair (Testkit.arbitrary_netlist ()) (Testkit.arbitrary_netlist ()))
    (fun (a, b) ->
      let na = Netlist.num_inputs a in
      if Netlist.num_inputs b <> na || Netlist.num_outputs b <> Netlist.num_outputs a
      then
        match Equiv.check a b with
        | Equiv.Interface_mismatch _ -> true
        | Equiv.Equivalent | Equiv.Differ _ -> false
      else begin
        let truth_equal =
          Testkit.same_function na
            (fun v -> Array.to_list (Eval.outputs a v))
            (fun v -> Array.to_list (Eval.outputs b v))
        in
        match Equiv.check a b with
        | Equiv.Equivalent -> truth_equal
        | Equiv.Differ { output; witness } ->
          (not truth_equal)
          && (Eval.outputs a witness).(output) <> (Eval.outputs b witness).(output)
        | Equiv.Interface_mismatch _ -> false
      end)

let test_best_order () =
  let net = Dpa_workload.Examples.fig10 () in
  let name, _, nodes =
    Build.best_order net
      [ ("reverse", Ordering.reverse_topological net);
        ("topo", Ordering.topological net);
        ("disturbed", Ordering.disturbed net) ]
  in
  Alcotest.(check string) "reverse wins" "reverse" name;
  Alcotest.(check int) "with 7 nodes" 7 nodes;
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Build.best_order: no candidate orders") (fun () ->
      ignore (Build.best_order net []))

let test_reorder_refines_bad_order () =
  let net = Dpa_workload.Examples.fig10 () in
  let bad = Ordering.topological net in
  let r = Dpa_bdd.Reorder.refine net bad in
  Alcotest.(check int) "initial is 11" 11 r.Dpa_bdd.Reorder.initial_nodes;
  Alcotest.(check bool) "improves" true (r.Dpa_bdd.Reorder.nodes < 11);
  Alcotest.(check bool) "accepted swaps" true (r.Dpa_bdd.Reorder.swaps_accepted > 0);
  (* the refined order must actually produce the reported count *)
  let check = Build.shared_all_size net (Build.of_netlist ~order:r.Dpa_bdd.Reorder.order net) in
  Alcotest.(check int) "order consistent" r.Dpa_bdd.Reorder.nodes check;
  (* exactly one oracle call per candidate swap, plus the start-order probe *)
  let n = Netlist.num_inputs net in
  Alcotest.(check int) "oracle call accounting"
    (1 + (r.Dpa_bdd.Reorder.passes * (n - 1)))
    r.Dpa_bdd.Reorder.oracle_calls

let test_reorder_initial_cost_seed () =
  let net = Dpa_workload.Examples.fig10 () in
  let bad = Ordering.topological net in
  let n = Netlist.num_inputs net in
  let oracle order = Build.shared_all_size net (Build.of_netlist ~order net) in
  (* seeding the incumbent skips the start-order probe entirely *)
  let r = Dpa_bdd.Reorder.refine_cost ~initial_cost:11 ~cost:oracle bad in
  Alcotest.(check int) "seed recorded" 11 r.Dpa_bdd.Reorder.initial_nodes;
  Alcotest.(check int) "no start-order probe"
    (r.Dpa_bdd.Reorder.passes * (n - 1))
    r.Dpa_bdd.Reorder.oracle_calls;
  (* an infeasible seed (the ladder's case) still lets a feasible
     neighbour win *)
  let r' = Dpa_bdd.Reorder.refine_cost ~initial_cost:max_int ~cost:oracle bad in
  Alcotest.(check bool) "escapes infeasible seed" true (r'.Dpa_bdd.Reorder.nodes < max_int)

(* property: refinement never makes the order worse and keeps a permutation *)
let prop_reorder_never_worse =
  Testkit.qcheck_case ~count:40 ~name:"reorder never worse"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let seed = Ordering.declaration net in
      let r = Dpa_bdd.Reorder.refine ~max_passes:3 net seed in
      let sorted = Array.copy r.Dpa_bdd.Reorder.order in
      Array.sort compare sorted;
      r.Dpa_bdd.Reorder.nodes <= r.Dpa_bdd.Reorder.initial_nodes
      && sorted = Array.init (Netlist.num_inputs net) Fun.id)

let suite =
  [ Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "reorder refines" `Quick test_reorder_refines_bad_order;
    Alcotest.test_case "reorder initial cost" `Quick test_reorder_initial_cost_seed;
    prop_reorder_never_worse;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "equiv optimize" `Quick test_equiv_optimize_pairs;
    Alcotest.test_case "equiv difference" `Quick test_equiv_detects_difference;
    Alcotest.test_case "equiv interface" `Quick test_equiv_interface_mismatch;
    prop_equiv_sound;
    Alcotest.test_case "best order" `Quick test_best_order;
    Alcotest.test_case "isop basics" `Quick test_isop_basics;
    Alcotest.test_case "isop parity" `Quick test_isop_exactness_xor;
    Alcotest.test_case "isop interval" `Quick test_isop_interval;
    prop_isop_exact_and_irredundant;
    Alcotest.test_case "var and eval" `Quick test_var_and_eval;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "xor and size" `Quick test_xor_and_size;
    Alcotest.test_case "probability basics" `Quick test_probability_basic;
    Alcotest.test_case "var bounds" `Quick test_var_bounds;
    Alcotest.test_case "fig10 node counts" `Quick test_fig10_counts;
    Alcotest.test_case "fig10 orders" `Quick test_fig10_orders;
    Alcotest.test_case "shared all size" `Quick test_shared_all_size;
    Alcotest.test_case "total nodes monotone" `Quick test_total_nodes_monotone;
    prop_bdd_equals_eval;
    prop_probability_exact;
    prop_probability_exact_wide;
    prop_prob_cache_consistent;
    Alcotest.test_case "kernel stats counters" `Quick test_stats_counters;
    prop_orderings_are_permutations ]
