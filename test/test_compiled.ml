(* The compiled bit-parallel simulation backend. The contract under test
   is exact equality with the interpreter — same per-node fire counts,
   same per-input toggle counts, same probabilities — for equal seeds at
   every cycle count, including partial final passes (cycles mod 63 ≠ 0).
   Floats are compared through [Int64.bits_of_float]: the backends share
   one Bernoulli stream, so "close" is not good enough. *)

module Backend = Dpa_sim.Backend
module Compiled = Dpa_sim.Compiled
module Simulator = Dpa_sim.Simulator
module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Phase = Dpa_synth.Phase
module Mapped = Dpa_domino.Mapped
module Rng = Dpa_util.Rng
module Engine = Dpa_power.Engine

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_blif path =
  let text = read_file path in
  match Dpa_logic.Blif.of_string text with
  | Ok net -> net
  | Error _ -> (
    match Dpa_logic.Blif.sequential_of_string text with
    | Ok s -> s.Dpa_logic.Blif.comb
    | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg)

let data_files =
  [
    "../data/apex7_synthetic.blif";
    "../data/frg1_synthetic.blif";
    "../data/seq_controller.blif";
  ]

let check_bits msg a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" msg a b

let check_bits_array msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" msg i) x b.(i)) a

(* optimize + all-positive realization + mapping, keeping the optimized
   netlist so input_probs is sized off the original PI count *)
let prep raw =
  let net = Dpa_synth.Opt.optimize raw in
  let mapped =
    Mapped.map (Dpa_synth.Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net)))
  in
  (net, mapped)

let check_identity ~name ~cycles ~seed (net, mapped) =
  let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
  let interp =
    Simulator.measure ~backend:Backend.Interp ~cycles (Rng.create seed) ~input_probs
      mapped
  in
  let compiled =
    Simulator.measure ~backend:Backend.Compiled ~cycles (Rng.create seed) ~input_probs
      mapped
  in
  let tag = Printf.sprintf "%s@%d" name cycles in
  Alcotest.(check (array int))
    (tag ^ " fire counts")
    interp.Simulator.fire_counts compiled.Simulator.fire_counts;
  check_bits_array (tag ^ " input toggles") interp.Simulator.input_toggles
    compiled.Simulator.input_toggles;
  check_bits_array (tag ^ " node probs") interp.Simulator.node_probs
    compiled.Simulator.node_probs;
  Alcotest.(check int) (tag ^ " cycles") interp.Simulator.cycles compiled.Simulator.cycles

(* ---- bit-identity across the data/ circuits ----------------------- *)

let test_identity_data_circuits () =
  List.iter
    (fun path ->
      let prepped = prep (load_blif path) in
      (* 1 and 62: single partial pass; 63: exactly one full pass; 64 and
         1000: full passes plus a partial tail crossing pass boundaries *)
      List.iter
        (fun cycles ->
          check_identity ~name:(Filename.basename path) ~cycles ~seed:2024 prepped)
        [ 1; 62; 63; 64; 1000 ])
    data_files

let test_identity_workload_profiles () =
  (* table profiles only: corpus profiles are exercised (at CI size) by
     test_corpus, and the big ones are too large for a per-seed sweep *)
  List.iter
    (fun p ->
      let name = p.Dpa_workload.Profiles.name in
      let prepped = prep (Dpa_workload.Profiles.build_comb p) in
      List.iter (fun cycles -> check_identity ~name ~cycles ~seed:7 prepped) [ 65; 126 ])
    Dpa_workload.Profiles.table1

let test_identity_many_seeds () =
  (* the stream equality must hold for any seed, not just a lucky one *)
  let prepped = prep (load_blif "../data/frg1_synthetic.blif") in
  List.iter
    (fun seed -> check_identity ~name:"frg1" ~cycles:200 ~seed prepped)
    [ 1; 2; 3; 17; 123456 ]

(* ---- tape lowering ------------------------------------------------ *)

let test_lowering_constants () =
  (* constant nodes must hold their value in every lane, full and partial
     passes alike; a gate fed by a constant folds to the live input *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let ct = Netlist.add_gate t (Gate.Const true) in
  let cf = Netlist.add_gate t (Gate.Const false) in
  let f = Netlist.add_gate t (Gate.And [| a; ct |]) in
  let g = Netlist.add_gate t (Gate.Or [| a; cf |]) in
  Netlist.add_output t "f" f;
  Netlist.add_output t "g" g;
  let prog = Compiled.of_netlist t in
  Alcotest.(check int) "n_nodes" (Netlist.size t) (Compiled.n_nodes prog);
  let probs =
    Compiled.node_probabilities ~cycles:70 (Rng.create 3) ~input_probs:[| 0.5 |] prog
  in
  check_bits "const true" 1.0 probs.(ct);
  check_bits "const false" 0.0 probs.(cf);
  (* f = a ∧ 1 = a and g = a ∨ 0 = a: all three sample the same stream *)
  check_bits "and with true = a" probs.(a) probs.(f);
  check_bits "or with false = a" probs.(a) probs.(g)

let test_lowering_single_gates () =
  (* deterministic inputs (p = 1 or 0) make every gate's output exact *)
  let t = Netlist.create () in
  let one = Netlist.add_input ~name:"one" t in
  let zero = Netlist.add_input ~name:"zero" t in
  let and2 = Netlist.add_gate t (Gate.And [| one; zero |]) in
  let or2 = Netlist.add_gate t (Gate.Or [| one; zero |]) in
  let not1 = Netlist.add_gate t (Gate.Not one) in
  let buf1 = Netlist.add_gate t (Gate.Buf zero) in
  let and1 = Netlist.add_gate t (Gate.And [| one |]) in
  let and3 = Netlist.add_gate t (Gate.And [| one; one; zero |]) in
  let or3 = Netlist.add_gate t (Gate.Or [| zero; zero; one |]) in
  Netlist.add_output t "f" or3;
  let prog = Compiled.of_netlist t in
  let probs =
    Compiled.node_probabilities ~cycles:100 (Rng.create 9) ~input_probs:[| 1.0; 0.0 |]
      prog
  in
  check_bits "and2(1,0)" 0.0 probs.(and2);
  check_bits "or2(1,0)" 1.0 probs.(or2);
  check_bits "not(1)" 0.0 probs.(not1);
  check_bits "buf(0)" 0.0 probs.(buf1);
  check_bits "and1(1)" 1.0 probs.(and1);
  check_bits "and3(1,1,0)" 0.0 probs.(and3);
  check_bits "or3(0,0,1)" 1.0 probs.(or3)

let test_lowering_xor_chain () =
  (* a parity chain over always-one inputs: node k of the chain holds the
     parity of k+2 ones, so probabilities alternate 0/1 exactly *)
  let n = 8 in
  let t = Netlist.create () in
  let xs = Array.init n (fun k -> Netlist.add_input ~name:(Printf.sprintf "x%d" k) t) in
  let chain = Array.make (n - 1) 0 in
  let prev = ref xs.(0) in
  for k = 1 to n - 1 do
    let y = Netlist.add_gate t (Gate.Xor (!prev, xs.(k))) in
    chain.(k - 1) <- y;
    prev := y
  done;
  Netlist.add_output t "parity" !prev;
  let prog = Compiled.of_netlist t in
  let probs =
    Compiled.node_probabilities ~cycles:63 (Rng.create 2) ~input_probs:(Array.make n 1.0)
      prog
  in
  Array.iteri
    (fun k y ->
      let expected = if (k + 2) mod 2 = 0 then 0.0 else 1.0 in
      check_bits (Printf.sprintf "parity of %d ones" (k + 2)) expected probs.(y))
    chain

let test_measure_counts_validation () =
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  Netlist.add_output t "f" a;
  let prog = Compiled.of_netlist t in
  Alcotest.(check bool) "cycles=0 rejected" true
    (match
       Compiled.measure_counts ~cycles:0 (Rng.create 1) ~input_probs:[| 0.5 |] prog
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---- engine integration: jobs invariance and backend equality ----- *)

let test_engine_jobs_invariance () =
  (* a node budget tight enough that cones fall through to the
     Monte-Carlo rung, on the compiled backend: jobs=1 and jobs=4 must
     price every node bit-identically (Rng.derive per-cone streams).
     The cap is per-cone headroom over the shard store, so it must be
     smaller than the marginal footprint of a nontrivial cone *)
  let net, mapped = prep (load_blif "../data/frg1_synthetic.blif") in
  let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
  let budget =
    { Engine.default_budget with
      Engine.max_bdd_nodes = Some 2;
      sim_backend = Backend.Compiled }
  in
  let run jobs =
    Dpa_util.Par.with_pool ~jobs (fun pool ->
        Engine.estimate ~par:pool ~budget ~input_probs mapped)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "sim rung exercised" true
    (Engine.simulated_cones r1.Engine.degradation > 0);
  check_bits "total" r1.Engine.report.Dpa_power.Estimate.total
    r4.Engine.report.Dpa_power.Estimate.total;
  check_bits_array "node probs" r1.Engine.report.Dpa_power.Estimate.node_probs
    r4.Engine.report.Dpa_power.Estimate.node_probs

let test_engine_backend_equality () =
  (* the ladder's answers cannot depend on which backend simulated the
     fallback cones — counts are bit-identical, so totals must be too *)
  let net, mapped = prep (load_blif "../data/frg1_synthetic.blif") in
  let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
  let run backend =
    let budget =
      { Engine.default_budget with
        Engine.max_bdd_nodes = Some 2;
        sim_backend = backend }
    in
    Dpa_util.Par.with_pool ~jobs:2 (fun pool ->
        Engine.estimate ~par:pool ~budget ~input_probs mapped)
  in
  let ri = run Backend.Interp and rc = run Backend.Compiled in
  check_bits "total" ri.Engine.report.Dpa_power.Estimate.total
    rc.Engine.report.Dpa_power.Estimate.total;
  check_bits_array "node probs" ri.Engine.report.Dpa_power.Estimate.node_probs
    rc.Engine.report.Dpa_power.Estimate.node_probs

(* ---- static sim backend equality ---------------------------------- *)

let test_static_sim_backend_equality () =
  (* the reconvergent circuit from the static-sim tests: the Compiled
     mode elides the per-cycle zero-delay recomputation, which must not
     change a single count *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let na = Netlist.add_gate t (Gate.Not a) in
  let t1 = Netlist.add_gate t (Gate.And [| a; b |]) in
  let t2 = Netlist.add_gate t (Gate.And [| na; b |]) in
  let f = Netlist.add_gate t (Gate.Or [| t1; t2 |]) in
  Netlist.add_output t "f" f;
  let run backend =
    Dpa_sim.Static_sim.measure ~backend ~cycles:4000 (Rng.create 5)
      ~input_probs:[| 0.5; 0.9 |] t
  in
  let i = run Backend.Interp and c = run Backend.Compiled in
  check_bits "zero_delay" i.Dpa_sim.Static_sim.zero_delay c.Dpa_sim.Static_sim.zero_delay;
  check_bits "with_glitches" i.Dpa_sim.Static_sim.with_glitches
    c.Dpa_sim.Static_sim.with_glitches;
  check_bits "glitch_ratio" i.Dpa_sim.Static_sim.glitch_ratio
    c.Dpa_sim.Static_sim.glitch_ratio;
  Alcotest.(check int) "cycles" i.Dpa_sim.Static_sim.cycles c.Dpa_sim.Static_sim.cycles

(* ---- unified cycle default ---------------------------------------- *)

let test_default_cycles () =
  Alcotest.(check int) "shared constant" 10_000 Backend.default_cycles;
  let _, mapped = prep (Dpa_workload.Examples.fig5 ()) in
  let a = Simulator.measure (Rng.create 1) ~input_probs:(Array.make 4 0.5) mapped in
  Alcotest.(check int) "Simulator.measure default" Backend.default_cycles
    a.Simulator.cycles;
  let t = Netlist.create () in
  let x = Netlist.add_input t in
  let y = Netlist.add_gate t (Gate.Not x) in
  Netlist.add_output t "f" y;
  let m = Dpa_sim.Static_sim.measure (Rng.create 1) ~input_probs:[| 0.5 |] t in
  Alcotest.(check int) "Static_sim.measure default" Backend.default_cycles
    m.Dpa_sim.Static_sim.cycles

let test_backend_strings () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Backend.to_string b ^ " roundtrip")
        true
        (Backend.of_string (Backend.to_string b) = Some b))
    Backend.all;
  Alcotest.(check bool) "unknown rejected" true (Backend.of_string "fast" = None)

let suite =
  [ Alcotest.test_case "identity on data circuits" `Quick test_identity_data_circuits;
    Alcotest.test_case "identity on workload profiles" `Quick
      test_identity_workload_profiles;
    Alcotest.test_case "identity across seeds" `Quick test_identity_many_seeds;
    Alcotest.test_case "lowering: constants" `Quick test_lowering_constants;
    Alcotest.test_case "lowering: single gates" `Quick test_lowering_single_gates;
    Alcotest.test_case "lowering: xor chain" `Quick test_lowering_xor_chain;
    Alcotest.test_case "measure_counts validation" `Quick test_measure_counts_validation;
    Alcotest.test_case "engine jobs invariance" `Quick test_engine_jobs_invariance;
    Alcotest.test_case "engine backend equality" `Quick test_engine_backend_equality;
    Alcotest.test_case "static sim backend equality" `Quick
      test_static_sim_backend_equality;
    Alcotest.test_case "unified cycle default" `Quick test_default_cycles;
    Alcotest.test_case "backend strings" `Quick test_backend_strings ]
