(* The observability layer: span nesting and exception safety, near-zero
   cost when disabled, Chrome-trace JSON validated through an independent
   parser (Jsonlite), exact histogram boundary semantics, and the
   end-to-end span names the flow and the degradation ladder must emit. *)

module Jsonlite = Dpa_util.Jsonlite
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics
module Profile = Dpa_obs.Profile
module Flow = Dpa_core.Flow
module Engine = Dpa_power.Engine

(* Trace and Metrics are process-global; every test restores a clean
   slate so suite order never matters. *)
let with_trace f =
  Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      Trace.stop ();
      Trace.clear ();
      Trace.set_span_hook None)
    f

let span_names () =
  List.filter_map
    (fun (e : Trace.event) -> if e.kind = `Span then Some e.name else None)
    (Trace.events ())

let find_span name =
  match List.find_opt (fun (e : Trace.event) -> e.name = name) (Trace.events ()) with
  | Some e -> e
  | None -> Alcotest.failf "no event named %S in trace" name

(* ---- span recording ----------------------------------------------- *)

let test_span_nesting () =
  with_trace @@ fun () ->
  Alcotest.(check int) "depth outside" 0 (Trace.depth ());
  Trace.with_span "outer" (fun () ->
      Alcotest.(check int) "depth in outer" 1 (Trace.depth ());
      Trace.with_span "inner" ~args:[ ("k", Trace.Int 7) ] (fun () ->
          Alcotest.(check int) "depth in inner" 2 (Trace.depth ()));
      Trace.instant "tick");
  Alcotest.(check int) "depth after" 0 (Trace.depth ());
  (* spans are emitted when they close: inner before outer *)
  Alcotest.(check (list string)) "emission order" [ "inner"; "outer" ] (span_names ());
  let outer = find_span "outer" and inner = find_span "inner" in
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
  Alcotest.(check bool) "inner arg kept" true
    (List.mem ("k", Trace.Int 7) inner.Trace.args);
  (* timestamp containment is what lets Perfetto rebuild the tree *)
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Trace.ts_ns >= outer.Trace.ts_ns);
  Alcotest.(check bool) "inner ends before outer" true
    (inner.Trace.ts_ns + inner.Trace.dur_ns
    <= outer.Trace.ts_ns + outer.Trace.dur_ns)

let test_span_closes_on_exception () =
  with_trace @@ fun () ->
  (try Trace.with_span "doomed" (fun () -> raise Exit) with
  | Exit -> ());
  Alcotest.(check int) "depth restored" 0 (Trace.depth ());
  Alcotest.(check (list string)) "span still recorded" [ "doomed" ] (span_names ());
  (* and the recorder still works afterwards *)
  Trace.with_span "next" (fun () -> ());
  Alcotest.(check int) "subsequent spans fine" 2 (List.length (span_names ()))

let test_add_args_lands_on_innermost () =
  with_trace @@ fun () ->
  Trace.with_span "parent" (fun () ->
      Trace.with_span "child" (fun () ->
          Trace.add_args [ ("method", Trace.Str "simulated") ]));
  let child = find_span "child" and parent = find_span "parent" in
  Alcotest.(check bool) "child tagged" true
    (List.mem_assoc "method" child.Trace.args);
  Alcotest.(check bool) "parent untouched" false
    (List.mem_assoc "method" parent.Trace.args)

let test_disabled_tracing_allocates_nothing () =
  Trace.stop ();
  Trace.clear ();
  Trace.set_span_hook None;
  let f = fun () -> () in
  (* warm up so any one-time allocation is out of the measured window *)
  for _ = 1 to 100 do
    Trace.with_span "obs.disabled" f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.with_span "obs.disabled" f
  done;
  let allocated = Gc.minor_words () -. before in
  (* zero per-call allocation: a small constant tolerates the boxed
     floats Gc.minor_words itself may produce under bytecode *)
  if allocated > 256.0 then
    Alcotest.failf "disabled with_span allocated %.0f minor words over 10k calls"
      allocated;
  Alcotest.(check int) "nothing recorded" 0 (Trace.events_recorded ())

let test_span_hook_fires_without_buffer () =
  Trace.stop ();
  Trace.clear ();
  let fired = ref [] in
  Trace.set_span_hook (Some (fun name dur -> fired := (name, dur) :: !fired));
  Fun.protect ~finally:(fun () -> Trace.set_span_hook None) @@ fun () ->
  Trace.with_span "hooked" (fun () -> ());
  (match !fired with
  | [ (name, dur) ] ->
    Alcotest.(check string) "hook saw span" "hooked" name;
    Alcotest.(check bool) "non-negative duration" true (dur >= 0)
  | l -> Alcotest.failf "expected 1 hook call, got %d" (List.length l));
  Alcotest.(check int) "buffer stays empty" 0 (Trace.events_recorded ())

(* ---- Chrome trace JSON export ------------------------------------- *)

let test_chrome_json_round_trip () =
  with_trace @@ fun () ->
  Trace.with_span "outer" ~args:[ ("quoted", Trace.Str "a\"b\nc") ] (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.instant "blip" ~args:[ ("ok", Trace.Bool true) ];
      Trace.counter "level" [ ("remaining", 42.0) ]);
  let json = Jsonlite.parse (Trace.to_json ()) in
  Alcotest.(check string) "display unit" "ms"
    (Jsonlite.to_string (Jsonlite.member "displayTimeUnit" json));
  let events = Jsonlite.to_list (Jsonlite.member "traceEvents" json) in
  Alcotest.(check int) "all events exported" (Trace.events_recorded ())
    (List.length events);
  let by_name n =
    match
      List.find_opt
        (fun e -> Jsonlite.to_string (Jsonlite.member "name" e) = n)
        events
    with
    | Some e -> e
    | None -> Alcotest.failf "no JSON event named %S" n
  in
  List.iter
    (fun e ->
      Alcotest.(check string) "category" "dpa"
        (Jsonlite.to_string (Jsonlite.member "cat" e));
      Alcotest.(check int) "pid" 1 (Jsonlite.to_int (Jsonlite.member "pid" e));
      Alcotest.(check int) "tid" 1 (Jsonlite.to_int (Jsonlite.member "tid" e));
      ignore (Jsonlite.to_float (Jsonlite.member "ts" e)))
    events;
  let outer = by_name "outer" and inner = by_name "inner" in
  Alcotest.(check string) "span phase" "X"
    (Jsonlite.to_string (Jsonlite.member "ph" outer));
  Alcotest.(check string) "escape round-trips" "a\"b\nc"
    (Jsonlite.to_string (Jsonlite.member "quoted" (Jsonlite.member "args" outer)));
  (* nesting is reconstructable from ts/dur containment on one tid *)
  let ts e = Jsonlite.to_float (Jsonlite.member "ts" e)
  and dur e = Jsonlite.to_float (Jsonlite.member "dur" e) in
  Alcotest.(check bool) "containment" true
    (ts inner >= ts outer && ts inner +. dur inner <= ts outer +. dur outer);
  let blip = by_name "blip" in
  Alcotest.(check string) "instant phase" "i"
    (Jsonlite.to_string (Jsonlite.member "ph" blip));
  Alcotest.(check string) "instant scope" "t"
    (Jsonlite.to_string (Jsonlite.member "s" blip));
  let level = by_name "level" in
  Alcotest.(check string) "counter phase" "C"
    (Jsonlite.to_string (Jsonlite.member "ph" level));
  Alcotest.check (Alcotest.float 1e-9) "counter series" 42.0
    (Jsonlite.to_float (Jsonlite.member "remaining" (Jsonlite.member "args" level)))

(* ---- metrics registry --------------------------------------------- *)

let test_histogram_boundary_bucketing () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "obs.test.bounds" in
  (* le semantics: a value lands in the first bucket with v <= bound *)
  Metrics.observe h 0.0;
  Metrics.observe h 1.0;
  (* boundary: belongs to the bucket it bounds *)
  Metrics.observe h 1.0000001;
  Metrics.observe h 2.0;
  Metrics.observe h 5.0;
  Metrics.observe h 5.0000001;
  (* just past the last bound: overflow *)
  let buckets, overflow = Metrics.bucket_counts h in
  Alcotest.(check (array (pair (float 1e-9) int)))
    "per-bucket counts"
    [| (1.0, 2); (2.0, 2); (5.0, 1) |]
    buckets;
  Alcotest.(check int) "overflow" 1 overflow;
  Alcotest.(check int) "total count" 6 (Metrics.histogram_count h);
  Alcotest.check (Alcotest.float 1e-6) "sum" 14.0000002 (Metrics.histogram_sum h)

let test_registry_kind_clash_and_monotonicity () =
  Metrics.reset ();
  let c = Metrics.counter "obs.test.clash" in
  Metrics.add c 3;
  Alcotest.(check int) "get-or-create returns same cell" 3
    (Metrics.counter_value (Metrics.counter "obs.test.clash"));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"obs.test.clash\" is already registered as a counter")
    (fun () -> ignore (Metrics.gauge "obs.test.clash"));
  Alcotest.check_raises "counters only go up"
    (Invalid_argument "Metrics.add: negative delta") (fun () -> Metrics.add c (-1));
  let g = Metrics.gauge "obs.test.peak" in
  Metrics.set_max g 5.0;
  Metrics.set_max g 3.0;
  Alcotest.check (Alcotest.float 1e-9) "set_max keeps maximum" 5.0
    (Metrics.gauge_value g)

let test_metrics_json_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "obs.test.count" in
  Metrics.add c 11;
  let g = Metrics.gauge "obs.test.level" in
  Metrics.set g 2.5;
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] "obs.test.lat" in
  Metrics.observe h 0.5;
  Metrics.observe h 7.0;
  let json = Jsonlite.parse (Metrics.to_json ()) in
  Alcotest.(check int) "counter exported" 11
    (Jsonlite.to_int
       (Jsonlite.member "obs.test.count" (Jsonlite.member "counters" json)));
  Alcotest.check (Alcotest.float 1e-9) "gauge exported" 2.5
    (Jsonlite.to_float
       (Jsonlite.member "obs.test.level" (Jsonlite.member "gauges" json)));
  let hj = Jsonlite.member "obs.test.lat" (Jsonlite.member "histograms" json) in
  Alcotest.(check int) "histogram count exported" 2
    (Jsonlite.to_int (Jsonlite.member "count" hj));
  let first_bucket = List.hd (Jsonlite.to_list (Jsonlite.member "buckets" hj)) in
  Alcotest.check (Alcotest.float 1e-9) "bucket bound" 1.0
    (Jsonlite.to_float (Jsonlite.member "le" first_bucket));
  Alcotest.(check int) "bucket count" 1
    (Jsonlite.to_int (Jsonlite.member "count" first_bucket));
  (* reset zeroes values but keeps registrations (held cells stay valid) *)
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
  Alcotest.(check bool) "registration kept" true
    (List.mem "obs.test.count" (Metrics.names ()));
  Metrics.add c 1;
  Alcotest.(check int) "held cell still live" 1
    (Metrics.counter_value (Metrics.counter "obs.test.count"))

let test_profile_bridges_spans_to_metrics () =
  Metrics.reset ();
  Trace.stop ();
  Trace.clear ();
  Profile.enable ();
  Fun.protect ~finally:(fun () -> Profile.disable ()) @@ fun () ->
  Trace.with_span "obs.bridge" (fun () -> ());
  Trace.with_span "obs.bridge" (fun () -> ());
  let h = Metrics.histogram "span.obs.bridge.ms" in
  Alcotest.(check int) "two observations" 2 (Metrics.histogram_count h);
  Alcotest.(check bool) "trace buffer off" true (Trace.events_recorded () = 0)

(* ---- end-to-end span coverage ------------------------------------- *)

let test_flow_emits_expected_spans () =
  with_trace @@ fun () ->
  let net = Dpa_workload.Examples.fig5 () in
  ignore (Flow.compare_ma_mp net);
  let names = span_names () in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "flow.compare"; "flow.min_area"; "flow.min_power"; "flow.realize";
      "flow.optimize"; "phase.optimize"; "engine.estimate" ];
  Alcotest.(check bool) "block estimation spans present" true
    (List.exists
       (fun n -> n = "estimate.block" || n = "estimate.block.incremental")
       names);
  (* the optimizer span records which strategy ran and how hard it worked *)
  let opt = find_span "phase.optimize" in
  Alcotest.(check bool) "strategy tagged" true
    (List.mem_assoc "strategy" opt.Trace.args);
  Alcotest.(check bool) "measurements tagged" true
    (List.mem_assoc "measurements" opt.Trace.args)

let test_budgeted_estimate_tags_ladder_method () =
  with_trace @@ fun () ->
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let mapped =
    Dpa_domino.Mapped.map
      (Dpa_synth.Inverterless.realize net (Dpa_synth.Phase.all_positive 2))
  in
  let budget = Engine.bounded ~max_bdd_nodes:4 ~fallback:Engine.Simulate () in
  let est = Engine.estimate ~budget ~input_probs:(Array.make 4 0.5) mapped in
  Alcotest.(check bool) "budget actually forced a fallback" false
    (Engine.all_exact est.Engine.degradation);
  let events = Trace.events () in
  let cones =
    List.filter (fun (e : Trace.event) -> e.name = "engine.cone") events
  in
  Alcotest.(check bool) "per-cone spans present" true (cones <> []);
  List.iter
    (fun (e : Trace.event) ->
      match List.assoc_opt "rung" e.Trace.args with
      | Some (Trace.Str ("exact" | "reorder" | "sift")) -> ()
      | Some _ -> Alcotest.failf "engine.cone has non-string rung arg"
      | None -> Alcotest.failf "engine.cone span missing rung arg")
    cones;
  let methods =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.name = "engine.cone.method" then
          match List.assoc_opt "method" e.Trace.args with
          | Some (Trace.Str m) -> Some m
          | _ -> Alcotest.failf "engine.cone.method missing method arg"
        else None)
      events
  in
  Alcotest.(check int) "one method tag per cone" 2 (List.length methods);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m ^ " is a ladder rung") true
        (List.mem m [ "exact"; "reordered"; "simulated" ]))
    methods;
  Alcotest.(check bool) "tiny budget forced simulation" true
    (List.mem "simulated" methods);
  Alcotest.(check bool) "ladder instants present" true
    (List.exists (fun (e : Trace.event) -> e.name = "engine.ladder.sim") events);
  Alcotest.(check bool) "budget counter track present" true
    (List.exists (fun (e : Trace.event) -> e.name = "engine.budget") events)

let test_blif_parse_span () =
  with_trace @@ fun () ->
  let text =
    let ic = open_in_bin "../data/frg1_synthetic.blif" in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Dpa_logic.Blif.sequential_of_string text with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "frg1 failed to parse: %s" msg);
  let parse = find_span "blif.parse" in
  let int_arg k =
    match List.assoc_opt k parse.Trace.args with
    | Some (Trace.Int v) -> v
    | _ -> Alcotest.failf "blif.parse span missing int arg %S" k
  in
  Alcotest.(check bool) "line count recorded" true (int_arg "lines" > 0);
  Alcotest.(check int) "byte count exact" (String.length text) (int_arg "bytes");
  Alcotest.(check bool) "gate count recorded" true (int_arg "gates" > 0)

let suite =
  [ Alcotest.test_case "span nesting and depth" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick test_span_closes_on_exception;
    Alcotest.test_case "add_args hits innermost span" `Quick
      test_add_args_lands_on_innermost;
    Alcotest.test_case "disabled tracing allocates nothing" `Quick
      test_disabled_tracing_allocates_nothing;
    Alcotest.test_case "span hook without buffer" `Quick
      test_span_hook_fires_without_buffer;
    Alcotest.test_case "Chrome JSON round-trip" `Quick test_chrome_json_round_trip;
    Alcotest.test_case "histogram boundary bucketing" `Quick
      test_histogram_boundary_bucketing;
    Alcotest.test_case "registry kind clash and monotonicity" `Quick
      test_registry_kind_clash_and_monotonicity;
    Alcotest.test_case "metrics JSON and reset" `Quick test_metrics_json_and_reset;
    Alcotest.test_case "profile bridges spans to metrics" `Quick
      test_profile_bridges_spans_to_metrics;
    Alcotest.test_case "flow emits expected spans" `Quick
      test_flow_emits_expected_spans;
    Alcotest.test_case "budgeted estimate tags ladder method" `Quick
      test_budgeted_estimate_tags_ladder_method;
    Alcotest.test_case "blif.parse span args" `Quick test_blif_parse_span ]
