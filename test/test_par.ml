(* The shared work-stealing domain pool and the parallel-identity
   property: everything the pool touches — per-cone estimation, the
   speculative greedy replay, Monte-Carlo fallback streams — must be
   bit-identical at every jobs count. Floats are compared through
   [Int64.bits_of_float]: "close" is not good enough here. *)

module Par = Dpa_util.Par
module Rng = Dpa_util.Rng
module Engine = Dpa_power.Engine
module Optimizer = Dpa_phase.Optimizer

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* combinational designs parse directly; sequential ones contribute
   their combinational core (latch outputs become PIs), as the flow
   does *)
let load_blif path =
  let text = read_file path in
  match Dpa_logic.Blif.of_string text with
  | Ok net -> net
  | Error _ -> (
    match Dpa_logic.Blif.sequential_of_string text with
    | Ok s -> s.Dpa_logic.Blif.comb
    | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg)

let data_files =
  [
    "../data/apex7_synthetic.blif";
    "../data/frg1_synthetic.blif";
    "../data/seq_controller.blif";
  ]

let check_bits msg a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" msg a b

let check_bits_array msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" msg i) x b.(i)) a

(* ---- the pool itself ---------------------------------------------- *)

let test_map_ordered () =
  Par.with_pool ~jobs:4 @@ fun pool ->
  let r = Par.map pool 1000 (fun i -> i * i) in
  Alcotest.(check int) "length" 1000 (Array.length r);
  Array.iteri (fun i v -> Alcotest.(check int) "slot" (i * i) v) r

let test_map_empty_and_single () =
  Par.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check int) "empty" 0 (Array.length (Par.map pool 0 (fun i -> i)));
  Alcotest.(check (array int)) "single" [| 7 |] (Par.map pool 1 (fun _ -> 7))

let test_reduce_ordered_noncommutative () =
  (* string concatenation does not commute: any out-of-order fold shows *)
  let seq =
    List.fold_left (fun acc i -> acc ^ string_of_int i ^ ";") "" (List.init 64 Fun.id)
  in
  Par.with_pool ~jobs:4 @@ fun pool ->
  for _ = 1 to 10 do
    let got =
      Par.reduce pool 64
        ~map:(fun i -> string_of_int i ^ ";")
        ~fold:(fun acc s -> acc ^ s)
        ~init:""
    in
    Alcotest.(check string) "ordered fold" seq got
  done

let test_jobs1_inline_matches () =
  let with_jobs j =
    Par.with_pool ~jobs:j @@ fun pool -> Par.map pool 100 (fun i -> (i * 37) mod 11)
  in
  Alcotest.(check (array int)) "jobs 1 = jobs 4" (with_jobs 1) (with_jobs 4)

exception Boom of int

let test_exception_lowest_index () =
  Par.with_pool ~jobs:4 @@ fun pool ->
  let saw =
    try
      ignore (Par.map pool 100 (fun i -> if i = 37 || i = 53 then raise (Boom i) else i));
      None
    with Boom i -> Some i
  in
  (* the lowest failing index wins, deterministically *)
  Alcotest.(check (option int)) "lowest failure" (Some 37) saw;
  (* the pool survives a failed region *)
  let r = Par.map pool 8 (fun i -> i + 1) in
  Alcotest.(check int) "pool alive after failure" 8 r.(7)

let test_nested_use_rejected () =
  Par.with_pool ~jobs:2 @@ fun pool ->
  let rejected =
    try
      ignore (Par.map pool 4 (fun _ -> Array.length (Par.map pool 2 (fun i -> i))));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nested map raises Invalid_argument" true rejected;
  Alcotest.(check int) "pool alive after rejection" 3 (Par.map pool 4 Fun.id).(3)

let test_create_bounds () =
  let invalid jobs =
    try
      Par.shutdown (Par.create ~jobs);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "jobs 0 rejected" true (invalid 0);
  Alcotest.(check bool) "jobs 127 rejected" true (invalid 127)

let test_shutdown_idempotent () =
  let pool = Par.create ~jobs:3 in
  Alcotest.(check int) "works" 5 (Par.map pool 6 Fun.id).(5);
  Par.shutdown pool;
  Par.shutdown pool

let test_stats_count_tasks () =
  Par.with_pool ~jobs:2 @@ fun pool ->
  let before = (Par.stats pool).Par.tasks in
  ignore (Par.map pool 50 Fun.id);
  let after = (Par.stats pool).Par.tasks in
  Alcotest.(check int) "50 tasks accounted" 50 (after - before)

(* ---- split Rng streams -------------------------------------------- *)

let test_rng_derive_deterministic () =
  let a = Rng.derive ~base:42 ~index:7 and b = Rng.derive ~base:42 ~index:7 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_derive_independent () =
  let a = Rng.derive ~base:42 ~index:0 and b = Rng.derive ~base:42 ~index:1 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "indices give distinct streams" true !differs

(* ---- parallel identity: estimation -------------------------------- *)

let mapped_of path =
  let net = Dpa_synth.Opt.optimize (load_blif path) in
  let n = Dpa_logic.Netlist.num_outputs net in
  let input_probs = Array.make (Dpa_logic.Netlist.num_inputs net) 0.5 in
  ( Dpa_domino.Mapped.map
      (Dpa_synth.Inverterless.realize net (Dpa_synth.Phase.all_positive n)),
    input_probs )

let check_reports_equal msg (a : Engine.result) (b : Engine.result) =
  let ra = a.Engine.report and rb = b.Engine.report in
  check_bits (msg ^ " total") ra.Dpa_power.Estimate.total rb.Dpa_power.Estimate.total;
  check_bits (msg ^ " domino")
    ra.Dpa_power.Estimate.domino_power rb.Dpa_power.Estimate.domino_power;
  check_bits_array (msg ^ " node_probs")
    ra.Dpa_power.Estimate.node_probs rb.Dpa_power.Estimate.node_probs;
  Alcotest.(check int)
    (msg ^ " bdd_nodes")
    ra.Dpa_power.Estimate.bdd_nodes rb.Dpa_power.Estimate.bdd_nodes;
  Alcotest.(check string)
    (msg ^ " degradation")
    (Engine.degradation_to_string a.Engine.degradation)
    (Engine.degradation_to_string b.Engine.degradation)

let test_estimate_identity_across_jobs () =
  List.iter
    (fun path ->
      let mapped, input_probs = mapped_of path in
      let at_jobs jobs =
        Par.with_pool ~jobs @@ fun pool -> Engine.estimate ~par:pool ~input_probs mapped
      in
      let r1 = at_jobs 1 in
      check_reports_equal (path ^ " jobs 1 vs 2") r1 (at_jobs 2);
      check_reports_equal (path ^ " jobs 1 vs 4") r1 (at_jobs 4);
      (* against the sequential path, every probability and power is
         bitwise equal; only the bdd_nodes complexity metric may differ
         (per-cone managers forgo cross-cone sharing) *)
      let seq = Engine.estimate ~input_probs mapped in
      check_bits (path ^ " par vs seq total") seq.Engine.report.Dpa_power.Estimate.total
        r1.Engine.report.Dpa_power.Estimate.total;
      check_bits_array
        (path ^ " par vs seq node_probs")
        seq.Engine.report.Dpa_power.Estimate.node_probs
        r1.Engine.report.Dpa_power.Estimate.node_probs)
    data_files

let test_budgeted_estimate_identity_across_jobs () =
  (* a tight node cap forces the full ladder (reorder + simulation);
     index-derived Monte-Carlo streams keep it jobs-invariant *)
  let budget = Engine.bounded ~max_bdd_nodes:200 () in
  List.iter
    (fun path ->
      let mapped, input_probs = mapped_of path in
      let at_jobs jobs =
        Par.with_pool ~jobs @@ fun pool ->
        Engine.estimate ~par:pool ~budget ~input_probs mapped
      in
      let r1 = at_jobs 1 in
      check_reports_equal (path ^ " budgeted jobs 1 vs 4") r1 (at_jobs 4))
    data_files

(* ---- parallel identity: the phase search -------------------------- *)

let check_opt_equal msg (a : Optimizer.result) (b : Optimizer.result) =
  Alcotest.(check string)
    (msg ^ " assignment")
    (Dpa_synth.Phase.to_string a.Optimizer.assignment)
    (Dpa_synth.Phase.to_string b.Optimizer.assignment);
  check_bits (msg ^ " power") a.Optimizer.power b.Optimizer.power;
  Alcotest.(check int) (msg ^ " size") a.Optimizer.size b.Optimizer.size;
  Alcotest.(check int) (msg ^ " measurements") a.Optimizer.measurements b.Optimizer.measurements;
  Alcotest.(check string) (msg ^ " strategy") a.Optimizer.strategy_used b.Optimizer.strategy_used

let optimize_identity ~strategy path =
  let net = Dpa_synth.Opt.optimize (load_blif path) in
  let input_probs = Array.make (Dpa_logic.Netlist.num_inputs net) 0.5 in
  let base = Optimizer.default_config ~input_probs in
  let run par = Optimizer.minimize_power { base with Optimizer.strategy; par } net in
  let seq = run None in
  List.iter
    (fun jobs ->
      let r = Par.with_pool ~jobs (fun pool -> run (Some pool)) in
      check_opt_equal (Printf.sprintf "%s jobs %d" path jobs) seq r)
    [ 1; 2; 4 ]

let test_optimize_identity_greedy () =
  (* apex7 has 36 outputs: the real greedy path with speculative replay *)
  optimize_identity ~strategy:Optimizer.Greedy "../data/apex7_synthetic.blif"

let test_optimize_identity_exhaustive () =
  List.iter
    (optimize_identity ~strategy:Optimizer.Auto)
    [ "../data/frg1_synthetic.blif"; "../data/seq_controller.blif" ]

let test_optimize_identity_multistart () =
  optimize_identity ~strategy:(Optimizer.Multi_start 3) "../data/frg1_synthetic.blif"

let test_full_flow_identity () =
  (* the whole compare flow (MA + MP + final pricing) through Flow.config *)
  let module Flow = Dpa_core.Flow in
  List.iter
    (fun path ->
      let net = load_blif path in
      let run par = Flow.compare_ma_mp ~config:{ Flow.default_config with Flow.par } net in
      let seq = run None in
      let par4 = Par.with_pool ~jobs:4 (fun pool -> run (Some pool)) in
      check_bits (path ^ " mp power") seq.Flow.mp.Flow.power par4.Flow.mp.Flow.power;
      check_bits (path ^ " ma power") seq.Flow.ma.Flow.power par4.Flow.ma.Flow.power;
      Alcotest.(check string)
        (path ^ " mp phases")
        (Dpa_synth.Phase.to_string seq.Flow.mp.Flow.assignment)
        (Dpa_synth.Phase.to_string par4.Flow.mp.Flow.assignment);
      Alcotest.(check int) (path ^ " mp size") seq.Flow.mp.Flow.size par4.Flow.mp.Flow.size;
      Alcotest.(check int)
        (path ^ " measurements")
        seq.Flow.mp.Flow.measurements par4.Flow.mp.Flow.measurements)
    data_files

let suite =
  [
    Alcotest.test_case "map ordered results" `Quick test_map_ordered;
    Alcotest.test_case "map empty and single" `Quick test_map_empty_and_single;
    Alcotest.test_case "reduce ordered (non-commutative)" `Quick
      test_reduce_ordered_noncommutative;
    Alcotest.test_case "jobs 1 inline matches" `Quick test_jobs1_inline_matches;
    Alcotest.test_case "exception: lowest index wins" `Quick test_exception_lowest_index;
    Alcotest.test_case "nested use rejected" `Quick test_nested_use_rejected;
    Alcotest.test_case "create bounds" `Quick test_create_bounds;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "stats count tasks" `Quick test_stats_count_tasks;
    Alcotest.test_case "rng derive deterministic" `Quick test_rng_derive_deterministic;
    Alcotest.test_case "rng derive independent" `Quick test_rng_derive_independent;
    Alcotest.test_case "estimate identity across jobs" `Quick
      test_estimate_identity_across_jobs;
    Alcotest.test_case "budgeted estimate identity" `Quick
      test_budgeted_estimate_identity_across_jobs;
    Alcotest.test_case "optimize identity (greedy apex7)" `Quick
      test_optimize_identity_greedy;
    Alcotest.test_case "optimize identity (exhaustive)" `Quick
      test_optimize_identity_exhaustive;
    Alcotest.test_case "optimize identity (multi-start)" `Quick
      test_optimize_identity_multistart;
    Alcotest.test_case "full flow identity" `Quick test_full_flow_identity;
  ]
