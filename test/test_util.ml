module Rng = Dpa_util.Rng
module Bitset = Dpa_util.Bitset
module Vec = Dpa_util.Vec
module Stats = Dpa_util.Stats
module Table = Dpa_util.Table

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_bernoulli_bias () =
  let rng = Rng.create 9 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_bitset_basic () =
  let s = Bitset.create 200 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "elements" [ 0; 64; 199 ] (Bitset.elements s)

let test_bitset_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 3;
  Alcotest.(check int) "idempotent" 1 (Bitset.cardinal s)

let test_bitset_union_inter () =
  let a = Bitset.create 130 and b = Bitset.create 130 in
  List.iter (Bitset.add a) [ 1; 5; 100; 129 ];
  List.iter (Bitset.add b) [ 5; 100; 7 ];
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  Bitset.union_into a b;
  Alcotest.(check (list int)) "union" [ 1; 5; 7; 100; 129 ] (Bitset.elements a)

let test_bitset_universe_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: universe mismatch") (fun () ->
      Bitset.union_into a b)

let test_bitset_bounds () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: 4 outside universe [0,4)") (fun () ->
      Bitset.add s 4)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for k = 0 to 99 do
    Alcotest.(check int) "index" k (Vec.push v (k * k))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  ignore (Vec.push v 1);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 1 out of bounds [0,1)") (fun () ->
      ignore (Vec.get v 1))

let test_vec_fold_iter () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_stats () =
  Testkit.check_approx "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Testkit.check_approx "mean empty" 0.0 (Stats.mean []);
  Testkit.check_approx "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Testkit.check_approx "pct" 25.0 (Stats.percent_change ~from:4.0 ~to_:3.0);
  Testkit.check_approx "pct zero" 0.0 (Stats.percent_change ~from:0.0 ~to_:3.0);
  Testkit.check_approx "clamp" 1.0 (Stats.clamp ~lo:0.0 ~hi:1.0 3.0)

let test_table_render () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "long-cell"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  Alcotest.(check bool) "contains cell" true (Testkit.contains_substring s "long-cell")

let test_table_wrong_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

module Int_table = Dpa_util.Int_table
module Int3_table = Dpa_util.Int3_table

let test_int_table_basic () =
  let t = Int_table.create ~capacity:4 () in
  Alcotest.(check int) "empty" 0 (Int_table.length t);
  Alcotest.(check int) "miss" Int_table.not_found (Int_table.find t 42);
  Int_table.replace t 42 7;
  Int_table.replace t 0 0;
  Alcotest.(check int) "hit" 7 (Int_table.find t 42);
  Alcotest.(check int) "zero key" 0 (Int_table.find t 0);
  Alcotest.(check bool) "mem" true (Int_table.mem t 42);
  Alcotest.(check bool) "not mem" false (Int_table.mem t 41);
  Int_table.replace t 42 8;
  Alcotest.(check int) "overwrite" 8 (Int_table.find t 42);
  Alcotest.(check int) "length" 2 (Int_table.length t);
  Int_table.clear t;
  Alcotest.(check int) "cleared" 0 (Int_table.length t);
  Alcotest.(check int) "cleared miss" Int_table.not_found (Int_table.find t 42)

let test_int_table_growth () =
  let t = Int_table.create ~capacity:4 () in
  for k = 0 to 9999 do
    Int_table.replace t (k * 17) (k + 1)
  done;
  Alcotest.(check int) "length" 10_000 (Int_table.length t);
  Alcotest.(check bool) "resized" true (Int_table.resizes t > 0);
  for k = 0 to 9999 do
    if Int_table.find t (k * 17) <> k + 1 then Alcotest.failf "lost key %d" (k * 17)
  done

let test_int_table_find_or_insert () =
  let t = Int_table.create () in
  let calls = ref 0 in
  let default () = incr calls; 99 in
  Alcotest.(check int) "inserted" 99 (Int_table.find_or_insert t 5 ~default);
  Alcotest.(check int) "found" 99 (Int_table.find_or_insert t 5 ~default);
  Alcotest.(check int) "default called once" 1 !calls;
  Alcotest.(check int) "size" 1 (Int_table.length t)

let test_int_table_negative_key () =
  let t = Int_table.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Int_table: keys must be non-negative")
    (fun () -> Int_table.replace t (-1) 0)

let test_int_table_vs_hashtbl =
  Testkit.qcheck_case ~count:200 ~name:"Int_table agrees with Hashtbl"
    QCheck2.Gen.(list (pair (int_bound 100) (int_bound 1000)))
    (fun ops ->
      let t = Int_table.create ~capacity:4 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Int_table.replace t k v;
          Hashtbl.replace h k v)
        ops;
      Hashtbl.iter
        (fun k v ->
          if Int_table.find t k <> v then QCheck2.Test.fail_reportf "key %d: %d" k v)
        h;
      Int_table.length t = Hashtbl.length h
      && Int_table.fold (fun k v acc -> acc && Hashtbl.find h k = v) t true)

let test_int3_table_basic () =
  let t = Int3_table.create ~capacity:4 () in
  Alcotest.(check int) "miss" Int3_table.not_found (Int3_table.find t 1 2 3);
  Int3_table.replace t 1 2 3 10;
  Int3_table.replace t 1 3 2 20;
  Int3_table.replace t 0 0 0 30;
  Alcotest.(check int) "hit" 10 (Int3_table.find t 1 2 3);
  Alcotest.(check int) "component order matters" 20 (Int3_table.find t 1 3 2);
  Alcotest.(check int) "zero triple" 30 (Int3_table.find t 0 0 0);
  Alcotest.(check int) "length" 3 (Int3_table.length t);
  Int3_table.replace t 1 2 3 11;
  Alcotest.(check int) "overwrite" 11 (Int3_table.find t 1 2 3);
  Alcotest.(check int) "length unchanged" 3 (Int3_table.length t);
  Int3_table.clear t;
  Alcotest.(check int) "cleared" Int3_table.not_found (Int3_table.find t 1 2 3)

let test_int3_table_growth () =
  let t = Int3_table.create ~capacity:4 () in
  for k = 0 to 4999 do
    Int3_table.replace t k (k * 3) (k * 7 - 2 * k) (k + 1)
  done;
  Alcotest.(check bool) "resized" true (Int3_table.resizes t > 0);
  for k = 0 to 4999 do
    if Int3_table.find t k (k * 3) (k * 7 - 2 * k) <> k + 1 then
      Alcotest.failf "lost triple %d" k
  done

let test_int3_table_find_or_insert () =
  let t = Int3_table.create () in
  let calls = ref 0 in
  let default () = incr calls; 5 in
  Alcotest.(check int) "inserted" 5 (Int3_table.find_or_insert t 9 8 7 ~default);
  Alcotest.(check int) "found" 5 (Int3_table.find_or_insert t 9 8 7 ~default);
  Alcotest.(check int) "default called once" 1 !calls;
  Alcotest.(check bool) "stats count probes" true (Int3_table.probes t >= 2);
  Alcotest.(check bool) "stats count hits" true (Int3_table.hits t >= 1)

let test_int3_table_remove () =
  let t = Int3_table.create ~capacity:4 () in
  Int3_table.replace t 1 2 3 10;
  Int3_table.replace t 4 5 6 20;
  Int3_table.remove t 1 2 3;
  Alcotest.(check int) "removed" Int3_table.not_found (Int3_table.find t 1 2 3);
  Alcotest.(check int) "others untouched" 20 (Int3_table.find t 4 5 6);
  Alcotest.(check int) "length drops" 1 (Int3_table.length t);
  Int3_table.remove t 1 2 3;
  Alcotest.(check int) "double remove is a no-op" 1 (Int3_table.length t);
  Int3_table.remove t 7 7 7;
  Alcotest.(check int) "absent remove is a no-op" 1 (Int3_table.length t);
  (* a tombstoned slot is reused by a later insert on the same chain *)
  Int3_table.replace t 1 2 3 11;
  Alcotest.(check int) "reinserted over tombstone" 11 (Int3_table.find t 1 2 3);
  Alcotest.(check int) "length restored" 2 (Int3_table.length t)

(* delete-heavy churn (the sifting reorderer's access pattern): tombstone
   pressure must trigger purging rehashes — without them the table would
   fill with dead slots and probe chains would never terminate — and the
   table must stay exact throughout *)
let test_int3_table_tombstone_churn () =
  let t = Int3_table.create ~capacity:16 () in
  for round = 0 to 199 do
    for k = 0 to 19 do
      Int3_table.replace t ((round * 20) + k) k round k
    done;
    for k = 0 to 19 do
      Int3_table.remove t ((round * 20) + k) k round
    done;
    Alcotest.(check int) "round leaves table empty" 0 (Int3_table.length t)
  done;
  Alcotest.(check bool) "tombstone pressure purged" true (Int3_table.resizes t > 0);
  Alcotest.(check int) "old keys gone" Int3_table.not_found (Int3_table.find t 20 0 1);
  Int3_table.replace t 1 2 3 42;
  Alcotest.(check int) "table still serviceable" 42 (Int3_table.find t 1 2 3)

(* property: replace/remove/find agree with Hashtbl on random triple
   operation sequences *)
let prop_int3_table_model =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 400) (tup4 (int_bound 2) (int_bound 8) (int_bound 8) (int_bound 8)))
  in
  Testkit.qcheck_case ~count:120 ~name:"int3 table matches model with removes" gen (fun ops ->
      let t = Int3_table.create ~capacity:4 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (op, a, b, c) ->
          match op with
          | 0 ->
            Int3_table.replace t a b c ((a * 100) + (b * 10) + c);
            Hashtbl.replace h (a, b, c) ((a * 100) + (b * 10) + c)
          | 1 ->
            Int3_table.remove t a b c;
            Hashtbl.remove h (a, b, c)
          | _ ->
            let expect = match Hashtbl.find_opt h (a, b, c) with Some v -> v | None -> -1 in
            if Int3_table.find t a b c <> expect then
              QCheck2.Test.fail_reportf "find (%d,%d,%d): got %d, want %d" a b c
                (Int3_table.find t a b c) expect)
        ops;
      Int3_table.length t = Hashtbl.length h)

(* ---- cancellation tokens ---- *)

module Cancel = Dpa_util.Cancel
module Fault = Dpa_util.Fault
module Dpa_error = Dpa_util.Dpa_error

let test_cancel_flag () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token live" false (Cancel.is_cancelled t);
  Cancel.check t;
  (* no raise *)
  Cancel.cancel ~reason:"stop" t;
  Alcotest.(check bool) "flag set" true (Cancel.flag_set t);
  (match Cancel.check t with
  | () -> Alcotest.fail "check did not raise after cancel"
  | exception Dpa_error.Error (Dpa_error.Cancelled (Dpa_error.Aborted r)) ->
    Alcotest.(check string) "reason" "stop" r
  | exception e -> raise e);
  (* idempotent: the first reason wins *)
  Cancel.cancel ~reason:"again" t;
  match Cancel.error_of t with
  | Some (Dpa_error.Cancelled (Dpa_error.Aborted r)) ->
    Alcotest.(check string) "first reason wins" "stop" r
  | _ -> Alcotest.fail "error_of lost the abort reason"

let test_cancel_deadline () =
  let t = Cancel.create ~deadline_in:0.02 () in
  Alcotest.(check bool) "has deadline" true (Cancel.has_deadline t);
  Cancel.check t;
  (* deadline passes without anyone calling [cancel] *)
  Unix.sleepf 0.03;
  Alcotest.(check bool) "flag never set" false (Cancel.flag_set t);
  match Cancel.check t with
  | () -> Alcotest.fail "expired deadline did not fire"
  | exception Dpa_error.Error (Dpa_error.Cancelled (Dpa_error.Deadline { limit_s; _ })) ->
    Alcotest.(check bool) "limit recorded" true (limit_s > 0.0)
  | exception e -> raise e

let test_cancel_none_inert () =
  Alcotest.(check bool) "is_none" true (Cancel.is_none Cancel.none);
  Cancel.cancel Cancel.none;
  Cancel.check Cancel.none;
  Alcotest.(check bool) "cancel on none ignored" false (Cancel.is_cancelled Cancel.none)

let test_cancel_cross_domain () =
  (* the watchdog pattern: one domain polls, another fires the flag *)
  let t = Cancel.create () in
  let poller =
    Domain.spawn (fun () ->
        let spins = ref 0 in
        while (not (Cancel.flag_set t)) && !spins < 10_000_000 do
          incr spins
        done;
        Cancel.flag_set t)
  in
  Unix.sleepf 0.01;
  Cancel.cancel ~reason:"watchdog" t;
  Alcotest.(check bool) "poller saw the flag" true (Domain.join poller)

(* ---- fault injection ---- *)

let test_fault_inactive_by_default () =
  Fault.clear ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Alcotest.(check bool) "never fires" false (Fault.fire Fault.Slow_cone)

let test_fault_configure_fire_count () =
  Fault.configure ~seed:7 [ (Fault.Worker_panic, 1.0, None) ];
  Fun.protect ~finally:Fault.clear @@ fun () ->
  Alcotest.(check bool) "active" true (Fault.active ());
  Alcotest.(check bool) "rate 1 fires" true (Fault.fire Fault.Worker_panic);
  Alcotest.(check bool) "unarmed point quiet" false (Fault.fire Fault.Slow_cone);
  Alcotest.(check int)
    "count recorded" 1
    (List.assoc Fault.Worker_panic (Fault.injection_counts ()))

let test_fault_deterministic_stream () =
  let draw () =
    Fault.configure ~seed:42 [ (Fault.Drop_conn, 0.5, None) ];
    Fun.protect ~finally:Fault.clear @@ fun () ->
    List.init 64 (fun _ -> Fault.fire Fault.Drop_conn)
  in
  Alcotest.(check (list bool)) "same seed, same decisions" (draw ()) (draw ())

let test_fault_parse_config () =
  (match Fault.parse_config "slow_cone:0.5:0.1,drop_conn:0.25" with
  | Ok [ (Fault.Slow_cone, r1, Some p1); (Fault.Drop_conn, r2, None) ] ->
    Alcotest.(check (float 0.0)) "rate 1" 0.5 r1;
    Alcotest.(check (float 0.0)) "param 1" 0.1 p1;
    Alcotest.(check (float 0.0)) "rate 2" 0.25 r2
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (match Fault.parse_config "bogus:0.1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown point accepted");
  match Fault.parse_config "slow_cone:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad rate accepted"

let suite =
  [ Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng distinct seeds" `Quick test_rng_distinct_seeds;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng bernoulli bias" `Quick test_rng_bernoulli_bias;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset idempotent add" `Quick test_bitset_add_idempotent;
    Alcotest.test_case "bitset union/inter" `Quick test_bitset_union_inter;
    Alcotest.test_case "bitset universe mismatch" `Quick test_bitset_universe_mismatch;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec fold/iter/clear" `Quick test_vec_fold_iter;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
    Alcotest.test_case "int_table basic" `Quick test_int_table_basic;
    Alcotest.test_case "int_table growth" `Quick test_int_table_growth;
    Alcotest.test_case "int_table find_or_insert" `Quick test_int_table_find_or_insert;
    Alcotest.test_case "int_table negative key" `Quick test_int_table_negative_key;
    test_int_table_vs_hashtbl;
    Alcotest.test_case "int3_table basic" `Quick test_int3_table_basic;
    Alcotest.test_case "int3_table growth" `Quick test_int3_table_growth;
    Alcotest.test_case "int3_table find_or_insert" `Quick test_int3_table_find_or_insert;
    Alcotest.test_case "int3_table remove" `Quick test_int3_table_remove;
    Alcotest.test_case "int3_table tombstone churn" `Quick test_int3_table_tombstone_churn;
    prop_int3_table_model;
    Alcotest.test_case "cancel: flag + first reason wins" `Quick test_cancel_flag;
    Alcotest.test_case "cancel: deadline fires" `Quick test_cancel_deadline;
    Alcotest.test_case "cancel: none is inert" `Quick test_cancel_none_inert;
    Alcotest.test_case "cancel: cross-domain visibility" `Quick test_cancel_cross_domain;
    Alcotest.test_case "fault: inactive by default" `Quick test_fault_inactive_by_default;
    Alcotest.test_case "fault: configure/fire/count" `Quick test_fault_configure_fire_count;
    Alcotest.test_case "fault: deterministic stream" `Quick test_fault_deterministic_stream;
    Alcotest.test_case "fault: parse_config" `Quick test_fault_parse_config ]
