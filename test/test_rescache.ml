(* The result cache end to end: canonical structural hashing (alpha /
   insertion-order / dead-logic invariance), cache-key composition,
   striped-LRU bounds, snapshot persistence with corrupt-file
   tolerance, and — over a real server — byte identity of cached
   responses against cold ones for every cacheable request kind, at
   both intra-request pool widths. *)

module Jsonlite = Dpa_util.Jsonlite
module Protocol = Dpa_service.Protocol
module Rescache = Dpa_service.Rescache
module Handler = Dpa_service.Handler
module Client = Dpa_service.Client
module Struct_hash = Dpa_logic.Struct_hash

let frg1 = "../data/frg1_synthetic.blif"

(* ---- structural hashing ------------------------------------------- *)

(* the same 3-input function four ways: as written; alpha-renamed with
   the two independent gates declared in the other order; with a dead
   gate appended; and with one operator genuinely changed *)
let dln_base =
  ".model m\n.inputs a b c\nt1 = and a b\nt2 = or b c\ny = xor t1 t2\n.outputs y\n"

let dln_renamed_reordered =
  ".model m\n.inputs p q r\nu2 = or q r\nu1 = and p q\ny = xor u1 u2\n.outputs y\n"

let dln_dead_gate =
  ".model m\n.inputs a b c\nt1 = and a b\nt2 = or b c\ndead = and a c\n\
   y = xor t1 t2\n.outputs y\n"

let dln_other_op =
  ".model m\n.inputs a b c\nt1 = or a b\nt2 = or b c\ny = xor t1 t2\n.outputs y\n"

let dln_other_po =
  ".model m\n.inputs a b c\nt1 = and a b\nt2 = or b c\nz = xor t1 t2\n.outputs z\n"

let load text = Handler.load (Protocol.Inline { text; format = `Dln })

let test_struct_hash_invariances () =
  let d = Struct_hash.digest (load dln_base) in
  Alcotest.(check int) "32-char hex" 32 (String.length d);
  Alcotest.(check string)
    "alpha-rename + reorder is invisible" d
    (Struct_hash.digest (load dln_renamed_reordered));
  Alcotest.(check string)
    "dead logic is invisible" d
    (Struct_hash.digest (load dln_dead_gate));
  Alcotest.(check bool)
    "a changed operator is visible" true
    (d <> Struct_hash.digest (load dln_other_op));
  Alcotest.(check bool)
    "a renamed primary output is visible" true
    (d <> Struct_hash.digest (load dln_other_po))

(* ---- key composition ---------------------------------------------- *)

let estimate ?(input_prob = 0.5) ?phases ?budget text =
  Protocol.Estimate
    { source = Protocol.Inline { text; format = `Dln }; input_prob; phases; budget }

let optimize ?(seed = 1) text =
  Protocol.Optimize
    {
      source = Protocol.Inline { text; format = `Dln };
      input_prob = 0.5;
      seed;
      budget = None;
    }

let key r = Rescache.key ~pooled:false r

let check_some_eq msg a b =
  match (a, b) with
  | Some a, Some b -> Alcotest.(check string) msg a b
  | _ -> Alcotest.failf "%s: a request was unexpectedly uncacheable" msg

let check_some_neq msg a b =
  match (a, b) with
  | Some a, Some b -> Alcotest.(check bool) msg true (a <> b)
  | _ -> Alcotest.failf "%s: a request was unexpectedly uncacheable" msg

let test_key_composition () =
  (* structural invariance carries through to the key *)
  check_some_eq "renamed netlist shares the key" (key (estimate dln_base))
    (key (estimate dln_renamed_reordered));
  (* every response-relevant parameter separates keys *)
  check_some_neq "input_prob is in the key" (key (estimate dln_base))
    (key (estimate ~input_prob:0.25 dln_base));
  check_some_neq "phases is in the key" (key (estimate dln_base))
    (key (estimate ~phases:"+-+" dln_base));
  check_some_neq "command is in the key" (key (estimate dln_base))
    (key (optimize dln_base));
  check_some_neq "seed is in the key" (key (optimize ~seed:1 dln_base))
    (key (optimize ~seed:2 dln_base));
  check_some_neq "budget is in the key" (key (estimate dln_base))
    (key
       (estimate
          ~budget:
            {
              Protocol.max_bdd_nodes = Some 4096;
              deadline_s = None;
              fallback = Dpa_power.Engine.Simulate;
              sim_backend = Dpa_sim.Backend.default;
            }
          dln_base));
  check_some_neq "pool width is in the key"
    (Rescache.key ~pooled:false (estimate dln_base))
    (Rescache.key ~pooled:true (estimate dln_base))

let test_key_refusals () =
  let uncacheable msg r = Alcotest.(check bool) msg true (key r = None) in
  uncacheable "ping" Protocol.Ping;
  uncacheable "stats" Protocol.Stats;
  uncacheable "shutdown" Protocol.Shutdown;
  uncacheable "info"
    (Protocol.Info { source = Protocol.Inline { text = dln_base; format = `Dln } });
  uncacheable "a deadline makes the result wall-clock dependent"
    (estimate
       ~budget:
         {
           Protocol.max_bdd_nodes = None;
           deadline_s = Some 1.0;
           fallback = Dpa_power.Engine.No_fallback;
           sim_backend = Dpa_sim.Backend.default;
         }
       dln_base);
  uncacheable "an unloadable source yields no key (cold path reports it)"
    (estimate ".model broken\n.inputs a\ny = frob a\n.outputs y\n")

let test_compare_key_includes_name () =
  let cmp text =
    Rescache.key ~pooled:false
      (Protocol.Compare
         {
           source = Protocol.Inline { text; format = `Dln };
           input_prob = 0.5;
           seed = 1;
           budget = None;
         })
  in
  let renamed_model =
    ".model m2\n.inputs a b c\nt1 = and a b\nt2 = or b c\ny = xor t1 t2\n.outputs y\n"
  in
  (* compare echoes the circuit name in its response, estimate does not:
     the name must split compare keys while estimate keys still merge *)
  check_some_neq "compare: model name is in the key" (cmp dln_base) (cmp renamed_model);
  check_some_eq "estimate: model name is not" (key (estimate dln_base))
    (key (estimate renamed_model))

(* ---- the envelope splice ------------------------------------------ *)

let test_ok_response_text_identity () =
  List.iter
    (fun (id, result) ->
      Alcotest.(check string)
        (Printf.sprintf "splice id=%d" id)
        (Protocol.ok_response ~id ~cmd:"estimate" result)
        (Protocol.ok_response_text ~id ~cmd:"estimate" (Jsonlite.encode result)))
    [
      (1, Jsonlite.Obj [ ("power", Jsonlite.Num 0.30000000000000004) ]);
      (999999, Jsonlite.Obj []);
      (* an id big enough to betray any naive %.0f float printing *)
      (1 lsl 50, Jsonlite.Obj [ ("xs", Jsonlite.Arr [ Jsonlite.Num 1e-17 ]) ]);
    ]

(* ---- LRU bounds ---------------------------------------------------- *)

let hex s = Digest.to_hex (Digest.string s)

let test_lru_entry_bound () =
  let t = Rescache.create ~stripes:1 ~max_bytes:1_000_000 ~max_entries:2 () in
  let put k = Rescache.store t ~key:(hex k) ~cmd:"estimate" ~result:("{\"v\":" ^ k ^ "}") in
  put "1";
  put "2";
  put "3";
  Alcotest.(check (option string)) "LRU entry evicted" None (Rescache.find t (hex "1"));
  Alcotest.(check bool) "newer entries survive" true (Rescache.find t (hex "2") <> None);
  (* a find refreshes recency: "2" must now outlive "3" *)
  put "4";
  Alcotest.(check (option string)) "unrefreshed entry evicted" None
    (Rescache.find t (hex "3"));
  Alcotest.(check (option string))
    "refreshed entry survives" (Some "{\"v\":2}") (Rescache.find t (hex "2"));
  Alcotest.(check bool) "hits counted" true (Rescache.hits t >= 2);
  Alcotest.(check bool) "misses counted" true (Rescache.misses t >= 2)

let test_lru_byte_bound () =
  (* per-entry size = 64 overhead + 32 key + 8 cmd + payload; two
     100-byte payloads fit a 450-byte cache, a third forces eviction *)
  let t = Rescache.create ~stripes:1 ~max_bytes:450 ~max_entries:100 () in
  let payload = "{\"p\":\"" ^ String.make 93 'x' ^ "\"}" in
  Rescache.store t ~key:(hex "a") ~cmd:"estimate" ~result:payload;
  Rescache.store t ~key:(hex "b") ~cmd:"estimate" ~result:payload;
  (* this probe also refreshes "a": the byte bound must now fall on "b" *)
  Alcotest.(check bool) "two entries fit" true (Rescache.find t (hex "a") <> None);
  Rescache.store t ~key:(hex "c") ~cmd:"estimate" ~result:payload;
  Alcotest.(check (option string))
    "byte bound evicts the LRU entry" None
    (Rescache.find t (hex "b"));
  Alcotest.(check bool) "newest resident" true (Rescache.find t (hex "c") <> None);
  (* an entry bigger than the whole cache is silently not stored *)
  let huge = "{\"p\":\"" ^ String.make 600 'y' ^ "\"}" in
  Rescache.store t ~key:(hex "d") ~cmd:"estimate" ~result:huge;
  Alcotest.(check (option string)) "oversized entry refused" None
    (Rescache.find t (hex "d"))

(* ---- snapshots ----------------------------------------------------- *)

let with_temp f =
  let path = Filename.temp_file "dpa_rescache_test" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  f path

let entries_of t =
  match Rescache.stats_json t with
  | Jsonlite.Obj fields -> (
    match List.assoc_opt "entries" fields with
    | Some (Jsonlite.Num n) -> int_of_float n
    | _ -> -1)
  | _ -> -1

let test_snapshot_roundtrip () =
  with_temp @@ fun path ->
  let a = Rescache.create ~max_bytes:1_000_000 ~max_entries:100 () in
  let payloads =
    List.init 5 (fun i -> (hex (string_of_int i), Printf.sprintf "{\"v\":%d}" i))
  in
  List.iter (fun (k, r) -> Rescache.store a ~key:k ~cmd:"estimate" ~result:r) payloads;
  (match Rescache.save a path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  let b = Rescache.create ~max_bytes:1_000_000 ~max_entries:100 () in
  (match Rescache.load b path with
  | `Loaded 5 -> ()
  | `Loaded n -> Alcotest.failf "loaded %d of 5 entries" n
  | `Missing -> Alcotest.fail "snapshot file not found"
  | `Rejected r -> Alcotest.failf "valid snapshot rejected: %s" r);
  List.iter
    (fun (k, r) ->
      Alcotest.(check (option string)) "payload byte-preserved" (Some r)
        (Rescache.find b k))
    payloads

let test_snapshot_missing_and_corrupt () =
  with_temp @@ fun path ->
  Sys.remove path;
  let fresh () = Rescache.create ~max_bytes:1_000_000 ~max_entries:100 () in
  (match Rescache.load (fresh ()) path with
  | `Missing -> ()
  | _ -> Alcotest.fail "absent file must be `Missing, not an error");
  (* build one valid snapshot, then derive corruptions from it *)
  let a = fresh () in
  Rescache.store a ~key:(hex "k") ~cmd:"estimate" ~result:"{\"v\":1}";
  (match Rescache.save a path with Ok () -> () | Error e -> Alcotest.fail e);
  let valid =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let rejected msg s =
    write s;
    let t = fresh () in
    (match Rescache.load t path with
    | `Rejected _ -> ()
    | `Loaded n -> Alcotest.failf "%s: accepted (%d entries)" msg n
    | `Missing -> Alcotest.failf "%s: reported missing" msg);
    Alcotest.(check int) (msg ^ ": nothing became visible") 0 (entries_of t)
  in
  let replace ~sub ~by s =
    let n = String.length sub in
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - n do
      if String.sub s !i n = sub then begin
        Buffer.add_string b by;
        i := !i + n
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.add_string b (String.sub s !i (String.length s - !i));
    Buffer.contents b
  in
  rejected "outright garbage" "not a snapshot\n";
  rejected "wrong magic" (replace ~sub:"dpa-rescache" ~by:"other-cache" valid);
  rejected "version skew"
    (replace
       ~sub:(Printf.sprintf "\"version\":%d" Rescache.snapshot_version)
       ~by:"\"version\":9999" valid);
  rejected "truncated body"
    (String.sub valid 0 (String.index valid '\n' + 1));
  (* the pristine bytes still load: the corruptions above were the
     only thing being rejected *)
  write valid;
  match Rescache.load (fresh ()) path with
  | `Loaded 1 -> ()
  | _ -> Alcotest.fail "pristine snapshot no longer loads"

(* ---- the cache over a real server --------------------------------- *)

let parse_ok line =
  match Protocol.parse_response line with
  | Ok { Protocol.ok = true; result; _ } -> result
  | Ok _ -> Alcotest.failf "error response: %s" line
  | Error m -> Alcotest.failf "unparseable response: %s" m

let cache_stat ~socket field =
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let r =
    Client.request c
      (Protocol.request_line
         { Protocol.id = 424242; request = Protocol.Stats; cache = `Use })
  in
  match Jsonlite.member_opt "cache" (parse_ok r) with
  | Some cache -> (
    match Jsonlite.member_opt field cache with
    | Some (Jsonlite.Num n) -> int_of_float n
    | _ -> Alcotest.failf "no cache.%s in %s" field r)
  | None -> Alcotest.failf "stats carries no cache sub-object: %s" r

let requests_of_every_kind =
  [
    ( "estimate",
      Protocol.Estimate
        { source = Protocol.File frg1; input_prob = 0.5; phases = None; budget = None }
    );
    ( "optimize",
      Protocol.Optimize
        { source = Protocol.File frg1; input_prob = 0.5; seed = 3; budget = None } );
    ( "compare",
      Protocol.Compare
        { source = Protocol.File frg1; input_prob = 0.5; seed = 3; budget = None } );
  ]

(* Cold (bypass), miss (first use) and hit (second use) must be the
   same bytes for every cacheable command — at both intra-request pool
   widths, since [jobs] changes what the pipeline reports. *)
let byte_identity_at ~jobs () =
  Client.with_self_hosted ~workers:2 ~jobs (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      List.iter
        (fun (name, request) ->
          let line cache =
            Protocol.request_line { Protocol.id = 11; request; cache }
          in
          let cold = Client.request c (line `Bypass) in
          let miss = Client.request c (line `Use) in
          let hit = Client.request c (line `Use) in
          ignore (parse_ok cold);
          Alcotest.(check string) (name ^ ": miss == cold bytes") cold miss;
          Alcotest.(check string) (name ^ ": hit == cold bytes") cold hit)
        requests_of_every_kind;
      Alcotest.(check bool) "hits recorded" true (cache_stat ~socket "hits" >= 3))

let test_server_byte_identity_seq () = byte_identity_at ~jobs:1 ()
let test_server_byte_identity_par () = byte_identity_at ~jobs:4 ()

let test_server_bypass_stays_cold () =
  Client.with_self_hosted ~workers:1 (fun ~socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let line =
        Protocol.request_line
          {
            Protocol.id = 5;
            request = snd (List.hd requests_of_every_kind);
            cache = `Bypass;
          }
      in
      let a = Client.request c (line : string) in
      let b = Client.request c line in
      Alcotest.(check string) "bypass is deterministic" a b;
      Alcotest.(check int) "cache never probed" 0
        (cache_stat ~socket "hits" + cache_stat ~socket "misses");
      Alcotest.(check int) "cache never populated" 0 (cache_stat ~socket "entries"))

let test_server_warm_restart () =
  with_temp @@ fun snap ->
  Sys.remove snap;
  let request = snd (List.hd requests_of_every_kind) in
  let line = Protocol.request_line { Protocol.id = 7; request; cache = `Use } in
  let ask ~socket =
    let c = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () -> Client.request c line
  in
  (* first lifetime: a miss populates the cache; the graceful stop
     inside with_self_hosted drains the pool and writes the snapshot *)
  let cold =
    Client.with_self_hosted ~workers:1 ~cache_snapshot:snap (fun ~socket -> ask ~socket)
  in
  Alcotest.(check bool) "snapshot written on drain" true (Sys.file_exists snap);
  (* second lifetime: the very first probe must hit, byte-identically *)
  Client.with_self_hosted ~workers:1 ~cache_snapshot:snap (fun ~socket ->
      let warm = ask ~socket in
      Alcotest.(check string) "warm answer == cold bytes across restart" cold warm;
      Alcotest.(check int) "first warm batch hits" 1 (cache_stat ~socket "hits");
      Alcotest.(check int) "without a single miss" 0 (cache_stat ~socket "misses"));
  (* third lifetime: a corrupted snapshot must mean a cold start with a
     warning — never a crash, never a partial load *)
  let oc = open_out_bin snap in
  output_string oc "{\"magic\":\"dpa-rescache\",\"version\":1,\"entries\":2}\ntruncated";
  close_out oc;
  Client.with_self_hosted ~workers:1 ~cache_snapshot:snap (fun ~socket ->
      let after = ask ~socket in
      Alcotest.(check string) "cold start still answers identically" cold after;
      Alcotest.(check int) "corrupt snapshot loaded nothing" 1
        (cache_stat ~socket "misses"))

let suite =
  [
    Alcotest.test_case "struct-hash: invariances" `Quick test_struct_hash_invariances;
    Alcotest.test_case "key: every response-relevant field" `Quick test_key_composition;
    Alcotest.test_case "key: uncacheable requests" `Quick test_key_refusals;
    Alcotest.test_case "key: compare includes the circuit name" `Quick
      test_compare_key_includes_name;
    Alcotest.test_case "splice: ok_response_text identity" `Quick
      test_ok_response_text_identity;
    Alcotest.test_case "lru: entry bound + recency refresh" `Quick test_lru_entry_bound;
    Alcotest.test_case "lru: byte bound + oversized refusal" `Quick test_lru_byte_bound;
    Alcotest.test_case "snapshot: round-trip preserves bytes" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: missing and corrupt tolerance" `Quick
      test_snapshot_missing_and_corrupt;
    Alcotest.test_case "server: hit == cold bytes (jobs 1)" `Quick
      test_server_byte_identity_seq;
    Alcotest.test_case "server: hit == cold bytes (jobs 4)" `Quick
      test_server_byte_identity_par;
    Alcotest.test_case "server: bypass stays cold" `Quick test_server_bypass_stays_cold;
    Alcotest.test_case "server: warm restart from snapshot" `Quick
      test_server_warm_restart;
  ]
