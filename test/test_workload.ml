module Generator = Dpa_workload.Generator
module Profiles = Dpa_workload.Profiles
module Examples = Dpa_workload.Examples
module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

let test_generator_determinism () =
  let p = Generator.default in
  let a = Generator.combinational p in
  let b = Generator.combinational p in
  Alcotest.(check string) "identical netlists" (Dpa_logic.Io.to_string a)
    (Dpa_logic.Io.to_string b)

let test_generator_seed_sensitivity () =
  let a = Generator.combinational Generator.default in
  let b = Generator.combinational { Generator.default with seed = 2 } in
  Alcotest.(check bool) "different seeds differ" true
    (Dpa_logic.Io.to_string a <> Dpa_logic.Io.to_string b)

let test_generator_interface () =
  let p = { Generator.default with n_inputs = 20; n_outputs = 7; seed = 3 } in
  let net = Generator.combinational p in
  Alcotest.(check int) "inputs" 20 (Netlist.num_inputs net);
  Alcotest.(check int) "outputs" 7 (Netlist.num_outputs net);
  Alcotest.(check bool) "valid" true (Netlist.validate net = Ok ());
  (* outputs are proper gates *)
  Array.iter
    (fun (_, d) ->
      match Netlist.gate net d with
      | Gate.And _ | Gate.Or _ | Gate.Not _ -> ()
      | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Xor _ ->
        Alcotest.fail "degenerate output")
    (Netlist.outputs net)

let test_generator_validation () =
  Alcotest.check_raises "support too large"
    (Invalid_argument "Generator: support must be in [2, n_inputs]") (fun () ->
      ignore (Generator.combinational { Generator.default with support = 100 }))

let test_generator_sequential () =
  let sn = Generator.sequential { Generator.default with seed = 11 } ~n_ffs:6 in
  Alcotest.(check int) "ffs" 6 (Dpa_seq.Seq_netlist.n_ffs sn);
  Alcotest.(check int) "real inputs" Generator.default.Generator.n_inputs
    (Dpa_seq.Seq_netlist.n_real_inputs sn);
  (* deterministic too *)
  let sn2 = Generator.sequential { Generator.default with seed = 11 } ~n_ffs:6 in
  Alcotest.(check string) "deterministic"
    (Dpa_logic.Io.to_string (Dpa_seq.Seq_netlist.comb sn))
    (Dpa_logic.Io.to_string (Dpa_seq.Seq_netlist.comb sn2))

let test_profiles_interface_counts () =
  (* PI/PO counts must match the paper's Table 1 *)
  let expect =
    [ ("industry1", 127, 122); ("industry2", 97, 86); ("industry3", 117, 199);
      ("apex7", 79, 36); ("frg1", 31, 3); ("x1", 87, 28); ("x3", 235, 99) ]
  in
  List.iter
    (fun (name, pis, pos) ->
      match Profiles.find name with
      | None -> Alcotest.failf "missing profile %s" name
      | Some p ->
        let n_pi, n_po, _ = Profiles.interface p in
        Alcotest.(check int) (name ^ " PIs") pis n_pi;
        Alcotest.(check int) (name ^ " POs") pos n_po)
    expect

let test_profiles_table_membership () =
  Alcotest.(check int) "table1 rows" 7 (List.length Profiles.table1);
  Alcotest.(check int) "table2 rows" 4 (List.length Profiles.table2);
  List.iter
    (fun p -> Alcotest.(check bool) "table2 marked timed" true p.Profiles.timed)
    Profiles.table2;
  Alcotest.(check bool) "lookup case-insensitive" true (Profiles.find "FRG1" <> None);
  Alcotest.(check bool) "unknown none" true (Profiles.find "nope" = None)

let test_examples_fig5_functions () =
  (* f = ¬((a+b)(cd)), g = (a+b)+(cd) *)
  let net = Examples.fig5 () in
  let check a b c d =
    let outs = Dpa_logic.Eval.outputs net [| a; b; c; d |] in
    let ab = a || b and cd = c && d in
    Alcotest.(check bool) "f" (not (ab && cd)) outs.(0);
    Alcotest.(check bool) "g" (ab || cd) outs.(1)
  in
  List.iter
    (fun (a, b, c, d) -> check a b c d)
    [ (false, false, false, false); (true, false, true, true); (false, true, false, true);
      (true, true, true, true); (false, false, true, true) ]

let test_examples_fig10_functions () =
  let net = Examples.fig10 () in
  let check v =
    let outs = Dpa_logic.Eval.outputs net v in
    let p = v.(0) && v.(1) && v.(2) in
    let q = v.(2) && v.(3) in
    let r = p || q || v.(4) in
    outs.(0) = p && outs.(1) = q && outs.(2) = r
  in
  let all = ref true in
  for m = 0 to 31 do
    if not (check (Array.init 5 (fun k -> (m lsr k) land 1 = 1))) then all := false
  done;
  Alcotest.(check bool) "fig10 truth table" true !all

let test_examples_fig9_shape () =
  let g = Examples.fig9_sgraph () in
  Alcotest.(check int) "5 vertices" 5 (Dpa_seq.Sgraph.num_vertices g);
  (* A,B,E (0,1,4) and C,D (2,3) form a complete bipartite cycle structure *)
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "abe→cd" true (Dpa_seq.Sgraph.has_edge g u v);
          Alcotest.(check bool) "cd→abe" true (Dpa_seq.Sgraph.has_edge g v u))
        [ 2; 3 ])
    [ 0; 1; 4 ];
  Alcotest.(check bool) "no abe internal edges" false (Dpa_seq.Sgraph.has_edge g 0 1)

let test_decoder_semantics () =
  let net = Examples.decoder ~bits:3 in
  Alcotest.(check int) "8 outputs" 8 (Netlist.num_outputs net);
  (* exactly one output hot, matching the address *)
  for m = 0 to 7 do
    let vec = Array.init 3 (fun k -> (m lsr k) land 1 = 1) in
    let outs = Dpa_logic.Eval.outputs net vec in
    Array.iteri (fun y v -> Alcotest.(check bool) "one-hot" (y = m) v) outs
  done;
  (* the flow handles it: each output has probability 1/8 at p = 0.5, so
     every positive phase is already optimal (all probabilities < 1/2) *)
  let r = Dpa_core.Flow.compare_ma_mp net in
  Alcotest.(check string) "all positive is power optimal" "++++++++"
    (Dpa_synth.Phase.to_string r.Dpa_core.Flow.mp.Dpa_core.Flow.assignment)

let test_priority_arbiter_semantics () =
  let net = Examples.priority_arbiter ~width:4 in
  for m = 0 to 15 do
    let vec = Array.init 4 (fun k -> (m lsr k) land 1 = 1) in
    let outs = Dpa_logic.Eval.outputs net vec in
    (* outputs: gnt0..gnt3, busy *)
    let expected_winner =
      let rec first k = if k >= 4 then None else if vec.(k) then Some k else first (k + 1) in
      first 0
    in
    Array.iteri
      (fun k v ->
        if k < 4 then Alcotest.(check bool) "grant" (expected_winner = Some k) v
        else Alcotest.(check bool) "busy" (expected_winner <> None) v)
      outs
  done

let test_carry_chain_adds () =
  let net = Examples.carry_chain ~width:4 in
  (* inputs: a0..a3, b0..b3, cin; outputs found by name *)
  let outs = Netlist.outputs net in
  let index_of name =
    let found = ref (-1) in
    Array.iteri (fun k (po, _) -> if po = name then found := k) outs;
    !found
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun cin ->
          let vec =
            Array.init 9 (fun k ->
                if k < 4 then (a lsr k) land 1 = 1
                else if k < 8 then (b lsr (k - 4)) land 1 = 1
                else cin = 1)
          in
          let values = Dpa_logic.Eval.outputs net vec in
          let sum = ref 0 in
          for k = 0 to 3 do
            if values.(index_of (Printf.sprintf "s%d" k)) then sum := !sum lor (1 lsl k)
          done;
          if values.(index_of "cout") then sum := !sum lor 16;
          Alcotest.(check int) (Printf.sprintf "%d+%d+%d" a b cin) (a + b + cin) !sum)
        [ 0; 1 ]
    done
  done

let test_structured_circuits_through_flow () =
  (* the arbiter's skewed cones give the optimizer real decisions *)
  let r = Dpa_core.Flow.compare_ma_mp (Examples.priority_arbiter ~width:6) in
  Alcotest.(check bool) "mp no worse" true
    (r.Dpa_core.Flow.mp.Dpa_core.Flow.power <= r.Dpa_core.Flow.ma.Dpa_core.Flow.power +. 1e-9);
  let r = Dpa_core.Flow.compare_ma_mp (Examples.carry_chain ~width:5) in
  Alcotest.(check bool) "cla mp no worse" true
    (r.Dpa_core.Flow.mp.Dpa_core.Flow.power <= r.Dpa_core.Flow.ma.Dpa_core.Flow.power +. 1e-9)

let test_ring_counter_interface () =
  let sn = Examples.ring_counter ~n:4 in
  Alcotest.(check int) "ffs" 4 (Dpa_seq.Seq_netlist.n_ffs sn);
  Alcotest.(check int) "one real input" 1 (Dpa_seq.Seq_netlist.n_real_inputs sn);
  Alcotest.check_raises "too small"
    (Invalid_argument "Examples.ring_counter: need at least 2 stages") (fun () ->
      ignore (Examples.ring_counter ~n:1))

(* property: generated circuits always validate and keep interfaces *)
let prop_generated_valid =
  Testkit.qcheck_case ~count:30 ~name:"generated circuits valid"
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      let* n_outputs = int_range 1 8 in
      let* gates = int_range 1 20 in
      return (seed, n_outputs, gates))
    (fun (seed, n_outputs, gates) ->
      let p = { Generator.default with seed; n_outputs; gates_per_output = gates } in
      let net = Generator.combinational p in
      Netlist.validate net = Ok ()
      && Netlist.num_inputs net = p.Generator.n_inputs
      && Netlist.num_outputs net = n_outputs)

let suite =
  [ Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "generator seeds" `Quick test_generator_seed_sensitivity;
    Alcotest.test_case "generator interface" `Quick test_generator_interface;
    Alcotest.test_case "generator validation" `Quick test_generator_validation;
    Alcotest.test_case "generator sequential" `Quick test_generator_sequential;
    Alcotest.test_case "profile interfaces" `Quick test_profiles_interface_counts;
    Alcotest.test_case "profile tables" `Quick test_profiles_table_membership;
    Alcotest.test_case "fig5 functions" `Quick test_examples_fig5_functions;
    Alcotest.test_case "fig10 functions" `Quick test_examples_fig10_functions;
    Alcotest.test_case "fig9 shape" `Quick test_examples_fig9_shape;
    Alcotest.test_case "decoder semantics" `Quick test_decoder_semantics;
    Alcotest.test_case "priority arbiter" `Quick test_priority_arbiter_semantics;
    Alcotest.test_case "carry chain adds" `Quick test_carry_chain_adds;
    Alcotest.test_case "structured circuits flow" `Quick test_structured_circuits_through_flow;
    Alcotest.test_case "ring counter" `Quick test_ring_counter_interface;
    prop_generated_valid ]
