module Robdd = Dpa_bdd.Robdd
module Sift = Dpa_bdd.Sift
module Build = Dpa_bdd.Build
module Ordering = Dpa_bdd.Ordering
module Netlist = Dpa_logic.Netlist
module Cancel = Dpa_util.Cancel
module Dpa_error = Dpa_util.Dpa_error

let check_bits msg a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then Alcotest.failf "%s: %h <> %h" msg a b

let check_permutation msg order n =
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) msg (Array.init n Fun.id) sorted

(* Disjoint AND-pairs placed at maximally separated levels — the textbook
   order-sensitive function: (v0∧v3) ∨ (v1∧v4) ∨ (v2∧v5) is exponential
   with the pairs split across the order and linear with them adjacent. *)
let bad_pairs_manager () =
  let m = Robdd.create ~nvars:6 in
  let v l = Robdd.var m l in
  let pair a b = Robdd.apply_and m (v a) (v b) in
  let f = Robdd.apply_or m (pair 0 3) (Robdd.apply_or m (pair 1 4) (pair 2 5)) in
  (m, f)

(* [eval] under the manager's current order: assignment is per original
   variable token; order maps level → token. *)
let eval_ordered m root order a =
  Robdd.eval m root (Array.map (fun v -> a.(v)) order)

let all_assignments n =
  List.init (1 lsl n) (fun w -> Array.init n (fun k -> (w lsr k) land 1 = 1))

let test_sift_reduces_bad_pairs () =
  let m, f = bad_pairs_manager () in
  let order = Array.init 6 Fun.id in
  let expected = List.map (fun a -> Robdd.eval m f a) (all_assignments 6) in
  let before = Robdd.size m f in
  let r = Sift.sift ~roots:[ f ] ~order m in
  Alcotest.(check int) "nodes_before is post-sweep live count" (before + 2) r.Sift.nodes_before;
  Alcotest.(check bool) "reduced" true (r.Sift.nodes_after < before);
  Alcotest.(check bool) "linear-size optimum reached" true (r.Sift.nodes_after <= 8);
  Alcotest.(check bool) "swaps counted" true (r.Sift.swaps > 0);
  check_permutation "order is a permutation" order 6;
  (* every function survives the rewiring bit-for-bit *)
  List.iter2
    (fun a exp ->
      Alcotest.(check bool) "semantics preserved" exp (eval_ordered m f order a))
    (all_assignments 6) expected;
  (* the sweep + exact swap deaths leave the store garbage-free (live
     count = reachable internals + the two terminals) *)
  Alcotest.(check int) "live = reachable" (Robdd.size m f + 2) (Robdd.live_nodes m)

(* property: arbitrary sift sequences keep the order a permutation, the
   functions intact and the probabilities equal (random circuits) *)
let prop_sift_preserves =
  Testkit.qcheck_case ~count:60 ~name:"sift preserves functions and probabilities"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let n = Netlist.num_inputs net in
      let b = Build.of_netlist ~order:(Ordering.declaration net) net in
      let m = b.Build.manager in
      let roots = Array.to_list (Build.output_roots net b) in
      let order = Array.copy b.Build.order in
      let probs = Array.init n (fun i -> float_of_int (i + 1) /. float_of_int (n + 2)) in
      let level_probs o = Array.map (fun v -> probs.(v)) o in
      let pre_truth =
        List.map (fun a -> List.map (fun r -> eval_ordered m r order a) roots) (all_assignments n)
      in
      let pre_probs = List.map (Robdd.probability m (level_probs order)) roots in
      let _ = Sift.sift ~passes:2 ~roots ~order m in
      let sorted = Array.copy order in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id
      && List.for_all2
           (fun a exp -> List.for_all2 (fun r e -> eval_ordered m r order a = e) roots exp)
           (all_assignments n) pre_truth
      && List.for_all2
           (fun r p -> Testkit.approx ~eps:1e-12 p (Robdd.probability m (level_probs order) r))
           roots pre_probs)

(* A prob_cache made before sifting answers bit-identically after it:
   node ids keep their functions, so the per-id memo stays valid — only
   the level-probability vector needs permuting for {e new} nodes. *)
let test_prob_cache_survives () =
  let net = Dpa_workload.Examples.fig5 () in
  let b = Build.of_netlist net in
  let m = b.Build.manager in
  let roots = Array.to_list (Build.output_roots net b) in
  let order = Array.copy b.Build.order in
  let n = Netlist.num_inputs net in
  let probs = Array.init n (fun i -> 0.3 +. (0.4 *. float_of_int i /. float_of_int (max 1 (n - 1)))) in
  let level_probs o = Array.map (fun v -> probs.(v)) o in
  let cache = Robdd.prob_cache m (level_probs order) in
  let pre = List.map (Robdd.cached_probability cache) roots in
  let _ = Sift.sift ~roots ~order m in
  Robdd.set_cache_level_probs cache (level_probs order);
  List.iter2
    (fun r p -> check_bits "memoized probability bit-identical" p (Robdd.cached_probability cache r))
    roots pre;
  (* the manager (and the surviving cache) stay fully usable for new work *)
  match roots with
  | r0 :: r1 :: _ ->
    let g = Robdd.apply_xor m r0 r1 in
    Testkit.check_approx ~eps:1e-12 "cache correct on post-sift nodes"
      (Robdd.probability m (level_probs order) g)
      (Robdd.cached_probability cache g)
  | _ -> ()

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load_blif path =
  match Dpa_logic.Blif.of_string (read_file path) with
  | Ok net -> net
  | Error _ -> (
    match Dpa_logic.Blif.sequential_of_string (read_file path) with
    | Ok s -> s.Dpa_logic.Blif.comb
    | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg)

(* the satellite gate: probability identity before/after sift on every
   checked-in circuit and the paper's examples *)
let test_sift_identity_on_corpus () =
  let nets =
    ("fig5", Dpa_workload.Examples.fig5 ())
    :: ("fig10", Dpa_workload.Examples.fig10 ())
    :: List.map
         (fun p -> (p, load_blif ("../data/" ^ p)))
         [ "apex7_synthetic.blif"; "frg1_synthetic.blif"; "seq_controller.blif" ]
  in
  List.iter
    (fun (name, net) ->
      let n = Netlist.num_inputs net in
      let b = Build.of_netlist net in
      let m = b.Build.manager in
      let roots = Array.to_list (Build.output_roots net b) in
      let order = Array.copy b.Build.order in
      let probs = Array.init n (fun i -> float_of_int (i + 1) /. float_of_int (n + 2)) in
      let level_probs o = Array.map (fun v -> probs.(v)) o in
      let cache = Robdd.prob_cache m (level_probs order) in
      let pre = List.map (Robdd.cached_probability cache) roots in
      let r = Sift.sift ~roots ~order m in
      check_permutation (name ^ ": permutation") order n;
      Robdd.set_cache_level_probs cache (level_probs order);
      List.iter2
        (fun root p ->
          check_bits (name ^ ": bit-identical probability") p (Robdd.cached_probability cache root))
        roots pre;
      List.iter2
        (fun root p ->
          Testkit.check_approx ~eps:1e-12 (name ^ ": fresh recompute")
            p
            (Robdd.probability m (level_probs order) root))
        roots pre;
      Alcotest.(check bool) (name ^ ": never worse") true (r.Sift.nodes_after <= r.Sift.nodes_before))
    nets

(* budget exhaustion at a swap boundary leaves every invariant intact:
   evaluation, new ite work and probabilities all still run *)
let test_budget_exhaustion_leaves_usable () =
  let m, f = bad_pairs_manager () in
  let order = Array.init 6 Fun.id in
  let expected = List.map (fun a -> Robdd.eval m f a) (all_assignments 6) in
  let raised =
    try
      ignore (Sift.sift ~max_swaps:2 ~roots:[ f ] ~order m);
      false
    with Dpa_error.Budget_exceeded r ->
      Alcotest.(check string) "context names the cap" "sift.max_swaps" r.Dpa_error.context;
      true
  in
  Alcotest.(check bool) "budget raised" true raised;
  check_permutation "order tracks the partial sift" order 6;
  List.iter2
    (fun a exp ->
      Alcotest.(check bool) "still evaluates correctly" exp (eval_ordered m f order a))
    (all_assignments 6) expected;
  let g = Robdd.apply_and m (Robdd.var m 0) (Robdd.var m 5) in
  Alcotest.(check bool) "ite still works" true (not (Robdd.is_terminal g));
  let p = Robdd.probability m (Array.make 6 0.5) f in
  Alcotest.(check bool) "probability still works" true (p > 0.0 && p < 1.0)

let test_max_new_nodes_cap () =
  let m, f = bad_pairs_manager () in
  let order = Array.init 6 Fun.id in
  let raised =
    try
      ignore (Sift.sift ~max_new_nodes:1 ~roots:[ f ] ~order m);
      false
    with Dpa_error.Budget_exceeded r ->
      Alcotest.(check string) "context names the cap" "sift.max_new_nodes" r.Dpa_error.context;
      true
  in
  Alcotest.(check bool) "allocation cap raised" true raised;
  Alcotest.(check int) "store still canonical" (Robdd.size m f + 2) (Robdd.live_nodes m)

let test_cancellation_mid_sift () =
  let m, f = bad_pairs_manager () in
  let order = Array.init 6 Fun.id in
  let c = Cancel.create () in
  Cancel.cancel ~reason:"test" c;
  let raised =
    try
      ignore (Sift.sift ~cancel:c ~roots:[ f ] ~order m);
      false
    with Dpa_error.Error (Dpa_error.Cancelled (Dpa_error.Aborted _)) -> true
  in
  Alcotest.(check bool) "cancelled cleanly" true raised;
  (* cancellation is polled at swap boundaries only — the manager is consistent *)
  Alcotest.(check int) "store untouched or consistent" (Robdd.size m f + 2) (Robdd.live_nodes m)

(* debris from an aborted build is retired when the session opens, and
   the freed nodes come back to the budget *)
let test_garbage_sweep_refunds_budget () =
  let m = Robdd.create ~nvars:6 in
  let v l = Robdd.var m l in
  let keep = Robdd.apply_and m (v 0) (v 1) in
  let garbage = Robdd.apply_xor m (Robdd.apply_xor m (v 2) (v 3)) (v 4) in
  ignore garbage;
  let live0 = Robdd.live_nodes m in
  let order = Array.init 6 Fun.id in
  let r = Sift.sift ~roots:[ keep ] ~order m in
  Alcotest.(check bool) "sweep reclaimed debris" true (r.Sift.reclaimed > 0);
  Alcotest.(check bool) "live dropped" true (Robdd.live_nodes m < live0);
  Alcotest.(check int) "exactly the kept function remains" (Robdd.size m keep + 2)
    (Robdd.live_nodes m)

let test_order_validation () =
  let m, f = bad_pairs_manager () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Sift.sift: order length does not match the manager's nvars") (fun () ->
      ignore (Sift.sift ~roots:[ f ] ~order:[| 0; 1 |] m));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Sift.sift: order has duplicate entries") (fun () ->
      ignore (Sift.sift ~roots:[ f ] ~order:[| 0; 1; 2; 3; 4; 4 |] m))

let suite =
  [ Alcotest.test_case "reduces bad pairs" `Quick test_sift_reduces_bad_pairs;
    prop_sift_preserves;
    Alcotest.test_case "prob cache survives" `Quick test_prob_cache_survives;
    Alcotest.test_case "identity on corpus" `Quick test_sift_identity_on_corpus;
    Alcotest.test_case "budget exhaustion usable" `Quick test_budget_exhaustion_leaves_usable;
    Alcotest.test_case "max new nodes cap" `Quick test_max_new_nodes_cap;
    Alcotest.test_case "cancellation mid-sift" `Quick test_cancellation_mid_sift;
    Alcotest.test_case "garbage sweep refund" `Quick test_garbage_sweep_refunds_budget;
    Alcotest.test_case "order validation" `Quick test_order_validation ]
