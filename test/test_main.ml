let () =
  Alcotest.run "dpa"
    [ ("util", Test_util.suite);
      ("par", Test_par.suite);
      ("logic", Test_logic.suite);
      ("blif", Test_blif.suite);
      ("bdd", Test_bdd.suite);
      ("sift", Test_sift.suite);
      ("synth", Test_synth.suite);
      ("domino", Test_domino.suite);
      ("power", Test_power.suite);
      ("seq", Test_seq.suite);
      ("phase", Test_phase.suite);
      ("timing", Test_timing.suite);
      ("sim", Test_sim.suite);
      ("compiled", Test_compiled.suite);
      ("workload", Test_workload.suite);
      ("corpus", Test_corpus.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("service", Test_service.suite);
      ("rescache", Test_rescache.suite);
      ("edge-cases", Test_edge_cases.suite) ]
