(* The resource-bounded estimation engine: typed budget exhaustion, the
   exact → reorder → simulate degradation ladder, and the malformed-BLIF
   corpus (every bad input must yield a structured Error, never an
   uncaught exception). *)

module Engine = Dpa_power.Engine
module Estimate = Dpa_power.Estimate
module Flow = Dpa_core.Flow
module Netlist = Dpa_logic.Netlist
module Dpa_error = Dpa_util.Dpa_error

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_blif path =
  match Dpa_logic.Blif.of_string (read_file path) with
  | Ok net -> net
  | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg

(* A sequential design's combinational core (latch outputs become PIs). *)
let load_blif_core path =
  match Dpa_logic.Blif.sequential_of_string (read_file path) with
  | Ok s -> s.Dpa_logic.Blif.comb
  | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg

let fig5_mapped () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  Dpa_domino.Mapped.map
    (Dpa_synth.Inverterless.realize net (Dpa_synth.Phase.all_positive 2))

(* ---- typed budget exhaustion -------------------------------------- *)

let test_budget_exceeded_is_typed () =
  let mapped = fig5_mapped () in
  let input_probs = Array.make 4 0.5 in
  let order = Estimate.block_order ~input_probs mapped in
  let pb = Estimate.start_build ~order mapped in
  Dpa_bdd.Robdd.set_budget ~max_nodes:3 (Estimate.partial_manager pb);
  (match Estimate.build_nodes pb ~within:(fun _ -> true) with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Dpa_error.Budget_exceeded r ->
    Alcotest.(check bool) "nodes resource" true (r.Dpa_error.resource = Dpa_error.Bdd_nodes)
  | exception _ -> Alcotest.fail "wrong exception type");
  (* the manager survives exhaustion: lifting the budget lets the same
     partial build resume and finish *)
  Dpa_bdd.Robdd.clear_budget (Estimate.partial_manager pb);
  Estimate.build_nodes pb ~within:(fun _ -> true);
  let probs = Estimate.partial_probabilities pb ~input_probs in
  Alcotest.(check bool) "all probabilities defined" true
    (Array.for_all (fun p -> not (Float.is_nan p)) probs)

let test_fallback_none_raises_budget_error () =
  let mapped = fig5_mapped () in
  let budget = Engine.bounded ~max_bdd_nodes:2 ~fallback:Engine.No_fallback () in
  match Engine.estimate ~budget ~input_probs:(Array.make 4 0.5) mapped with
  | _ -> Alcotest.fail "expected Dpa_error.Error"
  | exception Dpa_error.Error (Dpa_error.Budget _) -> ()
  | exception _ -> Alcotest.fail "wrong exception type"

(* ---- the ladder on data/ circuits --------------------------------- *)

let ladder_on_blif ?(sequential = false) path =
  let raw = if sequential then load_blif_core path else load_blif path in
  let net = Dpa_synth.Opt.optimize raw in
  let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
  let mapped =
    Dpa_domino.Mapped.map
      (Dpa_synth.Inverterless.realize net
         (Dpa_synth.Phase.all_positive (Netlist.num_outputs net)))
  in
  let exact = Estimate.of_mapped ~input_probs mapped in
  (* a cap well under the exact build forces the ladder *)
  let max_nodes = max 2 (exact.Estimate.bdd_nodes / 4) in
  let budget = Engine.bounded ~max_bdd_nodes:max_nodes () in
  let r = Engine.estimate ~budget ~input_probs mapped in
  let d = r.Engine.degradation in
  Alcotest.(check bool) "some cones degraded" true (not (Engine.all_exact d));
  Alcotest.(check bool) "every cone accounted for" true
    (Engine.exact_cones d + Engine.reordered_cones d + Engine.simulated_cones d
    = Netlist.num_outputs net);
  Alcotest.(check bool) "node budget respected" true (d.Engine.bdd_nodes <= max_nodes);
  (* simulated probabilities carry ±ci_halfwidth each; the total is a sum
     over the block's cells, so bound the error additively *)
  let tolerance =
    Float.max 0.5 (d.Engine.ci_halfwidth *. 4.0 *. float_of_int (Dpa_domino.Mapped.size mapped))
  in
  Alcotest.(check bool)
    (Printf.sprintf "budgeted %.4f within %.3f of exact %.4f" r.Engine.report.Estimate.total
       tolerance exact.Estimate.total)
    true
    (Float.abs (r.Engine.report.Estimate.total -. exact.Estimate.total) < tolerance)

let test_ladder_frg1 () = ladder_on_blif "../data/frg1_synthetic.blif"

let test_ladder_seq_controller () =
  ladder_on_blif ~sequential:true "../data/seq_controller.blif"

let test_deadline_budget () =
  let mapped = fig5_mapped () in
  let input_probs = Array.make 4 0.5 in
  (* an already-expired deadline degrades everything to simulation, yet
     the estimate still completes with a report *)
  let budget = Engine.bounded ~deadline_s:0.0 () in
  let r = Engine.estimate ~budget ~input_probs mapped in
  Alcotest.(check bool) "completed with a total" true (r.Engine.report.Estimate.total > 0.0)

(* ---- budgeted flow: greedy stays consistent under fallback -------- *)

let test_budgeted_flow_matches_unbudgeted () =
  let net = load_blif "../data/frg1_synthetic.blif" in
  let exact_r = Flow.compare_ma_mp net in
  let budget =
    Engine.bounded
      ~max_bdd_nodes:(max 2 (exact_r.Flow.mp.Flow.degradation.Engine.bdd_nodes / 2))
      ()
  in
  let config = { Flow.default_config with Flow.budget = Some budget } in
  let r = Flow.compare_ma_mp ~config net in
  (* the ladder completed: every realization priced, degradation recorded *)
  Alcotest.(check bool) "flow degraded somewhere" true (Dpa_core.Report.degraded r);
  let ci = Float.max 0.01 r.Flow.mp.Flow.degradation.Engine.ci_halfwidth in
  let tolerance = Float.max 0.5 (ci *. 4.0 *. float_of_int r.Flow.mp.Flow.size) in
  Alcotest.(check bool)
    (Printf.sprintf "budgeted MP %.4f within %.3f of exact MP %.4f" r.Flow.mp.Flow.power
       tolerance exact_r.Flow.mp.Flow.power)
    true
    (Float.abs (r.Flow.mp.Flow.power -. exact_r.Flow.mp.Flow.power) < tolerance)

let test_node_probabilities_ladder () =
  let net = Dpa_synth.Opt.optimize (load_blif "../data/frg1_synthetic.blif") in
  let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
  let exact = Dpa_bdd.Build.probabilities ~input_probs net in
  let budget = Engine.bounded ~max_bdd_nodes:16 () in
  let approx, how = Engine.node_probabilities ~budget ~input_probs net in
  Alcotest.(check bool) "degraded below exact" true (how <> Engine.Exact);
  let worst = ref 0.0 in
  Array.iteri
    (fun i p -> worst := Float.max !worst (Float.abs (p -. exact.(i))))
    approx;
  Alcotest.(check bool)
    (Printf.sprintf "per-node error %.4f within Monte-Carlo tolerance" !worst)
    true (!worst < 0.05)

(* ---- malformed corpus --------------------------------------------- *)

let corpus =
  [ "truncated.blif"; "mixed_cover.blif"; "bad_char.blif"; "width_mismatch.blif";
    "cycle.blif"; "dangling_latch.blif" ]

let test_malformed_corpus_all_error () =
  List.iter
    (fun name ->
      let text = read_file (Filename.concat "malformed" name) in
      (* both entry points must return Error — never raise *)
      (match Dpa_logic.Blif.sequential_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: sequential_of_string accepted malformed input" name
      | exception e ->
        Alcotest.failf "%s: sequential_of_string raised %s" name (Printexc.to_string e));
      match Dpa_logic.Blif.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: of_string accepted malformed input" name
      | exception e -> Alcotest.failf "%s: of_string raised %s" name (Printexc.to_string e))
    corpus

let test_malformed_messages_carry_lines () =
  let check_line name =
    let text = read_file (Filename.concat "malformed" name) in
    match Dpa_logic.Blif.of_string text with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s error %S names a line" name msg)
        true
        (Testkit.contains_substring msg "line ")
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" name
  in
  (* the row-level defects must point at the offending physical line *)
  List.iter check_line [ "mixed_cover.blif"; "bad_char.blif"; "width_mismatch.blif" ]

let test_width_mismatch_message_detail () =
  match Dpa_logic.Blif.of_string (read_file "malformed/width_mismatch.blif") with
  | Error msg ->
    Alcotest.(check bool) "mentions the width" true
      (Testkit.contains_substring msg "3 characters wide for 2 inputs")
  | Ok _ -> Alcotest.fail "width_mismatch.blif unexpectedly parsed"

(* ---- error taxonomy ----------------------------------------------- *)

let test_exit_codes () =
  let open Dpa_error in
  Alcotest.(check int) "parse" 65
    (exit_code (Parse { source = "x"; line = Some 3; message = "bad" }));
  Alcotest.(check int) "invalid" 65 (exit_code (Invalid_input "x"));
  Alcotest.(check int) "unsupported" 69 (exit_code (Unsupported "x"));
  Alcotest.(check int) "io" 66 (exit_code (Io "x"));
  Alcotest.(check int) "internal" 70 (exit_code (Internal "x"));
  Alcotest.(check int) "budget" 75
    (exit_code
       (Budget { resource = Bdd_nodes; limit = 10.0; spent = 10.0; context = "" }))

let test_of_exn_folding () =
  let open Dpa_error in
  (match of_exn (Sys_error "no such file") with
  | Some (Io _) -> ()
  | _ -> Alcotest.fail "Sys_error should fold to Io");
  (match of_exn (Invalid_argument "nope") with
  | Some (Invalid_input _) -> ()
  | _ -> Alcotest.fail "Invalid_argument should fold to Invalid_input");
  (match of_exn (Failure "bug") with
  | Some (Internal _) -> ()
  | _ -> Alcotest.fail "Failure should fold to Internal");
  match of_exn Not_found with
  | None -> ()
  | Some _ -> Alcotest.fail "unrelated exceptions must not be claimed"

let test_parse_exn_typed () =
  match Dpa_logic.Io.parse_exn "gibberish" with
  | _ -> Alcotest.fail "expected Dpa_error.Error"
  | exception Dpa_error.Error (Dpa_error.Parse _) -> ()
  | exception _ -> Alcotest.fail "wrong exception type"

let suite =
  [ Alcotest.test_case "budget exceeded is typed" `Quick test_budget_exceeded_is_typed;
    Alcotest.test_case "fallback none raises" `Quick test_fallback_none_raises_budget_error;
    Alcotest.test_case "ladder on frg1" `Quick test_ladder_frg1;
    Alcotest.test_case "ladder on seq controller" `Quick test_ladder_seq_controller;
    Alcotest.test_case "deadline budget" `Quick test_deadline_budget;
    Alcotest.test_case "budgeted flow matches unbudgeted" `Slow
      test_budgeted_flow_matches_unbudgeted;
    Alcotest.test_case "node probabilities ladder" `Quick test_node_probabilities_ladder;
    Alcotest.test_case "malformed corpus all error" `Quick test_malformed_corpus_all_error;
    Alcotest.test_case "malformed messages carry lines" `Quick
      test_malformed_messages_carry_lines;
    Alcotest.test_case "width mismatch detail" `Quick test_width_mismatch_message_detail;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "of_exn folding" `Quick test_of_exn_folding;
    Alcotest.test_case "parse_exn typed" `Quick test_parse_exn_typed ]
