module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Cost = Dpa_phase.Cost
module Measure = Dpa_phase.Measure
module Greedy = Dpa_phase.Greedy
module Exhaustive = Dpa_phase.Exhaustive
module Annealing = Dpa_phase.Annealing
module Optimizer = Dpa_phase.Optimizer

let fig5 () = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ())

let test_property_4_1 () =
  (* Property 4.1: flipping an output's phase complements the average cone
     probability used by the cost function *)
  let net = fig5 () in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:(Array.make 4 0.9) net in
  let a_pos = Cost.averages cost ~base_probs:base (Phase.all_positive 2) in
  let a_neg = Cost.averages cost ~base_probs:base [| Phase.Negative; Phase.Negative |] in
  Testkit.check_approx "A0 complements" (1.0 -. a_pos.(0)) a_neg.(0);
  Testkit.check_approx "A1 complements" (1.0 -. a_pos.(1)) a_neg.(1)

let test_cost_formulas () =
  (* hand-checkable instance: |D0| = 2, |D1| = 3, O = 0.2, A = (0.8, 0.4) *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g0 = Netlist.add_gate t (Dpa_logic.Gate.And [| a; b |]) in
  let g1 = Netlist.add_gate t (Dpa_logic.Gate.Or [| a; g0 |]) in
  Netlist.add_output t "f" g0;
  Netlist.add_output t "g" g1;
  let cost = Cost.make t in
  Alcotest.(check int) "|D0|" 3 (Cost.cone_size cost 0);
  Alcotest.(check int) "|D1|" 4 (Cost.cone_size cost 1);
  (* D0 = {a,b,g0}, D1 = {a,b,g0,g1}: overlap = 3/7 *)
  Testkit.check_approx "overlap" (3.0 /. 7.0) (Cost.overlap cost 0 1);
  let averages = [| 0.8; 0.4 |] in
  let d0 = 3.0 and d1 = 4.0 and o = 3.0 /. 7.0 in
  Testkit.check_approx "K(++)"
    ((d0 *. 0.8) +. (d1 *. 0.4) +. (0.5 *. o *. (0.8 +. 0.4)))
    (Cost.k cost ~averages 0 Cost.Retain 1 Cost.Retain);
  Testkit.check_approx "K(--)"
    ((d0 *. 0.2) +. (d1 *. 0.6) +. (0.5 *. o *. (0.2 +. 0.6)))
    (Cost.k cost ~averages 0 Cost.Invert 1 Cost.Invert);
  Testkit.check_approx "K(+-)"
    ((d0 *. 0.8) +. (d1 *. 0.6) +. (0.5 *. o *. (0.8 +. 0.6)))
    (Cost.k cost ~averages 0 Cost.Retain 1 Cost.Invert);
  Testkit.check_approx "K(-+)"
    ((d0 *. 0.2) +. (d1 *. 0.4) +. (0.5 *. o *. (0.2 +. 0.4)))
    (Cost.k cost ~averages 0 Cost.Invert 1 Cost.Retain)

let test_best_action_pair () =
  let net = fig5 () in
  let cost = Cost.make net in
  (* with A = (0.9, 0.9) inverting both is cheapest *)
  let ai, aj, _ = Cost.best_action_pair cost ~averages:[| 0.9; 0.9 |] 0 1 in
  Alcotest.(check bool) "invert both" true (ai = Cost.Invert && aj = Cost.Invert);
  (* with A = (0.1, 0.1) retaining both is cheapest *)
  let ai, aj, _ = Cost.best_action_pair cost ~averages:[| 0.1; 0.1 |] 0 1 in
  Alcotest.(check bool) "retain both" true (ai = Cost.Retain && aj = Cost.Retain)

let measure_for net probs = Measure.create ~input_probs:probs net

let test_measure_caching () =
  let net = fig5 () in
  let m = measure_for net (Array.make 4 0.9) in
  let a = Phase.all_positive 2 in
  let s1 = Measure.eval m a in
  let s2 = Measure.eval m a in
  Alcotest.(check int) "one evaluation" 1 (Measure.evaluations m);
  Testkit.check_approx "same power" s1.Measure.power s2.Measure.power

let test_measure_rejects_xor () =
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let x = Netlist.add_gate t (Dpa_logic.Gate.Xor (a, b)) in
  Netlist.add_output t "f" x;
  Alcotest.check_raises "xor rejected"
    (Invalid_argument "Measure.create: netlist contains XOR; run Opt.optimize first")
    (fun () -> ignore (Measure.create ~input_probs:[| 0.5; 0.5 |] t))

let test_exhaustive_fig5 () =
  (* at p = 0.9 the optimum is realization 2 of Fig. 5 (f+, g−) *)
  let net = fig5 () in
  let m = measure_for net (Array.make 4 0.9) in
  let r = Exhaustive.run m ~num_outputs:2 in
  Alcotest.(check string) "optimal assignment" "+-" (Phase.to_string r.Exhaustive.assignment);
  Testkit.check_approx ~eps:1e-6 "optimal power" 1.1219 r.Exhaustive.power;
  Alcotest.(check int) "tried all" 4 r.Exhaustive.evaluated

let test_greedy_never_worse_than_initial () =
  let net = fig5 () in
  let m = measure_for net (Array.make 4 0.9) in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:(Array.make 4 0.9) net in
  let r = Greedy.run m ~cost ~base_probs:base in
  Alcotest.(check bool) "improves or equals" true (r.Greedy.power <= r.Greedy.initial_power)
  (* note: on fig5 the paper's pairwise heuristic proposes (−,−) for the
     single pair — both cone averages exceed ½ — measures it worse, and
     stops at the all-positive initial point. The optimum (+,−) needs the
     exhaustive search; this is exactly the limitation §4.1 concedes and
     frg1's exhaustive regime exists for. *)

let test_greedy_steps_recorded () =
  let net = fig5 () in
  let m = measure_for net (Array.make 4 0.9) in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:(Array.make 4 0.9) net in
  let r = Greedy.run m ~cost ~base_probs:base in
  Alcotest.(check bool) "steps exist" true (List.length r.Greedy.steps >= 1);
  List.iter
    (fun s ->
      match s.Greedy.measured_power with
      | Some _ -> ()
      | None -> Alcotest.(check bool) "unmeasured steps never commit" false s.Greedy.committed)
    r.Greedy.steps

let test_greedy_commits_monotone () =
  (* committed powers decrease along the trace *)
  let p = { Dpa_workload.Generator.default with n_outputs = 4; seed = 3 } in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let m = measure_for net probs in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let r = Greedy.run m ~cost ~base_probs:base in
  let last = ref r.Greedy.initial_power in
  List.iter
    (fun s ->
      if s.Greedy.committed then begin
        match s.Greedy.measured_power with
        | Some p ->
          Alcotest.(check bool) "commit strictly improves" true (p < !last);
          last := p
        | None -> Alcotest.fail "committed step without measurement"
      end)
    r.Greedy.steps

(* property: greedy power ≥ exhaustive power (exhaustive is optimal), and
   both never exceed the all-positive baseline *)
let prop_greedy_vs_exhaustive =
  Testkit.qcheck_case ~count:30 ~name:"exhaustive ≤ greedy ≤ initial"
    QCheck2.Gen.(pair (Testkit.arbitrary_netlist ()) (Testkit.probs_gen 5))
    (fun (net, probs) ->
      let net = Dpa_synth.Opt.optimize net in
      let m = measure_for net probs in
      let cost = Cost.make net in
      let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
      let g = Greedy.run m ~cost ~base_probs:base in
      let e = Exhaustive.run m ~num_outputs:(Netlist.num_outputs net) in
      e.Exhaustive.power <= g.Greedy.power +. 1e-9
      && g.Greedy.power <= g.Greedy.initial_power +. 1e-9)

let test_annealing_improves () =
  let net = fig5 () in
  let m = measure_for net (Array.make 4 0.9) in
  let rng = Dpa_util.Rng.create 1 in
  let r = Annealing.run rng m ~num_outputs:2 in
  (* annealing tracks the best-ever state; with 400 steps over a 4-point
     space it must find the optimum *)
  Testkit.check_approx ~eps:1e-6 "finds optimum" 1.1219 r.Annealing.power

let test_optimizer_auto_small () =
  let net = fig5 () in
  let config = Optimizer.default_config ~input_probs:(Array.make 4 0.9) in
  let r = Optimizer.minimize_power config net in
  Alcotest.(check string) "strategy" "exhaustive" r.Optimizer.strategy_used;
  Alcotest.(check string) "assignment" "+-" (Phase.to_string r.Optimizer.assignment)

let test_optimizer_auto_wide () =
  let p = { Dpa_workload.Generator.default with n_outputs = 6; n_inputs = 12; seed = 9 } in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let config = { (Optimizer.default_config ~input_probs:probs) with exhaustive_limit = 4 } in
  let r = Optimizer.minimize_power config net in
  Alcotest.(check string) "greedy used" "greedy" r.Optimizer.strategy_used;
  Alcotest.(check bool) "measured something" true (r.Optimizer.measurements >= 1)

let test_optimizer_multi_start () =
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 77;
      n_inputs = 20;
      n_outputs = 5;
      gates_per_output = 8;
      and_bias = 0.35;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let config =
    { (Optimizer.default_config ~input_probs:probs) with
      Optimizer.strategy = Optimizer.Multi_start 4 }
  in
  let r = Optimizer.minimize_power config net in
  Alcotest.(check string) "strategy label" "multi-start(4)" r.Optimizer.strategy_used;
  (* no worse than plain greedy, no better than the exhaustive optimum *)
  let greedy =
    Optimizer.minimize_power
      { config with Optimizer.strategy = Optimizer.Greedy } net
  in
  let optimum =
    Optimizer.minimize_power
      { config with Optimizer.strategy = Optimizer.Exhaustive } net
  in
  Alcotest.(check bool) "≤ greedy" true (r.Optimizer.power <= greedy.Optimizer.power +. 1e-9);
  Alcotest.(check bool) "≥ optimum" true (r.Optimizer.power >= optimum.Optimizer.power -. 1e-9)

let test_optimizer_annealing_strategy () =
  let net = fig5 () in
  let config =
    { (Optimizer.default_config ~input_probs:(Array.make 4 0.9)) with
      strategy = Optimizer.Annealing Annealing.default_params }
  in
  let r = Optimizer.minimize_power config net in
  Alcotest.(check string) "strategy" "annealing" r.Optimizer.strategy_used;
  Testkit.check_approx ~eps:1e-6 "power" 1.1219 r.Optimizer.power

let test_k_tuple_coincides_with_pair () =
  let net = fig5 () in
  let cost = Cost.make net in
  let averages = [| 0.7; 0.3 |] in
  Testkit.check_approx "tuple(+,+) = k(+,+)"
    (Cost.k cost ~averages 0 Cost.Retain 1 Cost.Retain)
    (Cost.k_tuple cost ~averages [ (0, Cost.Retain); (1, Cost.Retain) ]);
  Testkit.check_approx "tuple(-,+) = k(-,+)"
    (Cost.k cost ~averages 0 Cost.Invert 1 Cost.Retain)
    (Cost.k_tuple cost ~averages [ (0, Cost.Invert); (1, Cost.Retain) ])

let test_ranked_action_tuples_sorted () =
  let net = fig5 () in
  let cost = Cost.make net in
  let ranked = Cost.ranked_action_tuples cost ~averages:[| 0.9; 0.2 |] [ 0; 1 ] in
  Alcotest.(check int) "four vectors" 4 (List.length ranked);
  let costs = List.map snd ranked in
  Alcotest.(check bool) "ascending" true (List.sort compare costs = costs);
  let best_actions, best_cost = Cost.best_action_tuple cost ~averages:[| 0.9; 0.2 |] [ 0; 1 ] in
  (match ranked with
  | (a, c) :: _ ->
    Testkit.check_approx "head is argmin" best_cost c;
    Alcotest.(check bool) "same actions" true (a = best_actions)
  | [] -> Alcotest.fail "empty ranking")

let tuple_fixture () =
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 77;
      n_inputs = 20;
      n_outputs = 5;
      gates_per_output = 8;
      and_bias = 0.35;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  (net, probs)

let test_tuple_search_improves () =
  let net, probs = tuple_fixture () in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let exhaustive = Exhaustive.run (measure_for net probs) ~num_outputs:5 in
  List.iter
    (fun k ->
      let m = measure_for net probs in
      let r = Dpa_phase.Tuple_search.run ~k m ~cost ~base_probs:base in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d no worse than initial" k)
        true
        (r.Dpa_phase.Tuple_search.power <= r.Dpa_phase.Tuple_search.initial_power +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d no better than optimum" k)
        true
        (r.Dpa_phase.Tuple_search.power >= exhaustive.Exhaustive.power -. 1e-9))
    [ 2; 3; 4; 5 ]

let test_tuple_search_full_width_with_budget_is_exhaustive_like () =
  (* k = n with a full vector budget must reach the global optimum: the
     ranked enumeration covers all 2^n assignments *)
  let net, probs = tuple_fixture () in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let m = measure_for net probs in
  let r = Dpa_phase.Tuple_search.run ~k:5 ~vectors_per_tuple:32 m ~cost ~base_probs:base in
  let e = Exhaustive.run (measure_for net probs) ~num_outputs:5 in
  Testkit.check_approx ~eps:1e-9 "greedily ordered exhaustive finds the optimum"
    e.Exhaustive.power r.Dpa_phase.Tuple_search.power

let test_tuple_search_validation () =
  let net, probs = tuple_fixture () in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  Alcotest.check_raises "k too small" (Invalid_argument "Tuple_search.run: k = 1 outside [2, 5]")
    (fun () -> ignore (Dpa_phase.Tuple_search.run ~k:1 (measure_for net probs) ~cost ~base_probs:base))

let test_timing_aware_meets_clock () =
  let net, probs = tuple_fixture () in
  let ma = Dpa_synth.Min_area.best net in
  let mapped = Dpa_phase.Measure.realize_mapped (measure_for net probs) ma in
  let unsized = (Dpa_timing.Sta.analyze mapped).Dpa_timing.Sta.critical_delay in
  let config = Dpa_phase.Timing_aware.default_config ~input_probs:probs ~clock:(0.7 *. unsized) in
  let r = Dpa_phase.Timing_aware.minimize config net in
  Alcotest.(check bool) "met" true r.Dpa_phase.Timing_aware.met;
  Alcotest.(check bool) "within clock" true
    (r.Dpa_phase.Timing_aware.delay <= config.Dpa_phase.Timing_aware.clock +. 1e-9);
  Alcotest.(check bool) "finite power" true (Float.is_finite r.Dpa_phase.Timing_aware.power)

let test_timing_aware_never_worse_than_seq_flow () =
  (* integration prices post-closure power, so the winner's post-closure
     power cannot exceed the phase-then-resize flow's (both searched
     exhaustively here) *)
  let net, probs = tuple_fixture () in
  let ma = Dpa_synth.Min_area.best net in
  let mapped0 = Dpa_phase.Measure.realize_mapped (measure_for net probs) ma in
  let unsized = (Dpa_timing.Sta.analyze mapped0).Dpa_timing.Sta.critical_delay in
  let clock = 0.5 *. unsized in
  let seq = Optimizer.minimize_power (Optimizer.default_config ~input_probs:probs) net in
  let seq_mapped =
    Dpa_phase.Measure.realize_mapped (measure_for net probs) seq.Optimizer.assignment
  in
  ignore (Dpa_timing.Resize.meet ~clock seq_mapped);
  let seq_power =
    (Dpa_power.Estimate.of_mapped ~input_probs:probs seq_mapped).Dpa_power.Estimate.total
  in
  let ta =
    Dpa_phase.Timing_aware.minimize
      (Dpa_phase.Timing_aware.default_config ~input_probs:probs ~clock) net
  in
  Alcotest.(check bool) "integrated ≤ sequential" true
    (ta.Dpa_phase.Timing_aware.power <= seq_power +. 1e-9)

let test_timing_aware_validation () =
  let net, probs = tuple_fixture () in
  Alcotest.check_raises "bad clock"
    (Invalid_argument "Timing_aware.minimize: clock must be positive") (fun () ->
      ignore
        (Dpa_phase.Timing_aware.minimize
           (Dpa_phase.Timing_aware.default_config ~input_probs:probs ~clock:0.0) net))

(* ---- incremental measurement vs. from-scratch rebuild ---- *)

let example_circuits () =
  [ ("fig5", Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()));
    ("fig10", Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig10 ()));
    ("decoder3", Dpa_synth.Opt.optimize (Dpa_workload.Examples.decoder ~bits:3));
    ("arbiter4", Dpa_synth.Opt.optimize (Dpa_workload.Examples.priority_arbiter ~width:4));
    ("carry4", Dpa_synth.Opt.optimize (Dpa_workload.Examples.carry_chain ~width:4)) ]

let example_probs net =
  Array.init (Netlist.num_inputs net) (fun k -> 0.25 +. (0.06 *. float_of_int (k mod 10)))

let test_incremental_greedy_matches_rebuild () =
  List.iter
    (fun (name, net) ->
      let probs = example_probs net in
      let cost = Cost.make net in
      let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
      let run mode =
        Greedy.run (Measure.create ~mode ~input_probs:probs net) ~cost ~base_probs:base
      in
      let inc = run `Incremental and reb = run `Rebuild in
      Alcotest.(check string)
        (name ^ ": same assignment")
        (Phase.to_string reb.Greedy.assignment)
        (Phase.to_string inc.Greedy.assignment);
      Alcotest.(check int) (name ^ ": same commits") reb.Greedy.commits inc.Greedy.commits;
      Testkit.check_approx ~eps:1e-9 (name ^ ": same power") reb.Greedy.power
        inc.Greedy.power)
    (example_circuits ())

let test_incremental_probs_exact () =
  (* every single-output flip away from all-positive — the moves a greedy
     step measures — prices identically (1e-12) through the shared env and
     through a from-scratch per-block build *)
  List.iter
    (fun (name, net) ->
      let probs = example_probs net in
      let n_out = Netlist.num_outputs net in
      let m = Measure.create ~input_probs:probs net in
      let env =
        Dpa_power.Estimate.make_env ~input_probs:probs
          (Measure.realize_mapped m (Phase.all_positive n_out))
      in
      let check_assignment a =
        let mapped = Measure.realize_mapped m a in
        let inc = Dpa_power.Estimate.of_mapped_env env mapped in
        let fresh = Dpa_power.Estimate.of_mapped ~input_probs:probs mapped in
        Array.iteri
          (fun i e ->
            Testkit.check_approx ~eps:1e-12
              (Printf.sprintf "%s %s node %d" name (Phase.to_string a) i)
              e
              inc.Dpa_power.Estimate.node_probs.(i))
          fresh.Dpa_power.Estimate.node_probs;
        Testkit.check_approx ~eps:1e-12
          (name ^ " total " ^ Phase.to_string a)
          fresh.Dpa_power.Estimate.total inc.Dpa_power.Estimate.total
      in
      check_assignment (Phase.all_positive n_out);
      for i = 0 to n_out - 1 do
        let a = Phase.all_positive n_out in
        a.(i) <- Phase.Negative;
        check_assignment a
      done)
    (example_circuits ())

let test_averager_matches_averages () =
  let net = fig5 () in
  let cost = Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:(Array.make 4 0.9) net in
  let means = Cost.averager cost ~base_probs:base in
  List.iter
    (fun a ->
      let expect = Cost.averages cost ~base_probs:base a in
      let got = Cost.averages_of cost means a in
      Array.iteri (fun i e -> Testkit.check_approx "averager" e got.(i)) expect)
    [ Phase.all_positive 2;
      [| Phase.Negative; Phase.Positive |];
      [| Phase.Negative; Phase.Negative |] ]

let suite =
  [ Alcotest.test_case "property 4.1" `Quick test_property_4_1;
    Alcotest.test_case "incremental greedy = rebuild greedy" `Quick
      test_incremental_greedy_matches_rebuild;
    Alcotest.test_case "incremental probabilities exact" `Quick
      test_incremental_probs_exact;
    Alcotest.test_case "averager matches averages" `Quick test_averager_matches_averages;
    Alcotest.test_case "cost formulas" `Quick test_cost_formulas;
    Alcotest.test_case "best action pair" `Quick test_best_action_pair;
    Alcotest.test_case "measure caching" `Quick test_measure_caching;
    Alcotest.test_case "measure rejects xor" `Quick test_measure_rejects_xor;
    Alcotest.test_case "exhaustive fig5" `Quick test_exhaustive_fig5;
    Alcotest.test_case "greedy improves" `Quick test_greedy_never_worse_than_initial;
    Alcotest.test_case "greedy trace" `Quick test_greedy_steps_recorded;
    Alcotest.test_case "greedy commits monotone" `Quick test_greedy_commits_monotone;
    Alcotest.test_case "annealing improves" `Quick test_annealing_improves;
    Alcotest.test_case "optimizer auto small" `Quick test_optimizer_auto_small;
    Alcotest.test_case "optimizer auto wide" `Quick test_optimizer_auto_wide;
    Alcotest.test_case "optimizer multi-start" `Quick test_optimizer_multi_start;
    Alcotest.test_case "optimizer annealing" `Quick test_optimizer_annealing_strategy;
    Alcotest.test_case "k-tuple coincides with pair" `Quick test_k_tuple_coincides_with_pair;
    Alcotest.test_case "ranked action tuples" `Quick test_ranked_action_tuples_sorted;
    Alcotest.test_case "tuple search bounds" `Quick test_tuple_search_improves;
    Alcotest.test_case "tuple search full width" `Quick
      test_tuple_search_full_width_with_budget_is_exhaustive_like;
    Alcotest.test_case "tuple search validation" `Quick test_tuple_search_validation;
    Alcotest.test_case "timing-aware meets clock" `Quick test_timing_aware_meets_clock;
    Alcotest.test_case "timing-aware vs sequential" `Quick
      test_timing_aware_never_worse_than_seq_flow;
    Alcotest.test_case "timing-aware validation" `Quick test_timing_aware_validation;
    prop_greedy_vs_exhaustive ]
