module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Robdd = Dpa_bdd.Robdd
module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless
module Int_table = Dpa_util.Int_table

type report = {
  node_probs : float array;
  domino_switching : float;
  domino_power : float;
  input_inverter_power : float;
  output_inverter_power : float;
  total : float;
  bdd_nodes : int;
}

let check_literals ~input_probs mapped =
  Array.iter
    (fun (opos, _) ->
      if opos >= Array.length input_probs then
        invalid_arg "Estimate: input_probs does not cover every referenced PI")
    (Mapped.literals mapped)

(* Variable order for a block: the paper's heuristic on the block, projected
   onto the original PI positions (first occurrence wins; both polarities of
   a PI collapse to one variable). *)
let order_of_block mapped =
  let net = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  let block_order = Dpa_bdd.Ordering.reverse_topological net in
  let seen = Int_table.create ~capacity:(2 * Array.length lits) () in
  let order = ref [] in
  Array.iter
    (fun bpos ->
      let opos, _ = lits.(bpos) in
      if not (Int_table.mem seen opos) then begin
        Int_table.replace seen opos 0;
        order := opos :: !order
      end)
    block_order;
  Array.of_list (List.rev !order)

(* Build the BDD of every block node inside [m], mapping each PI literal to
   its original position's level via [level_of_orig] (complemented literals
   are negations of the same variable). Shared sub-BDDs across calls on one
   manager are interned once — that is what makes repeated candidate
   evaluation incremental. *)
let build_block_roots m level_of_orig mapped =
  let net = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  let pos_of_input_id = Int_table.create ~capacity:32 () in
  Array.iteri (fun k id -> Int_table.replace pos_of_input_id id k) (Netlist.inputs net);
  let roots = Array.make (Netlist.size net) Robdd.bdd_false in
  Netlist.iter_nodes
    (fun i g ->
      roots.(i) <-
        (match g with
        | Gate.Input ->
          let bpos = Int_table.find pos_of_input_id i in
          let opos, pol = lits.(bpos) in
          let v = Robdd.var m (Int_table.find level_of_orig opos) in
          (match pol with Inverterless.Pos -> v | Inverterless.Neg -> Robdd.neg m v)
        | Gate.Const b -> if b then Robdd.bdd_true else Robdd.bdd_false
        | Gate.And xs ->
          Array.fold_left (fun acc x -> Robdd.apply_and m acc roots.(x)) Robdd.bdd_true xs
        | Gate.Or xs ->
          Array.fold_left (fun acc x -> Robdd.apply_or m acc roots.(x)) Robdd.bdd_false xs
        | Gate.Buf _ | Gate.Not _ | Gate.Xor _ ->
          invalid_arg "Estimate: mapped block must be a pure AND/OR network"))
    net;
  roots

(* Signal probability of every block node, with both literals of one
   original PI sharing a single BDD variable. Returns the probabilities and
   the manager size. *)
let block_probabilities ?(cancel = Dpa_util.Cancel.none) ~input_probs mapped =
  check_literals ~input_probs mapped;
  let order = order_of_block mapped in
  let level_of_orig = Int_table.create ~capacity:(2 * Array.length order) () in
  Array.iteri (fun lvl opos -> Int_table.replace level_of_orig opos lvl) order;
  let m =
    Robdd.create_sized ~nvars:(Array.length order)
      ~cache_capacity:(4 * Netlist.size (Mapped.net mapped))
  in
  if not (Dpa_util.Cancel.is_none cancel) then Robdd.set_budget ~cancel m;
  let roots = build_block_roots m level_of_orig mapped in
  let level_probs = Array.map (fun opos -> input_probs.(opos)) order in
  let probs = Robdd.probabilities m level_probs roots in
  Robdd.publish_metrics m;
  probs, Robdd.total_nodes m

let probabilities_of_block ~input_probs mapped =
  fst (block_probabilities ~input_probs mapped)

let price mapped ~node_probs ~input_toggle =
  let net = Mapped.net mapped in
  let lib = Mapped.library mapped in
  let domino_switching = ref 0.0 and domino_power = ref 0.0 in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | None -> ()
      | Some cell ->
        let s = node_probs.(i) in
        domino_switching := !domino_switching +. s;
        domino_power :=
          !domino_power
          +. s *. lib.Dpa_domino.Library.capacitance cell *. Mapped.drive mapped i
             *. (1.0 +. lib.Dpa_domino.Library.penalty cell))
    net;
  (* One static inverter per complemented PI literal in use. *)
  let complemented = Int_table.create ~capacity:32 () in
  Array.iter
    (fun (opos, pol) ->
      match pol with
      | Inverterless.Neg -> Int_table.replace complemented opos 0
      | Inverterless.Pos -> ())
    (Mapped.literals mapped);
  let input_inverter_power =
    Int_table.fold (fun opos _ acc -> acc +. input_toggle opos) complemented 0.0
  in
  let assignment = Mapped.assignment mapped in
  let outs = Netlist.outputs net in
  let output_inverter_power = ref 0.0 in
  Array.iteri
    (fun k (_, driver) ->
      match assignment.(k) with
      | Dpa_synth.Phase.Negative ->
        output_inverter_power :=
          !output_inverter_power +. Model.inverter_after_domino node_probs.(driver)
      | Dpa_synth.Phase.Positive -> ())
    outs;
  let total = !domino_power +. input_inverter_power +. !output_inverter_power in
  {
    node_probs;
    domino_switching = !domino_switching;
    domino_power = !domino_power;
    input_inverter_power;
    output_inverter_power = !output_inverter_power;
    total;
    bdd_nodes = 0;
  }

let of_mapped ?(cancel = Dpa_util.Cancel.none) ~input_probs mapped =
  Dpa_obs.Trace.with_span "estimate.block" @@ fun () ->
  let node_probs, bdd_nodes = block_probabilities ~cancel ~input_probs mapped in
  let report =
    price mapped ~node_probs ~input_toggle:(fun opos ->
        Model.static_switching input_probs.(opos))
  in
  Dpa_obs.Trace.add_args [ ("bdd_nodes", Dpa_obs.Trace.Int bdd_nodes) ];
  { report with bdd_nodes }

let of_activity mapped (a : Dpa_sim.Simulator.activity) =
  price mapped ~node_probs:a.Dpa_sim.Simulator.node_probs ~input_toggle:(fun opos ->
      a.Dpa_sim.Simulator.input_toggles.(opos))

(* ------------------------------------------------------------------ *)
(* Partial (cone-by-cone) building, for the resource-bounded engine     *)
(* ------------------------------------------------------------------ *)

type partial_build = {
  pb_manager : Robdd.manager;
  pb_mapped : Mapped.t;
  pb_order : int array;
  pb_roots : Robdd.node array;
  pb_built : Bytes.t; (* per block node id; '\001' = root valid *)
  pb_level_of_orig : Int_table.t;
  pb_pos_of_input : Int_table.t;
}

let block_order ~input_probs mapped =
  check_literals ~input_probs mapped;
  order_of_block mapped

let start_build ~order mapped =
  let net = Mapped.net mapped in
  let level_of_orig = Int_table.create ~capacity:(2 * Array.length order) () in
  Array.iteri (fun lvl opos -> Int_table.replace level_of_orig opos lvl) order;
  let pos_of_input = Int_table.create ~capacity:32 () in
  Array.iteri (fun k id -> Int_table.replace pos_of_input id k) (Netlist.inputs net);
  {
    pb_manager =
      Robdd.create_sized ~nvars:(Array.length order) ~cache_capacity:(4 * Netlist.size net);
    pb_mapped = mapped;
    pb_order = Array.copy order;
    pb_roots = Array.make (Netlist.size net) Robdd.bdd_false;
    pb_built = Bytes.make (Netlist.size net) '\000';
    pb_level_of_orig = level_of_orig;
    pb_pos_of_input = pos_of_input;
  }

let partial_manager pb = pb.pb_manager

let node_built pb i = Bytes.get pb.pb_built i = '\001'

(* Build every not-yet-built node selected by [within], in id (= topologic)
   order. A budget exhaustion mid-node leaves that node unbuilt but keeps
   everything interned so far: a later retry, or another cone sharing the
   prefix, resumes from unique-table hits. *)
let build_nodes pb ~within =
  let m = pb.pb_manager in
  let lits = Mapped.literals pb.pb_mapped in
  let roots = pb.pb_roots in
  Netlist.iter_nodes
    (fun i g ->
      if within i && not (node_built pb i) then begin
        roots.(i) <-
          (match g with
          | Gate.Input ->
            let bpos = Int_table.find pb.pb_pos_of_input i in
            let opos, pol = lits.(bpos) in
            let v = Robdd.var m (Int_table.find pb.pb_level_of_orig opos) in
            (match pol with Inverterless.Pos -> v | Inverterless.Neg -> Robdd.neg m v)
          | Gate.Const b -> if b then Robdd.bdd_true else Robdd.bdd_false
          | Gate.And xs ->
            Array.fold_left (fun acc x -> Robdd.apply_and m acc roots.(x)) Robdd.bdd_true xs
          | Gate.Or xs ->
            Array.fold_left (fun acc x -> Robdd.apply_or m acc roots.(x)) Robdd.bdd_false xs
          | Gate.Buf _ | Gate.Not _ | Gate.Xor _ ->
            invalid_arg "Estimate: mapped block must be a pure AND/OR network");
        Bytes.set pb.pb_built i '\001'
      end)
    (Mapped.net pb.pb_mapped)

(* In-place dynamic reordering of a partial build. Roots are every
   already-built block node — including the interned prefixes of cones
   whose build blew the budget, which is the point: sifting compacts the
   prefix (and the opening sweep retires the rest), so the retry both
   shares more and starts with reclaimed headroom. [pb_order] is permuted
   in place by the sifter; [pb_level_of_orig] is rebuilt to match even
   when the session ends early (budget, cancellation), so [build_nodes]
   keeps placing PI literals at the right levels afterwards. *)
let sift_partial ?passes ?max_growth ?max_swaps ?max_new_nodes ?deadline ?cancel pb =
  let roots = ref [] in
  Array.iteri
    (fun i r -> if node_built pb i && not (Robdd.is_terminal r) then roots := r :: !roots)
    pb.pb_roots;
  Fun.protect
    ~finally:(fun () ->
      Array.iteri
        (fun lvl opos -> Int_table.replace pb.pb_level_of_orig opos lvl)
        pb.pb_order)
    (fun () ->
      Dpa_bdd.Sift.sift ?passes ?max_growth ?max_swaps ?max_new_nodes ?deadline ?cancel
        ~roots:!roots ~order:pb.pb_order pb.pb_manager)

let partial_probabilities pb ~input_probs =
  let level_probs = Array.map (fun opos -> input_probs.(opos)) pb.pb_order in
  let cache = Robdd.prob_cache pb.pb_manager level_probs in
  Array.init
    (Array.length pb.pb_roots)
    (fun i ->
      if node_built pb i then Robdd.cached_probability cache pb.pb_roots.(i) else Float.nan)

let bounded_block_size ?(cancel = Dpa_util.Cancel.none) ~order ~max_nodes ~deadline mapped =
  let pb = start_build ~order mapped in
  Robdd.set_budget ~max_nodes ?deadline ~cancel ~context:"reorder probe" pb.pb_manager;
  let r =
    match build_nodes pb ~within:(fun _ -> true) with
    | () -> Some (Robdd.total_nodes pb.pb_manager)
    | exception Dpa_util.Dpa_error.Budget_exceeded _ -> None
  in
  Robdd.publish_metrics pb.pb_manager;
  r

(* ------------------------------------------------------------------ *)
(* Incremental estimation: one shared manager across many blocks        *)
(* ------------------------------------------------------------------ *)

type env = {
  manager : Robdd.manager;
  cache : Robdd.prob_cache;
  level_of_orig : Int_table.t;
  env_input_probs : float array;
}

let make_env ?(cancel = Dpa_util.Cancel.none) ~input_probs mapped =
  check_literals ~input_probs mapped;
  (* Seed the variable order from this block (canonically the all-positive
     realization), then append every remaining PI position: re-phased
     variants of the same circuit reference the same PI set, but the tail
     keeps the environment total for any block over these inputs. *)
  let seed_order = order_of_block mapped in
  let n_pi = Array.length input_probs in
  let in_seed = Array.make n_pi false in
  Array.iter (fun opos -> in_seed.(opos) <- true) seed_order;
  let rest = ref [] in
  for opos = n_pi - 1 downto 0 do
    if not in_seed.(opos) then rest := opos :: !rest
  done;
  let order = Array.append seed_order (Array.of_list !rest) in
  let level_of_orig = Int_table.create ~capacity:(2 * n_pi) () in
  Array.iteri (fun lvl opos -> Int_table.replace level_of_orig opos lvl) order;
  let manager =
    Robdd.create_sized ~nvars:(Array.length order)
      ~cache_capacity:(8 * Netlist.size (Mapped.net mapped))
  in
  if not (Dpa_util.Cancel.is_none cancel) then Robdd.set_budget ~cancel manager;
  let level_probs = Array.map (fun opos -> input_probs.(opos)) order in
  {
    manager;
    cache = Robdd.prob_cache manager level_probs;
    level_of_orig;
    env_input_probs = Array.copy input_probs;
  }

let env_manager env = env.manager

let of_mapped_env env mapped =
  Dpa_obs.Trace.with_span "estimate.block.incremental" @@ fun () ->
  check_literals ~input_probs:env.env_input_probs mapped;
  let roots = build_block_roots env.manager env.level_of_orig mapped in
  let node_probs = Array.map (Robdd.cached_probability env.cache) roots in
  let report =
    price mapped ~node_probs ~input_toggle:(fun opos ->
        Model.static_switching env.env_input_probs.(opos))
  in
  Robdd.publish_metrics env.manager;
  { report with bdd_nodes = Robdd.total_nodes env.manager }

let by_cell_type ?(input_toggle = fun _ -> 0.0) mapped ~node_probs =
  let lib = Mapped.library mapped in
  let table = Hashtbl.create 16 in
  let add name power =
    let count, total = Option.value ~default:(0, 0.0) (Hashtbl.find_opt table name) in
    Hashtbl.replace table name (count + 1, total +. power)
  in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | None -> ()
      | Some cell ->
        add (Dpa_domino.Cell.name cell)
          (node_probs.(i)
          *. lib.Dpa_domino.Library.capacitance cell
          *. Mapped.drive mapped i
          *. (1.0 +. lib.Dpa_domino.Library.penalty cell)))
    (Mapped.net mapped);
  let assignment = Mapped.assignment mapped in
  Array.iteri
    (fun k (_, driver) ->
      match assignment.(k) with
      | Dpa_synth.Phase.Negative -> add "INV(out)" (Model.inverter_after_domino node_probs.(driver))
      | Dpa_synth.Phase.Positive -> ())
    (Netlist.outputs (Mapped.net mapped));
  let complemented = Int_table.create ~capacity:32 () in
  Array.iter
    (fun (opos, pol) ->
      match pol with
      | Inverterless.Neg -> Int_table.replace complemented opos 0
      | Inverterless.Pos -> ())
    (Mapped.literals mapped);
  Int_table.iter (fun opos _ -> add "INV(in)" (input_toggle opos)) complemented;
  Hashtbl.fold (fun name (count, power) acc -> (name, count, power) :: acc) table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
