module Netlist = Dpa_logic.Netlist
module Mapped = Dpa_domino.Mapped
module Robdd = Dpa_bdd.Robdd
module Bitset = Dpa_util.Bitset
module Dpa_error = Dpa_util.Dpa_error
module Par = Dpa_util.Par

type fallback = No_fallback | Reorder_retry | Simulate

type reorder_strategy = Sift | Rebuild

type budget = {
  max_bdd_nodes : int option;
  deadline_s : float option;
  fallback : fallback;
  sim_halfwidth : float;
  sim_confidence : float;
  sim_seed : int;
  sim_backend : Dpa_sim.Backend.t;
  reorder_passes : int;
  reorder : reorder_strategy;
}

let default_budget =
  {
    max_bdd_nodes = None;
    deadline_s = None;
    fallback = Simulate;
    sim_halfwidth = 0.01;
    sim_confidence = 0.95;
    sim_seed = 1;
    sim_backend = Dpa_sim.Backend.default;
    reorder_passes = 2;
    reorder = Sift;
  }

let bounded ?max_bdd_nodes ?deadline_s ?(fallback = Simulate)
    ?(sim_backend = Dpa_sim.Backend.default) ?(reorder = Sift) () =
  { default_budget with max_bdd_nodes; deadline_s; fallback; sim_backend; reorder }

let is_unbounded b = b.max_bdd_nodes = None && b.deadline_s = None

let fallback_of_string = function
  | "none" -> Some No_fallback
  | "reorder" -> Some Reorder_retry
  | "sim" -> Some Simulate
  | _ -> None

let fallback_to_string = function
  | No_fallback -> "none"
  | Reorder_retry -> "reorder"
  | Simulate -> "sim"

let reorder_of_string = function
  | "sift" -> Some Sift
  | "rebuild" -> Some Rebuild
  | _ -> None

let reorder_to_string = function Sift -> "sift" | Rebuild -> "rebuild"

(* two-sided normal quantile for the common confidence levels; the sample
   count only needs the right order of magnitude *)
let z_of_confidence c =
  if c >= 0.995 then 2.807
  else if c >= 0.99 then 2.576
  else if c >= 0.95 then 1.960
  else if c >= 0.90 then 1.645
  else 1.282

let sim_cycles_of b =
  let z = z_of_confidence b.sim_confidence in
  let h = Float.max b.sim_halfwidth 1e-4 in
  (* worst-case binomial: halfwidth = z·√(p(1−p)/n) ≤ z/(2√n) *)
  let n = int_of_float (Float.ceil ((z /. (2.0 *. h)) ** 2.0)) in
  max 1_000 (min 200_000 n)

let ci_halfwidth_of b cycles =
  z_of_confidence b.sim_confidence /. (2.0 *. sqrt (float_of_int cycles))

(* ------------------------------------------------------------------ *)
(* Degradation report                                                   *)
(* ------------------------------------------------------------------ *)

type cone_method = Exact | Reordered | Simulated

let cone_method_to_string = function
  | Exact -> "exact"
  | Reordered -> "reordered"
  | Simulated -> "simulated"

type degradation = {
  methods : cone_method array;
  bdd_nodes : int;
  reorder_used : bool;
  sim_cycles : int;
  ci_halfwidth : float;
}

let count_method d m = Array.fold_left (fun n x -> if x = m then n + 1 else n) 0 d.methods

let exact_cones d = count_method d Exact

let reordered_cones d = count_method d Reordered

let simulated_cones d = count_method d Simulated

let all_exact d = Array.for_all (fun m -> m = Exact) d.methods

let exact_degradation ~n_outputs ~bdd_nodes =
  {
    methods = Array.make n_outputs Exact;
    bdd_nodes;
    reorder_used = false;
    sim_cycles = 0;
    ci_halfwidth = 0.0;
  }

let degradation_to_string d =
  if all_exact d then Printf.sprintf "exact (%d BDD nodes)" d.bdd_nodes
  else
    Printf.sprintf "%d exact / %d reordered / %d simulated of %d cones (%d BDD nodes%s)"
      (exact_cones d) (reordered_cones d) (simulated_cones d) (Array.length d.methods)
      d.bdd_nodes
      (if d.sim_cycles = 0 then ""
       else Printf.sprintf ", %d sim cycles, ±%.4f CI" d.sim_cycles d.ci_halfwidth)

let degradation_label d =
  if all_exact d then "exact"
  else
    Printf.sprintf "%dex+%dre+%dsim" (exact_cones d) (reordered_cones d) (simulated_cones d)

type result = {
  report : Estimate.report;
  degradation : degradation;
}

(* ------------------------------------------------------------------ *)
(* Observability cells (resolved lazily; see DESIGN.md §9 for names)    *)
(* ------------------------------------------------------------------ *)

module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

(* eager registration: forcing a [lazy] cell concurrently from two
   service worker domains is a race; registering at module init is not *)
let oc name help = Metrics.counter ~help name

let c_estimates = oc "engine.estimates" "power estimates run through the engine"

let c_exact = oc "engine.cones.exact" "output cones priced exactly"

let c_reordered = oc "engine.cones.reordered" "output cones priced after the reorder rung"

let c_simulated = oc "engine.cones.simulated" "output cones priced by Monte-Carlo fallback"

let c_sim_cycles = oc "engine.sim_cycles" "Monte-Carlo cycles spent in fallbacks"

let g_budget_remaining =
  Metrics.gauge ~help:"BDD node budget left after the last cone build"
    "engine.budget.nodes_remaining"

(* The shard plan below is a pure function of the output cones — never of
   the pool width or its schedule — so [bdd_nodes] at jobs=N over
   [bdd_nodes] at jobs=1 is 1.0 by construction. The gauge is a tripwire:
   anything other than 1.0 means a width-dependence crept into the
   parallel path (CI gates the real two-run ratio on the smoke corpus). *)
let g_sharing_ratio =
  Metrics.gauge
    ~help:"parallel-estimate bdd_nodes over the width-invariant jobs=1 baseline"
    "engine.sharing_ratio"

let c_par_tasks = oc "par.tasks" "tasks fanned out to the domain pool"

let c_par_steals = oc "par.steals" "work-stealing operations in the domain pool"

(* The pool itself sits below Dpa_obs, so it only keeps raw counters;
   every layer that runs a region folds the growth into the registry. *)
let publish_par_stats pool (before : Par.stats) =
  let after = Par.stats pool in
  Metrics.add c_par_tasks (after.Par.tasks - before.Par.tasks);
  Metrics.add c_par_steals (after.Par.steals - before.Par.steals)

(* ------------------------------------------------------------------ *)
(* The ladder                                                           *)
(* ------------------------------------------------------------------ *)

(* One bounded build attempt: every output cone in order, each protected
   individually, so one hostile cone cannot take down its siblings (they
   still profit from whatever sharing was interned before exhaustion). *)
let attempt ~budget ~deadline ~cancel ~order ~cones ~rung mapped =
  let pb = Estimate.start_build ~order mapped in
  let m = Estimate.partial_manager pb in
  Robdd.set_budget ?max_nodes:budget.max_bdd_nodes ?deadline ~cancel m;
  let ok =
    Array.mapi
      (fun k cone ->
        Robdd.set_budget_context m (Printf.sprintf "output cone %d" k);
        let built =
          Trace.with_span "engine.cone"
            ~args:[ ("cone", Trace.Int k); ("rung", Trace.Str rung) ]
          @@ fun () ->
          if Dpa_util.Fault.fire Dpa_util.Fault.Slow_cone then
            Dpa_util.Fault.sleep ~cancel Dpa_util.Fault.Slow_cone;
          match Estimate.build_nodes pb ~within:(Bitset.mem cone) with
          | () ->
            Trace.add_args [ ("built", Trace.Bool true) ];
            true
          | exception Dpa_error.Budget_exceeded _ ->
            Trace.add_args [ ("built", Trace.Bool false) ];
            false
        in
        (match budget.max_bdd_nodes with
        | Some cap ->
          let remaining = float_of_int (max 0 (cap - Robdd.live_nodes m)) in
          Metrics.set g_budget_remaining remaining;
          if Trace.is_enabled () then
            Trace.counter "engine.budget" [ ("nodes_remaining", remaining) ]
        | None -> ());
        built)
      cones
  in
  Robdd.clear_budget m;
  Robdd.publish_metrics m;
  (pb, ok)

let count_ok ok = Array.fold_left (fun n b -> if b then n + 1 else n) 0 ok

(* Budgeted adjacent-swap reorder of the collapsed variable order. Only
   meaningful under a node budget: the oracle needs a finite cap to price
   infeasible orders without hanging. *)
let reordered_order ~budget ~deadline ~cancel ~order mapped =
  match budget.max_bdd_nodes with
  | None -> None
  | Some max_nodes ->
    let deadline_passed () =
      match deadline with Some d -> Unix.gettimeofday () > d | None -> false
    in
    if budget.reorder_passes <= 0 || Array.length order < 2 || deadline_passed () then None
    else begin
      let cost o =
        Dpa_util.Cancel.check cancel;
        if deadline_passed () then max_int
        else
          match Estimate.bounded_block_size ~cancel ~order:o ~max_nodes ~deadline mapped with
          | Some s -> s
          | None -> max_int
      in
      (* the ladder only reaches this rung because the start order blew the
         budget, so its cost is known to be [max_int] — seed the incumbent
         instead of paying a full oracle probe to rediscover it *)
      let r =
        Dpa_bdd.Reorder.refine_cost ~max_passes:budget.reorder_passes
          ~initial_cost:max_int ~cost order
      in
      if r.Dpa_bdd.Reorder.swaps_accepted = 0 then None else Some r.Dpa_bdd.Reorder.order
    end

(* Rung 2 under the [Sift] strategy: instead of probing candidate orders
   with full rebuilds, dynamically reorder the rung-1 store in place
   ({!Dpa_bdd.Sift}) and retry the failed cones in the {e same} partial
   build. Every already-built cone survives with node ids and probability
   memos intact, the interned prefixes of budget-aborted cones compact,
   and whatever became unreachable is retired — handing its node count
   back to the manager budget for the retry. *)

(* Sift allocates transiently while swapping (retired slots are not yet
   reused), so bound the session's raw allocation independently of the
   live-size growth cap; the bound is a function of the live size at
   entry, which is deterministic. *)
let sift_alloc_cap live = max 500_000 (4 * live)

(* A full sift pass performs O(nvars) swaps per variable — quadratic in
   the input count — while the achievable node savings scale with the
   store. Capping the session's swaps linearly in the live size keeps
   the rung's wall-clock proportional to the build it is rescuing on
   wide-input blocks (a truncated session is fine: sifting visits the
   largest levels first, so the early swaps carry most of the gain). *)
let sift_swap_cap live = max 100_000 (2 * live)

(* Every swap pays for the nodes stored at the two levels it exchanges,
   so a sift session costs time proportional to the {e live} store —
   which includes the pinned prefixes of every budget-aborted cone —
   while each retry can only spend [cap] fresh nodes. When the store is
   debris-dominated (live far beyond the cap, i.e. many dead prefixes
   each about cap-sized), the session reshapes millions of nodes to
   maybe rescue one cone: strictly worse than falling through to the
   simulation rung. The ratio is deterministic in the build, so the
   guard cannot perturb jobs-invariance. *)
let sift_worthwhile ~budget m =
  match budget.max_bdd_nodes with
  | None -> true
  | Some cap -> Robdd.live_nodes m <= 16 * cap

let run_sift ~budget ~deadline ~cancel pb =
  let m = Estimate.partial_manager pb in
  let live = Robdd.live_nodes m in
  match
    Estimate.sift_partial ~passes:budget.reorder_passes
      ~max_swaps:(sift_swap_cap live) ~max_new_nodes:(sift_alloc_cap live)
      ?deadline ~cancel pb
  with
  | r ->
    Trace.instant "engine.ladder.sift"
      ~args:
        [
          ("swaps", Trace.Int r.Dpa_bdd.Sift.swaps);
          ("nodes_before", Trace.Int r.Dpa_bdd.Sift.nodes_before);
          ("nodes_after", Trace.Int r.Dpa_bdd.Sift.nodes_after);
        ]
  | exception Dpa_error.Budget_exceeded _ ->
    (* ran out of wall clock or swap allowance mid-sift: the store is
       consistent at every swap boundary, so the retry below still runs
       against whatever improvement was achieved *)
    Trace.instant "engine.ladder.sift" ~args:[ ("completed", Trace.Bool false) ]

(* Retry the cones [ok] marks failed, in the sifted build. Returns the
   updated per-cone success array; [ok] itself is not mutated. *)
let retry_failed ~budget ~deadline ~cancel ~cones ~members ~ok ~headroom pb =
  let m = Estimate.partial_manager pb in
  let ok' = Array.copy ok in
  Array.iteri
    (fun t k ->
      if not ok.(t) then begin
        let max_nodes =
          match budget.max_bdd_nodes with
          | None -> None
          | Some cap -> Some (if headroom then Robdd.live_nodes m + cap else cap)
        in
        Robdd.set_budget ?max_nodes ?deadline ~cancel
          ~context:(Printf.sprintf "output cone %d (sifted)" k)
          m;
        let built =
          Trace.with_span "engine.cone"
            ~args:[ ("cone", Trace.Int k); ("rung", Trace.Str "sift") ]
          @@ fun () ->
          if Dpa_util.Fault.fire Dpa_util.Fault.Slow_cone then
            Dpa_util.Fault.sleep ~cancel Dpa_util.Fault.Slow_cone;
          match Estimate.build_nodes pb ~within:(Bitset.mem cones.(k)) with
          | () ->
            Trace.add_args [ ("built", Trace.Bool true) ];
            true
          | exception Dpa_error.Budget_exceeded _ ->
            Trace.add_args [ ("built", Trace.Bool false) ];
            false
        in
        Robdd.clear_budget m;
        ok'.(t) <- built
      end)
    members;
  Robdd.publish_metrics m;
  ok'

let merge_methods ~ok0 ~okf ~used_reorder =
  Array.init (Array.length okf) (fun k ->
      if okf.(k) then if used_reorder && not ok0.(k) then Reordered else Exact
      else Simulated)

(* ------------------------------------------------------------------ *)
(* Parallel estimation over overlap-sharded cones                       *)
(* ------------------------------------------------------------------ *)

(* Output cones are partitioned into at most [max_shards] shards by a
   greedy overlap heuristic, and each shard builds all its cones in ONE
   manager — the Brace/Rudell thread-local discipline at shard rather
   than cone granularity, so cross-cone sharing survives inside a shard.
   The plan is a pure function of the cones (never of the pool width or
   its schedule), which is what makes every [jobs] count produce the
   same managers, the same [bdd_nodes] and bit-identical probabilities. *)
let max_shards = 16

(* Big cones first; each joins the shard whose accumulated support it
   overlaps most, under a soft load cap of twice the ideal per-shard
   share (ignored only when every shard is over it). Ties break to the
   lighter, then lower-numbered shard. Returns the shard id per cone. *)
let plan_shards ~n_shards cones =
  let n = Array.length cones in
  let shard_of = Array.make n 0 in
  if n_shards > 1 && n > 1 then begin
    let universe = Bitset.universe_size cones.(0) in
    let total = Array.fold_left (fun acc c -> acc + Bitset.cardinal c) 0 cones in
    let load_cap = 2 * ((total + n_shards - 1) / n_shards) in
    let by_size = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let ca = Bitset.cardinal cones.(a) and cb = Bitset.cardinal cones.(b) in
        if ca <> cb then compare cb ca else compare a b)
      by_size;
    let unions = Array.init n_shards (fun _ -> Bitset.create universe) in
    let loads = Array.make n_shards 0 in
    Array.iter
      (fun k ->
        let cone = cones.(k) in
        let pick under_cap_only =
          let best = ref (-1) and best_ov = ref (-1) and best_ld = ref max_int in
          for s = 0 to n_shards - 1 do
            if (not under_cap_only) || loads.(s) < load_cap then begin
              let ov = Bitset.inter_cardinal cone unions.(s) in
              if ov > !best_ov || (ov = !best_ov && loads.(s) < !best_ld) then begin
                best := s;
                best_ov := ov;
                best_ld := loads.(s)
              end
            end
          done;
          !best
        in
        let s = match pick true with -1 -> pick false | s -> s in
        shard_of.(k) <- s;
        Bitset.union_into unions.(s) cone;
        loads.(s) <- loads.(s) + Bitset.cardinal cone)
      by_size
  end;
  shard_of

(* What one shard task hands back across the domain boundary: plain data
   only — the shard's manager dies with the task. [sb_probs] has
   [Float.nan] wherever the (possibly partial) build did not reach. *)
type shard_build = {
  sb_ok0 : bool array;  (* rung-1 success, parallel to the member array *)
  sb_okf : bool array;  (* after the in-shard sift retry *)
  sb_nodes : int;  (* live manager nodes when the shard finished *)
  sb_probs : float array;
}

(* One shard, one manager, built in whatever domain the pool schedules
   the task on. Cones build in ascending index order under a per-cone
   headroom budget ([live + cap], so the cap bounds each cone's NEW
   nodes — the moral equivalent of the full cap every per-cone private
   manager used to get, minus the re-derivation). Under the [Sift]
   strategy a shard with failures sifts its own store in place and
   retries them right here, so no manager ever crosses a domain. *)
let build_shard ~budget ~deadline ~cancel ~order ~input_probs ~cones ~members ~sift ~rung
    mapped =
  Trace.with_span "engine.shard"
    ~args:
      [
        ("cones", Trace.Int (Array.length members));
        ("rung", Trace.Str rung);
        ("domain", Trace.Int (Domain.self () :> int));
      ]
  @@ fun () ->
  let pb = Estimate.start_build ~order mapped in
  let m = Estimate.partial_manager pb in
  let ok0 =
    Array.map
      (fun k ->
        let max_nodes =
          Option.map (fun cap -> Robdd.live_nodes m + cap) budget.max_bdd_nodes
        in
        Robdd.set_budget ?max_nodes ?deadline ~cancel
          ~context:(Printf.sprintf "output cone %d" k)
          m;
        let built =
          Trace.with_span "engine.cone"
            ~args:[ ("cone", Trace.Int k); ("rung", Trace.Str rung) ]
          @@ fun () ->
          if Dpa_util.Fault.fire Dpa_util.Fault.Slow_cone then
            Dpa_util.Fault.sleep ~cancel Dpa_util.Fault.Slow_cone;
          match Estimate.build_nodes pb ~within:(Bitset.mem cones.(k)) with
          | () ->
            Trace.add_args [ ("built", Trace.Bool true) ];
            true
          | exception Dpa_error.Budget_exceeded _ ->
            Trace.add_args [ ("built", Trace.Bool false) ];
            false
        in
        Robdd.clear_budget m;
        (match max_nodes with
        | Some cap ->
          let remaining = float_of_int (max 0 (cap - Robdd.live_nodes m)) in
          Metrics.set g_budget_remaining remaining
        | None -> ());
        built)
      members
  in
  (* extract rung-1 probabilities before any reordering, so cones priced
     by rung 1 keep bit-identical values whatever the sift does *)
  let probs0 = Estimate.partial_probabilities pb ~input_probs in
  let okf =
    if
      sift
      && budget.fallback <> No_fallback
      && budget.reorder_passes > 0
      && not (Array.for_all Fun.id ok0)
      && sift_worthwhile ~budget m
    then begin
      run_sift ~budget ~deadline ~cancel pb;
      retry_failed ~budget ~deadline ~cancel ~cones ~members ~ok:ok0 ~headroom:true pb
    end
    else ok0
  in
  Robdd.publish_metrics m;
  let probs =
    if okf == ok0 then probs0
    else begin
      let probs1 = Estimate.partial_probabilities pb ~input_probs in
      Array.mapi (fun i p0 -> if Float.is_nan p0 then probs1.(i) else p0) probs0
    end
  in
  { sb_ok0 = ok0; sb_okf = okf; sb_nodes = Robdd.live_nodes m; sb_probs = probs }

let failed_indices ok =
  let acc = ref [] in
  Array.iteri (fun k b -> if not b then acc := k :: !acc) ok;
  Array.of_list (List.rev !acc)

(* The parallel ladder. Shard tasks return plain arrays and all merging
   happens on the submitting domain in ascending shard order, so the
   result is independent of the pool's schedule — and therefore of the
   jobs count. The budget is enforced per cone as headroom over the
   shard manager's live size, unlike the sequential ladder's cumulative
   cap; both are honest policies, but they are different policies, so
   the two paths are not numerically comparable under a budget. *)
let estimate_par ~pool ~budget ~cancel ~input_probs mapped =
  let net = Mapped.net mapped in
  let n_out = Netlist.num_outputs net in
  let order = Estimate.block_order ~input_probs mapped in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) budget.deadline_s in
  let cones = Dpa_logic.Cone.of_outputs net in
  let before = Par.stats pool in
  let n_shards = max 1 (min n_out max_shards) in
  let shard_of = plan_shards ~n_shards cones in
  let groups =
    Array.init n_shards (fun s ->
        failed_indices (Array.init n_out (fun k -> shard_of.(k) <> s)))
    |> Array.to_list
    |> List.filter (fun g -> Array.length g > 0)
    |> Array.of_list
  in
  (* rung 1 (+ in-shard sift retry under the default strategy) *)
  let builds =
    Par.map pool (Array.length groups) (fun s ->
        build_shard ~budget ~deadline ~cancel ~order ~input_probs ~cones
          ~members:groups.(s) ~sift:(budget.reorder = Sift) ~rung:"exact" mapped)
  in
  let ok0 = Array.make n_out false and okf = Array.make n_out false in
  Array.iteri
    (fun s members ->
      Array.iteri
        (fun t k ->
          ok0.(k) <- builds.(s).sb_ok0.(t);
          okf.(k) <- builds.(s).sb_okf.(t))
        members)
    groups;
  Trace.instant "engine.ladder.exact"
    ~args:[ ("built", Trace.Int (count_ok ok0)); ("cones", Trace.Int n_out) ];
  let retry_nodes = ref 0 in
  let retry_probs = ref [] in
  (* rung 2 under [Rebuild]: one hill-climbed order' computed here on the
     submitting domain, then shards with failures rebuild just their
     failed cones under it in fresh managers; adoption is per cone — a
     retry that also blows the budget keeps the rung-1 partial build
     (its interned prefix still prices exactly). Under [Sift] the retry
     already happened inside each shard task. *)
  (match budget.reorder with
  | Sift ->
    if count_ok okf > count_ok ok0 then
      Trace.instant "engine.ladder.reorder"
        ~args:
          [
            ("strategy", Trace.Str "sift");
            ("adopted", Trace.Bool true);
            ("built", Trace.Int (count_ok okf));
          ]
  | Rebuild ->
    if not (Array.for_all Fun.id ok0) && budget.fallback <> No_fallback then begin
      Dpa_util.Cancel.check cancel;
      match reordered_order ~budget ~deadline ~cancel ~order mapped with
      | None ->
        Trace.instant "engine.ladder.reorder"
          ~args:[ ("strategy", Trace.Str "rebuild"); ("adopted", Trace.Bool false) ]
      | Some order' ->
        let rgroups =
          Array.to_list groups
          |> List.map (fun members -> Array.of_list (List.filter (fun k -> not ok0.(k)) (Array.to_list members)))
          |> List.filter (fun g -> Array.length g > 0)
          |> Array.of_list
        in
        let retries =
          Par.map pool (Array.length rgroups) (fun t ->
              build_shard ~budget ~deadline ~cancel ~order:order' ~input_probs ~cones
                ~members:rgroups.(t) ~sift:false ~rung:"reorder" mapped)
        in
        let adopted = ref 0 in
        Array.iteri
          (fun t members ->
            retry_nodes := !retry_nodes + retries.(t).sb_nodes;
            let any = ref false in
            Array.iteri
              (fun u k ->
                if retries.(t).sb_okf.(u) then begin
                  okf.(k) <- true;
                  any := true;
                  incr adopted
                end)
              members;
            if !any then retry_probs := retries.(t).sb_probs :: !retry_probs)
          rgroups;
        retry_probs := List.rev !retry_probs;
        Trace.instant "engine.ladder.reorder"
          ~args:
            [
              ("strategy", Trace.Str "rebuild");
              ("adopted", Trace.Bool (!adopted > 0));
              ("built", Trace.Int (count_ok okf));
            ]
    end);
  let reorder_used = count_ok okf > count_ok ok0 in
  let methods =
    Array.init n_out (fun k ->
        if not okf.(k) then Simulated else if ok0.(k) then Exact else Reordered)
  in
  if Trace.is_enabled () then
    Array.iteri
      (fun k meth ->
        Trace.instant "engine.cone.method"
          ~args:
            [ ("cone", Trace.Int k); ("method", Trace.Str (cone_method_to_string meth)) ])
      methods;
  Metrics.add c_exact (Array.fold_left (fun n m -> if m = Exact then n + 1 else n) 0 methods);
  Metrics.add c_reordered
    (Array.fold_left (fun n m -> if m = Reordered then n + 1 else n) 0 methods);
  Metrics.add c_simulated
    (Array.fold_left (fun n m -> if m = Simulated then n + 1 else n) 0 methods);
  let bdd_nodes =
    Array.fold_left (fun acc b -> acc + b.sb_nodes) !retry_nodes builds
  in
  Metrics.set g_sharing_ratio 1.0;
  let n_failed = n_out - count_ok okf in
  if n_failed > 0 && budget.fallback <> Simulate then
    Dpa_error.error
      (Dpa_error.Budget
         {
           Dpa_error.resource = Dpa_error.Bdd_nodes;
           limit =
             (match budget.max_bdd_nodes with
             | Some n -> float_of_int n
             | None -> infinity);
           spent = float_of_int bdd_nodes;
           context =
             Printf.sprintf "%d of %d output cones unbuildable (fallback %s)" n_failed
               n_out
               (fallback_to_string budget.fallback);
         });
  (* deterministic merge, ascending shard index: every exact value a
     shard produced (including the interned prefixes of failed builds),
     then adopted rebuild-retry values, then Monte-Carlo values for
     whatever stayed unbuilt everywhere *)
  let node_probs = Array.make (Netlist.size net) Float.nan in
  let merge_probs probs =
    Array.iteri (fun i p -> if not (Float.is_nan p) then node_probs.(i) <- p) probs
  in
  Array.iter (fun b -> merge_probs b.sb_probs) builds;
  List.iter merge_probs !retry_probs;
  let sim_cycles, ci =
    if n_failed = 0 then (0, 0.0)
    else begin
      Dpa_util.Cancel.check cancel;
      let cycles = sim_cycles_of budget in
      let failed = failed_indices okf in
      Trace.instant "engine.ladder.sim"
        ~args:
          [
            ("cycles", Trace.Int cycles);
            ("cones", Trace.Int n_failed);
            ("backend", Trace.Str (Dpa_sim.Backend.to_string budget.sim_backend));
          ];
      Metrics.add c_sim_cycles (cycles * n_failed);
      (* compiled backend: lower the block to its tape once on the
         submitting domain; the program is immutable, so the pool's
         domains measure their cones against the shared tape *)
      let measure_cone =
        match budget.sim_backend with
        | Dpa_sim.Backend.Interp ->
          fun rng ->
            Dpa_sim.Simulator.measure ~backend:Dpa_sim.Backend.Interp ~cycles ~cancel rng
              ~input_probs mapped
        | Dpa_sim.Backend.Compiled ->
          let prog = Dpa_sim.Compiled.of_block mapped in
          fun rng -> Dpa_sim.Simulator.measure_compiled ~cycles ~cancel rng ~input_probs prog
      in
      (* rung 3: per-cone Monte-Carlo with index-derived seeds — cone k
         sees the same stream whichever domain (or jobs count) runs it *)
      let acts =
        Par.map pool n_failed (fun t ->
            let k = failed.(t) in
            Trace.with_span "engine.cone"
              ~args:
                [
                  ("cone", Trace.Int k);
                  ("rung", Trace.Str "sim");
                  ("domain", Trace.Int (Domain.self () :> int));
                ]
            @@ fun () ->
            measure_cone (Dpa_util.Rng.derive ~base:budget.sim_seed ~index:k))
      in
      Array.iteri
        (fun t k ->
          Bitset.iter
            (fun i ->
              if Float.is_nan node_probs.(i) then
                node_probs.(i) <- acts.(t).Dpa_sim.Simulator.node_probs.(i))
            cones.(k))
        failed;
      (cycles, ci_halfwidth_of budget cycles)
    end
  in
  publish_par_stats pool before;
  let report =
    Estimate.price mapped ~node_probs ~input_toggle:(fun opos ->
        Model.static_switching input_probs.(opos))
  in
  {
    report = { report with Estimate.bdd_nodes };
    degradation = { methods; bdd_nodes; reorder_used; sim_cycles; ci_halfwidth = ci };
  }

let estimate ?par ?(budget = default_budget) ?(cancel = Dpa_util.Cancel.none) ~input_probs
    mapped =
  let net = Mapped.net mapped in
  let n_out = Netlist.num_outputs net in
  let args =
    [
      ("outputs", Trace.Int n_out);
      ("bounded", Trace.Bool (not (is_unbounded budget)));
      ("fallback", Trace.Str (fallback_to_string budget.fallback));
    ]
  in
  let args =
    match par with
    | None -> args
    | Some pool -> args @ [ ("jobs", Trace.Int (Par.jobs pool)) ]
  in
  Trace.with_span "engine.estimate" ~args
  @@ fun () ->
  Metrics.incr c_estimates;
  Dpa_util.Cancel.check cancel;
  match par with
  | Some pool -> estimate_par ~pool ~budget ~cancel ~input_probs mapped
  | None ->
  if is_unbounded budget then begin
    if Dpa_util.Fault.fire Dpa_util.Fault.Slow_cone then
      Dpa_util.Fault.sleep ~cancel Dpa_util.Fault.Slow_cone;
    let report = Estimate.of_mapped ~cancel ~input_probs mapped in
    Metrics.add c_exact n_out;
    {
      report;
      degradation =
        exact_degradation ~n_outputs:n_out ~bdd_nodes:report.Estimate.bdd_nodes;
    }
  end
  else begin
    let order = Estimate.block_order ~input_probs mapped in
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) budget.deadline_s in
    let cones = Dpa_logic.Cone.of_outputs net in
    (* rung 1: exact under budget *)
    let pb0, ok0 = attempt ~budget ~deadline ~cancel ~order ~cones ~rung:"exact" mapped in
    Trace.instant "engine.ladder.exact"
      ~args:[ ("built", Trace.Int (count_ok ok0)); ("cones", Trace.Int n_out) ];
    let probs_of pb = Estimate.partial_probabilities pb ~input_probs in
    let pb, okf, reorder_used, exact_probs =
      if Array.for_all Fun.id ok0 || budget.fallback = No_fallback then
        (pb0, ok0, false, probs_of pb0)
      else begin
        Dpa_util.Cancel.check cancel;
        match budget.reorder with
        | Sift ->
          (* rung 2 (default): sift the rung-1 store in place and retry
             the failed cones in the same partial build. Rung-1
             probabilities are extracted first so every cone that built
             before the sift keeps bit-identical values. *)
          if
            budget.reorder_passes <= 0
            || not (sift_worthwhile ~budget (Estimate.partial_manager pb0))
          then (pb0, ok0, false, probs_of pb0)
          else begin
            let probs0 = probs_of pb0 in
            run_sift ~budget ~deadline ~cancel pb0;
            let ok1 =
              retry_failed ~budget ~deadline ~cancel ~cones
                ~members:(Array.init n_out Fun.id) ~ok:ok0 ~headroom:false pb0
            in
            let adopted = count_ok ok1 > count_ok ok0 in
            Trace.instant "engine.ladder.reorder"
              ~args:
                [
                  ("strategy", Trace.Str "sift");
                  ("adopted", Trace.Bool adopted);
                  ("built", Trace.Int (count_ok ok1));
                ];
            let probs1 = probs_of pb0 in
            let merged =
              Array.mapi (fun i p0 -> if Float.is_nan p0 then probs1.(i) else p0) probs0
            in
            (pb0, ok1, adopted, merged)
          end
        | Rebuild -> (
          (* rung 2 (opt-in): one retry under a hill-climbed order, with
             candidate orders priced by full bounded rebuilds *)
          match reordered_order ~budget ~deadline ~cancel ~order mapped with
          | None ->
            Trace.instant "engine.ladder.reorder"
              ~args:[ ("strategy", Trace.Str "rebuild"); ("adopted", Trace.Bool false) ];
            (pb0, ok0, false, probs_of pb0)
          | Some order' ->
            let pb1, ok1 =
              attempt ~budget ~deadline ~cancel ~order:order' ~cones ~rung:"reorder"
                mapped
            in
            let adopted = count_ok ok1 > count_ok ok0 in
            Trace.instant "engine.ladder.reorder"
              ~args:
                [
                  ("strategy", Trace.Str "rebuild");
                  ("adopted", Trace.Bool adopted);
                  ("built", Trace.Int (count_ok ok1));
                ];
            if adopted then (pb1, ok1, true, probs_of pb1)
            else (pb0, ok0, false, probs_of pb0))
      end
    in
    let methods = merge_methods ~ok0 ~okf ~used_reorder:reorder_used in
    if Trace.is_enabled () then
      Array.iteri
        (fun k meth ->
          Trace.instant "engine.cone.method"
            ~args:
              [ ("cone", Trace.Int k); ("method", Trace.Str (cone_method_to_string meth)) ])
        methods;
    Metrics.add c_exact
      (Array.fold_left (fun n m -> if m = Exact then n + 1 else n) 0 methods);
    Metrics.add c_reordered
      (Array.fold_left (fun n m -> if m = Reordered then n + 1 else n) 0 methods);
    Metrics.add c_simulated
      (Array.fold_left (fun n m -> if m = Simulated then n + 1 else n) 0 methods);
    let bdd_nodes = Robdd.live_nodes (Estimate.partial_manager pb) in
    let n_failed = n_out - count_ok okf in
    if n_failed > 0 && budget.fallback <> Simulate then
      Dpa_error.error
        (Dpa_error.Budget
           {
             Dpa_error.resource = Dpa_error.Bdd_nodes;
             limit =
               (match budget.max_bdd_nodes with
               | Some n -> float_of_int n
               | None -> infinity);
             spent = float_of_int bdd_nodes;
             context =
               Printf.sprintf "%d of %d output cones unbuildable (fallback %s)" n_failed
                 n_out
                 (fallback_to_string budget.fallback);
           });
    let node_probs, sim_cycles, ci =
      if n_failed = 0 then (exact_probs, 0, 0.0)
      else begin
        (* rung 3: Monte-Carlo fallback for whatever stayed unbuilt *)
        Dpa_util.Cancel.check cancel;
        let cycles = sim_cycles_of budget in
        Trace.instant "engine.ladder.sim"
          ~args:
            [
              ("cycles", Trace.Int cycles);
              ("cones", Trace.Int n_failed);
              ("backend", Trace.Str (Dpa_sim.Backend.to_string budget.sim_backend));
            ];
        Metrics.add c_sim_cycles cycles;
        let rng = Dpa_util.Rng.create budget.sim_seed in
        let act =
          Dpa_sim.Simulator.measure ~backend:budget.sim_backend ~cycles ~cancel rng
            ~input_probs mapped
        in
        let merged =
          Array.mapi
            (fun i exact ->
              if Float.is_nan exact then act.Dpa_sim.Simulator.node_probs.(i) else exact)
            exact_probs
        in
        (merged, cycles, ci_halfwidth_of budget cycles)
      end
    in
    let report =
      Estimate.price mapped ~node_probs ~input_toggle:(fun opos ->
          Model.static_switching input_probs.(opos))
    in
    {
      report = { report with Estimate.bdd_nodes };
      degradation =
        { methods; bdd_nodes; reorder_used; sim_cycles; ci_halfwidth = ci };
    }
  end

(* ------------------------------------------------------------------ *)
(* Netlist-level node probabilities under the same ladder               *)
(* ------------------------------------------------------------------ *)

let mc_netlist_probabilities ~backend ~cycles ~seed ~cancel ~input_probs net =
  let rng = Dpa_util.Rng.create seed in
  match backend with
  | Dpa_sim.Backend.Compiled ->
    Dpa_sim.Compiled.node_probabilities ~cycles ~cancel rng ~input_probs
      (Dpa_sim.Compiled.of_netlist net)
  | Dpa_sim.Backend.Interp ->
    let n = Netlist.size net in
    let counts = Array.make n 0 in
    for cycle = 1 to cycles do
      if cycle land 63 = 0 then Dpa_util.Cancel.check cancel;
      let vec = Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) input_probs in
      let values = Dpa_logic.Eval.all_nodes net vec in
      Array.iteri (fun i v -> if v then counts.(i) <- counts.(i) + 1) values
    done;
    Array.map (fun c -> float_of_int c /. float_of_int cycles) counts

let node_probabilities ?(budget = default_budget) ?(cancel = Dpa_util.Cancel.none)
    ~input_probs net =
  if Array.length input_probs <> Netlist.num_inputs net then
    invalid_arg "Engine.node_probabilities: input_probs length mismatch";
  Trace.with_span "engine.node_probabilities" @@ fun () ->
  Dpa_util.Cancel.check cancel;
  let tag meth =
    Trace.add_args [ ("method", Trace.Str (cone_method_to_string meth)) ]
  in
  if is_unbounded budget then begin
    tag Exact;
    (Dpa_bdd.Build.probabilities ~input_probs net, Exact)
  end
  else begin
    let order = Dpa_bdd.Ordering.reverse_topological net in
    let max_nodes = match budget.max_bdd_nodes with Some n -> n | None -> max_int in
    let bounded_try order =
      match Dpa_bdd.Build.bounded_size ~order ~max_nodes net with
      | Some _ ->
        (* feasible: rebuild unbudgeted — the probe just proved it fits *)
        Some (Dpa_bdd.Build.probabilities ~order ~input_probs net)
      | None -> None
    in
    match bounded_try order with
    | Some probs ->
      tag Exact;
      (probs, Exact)
    | None -> (
      let retry =
        if budget.fallback = No_fallback || budget.reorder_passes <= 0 then None
        else
          match budget.max_bdd_nodes with
          | None -> None
          | Some max_nodes -> (
            match
              Dpa_bdd.Reorder.refine_bounded ~max_passes:budget.reorder_passes
                ~initial_cost:max_int ~max_nodes net order
            with
            | Some r -> bounded_try r.Dpa_bdd.Reorder.order
            | None -> None)
      in
      match retry with
      | Some probs ->
        tag Reordered;
        (probs, Reordered)
      | None ->
        if budget.fallback <> Simulate then
          Dpa_error.error
            (Dpa_error.Budget
               {
                 Dpa_error.resource = Dpa_error.Bdd_nodes;
                 limit =
                   (match budget.max_bdd_nodes with
                   | Some n -> float_of_int n
                   | None -> infinity);
                 spent = float_of_int max_nodes;
                 context = "netlist probability build (fallback insufficient)";
               });
        tag Simulated;
        Trace.add_args
          [ ("backend", Trace.Str (Dpa_sim.Backend.to_string budget.sim_backend)) ];
        (mc_netlist_probabilities ~backend:budget.sim_backend
           ~cycles:(sim_cycles_of budget) ~seed:budget.sim_seed ~cancel ~input_probs net,
         Simulated))
  end
