(** Resource-bounded estimation engine: the degradation ladder.

    Exact BDD probability estimation is worst-case exponential in circuit
    size. The engine makes every estimate terminate inside a configurable
    resource {!budget} by degrading gracefully, one output cone at a time:

    + {b exact} — build the block's BDDs under a manager node budget and
      wall-clock deadline ({!Dpa_bdd.Robdd.set_budget});
    + {b reorder} — if a cone blows the budget, reorder and retry. The
      default {!reorder_strategy} ([Sift]) dynamically reorders the
      rung-1 node store {e in place} ({!Dpa_bdd.Sift}) — already-built
      cones survive bitwise, aborted prefixes compact, garbage is
      retired back to the budget — and retries the failed cones in the
      same build. [Rebuild] instead hill-climbs a fresh order with full
      bounded rebuilds as the cost oracle
      ({!Dpa_bdd.Reorder.refine_cost} over
      {!Estimate.bounded_block_size}) and re-attempts from scratch;
    + {b simulate} — cones still unbuilt are priced from a Monte-Carlo run
      of the domino simulator ({!Dpa_sim.Simulator.measure}) with a sample
      count sized from the requested confidence interval, merged with the
      exact probabilities of everything that {e did} build.

    Every answer carries a {!degradation} report saying which rung priced
    which cone, so callers (and the CLI) can surface approximation
    honestly. With [fallback = No_fallback] (or [Reorder_retry] when the
    retry is insufficient) the engine raises a typed
    {!Dpa_util.Dpa_error.Error} with a [Budget] payload instead of
    degrading — never a bare [Failure]. *)

(** What to do when the exact build exhausts its budget. Each level
    includes the previous: [Simulate] still tries exact, then reorder,
    then simulation. *)
type fallback = No_fallback | Reorder_retry | Simulate

(** How the reorder rung recovers a cone that blew the node budget.
    [Sift] (the default) reorders the existing store in place and
    resumes; [Rebuild] searches for a better order by rebuilding from
    scratch under candidate orders — quadratically more oracle work,
    kept as the reference implementation and for A/B benchmarking
    ([bench reorder]). *)
type reorder_strategy = Sift | Rebuild

type budget = {
  max_bdd_nodes : int option;  (** manager node cap; [None] = unlimited *)
  deadline_s : float option;
      (** wall-clock seconds for the whole estimate; [None] = unlimited *)
  fallback : fallback;
  sim_halfwidth : float;
      (** target 95%-style confidence-interval half-width on simulated
          probabilities; sizes the Monte-Carlo sample count *)
  sim_confidence : float;  (** confidence level for [sim_halfwidth] *)
  sim_seed : int;
      (** deterministic simulator seed — identical inputs give identical
          fallback numbers, which keeps greedy phase search monotone *)
  sim_backend : Dpa_sim.Backend.t;
      (** how the Monte-Carlo rung evaluates the netlist; both backends
          are bit-identical for equal seeds ({!Dpa_sim.Backend}), so
          this only trades speed *)
  reorder_passes : int;
      (** reorder-rung effort: sift passes under [Sift], hill-climb
          passes under [Rebuild]; [0] disables the rung *)
  reorder : reorder_strategy;
}

val default_budget : budget
(** Unlimited resources, [Simulate] fallback, 1% half-width at 95%
    confidence, seed 1, the default simulation backend
    ({!Dpa_sim.Backend.default}), 2 reorder passes with the [Sift]
    strategy. *)

val bounded :
  ?max_bdd_nodes:int ->
  ?deadline_s:float ->
  ?fallback:fallback ->
  ?sim_backend:Dpa_sim.Backend.t ->
  ?reorder:reorder_strategy ->
  unit ->
  budget
(** [default_budget] with the given limits installed. *)

val is_unbounded : budget -> bool
(** No node cap and no deadline — the engine short-circuits to the plain
    exact estimator. *)

val fallback_of_string : string -> fallback option
(** ["none"] | ["reorder"] | ["sim"] (the CLI spelling). *)

val fallback_to_string : fallback -> string

val reorder_of_string : string -> reorder_strategy option
(** ["sift"] | ["rebuild"] (the CLI spelling). *)

val reorder_to_string : reorder_strategy -> string

val sim_cycles_of : budget -> int
(** Monte-Carlo sample count implied by [sim_halfwidth]/[sim_confidence]:
    [⌈(z / 2·halfwidth)²⌉] clamped to [1_000 .. 200_000]. *)

val ci_halfwidth_of : budget -> int -> float
(** Worst-case (p = ½) confidence-interval half-width actually achieved by
    a run of the given cycle count. *)

(** {2 Degradation report} *)

(** How one output cone's probabilities were obtained. *)
type cone_method = Exact | Reordered | Simulated

val cone_method_to_string : cone_method -> string
(** ["exact"] | ["reordered"] | ["simulated"] — also the spelling of the
    [method] attribute on [engine.cone.method] trace events. *)

type degradation = {
  methods : cone_method array;  (** per output cone, in output order *)
  bdd_nodes : int;  (** manager size of the (possibly partial) build *)
  reorder_used : bool;  (** the reorder rung's order was adopted *)
  sim_cycles : int;  (** 0 when no cone needed simulation *)
  ci_halfwidth : float;  (** 0.0 when no cone needed simulation *)
}

val exact_cones : degradation -> int

val reordered_cones : degradation -> int

val simulated_cones : degradation -> int

val all_exact : degradation -> bool

val exact_degradation : n_outputs:int -> bdd_nodes:int -> degradation
(** The trivial report of a fully exact estimate. *)

val degradation_to_string : degradation -> string
(** One human-readable line, e.g.
    ["2 exact / 0 reordered / 1 simulated of 3 cones (512 BDD nodes, 9604 sim cycles, ±0.0100 CI)"]. *)

val degradation_label : degradation -> string
(** Compact CSV-friendly label: ["exact"] or ["2ex+0re+1sim"]. *)

(** {2 Estimation} *)

type result = {
  report : Estimate.report;
  degradation : degradation;
}

val estimate :
  ?par:Dpa_util.Par.t ->
  ?budget:budget ->
  ?cancel:Dpa_util.Cancel.t ->
  input_probs:float array ->
  Dpa_domino.Mapped.t ->
  result
(** Runs the ladder on one mapped block. With an unbounded budget this is
    exactly {!Estimate.of_mapped}. Under a budget, each output cone is
    built separately so exhaustion is contained: sibling cones keep the
    nodes interned before the blow-up and their probabilities stay exact.

    With [par], output cones are partitioned into at most 16 shards by
    a greedy overlap heuristic (big cones first, each joining the shard
    whose accumulated support it overlaps most, under a soft load cap),
    and each shard builds {e all} its cones in one private manager
    ({!Dpa_bdd.Robdd.adopt} discipline) — cross-cone sharing survives
    inside a shard instead of being re-derived per cone. The plan is a
    pure function of the cones, never of the pool width or schedule, so
    probabilities, powers {e and} the [bdd_nodes] complexity metric are
    bit-identical at every [jobs] count (Monte-Carlo streams are
    index-derived via {!Dpa_util.Rng.derive}); the
    [engine.sharing_ratio] gauge records that invariant (1.0). Note the
    budget then applies {e per cone as headroom} — each cone may intern
    up to the node cap on top of the shard's prior live size — whereas
    the sequential ladder shares one cumulative cap, so budgeted
    results are not comparable between the two paths. Unbudgeted, every
    probability and power is bitwise equal to the sequential path
    (ROBDD canonicity); only [bdd_nodes] can differ, by however much
    sharing crosses shard boundaries.

    [cancel] is a cooperative-cancellation token, orthogonal to the
    budget: it is installed on every manager the ladder creates, polled
    between rungs and inside the Monte-Carlo loops, and firing raises
    [Dpa_error.Error (Cancelled _)] — a hard stop the ladder propagates
    instead of degrading, so a cancelled estimate never falls back. The
    checks never change numeric results.

    @raise Dpa_util.Dpa_error.Error with a [Budget] payload when cones
    remain unpriced and [budget.fallback] forbids simulation. *)

val node_probabilities :
  ?budget:budget ->
  ?cancel:Dpa_util.Cancel.t ->
  input_probs:float array ->
  Dpa_logic.Netlist.t ->
  float array * cone_method
(** Signal probability of every node of a {e netlist} (no domino mapping)
    under the same ladder — the budgeted replacement for
    {!Dpa_bdd.Build.probabilities} used for phase-search base
    probabilities. The netlist has a single shared build, so the method is
    whole-netlist rather than per-cone; the simulation rung evaluates the
    netlist directly under Bernoulli input vectors.

    @raise Dpa_util.Dpa_error.Error as {!estimate}. *)
