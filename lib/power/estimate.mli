(** BDD-based power estimation of a mapped domino block (paper §4.2).

    Signal probabilities are exact: BDDs are built over the {e original}
    primary-input variables, so the positive and negative literals of one
    input share a variable and reconvergence through complemented logic is
    handled correctly. The variable order follows the paper's heuristic
    applied to the block.

    Power accounting, per the paper's Fig. 5:
    - dynamic cell [i]: [S_i · C_i · drive_i · (1 + P_i)]
    - static input inverter on PI [x]: [2 p_x (1 - p_x)]
    - static output inverter on a negative-phase PO: [S_driver]. *)

type report = {
  node_probs : float array;  (** signal probability per block-net node *)
  domino_switching : float;  (** Σ S_i over dynamic cells (unit weights) *)
  domino_power : float;  (** Σ S_i·C_i·drive_i·(1+P_i) *)
  input_inverter_power : float;
  output_inverter_power : float;
  total : float;  (** domino + both inverter terms *)
  bdd_nodes : int;  (** manager size, complexity metric *)
}

val of_mapped :
  ?cancel:Dpa_util.Cancel.t -> input_probs:float array -> Dpa_domino.Mapped.t -> report
(** [input_probs] is indexed by {e original} primary-input position and
    must cover every PI the block references. [cancel] installs a
    cooperative-cancellation token on the internal manager: the build
    raises [Dpa_error.Error (Cancelled _)] promptly once the token fires,
    and the checks never change the numeric result. *)

val price :
  Dpa_domino.Mapped.t ->
  node_probs:float array ->
  input_toggle:(int -> float) ->
  report
(** Prices a block from externally supplied activity numbers: [node_probs]
    per block node (signal = switching probability for domino) and
    [input_toggle pos], the toggle probability of original PI [pos]
    (feeding its boundary inverter, if complemented). Shared between the
    BDD estimator (analytic activity) and the simulator (measured
    activity); [bdd_nodes] is 0. *)

val probabilities_of_block :
  input_probs:float array -> Dpa_domino.Mapped.t -> float array
(** Just the per-node signal probabilities (no pricing). *)

val of_activity : Dpa_domino.Mapped.t -> Dpa_sim.Simulator.activity -> report
(** Prices {e measured} activity from the domino simulator with the same
    model as the BDD estimator — the two totals are directly comparable.
    [bdd_nodes] is 0. *)

(** {2 Partial building}

    The resource-bounded engine ({!Engine}) builds a block's BDDs one
    output cone at a time under a manager budget, so exhaustion can be
    attributed to — and recovered from — per cone. These hooks expose the
    estimator's literal-aware building (both polarities of a PI share one
    BDD variable) at that granularity. *)

type partial_build

val block_order : input_probs:float array -> Dpa_domino.Mapped.t -> int array
(** The paper's variable-order heuristic on the block, as {e original} PI
    positions (the same order {!of_mapped} uses). Validates that
    [input_probs] covers every referenced PI. *)

val start_build : order:int array -> Dpa_domino.Mapped.t -> partial_build
(** Fresh manager over [order] (original PI positions) with nothing built.
    Install a budget on {!partial_manager} to bound what follows. *)

val partial_manager : partial_build -> Dpa_bdd.Robdd.manager

val build_nodes : partial_build -> within:(int -> bool) -> unit
(** Builds every not-yet-built block node selected by [within] (typically
    cone membership), in topological order; fanins of a selected node must
    be selected too. May raise {!Dpa_util.Dpa_error.Budget_exceeded}; the
    partial build stays valid and a retry resumes from what was interned. *)

val node_built : partial_build -> int -> bool

val partial_probabilities : partial_build -> input_probs:float array -> float array
(** Exact signal probability per block node; [Float.nan] where the node is
    not built. *)

val sift_partial :
  ?passes:int ->
  ?max_growth:float ->
  ?max_swaps:int ->
  ?max_new_nodes:int ->
  ?deadline:float ->
  ?cancel:Dpa_util.Cancel.t ->
  partial_build ->
  Dpa_bdd.Sift.result
(** In-place dynamic reordering ({!Dpa_bdd.Sift}) of the partial build:
    every built block root survives with its function (and node id)
    intact, the interned prefixes of budget-aborted cones are compacted,
    and everything unreachable from built roots is retired — handing its
    node count back to the manager budget for the retry. The build's
    variable order and PI-to-level map are updated in place, so
    {!build_nodes} / {!partial_probabilities} keep working afterwards,
    including when the sift itself ends early on
    {!Dpa_util.Dpa_error.Budget_exceeded} or cancellation (the manager is
    consistent at every swap boundary). Parameters as {!Dpa_bdd.Sift.sift}. *)

val bounded_block_size :
  ?cancel:Dpa_util.Cancel.t ->
  order:int array ->
  max_nodes:int ->
  deadline:float option ->
  Dpa_domino.Mapped.t ->
  int option
(** Total manager nodes of a full block build under [order], or [None] if
    it would exceed [max_nodes] (or the absolute [deadline]) — the cost
    oracle for the engine's budgeted reorder rung. *)

(** {2 Incremental estimation}

    A phase search prices hundreds of re-phased variants of one circuit.
    Building each variant's BDD in a fresh manager re-derives every shared
    subfunction from scratch; an {!env} instead keeps one manager with a
    fixed variable order and a persistent probability cache, so evaluating
    a candidate only constructs (and prices) the BDD nodes its flipped
    cones introduce — everything else is a unique-table hit and a memo
    read. *)

type env
(** Shared BDD manager + probability cache for repeated estimation of
    blocks over one set of primary inputs. *)

val make_env :
  ?cancel:Dpa_util.Cancel.t -> input_probs:float array -> Dpa_domino.Mapped.t -> env
(** [make_env ~input_probs mapped] fixes the variable order from [mapped]
    (canonically the all-positive realization, mirroring {!of_mapped}'s
    per-block order) extended with any PI positions the block does not
    reference. [input_probs] is copied. [cancel] makes every build under
    the env's shared manager cooperatively cancellable. *)

val of_mapped_env : env -> Dpa_domino.Mapped.t -> report
(** Like {!of_mapped} under the env's manager and cached probabilities.
    Exact — the cache memoizes per BDD node, never approximates.
    [bdd_nodes] reports the {e shared} manager size. *)

val env_manager : env -> Dpa_bdd.Robdd.manager
(** The underlying manager, e.g. for {!Dpa_bdd.Robdd.stats}. *)

val by_cell_type :
  ?input_toggle:(int -> float) ->
  Dpa_domino.Mapped.t ->
  node_probs:float array ->
  (string * int * float) list
(** Power broken down per cell name: [(name, instance count, priced
    power)], sorted by descending power. Boundary inverters appear as
    ["INV(in)"] (priced by [input_toggle], default 0 — pass
    [Model.static_switching ∘ probs] for the analytic model) and
    ["INV(out)"] (priced from the driving node's probability). *)
