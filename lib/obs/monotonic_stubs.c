/* Monotonic clock for the observability layer.
 *
 * clock_gettime(CLOCK_MONOTONIC) never goes backwards under NTP steps,
 * which is what span durations need. Nanoseconds-since-boot fits a 63-bit
 * OCaml int for ~292 years, so the stub returns an unboxed immediate and
 * can be [@@noalloc]. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value dpa_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
