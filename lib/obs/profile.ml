let enabled = ref false

let enable ?buckets () =
  enabled := true;
  Trace.set_span_hook
    (Some
       (fun name dur_ns ->
         let h = Metrics.histogram ?buckets ("span." ^ name ^ ".ms") in
         Metrics.observe h (float_of_int dur_ns /. 1e6)))

let disable () =
  enabled := false;
  Trace.set_span_hook None

let is_enabled () = !enabled
