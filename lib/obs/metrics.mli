(** Process-wide metrics registry: counters, gauges, histograms.

    One global registry maps dotted names ([bdd.unique.probes],
    [engine.cones.simulated], [span.flow.min_power.ms]) to metric cells.
    Registration is get-or-create and idempotent: calling {!counter} (or
    {!gauge}, {!histogram}) twice with the same name returns the same
    cell, so instrumented modules just name what they touch and never
    coordinate initialization order. Registering one name as two
    different kinds raises [Invalid_argument].

    The registry exports as JSON (machines) and a flat sorted text dump
    (humans); see DESIGN.md §9 for the naming conventions. Cells are
    plain mutable records — updates are a handful of loads and stores
    under one uncontended mutex, cheap enough to leave on
    unconditionally. Domain-safe: registration, updates and snapshot
    export may run concurrently from service worker domains; exports see
    a consistent point-in-time snapshot. *)

type counter
(** Monotonically increasing integer (events, cache probes, moves). *)

type gauge
(** Float snapshot of a level (live BDD nodes, budget remaining). *)

type histogram
(** Distribution over fixed bucket upper bounds (durations, sizes). *)

(** {2 Registration} *)

val counter : ?help:string -> string -> counter

val gauge : ?help:string -> string -> gauge

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing finite upper bounds; an implicit
    overflow bucket catches everything above the last bound. A value [v]
    lands in the first bucket with [v <= bound] — boundary values belong
    to the bucket they bound. Defaults to {!default_buckets}. The bounds
    are fixed at first registration; later calls ignore [buckets]. *)

val default_buckets : float array
(** Latency-shaped bounds in milliseconds:
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
    500, 1000, 2500, 5000, 10000. *)

(** {2 Updates and reads} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Negative deltas raise [Invalid_argument] — counters only go up. *)

val counter_value : counter -> int

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keeps the running maximum (peak node counts, high-water marks). *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) array * int
(** Per-bucket (upper bound, count) pairs in bound order, plus the
    overflow count. Counts are per-bucket, not cumulative. *)

(** {2 Registry-wide operations} *)

val reset : unit -> unit
(** Zeroes every cell's value. Registrations (and bucket layouts) are
    kept, so cells held by instrumented modules stay valid — this is how
    the bench driver isolates one kernel's counters. *)

val names : unit -> string list
(** All registered names, sorted. *)

val to_json : unit -> string
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    histograms as [{"buckets": [{"le": b, "count": n}, ...],
    "overflow": n, "sum": s, "count": n}]. *)

val dump : unit -> string
(** Flat text, one metric per line, sorted by name:
    [counter bdd.unique.probes 4232]. *)

val save_json : string -> unit
