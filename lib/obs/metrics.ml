type counter = { mutable c : int; c_help : string }

type gauge = { mutable g : float; g_help : string }

type histogram = {
  bounds : float array;
  counts : int array; (* one slot per bound, plus overflow at the end *)
  mutable sum : float;
  mutable total : int;
  h_help : string;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Domain-safety: one mutex guards registry mutation, cell updates and
   snapshot export. Updates are a handful of loads and stores under an
   uncontended lock — still cheap enough to leave on unconditionally. *)
let guard = Mutex.create ()

let default_buckets =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0;
    250.0; 500.0; 1000.0; 2500.0; 5000.0; 10000.0;
  |]

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make select =
  Mutex.protect guard @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> (
    match select m with
    | Some cell -> cell
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_name m)))
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    (match select m with Some cell -> cell | None -> assert false)

let counter ?(help = "") name =
  register name
    (fun () -> C { c = 0; c_help = help })
    (function C c -> Some c | G _ | H _ -> None)

let gauge ?(help = "") name =
  register name
    (fun () -> G { g = 0.0; g_help = help })
    (function G g -> Some g | C _ | H _ -> None)

let histogram ?(help = "") ?(buckets = default_buckets) name =
  let check () =
    if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then invalid_arg "Metrics.histogram: non-finite bound";
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: bounds must be strictly increasing")
      buckets
  in
  register name
    (fun () ->
      check ();
      H
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.0;
          total = 0;
          h_help = help;
        })
    (function H h -> Some h | C _ | G _ -> None)

let incr c = Mutex.protect guard (fun () -> c.c <- c.c + 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative delta";
  Mutex.protect guard (fun () -> c.c <- c.c + n)

let counter_value c = Mutex.protect guard (fun () -> c.c)

let set g v = Mutex.protect guard (fun () -> g.g <- v)

let set_max g v = Mutex.protect guard (fun () -> if v > g.g then g.g <- v)

let gauge_value g = Mutex.protect guard (fun () -> g.g)

(* First bucket whose bound >= v (le semantics: boundary values belong to
   the bucket they bound); past the last bound, the overflow slot. *)
let observe h v =
  Mutex.protect guard @@ fun () ->
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let histogram_count h = Mutex.protect guard (fun () -> h.total)

let histogram_sum h = Mutex.protect guard (fun () -> h.sum)

let bucket_counts h =
  Mutex.protect guard @@ fun () ->
  (Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds, h.counts.(Array.length h.bounds))

(* ------------------------------------------------------------------ *)
(* Registry-wide operations                                             *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.protect guard @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0;
        h.total <- 0)
    registry

(* must be called with [guard] held *)
let sorted_entries_unlocked () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names () =
  Mutex.protect guard (fun () -> List.map fst (sorted_entries_unlocked ()))

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json () =
  Mutex.protect guard @@ fun () ->
  let entries = sorted_entries_unlocked () in
  let b = Buffer.create 2048 in
  let section title select render =
    Buffer.add_string b (Printf.sprintf "  \"%s\": {" title);
    let first = ref true in
    List.iter
      (fun (name, m) ->
        match select m with
        | None -> ()
        | Some cell ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Printf.sprintf "\n    \"%s\": %s" (escape name) (render cell)))
      entries;
    Buffer.add_string b "\n  }"
  in
  Buffer.add_string b "{\n";
  section "counters"
    (function C c -> Some c | _ -> None)
    (fun c -> string_of_int c.c);
  Buffer.add_string b ",\n";
  section "gauges"
    (function G g -> Some g | _ -> None)
    (fun g -> float_json g.g);
  Buffer.add_string b ",\n";
  section "histograms"
    (function H h -> Some h | _ -> None)
    (fun h ->
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i bound ->
               Printf.sprintf "{\"le\": %s, \"count\": %d}" (float_json bound) h.counts.(i))
             h.bounds)
      in
      Printf.sprintf "{\"buckets\": [%s], \"overflow\": %d, \"sum\": %s, \"count\": %d}"
        (String.concat ", " buckets)
        h.counts.(Array.length h.bounds)
        (float_json h.sum) h.total);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let dump () =
  Mutex.protect guard @@ fun () ->
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Buffer.add_string b (Printf.sprintf "counter %s %d\n" name c.c)
      | G g -> Buffer.add_string b (Printf.sprintf "gauge %s %g\n" name g.g)
      | H h ->
        Buffer.add_string b
          (Printf.sprintf "histogram %s count=%d sum=%g" name h.total h.sum);
        Array.iteri
          (fun i bound ->
            if h.counts.(i) > 0 then
              Buffer.add_string b (Printf.sprintf " le%g=%d" bound h.counts.(i)))
          h.bounds;
        if h.counts.(Array.length h.bounds) > 0 then
          Buffer.add_string b
            (Printf.sprintf " inf=%d" h.counts.(Array.length h.bounds));
        Buffer.add_char b '\n')
    (sorted_entries_unlocked ());
  Buffer.contents b

let save_json path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))
