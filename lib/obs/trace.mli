(** Structured tracing: monotonic-clock spans with typed attributes.

    A span brackets one region of the flow (a BLIF parse, one output
    cone's BDD build, one optimizer pass); spans nest freely and the
    recorder keeps their depth, so the exported trace reconstructs the
    call tree. Events accumulate in a growable in-memory buffer and are
    exported in Chrome trace format — a JSON object with a [traceEvents]
    array — loadable directly in Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing].

    {b Cost when disabled.} Recording is off by default. A disabled
    {!with_span} is one mutable-bool load plus the call of the thunk: no
    clock read, no event allocation, no lock. Hot paths that would even
    pay for building an [args] list should guard it with {!is_enabled}.

    {b Domain-safety.} The span stack is per-domain (each service worker
    nests its own spans correctly); the event buffer is shared and
    mutex-guarded, so one exported trace interleaves all domains'
    events. [depth] in an event is the depth within its own domain.

    Conventions for span and event names are documented in DESIGN.md §9:
    lowercase dotted paths, [<layer>.<operation>], e.g. [engine.cone] or
    [blif.parse]. *)

(** Typed attribute value. Attributes land in the Chrome-trace [args]
    object of the event, so Perfetto shows them in the selection panel. *)
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

(** One recorded event, exposed read-only so tests and tooling can
    inspect a trace without re-parsing its JSON. *)
type event = {
  name : string;
  kind : [ `Span | `Instant | `Counter ];
  ts_ns : int;  (** start time, monotonic, relative to {!start} *)
  dur_ns : int;  (** span duration; [0] for instants and counters *)
  depth : int;  (** nesting depth at emission ([0] = top level) *)
  args : (string * value) list;
}

val start : unit -> unit
(** Clears the buffer and enables recording. *)

val stop : unit -> unit
(** Disables recording; the buffer is kept for export. *)

val clear : unit -> unit
(** Drops all recorded events (recording state unchanged). *)

val is_enabled : unit -> bool

val with_span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span. The span closes when
    [f] returns {e or raises} — the exception is re-raised after the
    close, so a trace never contains a dangling open span. [args] are
    evaluated at the call site; guard their construction with
    {!is_enabled} if building them is not free. *)

val add_args : (string * value) list -> unit
(** Appends attributes to the innermost open span (for facts only known
    mid-span, e.g. which ladder rung priced a cone). No-op when disabled
    or outside any span. *)

val instant : ?args:(string * value) list -> string -> unit
(** Zero-duration point event (ladder steps, table resizes). *)

val counter : string -> (string * float) list -> unit
(** Chrome counter event: Perfetto plots each series as a stacked track
    over time (e.g. BDD budget remaining per cone). *)

val depth : unit -> int
(** Current span nesting depth — [0] outside any span. *)

val events_recorded : unit -> int

val events : unit -> event list
(** All recorded events in emission order (spans appear when they close,
    so a parent span follows its children). *)

(** {2 Profiling hook}

    A hook observes every closed span even while buffer recording is
    active or not; installing one turns timing on. {!Profile} uses this
    to feed span durations into the {!Metrics} registry. *)

val set_span_hook : (string -> int -> unit) option -> unit
(** [set_span_hook (Some f)] calls [f name dur_ns] at every span close;
    [None] removes the hook. *)

(** {2 Export} *)

val to_json : unit -> string
(** The whole trace as Chrome trace format JSON:
    [{"displayTimeUnit": "ms", "traceEvents": [...]}] with [ts]/[dur] in
    microseconds, [pid]/[tid] fixed at 1 and category ["dpa"]. *)

val write : out_channel -> unit

val save : string -> unit
(** Writes {!to_json} to a file (truncating). *)
