type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type event = {
  name : string;
  kind : [ `Span | `Instant | `Counter ];
  ts_ns : int;
  dur_ns : int;
  depth : int;
  args : (string * value) list;
}

(* One open span on the stack. [extra] collects add_args attributes in
   reverse order until the span closes. *)
type open_span = {
  oname : string;
  t0 : int;
  mutable extra : (string * value) list;
}

let dummy_event =
  { name = ""; kind = `Instant; ts_ns = 0; dur_ns = 0; depth = 0; args = [] }

let enabled = ref false

let hook : (string -> int -> unit) option ref = ref None

(* Domain-safety: the event buffer is shared (one exported trace per
   process, workers interleave) and guarded by [guard]; the span stack is
   per-domain (Domain.DLS), so nesting depth stays correct inside each
   worker no matter how spans interleave across domains. The disabled
   path touches neither — it is still a single mutable-bool load. *)
let guard = Mutex.create ()

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let origin = ref 0

let buf = ref (Array.make 1024 dummy_event)

let count = ref 0

(* must be called with [guard] held *)
let push ev =
  let cap = Array.length !buf in
  if !count = cap then begin
    let b = Array.make (2 * cap) dummy_event in
    Array.blit !buf 0 b 0 cap;
    buf := b
  end;
  !buf.(!count) <- ev;
  incr count

let start () =
  Mutex.protect guard (fun () ->
      origin := Clock.now_ns ();
      count := 0);
  (stack ()) := [];
  enabled := true

let stop () = enabled := false

let clear () =
  Mutex.protect guard (fun () -> count := 0);
  (stack ()) := []

let is_enabled () = !enabled

let set_span_hook h = hook := h

let depth () = List.length !(stack ())

let events_recorded () = Mutex.protect guard (fun () -> !count)

let events () =
  Mutex.protect guard (fun () -> List.init !count (fun i -> !buf.(i)))

let with_span ?(args = []) name f =
  if (not !enabled) && !hook = None then f ()
  else begin
    let stack = stack () in
    let sp = { oname = name; t0 = Clock.now_ns (); extra = [] } in
    stack := sp :: !stack;
    let finish () =
      let dur = Clock.now_ns () - sp.t0 in
      (match !stack with _ :: tl -> stack := tl | [] -> ());
      if !enabled then
        Mutex.protect guard (fun () ->
            push
              {
                name = sp.oname;
                kind = `Span;
                ts_ns = sp.t0 - !origin;
                dur_ns = dur;
                depth = List.length !stack;
                args = args @ List.rev sp.extra;
              });
      match !hook with Some h -> h sp.oname dur | None -> ()
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let add_args args =
  if !enabled || !hook <> None then
    match !(stack ()) with
    | sp :: _ -> sp.extra <- List.rev_append args sp.extra
    | [] -> ()

let instant ?(args = []) name =
  if !enabled then begin
    let d = depth () in
    Mutex.protect guard (fun () ->
        push
          {
            name;
            kind = `Instant;
            ts_ns = Clock.now_ns () - !origin;
            dur_ns = 0;
            depth = d;
            args;
          })
  end

let counter name series =
  if !enabled then begin
    let d = depth () in
    Mutex.protect guard (fun () ->
        push
          {
            name;
            kind = `Counter;
            ts_ns = Clock.now_ns () - !origin;
            dur_ns = 0;
            depth = d;
            args = List.map (fun (k, v) -> (k, Float v)) series;
          })
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace format export                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let value_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> float_json f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)

let args_json args =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) (value_json v)))
    args;
  Buffer.add_char b '}';
  Buffer.contents b

let us ns = Printf.sprintf "%.3f" (Clock.ns_to_us ns)

let event_json ev =
  match ev.kind with
  | `Span ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"dpa\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
      (escape ev.name) (us ev.ts_ns) (us ev.dur_ns) (args_json ev.args)
  | `Instant ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"dpa\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
      (escape ev.name) (us ev.ts_ns) (args_json ev.args)
  | `Counter ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"dpa\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
      (escape ev.name) (us ev.ts_ns) (args_json ev.args)

let to_json () =
  let events = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (event_json ev))
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write oc = output_string oc (to_json ())

let save path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
