external now_ns : unit -> int = "dpa_obs_monotonic_ns" [@@noalloc]

let ns_to_us ns = float_of_int ns /. 1e3

let elapsed_ns ~since = now_ns () - since
