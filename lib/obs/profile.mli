(** Profiling hook: span durations accumulated into the metrics registry.

    {!enable} installs a {!Trace.set_span_hook} that records every closed
    span's duration into a per-span-name histogram
    [span.<name>.ms] (milliseconds, {!Metrics.default_buckets} unless
    overridden). This works with the trace buffer on {e or} off, so a
    long run can keep cheap aggregate timings without retaining one event
    per span — the [--metrics] CLI flag uses exactly this. *)

val enable : ?buckets:float array -> unit -> unit
(** Starts accumulating. Replaces any previously installed span hook. *)

val disable : unit -> unit
(** Removes the hook (histograms already accumulated are kept). *)

val is_enabled : unit -> bool
