(** Monotonic time source for spans and profiling.

    Wall-clock time ([Unix.gettimeofday]) can jump backwards under NTP
    adjustment, which would produce negative span durations; every
    timestamp in {!Trace} therefore comes from
    [clock_gettime(CLOCK_MONOTONIC)] via a [@@noalloc] C stub. The epoch
    is arbitrary (typically system boot) — only differences are
    meaningful. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds. Allocation-free. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit of the Chrome
    trace format's [ts]/[dur] fields. *)

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since] is [now_ns () - since]. *)
