type family = Control | Parity | Arith | Sequential

type shape =
  | Windowed of Generator.params
  | Parity_chain of Generator.parity
  | Adder of Generator.arith
  | Multiplier of Generator.mult
  | Controller of Generator.controller

type t = {
  name : string;
  shape : shape;
  family : family;
  scale : int;
  description : string;
  pair_limit : int option;
  timed : bool;
}

type circuit = Comb of Dpa_logic.Netlist.t | Seq of Dpa_seq.Seq_netlist.t

let family_name = function
  | Control -> "control"
  | Parity -> "parity"
  | Arith -> "arith"
  | Sequential -> "sequential"

let is_sequential t = match t.shape with Controller _ -> true | _ -> false

let build t =
  match t.shape with
  | Windowed p -> Comb (Generator.combinational p)
  | Parity_chain p -> Comb (Generator.parity_chain p)
  | Adder p -> Comb (Generator.adder_array p)
  | Multiplier p -> Comb (Generator.multiplier p)
  | Controller p -> Seq (Generator.controller p)

let build_comb t =
  match build t with
  | Comb net -> net
  | Seq _ ->
    invalid_arg
      (Printf.sprintf "Profiles.build_comb: %s is sequential (use build)" t.name)

let params t =
  match t.shape with
  | Windowed p -> p
  | _ ->
    invalid_arg
      (Printf.sprintf "Profiles.params: %s is not a windowed control profile" t.name)

let interface t =
  match t.shape with
  | Windowed p -> (p.Generator.n_inputs, p.Generator.n_outputs, 0)
  | Parity_chain p -> (p.Generator.n_inputs, p.Generator.n_outputs, 0)
  | Adder p -> (p.Generator.width * p.Generator.operands, p.Generator.width + p.Generator.operands - 1, 0)
  | Multiplier p -> (2 * p.Generator.width, 2 * p.Generator.width, 0)
  | Controller p -> (p.Generator.n_inputs, p.Generator.n_outputs, p.Generator.n_ffs)

(* Control-logic house style: OR-leaning gate mix and sparse internal
   inverters keep cone signal probabilities skewed away from ½ (so phase
   choice matters), while pool reuse couples neighbouring cones (so
   conflicting phases pay real duplication) — the two forces the paper's
   heuristic trades off. *)
let control ~name ~seed ~n_inputs ~n_outputs ~support ~gates_per_output ?(and_bias = 0.35)
    ?(bias_spread = 0.0) ?(inverter_prob = 0.12) ?(reuse_fraction = 0.45) ?(max_fanin = 4) () =
  {
    Generator.name;
    seed;
    n_inputs;
    n_outputs;
    support;
    gates_per_output;
    max_fanin;
    and_bias;
    bias_spread;
    inverter_prob;
    reuse_fraction;
  }

let windowed ~scale ~description ~pair_limit ~timed (params : Generator.params) =
  {
    name = params.Generator.name;
    shape = Windowed params;
    family = Control;
    scale;
    description;
    pair_limit;
    timed;
  }

(* PI/PO counts follow the paper's Table 1; gate budgets are calibrated so
   the minimum-area realization lands near the published MA cell counts. *)
let industry1 =
  windowed ~scale:1_300 ~description:"Control Logic" ~pair_limit:(Some 1200) ~timed:false
    (control ~name:"industry1" ~seed:101 ~n_inputs:127 ~n_outputs:122 ~support:11
       ~gates_per_output:11 ())

let industry2 =
  windowed ~scale:1_600 ~description:"Control Logic" ~pair_limit:(Some 1200) ~timed:false
    (control ~name:"industry2" ~seed:102 ~n_inputs:97 ~n_outputs:86 ~support:12
       ~gates_per_output:19 ())

let industry3 =
  windowed ~scale:1_400 ~description:"Control Logic" ~pair_limit:(Some 1500) ~timed:false
    (control ~name:"industry3" ~seed:103 ~n_inputs:117 ~n_outputs:199 ~support:10
       ~gates_per_output:7 ())

let apex7 =
  windowed ~scale:290 ~description:"Public Domain" ~pair_limit:None ~timed:true
    (control ~name:"apex7" ~seed:107 ~n_inputs:79 ~n_outputs:36 ~support:11
       ~gates_per_output:8 ())

let frg1 =
  windowed ~scale:100 ~description:"Public Domain" ~pair_limit:None ~timed:true
    (control ~name:"frg1" ~seed:111 ~n_inputs:31 ~n_outputs:3 ~support:13
       ~gates_per_output:33 ~and_bias:0.50 ~bias_spread:0.30 ~inverter_prob:0.0
       ~reuse_fraction:0.70 ())

let x1 =
  windowed ~scale:250 ~description:"Public Domain" ~pair_limit:None ~timed:true
    (control ~name:"x1" ~seed:113 ~n_inputs:87 ~n_outputs:28 ~support:11
       ~gates_per_output:9 ())

let x3 =
  windowed ~scale:890 ~description:"Public Domain" ~pair_limit:(Some 2000) ~timed:true
    (control ~name:"x3" ~seed:117 ~n_inputs:235 ~n_outputs:99 ~support:11
       ~gates_per_output:9 ())

let table1 = [ industry1; industry2; industry3; apex7; frg1; x1; x3 ]

let table2 = [ apex7; frg1; x1; x3 ]

(* ---- corpus profiles ------------------------------------------------- *)

let parity ~scale ~pair_limit ~description name seed ~n_inputs ~n_outputs ~support ~stages
    ~mix_prob ~and_bias =
  {
    name;
    shape =
      Parity_chain
        { Generator.name; seed; n_inputs; n_outputs; support; stages; mix_prob; and_bias };
    family = Parity;
    scale;
    description;
    pair_limit;
    timed = false;
  }

let adder ~scale ~pair_limit ~description name seed ~width ~operands =
  {
    name;
    shape = Adder { Generator.name; seed; width; operands };
    family = Arith;
    scale;
    description;
    pair_limit;
    timed = false;
  }

let mult ~scale ~pair_limit ~description name seed ~width =
  {
    name;
    shape = Multiplier { Generator.name; seed; width };
    family = Arith;
    scale;
    description;
    pair_limit;
    timed = false;
  }

let ctrl ~scale ~pair_limit ~description name seed ~n_inputs ~n_outputs ~n_ffs ~q_support
    ~gates_per_cone =
  {
    name;
    shape =
      Controller
        {
          Generator.name;
          seed;
          n_inputs;
          n_outputs;
          n_ffs;
          q_support;
          gates_per_cone;
          and_bias = 0.45;
          inverter_prob = 0.10;
        };
    family = Sequential;
    scale;
    description;
    pair_limit;
    timed = false;
  }

let parity_smoke =
  parity "parity_smoke" 201 ~n_inputs:32 ~n_outputs:4 ~support:12 ~stages:64 ~mix_prob:0.20
    ~and_bias:0.5 ~scale:900 ~pair_limit:None ~description:"Parity smoke (CI-size)"

let parity_mix =
  parity "parity_mix" 203 ~n_inputs:64 ~n_outputs:8 ~support:16 ~stages:320 ~mix_prob:0.30
    ~and_bias:0.45 ~scale:8_000 ~pair_limit:None ~description:"Mixed XOR/AND-OR chains"

let parity_wide =
  parity "parity_wide" 205 ~n_inputs:96 ~n_outputs:24 ~support:20 ~stages:110 ~mix_prob:0.20
    ~and_bias:0.5 ~scale:9_000 ~pair_limit:(Some 300)
    ~description:"Wide shallow parity (24 cones)"

let parity_deep =
  parity "parity_deep" 207 ~n_inputs:160 ~n_outputs:4 ~support:48 ~stages:3600 ~mix_prob:0.0
    ~and_bias:0.5 ~scale:58_000 ~pair_limit:None
    ~description:"Deep pure parity chains (linear BDDs)"

let add4x8 =
  adder "add4x8" 211 ~width:4 ~operands:8 ~scale:500 ~pair_limit:None
    ~description:"4-bit 8-operand adder array (CI-size)"

let add8x32 =
  adder "add8x32" 213 ~width:8 ~operands:32 ~scale:6_000 ~pair_limit:None
    ~description:"8-bit 32-operand adder array"

let add16x48 =
  adder "add16x48" 215 ~width:16 ~operands:48 ~scale:16_600 ~pair_limit:(Some 400)
    ~description:"16-bit 48-operand adder array"

let mult8 =
  mult "mult8" 221 ~width:8 ~scale:1_000 ~pair_limit:None
    ~description:"8-bit array multiplier (CI-size)"

let mult16 =
  mult "mult16" 223 ~width:16 ~scale:4_000 ~pair_limit:(Some 300)
    ~description:"16-bit array multiplier (ladder stressor)"

let mult24 =
  mult "mult24" 225 ~width:24 ~scale:9_500 ~pair_limit:(Some 120)
    ~description:"24-bit array multiplier (ladder stressor)"

let mult32 =
  mult "mult32" 227 ~width:32 ~scale:17_400 ~pair_limit:(Some 120)
    ~description:"32-bit array multiplier (ladder stressor)"

let ctrl_smoke =
  ctrl "ctrl_smoke" 231 ~n_inputs:12 ~n_outputs:6 ~n_ffs:24 ~q_support:5 ~gates_per_cone:8
    ~scale:450 ~pair_limit:None ~description:"Dense-feedback controller (CI-size)"

let ctrl_dense =
  ctrl "ctrl_dense" 233 ~n_inputs:48 ~n_outputs:24 ~n_ffs:192 ~q_support:8
    ~gates_per_cone:18 ~scale:6_700 ~pair_limit:(Some 400)
    ~description:"Dense-feedback controller (192 FFs)"

let ctrl_grid =
  ctrl "ctrl_grid" 235 ~n_inputs:64 ~n_outputs:32 ~n_ffs:320 ~q_support:6
    ~gates_per_cone:24 ~scale:14_000 ~pair_limit:(Some 400)
    ~description:"Dense-feedback controller (320 FFs)"

let corpus =
  [
    parity_smoke;
    parity_mix;
    parity_wide;
    parity_deep;
    add4x8;
    add8x32;
    add16x48;
    mult8;
    mult16;
    mult24;
    mult32;
    ctrl_smoke;
    ctrl_dense;
    ctrl_grid;
  ]

let all = table1 @ corpus

let names = List.sort compare (List.map (fun t -> t.name) all)

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.name = lower) all
