module Netlist = Dpa_logic.Netlist
module Builder = Dpa_logic.Builder
module Rng = Dpa_util.Rng

type params = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;
  gates_per_output : int;
  max_fanin : int;
  and_bias : float;
  bias_spread : float;
  inverter_prob : float;
  reuse_fraction : float;
}

let default =
  {
    name = "synthetic";
    seed = 1;
    n_inputs = 16;
    n_outputs = 4;
    support = 8;
    gates_per_output = 10;
    max_fanin = 3;
    and_bias = 0.5;
    bias_spread = 0.0;
    inverter_prob = 0.25;
    reuse_fraction = 0.3;
  }

let validate p =
  if p.n_inputs < 2 then invalid_arg "Generator: need at least 2 inputs";
  if p.n_outputs < 1 then invalid_arg "Generator: need at least 1 output";
  if p.support < 2 || p.support > p.n_inputs then
    invalid_arg "Generator: support must be in [2, n_inputs]";
  if p.max_fanin < 2 then invalid_arg "Generator: max_fanin must be at least 2";
  if p.gates_per_output < 1 then invalid_arg "Generator: need at least 1 gate per output"

(* Recency-biased index into a pool of [n] candidates: squaring the
   uniform draw favours recently created nodes, which deepens cones. *)
let biased_index rng n =
  let u = Rng.float rng 1.0 in
  let k = int_of_float (u *. u *. float_of_int n) in
  min (n - 1) k

(* The node [id] may have been simplified to something already in use; a
   proper gate output is guaranteed by combining with fresh literals. *)
let is_proper_gate net id =
  match Netlist.gate net id with
  | Dpa_logic.Gate.And _ | Dpa_logic.Gate.Or _ | Dpa_logic.Gate.Not _ -> true
  | Dpa_logic.Gate.Input | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Buf _
  | Dpa_logic.Gate.Xor _ -> false

let build_into b ~inputs p =
  let rng = Rng.create p.seed in
  (* Shallow gates (created early in the previous cone, near the inputs)
     are the sharing currency between neighbouring outputs: real control
     logic shares decoded product terms, not whole deep subtrees, and deep
     sharing would make every phase flip pay duplication across many
     cones at once. *)
  let prev_shallow = ref [] in
  let window_of j =
    let span = p.n_inputs - p.support in
    let offset = if p.n_outputs <= 1 then 0 else j * span / (p.n_outputs - 1) in
    Array.sub inputs offset p.support
  in
  let outputs = ref [] in
  for j = 0 to p.n_outputs - 1 do
    (* alternating the AND/OR mix across outputs gives neighbouring cones
       opposed probability skews, so the power-optimal phases disagree and
       shared logic gets duplicated — the frg1 signature of the paper *)
    let bias =
      let delta = if j mod 2 = 0 then -.p.bias_spread else p.bias_spread in
      Dpa_util.Stats.clamp ~lo:0.05 ~hi:0.95 (p.and_bias +. delta)
    in
    let gate_of rng operands =
      if Rng.bernoulli rng bias then Builder.and_ b operands else Builder.or_ b operands
    in
    let window = window_of j in
    let shared = Array.of_list !prev_shallow in
    let avail = ref (Array.to_list window) in
    let avail_len = ref (List.length !avail) in
    (* an operand is either a reused subfunction from the previous cone
       (with probability reuse_fraction) or a recency-biased local pick *)
    let pick () =
      if Array.length shared > 0 && Rng.bernoulli rng p.reuse_fraction then
        shared.(Rng.int rng (Array.length shared))
      else begin
        let idx = !avail_len - 1 - biased_index rng !avail_len in
        List.nth !avail idx
      end
    in
    (* Gates created for this output that no later gate has read yet; new
       gates consume from here first so the whole cone stays live (real
       netlists have no dead logic, and dead gates would vanish in the
       technology-independent optimization anyway). *)
    let unused = ref [] in
    let take_operand () =
      match !unused with
      | head :: rest when Rng.bernoulli rng 0.8 ->
        unused := rest;
        head
      | _ :: _ | [] -> pick ()
    in
    let maybe_invert op =
      if Rng.bernoulli rng p.inverter_prob then Builder.not_ b op else op
    in
    (* The structurally hashed builder folds complementary operand pairs to
       constants; retrying with fresh operands keeps the cone alive
       instead of letting an absorbed constant swallow it. *)
    let non_constant_gate () =
      let net = Builder.finish b in
      let rec attempt tries =
        let width = 2 + Rng.int rng (p.max_fanin - 1) in
        let operands = List.init width (fun _ -> maybe_invert (take_operand ())) in
        let id = gate_of rng operands in
        match Netlist.gate net id with
        | Dpa_logic.Gate.Const _ when tries > 0 -> attempt (tries - 1)
        | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Input | Dpa_logic.Gate.Buf _
        | Dpa_logic.Gate.Not _ | Dpa_logic.Gate.And _ | Dpa_logic.Gate.Or _
        | Dpa_logic.Gate.Xor _ -> id
      in
      attempt 8
    in
    let last = ref window.(0) in
    let created_this = ref [] in
    for _ = 1 to p.gates_per_output do
      let id = non_constant_gate () in
      if not (is_proper_gate (Builder.finish b) id) then ()
      else begin
        last := id;
        unused := id :: List.filter (fun u -> u <> id) !unused;
        avail := !avail @ [ id ];
        incr avail_len;
        created_this := id :: !created_this
      end
    done;
    (* sweep the stragglers into the output cone *)
    let out = ref !last in
    let rec sweep () =
      let stragglers = List.filter (fun u -> u <> !out) !unused in
      match stragglers with
      | [] -> ()
      | _ :: _ ->
        let rec chunks = function
          | [] -> []
          | rest ->
            let width = min (List.length rest) (1 + Rng.int rng p.max_fanin) in
            let rec split n = function
              | xs when n = 0 -> ([], xs)
              | [] -> ([], [])
              | x :: xs ->
                let taken, left = split (n - 1) xs in
                (x :: taken, left)
            in
            let taken, left = split width rest in
            taken :: chunks left
        in
        unused := [];
        List.iter (fun chunk -> out := gate_of rng (!out :: chunk)) (chunks stragglers);
        sweep ()
    in
    sweep ();
    (* guarantee a proper, window-dependent gate at the output *)
    let guard = ref 0 in
    let net = Builder.finish b in
    while (not (is_proper_gate net !out)) && !guard < 16 do
      incr guard;
      let x1 = window.(Rng.int rng (Array.length window)) in
      let x2 = window.(Rng.int rng (Array.length window)) in
      out := Builder.or_ b [ !out; Builder.and_ b [ x1; x2 ] ]
    done;
    (* only the earliest (shallowest) gates of this cone are offered for
       reuse by the next output *)
    let shallow_count =
      max 1 (int_of_float (p.reuse_fraction *. float_of_int p.gates_per_output))
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    prev_shallow := take shallow_count (List.rev !created_this);
    outputs := (Printf.sprintf "po%d" j, !out) :: !outputs
  done;
  List.iter (fun (name, id) -> Builder.output b name id) (List.rev !outputs)

let combinational p =
  validate p;
  let b = Builder.create ~name:p.name () in
  let inputs =
    Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b)
  in
  build_into b ~inputs p;
  Builder.finish b

(* ---- corpus-scale families ---------------------------------------- *)

(* Shared sliding window: output [j]'s cone reads [support] consecutive
   inputs, offset so neighbouring cones overlap (same scheme as
   [build_into]). *)
let window_of ~inputs ~n_outputs ~support j =
  let n_inputs = Array.length inputs in
  let span = n_inputs - support in
  let offset = if n_outputs <= 1 then 0 else j * span / (n_outputs - 1) in
  Array.sub inputs offset support

(* XOR decomposed at generation time into the AND/OR/NOT core every
   downstream pass accepts, so raw gate counts reflect what the flow
   synthesizes. The [not x] literals intern, so a chain stage costs ~4
   fresh gates. *)
let xor_gate b x y =
  let nx = Builder.not_ b x and ny = Builder.not_ b y in
  Builder.or_ b [ Builder.and_ b [ x; ny ]; Builder.and_ b [ nx; y ] ]

type parity = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;
  stages : int;
  mix_prob : float;
  and_bias : float;
}

let parity_chain p =
  if p.n_inputs < 2 then invalid_arg "Generator.parity_chain: need at least 2 inputs";
  if p.n_outputs < 1 then invalid_arg "Generator.parity_chain: need at least 1 output";
  if p.support < 2 || p.support > p.n_inputs then
    invalid_arg "Generator.parity_chain: support must be in [2, n_inputs]";
  if p.stages < 1 then invalid_arg "Generator.parity_chain: need at least 1 stage";
  if p.mix_prob < 0.0 || p.mix_prob > 1.0 then
    invalid_arg "Generator.parity_chain: mix_prob must lie in [0,1]";
  let b = Builder.create ~name:p.name () in
  let inputs =
    Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b)
  in
  let rng = Rng.create p.seed in
  for j = 0 to p.n_outputs - 1 do
    let w = window_of ~inputs ~n_outputs:p.n_outputs ~support:p.support j in
    let t = ref w.(0) in
    for _ = 1 to p.stages do
      let x = w.(Rng.int rng (Array.length w)) in
      let candidate =
        if Rng.bernoulli rng p.mix_prob then begin
          (* an AND/OR stage breaks the pure-parity probability of ½, so
             phase choice has something to optimize *)
          let operands = [ !t; x ] in
          if Rng.bernoulli rng p.and_bias then Builder.and_ b operands
          else Builder.or_ b operands
        end
        else xor_gate b !t x
      in
      (* the interning builder folds x⊕x and absorbed AND/OR stages to
         constants or existing nodes; keep the chain alive instead *)
      if is_proper_gate (Builder.finish b) candidate then t := candidate
    done;
    let net = Builder.finish b in
    let guard = ref 0 in
    while (not (is_proper_gate net !t)) && !guard < 16 do
      incr guard;
      t := xor_gate b !t w.(Rng.int rng (Array.length w))
    done;
    Builder.output b (Printf.sprintf "po%d" j) !t
  done;
  Builder.finish b

(* Ripple addition in "global bit position" space: [acc] plus [row]
   shifted left by [offset]. Every position with a pending carry gets a
   full or half adder, so the carry chain is materialized structurally —
   the heavy-reuse pattern arithmetic arrays stress. *)
let add_at ?max_bits b acc row ~offset =
  let alen = Array.length acc and rlen = Array.length row in
  let n = max alen (offset + rlen) in
  (* [max_bits] truncates provably-zero high bits: when the caller knows
     the running sum fits (a partial-product accumulator never exceeds
     2^(2w)), a carry out of the top position is logically false, and
     generating it would mint bogus always-0 outputs *)
  let n = match max_bits with Some m -> min n m | None -> n in
  let bits = ref [] in
  let carry = ref None in
  let full_add x y c =
    let s = xor_gate b (xor_gate b x y) c in
    let co =
      Builder.or_ b
        [ Builder.and_ b [ x; y ]; Builder.and_ b [ x; c ]; Builder.and_ b [ y; c ] ]
    in
    (s, Some co)
  in
  let half_add x y =
    let s = xor_gate b x y in
    (s, Some (Builder.and_ b [ x; y ]))
  in
  for i = 0 to n - 1 do
    let x = if i < alen then Some acc.(i) else None in
    let y = if i >= offset && i - offset < rlen then Some row.(i - offset) else None in
    let s, co =
      match x, y, !carry with
      | Some x, Some y, Some c -> full_add x y c
      | Some x, Some y, None -> half_add x y
      | Some x, None, Some c | None, Some x, Some c -> half_add x c
      | Some x, None, None | None, Some x, None -> (x, None)
      | None, None, c -> (Option.get c, None)
    in
    carry := co;
    bits := s :: !bits
  done;
  (match !carry, max_bits with
  | Some c, None -> bits := c :: !bits
  | Some c, Some m -> if n < m then bits := c :: !bits
  | None, _ -> ());
  Array.of_list (List.rev !bits)

type arith = { name : string; seed : int; width : int; operands : int }

let validate_arith ~who p =
  if p.width < 2 then invalid_arg (Printf.sprintf "Generator.%s: width must be >= 2" who);
  if p.operands < 2 then
    invalid_arg (Printf.sprintf "Generator.%s: need at least 2 operands" who)

let adder_array p =
  validate_arith ~who:"adder_array" p;
  let b = Builder.create ~name:p.name () in
  (* bit-interleaved input creation: BDD variable order follows node ids,
     and interleaving keeps ripple-carry BDDs compact *)
  let ops = Array.make_matrix p.operands p.width 0 in
  for i = 0 to p.width - 1 do
    for k = 0 to p.operands - 1 do
      ops.(k).(i) <- Builder.input ~name:(Printf.sprintf "a%db%d" k i) b
    done
  done;
  let rng = Rng.create p.seed in
  let order = Array.init p.operands Fun.id in
  Rng.shuffle rng order;
  let acc = ref ops.(order.(0)) in
  for idx = 1 to p.operands - 1 do
    acc := add_at b !acc ops.(order.(idx)) ~offset:0
  done;
  Array.iteri (fun i s -> Builder.output b (Printf.sprintf "s%d" i) s) !acc;
  Builder.finish b

type mult = { name : string; seed : int; width : int }

let multiplier p =
  if p.width < 2 then invalid_arg "Generator.multiplier: width must be >= 2";
  let b = Builder.create ~name:p.name () in
  let a = Array.make p.width 0 and bb = Array.make p.width 0 in
  for i = 0 to p.width - 1 do
    a.(i) <- Builder.input ~name:(Printf.sprintf "a%d" i) b;
    bb.(i) <- Builder.input ~name:(Printf.sprintf "b%d" i) b
  done;
  let row j = Array.init p.width (fun i -> Builder.and_ b [ a.(i); bb.(j) ]) in
  (* row 0 seeds the accumulator (it covers bit position 0); the remaining
     partial-product rows land in seed-shuffled order — the sum is the
     same, the carry-chain structure differs per seed *)
  let rng = Rng.create p.seed in
  let order = Array.init (p.width - 1) (fun k -> k + 1) in
  Rng.shuffle rng order;
  let acc = ref (row 0) in
  Array.iter
    (fun j -> acc := add_at ~max_bits:(2 * p.width) b !acc (row j) ~offset:j)
    order;
  Array.iteri (fun i s -> Builder.output b (Printf.sprintf "p%d" i) s) !acc;
  Builder.finish b

type controller = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  n_ffs : int;
  q_support : int;
  gates_per_cone : int;
  and_bias : float;
  inverter_prob : float;
}

let controller p =
  if p.n_inputs < 2 then invalid_arg "Generator.controller: need at least 2 inputs";
  if p.n_outputs < 1 then invalid_arg "Generator.controller: need at least 1 output";
  if p.n_ffs < 2 then invalid_arg "Generator.controller: need at least 2 flip-flops";
  if p.q_support < 2 || p.q_support > p.n_ffs then
    invalid_arg "Generator.controller: q_support must be in [2, n_ffs]";
  if p.gates_per_cone < 2 then
    invalid_arg "Generator.controller: need at least 2 gates per cone";
  let b = Builder.create ~name:p.name () in
  let pis =
    Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b)
  in
  let qs = Array.init p.n_ffs (fun k -> Builder.input ~name:(Printf.sprintf "q%d" k) b) in
  let rng = Rng.create p.seed in
  (* One bounded-support cone per D pin / primary output. Cones do not
     share logic across each other (unlike [build_into]) so the support of
     every node stays within its own pool — the sequential probability
     partitioning builds exact BDDs for the whole core and needs that
     bound. *)
  let cone ~forced ~pool =
    let created = ref [] in
    let ncreated = ref 0 in
    let record id =
      created := id :: !created;
      incr ncreated
    in
    let pick () =
      if !ncreated > 0 && Rng.bernoulli rng 0.55 then
        List.nth !created (Rng.int rng !ncreated)
      else pool.(Rng.int rng (Array.length pool))
    in
    let maybe_invert op =
      if Rng.bernoulli rng p.inverter_prob then Builder.not_ b op else op
    in
    let gate_of operands =
      if Rng.bernoulli rng p.and_bias then Builder.and_ b operands
      else Builder.or_ b operands
    in
    let non_constant_gate () =
      let net = Builder.finish b in
      let rec attempt tries =
        let width = 2 + Rng.int rng 2 in
        let operands = List.init width (fun _ -> maybe_invert (pick ())) in
        let id = gate_of operands in
        if (not (is_proper_gate net id)) && tries > 0 then attempt (tries - 1) else id
      in
      attempt 8
    in
    (* the forced operands (wrap-around Q window neighbours) seed the cone
       first, so the s-graph keeps its deterministic cycle structure *)
    (match forced with
    | [] -> ()
    | f ->
      let id = gate_of (List.map maybe_invert f) in
      if is_proper_gate (Builder.finish b) id then record id);
    for _ = 1 to p.gates_per_cone do
      let id = non_constant_gate () in
      if is_proper_gate (Builder.finish b) id then record id
    done;
    (* fold every created gate into the cone output so nothing is dead *)
    let out = ref (match !created with id :: _ -> id | [] -> pool.(0)) in
    let rest = match !created with _ :: tl -> tl | [] -> [] in
    let rec fold = function
      | [] -> ()
      | chunk ->
        let width = min (List.length chunk) (1 + Rng.int rng 3) in
        let rec split n = function
          | xs when n = 0 -> ([], xs)
          | [] -> ([], [])
          | x :: xs ->
            let taken, left = split (n - 1) xs in
            (x :: taken, left)
        in
        let taken, left = split width chunk in
        out := gate_of (!out :: taken);
        fold left
    in
    fold rest;
    let guard = ref 0 in
    let net = Builder.finish b in
    while (not (is_proper_gate net !out)) && !guard < 16 do
      incr guard;
      let x1 = pool.(Rng.int rng (Array.length pool)) in
      let x2 = pool.(Rng.int rng (Array.length pool)) in
      out := Builder.or_ b [ !out; Builder.and_ b [ x1; x2 ] ]
    done;
    !out
  in
  let pi_support = min p.n_inputs (max 2 (p.q_support / 2)) in
  let d_pins =
    Array.init p.n_ffs (fun i ->
        (* contiguous wrap-around window plus one long-range tap: one big
           SCC with dense local cycles — the MFVS reductions cannot peel
           it apart without real (greedy or symmetry) work *)
        let qwin =
          Array.init p.q_support (fun k -> qs.((i + 1 + k) mod p.n_ffs))
        in
        let far = qs.((i + (p.n_ffs / 2)) mod p.n_ffs) in
        let piwin =
          Array.init pi_support (fun k -> pis.((i + k) mod p.n_inputs))
        in
        let pool = Array.concat [ qwin; [| far |]; piwin ] in
        cone ~forced:[ qs.((i + 1) mod p.n_ffs); far ] ~pool)
  in
  for j = 0 to p.n_outputs - 1 do
    let qwin =
      Array.init (min 4 p.n_ffs) (fun k -> qs.((j + k * 3) mod p.n_ffs))
    in
    let piwin =
      Array.init (min p.n_inputs (pi_support * 2)) (fun k ->
          pis.((j + k) mod p.n_inputs))
    in
    let pool = Array.append qwin piwin in
    Builder.output b (Printf.sprintf "po%d" j) (cone ~forced:[] ~pool)
  done;
  let net = Builder.finish b in
  let ffs =
    Array.map (fun d -> { Dpa_seq.Seq_netlist.data = d; init = false }) d_pins
  in
  Dpa_seq.Seq_netlist.create ~comb:net ~n_real_inputs:p.n_inputs ~ffs

let sequential p ~n_ffs =
  validate p;
  if n_ffs < 1 then invalid_arg "Generator.sequential: need at least 1 flip-flop";
  let b = Builder.create ~name:p.name () in
  let real = Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b) in
  let qs = Array.init n_ffs (fun k -> Builder.input ~name:(Printf.sprintf "q%d" k) b) in
  let p' = { p with n_inputs = p.n_inputs + n_ffs } in
  build_into b ~inputs:(Array.append real qs) p';
  let net = Builder.finish b in
  (* D pins tap random proper gates (deterministically from the seed) *)
  let rng = Rng.create (p.seed lxor 0x5EC1) in
  let gates = ref [] in
  Netlist.iter_nodes (fun i _ -> if is_proper_gate net i then gates := i :: !gates) net;
  let gate_arr = Array.of_list !gates in
  if Array.length gate_arr = 0 then invalid_arg "Generator.sequential: no gates generated";
  let ffs =
    Array.init n_ffs (fun _ ->
        { Dpa_seq.Seq_netlist.data = Rng.pick rng gate_arr; init = false })
  in
  Dpa_seq.Seq_netlist.create ~comb:net ~n_real_inputs:p.n_inputs ~ffs
