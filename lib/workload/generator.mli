(** Seeded synthetic circuit generator.

    The MCNC benchmarks and Intel control blocks of the paper's tables are
    not redistributable, so experiments run on synthetic multi-level
    networks that reproduce the structural features phase assignment is
    sensitive to:

    - each output's cone draws from a sliding {e window} of inputs, so
      cone supports are bounded (keeping exact BDD probabilities cheap)
      while neighbouring cones overlap — the [O(i,j)] duplication term;
    - a pool of shared subfunctions is reused across outputs (trapped
      inverters and duplication appear exactly as in real netlists);
    - AND/OR bias and per-edge inverter probability skew internal signal
      probabilities away from ½, which is what makes phase choice matter. *)

type params = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;  (** window width (inputs per output cone) *)
  gates_per_output : int;
  max_fanin : int;  (** 2 … k *)
  and_bias : float;  (** probability a new gate is AND *)
  bias_spread : float;
      (** alternating per-output offset applied to [and_bias] (even
          outputs lean OR, odd outputs lean AND), giving neighbouring
          cones opposed probability skews *)
  inverter_prob : float;  (** probability an operand edge is complemented *)
  reuse_fraction : float;  (** share of operands drawn from earlier cones *)
}

val default : params
(** 16 inputs, 4 outputs, support 8, 10 gates/output, fanin ≤ 3,
    balanced AND/OR, no bias spread, inverter 0.25, reuse 0.3, seed 1. *)

val combinational : params -> Dpa_logic.Netlist.t
(** Deterministic in [params] (including [seed]). Outputs are named
    [po0 … poN-1] and are always proper gates (never a bare input or
    constant). *)

val sequential : params -> n_ffs:int -> Dpa_seq.Seq_netlist.t
(** Adds [n_ffs] flip-flops whose Q pins participate as extra inputs and
    whose D pins tap random internal nodes, yielding s-graphs with real
    cycle structure. *)

(** {1 Corpus-scale families}

    Production-size generators (10⁴–10⁵ gates) with structurally extreme
    BDD behaviour. All are deterministic in their record (including
    [seed]); XOR is decomposed into AND/OR/NOT at generation time so
    gate counts reflect real scale and the netlists flow through every
    backend unchanged. *)

type parity = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;  (** window width per output cone *)
  stages : int;  (** chain length (≈4 fresh gates per stage) *)
  mix_prob : float;
      (** probability a stage is AND/OR instead of XOR; 0.0 gives a pure
          parity chain whose BDD stays linear in the support *)
  and_bias : float;  (** AND share of the mixed stages *)
}

val parity_chain : parity -> Dpa_logic.Netlist.t
(** Deep XOR/parity chains: each output folds [stages] randomly chosen
    window inputs through decomposed XORs (optionally diluted with
    AND/OR mixing). Outputs [po0 … poN-1] are always proper gates. *)

type arith = {
  name : string;
  seed : int;
  width : int;  (** operand bit width *)
  operands : int;  (** number of summands *)
}

val adder_array : arith -> Dpa_logic.Netlist.t
(** Ripple-carry adder array summing [operands] inputs of [width] bits.
    Inputs are created bit-interleaved (bit 0 of every operand before
    bit 1 of any) so the default BDD variable order keeps carry BDDs
    compact. The seed only shuffles accumulation order: the function is
    seed-independent, the structure is not. Outputs [s0 … s(width +
    operands - 2)]. *)

type mult = {
  name : string;
  seed : int;
  width : int;  (** operand bit width; array multiplier, 2·width outputs *)
}

val multiplier : mult -> Dpa_logic.Netlist.t
(** Array multiplier: partial-product rows summed by ripple addition.
    Carry chains with heavy reuse; middle product bits have
    exponentially large BDDs — the canonical engine-ladder stressor.
    Outputs [p0 … p(2·width - 1)]. *)

type controller = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  n_ffs : int;
  q_support : int;  (** Q pseudo-inputs feeding each D cone (wrap-around
                        window plus one long-range tap) *)
  gates_per_cone : int;
  and_bias : float;
  inverter_prob : float;
}

val controller : controller -> Dpa_seq.Seq_netlist.t
(** Controller-style sequential machine with dense feedback: every
    flip-flop's D cone reads a contiguous wrap-around window of
    neighbouring Qs plus a long-range tap, so the s-graph is one big
    strongly connected component that genuinely stresses the MFVS
    reductions. Cone supports stay bounded (≈[q_support] Qs + a few
    PIs) because the sequential probability partition builds exact BDDs
    of the whole core. *)
