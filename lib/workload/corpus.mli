(** Production-scale workload corpus: seeded manifests, per-circuit
    expected baselines, and the regression diff that gates them.

    A {e manifest} is a named list of profile specs (with optional
    per-circuit engine budgets). Running a spec sweeps the circuit
    through the MA-vs-MP flow (combinational via {!Dpa_core.Flow},
    sequential via {!Dpa_core.Seq_flow}) and distills the result into an
    {!outcome} — the quality and perf signature that is stored under
    [data/baselines/<name>.json] and diffed on every subsequent sweep.

    Everything except [runtime_s] is deterministic in
    [(profile, seed, budget)] at any [--jobs] width, so the diff demands
    {e exact} equality: a one-ULP power drift is a real behavioural
    change, not noise. See DESIGN.md §15. *)

type spec = { profile : Profiles.t; budget : Dpa_power.Engine.budget option }

type manifest = { name : string; specs : spec list }

type outcome = {
  name : string;
  family : string;
  digest : string;  (** {!Dpa_logic.Struct_hash} of the generated network
                        (for sequential profiles: the core with every D
                        pin promoted to a block output, exactly the
                        network the flow prices) *)
  gates : int;
  n_pi : int;  (** flow-level count (includes Q pseudo-inputs) *)
  n_po : int;  (** flow-level count (includes D-pin outputs) *)
  n_ffs : int;
  fvs : int;  (** flip-flops cut by MFVS (0 for combinational) *)
  supervertices : int;
  ma_size : int;
  ma_power : float;
  mp_size : int;
  mp_power : float;
  mp_phases : int;
  phase_flips : int;  (** negative phases in the MP assignment *)
  duplicated_gates : int;  (** logic duplicated resolving phase conflicts *)
  power_saving_pct : float;
  area_penalty_pct : float;
  ladder : string;  (** {!Dpa_power.Engine.degradation_label} of MP *)
  bdd_nodes : int;
  runtime_s : float;  (** wall time; informational, see {!diff} *)
}

val baseline_version : int

val full : manifest
(** ≥10 circuits spanning every family; largest ≥ 5×10⁴ gates. The
    multipliers carry node budgets and are {e expected} to degrade down
    the engine ladder — that is their job. *)

val smoke : manifest
(** CI-size: one circuit per family, seconds not minutes. *)

val manifest_of_string : string -> manifest option
(** ["full"] or ["smoke"]. *)

val find_spec : manifest -> string -> spec option
(** Case-insensitive lookup by circuit name. *)

val merge_budget :
  spec ->
  max_bdd_nodes:int option ->
  deadline_s:float option ->
  fallback:Dpa_power.Engine.fallback option ->
  sim_backend:Dpa_sim.Backend.t option ->
  reorder:Dpa_power.Engine.reorder_strategy option ->
  Dpa_power.Engine.budget option
(** CLI overrides folded over the spec's own budget; all-[None] keeps the
    spec budget untouched (including [None] = unbudgeted). *)

val run_spec :
  ?par:Dpa_util.Par.t -> ?budget:Dpa_power.Engine.budget -> spec -> outcome
(** Builds the circuit and runs the full MA-vs-MP comparison.
    [?budget] replaces the spec's own (use {!merge_budget} to combine);
    [?par] fans per-cone estimation across a domain pool — outcomes are
    bit-identical at any pool width. *)

val json_of_outcome : outcome -> Dpa_util.Jsonlite.t

val outcome_of_json : Dpa_util.Jsonlite.t -> outcome
(** Raises [Dpa_util.Jsonlite.Parse_error] on shape or version mismatch. *)

val baseline_path : dir:string -> string -> string

val write_baseline : dir:string -> outcome -> unit
(** Writes [dir/<name>.json] (creating [dir] if missing). *)

val read_baseline : dir:string -> string -> outcome option
(** [None] when no baseline file exists; raises
    [Dpa_util.Jsonlite.Parse_error] on a corrupt one. *)

val diff : ?perf_slack:float -> expected:outcome -> actual:outcome -> unit -> string list
(** Human-readable regression descriptions; [[]] = clean. Quality fields
    compare exactly; [runtime_s] only flags when it exceeds
    [perf_slack]× the baseline (default 10.0; [0.] disables the perf
    check entirely). *)

val bench_json : manifest:string -> jobs:int -> outcome list -> string
(** The [BENCH_corpus.json] document (schema [dominoflow/corpus/v1]). *)
