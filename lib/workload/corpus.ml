let baseline_version = 1

type spec = { profile : Profiles.t; budget : Dpa_power.Engine.budget option }

type manifest = { name : string; specs : spec list }

type outcome = {
  name : string;
  family : string;
  digest : string;
  gates : int;
  n_pi : int;
  n_po : int;
  n_ffs : int;
  fvs : int;
  supervertices : int;
  ma_size : int;
  ma_power : float;
  mp_size : int;
  mp_power : float;
  mp_phases : int;
  phase_flips : int;
  duplicated_gates : int;
  power_saving_pct : float;
  area_penalty_pct : float;
  ladder : string;
  bdd_nodes : int;
  runtime_s : float;
}

(* ---- manifests ------------------------------------------------------- *)

(* No [deadline_s] in manifest budgets, ever: wall-clock deadlines make
   the ladder rung machine-dependent, and baselines demand (profile,
   seed, budget)-determinism. Node caps and sim parameters are exact. *)
(* The reorder rung runs the default [Sift] strategy: in-place dynamic
   reordering of the rung-1 node store plus a retry in the same build.
   Unlike the [Rebuild] oracle (a whole bounded block build per adjacent
   swap, O(inputs × node cap) interned nodes per estimate — which is why
   the rung used to be pinned off here), sifting costs a bounded multiple
   of the store it compacts, so corpus-scale circuits can afford it. *)
let budgeted ?max_bdd_nodes ?sim_halfwidth ?reorder_passes () =
  let b =
    {
      Dpa_power.Engine.default_budget with
      Dpa_power.Engine.max_bdd_nodes;
      fallback = Dpa_power.Engine.Simulate;
    }
  in
  let b =
    match sim_halfwidth with
    | None -> b
    | Some hw -> { b with Dpa_power.Engine.sim_halfwidth = hw }
  in
  match reorder_passes with
  | None -> b
  | Some p -> { b with Dpa_power.Engine.reorder_passes = p }

let spec_of ?budget name =
  match Profiles.find name with
  | Some profile -> { profile; budget }
  | None -> invalid_arg (Printf.sprintf "Corpus: unknown profile %S" name)

(* The full sweep: ≥10 circuits spanning every family, largest ≥5×10⁴
   gates. Budgets are per-circuit: the multipliers are *meant* to blow
   their node caps and ride the ladder down to Monte-Carlo (that is the
   stress), the wide parity block gets an insurance cap, everything else
   runs exact. *)
let full =
  {
    name = "full";
    specs =
      [
        spec_of "parity_deep" ~budget:(budgeted ~max_bdd_nodes:120_000 ~sim_halfwidth:0.02 ());
        spec_of "parity_mix";
        spec_of "parity_wide" ~budget:(budgeted ~max_bdd_nodes:400_000 ());
        (* Sift stays off for the wide adders only: their exhausted cones
           are the high carry bits, which are already near their optimal
           order, so the rung pays a store-proportional sift per shard for
           almost no rescues — measured 1 cone of 35 on add8x32 at ~16×
           the estimate's runtime. Every other budgeted spec keeps the
           default sift rung. *)
        spec_of "add8x32" ~budget:(budgeted ~max_bdd_nodes:200_000 ~reorder_passes:0 ());
        spec_of "add16x48" ~budget:(budgeted ~max_bdd_nodes:400_000 ~reorder_passes:0 ());
        spec_of "mult16" ~budget:(budgeted ~max_bdd_nodes:120_000 ~sim_halfwidth:0.02 ());
        spec_of "mult24" ~budget:(budgeted ~max_bdd_nodes:120_000 ~sim_halfwidth:0.02 ());
        spec_of "mult32" ~budget:(budgeted ~max_bdd_nodes:120_000 ~sim_halfwidth:0.02 ());
        spec_of "ctrl_dense";
        spec_of "ctrl_grid";
        spec_of "apex7";
        spec_of "industry3";
      ];
  }

(* CI-size: one circuit per family, seconds not minutes. *)
let smoke =
  {
    name = "smoke";
    specs =
      [
        spec_of "parity_smoke";
        spec_of "add4x8";
        spec_of "mult8" ~budget:(budgeted ~max_bdd_nodes:60_000 ~sim_halfwidth:0.02 ());
        spec_of "ctrl_smoke";
        spec_of "apex7";
      ];
  }

let manifest_of_string = function
  | "full" -> Some full
  | "smoke" -> Some smoke
  | _ -> None

let find_spec m name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.lowercase_ascii s.profile.Profiles.name = lower)
    m.specs

(* ---- budget merging --------------------------------------------------- *)

let merge_budget spec ~max_bdd_nodes ~deadline_s ~fallback ~sim_backend ~reorder =
  match (max_bdd_nodes, deadline_s, fallback, sim_backend, reorder) with
  | None, None, None, None, None -> spec.budget
  | _ ->
    let b = Option.value spec.budget ~default:Dpa_power.Engine.default_budget in
    Some
      {
        b with
        Dpa_power.Engine.max_bdd_nodes =
          (match max_bdd_nodes with Some _ -> max_bdd_nodes | None -> b.Dpa_power.Engine.max_bdd_nodes);
        deadline_s =
          (match deadline_s with Some _ -> deadline_s | None -> b.Dpa_power.Engine.deadline_s);
        fallback = Option.value fallback ~default:b.Dpa_power.Engine.fallback;
        sim_backend = Option.value sim_backend ~default:b.Dpa_power.Engine.sim_backend;
        reorder = Option.value reorder ~default:b.Dpa_power.Engine.reorder;
      }

(* ---- running one spec -------------------------------------------------- *)

(* The sequential flow prices the combinational core with every
   flip-flop's D pin promoted to a block output (Seq_flow); the baseline
   digest must cover exactly that network or two controllers differing
   only in D taps would collide. *)
let seq_core sn =
  let core = Dpa_logic.Netlist.copy (Dpa_seq.Seq_netlist.comb sn) in
  Array.iteri
    (fun k ff ->
      Dpa_logic.Netlist.add_output core
        (Printf.sprintf "ff%d.d" k)
        ff.Dpa_seq.Seq_netlist.data)
    (Dpa_seq.Seq_netlist.ffs sn);
  core

let run_spec ?par ?budget spec =
  let profile = spec.profile in
  let budget = match budget with Some _ -> budget | None -> spec.budget in
  let config =
    {
      Dpa_core.Flow.default_config with
      Dpa_core.Flow.pair_limit = profile.Profiles.pair_limit;
      budget;
      par;
    }
  in
  let t0 = Unix.gettimeofday () in
  let flow, digest, gates, n_ffs, fvs, supervertices, priced_net =
    match Profiles.build profile with
    | Profiles.Comb net ->
      let r = Dpa_core.Flow.compare_ma_mp ~config net in
      ( r,
        Dpa_logic.Struct_hash.digest net,
        Dpa_logic.Netlist.gate_count net,
        0,
        0,
        0,
        net )
    | Profiles.Seq sn ->
      let r = Dpa_core.Seq_flow.compare_ma_mp ~config sn in
      let core = seq_core sn in
      ( r.Dpa_core.Seq_flow.comb,
        Dpa_logic.Struct_hash.digest core,
        Dpa_logic.Netlist.gate_count core,
        Dpa_seq.Seq_netlist.n_ffs sn,
        List.length r.Dpa_core.Seq_flow.fvs,
        r.Dpa_core.Seq_flow.supervertices,
        core )
  in
  let runtime_s = Unix.gettimeofday () -. t0 in
  let mp = flow.Dpa_core.Flow.mp and ma = flow.Dpa_core.Flow.ma in
  let mp_assignment = mp.Dpa_core.Flow.assignment in
  (* phase-conflict accounting on the same optimized network the flow
     priced (Opt.optimize is deterministic, so this reconstruction is
     exact) *)
  let stats =
    Dpa_synth.Inverterless.stats
      (Dpa_synth.Inverterless.realize (Dpa_synth.Opt.optimize priced_net) mp_assignment)
  in
  {
    name = profile.Profiles.name;
    family = Profiles.family_name profile.Profiles.family;
    digest;
    gates;
    n_pi = flow.Dpa_core.Flow.n_pi;
    n_po = flow.Dpa_core.Flow.n_po;
    n_ffs;
    fvs;
    supervertices;
    ma_size = ma.Dpa_core.Flow.size;
    ma_power = ma.Dpa_core.Flow.power;
    mp_size = mp.Dpa_core.Flow.size;
    mp_power = mp.Dpa_core.Flow.power;
    mp_phases = Array.length mp_assignment;
    phase_flips = Dpa_synth.Phase.count_negative mp_assignment;
    duplicated_gates = stats.Dpa_synth.Inverterless.duplicated_nodes;
    power_saving_pct = flow.Dpa_core.Flow.power_saving_pct;
    area_penalty_pct = flow.Dpa_core.Flow.area_penalty_pct;
    ladder = Dpa_power.Engine.degradation_label mp.Dpa_core.Flow.degradation;
    bdd_nodes = mp.Dpa_core.Flow.degradation.Dpa_power.Engine.bdd_nodes;
    runtime_s;
  }

(* ---- baseline (de)serialization ---------------------------------------- *)

let json_of_outcome o =
  let open Dpa_util.Jsonlite in
  Obj
    [
      ("version", Num (float_of_int baseline_version));
      ("name", Str o.name);
      ("family", Str o.family);
      ("digest", Str o.digest);
      ("gates", Num (float_of_int o.gates));
      ("n_pi", Num (float_of_int o.n_pi));
      ("n_po", Num (float_of_int o.n_po));
      ("n_ffs", Num (float_of_int o.n_ffs));
      ("fvs", Num (float_of_int o.fvs));
      ("supervertices", Num (float_of_int o.supervertices));
      ("ma_size", Num (float_of_int o.ma_size));
      ("ma_power", Num o.ma_power);
      ("mp_size", Num (float_of_int o.mp_size));
      ("mp_power", Num o.mp_power);
      ("mp_phases", Num (float_of_int o.mp_phases));
      ("phase_flips", Num (float_of_int o.phase_flips));
      ("duplicated_gates", Num (float_of_int o.duplicated_gates));
      ("power_saving_pct", Num o.power_saving_pct);
      ("area_penalty_pct", Num o.area_penalty_pct);
      ("ladder", Str o.ladder);
      ("bdd_nodes", Num (float_of_int o.bdd_nodes));
      ("runtime_s", Num o.runtime_s);
    ]

let outcome_of_json j =
  let open Dpa_util.Jsonlite in
  let v = to_int (member "version" j) in
  if v <> baseline_version then
    raise
      (Parse_error
         (Printf.sprintf "baseline version %d (this build reads %d)" v
            baseline_version));
  {
    name = to_string (member "name" j);
    family = to_string (member "family" j);
    digest = to_string (member "digest" j);
    gates = to_int (member "gates" j);
    n_pi = to_int (member "n_pi" j);
    n_po = to_int (member "n_po" j);
    n_ffs = to_int (member "n_ffs" j);
    fvs = to_int (member "fvs" j);
    supervertices = to_int (member "supervertices" j);
    ma_size = to_int (member "ma_size" j);
    ma_power = to_float (member "ma_power" j);
    mp_size = to_int (member "mp_size" j);
    mp_power = to_float (member "mp_power" j);
    mp_phases = to_int (member "mp_phases" j);
    phase_flips = to_int (member "phase_flips" j);
    duplicated_gates = to_int (member "duplicated_gates" j);
    power_saving_pct = to_float (member "power_saving_pct" j);
    area_penalty_pct = to_float (member "area_penalty_pct" j);
    ladder = to_string (member "ladder" j);
    bdd_nodes = to_int (member "bdd_nodes" j);
    runtime_s = to_float (member "runtime_s" j);
  }

let baseline_path ~dir name = Filename.concat dir (name ^ ".json")

let write_baseline ~dir o =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = baseline_path ~dir o.name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Dpa_util.Jsonlite.encode (json_of_outcome o));
      output_char oc '\n')

let read_baseline ~dir name =
  let path = baseline_path ~dir name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Some (outcome_of_json (Dpa_util.Jsonlite.parse s))
  end

(* ---- regression diff --------------------------------------------------- *)

(* Every quality field is compared for *exact* equality — the whole stack
   is deterministic in (profile, seed, budget), so any drift is a real
   behavioural change, not noise. Floats were written by Jsonlite's
   shortest-round-trip encoder, so they read back bit-identical.
   [runtime_s] is informational; only a [perf_slack] factor blowout
   (default 10×, 0 disables) flags it, so machine variance never fails
   the gate while an accidental O(n²) still does. *)
let diff ?(perf_slack = 10.0) ~expected ~actual () =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check_int field e a = if e <> a then add "%s: expected %d, got %d" field e a in
  let check_float field e a =
    if e <> a then add "%s: expected %.17g, got %.17g" field e a
  in
  let check_str field e a = if e <> a then add "%s: expected %S, got %S" field e a in
  check_str "digest" expected.digest actual.digest;
  check_int "gates" expected.gates actual.gates;
  check_int "n_pi" expected.n_pi actual.n_pi;
  check_int "n_po" expected.n_po actual.n_po;
  check_int "n_ffs" expected.n_ffs actual.n_ffs;
  check_int "fvs" expected.fvs actual.fvs;
  check_int "supervertices" expected.supervertices actual.supervertices;
  check_int "ma_size" expected.ma_size actual.ma_size;
  check_float "ma_power" expected.ma_power actual.ma_power;
  check_int "mp_size" expected.mp_size actual.mp_size;
  check_float "mp_power" expected.mp_power actual.mp_power;
  check_int "mp_phases" expected.mp_phases actual.mp_phases;
  check_int "phase_flips" expected.phase_flips actual.phase_flips;
  check_int "duplicated_gates" expected.duplicated_gates actual.duplicated_gates;
  check_float "power_saving_pct" expected.power_saving_pct actual.power_saving_pct;
  check_float "area_penalty_pct" expected.area_penalty_pct actual.area_penalty_pct;
  check_str "ladder" expected.ladder actual.ladder;
  check_int "bdd_nodes" expected.bdd_nodes actual.bdd_nodes;
  if
    perf_slack > 0.0
    && expected.runtime_s > 0.01
    && actual.runtime_s > expected.runtime_s *. perf_slack
  then
    add "runtime_s: %.3fs is over %.1fx the baseline %.3fs" actual.runtime_s
      perf_slack expected.runtime_s;
  List.rev !problems

(* ---- bench report ------------------------------------------------------ *)

let bench_json ~manifest ~jobs outcomes =
  let open Dpa_util.Jsonlite in
  encode
    (Obj
       [
         ("schema", Str "dominoflow/corpus/v1");
         ("manifest", Str manifest);
         ("jobs", Num (float_of_int jobs));
         ("circuits", Arr (List.map json_of_outcome outcomes));
       ])
