(** Named benchmark profiles: the paper's Tables 1–2 circuits plus the
    production-scale corpus families.

    Table profiles fix the published primary-input/output counts and
    target a similar logic volume; the circuits themselves are synthetic
    (see {!Generator} and DESIGN.md §3 on benchmark substitution). Corpus
    profiles (DESIGN.md §15) scale the generator families to 10³–10⁵
    gates for the regression-gated sweep in {!Corpus}.

    [pair_limit] caps the greedy candidate set on very wide blocks (an
    engineering knob; [None] = the paper's full pair set). *)

type family =
  | Control  (** windowed control-logic cones (the Table 1/2 house style) *)
  | Parity  (** deep XOR/parity chains *)
  | Arith  (** adder/multiplier arrays (carry chains, heavy reuse) *)
  | Sequential  (** dense-feedback controllers (MFVS stressors) *)

type shape =
  | Windowed of Generator.params
  | Parity_chain of Generator.parity
  | Adder of Generator.arith
  | Multiplier of Generator.mult
  | Controller of Generator.controller

type t = {
  name : string;
  shape : shape;
  family : family;
  scale : int;  (** expected gate count, order-of-magnitude calibration *)
  description : string;  (** the paper's "Desc." column / corpus blurb *)
  pair_limit : int option;
  timed : bool;  (** appears in Table 2 *)
}

type circuit = Comb of Dpa_logic.Netlist.t | Seq of Dpa_seq.Seq_netlist.t

val family_name : family -> string

val is_sequential : t -> bool

val build : t -> circuit
(** Deterministic in the profile (generators are seeded). *)

val build_comb : t -> Dpa_logic.Netlist.t
(** Raises [Invalid_argument] on sequential profiles. *)

val params : t -> Generator.params
(** The windowed-control parameter record. Raises [Invalid_argument] on
    non-windowed (corpus family) profiles. *)

val interface : t -> int * int * int
(** [(primary inputs, primary outputs, flip-flops)] without building the
    circuit. For adders the output count includes the structural carry
    bits ([width + operands - 1]); multipliers have [2·width] outputs. *)

val table1 : t list
(** Industry 1–3, apex7, frg1, x1, x3 — the Table 1 row set, in order. *)

val table2 : t list
(** apex7, frg1, x1, x3 — the Table 2 row set. *)

val corpus : t list
(** The corpus-scale profiles, smallest-to-largest within each family. *)

val all : t list
(** [table1 @ corpus]. *)

val find : string -> t option
(** Case-insensitive lookup by profile name, over {!all}. *)

val names : string list
(** All profile names, sorted (stable for [--help] output). *)
