type resource = Bdd_nodes | Wall_clock

type budget_report = {
  resource : resource;
  limit : float;
  spent : float;
  context : string;
}

type cancel_reason =
  | Deadline of { limit_s : float; elapsed_s : float }
  | Aborted of string

type t =
  | Parse of { source : string; line : int option; message : string }
  | Invalid_input of string
  | Unsupported of string
  | Budget of budget_report
  | Cancelled of cancel_reason
  | Overloaded of { retry_after_ms : int }
  | Io of string
  | Internal of string

exception Error of t

exception Budget_exceeded of budget_report

let error t = raise (Error t)

let budget_exceeded ?(context = "") ~resource ~limit ~spent () =
  raise (Budget_exceeded { resource; limit; spent; context })

let resource_to_string = function
  | Bdd_nodes -> "BDD nodes"
  | Wall_clock -> "wall-clock seconds"

let budget_to_string { resource; limit; spent; context } =
  let quantity =
    match resource with
    | Bdd_nodes -> Printf.sprintf "%.0f of at most %.0f" spent limit
    | Wall_clock -> Printf.sprintf "%.3f of at most %.3f" spent limit
  in
  Printf.sprintf "resource budget exceeded%s: %s %s"
    (if context = "" then "" else Printf.sprintf " (%s)" context)
    quantity (resource_to_string resource)

let to_string = function
  | Parse { source; line; message } ->
    let where =
      match line with
      | Some l -> Printf.sprintf "%s: line %d: " source l
      | None -> Printf.sprintf "%s: " source
    in
    (* parser messages already carry "line N:" when they know it *)
    let already_located =
      String.length message >= 5 && String.sub message 0 5 = "line "
    in
    if already_located then Printf.sprintf "%s: %s" source message
    else where ^ message
  | Invalid_input msg -> "invalid input: " ^ msg
  | Unsupported msg -> "unsupported: " ^ msg
  | Budget b -> budget_to_string b
  | Cancelled (Deadline { limit_s; elapsed_s }) ->
    Printf.sprintf "deadline exceeded: %.3f s elapsed of a %.3f s deadline" elapsed_s
      limit_s
  | Cancelled (Aborted reason) -> "cancelled: " ^ reason
  | Overloaded { retry_after_ms } ->
    Printf.sprintf "server overloaded; retry after %d ms" retry_after_ms
  | Io msg -> msg
  | Internal msg -> "internal error: " ^ msg

(* sysexits(3)-style codes so scripts can distinguish failure classes:
   65 EX_DATAERR, 66 EX_NOINPUT, 69 EX_UNAVAILABLE, 70 EX_SOFTWARE,
   75 EX_TEMPFAIL (a retryable condition: blown budget with fallback
   disabled, a cancelled/deadline-exceeded request, or shed load). *)
let exit_code = function
  | Parse _ -> 65
  | Invalid_input _ -> 65
  | Unsupported _ -> 69
  | Budget _ -> 75
  | Cancelled _ -> 75
  | Overloaded _ -> 75
  | Io _ -> 66
  | Internal _ -> 70

let of_exn = function
  | Error t -> Some t
  | Budget_exceeded b -> Some (Budget b)
  | Sys_error msg -> Some (Io msg)
  | Invalid_argument msg -> Some (Invalid_input msg)
  | Failure msg -> Some (Internal msg)
  | _ -> None

let protect f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn e with Some t -> Result.Error t | None -> raise e)
