(** Open-addressing hash table from triples of non-negative ints to ints.

    Purpose-built for the ROBDD unique table (level, low, high → node id)
    and ite cache (f, g, h → node id), where the generic
    [((int * int * int), int) Hashtbl.t] pays a boxed tuple allocation and
    a polymorphic hash on every probe. Here the three key components and
    the value are packed inline into one int array (a probe reads a single
    cache line), capacity is a power of two, and collisions resolve by
    linear probing. {!remove} writes a tombstone rather than emptying the
    slot (probe chains stay intact); tombstones are reused by later inserts
    and dropped at the next rehash, so delete-heavy phases (the sifting
    reorderer retiring dead BDD nodes) cannot strand capacity. The first
    key component must be non-negative (negative values mark empty and
    tombstoned slots); values are arbitrary ints except [-1]
    ({!not_found}). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (slot count) is rounded up to a power of two, minimum 16. *)

val length : t -> int

val not_found : int
(** [-1]; returned by {!find} when the key is absent. *)

val find : t -> int -> int -> int -> int
(** [find t a b c] is the value bound to [(a,b,c)], or {!not_found}.
    Raises [Invalid_argument] if [a] is negative. *)

val replace : t -> int -> int -> int -> int -> unit
(** Insert or overwrite. *)

val find_or_insert : t -> int -> int -> int -> default:(unit -> int) -> int
(** Single-probe lookup-or-insert: the key is hashed and probed once; on a
    miss [default ()] supplies the value, stored directly in the slot the
    probe ended on. [default] must not modify the table. *)

val remove : t -> int -> int -> int -> unit
(** Deletes the binding of [(a,b,c)] if present (no-op otherwise) by
    tombstoning its slot. {!length} drops immediately; the slot is reused
    by the next insert whose probe chain passes it, or reclaimed wholesale
    at the next rehash. *)

val clear : t -> unit
(** Empties the table (tombstones included); capacity and stats counters
    are retained. *)

(** {2 Instrumentation} *)

val probes : t -> int
(** Lookups performed (each counts once however long its probe chain). *)

val hits : t -> int

val resizes : t -> int
