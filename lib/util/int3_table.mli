(** Open-addressing hash table from triples of non-negative ints to ints.

    Purpose-built for the ROBDD unique table (level, low, high → node id)
    and ite cache (f, g, h → node id), where the generic
    [((int * int * int), int) Hashtbl.t] pays a boxed tuple allocation and
    a polymorphic hash on every probe. Here the three key components and
    the value are packed inline into one int array (a probe reads a single
    cache line), capacity is a power of two, collisions resolve by linear
    probing, and there is no deletion. The first key component must be
    non-negative (it doubles as the empty-slot marker); values are
    arbitrary ints except [-1] ({!not_found}). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (slot count) is rounded up to a power of two, minimum 16. *)

val length : t -> int

val not_found : int
(** [-1]; returned by {!find} when the key is absent. *)

val find : t -> int -> int -> int -> int
(** [find t a b c] is the value bound to [(a,b,c)], or {!not_found}.
    Raises [Invalid_argument] if [a] is negative. *)

val replace : t -> int -> int -> int -> int -> unit
(** Insert or overwrite. *)

val find_or_insert : t -> int -> int -> int -> default:(unit -> int) -> int
(** Single-probe lookup-or-insert: the key is hashed and probed once; on a
    miss [default ()] supplies the value, stored directly in the slot the
    probe ended on. [default] must not modify the table. *)

val clear : t -> unit
(** Empties the table; capacity and stats counters are retained. *)

(** {2 Instrumentation} *)

val probes : t -> int
(** Lookups performed (each counts once however long its probe chain). *)

val hits : t -> int

val resizes : t -> int
