type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let float t x =
  (* 53 random mantissa bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let split t = { state = bits64 t }

(* Key-derived stream: state = mix (base + (index+1)·γ), the same jump
   splitmix64 itself makes, so streams for distinct indices are as
   independent as successive [split]s — but addressable by index, which
   is what per-cone Monte-Carlo fallback needs to stay reproducible
   under any parallel schedule. *)
let derive ~base ~index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  {
    state =
      mix (Int64.add (Int64.of_int base) (Int64.mul (Int64.of_int (index + 1)) golden_gamma));
  }

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
