type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let float t x =
  (* 53 random mantissa bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let split t = { state = bits64 t }

(* Key-derived stream: state = mix (base + (index+1)·γ), the same jump
   splitmix64 itself makes, so streams for distinct indices are as
   independent as successive [split]s — but addressable by index, which
   is what per-cone Monte-Carlo fallback needs to stay reproducible
   under any parallel schedule. *)
let derive ~base ~index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  {
    state =
      mix (Int64.add (Int64.of_int base) (Int64.mul (Int64.of_int (index + 1)) golden_gamma));
  }

(* [float t 1.0] is exactly [b /. 2^53] with [b] the top 53 bits of
   [bits64] — both the division by a power of two and the multiplication
   by 1.0 are exact — so [bernoulli t p  ≡  b < p·2^53] over the reals.
   With [b] an integer, [b < p·2^53  ≡  b < ceil (p·2^53)], an integer
   comparison. [p·2^53] itself is exact (scaling a float by a power of
   two only moves its exponent), hence so is its ceiling. *)
let bernoulli_threshold p =
  let t = Float.ceil (p *. 9007199254740992.0) in
  if t <= 0.0 then 0
  else if t >= float_of_int max_int then max_int
  else int_of_float t

let fill_bernoulli_lanes t ~thresholds ~lanes ~into =
  if lanes < 1 || lanes > 63 then invalid_arg "Rng.fill_bernoulli_lanes: lanes not in 1..63";
  let n = Array.length thresholds in
  if Array.length into < n then invalid_arg "Rng.fill_bernoulli_lanes: into too short";
  Array.fill into 0 n 0;
  (* The stream is a pure function of the starting state: draw [j]
     (1-based) mixes [s0 + j·γ]. Keeping the per-draw state as a
     let-bound chain (instead of threading [t.state] through the loop)
     lets the compiler keep every intermediate int64 unboxed, which is
     what makes this the fast path of the bit-parallel simulator. *)
  let s0 = t.state in
  let j = ref 0 in
  for lane = 0 to lanes - 1 do
    let bit = 1 lsl lane in
    for k = 0 to n - 1 do
      incr j;
      let z = Int64.add s0 (Int64.mul (Int64.of_int !j) golden_gamma) in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      let b = Int64.to_int (Int64.shift_right_logical z 11) in
      if b < Array.unsafe_get thresholds k then
        Array.unsafe_set into k (Array.unsafe_get into k lor bit)
    done
  done;
  t.state <- Int64.add s0 (Int64.mul (Int64.of_int !j) golden_gamma)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
