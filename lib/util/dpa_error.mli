(** Structured library errors and typed resource-budget exhaustion.

    The estimation pipeline must always terminate with an answer or a
    diagnosable error: library code raises {!Error} (or returns the payload
    as [(_, t) result]) instead of [failwith], and the BDD kernel raises
    the dedicated {!Budget_exceeded} when an installed node budget or
    wall-clock deadline runs out — a {e retryable} condition the
    degradation ladder in [Dpa_power.Engine] catches to fall back to
    reordering or simulation. The CLI maps both to one-line messages and
    documented sysexits-style codes via {!to_string} and {!exit_code}. *)

type resource = Bdd_nodes | Wall_clock

type budget_report = {
  resource : resource;
  limit : float;  (** node count, or seconds *)
  spent : float;  (** same unit, at the moment of exhaustion *)
  context : string;  (** e.g. which cone was being built; may be empty *)
}

type cancel_reason =
  | Deadline of { limit_s : float; elapsed_s : float }
      (** the request's wall-clock deadline passed *)
  | Aborted of string  (** explicit cancellation (watchdog, shutdown, …) *)

type t =
  | Parse of { source : string; line : int option; message : string }
      (** malformed input text; [source] is a file name or format name *)
  | Invalid_input of string  (** structurally valid input the flow rejects *)
  | Unsupported of string  (** recognized but unimplemented construct *)
  | Budget of budget_report  (** budget ran out and no fallback was allowed *)
  | Cancelled of cancel_reason
      (** the request was cancelled cooperatively ({!Dpa_util.Cancel});
          unlike {!Budget}, fallback ladders must {e not} catch this *)
  | Overloaded of { retry_after_ms : int }
      (** admission control shed the request; retry after the hint *)
  | Io of string  (** file-system failure *)
  | Internal of string  (** invariant violation — a bug, not a user error *)

exception Error of t

exception Budget_exceeded of budget_report
(** Raised by [Dpa_bdd.Robdd] when a manager's installed budget is
    exhausted. Kept distinct from {!Error} so fallback ladders can catch
    exactly this and nothing else. *)

val error : t -> 'a

val budget_exceeded :
  ?context:string -> resource:resource -> limit:float -> spent:float -> unit -> 'a
(** Raises {!Budget_exceeded}. *)

val resource_to_string : resource -> string

val budget_to_string : budget_report -> string

val to_string : t -> string
(** One-line human-readable message (no trailing newline). *)

val exit_code : t -> int
(** Documented process exit code for the CLI: 65 parse/invalid input,
    66 I/O, 69 unsupported, 70 internal, 75 budget exceeded /
    cancelled / overloaded (all retryable). *)

val of_exn : exn -> t option
(** Structured view of an exception: {!Error} and {!Budget_exceeded}
    verbatim; [Sys_error], [Invalid_argument] and [Failure] are folded into
    {!Io}, {!Invalid_input} and {!Internal}; anything else is [None]. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Runs [f], converting any exception {!of_exn} recognizes into
    [Error _]; unrecognized exceptions propagate. *)
