(* Each participant owns one slot of [ranges]: a packed, sequence-stamped
   [lo, hi) interval of task indices. Owners pop from the low end; idle
   participants steal the upper half of the fullest slot. Every slot
   transition is a CAS, and the stamp (incremented on every write) makes
   a recycled interval value distinguishable from the original, so a
   stale CAS can never double-assign work (the classic ABA hazard). *)

(* slot layout: [stamp : 23 bits][lo : 20 bits][hi : 20 bits] *)
let idx_bits = 20
let idx_mask = (1 lsl idx_bits) - 1
let max_tasks = idx_mask

let pack ~stamp ~lo ~hi =
  ((stamp land 0x7FFFFF) lsl (2 * idx_bits)) lor (lo lsl idx_bits) lor hi

let slot_lo s = (s lsr idx_bits) land idx_mask
let slot_hi s = s land idx_mask
let slot_stamp s = s lsr (2 * idx_bits)
let slot_len s = slot_hi s - slot_lo s

type region = {
  run : int -> unit;  (* never raises; failures land in the region's arrays *)
  ranges : int Atomic.t array;
  remaining : int Atomic.t;
  abandon : bool Atomic.t;  (* a task failed: drain without executing *)
  region_steals : int Atomic.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a new region (or shutdown) is up *)
  finished : Condition.t;  (* submitter: the region's last task completed *)
  mutable region : region option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  submit_mutex : Mutex.t;  (* serializes whole regions across submitters *)
  mutable tasks_total : int;
  mutable steals_total : int;
}

type stats = {
  tasks : int;
  steals : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Tasks must be leaves: a task that re-enters the pool would deadlock on
   [submit_mutex] (own pool) or invert the determinism contract (another
   pool), so both are rejected. The flag is per-domain, not per-pool. *)
let in_task_key = Domain.DLS.new_key (fun () -> ref false)

let take_own r w =
  let slot = r.ranges.(w) in
  let rec go () =
    let cur = Atomic.get slot in
    let lo = slot_lo cur and hi = slot_hi cur in
    if lo >= hi then -1
    else if
      Atomic.compare_and_set slot cur
        (pack ~stamp:(slot_stamp cur + 1) ~lo:(lo + 1) ~hi)
    then lo
    else go ()
  in
  go ()

(* One steal attempt: pick the victim with the most remaining work and
   move the upper half of its range into our own (empty) slot. Returns
   [true] if a rescan is worthwhile (we stole, or we lost a race). *)
let try_steal r w =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun v slot ->
      if v <> w then begin
        let len = slot_len (Atomic.get slot) in
        if len > !best_len then begin
          best := v;
          best_len := len
        end
      end)
    r.ranges;
  if !best < 0 then false
  else begin
    let victim = r.ranges.(!best) in
    let cur = Atomic.get victim in
    let lo = slot_lo cur and hi = slot_hi cur in
    if hi <= lo then true (* drained under us; rescan *)
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if Atomic.compare_and_set victim cur (pack ~stamp:(slot_stamp cur + 1) ~lo ~hi:mid)
      then begin
        Atomic.incr r.region_steals;
        (* our own slot is empty and only non-empty slots are stolen
           from, so this install cannot lose work to a concurrent thief;
           the retry loop keeps it safe even so *)
        let own = r.ranges.(w) in
        let rec install () =
          let mine = Atomic.get own in
          if
            not
              (Atomic.compare_and_set own mine
                 (pack ~stamp:(slot_stamp mine + 1) ~lo:mid ~hi))
          then install ()
        in
        install ();
        true
      end
      else true (* contended; rescan *)
    end
  end

let finish_task pool r =
  if Atomic.fetch_and_add r.remaining (-1) = 1 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.finished;
    Mutex.unlock pool.mutex
  end

let rec participate pool r w =
  let i = take_own r w in
  if i >= 0 then begin
    if not (Atomic.get r.abandon) then r.run i;
    finish_task pool r;
    participate pool r w
  end
  else if try_steal r w then participate pool r w

let enter_region pool r w =
  let in_task = Domain.DLS.get in_task_key in
  in_task := true;
  participate pool r w;
  in_task := false

let worker_body pool w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while (not pool.stopping) && pool.epoch = !seen do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stopping then Mutex.unlock pool.mutex
    else begin
      seen := pool.epoch;
      let r = pool.region in
      Mutex.unlock pool.mutex;
      (* [region] may already be [None]: the epoch also advances when a
         region completes before a late worker wakes up *)
      Option.iter (fun r -> enter_region pool r w) r;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 || jobs > 126 then invalid_arg "Par.create: jobs must be in 1 .. 126";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      region = None;
      epoch = 0;
      stopping = false;
      domains = [];
      submit_mutex = Mutex.create ();
      tasks_total = 0;
      steals_total = 0;
    }
  in
  pool.domains <-
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker_body pool (k + 1)));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  let ds = pool.domains in
  pool.domains <- [];
  List.iter Domain.join ds

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let reject_if_nested what =
  if !(Domain.DLS.get in_task_key) then
    invalid_arg (what ^ ": nested parallel region (tasks must be leaves)")

(* Raise the failure of the lowest-indexed failed task, then unpack. *)
let collect results failures n =
  let rec scan i =
    if i < n then
      match failures.(i) with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> scan (i + 1)
  in
  scan 0;
  Array.map (function Some v -> v | None -> assert false) results

let map pool n f =
  reject_if_nested "Par.map";
  if n < 0 then invalid_arg "Par.map: negative task count";
  if n > max_tasks then
    invalid_arg (Printf.sprintf "Par.map: %d tasks exceeds the %d cap" n max_tasks);
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    if pool.jobs = 1 || n = 1 then begin
      (* inline fast path: same nested-use rejection, no handoff *)
      let in_task = Domain.DLS.get in_task_key in
      in_task := true;
      Fun.protect
        ~finally:(fun () -> in_task := false)
        (fun () ->
          for i = 0 to n - 1 do
            match f i with
            | v -> results.(i) <- Some v
            | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
          done);
      Mutex.lock pool.mutex;
      pool.tasks_total <- pool.tasks_total + n;
      Mutex.unlock pool.mutex;
      collect results failures n
    end
    else begin
      Mutex.lock pool.submit_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock pool.submit_mutex) @@ fun () ->
      let abandon = Atomic.make false in
      let run i =
        match f i with
        | v -> results.(i) <- Some v
        | exception e ->
          failures.(i) <- Some (e, Printexc.get_raw_backtrace ());
          Atomic.set abandon true
      in
      let j = pool.jobs in
      let ranges =
        Array.init j (fun w ->
            Atomic.make (pack ~stamp:0 ~lo:(w * n / j) ~hi:((w + 1) * n / j)))
      in
      let r =
        {
          run;
          ranges;
          remaining = Atomic.make n;
          abandon;
          region_steals = Atomic.make 0;
        }
      in
      Mutex.lock pool.mutex;
      pool.epoch <- pool.epoch + 1;
      pool.region <- Some r;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      enter_region pool r 0;
      Mutex.lock pool.mutex;
      while Atomic.get r.remaining > 0 do
        Condition.wait pool.finished pool.mutex
      done;
      pool.region <- None;
      (* bump the epoch so a worker that never saw this region does not
         mistake the next one for it *)
      pool.epoch <- pool.epoch + 1;
      pool.tasks_total <- pool.tasks_total + n;
      pool.steals_total <- pool.steals_total + Atomic.get r.region_steals;
      Mutex.unlock pool.mutex;
      collect results failures n
    end
  end

let reduce pool n ~map:f ~fold ~init = Array.fold_left fold init (map pool n f)

let stats pool =
  Mutex.lock pool.mutex;
  let s = { tasks = pool.tasks_total; steals = pool.steals_total } in
  Mutex.unlock pool.mutex;
  s
