(* Keys are int triples, stored inline: each slot is four consecutive ints
   [k1; k2; k3; value] in one backing array, so one probe = one cache line
   and zero allocation (no boxed tuple, no polymorphic hash). Capacity is a
   power of two; linear probing. Deletion writes a tombstone (k1 = -2,
   distinct from the k1 = -1 empty marker) so probe chains through the
   deleted slot stay intact; tombstones are reused by later inserts and
   dropped wholesale on the next rehash. *)

type t = {
  mutable data : int array; (* stride 4; k1 = -1 empty, k1 = -2 tombstone *)
  mutable mask : int; (* capacity - 1, in slots *)
  mutable size : int; (* live entries *)
  mutable tombs : int; (* tombstone slots awaiting reuse or rehash *)
  mutable probes : int;
  mutable hits : int;
  mutable resizes : int;
}

let not_found = -1

let empty_mark = -1

let tomb_mark = -2

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 16

let create ?(capacity = 1024) () =
  let cap = round_pow2 capacity in
  {
    data = Array.make (4 * cap) empty_mark;
    mask = cap - 1;
    size = 0;
    tombs = 0;
    probes = 0;
    hits = 0;
    resizes = 0;
  }

let length t = t.size

(* xxhash-style avalanche over the three components (odd multipliers that
   fit OCaml's 63-bit int). *)
let hash a b c =
  let h = a * 0x2545F4914F6CDD1D in
  let h = (h lxor b) * 0x27D4EB2F165667C5 in
  let h = (h lxor c) * 0x165667B19E3779F9 in
  (h lxor (h lsr 29)) land max_int

let insert_raw data mask a b c v =
  let rec go i =
    let base = 4 * i in
    if Array.unsafe_get data base < 0 then begin
      Array.unsafe_set data base a;
      Array.unsafe_set data (base + 1) b;
      Array.unsafe_set data (base + 2) c;
      Array.unsafe_set data (base + 3) v
    end
    else go ((i + 1) land mask)
  in
  go (hash a b c land mask)

(* Rehash live entries only — tombstones are dropped here. The capacity
   doubles when genuinely half full of live entries, and stays put when
   the pressure was tombstone churn (a delete-heavy phase, e.g. sifting). *)
let grow t =
  let old_cap = t.mask + 1 in
  let cap = if 2 * (t.size + 1) > old_cap then old_cap * 2 else old_cap in
  let data = Array.make (4 * cap) empty_mark in
  let mask = cap - 1 in
  for i = 0 to t.mask do
    let base = 4 * i in
    let a = t.data.(base) in
    if a >= 0 then insert_raw data mask a t.data.(base + 1) t.data.(base + 2) t.data.(base + 3)
  done;
  t.data <- data;
  t.mask <- mask;
  t.tombs <- 0;
  t.resizes <- t.resizes + 1

let check_key a = if a < 0 then invalid_arg "Int3_table: keys must be non-negative"

(* Probe for [(a,b,c)]; returns the slot holding it, or the first
   {e reusable} slot of the chain (the earliest tombstone if one was
   passed, else the terminating empty slot). Callers distinguish the two
   cases by the slot's k1. *)
let slot_of t a b c =
  t.probes <- t.probes + 1;
  let data = t.data and mask = t.mask in
  let rec go i reuse =
    let base = 4 * i in
    let k1 = Array.unsafe_get data base in
    if k1 = empty_mark then if reuse >= 0 then reuse else i
    else if
      k1 = a
      && Array.unsafe_get data (base + 1) = b
      && Array.unsafe_get data (base + 2) = c
    then i
    else
      go ((i + 1) land mask) (if k1 = tomb_mark && reuse < 0 then i else reuse)
  in
  go (hash a b c land mask) (-1)

let find t a b c =
  check_key a;
  let base = 4 * slot_of t a b c in
  if Array.unsafe_get t.data base >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.data (base + 3)
  end
  else not_found

(* Tombstones count against the load factor: a chain can only terminate at
   a genuinely empty slot, so reusable-but-occupied slots still lengthen
   probes. *)
let ensure_room t = if 2 * (t.size + t.tombs + 1) > t.mask + 1 then grow t

let replace t a b c v =
  check_key a;
  ensure_room t;
  let base = 4 * slot_of t a b c in
  let k1 = Array.unsafe_get t.data base in
  if k1 < 0 then begin
    t.size <- t.size + 1;
    if k1 = tomb_mark then t.tombs <- t.tombs - 1
  end;
  Array.unsafe_set t.data base a;
  Array.unsafe_set t.data (base + 1) b;
  Array.unsafe_set t.data (base + 2) c;
  Array.unsafe_set t.data (base + 3) v

let find_or_insert t a b c ~default =
  check_key a;
  ensure_room t;
  let base = 4 * slot_of t a b c in
  let k1 = Array.unsafe_get t.data base in
  if k1 >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.data (base + 3)
  end
  else begin
    (* [default] must not touch the table: growth already happened above,
       so the probed slot stays valid until the store below. *)
    let v = default () in
    Array.unsafe_set t.data base a;
    Array.unsafe_set t.data (base + 1) b;
    Array.unsafe_set t.data (base + 2) c;
    Array.unsafe_set t.data (base + 3) v;
    t.size <- t.size + 1;
    if k1 = tomb_mark then t.tombs <- t.tombs - 1;
    v
  end

let remove t a b c =
  check_key a;
  let base = 4 * slot_of t a b c in
  if Array.unsafe_get t.data base >= 0 then begin
    Array.unsafe_set t.data base tomb_mark;
    t.size <- t.size - 1;
    t.tombs <- t.tombs + 1
  end

let clear t =
  Array.fill t.data 0 (Array.length t.data) empty_mark;
  t.size <- 0;
  t.tombs <- 0

let probes t = t.probes

let hits t = t.hits

let resizes t = t.resizes
