(** Cooperative cancellation tokens.

    A token is an atomic flag plus an optional absolute wall-clock
    deadline. It is created where a bound is decided (the service worker
    that admits a request, a CLI flag) and threaded {e down} through the
    estimation stack — [Dpa_power.Engine], the greedy optimizer loop,
    [Dpa_bdd.Robdd] node allocation, the simulator inner loops — each of
    which polls it at cheap intervals. When the token fires, the polling
    layer raises {!Dpa_error.Error} with a {!Dpa_error.Cancelled}
    payload, which the degradation ladder deliberately does {e not}
    catch: unlike {!Dpa_error.Budget_exceeded} (a retryable per-rung
    condition), cancellation means the whole request must stop.

    Tokens are domain-safe: {!cancel} may be called from any domain (a
    watchdog, a signal handler) while the working domain polls. The flag
    check is a single atomic load; deadline checks cost a
    [Unix.gettimeofday] and are strided by the callers that sit on hot
    paths. *)

type t

val none : t
(** The inert token: never cancelled, no deadline, and {!cancel} on it
    is ignored. Polling it is one physical-equality test. *)

val is_none : t -> bool

val create : ?deadline_in:float -> unit -> t
(** Fresh token; [deadline_in] is in seconds from now ([> 0]). Without
    it the token only fires via {!cancel}. *)

val cancel : ?reason:string -> t -> unit
(** Fires the flag (first caller's [reason] wins; default
    ["cancelled"]). Idempotent, any domain, async-signal-safe. *)

val deadline : t -> float
(** Absolute [Unix.gettimeofday] deadline, [infinity] when none. *)

val has_deadline : t -> bool

val flag_set : t -> bool
(** The explicit flag only — one atomic load, no syscall. *)

val is_cancelled : t -> bool
(** Flag {e or} expired deadline (pays a [gettimeofday] when a deadline
    is set — stride calls on hot paths). *)

val error_of : ?now:float -> t -> Dpa_error.t option
(** The structured error this token currently justifies: a
    [Cancelled { reason = Deadline _ }] when past the deadline, a
    [Cancelled { reason = Aborted _ }] when explicitly cancelled,
    [None] while still live. *)

val check : t -> unit
(** Raises [Dpa_error.Error (Cancelled _)] iff the token has fired
    (includes the deadline check). *)

val check_flag : t -> unit
(** Like {!check} but polls only the explicit flag — the constant-cost
    form for per-allocation hot paths; pair it with a strided {!check}
    so deadlines still fire. *)

val check_at : now:float -> t -> unit
(** {!check} against a caller-supplied clock reading, for loops that
    already paid the syscall. *)
