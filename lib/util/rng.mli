(** Deterministic pseudo-random number generator.

    A splitmix64 generator: fast, high quality for simulation purposes, and
    fully reproducible from a seed — every experiment in this repository is
    seeded so that tables and figures regenerate identically. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Generators with equal seeds
    produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing
    [t]. Useful for giving each sub-experiment its own stream. *)

val derive : base:int -> index:int -> t
(** [derive ~base ~index] is the [index]-th independent stream of the
    splittable seed [base] ([index >= 0]). Unlike {!split} it does not
    thread generator state, so sub-experiment [index] gets the same
    stream no matter how many siblings ran before it — the property
    that keeps per-cone Monte-Carlo fallback identical at any [--jobs]
    value. *)

val bernoulli_threshold : float -> int
(** [bernoulli_threshold p] is the integer [T] such that
    [bernoulli t p] decides exactly as [b < T], where [b] is the 53-bit
    uniform integer the draw consumes. The equivalence is exact, not
    approximate: [float t 1.0] is [b / 2^53] with both steps exact, so
    [b/2^53 < p  ≡  b < ceil (p·2^53) = T]. Used by
    {!fill_bernoulli_lanes} to replace a float division per draw with an
    integer compare without perturbing the stream. *)

val fill_bernoulli_lanes : t -> thresholds:int array -> lanes:int -> into:int array -> unit
(** [fill_bernoulli_lanes t ~thresholds ~lanes ~into] draws
    [lanes × Array.length thresholds] Bernoulli bits and packs them into
    [into]: bit [c] of [into.(k)] is draw [k] of lane [c]. Draw order is
    lane-major, threshold-minor — for each lane [c], one draw per
    threshold [k] in ascending [k] — which is exactly the order
    [Array.map (bernoulli t) probs] consumes per cycle, so a packed
    64-bit-word simulator sees the {e same} stream as a cycle-at-a-time
    one and advances [t] by the same number of draws. [lanes] must be in
    [1..63] (an OCaml [int] has 63 usable bits). [into] is overwritten,
    not accumulated into. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
