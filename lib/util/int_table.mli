(** Open-addressing hash table from non-negative ints to ints.

    The allocation-free replacement for [(int, int) Hashtbl.t] on the BDD
    and netlist hot paths: keys and values live unboxed in one packed int
    array (a probe touches a single cache line), capacity is a power of
    two, collisions are resolved by linear probing, and there is no
    deletion — the tables this serves (unique tables, memo tables, id
    maps) only ever grow. Values are arbitrary ints except [-1], which is
    reserved as the {!not_found} sentinel. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (minimum 16). *)

val length : t -> int

val not_found : int
(** [-1]; returned by {!find} when the key is absent. *)

val find : t -> int -> int
(** [find t k] is the value bound to [k], or {!not_found}. Raises
    [Invalid_argument] on a negative key. *)

val mem : t -> int -> bool

val replace : t -> int -> int -> unit
(** Insert or overwrite. *)

val find_or_insert : t -> int -> default:(unit -> int) -> int
(** Single-probe lookup-or-insert: the key is hashed once; on a miss
    [default ()] supplies the value, which is stored in the already-found
    slot. [default] must not modify the table. *)

val iter : (int -> int -> unit) -> t -> unit

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit
(** Empties the table; capacity and stats counters are retained. *)

(** {2 Instrumentation} *)

val probes : t -> int
(** Lookups performed (each counts once however long its probe chain). *)

val hits : t -> int

val resizes : t -> int
