type point =
  | Slow_cone
  | Worker_panic
  | Garbage_frame
  | Torn_frame
  | Drop_conn
  | Write_stall

exception Injected_panic

let all_points =
  [ Slow_cone; Worker_panic; Garbage_frame; Torn_frame; Drop_conn; Write_stall ]

let n_points = List.length all_points

let index = function
  | Slow_cone -> 0
  | Worker_panic -> 1
  | Garbage_frame -> 2
  | Torn_frame -> 3
  | Drop_conn -> 4
  | Write_stall -> 5

let point_to_string = function
  | Slow_cone -> "slow_cone"
  | Worker_panic -> "worker_panic"
  | Garbage_frame -> "garbage_frame"
  | Torn_frame -> "torn_frame"
  | Drop_conn -> "drop_conn"
  | Write_stall -> "write_stall"

let point_of_string = function
  | "slow_cone" -> Some Slow_cone
  | "worker_panic" -> Some Worker_panic
  | "garbage_frame" -> Some Garbage_frame
  | "torn_frame" -> Some Torn_frame
  | "drop_conn" -> Some Drop_conn
  | "write_stall" -> Some Write_stall
  | _ -> None

let default_param = function
  | Slow_cone -> 0.25
  | Write_stall -> 0.2
  | Torn_frame -> 0.02
  | Worker_panic | Garbage_frame | Drop_conn -> 0.0

(* Rates and params are only written under [mutex] by [configure]; reads
   from [fire]/[param] are unsynchronized float-array loads, which is
   benign — a racing reconfigure yields either the old or the new rate.
   The RNG stream is the part that must not tear, so decisions are drawn
   under the mutex. *)
let rates = Array.make n_points 0.0

let params = Array.make n_points 0.0

let counts = Array.make n_points 0

let armed = Atomic.make false

let mutex = Mutex.create ()

let rng = ref (Rng.create 1)

let configure ?(seed = 1) specs =
  Mutex.protect mutex @@ fun () ->
  List.iter
    (fun p ->
      let i = index p in
      rates.(i) <- 0.0;
      params.(i) <- default_param p;
      counts.(i) <- 0)
    all_points;
  List.iter
    (fun (p, rate, param) ->
      if rate < 0.0 || rate > 1.0 then invalid_arg "Fault.configure: rate must be in [0,1]";
      let i = index p in
      rates.(i) <- rate;
      (match param with Some v -> params.(i) <- v | None -> ()))
    specs;
  rng := Rng.create seed;
  Atomic.set armed (List.exists (fun (_, rate, _) -> rate > 0.0) specs)

let clear () = configure []

let active () = Atomic.get armed

let fire p =
  Atomic.get armed
  &&
  let i = index p in
  let rate = rates.(i) in
  rate > 0.0
  && Mutex.protect mutex (fun () ->
         let hit = Rng.float !rng 1.0 < rate in
         if hit then counts.(i) <- counts.(i) + 1;
         hit)

let param p = params.(index p)

let injection_counts () =
  Mutex.protect mutex (fun () -> List.map (fun p -> (p, counts.(index p))) all_points)

let sleep ?(cancel = Cancel.none) p =
  let total = param p in
  let slice = 0.01 in
  let stop = Unix.gettimeofday () +. total in
  let rec go () =
    Cancel.check cancel;
    let remaining = stop -. Unix.gettimeofday () in
    if remaining > 0.0 then begin
      (try Unix.sleepf (Float.min slice remaining) with Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

(* --------------------------------------------------------------- *)
(* Config-string parsing                                            *)
(* --------------------------------------------------------------- *)

let parse_spec s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty fault spec"
  | name :: rest -> (
    match point_of_string name with
    | None -> Error (Printf.sprintf "unknown fault point %S" name)
    | Some p -> (
      match rest with
      | [] -> Ok (p, 1.0, None)
      | [ rate ] -> (
        match float_of_string_opt rate with
        | Some r when r >= 0.0 && r <= 1.0 -> Ok (p, r, None)
        | _ -> Error (Printf.sprintf "bad rate %S for %s (want [0,1])" rate name))
      | [ rate; param ] -> (
        match (float_of_string_opt rate, float_of_string_opt param) with
        | Some r, Some v when r >= 0.0 && r <= 1.0 && v >= 0.0 -> Ok (p, r, Some v)
        | _ -> Error (Printf.sprintf "bad rate/param %S:%S for %s" rate param name))
      | _ -> Error (Printf.sprintf "too many fields in fault spec for %s" name)))

let parse_config s =
  let specs =
    List.filter (fun part -> String.trim part <> "") (String.split_on_char ',' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
      match parse_spec part with Ok spec -> go (spec :: acc) rest | Error e -> Error e)
  in
  go [] specs

let from_env () =
  match Sys.getenv_opt "DPA_FAULT" with
  | None | Some "" -> Ok ()
  | Some config -> (
    match parse_config config with
    | Error e -> Error (Printf.sprintf "DPA_FAULT: %s" e)
    | Ok specs ->
      let seed =
        match Sys.getenv_opt "DPA_FAULT_SEED" with
        | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
        | None -> 1
      in
      configure ~seed specs;
      Ok ())
