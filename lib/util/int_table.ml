(* Slots are packed [key; value] pairs in one int array so a probe touches a
   single cache line. Capacity is a power of two; linear probing; no
   deletion, hence no tombstones. *)

type t = {
  mutable data : int array; (* stride 2: key, value; key = -1 marks empty *)
  mutable mask : int; (* capacity - 1, in slots *)
  mutable size : int;
  mutable probes : int;
  mutable hits : int;
  mutable resizes : int;
}

let not_found = -1

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 16

let create ?(capacity = 64) () =
  let cap = round_pow2 capacity in
  {
    data = Array.make (2 * cap) (-1);
    mask = cap - 1;
    size = 0;
    probes = 0;
    hits = 0;
    resizes = 0;
  }

let length t = t.size

(* Multiplicative hashing (odd 62-bit constant, splitmix64 family); the low
   bits of the product alone cluster for sequential keys, so fold the high
   bits back in. *)
let hash k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let insert_raw data mask k v =
  let rec go i =
    let base = 2 * i in
    if Array.unsafe_get data base < 0 then begin
      Array.unsafe_set data base k;
      Array.unsafe_set data (base + 1) v
    end
    else if Array.unsafe_get data base = k then Array.unsafe_set data (base + 1) v
    else go ((i + 1) land mask)
  in
  go (hash k land mask)

let grow t =
  let cap = (t.mask + 1) * 2 in
  let data = Array.make (2 * cap) (-1) in
  let mask = cap - 1 in
  for i = 0 to t.mask do
    let base = 2 * i in
    let k = t.data.(base) in
    if k >= 0 then insert_raw data mask k t.data.(base + 1)
  done;
  t.data <- data;
  t.mask <- mask;
  t.resizes <- t.resizes + 1

let check_key k = if k < 0 then invalid_arg "Int_table: keys must be non-negative"

(* Probe for [k]; returns the slot index holding it or the first empty slot. *)
let slot_of t k =
  t.probes <- t.probes + 1;
  let data = t.data and mask = t.mask in
  let rec go i =
    let key = Array.unsafe_get data (2 * i) in
    if key = k || key < 0 then i else go ((i + 1) land mask)
  in
  go (hash k land mask)

let find t k =
  check_key k;
  let i = slot_of t k in
  if Array.unsafe_get t.data (2 * i) = k then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.data ((2 * i) + 1)
  end
  else not_found

let mem t k = find t k >= 0

let ensure_room t = if 2 * (t.size + 1) > t.mask + 1 then grow t

let replace t k v =
  check_key k;
  ensure_room t;
  let i = slot_of t k in
  let base = 2 * i in
  if Array.unsafe_get t.data base < 0 then t.size <- t.size + 1;
  Array.unsafe_set t.data base k;
  Array.unsafe_set t.data (base + 1) v

let find_or_insert t k ~default =
  check_key k;
  ensure_room t;
  let i = slot_of t k in
  let base = 2 * i in
  if Array.unsafe_get t.data base = k then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.data (base + 1)
  end
  else begin
    (* [default] must not touch the table: the slot stays valid because
       growth already happened above and insertion is deferred to here. *)
    let v = default () in
    Array.unsafe_set t.data base k;
    Array.unsafe_set t.data (base + 1) v;
    t.size <- t.size + 1;
    v
  end

let iter f t =
  for i = 0 to t.mask do
    let base = 2 * i in
    let k = t.data.(base) in
    if k >= 0 then f k t.data.(base + 1)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) (-1);
  t.size <- 0

let probes t = t.probes

let hits t = t.hits

let resizes t = t.resizes
