(** Minimal JSON tree: recursive-descent parser and compact encoder.

    Started life as a test-only reader that validated the observability
    emitters through an independent parser; promoted here because the
    service wire protocol ([Dpa_service.Protocol]) needs the same tree on
    both ends of a socket. Accepts the full JSON grammar; the only
    simplification is that [\uXXXX] escapes above ASCII decode to ['?'],
    which none of our emitters produce.

    Numbers are carried as [float]. {!encode} prints them with the
    shortest decimal representation that round-trips through
    [float_of_string], so a probability that crosses the wire and comes
    back parses to the {e bit-identical} float — the property the
    service's "same answer as the one-shot CLI" guarantee rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} (with a character offset) on malformed input,
    including trailing garbage after the value. *)

val encode : t -> string
(** Compact single-line encoding (no insignificant whitespace, no
    trailing newline) — one encoded value is one line of the service's
    newline-delimited wire protocol. [NaN] and infinities encode as
    [null]. *)

(** {2 Accessors}

    All raise {!Parse_error} on shape mismatch, so a consumer failure
    points at the emitter bug rather than a generic match failure. *)

val member : string -> t -> t

val member_opt : string -> t -> t option
(** [None] when the key is absent {e or} the value is not an object. *)

val to_list : t -> t list

val to_float : t -> float

val to_int : t -> int

val to_string : t -> string

val to_bool : t -> bool
