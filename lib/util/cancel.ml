(* A token is deliberately tiny: one atomic cell for the explicit flag
   (None = live, Some reason = fired) plus two immutable floats for the
   deadline. Everything a polling hot path touches is a single load. *)

type t = {
  fired : string option Atomic.t;
  deadline : float;  (* absolute Unix.gettimeofday; infinity = none *)
  started : float;  (* creation time, for elapsed_s in error reports *)
}

let none = { fired = Atomic.make None; deadline = infinity; started = 0.0 }

let is_none t = t == none

let create ?deadline_in () =
  match deadline_in with
  | None -> { fired = Atomic.make None; deadline = infinity; started = 0.0 }
  | Some d ->
    if d <= 0.0 then invalid_arg "Cancel.create: deadline_in must be > 0";
    let now = Unix.gettimeofday () in
    { fired = Atomic.make None; deadline = now +. d; started = now }

let cancel ?(reason = "cancelled") t =
  if not (is_none t) then
    (* first reason wins; losing the race is fine — some reason sticks *)
    ignore (Atomic.compare_and_set t.fired None (Some reason))

let deadline t = t.deadline

let has_deadline t = t.deadline < infinity

let flag_set t = Atomic.get t.fired <> None

let is_cancelled t =
  Atomic.get t.fired <> None
  || (t.deadline < infinity && Unix.gettimeofday () > t.deadline)

let error_of ?now t =
  match Atomic.get t.fired with
  | Some reason -> Some (Dpa_error.Cancelled (Dpa_error.Aborted reason))
  | None ->
    if t.deadline = infinity then None
    else
      let now = match now with Some n -> n | None -> Unix.gettimeofday () in
      if now > t.deadline then
        Some
          (Dpa_error.Cancelled
             (Dpa_error.Deadline
                { limit_s = t.deadline -. t.started; elapsed_s = now -. t.started }))
      else None

let check_at ~now t =
  match error_of ~now t with None -> () | Some e -> Dpa_error.error e

let check t =
  if not (is_none t) then
    match error_of t with None -> () | Some e -> Dpa_error.error e

let check_flag t =
  match Atomic.get t.fired with
  | None -> ()
  | Some reason -> Dpa_error.error (Dpa_error.Cancelled (Dpa_error.Aborted reason))
