(** Deterministic fault injection for chaos testing.

    A process-wide registry of injection points, each armed with a firing
    probability and an optional parameter (a duration for the slow
    points). Production code asks {!fire} at the instrumented sites —
    engine cone builds, the service worker loop, the server write path —
    and the call is a single atomic load when injection is disabled, so
    the instrumentation is free in normal operation.

    Configuration is explicit ({!configure}) or environment-driven
    ({!from_env}: [DPA_FAULT="point:rate[:param],..."] with
    [DPA_FAULT_SEED] for the decision stream), which is how the chaos
    soak arms a server it spawns. Decisions come from a seeded
    {!Dpa_util.Rng} stream, so a soak run is reproducible. *)

type point =
  | Slow_cone  (** stall an engine cone build (param: seconds, default 0.25) *)
  | Worker_panic  (** kill a service worker domain mid-request *)
  | Garbage_frame  (** client sends an unparseable request line *)
  | Torn_frame  (** client splits a request line across delayed writes *)
  | Drop_conn  (** client drops its connection mid-batch *)
  | Write_stall  (** server stops flushing a connection (param: seconds, default 0.2) *)

exception Injected_panic
(** Raised by the service worker loop when {!fire}[ Worker_panic] says
    so. Deliberately outside the {!Dpa_error} taxonomy: it must escape
    the per-request error handling and kill the domain, the way a real
    crash would. *)

val all_points : point list

val point_to_string : point -> string

val point_of_string : string -> point option

val configure : ?seed:int -> (point * float * float option) list -> unit
(** [(point, rate, param)] triples; rate in [\[0,1\]], [param] overrides
    the point's default parameter. Replaces the whole configuration.
    An empty list disables injection. *)

val parse_config : string -> ((point * float * float option) list, string) result
(** Parses ["slow_cone:0.1,worker_panic:0.02:0,write_stall:0.05:0.5"];
    the optional third field is the parameter. *)

val from_env : unit -> (unit, string) result
(** Arms the registry from [DPA_FAULT] / [DPA_FAULT_SEED]; does nothing
    (and succeeds) when [DPA_FAULT] is unset or empty. *)

val clear : unit -> unit

val active : unit -> bool
(** True iff any point has a non-zero rate. One atomic load. *)

val fire : point -> bool
(** Rolls the dice for one arrival at this point. Always [false] when
    not {!active}. Thread-safe. *)

val param : point -> float
(** The armed parameter (or the point's default when not set). *)

val sleep : ?cancel:Cancel.t -> point -> unit
(** Sleeps for [param point] seconds in short slices, polling [cancel]
    between slices — an injected stall stays cooperatively cancellable,
    which is exactly what the watchdog-rescue path needs to exercise. *)

val injection_counts : unit -> (point * int) list
(** How often each point has fired since the last {!configure}/{!clear}. *)
