(* Minimal recursive-descent JSON parser and compact encoder. Promoted
   from the test suite so the observability tests and the service wire
   protocol share one reader. Accepts the full JSON grammar; the only
   simplification is that \uXXXX escapes above ASCII decode to '?',
   which our emitters never produce. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %C, found %C" c d)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub text !pos k = word then begin
      pos := !pos + k;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let numeral = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeral text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}' in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters after value";
  v

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal that parses back to the same bits: probabilities
   survive an encode/parse round trip unchanged, which the service's
   bit-identity guarantee depends on. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else begin
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    end
  end

let encode v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (float_repr f)
    | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          go x)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* accessors; all raise [Parse_error] on shape mismatch so a consumer
   failure points at the emitter bug rather than an OCaml match error *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "no member %S" key)))
  | _ -> raise (Parse_error (Printf.sprintf "member %S of non-object" key))

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function
  | Arr xs -> xs
  | _ -> raise (Parse_error "expected array")

let to_float = function
  | Num f -> f
  | _ -> raise (Parse_error "expected number")

let to_int v = int_of_float (to_float v)

let to_string = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let to_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected boolean")
