(** Bounded work-stealing domain pool with deterministic ordered fan-out.

    One pool owns [jobs - 1] resident worker domains; the submitting
    domain is the remaining participant, so [jobs = 1] runs everything
    inline and spawns nothing. A parallel region ({!map} / {!reduce})
    partitions its index space into per-participant ranges; an idle
    participant steals the upper half of the fullest remaining range, so
    irregular task costs (one hostile BDD cone among cheap siblings)
    still load-balance.

    Determinism contract: {!map} always returns results in task-index
    order and {!reduce} folds them in task-index order, whatever
    interleaving executed them — callers that keep per-task work
    self-contained (a private [Dpa_bdd.Robdd] manager per task) get
    bit-identical results at any [jobs] value. The pool is a scheduling
    device only; it never reorders observable effects of the merge.

    The pool layers below [Dpa_obs]: it keeps plain counters
    ({!stats}) and leaves publishing them as metrics to callers. *)

type t
(** A pool of domains. Create once, reuse across many regions; domains
    are parked on a condition variable between regions. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val create : jobs:int -> t
(** Spawns [jobs - 1] worker domains. [jobs] must be in [1 .. 126]
    (the OCaml runtime caps live domains at 128) or [Invalid_argument]
    is raised. *)

val jobs : t -> int
(** Participant count (workers + submitter), as given to {!create}. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. The pool must be idle. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] even on exceptions. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] evaluates [f 0 .. f (n-1)] across the pool's domains
    and returns [[| f 0; …; f (n-1) |]] — results in index order
    regardless of execution order.

    If one or more tasks raise, remaining tasks are abandoned
    (best-effort) and the exception of the {e lowest-indexed} failed
    task is re-raised in the submitting domain with its backtrace.

    Nested use is rejected: calling [map] (on any pool) from inside a
    task raises [Invalid_argument] — tasks must be leaves. One region
    runs at a time per pool; concurrent submitters serialize.

    [f] runs on an arbitrary participant domain. Anything it touches
    must be domain-safe or task-private. *)

val reduce : t -> int -> map:(int -> 'a) -> fold:('acc -> 'a -> 'acc) -> init:'acc -> 'acc
(** Ordered reduce: [fold (… (fold init (map 0)) …) (map (n-1))] with
    the [map] calls run in parallel as {!map} and the [fold] applied
    sequentially in index order on the submitter — deterministic even
    for non-commutative [fold]. *)

type stats = {
  tasks : int;  (** tasks executed over the pool's lifetime *)
  steals : int;  (** range-steal operations that moved work *)
}

val stats : t -> stats
(** Cumulative counters, for publishing as [par.tasks] / [par.steals]
    metrics by layers that may depend on [Dpa_obs]. *)
