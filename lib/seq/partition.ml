module Netlist = Dpa_logic.Netlist
module Robdd = Dpa_bdd.Robdd

type t = {
  fvs : int list;
  ff_probs : float array;
  node_probs : float array;
  iterations : int;
}

(* Topological order of the non-FVS flip-flops in the cut s-graph. *)
let ff_topo_order sn fvs =
  let g = Sgraph.of_seq_netlist sn in
  List.iter (fun v -> if Sgraph.is_alive g v then Sgraph.delete g v) fvs;
  let alive = Sgraph.alive_vertices g in
  let indeg = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace indeg v (List.length (Sgraph.pred g v))) alive;
  let queue = Queue.create () in
  List.iter (fun v -> if Hashtbl.find indeg v = 0 then Queue.add v queue) alive;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add s queue)
      (Sgraph.succ g v)
  done;
  assert (List.length !order = List.length alive);
  List.rev !order

let probabilities ?(symmetry = true) ?(cut_prob = 0.5) ?(refine = 0) ~input_probs sn =
  Dpa_obs.Trace.with_span "seq.partition"
    ~args:
      [
        ("ffs", Dpa_obs.Trace.Int (Seq_netlist.n_ffs sn));
        ("refine", Dpa_obs.Trace.Int refine);
      ]
  @@ fun () ->
  let core = Seq_netlist.comb sn in
  let n_real = Seq_netlist.n_real_inputs sn in
  if Array.length input_probs <> n_real then
    invalid_arg "Partition.probabilities: input_probs must cover the real inputs";
  let n_ff = Seq_netlist.n_ffs sn in
  let flops = Seq_netlist.ffs sn in
  let { Mfvs.fvs; _ } = Mfvs.solve ~symmetry (Sgraph.of_seq_netlist sn) in
  let topo = ff_topo_order sn fvs in
  (* BDDs over all core inputs (real PIs and Q pseudo-inputs) are built
     once; only the level probabilities change between passes. *)
  let built = Dpa_bdd.Build.of_netlist core in
  let m = built.Dpa_bdd.Build.manager in
  let level_of_pos = Array.make (Netlist.num_inputs core) 0 in
  Array.iteri (fun lvl pos -> level_of_pos.(pos) <- lvl) built.Dpa_bdd.Build.order;
  let level_probs = Array.make (Robdd.nvars m) 0.5 in
  let set_input_prob pos p = level_probs.(level_of_pos.(pos)) <- p in
  Array.iteri set_input_prob input_probs;
  let ff_probs = Array.make n_ff cut_prob in
  let prob_of_node id = Robdd.probability m level_probs built.Dpa_bdd.Build.roots.(id) in
  let pass () =
    for k = 0 to n_ff - 1 do
      set_input_prob (n_real + k) ff_probs.(k)
    done;
    List.iter
      (fun v ->
        ff_probs.(v) <- prob_of_node flops.(v).Seq_netlist.data;
        set_input_prob (n_real + v) ff_probs.(v))
      topo
  in
  pass ();
  let iterations = ref 0 in
  for _ = 1 to refine do
    incr iterations;
    (* feed every cut flip-flop its computed D probability and repropagate *)
    List.iter (fun v -> ff_probs.(v) <- prob_of_node flops.(v).Seq_netlist.data) fvs;
    pass ()
  done;
  let node_probs = Array.map (fun root -> Robdd.probability m level_probs root) built.Dpa_bdd.Build.roots in
  { fvs; ff_probs = Array.copy ff_probs; node_probs; iterations = !iterations }
