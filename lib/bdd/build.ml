module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Int_table = Dpa_util.Int_table

type t = {
  manager : Robdd.manager;
  roots : Robdd.node array;
  order : int array;
}

let build_in ~order t m =
  let ins = Netlist.inputs t in
  (* input node id → level *)
  let level_of_input = Int_table.create ~capacity:(2 * Array.length ins) () in
  Array.iteri (fun lvl pos -> Int_table.replace level_of_input ins.(pos) lvl) order;
  let roots = Array.make (Netlist.size t) Robdd.bdd_false in
  let reduce_nary apply xs neutral =
    Array.fold_left (fun acc x -> apply m acc roots.(x)) neutral xs
  in
  Netlist.iter_nodes
    (fun i g ->
      roots.(i) <-
        (match g with
        | Gate.Input -> Robdd.var m (Int_table.find level_of_input i)
        | Gate.Const b -> if b then Robdd.bdd_true else Robdd.bdd_false
        | Gate.Buf x -> roots.(x)
        | Gate.Not x -> Robdd.neg m roots.(x)
        | Gate.And xs -> reduce_nary Robdd.apply_and xs Robdd.bdd_true
        | Gate.Or xs -> reduce_nary Robdd.apply_or xs Robdd.bdd_false
        | Gate.Xor (a, b) -> Robdd.apply_xor m roots.(a) roots.(b)))
    t;
  { manager = m; roots; order }

let fresh_manager ~order t =
  let ins = Netlist.inputs t in
  if Array.length order <> Array.length ins then
    invalid_arg "Build.of_netlist: order length must equal the input count";
  Robdd.create_sized ~nvars:(Array.length ins) ~cache_capacity:(4 * Netlist.size t)

let of_netlist ?order t =
  let order = match order with Some o -> o | None -> Ordering.reverse_topological t in
  build_in ~order t (fresh_manager ~order t)

let output_roots t b = Array.map (fun (_, d) -> b.roots.(d)) (Netlist.outputs t)

let shared_output_size t b =
  Robdd.shared_size b.manager (Array.to_list (output_roots t b))

let shared_all_size t b =
  let gate_roots = ref [] in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input -> ()
      | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        gate_roots := b.roots.(i) :: !gate_roots)
    t;
  Robdd.shared_size b.manager !gate_roots

let bounded_size ?order ~max_nodes t =
  let order = match order with Some o -> o | None -> Ordering.reverse_topological t in
  let m = fresh_manager ~order t in
  Robdd.set_budget ~max_nodes m;
  match build_in ~order t m with
  | b -> Some (shared_all_size t b)
  | exception Dpa_util.Dpa_error.Budget_exceeded _ -> None

let best_order t candidates =
  match candidates with
  | [] -> invalid_arg "Build.best_order: no candidate orders"
  | first :: rest ->
    let score (name, order) =
      let b = of_netlist ~order t in
      (name, order, shared_all_size t b)
    in
    List.fold_left
      (fun (bn, bo, bs) cand ->
        let n, o, s = score cand in
        if s < bs then (n, o, s) else (bn, bo, bs))
      (score first) rest

let probabilities_of_built ~input_probs b =
  let level_probs = Array.map (fun pos -> input_probs.(pos)) b.order in
  (* one shared memo across every root: shared BDD structure is priced once *)
  Robdd.probabilities b.manager level_probs b.roots

let probabilities ?order ~input_probs t =
  if Array.length input_probs <> Netlist.num_inputs t then
    invalid_arg "Build.probabilities: input_probs length mismatch";
  let b = of_netlist ?order t in
  probabilities_of_built ~input_probs b
