(** Static variable-order refinement by adjacent-swap hill climbing.

    A lightweight alternative to in-place dynamic reordering (sifting):
    at this library's block sizes a full rebuild costs well under a
    millisecond, so the optimizer simply rebuilds under candidate orders —
    swapping adjacent variables (the same move sifting makes) and keeping
    improvements until a pass makes none. Used to squeeze the paper's
    reverse-topological seed order further, and to quantify how close that
    heuristic already is to a local optimum. *)

type result = {
  order : int array;
  nodes : int;  (** shared node count of all gates under [order] *)
  initial_nodes : int;  (** cost of the start order (or the seed given) *)
  swaps_accepted : int;
  passes : int;
  oracle_calls : int;  (** cost-oracle invocations — exactly one per candidate swap *)
}

val refine : ?max_passes:int -> Dpa_logic.Netlist.t -> int array -> result
(** Hill-climbs from the given order (default at most 8 passes over all
    adjacent pairs). The result is never worse than the input. *)

val refine_cost :
  ?max_passes:int -> ?initial_cost:int -> cost:(int array -> int) -> int array -> result
(** The same hill climb over an arbitrary cost oracle — the degradation
    ladder passes a {e budgeted} oracle ({!Build.bounded_size}) that
    returns [max_int] for orders whose build would blow the node budget,
    so the search can escape an infeasible start order without ever
    paying more than the budget per probe. [initial_cost] seeds the
    incumbent without probing the start order — callers that already
    know it (the ladder reaches reordering {e because} the start order
    blew its budget, i.e. cost [max_int]) save one full oracle call. *)

val refine_bounded :
  ?max_passes:int ->
  ?initial_cost:int ->
  max_nodes:int ->
  Dpa_logic.Netlist.t ->
  int array ->
  result option
(** [refine] under a node budget: every candidate build is capped at
    [max_nodes] manager nodes. [None] when no explored order (the start
    order included) fits the budget. *)
