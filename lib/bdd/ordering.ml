module Netlist = Dpa_logic.Netlist
module Topo = Dpa_logic.Topo
module Int_table = Dpa_util.Int_table

(* Input positions in the order they are first used by the paper's gate
   traversal; unused inputs appended in declaration order. *)
let first_visit t =
  let ins = Netlist.inputs t in
  let position = Int_table.create ~capacity:(2 * Array.length ins) () in
  Array.iteri (fun k id -> Int_table.replace position id k) ins;
  let seen = Array.make (Array.length ins) false in
  let acc = ref [] in
  let use id =
    let k = Int_table.find position id in
    if k >= 0 && not seen.(k) then begin
      seen.(k) <- true;
      acc := k :: !acc
    end
  in
  Array.iter (fun g -> Array.iter use (Netlist.fanins t g)) (Topo.gate_traversal t);
  Array.iteri (fun k _ -> if not seen.(k) then acc := k :: !acc) ins;
  Array.of_list (List.rev !acc)

let reverse_topological t =
  let fv = first_visit t in
  let n = Array.length fv in
  Array.init n (fun l -> fv.(n - 1 - l))

let topological = first_visit

let declaration t = Array.init (Netlist.num_inputs t) Fun.id

let disturbed t =
  let ord = reverse_topological t in
  let n = Array.length ord in
  if n < 3 then ord
  else begin
    (* hoist the bottom variable to position 1, "unnaturally sandwiching"
       it between the top variable and the rest *)
    let bottom = ord.(n - 1) in
    let out = Array.make n ord.(0) in
    out.(1) <- bottom;
    for l = 1 to n - 2 do
      out.(l + 1) <- ord.(l)
    done;
    out
  end

let shuffled rng t =
  let ord = declaration t in
  Dpa_util.Rng.shuffle rng ord;
  ord
