(** Building BDDs for every node of a netlist under a chosen variable
    order, and computing exact signal probabilities from them — the power
    estimation back end of the paper's flow. *)

type t = {
  manager : Robdd.manager;
  roots : Robdd.node array;  (** per netlist node id *)
  order : int array;  (** level → input position *)
}

val of_netlist : ?order:int array -> Dpa_logic.Netlist.t -> t
(** Builds the BDD of every node bottom-up. [order] defaults to
    {!Ordering.reverse_topological}. *)

val bounded_size : ?order:int array -> max_nodes:int -> Dpa_logic.Netlist.t -> int option
(** All-gates shared node count of the build under [order], or [None] if
    the build would allocate [max_nodes] manager nodes or more — computed
    with a budgeted manager, so a hostile order costs at most [max_nodes]
    allocations instead of hanging. This is the cost oracle reorder passes
    use to search for a feasible order once the unbounded build has already
    blown its budget. *)

val output_roots : Dpa_logic.Netlist.t -> t -> Robdd.node array
(** BDD roots of the primary outputs, declaration order. *)

val shared_output_size : Dpa_logic.Netlist.t -> t -> int
(** Node count of the shared graph of all primary outputs — the Fig. 10
    comparison metric. *)

val shared_all_size : Dpa_logic.Netlist.t -> t -> int
(** Node count of the shared graph of {e all} circuit nodes (the paper
    builds BDDs "for all (non input) circuit nodes"). *)

val best_order :
  Dpa_logic.Netlist.t ->
  (string * int array) list ->
  string * int array * int
(** Builds the netlist under each candidate order and returns the one with
    the smallest all-gates shared node count (name, order, nodes). A cheap
    static alternative to dynamic reordering: at this library's block
    sizes a rebuild costs well under a millisecond. Raises
    [Invalid_argument] on an empty candidate list. *)

val probabilities : ?order:int array -> input_probs:float array ->
  Dpa_logic.Netlist.t -> float array
(** [probabilities ~input_probs t] is the exact signal probability of every
    node of [t]; [input_probs] is indexed by input position. This is
    "Compute Signal Probabilities Using Enhanced BDD" in the paper's
    Fig. 6. *)

val probabilities_of_built : input_probs:float array -> t -> float array
(** Same, over an already-built {!t} — all roots are evaluated under one
    shared memo, so BDD structure shared between outputs is priced once. *)
