(** BDD-based combinational equivalence checking.

    Every transformation in this repository (optimization, resynthesis,
    inverter removal composed with its boundary inverters, technology
    mapping) claims to preserve functionality; this checker proves it for
    a given pair of netlists — unlike truth-table comparison it scales
    past 20 inputs, since functions with shared structure build compact
    shared BDDs. Inputs are matched by {e position} (the netlists must
    agree on input count) and outputs by position as well. *)

type verdict =
  | Equivalent
  | Differ of {
      output : int;  (** first differing output position *)
      witness : bool array;  (** input vector (by position) exhibiting it *)
    }
  | Interface_mismatch of string

val check : Dpa_logic.Netlist.t -> Dpa_logic.Netlist.t -> verdict
(** Splices both netlists over one shared set of input variables, builds
    the miter XOR per output pair and compares against the constant-false
    BDD; a difference yields a satisfying witness. *)

val check_exn : Dpa_logic.Netlist.t -> Dpa_logic.Netlist.t -> unit
(** Raises {!Dpa_util.Dpa_error.Error} with a readable message on any
    non-equivalence ([Invalid_input] for an interface mismatch,
    [Internal] for a functional difference). *)
