module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

type verdict =
  | Equivalent
  | Differ of {
      output : int;
      witness : bool array;
    }
  | Interface_mismatch of string

(* Splice [src]'s gates into [dst], mapping src input k to [inputs].(k);
   returns the dst ids of src's output drivers. *)
let splice dst inputs src =
  let mapping = Array.make (Netlist.size src) (-1) in
  Array.iteri (fun k id -> mapping.(id) <- inputs.(k)) (Netlist.inputs src);
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input -> ()
      | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        mapping.(i) <- Netlist.add_gate dst (Gate.map_fanins (fun x -> mapping.(x)) g))
    src;
  Array.map (fun (_, d) -> mapping.(d)) (Netlist.outputs src)

(* Any satisfying assignment of a non-false node, by level. *)
let any_sat m root nvars =
  let assignment = Array.make nvars false in
  let rec walk n =
    if n <> Robdd.bdd_true then begin
      let l = Robdd.level m n in
      if Robdd.high m n <> Robdd.bdd_false then begin
        assignment.(l) <- true;
        walk (Robdd.high m n)
      end
      else walk (Robdd.low m n)
    end
  in
  walk root;
  assignment

let check a b =
  if Netlist.num_inputs a <> Netlist.num_inputs b then
    Interface_mismatch
      (Printf.sprintf "input counts differ: %d vs %d" (Netlist.num_inputs a)
         (Netlist.num_inputs b))
  else if Netlist.num_outputs a <> Netlist.num_outputs b then
    Interface_mismatch
      (Printf.sprintf "output counts differ: %d vs %d" (Netlist.num_outputs a)
         (Netlist.num_outputs b))
  else begin
    let n = Netlist.num_inputs a in
    let miter = Netlist.create ~name:"miter" () in
    let inputs = Array.init n (fun _ -> Netlist.add_input miter) in
    let outs_a = splice miter inputs a in
    let outs_b = splice miter inputs b in
    Array.iteri
      (fun k da -> Netlist.add_output miter (Printf.sprintf "x%d" k) (
           Netlist.add_gate miter (Gate.Xor (da, outs_b.(k)))))
      outs_a;
    (* identity order: BDD level = input position *)
    let built = Build.of_netlist ~order:(Array.init n Fun.id) miter in
    let outs = Netlist.outputs miter in
    let rec scan k =
      if k >= Array.length outs then Equivalent
      else begin
        let _, d = outs.(k) in
        let root = built.Build.roots.(d) in
        if root = Robdd.bdd_false then scan (k + 1)
        else Differ { output = k; witness = any_sat built.Build.manager root n }
      end
    in
    scan 0
  end

let check_exn a b =
  match check a b with
  | Equivalent -> ()
  | Interface_mismatch msg ->
    Dpa_util.Dpa_error.error (Dpa_util.Dpa_error.Invalid_input ("Equiv.check_exn: " ^ msg))
  | Differ { output; witness } ->
    let bits = String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") witness)) in
    Dpa_util.Dpa_error.error
      (Dpa_util.Dpa_error.Internal
         (Printf.sprintf "Equiv.check_exn: output %d differs on input vector %s" output bits))
