module Cancel = Dpa_util.Cancel
module Dpa_error = Dpa_util.Dpa_error

type result = {
  swaps : int;
  vars_sifted : int;
  nodes_before : int;
  nodes_after : int;
  reclaimed : int;
  allocated : int;
}

(* registry cells are resolved at module init — resolving lazily from
   inside a sift call would race when several domains sift their shard
   managers concurrently *)
let mc name help = Dpa_obs.Metrics.counter ~help name

let c_swaps = mc "bdd.sift.swaps" "adjacent-level swaps performed by the sifting reorderer"

let c_before = mc "bdd.sift.nodes_before" "live nodes entering sift sessions (summed)"

let c_after = mc "bdd.sift.nodes_after" "live nodes leaving sift sessions (summed)"

(* Minimal int vector for the per-level id lists. Deletion is lazy: a
   node that dies at an untouched level stays in its level's vector and
   is filtered out (by its retired [raw_level]) the next time that level
   is swapped — ids are never reused, so a stale entry can only denote
   the dead node itself. *)
type vec = { mutable a : int array; mutable len : int }

let vec_make () = { a = Array.make 16 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.a then begin
    let a' = Array.make (2 * v.len) 0 in
    Array.blit v.a 0 a' 0 v.len;
    v.a <- a'
  end;
  Array.unsafe_set v.a v.len x;
  v.len <- v.len + 1

type session = {
  m : Robdd.manager;
  nv : int;
  order : int array; (* the caller's array, permuted in place per swap *)
  levels : vec array;
  lsize : int array; (* exact live count per level *)
  mutable refc : int array; (* in-edges from live nodes + one pin per root *)
  cancel : Cancel.t;
  deadline : float;
  started : float;
  max_swaps : int;
  max_new_nodes : int;
  base_n : int; (* total_nodes at session start, for the allocation cap *)
  mutable swaps : int;
}

(* Checked only at swap boundaries: between two checks the store may be
   mid-rewire, but at a boundary every invariant (unique-table
   consistency, exact refcounts, reduced nodes) holds — so both the
   budget raises below and [Cancelled] leave the manager fully usable. *)
let checkpoint s =
  Cancel.check s.cancel;
  if s.deadline < infinity then begin
    let now = Unix.gettimeofday () in
    if now > s.deadline then
      Dpa_error.budget_exceeded ~context:"sift" ~resource:Dpa_error.Wall_clock
        ~limit:(s.deadline -. s.started) ~spent:(now -. s.started) ()
  end;
  if s.swaps >= s.max_swaps then
    Dpa_error.budget_exceeded ~context:"sift.max_swaps" ~resource:Dpa_error.Bdd_nodes
      ~limit:(float_of_int s.max_swaps) ~spent:(float_of_int s.swaps) ();
  let allocated = Robdd.total_nodes s.m - s.base_n in
  if allocated >= s.max_new_nodes then
    Dpa_error.budget_exceeded ~context:"sift.max_new_nodes" ~resource:Dpa_error.Bdd_nodes
      ~limit:(float_of_int s.max_new_nodes) ~spent:(float_of_int allocated) ()

let incref s n = if n > 1 then s.refc.(n) <- s.refc.(n) + 1

(* Kills [n] when its last reference goes, cascading into its children.
   A node dying at [ylevel] (the lower level of the in-flight swap) must
   NOT remove its unique entry: all entries of the two touched levels
   were removed when the swap opened, and its old key may since have
   been re-bound to a freshly created replacement node — removing by key
   would clobber the newcomer. Its level count is not adjusted either
   (both touched levels are recounted when the swap closes). Deaths at
   deeper levels own their table entry and their level count. *)
let rec decref s ylevel n =
  if n > 1 then begin
    let r = s.refc.(n) - 1 in
    s.refc.(n) <- r;
    if r = 0 then begin
      let lv = Robdd.raw_level s.m n in
      let l0 = Robdd.low s.m n and h0 = Robdd.high s.m n in
      if lv <> ylevel then begin
        Robdd.unique_remove s.m lv l0 h0;
        s.lsize.(lv) <- s.lsize.(lv) - 1
      end;
      Robdd.retire_node s.m n;
      decref s ylevel l0;
      decref s ylevel h0
    end
  end

let ensure_refc s id =
  if id >= Array.length s.refc then begin
    let a' = Array.make (max (2 * Array.length s.refc) (id + 1)) 0 in
    Array.blit s.refc 0 a' 0 (Array.length s.refc);
    s.refc <- a'
  end

(* Find-or-create a node at level [lv] during a swap. Unlike [Robdd.mk]
   this never budget-checks (the swap must finish rewiring; the session
   enforces [max_new_nodes] at the next boundary) and pushes creations
   onto the new lower-level vector. The find can legitimately hit a
   case-A node already re-homed at [lv]: after the swap [lv] tests the
   same variable the case-A node tests, so equal keys denote equal
   functions and sharing them is exactly what canonicity requires. *)
let mk_at s new_y lv a b =
  if a = b then a
  else begin
    let found = Robdd.unique_find s.m lv a b in
    if found >= 0 then found
    else begin
      let id = Robdd.alloc_unchecked s.m lv a b in
      ensure_refc s id;
      incref s a;
      incref s b;
      Robdd.unique_insert s.m lv a b id;
      vec_push new_y id;
      id
    end
  end

(* Rudell adjacent swap of levels (l, l+1): only nodes at these two
   levels are rewired; every live node id keeps denoting the same
   Boolean function (which is why ite-cache entries and probability
   memos survive reordering bit-for-bit). *)
let swap_levels s l =
  let m = s.m in
  let y = l + 1 in
  let xs = s.levels.(l) and ys = s.levels.(y) in
  (* Both levels' unique entries go first: keys are about to be re-bound
     wholesale, and a stale entry found mid-rewire would alias an old
     function to a new key. Lazy deletion means the vectors may hold
     dead ids — filter by the stored level. *)
  for i = 0 to xs.len - 1 do
    let id = Array.unsafe_get xs.a i in
    if Robdd.raw_level m id = l then Robdd.unique_remove m l (Robdd.low m id) (Robdd.high m id)
  done;
  for i = 0 to ys.len - 1 do
    let id = Array.unsafe_get ys.a i in
    if Robdd.raw_level m id = y then Robdd.unique_remove m y (Robdd.low m id) (Robdd.high m id)
  done;
  let new_x = vec_make () and new_y = vec_make () in
  let case_b = vec_make () in
  (* Case A — x-nodes independent of y keep their children and simply
     drop to level l+1. Re-homed before any case-B rewiring so the
     [mk_at] probe below can share them. *)
  for i = 0 to xs.len - 1 do
    let id = Array.unsafe_get xs.a i in
    if Robdd.raw_level m id = l then begin
      let f0 = Robdd.low m id and f1 = Robdd.high m id in
      if Robdd.raw_level m f0 <> y && Robdd.raw_level m f1 <> y then begin
        Robdd.set_node m id y f0 f1;
        Robdd.unique_insert m y f0 f1 id;
        vec_push new_y id
      end
      else vec_push case_b id
    end
  done;
  (* Case B — x-nodes with a y-child get rewired in place: the id keeps
     its function but now tests y first. At least one of the two new
     children is a genuine level-(l+1) node (both collapsing would force
     f0 = f1, contradicting reducedness), so rewired keys can never
     collide with surviving-y keys, whose children all sit below l+1. *)
  for i = 0 to case_b.len - 1 do
    let id = Array.unsafe_get case_b.a i in
    let f0 = Robdd.low m id and f1 = Robdd.high m id in
    let f00, f01 =
      if Robdd.raw_level m f0 = y then (Robdd.low m f0, Robdd.high m f0) else (f0, f0)
    in
    let f10, f11 =
      if Robdd.raw_level m f1 = y then (Robdd.low m f1, Robdd.high m f1) else (f1, f1)
    in
    let a0 = mk_at s new_y y f00 f10 in
    let a1 = mk_at s new_y y f01 f11 in
    incref s a0;
    incref s a1;
    Robdd.set_node m id l a0 a1;
    Robdd.unique_insert m l a0 a1 id;
    vec_push new_x id;
    (* the old edges die last: every cofactor read above happened while
       f0/f1 were still pinned, and exact refcounts keep any node another
       pending case-B x-node still needs alive through the cascade *)
    decref s y f0;
    decref s y f1
  done;
  (* Surviving y-nodes rise to level l unchanged (their children are all
     below both touched levels). The dead ones — killed by the cascade —
     identify themselves by their retired level. *)
  for i = 0 to ys.len - 1 do
    let id = Array.unsafe_get ys.a i in
    if Robdd.raw_level m id = y then begin
      Robdd.set_node m id l (Robdd.low m id) (Robdd.high m id);
      Robdd.unique_insert m l (Robdd.low m id) (Robdd.high m id) id;
      vec_push new_x id
    end
  done;
  s.levels.(l) <- new_x;
  s.levels.(y) <- new_y;
  s.lsize.(l) <- new_x.len;
  s.lsize.(y) <- new_y.len;
  let vl = s.order.(l) in
  s.order.(l) <- s.order.(y);
  s.order.(y) <- vl;
  s.swaps <- s.swaps + 1;
  checkpoint s

exception Capped

(* Move the variable currently at [cur0] to the nearer boundary, then
   the far one, then back to the smallest position seen. Store
   canonicity (plus the garbage sweep at session open) makes the live
   count a function of the order alone, so revisiting the best position
   reproduces the best size exactly. *)
let sift_var s cur0 ~max_growth =
  let cur = ref cur0 in
  let start_live = Robdd.live_nodes s.m in
  let cap = int_of_float (ceil (max_growth *. float_of_int start_live)) in
  let best_size = ref start_live and best_pos = ref cur0 in
  let record () =
    let sz = Robdd.live_nodes s.m in
    if sz < !best_size then begin
      best_size := sz;
      best_pos := !cur
    end;
    if sz > cap then raise Capped
  in
  let walk_down () =
    try
      while !cur < s.nv - 1 do
        swap_levels s !cur;
        incr cur;
        record ()
      done
    with Capped -> ()
  in
  let walk_up () =
    try
      while !cur > 0 do
        swap_levels s (!cur - 1);
        decr cur;
        record ()
      done
    with Capped -> ()
  in
  if s.nv - 1 - !cur <= !cur then begin
    walk_down ();
    walk_up ()
  end
  else begin
    walk_up ();
    walk_down ()
  end;
  while !cur < !best_pos do
    swap_levels s !cur;
    incr cur
  done;
  while !cur > !best_pos do
    swap_levels s (!cur - 1);
    decr cur
  done;
  assert (Robdd.live_nodes s.m = !best_size)

let sift ?(passes = 1) ?(max_growth = 1.2) ?max_swaps ?max_new_nodes ?deadline ?cancel ~roots
    ~order m =
  Robdd.assert_owner m "sift";
  let nv = Robdd.nvars m in
  if Array.length order <> nv then
    invalid_arg "Sift.sift: order length does not match the manager's nvars";
  let seen = Hashtbl.create (2 * nv) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Sift.sift: order has duplicate entries";
      Hashtbl.add seen v ())
    order;
  let n0 = Robdd.total_nodes m in
  let reclaimed0 = Robdd.reclaimed_nodes m in
  (* stale memo entries could resurrect ids this session retires; fresh
     caches built against the final order repopulate on demand *)
  Robdd.clear_ite_cache m;
  (* reachability sweep: anything not reachable from the declared roots —
     debris from budget-aborted cone builds, or nodes orphaned by an
     earlier session — is retired now, both to keep the live count a pure
     function of the order (the optimization's objective) and to hand the
     freed budget back to the caller's retry *)
  let reach = Bytes.make (max n0 2) '\000' in
  let rec mark id =
    if id > 1 && Bytes.unsafe_get reach id = '\000' then begin
      Bytes.unsafe_set reach id '\001';
      mark (Robdd.low m id);
      mark (Robdd.high m id)
    end
  in
  List.iter mark roots;
  for id = 2 to n0 - 1 do
    if Bytes.unsafe_get reach id = '\000' then begin
      let lv = Robdd.raw_level m id in
      if lv <> Robdd.retired_level then begin
        Robdd.unique_remove m lv (Robdd.low m id) (Robdd.high m id);
        Robdd.retire_node m id
      end
    end
  done;
  let refc = Array.make (max n0 2) 0 in
  let levels = Array.init nv (fun _ -> vec_make ()) in
  let lsize = Array.make (max nv 1) 0 in
  for id = 2 to n0 - 1 do
    if Bytes.unsafe_get reach id = '\001' then begin
      let l0 = Robdd.low m id and h0 = Robdd.high m id in
      if l0 > 1 then refc.(l0) <- refc.(l0) + 1;
      if h0 > 1 then refc.(h0) <- refc.(h0) + 1;
      let lv = Robdd.raw_level m id in
      vec_push levels.(lv) id;
      lsize.(lv) <- lsize.(lv) + 1
    end
  done;
  (* roots are pinned for the whole session — sifting preserves every
     root's function in place, so the pins are never released *)
  List.iter (fun r -> if r > 1 then refc.(r) <- refc.(r) + 1) roots;
  let s =
    {
      m;
      nv;
      order;
      levels;
      lsize;
      refc;
      cancel = (match cancel with Some c -> c | None -> Cancel.none);
      deadline = (match deadline with Some d -> d | None -> infinity);
      started = (match deadline with Some _ -> Unix.gettimeofday () | None -> 0.0);
      max_swaps = (match max_swaps with Some k -> k | None -> max_int);
      max_new_nodes = (match max_new_nodes with Some k -> k | None -> max_int);
      base_n = n0;
      swaps = 0;
    }
  in
  let nodes_before = Robdd.live_nodes m in
  Dpa_obs.Metrics.add c_before nodes_before;
  let vars_sifted = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (* runs on budget exhaustion and cancellation too: the swap-boundary
         checkpoints guarantee consistency, but memo entries minted before
         the session must still never outlive it *)
      Robdd.clear_ite_cache m;
      Dpa_obs.Metrics.add c_swaps s.swaps;
      Dpa_obs.Metrics.add c_after (Robdd.live_nodes m))
    (fun () ->
      checkpoint s;
      (try
         for _pass = 1 to passes do
           let before_pass = Robdd.live_nodes m in
           (* largest level first: the variables responsible for the bulk
              of the graph move while the graph is still easy to improve *)
           let by_size = Array.init nv (fun l -> (s.lsize.(l), s.order.(l))) in
           Array.sort
             (fun (sa, va) (sb, vb) -> if sb <> sa then compare sb sa else compare va vb)
             by_size;
           Array.iter
             (fun (_, v) ->
               let cur = ref (-1) in
               Array.iteri (fun l v' -> if v' = v then cur := l) s.order;
               if s.lsize.(!cur) > 0 then begin
                 sift_var s !cur ~max_growth;
                 incr vars_sifted
               end)
             by_size;
           if Robdd.live_nodes m >= before_pass then raise Exit
         done
       with Exit -> ());
      {
        swaps = s.swaps;
        vars_sifted = !vars_sifted;
        nodes_before;
        nodes_after = Robdd.live_nodes m;
        reclaimed = Robdd.reclaimed_nodes m - reclaimed0;
        allocated = Robdd.total_nodes m - n0;
      })
