module Int3_table = Dpa_util.Int3_table

type node = int

type stats = {
  nodes : int;
  unique_probes : int;
  unique_hits : int;
  unique_resizes : int;
  ite_probes : int;
  ite_hits : int;
  ite_resizes : int;
}

let zero_stats =
  {
    nodes = 0;
    unique_probes = 0;
    unique_hits = 0;
    unique_resizes = 0;
    ite_probes = 0;
    ite_hits = 0;
    ite_resizes = 0;
  }

(* Node attributes live in three parallel int arrays indexed by node id
   (grown manually — a polymorphic Vec would reintroduce bounds checks in
   the hot loop). The unique table and ite cache are open-addressing int
   tables: no boxed (int*int*int) keys, no polymorphic hashing. *)
type manager = {
  nv : int;
  mutable lvl : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable n : int; (* nodes allocated so far; ids are 0 … n-1 *)
  mutable reclaimed : int; (* nodes retired by the sifting reorderer *)
  unique : Int3_table.t;
  ite_cache : Int3_table.t;
  (* resource budget; max_int / infinity mean unlimited. The deadline is an
     absolute Unix.gettimeofday value, polled every [deadline_stride]
     allocations so the hot path never pays a syscall per node. *)
  mutable max_nodes : int;
  mutable deadline : float;
  mutable started : float;
  mutable deadline_tick : int;
  mutable budget_context : string;
  (* cooperative cancellation: the flag is polled per allocation (one
     atomic load), the token's deadline rides the same stride as the
     budget deadline. [guarded] caches "any bound installed at all" so
     the unbudgeted hot path stays a single bool test. *)
  mutable cancel : Dpa_util.Cancel.t;
  mutable guarded : bool;
  (* counters already folded into the metrics registry, so repeated
     [publish_metrics] calls on one manager add only the growth since the
     previous call *)
  mutable published : stats;
  (* managers are single-domain: the unique table, ite cache and node
     store are unsynchronized, so cross-domain mutation is memory-unsafe,
     not just nondeterministic. Mutating entry points assert the caller
     is the owning domain; [adopt] re-homes a manager after a legitimate
     single-threaded handoff. *)
  mutable owner : int;
}

let deadline_stride = 1024

let bdd_false = 0
let bdd_true = 1
let terminal_level = max_int

let create_sized ~nvars ~cache_capacity =
  let cap = 256 in
  let m =
    {
      nv = nvars;
      lvl = Array.make cap terminal_level;
      lo = Array.make cap 0;
      hi = Array.make cap 0;
      n = 2;
      reclaimed = 0;
      unique = Int3_table.create ~capacity:cache_capacity ();
      ite_cache = Int3_table.create ~capacity:cache_capacity ();
      max_nodes = max_int;
      deadline = infinity;
      started = 0.0;
      deadline_tick = deadline_stride;
      budget_context = "";
      cancel = Dpa_util.Cancel.none;
      guarded = false;
      published = zero_stats;
      owner = (Domain.self () :> int);
    }
  in
  (* terminals occupy ids 0 and 1 *)
  m.lo.(0) <- 0;
  m.hi.(0) <- 0;
  m.lo.(1) <- 1;
  m.hi.(1) <- 1;
  m

let create ~nvars = create_sized ~nvars ~cache_capacity:1024

let nvars m = m.nv

let check_owner m op =
  let d = (Domain.self () :> int) in
  if d <> m.owner then
    Dpa_util.Dpa_error.error
      (Dpa_util.Dpa_error.Internal
         (Printf.sprintf
            "Robdd.%s: manager owned by domain %d used from domain %d (managers are \
             single-domain; see DESIGN.md §11)"
            op m.owner d))

let adopt m = m.owner <- (Domain.self () :> int)

let is_terminal n = n = bdd_false || n = bdd_true

let total_nodes m = m.n

let live_nodes m = m.n - m.reclaimed

let reclaimed_nodes m = m.reclaimed

let grow_nodes m =
  let cap = Array.length m.lvl in
  let cap' = 2 * cap in
  if Dpa_obs.Trace.is_enabled () then
    Dpa_obs.Trace.instant "bdd.node_store.grow"
      ~args:[ ("capacity", Dpa_obs.Trace.Int cap'); ("nodes", Dpa_obs.Trace.Int m.n) ];
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  m.lvl <- extend m.lvl terminal_level;
  m.lo <- extend m.lo 0;
  m.hi <- extend m.hi 0

(* ------------------------------------------------------------------ *)
(* Resource budget                                                      *)
(* ------------------------------------------------------------------ *)

let set_budget ?max_nodes ?deadline ?cancel ?(context = "") m =
  check_owner m "set_budget";
  m.max_nodes <- (match max_nodes with Some n -> n | None -> max_int);
  m.deadline <- (match deadline with Some d -> d | None -> infinity);
  m.started <- (if m.deadline = infinity then 0.0 else Unix.gettimeofday ());
  m.deadline_tick <- deadline_stride;
  m.budget_context <- context;
  m.cancel <- (match cancel with Some c -> c | None -> Dpa_util.Cancel.none);
  m.guarded <-
    m.max_nodes <> max_int || m.deadline < infinity
    || not (Dpa_util.Cancel.is_none m.cancel)

let clear_budget m = set_budget m

let set_budget_context m context = m.budget_context <- context

let check_budget m =
  (* explicit cancellation first: it is not a budget, so it must raise
     [Cancelled] (which fallback ladders propagate), not [Budget_exceeded]
     (which they catch) *)
  if Dpa_util.Cancel.flag_set m.cancel then Dpa_util.Cancel.check_flag m.cancel;
  (* live count, not allocation count: nodes the sifting reorderer retired
     no longer occupy the caller's budget, so a post-sift retry gets the
     headroom the reorder actually freed (identical when nothing was ever
     reclaimed) *)
  if m.n - m.reclaimed >= m.max_nodes then
    Dpa_util.Dpa_error.budget_exceeded ~context:m.budget_context
      ~resource:Dpa_util.Dpa_error.Bdd_nodes
      ~limit:(float_of_int m.max_nodes) ~spent:(float_of_int (m.n - m.reclaimed)) ();
  if m.deadline < infinity || Dpa_util.Cancel.has_deadline m.cancel then begin
    m.deadline_tick <- m.deadline_tick - 1;
    if m.deadline_tick <= 0 then begin
      m.deadline_tick <- deadline_stride;
      let now = Unix.gettimeofday () in
      Dpa_util.Cancel.check_at ~now m.cancel;
      if now > m.deadline then
        Dpa_util.Dpa_error.budget_exceeded ~context:m.budget_context
          ~resource:Dpa_util.Dpa_error.Wall_clock
          ~limit:(m.deadline -. m.started) ~spent:(now -. m.started) ()
    end
  end

let new_node m l lo hi =
  if m.guarded then check_budget m;
  if m.n = Array.length m.lvl then grow_nodes m;
  let id = m.n in
  Array.unsafe_set m.lvl id l;
  Array.unsafe_set m.lo id lo;
  Array.unsafe_set m.hi id hi;
  m.n <- id + 1;
  id

let level m n =
  if is_terminal n then invalid_arg "Robdd.level: terminal node" else Array.unsafe_get m.lvl n

let low m n = Array.unsafe_get m.lo n

let high m n = Array.unsafe_get m.hi n

let node_level m n = Array.unsafe_get m.lvl n

(* Single probe per lookup-or-intern: the unique-table slot found by the
   probe receives the freshly allocated node on a miss. *)
let mk m l lo hi =
  if lo = hi then lo else Int3_table.find_or_insert m.unique l lo hi ~default:(fun () -> new_node m l lo hi)

let var m l =
  check_owner m "var";
  if l < 0 || l >= m.nv then invalid_arg (Printf.sprintf "Robdd.var: level %d out of range" l);
  mk m l bdd_false bdd_true

(* Shannon cofactors of [n] with respect to level [l] (l <= level of n). *)
let cofactors m l n =
  if node_level m n > l then n, n else Array.unsafe_get m.lo n, Array.unsafe_get m.hi n

let rec ite_rec m f g h =
  if f = bdd_true then g
  else if f = bdd_false then h
  else if g = h then g
  else if g = bdd_true && h = bdd_false then f
  else begin
    let cached = Int3_table.find m.ite_cache f g h in
    if cached >= 0 then cached
    else begin
      let l = min (node_level m f) (min (node_level m g) (node_level m h)) in
      let f0, f1 = cofactors m l f in
      let g0, g1 = cofactors m l g in
      let h0, h1 = cofactors m l h in
      let r0 = ite_rec m f0 g0 h0 in
      let r1 = ite_rec m f1 g1 h1 in
      let id = mk m l r0 r1 in
      Int3_table.replace m.ite_cache f g h id;
      id
    end
  end

(* ownership is asserted once per top-level call, not per recursion *)
let ite m f g h =
  check_owner m "ite";
  ite_rec m f g h

let apply_and m a b = ite m a b bdd_false

let apply_or m a b = ite m a bdd_true b

let neg m a = ite m a bdd_false bdd_true

let apply_xor m a b = ite m a (neg m b) b

let rec eval m f assignment =
  if f = bdd_true then true
  else if f = bdd_false then false
  else if assignment.(level m f) then eval m (high m f) assignment
  else eval m (low m f) assignment

(* Node ids are dense, so a byte per allocated node replaces the seen-set
   hash table of the generic visitor. *)
let visit_reachable m roots f =
  let seen = Bytes.make m.n '\000' in
  let rec go n =
    if (not (is_terminal n)) && Bytes.unsafe_get seen n = '\000' then begin
      Bytes.unsafe_set seen n '\001';
      f n;
      go (Array.unsafe_get m.lo n);
      go (Array.unsafe_get m.hi n)
    end
  in
  List.iter go roots

let shared_size m roots =
  let count = ref 0 in
  visit_reachable m roots (fun _ -> incr count);
  !count

let size m root = shared_size m [ root ]

let support m root =
  let used = Bytes.make m.nv '\000' in
  visit_reachable m [ root ] (fun n -> Bytes.set used (level m n) '\001');
  let acc = ref [] in
  for l = m.nv - 1 downto 0 do
    if Bytes.get used l = '\001' then acc := l :: !acc
  done;
  !acc

let to_dot m ?(var_name = Printf.sprintf "x%d") roots =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph robdd {\n  rankdir=TB;\n";
  Buffer.add_string buf "  t0 [shape=box,label=\"0\"];\n  t1 [shape=box,label=\"1\"];\n";
  visit_reachable m (List.map snd roots) (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" n (var_name (level m n)));
      let edge child style =
        if is_terminal child then
          Buffer.add_string buf (Printf.sprintf "  n%d -> t%d [style=%s];\n" n child style)
        else Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=%s];\n" n child style)
      in
      edge (low m n) "dashed";
      edge (high m n) "solid");
  List.iter
    (fun (name, root) ->
      Buffer.add_string buf (Printf.sprintf "  r_%s [shape=plaintext,label=\"%s\"];\n" name name);
      if is_terminal root then
        Buffer.add_string buf (Printf.sprintf "  r_%s -> t%d;\n" name root)
      else Buffer.add_string buf (Printf.sprintf "  r_%s -> n%d;\n" name root))
    roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Probability evaluation memoizes per node id in a dense float array (NaN =
   not yet computed; terminals are seeded). One memo serves any number of
   roots in the same manager — and, through [prob_cache], any number of
   calls — so re-evaluating an already-visited function is a lookup. *)

let fill_prob_memo memo =
  Array.fill memo 0 (Array.length memo) Float.nan;
  memo.(bdd_false) <- 0.0;
  memo.(bdd_true) <- 1.0;
  memo

let rec prob_go m probs memo n =
  let p = Array.unsafe_get memo n in
  if Float.is_nan p then begin
    let pv = Array.unsafe_get probs (Array.unsafe_get m.lvl n) in
    let p =
      (pv *. prob_go m probs memo (Array.unsafe_get m.hi n))
      +. ((1.0 -. pv) *. prob_go m probs memo (Array.unsafe_get m.lo n))
    in
    Array.unsafe_set memo n p;
    p
  end
  else p

let check_probs m probs =
  if Array.length probs <> m.nv then
    invalid_arg "Robdd.probability: probability vector length mismatch"

let probability m probs root =
  check_probs m probs;
  let memo = fill_prob_memo (Array.make m.n Float.nan) in
  prob_go m probs memo root

let probabilities m probs roots =
  check_probs m probs;
  let memo = fill_prob_memo (Array.make m.n Float.nan) in
  Array.map (prob_go m probs memo) roots

type prob_cache = {
  pm : manager;
  level_probs : float array;
  mutable memo : float array;
}

let prob_cache m probs =
  check_owner m "prob_cache";
  check_probs m probs;
  { pm = m; level_probs = Array.copy probs; memo = fill_prob_memo (Array.make (max m.n 2) Float.nan) }

let cached_probability c root =
  let m = c.pm in
  if Array.length c.memo < m.n then begin
    (* the manager grew since the last call; keep computed prefixes — node
       attributes are immutable, so earlier values stay correct *)
    let memo = Array.make (Array.length m.lvl) Float.nan in
    Array.blit c.memo 0 memo 0 (Array.length c.memo);
    c.memo <- memo
  end;
  prob_go m c.level_probs c.memo root

(* ------------------------------------------------------------------ *)
(* Reordering support                                                   *)
(* ------------------------------------------------------------------ *)

(* Low-level hooks for Sift, which rewires the two levels touched by an
   adjacent-variable swap directly in the packed store. They bypass the
   canonicity-preserving [mk] path on purpose; Sift is responsible for
   restoring the invariants (unique-table consistency, no lo = hi nodes)
   before returning. Nothing else should call them. *)

let assert_owner m op = check_owner m op

let retired_level = -1

let raw_level m n = Array.unsafe_get m.lvl n

let unique_find m l lo hi = Int3_table.find m.unique l lo hi

let unique_insert m l lo hi id = Int3_table.replace m.unique l lo hi id

let unique_remove m l lo hi = Int3_table.remove m.unique l lo hi

(* Like [new_node] but never raises: a swap must be able to finish the
   level it is rewiring even when the caller's budget is exhausted (Sift
   enforces its own [max_new_nodes] at swap boundaries instead). *)
let alloc_unchecked m l lo hi =
  if m.n = Array.length m.lvl then grow_nodes m;
  let id = m.n in
  Array.unsafe_set m.lvl id l;
  Array.unsafe_set m.lo id lo;
  Array.unsafe_set m.hi id hi;
  m.n <- id + 1;
  id

let set_node m id l lo hi =
  Array.unsafe_set m.lvl id l;
  Array.unsafe_set m.lo id lo;
  Array.unsafe_set m.hi id hi

let retire_node m id =
  Array.unsafe_set m.lvl id retired_level;
  m.reclaimed <- m.reclaimed + 1

let clear_ite_cache m = Int3_table.clear m.ite_cache

(* An in-place swap permutes the meaning of levels, so a surviving
   [prob_cache]'s level-probability vector must be permuted to match.
   The per-node memo itself stays valid: node ids keep their functions
   across a swap, and probabilities depend only on the function. *)
let set_cache_level_probs c probs =
  check_probs c.pm probs;
  Array.blit probs 0 c.level_probs 0 (Array.length probs)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                      *)
(* ------------------------------------------------------------------ *)

let stats m =
  {
    nodes = m.n;
    unique_probes = Int3_table.probes m.unique;
    unique_hits = Int3_table.hits m.unique;
    unique_resizes = Int3_table.resizes m.unique;
    ite_probes = Int3_table.probes m.ite_cache;
    ite_hits = Int3_table.hits m.ite_cache;
    ite_resizes = Int3_table.resizes m.ite_cache;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "nodes=%d unique[probes=%d hits=%d (%.1f%%) resizes=%d] ite[probes=%d hits=%d (%.1f%%) resizes=%d]"
    s.nodes s.unique_probes s.unique_hits
    (if s.unique_probes = 0 then 0.0
     else 100.0 *. float_of_int s.unique_hits /. float_of_int s.unique_probes)
    s.unique_resizes s.ite_probes s.ite_hits
    (if s.ite_probes = 0 then 0.0
     else 100.0 *. float_of_int s.ite_hits /. float_of_int s.ite_probes)
    s.ite_resizes

(* The registry path: cumulative counters across every manager of the
   process, plus gauges for the last-published and peak manager sizes.
   Cells are resolved lazily so a process that never publishes never
   touches the registry. *)
let mc name help = Dpa_obs.Metrics.counter ~help name

let c_nodes = mc "bdd.nodes_allocated" "BDD nodes allocated across all managers"

let c_uprobes = mc "bdd.unique.probes" "unique-table probes"

let c_uhits = mc "bdd.unique.hits" "unique-table hits"

let c_uresizes = mc "bdd.unique.resizes" "unique-table resizes"

let c_iprobes = mc "bdd.ite.probes" "ite-cache probes"

let c_ihits = mc "bdd.ite.hits" "ite-cache hits"

let c_iresizes = mc "bdd.ite.resizes" "ite-cache resizes"

let g_manager = Dpa_obs.Metrics.gauge ~help:"nodes in the last published manager" "bdd.manager.nodes"

let g_peak = Dpa_obs.Metrics.gauge ~help:"largest manager seen" "bdd.manager.peak_nodes"

let publish_metrics m =
  let s = stats m in
  let p = m.published in
  let d cell get = Dpa_obs.Metrics.add cell (max 0 (get s - get p)) in
  d c_nodes (fun x -> x.nodes);
  d c_uprobes (fun x -> x.unique_probes);
  d c_uhits (fun x -> x.unique_hits);
  d c_uresizes (fun x -> x.unique_resizes);
  d c_iprobes (fun x -> x.ite_probes);
  d c_ihits (fun x -> x.ite_hits);
  d c_iresizes (fun x -> x.ite_resizes);
  Dpa_obs.Metrics.set g_manager (float_of_int s.nodes);
  Dpa_obs.Metrics.set_max g_peak (float_of_int s.nodes);
  m.published <- s
