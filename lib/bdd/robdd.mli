(** Reduced ordered binary decision diagrams (Bryant 1986).

    A manager owns a fixed variable order over levels [0 … nvars-1]
    (level 0 is tested first / topmost). Nodes are interned in a unique
    table, so structural equality of functions is id equality. The manager
    also memoizes [ite], the single combinator all Boolean operations are
    built from.

    The kernel is allocation-free on the hot path: node attributes live in
    dense parallel int arrays indexed by node id, and both the unique table
    and the ite cache are {!Dpa_util.Int3_table}s — open-addressing tables
    with the three key ints packed inline, probed once per lookup-or-intern
    ({!mk} never hashes a key twice). {!stats} exposes the probe/hit/resize
    counters so benchmarks can report cache behaviour. *)

type manager

type node = int
(** Node handle, valid for the creating manager only. *)

val create : nvars:int -> manager
(** Fresh manager with [nvars] variable levels. *)

val create_sized : nvars:int -> cache_capacity:int -> manager
(** Like {!create} but presizes the unique table and ite cache
    ([cache_capacity] slots, rounded up to a power of two; {!create} uses
    1024) — both grow automatically at 50% load, so presizing only saves
    the rehash churn of a workload whose final size is known. *)

val nvars : manager -> int
(** Number of variable levels the manager was created with. *)

val adopt : manager -> unit
(** Transfers manager ownership to the calling domain. A manager is
    owned by the domain that created it: its unique table, ite cache
    and node store are unsynchronized, so mutating entry points
    ({!var}, {!ite} and the operators built on it, {!set_budget},
    {!prob_cache}) assert that the caller is the owner and raise a
    typed {!Dpa_util.Dpa_error.Internal} error otherwise — turning a
    latent cross-domain data race into an immediate, attributable
    failure. Call [adopt] only after a genuine handoff, i.e. when the
    previous owner will never touch the manager again. *)

(** {2 Resource budget}

    A manager optionally carries a node budget and a wall-clock deadline.
    Every allocation checks them (the deadline is polled once per 1024
    allocations, so pure cache-hit traffic costs nothing) and raises the
    typed {!Dpa_util.Dpa_error.Budget_exceeded} — never a bare [Failure] —
    when exhausted. The manager stays valid after exhaustion: already
    interned nodes, probabilities and lookups keep working, so a caller
    can salvage the part of the computation that completed, then retry
    under a different variable order or fall back to simulation.

    A {!Dpa_util.Cancel} token may ride along: its flag is polled on
    every allocation (one atomic load) and its deadline on the same
    1024-allocation stride, but firing raises
    [Dpa_error.Error (Cancelled _)] — a hard stop the fallback ladder
    propagates instead of catching. *)

val set_budget :
  ?max_nodes:int ->
  ?deadline:float ->
  ?cancel:Dpa_util.Cancel.t ->
  ?context:string ->
  manager ->
  unit
(** [set_budget ?max_nodes ?deadline ?cancel m] installs (or, with no
    arguments, clears) the budget. [max_nodes] bounds {!total_nodes};
    [deadline] is an absolute [Unix.gettimeofday] timestamp. [context]
    tags the {!Dpa_util.Dpa_error.budget_report} (e.g. which cone was
    building). [cancel] makes builds under this manager cooperatively
    cancellable. *)

val clear_budget : manager -> unit
(** Removes any installed budget. *)

val set_budget_context : manager -> string -> unit
(** Re-tags subsequent budget errors without resetting the budget. *)

val bdd_false : node
(** The constant-false terminal (id 0, shared by every manager). *)

val bdd_true : node
(** The constant-true terminal (id 1, shared by every manager). *)

val var : manager -> int -> node
(** [var m level] is the single-variable function for [level]. Raises
    [Invalid_argument] outside [0 … nvars-1]. *)

val ite : manager -> node -> node -> node -> node
(** If-then-else: [ite m f g h = (f ∧ g) ∨ (¬f ∧ h)]. *)

val apply_and : manager -> node -> node -> node
(** Conjunction, as [ite f g false]. *)

val apply_or : manager -> node -> node -> node
(** Disjunction, as [ite f true g]. *)

val apply_xor : manager -> node -> node -> node
(** Exclusive or, as [ite f (neg g) g]. *)

val neg : manager -> node -> node
(** Complement, as [ite f false true]. *)

val level : manager -> node -> int
(** Decision level of an internal node; raises on terminals. *)

val low : manager -> node -> node
(** Else-cofactor (the decision variable false); raises on terminals. *)

val high : manager -> node -> node
(** Then-cofactor (the decision variable true); raises on terminals. *)

val is_terminal : node -> bool
(** True exactly for {!bdd_false} and {!bdd_true}. *)

val eval : manager -> node -> bool array -> bool
(** [eval m f assignment] with [assignment] indexed by level. *)

val size : manager -> node -> int
(** Internal (non-terminal) node count of one function. *)

val shared_size : manager -> node list -> int
(** Internal node count of the union of the given functions' graphs — the
    quantity the paper's Fig. 10 compares across variable orders. *)

val total_nodes : manager -> int
(** Nodes ever created in the manager, retired ones included
    (memory-pressure metric — the node store never shrinks). *)

val live_nodes : manager -> int
(** {!total_nodes} minus nodes retired by the sifting reorderer — the
    count the node budget is charged against. Equal to {!total_nodes}
    on any manager that was never sifted. *)

val reclaimed_nodes : manager -> int
(** Nodes retired by the sifting reorderer since creation. *)

val support : manager -> node -> int list
(** Levels the function actually depends on, ascending. *)

val to_dot : manager -> ?var_name:(int -> string) -> (string * node) list -> string
(** Graphviz rendering of the shared graph of the given labelled roots
    (dashed = low edge, solid = high edge). [var_name] labels decision
    levels, default ["x<level>"]. *)

val probability : manager -> float array -> node -> float
(** [probability m p f] is the exact probability that [f] evaluates true
    when level [l] is independently true with probability [p.(l)] — linear
    in the node count (memoized descent). *)

val probabilities : manager -> float array -> node array -> float array
(** Probability of every root under one shared memo: nodes reachable from
    several roots are evaluated once, so the cost is linear in the size of
    the {e union} of the graphs rather than the sum. *)

(** {2 Persistent probability cache} *)

type prob_cache
(** A dense per-node-id probability memo bound to one manager and one
    level-probability vector, surviving across calls: re-evaluating a
    function whose nodes were already visited costs one array read. The
    incremental phase search keeps one of these per shared manager so a
    candidate flip only pays for BDD nodes it newly creates. *)

val prob_cache : manager -> float array -> prob_cache
(** The vector is copied; it must match the manager's [nvars]. *)

val cached_probability : prob_cache -> node -> float
(** Valid for nodes created after the cache, too — the memo tracks manager
    growth, preserving already-computed entries (node attributes are
    immutable outside reordering, so they stay correct). *)

(** {2 Reordering support}

    Low-level hooks for {!Dpa_bdd.Sift}, which rewires the two levels
    touched by an adjacent-variable swap directly in the packed store.
    They bypass the canonicity-preserving intern path on purpose; the
    sifter restores the invariants (unique-table consistency, no
    redundant nodes) before returning, and an in-place swap preserves
    the Boolean function denoted by every live node id — which is why
    ite-cache entries and {!prob_cache} memos survive reordering.
    Nothing else should call these. *)

val assert_owner : manager -> string -> unit
(** Raises the standard single-domain ownership error (named after the
    calling operation) when the caller is not the owning domain. *)

val retired_level : int
(** Sentinel {!raw_level} of a node retired by the reorderer ([-1]). *)

val raw_level : manager -> node -> int
(** Stored level with no terminal check: [max_int] for terminals,
    {!retired_level} for retired nodes, the decision level otherwise. *)

val unique_find : manager -> int -> node -> node -> node
(** Unique-table probe for [(level, lo, hi)];
    {!Dpa_util.Int3_table.not_found} when absent. *)

val unique_insert : manager -> int -> node -> node -> node -> unit
(** [unique_insert m l lo hi id] binds [(l, lo, hi) → id], overwriting
    any previous binding. *)

val unique_remove : manager -> int -> node -> node -> unit
(** Deletes the unique-table binding of [(level, lo, hi)] if present. *)

val alloc_unchecked : manager -> int -> node -> node -> node
(** Allocates a node without budget, deadline or cancellation checks (a
    swap must be able to finish rewiring its level even under an
    exhausted budget; the sifter enforces its own [max_new_nodes] at
    swap boundaries). The caller must insert the unique-table entry. *)

val set_node : manager -> node -> int -> node -> node -> unit
(** Overwrites a node's level and children in place. *)

val retire_node : manager -> node -> unit
(** Marks a node dead ({!raw_level} becomes {!retired_level}) and credits
    it back to the budget ({!live_nodes} drops by one). The caller must
    already have removed its unique-table entry. *)

val clear_ite_cache : manager -> unit
(** Drops every ite memo entry. The sifter calls this when a sift session
    opens and closes: entries keyed by live ids stay {e semantically}
    valid across swaps (functions are preserved), but entries mentioning
    retired ids must never resurrect them. *)

val set_cache_level_probs : prob_cache -> float array -> unit
(** Replaces the cache's level-probability vector — required after a sift
    permuted the variable order, so level [l] again maps to the correct
    variable's probability. Per-node memo entries are kept: node ids
    retain their functions across in-place swaps, and a node's
    probability depends only on its function. *)

(** {2 Instrumentation} *)

type stats = {
  nodes : int;  (** nodes ever created, terminals included *)
  unique_probes : int;
  unique_hits : int;
  unique_resizes : int;
  ite_probes : int;
  ite_hits : int;
  ite_resizes : int;
}

val stats : manager -> stats
(** Raw counter snapshot of one manager. This is the low-level reading;
    tooling should prefer the process-wide registry fed by
    {!publish_metrics}, which aggregates across managers. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering with hit rates, for bench output. *)

val publish_metrics : manager -> unit
(** Folds this manager's counters into the {!Dpa_obs.Metrics} registry —
    the one source of truth for BDD kernel counters. Publishes {e deltas}:
    each call adds only the growth since the previous call on the same
    manager, so calling after every estimate keeps process totals exact
    even with many short-lived managers. Registry names:
    [bdd.nodes_allocated], [bdd.unique.{probes,hits,resizes}],
    [bdd.ite.{probes,hits,resizes}] (counters) and
    [bdd.manager.nodes], [bdd.manager.peak_nodes] (gauges). *)
