(** In-place dynamic variable reordering (Rudell 1993 sifting) for the
    packed {!Robdd} node store.

    The primitive is the adjacent-level swap: exchanging levels
    [(l, l+1)] rewires only the nodes stored at those two levels — cost
    proportional to nodes touched, never to manager size — and every
    live node id keeps denoting the same Boolean function afterwards.
    That function-preservation is the load-bearing property: ite-cache
    entries and {!Robdd.prob_cache} memos keyed by node id remain
    bit-for-bit valid across arbitrary swap sequences (the ite cache is
    still cleared at session boundaries, purely so stale entries cannot
    resurrect ids the session retired).

    On top of the swap sits the classic sift loop: each variable —
    largest level first — walks to the nearer boundary, then the far
    one, then back to the best position seen, abandoning a direction
    when the graph grows past [max_growth ×] its size at that
    variable's start. The caller's [order] array is permuted in place,
    swap by swap, so it always names the manager's current order — even
    when the session ends early by budget or cancellation.

    A session opens with a reachability sweep from [roots]: unreachable
    debris (typically from budget-aborted cone builds) is retired, its
    node count credited back to the manager's budget
    ({!Robdd.live_nodes} drops), which is what gives a post-sift retry
    its headroom.

    Budget raises ({!Dpa_util.Dpa_error.Budget_exceeded} for
    [max_swaps] / [max_new_nodes] / [deadline]) and cancellation
    ([Dpa_error.Error (Cancelled _)] via [cancel]) happen only at swap
    boundaries, where every store invariant holds — the manager stays
    fully usable, holding whatever order the session had reached. *)

type result = {
  swaps : int;  (** adjacent-level swaps performed *)
  vars_sifted : int;  (** variables moved through the full sift walk *)
  nodes_before : int;  (** live nodes after the opening garbage sweep *)
  nodes_after : int;  (** live nodes at session end *)
  reclaimed : int;  (** nodes retired (garbage sweep + swap deaths) *)
  allocated : int;  (** node ids minted by swaps (ids are never reused) *)
}

val sift :
  ?passes:int ->
  ?max_growth:float ->
  ?max_swaps:int ->
  ?max_new_nodes:int ->
  ?deadline:float ->
  ?cancel:Dpa_util.Cancel.t ->
  roots:Robdd.node list ->
  order:int array ->
  Robdd.manager ->
  result
(** [sift ~roots ~order m] reorders [m] in place. [order] maps level to
    caller-side variable token ([order] entries need only be distinct;
    length must equal the manager's [nvars]) and is permuted alongside
    the store. [roots] pins the functions that must survive — everything
    unreachable from them is retired when the session opens.

    [passes] (default 1) bounds full sift passes; a pass that fails to
    shrink the graph ends the loop early. [max_growth] (default 1.2)
    caps transient growth per sifted variable. [max_swaps] /
    [max_new_nodes] bound total session work and allocation
    ([Budget_exceeded] with context ["sift.max_swaps"] /
    ["sift.max_new_nodes"]); [deadline] is an absolute
    [Unix.gettimeofday] timestamp ([Budget_exceeded], [Wall_clock]).

    Publishes [bdd.sift.swaps] and [bdd.sift.nodes_before/after]
    counters to the metrics registry (also on early exit).

    Single-domain like every manager entry point: raises the standard
    ownership error when called from a non-owning domain. *)
