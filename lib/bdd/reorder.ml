type result = {
  order : int array;
  nodes : int;
  initial_nodes : int;
  swaps_accepted : int;
  passes : int;
  oracle_calls : int;
}

let cost net order = Build.shared_all_size net (Build.of_netlist ~order net)

(* Adjacent-swap hill climbing over an arbitrary cost oracle. [cost] may
   return [max_int] to mark an order as infeasible (e.g. over a node
   budget); such orders are never kept unless the start order itself is
   infeasible, in which case any feasible neighbour is an improvement.
   [initial_cost] spares the start-order probe when the caller already
   knows it — the degradation ladder reaches here precisely because the
   start order blew its budget, so re-pricing it would waste a full
   bounded build just to learn [max_int] again. *)
let refine_cost ?(max_passes = 8) ?initial_cost ~cost order0 =
  let calls = ref 0 in
  let cost order =
    incr calls;
    cost order
  in
  let order = Array.copy order0 in
  let n = Array.length order in
  let best = ref (match initial_cost with Some c -> c | None -> cost order) in
  let initial_nodes = !best in
  let swaps = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for l = 0 to n - 2 do
      let tmp = order.(l) in
      order.(l) <- order.(l + 1);
      order.(l + 1) <- tmp;
      let c = cost order in
      if c < !best then begin
        best := c;
        incr swaps;
        improved := true
      end
      else begin
        (* revert *)
        let tmp = order.(l) in
        order.(l) <- order.(l + 1);
        order.(l + 1) <- tmp
      end
    done
  done;
  {
    order;
    nodes = !best;
    initial_nodes;
    swaps_accepted = !swaps;
    passes = !passes;
    oracle_calls = !calls;
  }

let refine ?max_passes net order0 = refine_cost ?max_passes ~cost:(cost net) order0

let refine_bounded ?max_passes ?initial_cost ~max_nodes net order0 =
  let cost order =
    match Build.bounded_size ~order ~max_nodes net with
    | Some s -> s
    | None -> max_int
  in
  let r = refine_cost ?max_passes ?initial_cost ~cost order0 in
  if r.nodes = max_int then None else Some r
