(** End-to-end domino synthesis flows (the paper's experimental flow,
    §5): technology-independent minimization, phase assignment (minimum
    area or minimum power), inverter removal, technology mapping, optional
    timing-driven resizing, and power estimation.

    The "MA" flow is the Puri-style optimal/greedy minimum-area
    assignment; the "MP" flow is the paper's power-driven assignment. Both
    are run on the same optimized network so the comparison isolates the
    phase decision, exactly as in Tables 1–2. *)

type timing_config = {
  model : Dpa_timing.Delay.model;
  clock_factor : float;
      (** clock constraint = factor × the MA realization's post-mapping
          {e unsized} critical delay; below 1.0 both realizations must
          resize to close timing — the Table 2 regime *)
}

val default_timing : timing_config
(** Default model, [clock_factor = 0.85]. *)

type realization = {
  assignment : Dpa_synth.Phase.assignment;
  size : int;
      (** standard cells after mapping; under the timed flow, the
          drive-weighted cell count after resizing *)
  power : float;
  critical_delay : float;
  met : bool;  (** timing constraint met (always true untimed) *)
  measurements : int;  (** power evaluations spent finding the assignment *)
  strategy : string;
  degradation : Dpa_power.Engine.degradation;
      (** how this realization's final power number was obtained — fully
          exact unless a resource budget forced the estimation ladder to
          degrade *)
  degraded_measurements : int;
      (** search-time measurements that degraded below exact (0 for MA and
          for unbudgeted runs) *)
}

type result = {
  circuit : string;
  n_pi : int;
  n_po : int;
  ma : realization;
  mp : realization;
  clock : float option;
  area_penalty_pct : float;  (** (mp.size − ma.size) / ma.size × 100 *)
  power_saving_pct : float;  (** (ma.power − mp.power) / ma.power × 100 *)
}

type config = {
  library : Dpa_domino.Library.t;
  input_prob : float;  (** uniform PI signal probability (paper: 0.5) *)
  exhaustive_limit : int;  (** MP exhaustive threshold (and MA's) *)
  pair_limit : int option;  (** greedy candidate cap for wide circuits *)
  timing : timing_config option;  (** [Some _] = the Table 2 flow *)
  seed : int;
  budget : Dpa_power.Engine.budget option;
      (** resource budget for every power estimate in both flows (search
          and final pricing); [None] = exact, unbounded *)
  par : Dpa_util.Par.t option;
      (** domain pool for intra-request parallelism: per-cone estimation
          fan-out in every final pricing and speculative candidate
          pricing inside the phase search. Results are bit-identical
          with or without a pool, at any jobs count (see DESIGN.md §11);
          [None] = fully sequential *)
  cancel : Dpa_util.Cancel.t;
      (** cooperative-cancellation token threaded into every estimate and
          search step; a fired token aborts the flow with
          [Dpa_error.Error (Cancelled _)]. Default
          {!Dpa_util.Cancel.none}. *)
}

val default_config : config
(** Default library, [input_prob = 0.5], [exhaustive_limit = 10], no pair
    cap, untimed, seed 1, no resource budget, no domain pool, no
    cancellation token. *)

val compare_ma_mp : ?config:config -> Dpa_logic.Netlist.t -> result
(** Runs both flows on the (internally re-optimized) network with the
    uniform [config.input_prob] at every input. *)

val compare_ma_mp_probs :
  ?config:config -> input_probs:float array -> Dpa_logic.Netlist.t -> result
(** Same with explicit per-input signal probabilities (overrides
    [config.input_prob]); the entry point the sequential flow uses to
    inject flip-flop steady-state probabilities. *)
