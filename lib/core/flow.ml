module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Mapped = Dpa_domino.Mapped
module Trace = Dpa_obs.Trace

type timing_config = {
  model : Dpa_timing.Delay.model;
  clock_factor : float;
}

let default_timing = { model = Dpa_timing.Delay.default; clock_factor = 0.85 }

type realization = {
  assignment : Phase.assignment;
  size : int;
  power : float;
  critical_delay : float;
  met : bool;
  measurements : int;
  strategy : string;
  degradation : Dpa_power.Engine.degradation;
  degraded_measurements : int;
}

type result = {
  circuit : string;
  n_pi : int;
  n_po : int;
  ma : realization;
  mp : realization;
  clock : float option;
  area_penalty_pct : float;
  power_saving_pct : float;
}

type config = {
  library : Dpa_domino.Library.t;
  input_prob : float;
  exhaustive_limit : int;
  pair_limit : int option;
  timing : timing_config option;
  seed : int;
  budget : Dpa_power.Engine.budget option;
  par : Dpa_util.Par.t option;
  cancel : Dpa_util.Cancel.t;
}

let default_config =
  {
    library = Dpa_domino.Library.default;
    input_prob = 0.5;
    exhaustive_limit = 10;
    pair_limit = None;
    timing = None;
    seed = 1;
    budget = None;
    par = None;
    cancel = Dpa_util.Cancel.none;
  }

(* Map an assignment, optionally resize to the clock, and price it. *)
let realize_and_price config net ~input_probs ~clock ~measurements
    ?(degraded_measurements = 0) ~strategy assignment =
  Trace.with_span "flow.realize" ~args:[ ("strategy", Trace.Str strategy) ]
  @@ fun () ->
  let mapped =
    Mapped.map ~library:config.library (Dpa_synth.Inverterless.realize net assignment)
  in
  let met, delay =
    match config.timing, clock with
    | Some tc, Some clk ->
      let r = Dpa_timing.Resize.meet ~model:tc.model ~clock:clk mapped in
      (r.Dpa_timing.Resize.met, r.Dpa_timing.Resize.final_delay)
    | Some tc, None ->
      (true, (Dpa_timing.Sta.analyze ~model:tc.model mapped).Dpa_timing.Sta.critical_delay)
    | None, _ ->
      (true, (Dpa_timing.Sta.analyze mapped).Dpa_timing.Sta.critical_delay)
  in
  let est =
    Dpa_power.Engine.estimate ?par:config.par ?budget:config.budget ~cancel:config.cancel
      ~input_probs mapped
  in
  let report = est.Dpa_power.Engine.report in
  (* Under the timed flow, resizing replaces cells by larger drive
     variants: area is the drive-weighted cell count (a 2× cell occupies
     roughly twice the silicon), matching how the paper's Table 2 sizes
     move after transistor resizing. *)
  let size =
    match config.timing, clock with
    | Some _, Some _ ->
      let drive_sum = ref 0.0 in
      Dpa_logic.Netlist.iter_nodes
        (fun i _ ->
          match Mapped.cell_of_node mapped i with
          | Some _ -> drive_sum := !drive_sum +. Mapped.drive mapped i
          | None -> ())
        (Mapped.net mapped);
      int_of_float
        (Float.round
           (!drive_sum
           +. float_of_int (Mapped.input_inverters mapped + Mapped.output_inverters mapped)))
    | Some _, None | None, (Some _ | None) -> Mapped.size mapped
  in
  {
    assignment;
    size;
    power = report.Dpa_power.Estimate.total;
    critical_delay = delay;
    met;
    measurements;
    strategy;
    degradation = est.Dpa_power.Engine.degradation;
    degraded_measurements;
  }

let compare_ma_mp_probs ?(config = default_config) ~input_probs raw =
  Trace.with_span "flow.compare" ~args:[ ("circuit", Trace.Str (Netlist.name raw)) ]
  @@ fun () ->
  let net = Trace.with_span "flow.optimize" (fun () -> Dpa_synth.Opt.optimize raw) in
  let n_pi = Netlist.num_inputs net and n_po = Netlist.num_outputs net in
  if Array.length input_probs <> n_pi then
    invalid_arg "Flow.compare_ma_mp_probs: input_probs length mismatch";
  (* --- minimum-area baseline ------------------------------------- *)
  let ma, clock =
    Trace.with_span "flow.min_area" @@ fun () ->
    let ma_assignment =
      Dpa_synth.Min_area.best ~exhaustive_limit:config.exhaustive_limit net
    in
    let ma_strategy =
      if n_po <= config.exhaustive_limit then "exhaustive-area" else "local-search-area"
    in
    (* the clock constraint derives from MA's unsized critical delay *)
    let clock =
      match config.timing with
      | None -> None
      | Some tc ->
        let ma_mapped =
          Mapped.map ~library:config.library
            (Dpa_synth.Inverterless.realize net ma_assignment)
        in
        let delay =
          (Dpa_timing.Sta.analyze ~model:tc.model ma_mapped).Dpa_timing.Sta.critical_delay
        in
        Some (tc.clock_factor *. delay)
    in
    ( realize_and_price config net ~input_probs ~clock ~measurements:0
        ~strategy:ma_strategy ma_assignment,
      clock )
  in
  (* --- minimum-power flow ---------------------------------------- *)
  let mp =
    Trace.with_span "flow.min_power" @@ fun () ->
    let opt_config =
      {
        Dpa_phase.Optimizer.library = config.library;
        input_probs;
        strategy = Dpa_phase.Optimizer.Auto;
        exhaustive_limit = config.exhaustive_limit;
        pair_limit = config.pair_limit;
        seed = config.seed;
        budget = config.budget;
        par = config.par;
        cancel = config.cancel;
      }
    in
    let opt = Dpa_phase.Optimizer.minimize_power opt_config net in
    realize_and_price config net ~input_probs ~clock
      ~measurements:opt.Dpa_phase.Optimizer.measurements
      ~degraded_measurements:opt.Dpa_phase.Optimizer.degraded_measurements
      ~strategy:opt.Dpa_phase.Optimizer.strategy_used opt.Dpa_phase.Optimizer.assignment
  in
  {
    circuit = Netlist.name raw;
    n_pi;
    n_po;
    ma;
    mp;
    clock;
    area_penalty_pct =
      (if ma.size = 0 then 0.0
       else float_of_int (mp.size - ma.size) /. float_of_int ma.size *. 100.0);
    power_saving_pct = Dpa_util.Stats.percent_change ~from:ma.power ~to_:mp.power;
  }

let compare_ma_mp ?(config = default_config) raw =
  let n_pi = Netlist.num_inputs raw in
  compare_ma_mp_probs ~config ~input_probs:(Array.make n_pi config.input_prob) raw
