type result = {
  comb : Flow.result;
  fvs : int list;
  ff_probs : float array;
  supervertices : int;
}

let compare_ma_mp ?(config = Flow.default_config) ?(refine = 2) sn =
  let module Trace = Dpa_obs.Trace in
  Trace.with_span "seq_flow.compare"
    ~args:[ ("ffs", Trace.Int (Dpa_seq.Seq_netlist.n_ffs sn)) ]
  @@ fun () ->
  let n_real = Dpa_seq.Seq_netlist.n_real_inputs sn in
  let input_probs = Array.make n_real config.Flow.input_prob in
  let part =
    Trace.with_span "seq_flow.partition" (fun () ->
        Dpa_seq.Partition.probabilities ~refine ~input_probs sn)
  in
  let mfvs =
    Trace.with_span "seq_flow.mfvs" (fun () ->
        Dpa_seq.Mfvs.solve (Dpa_seq.Sgraph.of_seq_netlist sn))
  in
  let core_probs = Array.append input_probs part.Dpa_seq.Partition.ff_probs in
  (* every flip-flop's D pin is a block output of the domino core — it
     deserves a phase of its own (an inverter ahead of a flip-flop is as
     legal as one on a primary output) and must survive optimization *)
  let core = Dpa_logic.Netlist.copy (Dpa_seq.Seq_netlist.comb sn) in
  Array.iteri
    (fun k ff ->
      Dpa_logic.Netlist.add_output core
        (Printf.sprintf "ff%d.d" k)
        ff.Dpa_seq.Seq_netlist.data)
    (Dpa_seq.Seq_netlist.ffs sn);
  let comb = Flow.compare_ma_mp_probs ~config ~input_probs:core_probs core in
  {
    comb;
    fvs = part.Dpa_seq.Partition.fvs;
    ff_probs = part.Dpa_seq.Partition.ff_probs;
    supervertices = List.length mfvs.Dpa_seq.Mfvs.supervertices;
  }
