(** Rendering flow results in the paper's table layout. *)

val table : title:string -> (string * Flow.result) list -> string
(** [(description, result)] rows in order; columns match the paper's
    Tables 1–2 (circuit, description, #PIs, #POs, MA size/power, MP
    size/power, % area penalty, % power saving) plus an average row. *)

val summary : Flow.result -> string
(** One-paragraph human-readable comparison for a single circuit. When a
    resource budget degraded any estimate, the paragraph ends with a
    bracketed degradation note. *)

val degraded : Flow.result -> bool
(** Any estimate in either flow fell below fully exact. *)

val degradation_summary : Flow.result -> string option
(** One line describing how much of the result rests on the degradation
    ladder; [None] when everything was exact. *)

val averages : Flow.result list -> float * float
(** (mean area penalty %, mean power saving %). *)

val csv : (string * Flow.result) list -> string
(** Machine-readable export (one header row; RFC-4180-ish, no quoting
    needed as all fields are names and numbers). The [ma_estimate] and
    [mp_estimate] columns carry {!Dpa_power.Engine.degradation_label}. *)
