module Table = Dpa_util.Table

let averages results =
  let pens = List.map (fun r -> r.Flow.area_penalty_pct) results in
  let savs = List.map (fun r -> r.Flow.power_saving_pct) results in
  (Dpa_util.Stats.mean pens, Dpa_util.Stats.mean savs)

let table ~title rows =
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left);
          ("Desc.", Table.Left);
          ("#PIs", Table.Right);
          ("#POs", Table.Right);
          ("MA Size", Table.Right);
          ("MA Pwr", Table.Right);
          ("MP Size", Table.Right);
          ("MP Pwr", Table.Right);
          ("% Area Pen.", Table.Right);
          ("% Pwr Sav.", Table.Right) ]
  in
  List.iter
    (fun (desc, r) ->
      Table.add_row t
        [ r.Flow.circuit;
          desc;
          Table.cell_int r.Flow.n_pi;
          Table.cell_int r.Flow.n_po;
          Table.cell_int r.Flow.ma.Flow.size;
          Table.cell_float r.Flow.ma.Flow.power;
          Table.cell_int r.Flow.mp.Flow.size;
          Table.cell_float r.Flow.mp.Flow.power;
          Table.cell_float ~decimals:1 r.Flow.area_penalty_pct;
          Table.cell_float ~decimals:1 r.Flow.power_saving_pct ])
    rows;
  Table.add_separator t;
  let pen, sav = averages (List.map snd rows) in
  Table.add_row t
    [ "Average"; ""; ""; ""; ""; ""; ""; "";
      Table.cell_float ~decimals:1 pen;
      Table.cell_float ~decimals:1 sav ];
  Printf.sprintf "%s\n%s" title (Table.render t)

let degraded r =
  not
    (Dpa_power.Engine.all_exact r.Flow.ma.Flow.degradation
    && Dpa_power.Engine.all_exact r.Flow.mp.Flow.degradation
    && r.Flow.mp.Flow.degraded_measurements = 0)

let degradation_summary r =
  if not (degraded r) then None
  else
    Some
      (Printf.sprintf "degraded estimates — MA: %s; MP: %s; %d of %d search measurements"
         (Dpa_power.Engine.degradation_to_string r.Flow.ma.Flow.degradation)
         (Dpa_power.Engine.degradation_to_string r.Flow.mp.Flow.degradation)
         r.Flow.mp.Flow.degraded_measurements r.Flow.mp.Flow.measurements)

let summary r =
  let timing =
    match r.Flow.clock with
    | None -> ""
    | Some clk ->
      Printf.sprintf " under a %.2f-unit clock (MA %s, MP %s)" clk
        (if r.Flow.ma.Flow.met then "met" else "VIOLATED")
        (if r.Flow.mp.Flow.met then "met" else "VIOLATED")
  in
  let degradation =
    match degradation_summary r with
    | None -> ""
    | Some s -> Printf.sprintf " [%s]" s
  in
  Printf.sprintf
    "%s (%d PIs, %d POs): minimum-area phases %s give %d cells at power %.3f; \
     minimum-power phases %s (%s, %d measurements) give %d cells at power %.3f — \
     %.1f%% power saving for %.1f%% area penalty%s.%s"
    r.Flow.circuit r.Flow.n_pi r.Flow.n_po
    (Dpa_synth.Phase.to_string r.Flow.ma.Flow.assignment)
    r.Flow.ma.Flow.size r.Flow.ma.Flow.power
    (Dpa_synth.Phase.to_string r.Flow.mp.Flow.assignment)
    r.Flow.mp.Flow.strategy r.Flow.mp.Flow.measurements r.Flow.mp.Flow.size
    r.Flow.mp.Flow.power r.Flow.power_saving_pct r.Flow.area_penalty_pct timing
    degradation

let csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "circuit,description,pis,pos,ma_size,ma_power,mp_size,mp_power,area_penalty_pct,\
     power_saving_pct,ma_delay,mp_delay,clock,mp_strategy,mp_measurements,\
     ma_estimate,mp_estimate\n";
  List.iter
    (fun (desc, r) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%.6f,%d,%.6f,%.3f,%.3f,%.4f,%.4f,%s,%s,%d,%s,%s\n"
           r.Flow.circuit desc r.Flow.n_pi r.Flow.n_po r.Flow.ma.Flow.size
           r.Flow.ma.Flow.power r.Flow.mp.Flow.size r.Flow.mp.Flow.power
           r.Flow.area_penalty_pct r.Flow.power_saving_pct
           r.Flow.ma.Flow.critical_delay r.Flow.mp.Flow.critical_delay
           (match r.Flow.clock with Some c -> Printf.sprintf "%.4f" c | None -> "")
           r.Flow.mp.Flow.strategy r.Flow.mp.Flow.measurements
           (Dpa_power.Engine.degradation_label r.Flow.ma.Flow.degradation)
           (Dpa_power.Engine.degradation_label r.Flow.mp.Flow.degradation)))
    rows;
  Buffer.contents buf
