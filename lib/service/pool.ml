module Jsonlite = Dpa_util.Jsonlite
module Dpa_error = Dpa_util.Dpa_error
module Cancel = Dpa_util.Cancel
module Fault = Dpa_util.Fault
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics
module Clock = Dpa_obs.Clock

type job = {
  line : string;
  enqueued_ns : int;
  reply : string -> unit;
}

(* One request currently executing on a worker. [replied] is the
   exactly-once latch: the worker's normal reply, the worker's dying
   reply and the watchdog's abandonment reply all funnel through
   [reply_once], and whoever flips the latch first wins. *)
type inflight = {
  job : job;
  started_ns : int;
  cancel : Cancel.t;
  replied : bool Atomic.t;
}

(* One staffed position in the pool. The [domain] occupying a slot can
   change over time (crashes, abandonment); [generation] is bumped at
   each change so a retired domain notices it has been replaced and
   exits instead of competing with its successor for jobs. [inflight]
   holds the *same* option cell the worker installed, so clearing is a
   compare-and-set that cannot clobber a successor's registration. *)
type slot = {
  index : int;
  generation : int Atomic.t;
  heartbeat_ns : int Atomic.t;  (* last time this worker popped/replied *)
  crashed : bool Atomic.t;  (* set only by a worker's abnormal exit *)
  inflight : inflight option Atomic.t;
  mutable domain : unit Domain.t option;  (* touched by the owner domain only *)
}

type t = {
  slots : slot array;
  queue : job Jobqueue.t;
  jobs : int;
  cache : Rescache.t option;  (* shared result cache, [None] = disabled *)
  on_shutdown : unit -> unit;
  stopping : bool Atomic.t;
  soft_limit_s : float;
  hard_limit_s : float;
  deadline_grace : float;
  panics : int Atomic.t;
  replacements : int Atomic.t;
  rescues : int Atomic.t;
  abandoned_requests : int Atomic.t;
  ewma_ms : float Atomic.t;  (* per-request latency EWMA, for retry hints *)
  mutable abandoned : unit Domain.t list;
      (* hung domains whose slots were restaffed; never joined (they are
         hung by definition) — reclaimed at process exit *)
}

(* service-layer observability cells (eager registration: domain-safe) *)
let c_requests = Metrics.counter ~help:"requests executed by the pool" "service.requests"

let c_errors =
  Metrics.counter ~help:"requests answered with a structured error" "service.errors"

let c_busy_us =
  Metrics.counter ~help:"microseconds workers spent executing requests"
    "service.worker.busy_us"

let c_panics =
  Metrics.counter ~help:"worker domains that died abnormally" "service.worker.panics"

let c_replaced =
  Metrics.counter ~help:"worker domains replaced by the watchdog"
    "service.worker.replaced"

let c_rescued =
  Metrics.counter ~help:"overrunning requests cancelled by the watchdog"
    "service.worker.rescued"

let g_depth =
  Metrics.gauge ~help:"jobs waiting in the queue, sampled at each pop"
    "service.queue.depth"

let h_latency =
  Metrics.histogram ~help:"request execution latency (decode to reply)"
    "service.request.ms"

let h_wait =
  Metrics.histogram ~help:"time a request waited in the queue" "service.queue.wait_ms"

(* Best-effort id recovery for error responses: a request that fails
   protocol decoding still gets its id echoed when the line parses as an
   object with a numeric id. *)
let salvage_id line =
  match Jsonlite.parse line with
  | exception Jsonlite.Parse_error _ -> 0
  | json -> (
    match Jsonlite.member_opt "id" json with
    | Some (Jsonlite.Num f) when Float.is_integer f -> int_of_float f
    | _ -> 0)

let reply_once infl response =
  if not (Atomic.exchange infl.replied true) then infl.job.reply response

let num n = Jsonlite.Num (float_of_int n)

let fnum f = Jsonlite.Num f

let process_line ?par ?(cancel = Cancel.none) ?stats ?cache line =
  match Protocol.parse_request line with
  | Error e ->
    Metrics.incr c_errors;
    (Protocol.error_response ~id:(salvage_id line) e, false)
  | Ok { Protocol.id; request; cache = mode } -> (
    let cmd = Protocol.cmd_name request in
    let is_shutdown = request = Protocol.Shutdown in
    match (request, stats) with
    | Protocol.Stats, Some snapshot -> (Protocol.ok_response ~id ~cmd (snapshot ()), false)
    | _ -> (
      (* [pooled] is part of the key: bdd_nodes can differ between the
         pool and no-pool execution paths (see Handler), and a cache
         entry must only ever answer for byte-identical executions *)
      let ckey =
        match (cache, mode) with
        | Some c, `Use -> Option.map (fun k -> (c, k)) (Rescache.key ~pooled:(par <> None) request)
        | Some _, `Bypass | None, _ -> None
      in
      match Option.bind ckey (fun (c, k) -> Rescache.find c k) with
      | Some result -> (Protocol.ok_response_text ~id ~cmd result, false)
      | None -> (
        match
          Trace.with_span "service.request"
            ~args:[ ("cmd", Trace.Str cmd); ("id", Trace.Int id) ]
            (fun () -> Handler.execute ?par ~cancel request)
        with
        | result ->
          (* encode once; the same bytes are stored and sent, so a later
             hit is byte-identical to this cold response by construction *)
          let encoded = Jsonlite.encode result in
          (match ckey with
          | Some (c, k) -> Rescache.store c ~key:k ~cmd ~result:encoded
          | None -> ());
          (Protocol.ok_response_text ~id ~cmd encoded, is_shutdown)
        | exception e ->
          Metrics.incr c_errors;
          let err =
            match Dpa_error.of_exn e with
            | Some err -> err
            | None -> Dpa_error.Internal (Printexc.to_string e)
          in
          (Protocol.error_response ~id err, is_shutdown))))

(* ------------------------------------------------------------------ *)
(* Health snapshot                                                      *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  let now = Clock.now_ns () in
  let busy = ref 0 in
  let oldest_inflight_ms = ref 0.0 in
  let oldest_heartbeat_ms = ref 0.0 in
  Array.iter
    (fun slot ->
      let hb = Atomic.get slot.heartbeat_ns in
      if hb > 0 then
        oldest_heartbeat_ms :=
          Float.max !oldest_heartbeat_ms (float_of_int (now - hb) /. 1e6);
      match Atomic.get slot.inflight with
      | Some infl ->
        incr busy;
        oldest_inflight_ms :=
          Float.max !oldest_inflight_ms (float_of_int (now - infl.started_ns) /. 1e6)
      | None -> ())
    t.slots;
  let injections =
    Fault.injection_counts ()
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (p, n) -> (Fault.point_to_string p, num n))
  in
  (* computed from the crashed atomics only: [stats_json] runs on worker
     domains, which must not read the watchdog-owned [domain] fields *)
  let strength =
    Array.fold_left
      (fun acc slot -> if Atomic.get slot.crashed then acc else acc + 1)
      0 t.slots
  in
  Jsonlite.Obj
    ([
      ("workers", num (Array.length t.slots));
      ("strength", num strength);
      ("busy", num !busy);
      ("queue_depth", num (Jobqueue.length t.queue));
      ("panics", num (Atomic.get t.panics));
      ("replacements", num (Atomic.get t.replacements));
      ("rescues", num (Atomic.get t.rescues));
      ("abandoned_requests", num (Atomic.get t.abandoned_requests));
      ("latency_ewma_ms", fnum (Atomic.get t.ewma_ms));
      ("oldest_inflight_ms", fnum !oldest_inflight_ms);
      ("oldest_heartbeat_ms", fnum !oldest_heartbeat_ms);
      ("injections", Jsonlite.Obj injections);
    ]
    @
    match t.cache with
    | Some c -> [ ("cache", Rescache.stats_json c) ]
    | None -> [])

let suggest_retry_ms t =
  (* queue depth × per-request EWMA, spread across the workers: roughly
     when the backlog in front of a retry will have drained. Clamped so
     clients neither hammer (>= 25ms) nor stall (<= 5s). *)
  let depth = Jobqueue.length t.queue in
  let per_req = Float.max 10.0 (Atomic.get t.ewma_ms) in
  let workers = float_of_int (Array.length t.slots) in
  let est = per_req *. float_of_int (depth + 1) /. workers in
  int_of_float (Float.min 5000.0 (Float.max 25.0 est))

let update_ewma t ms =
  (* racy read-modify-write is fine: this is a smoothed hint, not an
     accounting value *)
  let prev = Atomic.get t.ewma_ms in
  Atomic.set t.ewma_ms (if prev <= 0.0 then ms else (0.8 *. prev) +. (0.2 *. ms))

(* ------------------------------------------------------------------ *)
(* Worker loop                                                          *)
(* ------------------------------------------------------------------ *)

(* The cancellation token a request runs under. A request that carries
   [deadline_s] gets a token firing at [deadline_grace ×] that: the
   engine's own budget deadline fires first and degrades gracefully
   through the ladder, and the token is the hard backstop when the
   ladder itself is stuck (an injected stall, a pathological cone). *)
let token_for t line =
  match Protocol.parse_request line with
  | Ok { Protocol.request; _ } -> (
    match Protocol.request_deadline_s request with
    | Some d when d > 0.0 -> Cancel.create ~deadline_in:(t.deadline_grace *. d) ()
    | Some _ | None -> Cancel.create ())
  | Error _ -> Cancel.create ()

let worker_body t slot ~generation par =
  let rec loop () =
    if Atomic.get slot.generation <> generation then
      (* the watchdog restaffed this slot while we were stuck: our
         successor owns it now — bow out without touching the queue *)
      ()
    else
      match Jobqueue.pop t.queue with
      | None -> ()
      | Some job ->
        Atomic.set slot.heartbeat_ns (Clock.now_ns ());
        Metrics.set g_depth (float_of_int (Jobqueue.length t.queue));
        let t0 = Clock.now_ns () in
        Metrics.observe h_wait (float_of_int (t0 - job.enqueued_ns) /. 1e6);
        let infl =
          { job; started_ns = t0; cancel = token_for t job.line; replied = Atomic.make false }
        in
        let cell = Some infl in
        Atomic.set slot.inflight cell;
        (try
           if Fault.fire Fault.Worker_panic then raise Fault.Injected_panic;
           let response, is_shutdown =
             process_line ?par ~cancel:infl.cancel
               ~stats:(fun () -> stats_json t)
               ?cache:t.cache job.line
           in
           Metrics.incr c_requests;
           (* reply before shutdown so the requester always sees its answer *)
           reply_once infl response;
           ignore (Atomic.compare_and_set slot.inflight cell None);
           let dur_ns = Clock.now_ns () - t0 in
           Metrics.observe h_latency (float_of_int dur_ns /. 1e6);
           Metrics.add c_busy_us (max 0 (dur_ns / 1000));
           update_ewma t (float_of_int dur_ns /. 1e6);
           Atomic.set slot.heartbeat_ns (Clock.now_ns ());
           if is_shutdown then t.on_shutdown ()
         with e ->
           (* the domain is dying with a request on its hands: answer the
              client with a typed error first, then let the exception
              escape and kill the domain the way a real crash would *)
           Metrics.incr c_errors;
           let msg =
             Printf.sprintf "worker %d died executing request: %s" slot.index
               (Printexc.to_string e)
           in
           reply_once infl
             (Protocol.error_response ~id:(salvage_id job.line) (Dpa_error.Internal msg));
           ignore (Atomic.compare_and_set slot.inflight cell None);
           raise e);
        loop ()
  in
  loop ()

let worker t slot ~generation =
  (* the intra-request pool lives and dies with the worker domain: its
     sub-domains are resident across requests (no spawn per request) and
     it has exactly one submitter — this worker — by construction.
     jobs = 1 runs without a pool: byte-for-byte the pre-pool service.
     [Par.with_pool] shuts the sub-domains down even when the body
     raises, so a panicking worker leaks nothing. *)
  try
    if t.jobs <= 1 then worker_body t slot ~generation None
    else Dpa_util.Par.with_pool ~jobs:t.jobs (fun par -> worker_body t slot ~generation (Some par))
  with _ ->
    (* abnormal exit: flag the slot for the watchdog. The in-flight
       request (if any) was already answered on the way out. *)
    Atomic.incr t.panics;
    Metrics.incr c_panics;
    Atomic.set slot.crashed true

let spawn_slot t slot =
  let generation = Atomic.get slot.generation in
  slot.domain <- Some (Domain.spawn (fun () -> worker t slot ~generation))

(* ------------------------------------------------------------------ *)
(* Watchdog                                                             *)
(* ------------------------------------------------------------------ *)

let watch t =
  if not (Atomic.get t.stopping) then begin
    let now = Clock.now_ns () in
    Array.iter
      (fun slot ->
        if Atomic.get slot.crashed then begin
          (* crashed domain: it answered its request on the way down and
             has already returned — join the corpse, restaff the slot *)
          (match slot.domain with
          | Some d -> ( try Domain.join d with _ -> ())
          | None -> ());
          slot.domain <- None;
          Atomic.set slot.crashed false;
          Atomic.incr slot.generation;
          Atomic.set slot.inflight None;
          Atomic.incr t.replacements;
          Metrics.incr c_replaced;
          spawn_slot t slot
        end
        else
          match Atomic.get slot.inflight with
          | None -> ()
          | Some infl as cell ->
            let elapsed_s = float_of_int (now - infl.started_ns) /. 1e9 in
            if t.hard_limit_s > 0.0 && elapsed_s > t.hard_limit_s then begin
              (* the worker ignored cancellation past the hard limit:
                 answer its client now, retire the hung domain (never
                 joined — it is hung) and restaff the slot *)
              let msg =
                Printf.sprintf
                  "request abandoned by watchdog after %.1fs (worker %d unresponsive)"
                  elapsed_s slot.index
              in
              reply_once infl
                (Protocol.error_response ~id:(salvage_id infl.job.line)
                   (Dpa_error.Internal msg));
              Metrics.incr c_errors;
              ignore (Atomic.compare_and_set slot.inflight cell None);
              Atomic.incr slot.generation;
              (match slot.domain with
              | Some d -> t.abandoned <- d :: t.abandoned
              | None -> ());
              slot.domain <- None;
              Atomic.incr t.abandoned_requests;
              Atomic.incr t.replacements;
              Metrics.incr c_replaced;
              spawn_slot t slot
            end
            else if
              t.soft_limit_s > 0.0
              && elapsed_s > t.soft_limit_s
              && not (Cancel.flag_set infl.cancel)
            then begin
              (* soft rescue: fire the request's own token and let the
                 kernel polling unwind it cooperatively *)
              Cancel.cancel
                ~reason:
                  (Printf.sprintf "watchdog: request exceeded %.3gs soft limit"
                     t.soft_limit_s)
                infl.cancel;
              Atomic.incr t.rescues;
              Metrics.incr c_rescued
            end)
      t.slots
  end

let worker_strength t =
  Array.fold_left
    (fun acc slot ->
      if slot.domain <> None && not (Atomic.get slot.crashed) then acc + 1 else acc)
    0 t.slots

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let create ?(jobs = 1) ?(soft_limit_s = 30.0) ?(hard_limit_s = 120.0)
    ?(deadline_grace = 2.0) ?cache ~workers ~on_shutdown queue =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if deadline_grace < 1.0 then invalid_arg "Pool.create: deadline_grace must be >= 1";
  let t =
    {
      slots =
        Array.init workers (fun index ->
            {
              index;
              generation = Atomic.make 0;
              heartbeat_ns = Atomic.make 0;
              crashed = Atomic.make false;
              inflight = Atomic.make None;
              domain = None;
            });
      queue;
      jobs;
      cache;
      on_shutdown;
      stopping = Atomic.make false;
      soft_limit_s;
      hard_limit_s;
      deadline_grace;
      panics = Atomic.make 0;
      replacements = Atomic.make 0;
      rescues = Atomic.make 0;
      abandoned_requests = Atomic.make 0;
      ewma_ms = Atomic.make 0.0;
      abandoned = [];
    }
  in
  Array.iter (spawn_slot t) t.slots;
  t

let join t =
  Atomic.set t.stopping true;
  Array.iter
    (fun slot ->
      match slot.domain with
      | Some d ->
        (try Domain.join d with _ -> ());
        slot.domain <- None
      | None -> ())
    t.slots
(* abandoned domains are hung by definition: joining them would block
   shutdown forever, so they are reclaimed by process exit instead *)
