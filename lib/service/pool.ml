module Jsonlite = Dpa_util.Jsonlite
module Dpa_error = Dpa_util.Dpa_error
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics
module Clock = Dpa_obs.Clock

type job = {
  line : string;
  enqueued_ns : int;
  reply : string -> unit;
}

type t = {
  domains : unit Domain.t array;
}

(* service-layer observability cells (eager registration: domain-safe) *)
let c_requests = Metrics.counter ~help:"requests executed by the pool" "service.requests"

let c_errors =
  Metrics.counter ~help:"requests answered with a structured error" "service.errors"

let c_busy_us =
  Metrics.counter ~help:"microseconds workers spent executing requests"
    "service.worker.busy_us"

let g_depth =
  Metrics.gauge ~help:"jobs waiting in the queue, sampled at each pop"
    "service.queue.depth"

let h_latency =
  Metrics.histogram ~help:"request execution latency (decode to reply)"
    "service.request.ms"

let h_wait =
  Metrics.histogram ~help:"time a request waited in the queue" "service.queue.wait_ms"

(* Best-effort id recovery for error responses: a request that fails
   protocol decoding still gets its id echoed when the line parses as an
   object with a numeric id. *)
let salvage_id line =
  match Jsonlite.parse line with
  | exception Jsonlite.Parse_error _ -> 0
  | json -> (
    match Jsonlite.member_opt "id" json with
    | Some (Jsonlite.Num f) when Float.is_integer f -> int_of_float f
    | _ -> 0)

let process_line ?par line =
  match Protocol.parse_request line with
  | Error e ->
    Metrics.incr c_errors;
    (Protocol.error_response ~id:(salvage_id line) e, false)
  | Ok { Protocol.id; request } -> (
    let cmd = Protocol.cmd_name request in
    let is_shutdown = request = Protocol.Shutdown in
    match
      Trace.with_span "service.request"
        ~args:[ ("cmd", Trace.Str cmd); ("id", Trace.Int id) ]
        (fun () -> Handler.execute ?par request)
    with
    | result -> (Protocol.ok_response ~id ~cmd result, is_shutdown)
    | exception e ->
      Metrics.incr c_errors;
      let err =
        match Dpa_error.of_exn e with
        | Some err -> err
        | None -> Dpa_error.Internal (Printexc.to_string e)
      in
      (Protocol.error_response ~id err, is_shutdown))

let worker ~jobs ~queue ~on_shutdown index =
  ignore index;
  let drain par =
  let rec loop () =
    match Jobqueue.pop queue with
    | None -> ()
    | Some job ->
      Metrics.set g_depth (float_of_int (Jobqueue.length queue));
      let t0 = Clock.now_ns () in
      Metrics.observe h_wait (float_of_int (t0 - job.enqueued_ns) /. 1e6);
      let response, is_shutdown = process_line ?par job.line in
      Metrics.incr c_requests;
      (* reply before shutdown so the requester always sees its answer *)
      job.reply response;
      let dur_ns = Clock.now_ns () - t0 in
      Metrics.observe h_latency (float_of_int dur_ns /. 1e6);
      Metrics.add c_busy_us (max 0 (dur_ns / 1000));
      if is_shutdown then on_shutdown ();
      loop ()
  in
  loop ()
  in
  (* the intra-request pool lives and dies with the worker domain: its
     sub-domains are resident across requests (no spawn per request) and
     it has exactly one submitter — this worker — by construction.
     jobs = 1 runs without a pool: byte-for-byte the pre-pool service. *)
  if jobs <= 1 then drain None
  else Dpa_util.Par.with_pool ~jobs (fun par -> drain (Some par))

let create ?(jobs = 1) ~workers ~on_shutdown queue =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    domains =
      Array.init workers (fun i ->
          Domain.spawn (fun () -> worker ~jobs ~queue ~on_shutdown i));
  }

let join t = Array.iter Domain.join t.domains
