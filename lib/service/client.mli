(** Client side of the wire protocol: connect, submit, batch, retry.

    {!request} is the one-shot path ([dominoflow submit]): one line out,
    one line back. {!run_batch} is the streaming path ([dominoflow
    batch]): it pipelines every request over a single connection with a
    select-based duplex pump — reading responses while there are still
    requests to write, so neither side's socket buffer can deadlock the
    exchange.

    With a {!retry} policy, [run_batch] also survives the failures a
    hardened server is allowed to answer with: [overloaded] responses
    are backed off (capped exponential + jitter, stretched by the
    server's [retry_after_ms] hint) and resubmitted, and a connection
    dropping mid-batch triggers a reconnect that resubmits exactly the
    requests whose answers never arrived — correlated on the echoed
    [id], so every request needs a distinct positive [id] for the
    policy to engage.

    {!with_self_hosted} runs a {!Server} in a spawned domain on a fresh
    temporary socket for the duration of a callback — how [dominoflow
    batch] without [--socket], the throughput bench, the chaos soak and
    the test suite get a real server (full wire protocol, real domains)
    without managing a daemon. *)

type t

val connect : string -> t
(** Connects to a server socket; {!Dpa_util.Dpa_error.Io} on failure. *)

val close : t -> unit

val request : t -> string -> string
(** [request t line] sends one request line and blocks for one response
    line. Raises [Dpa_error.Io] if the server closes the connection
    first. *)

type retry = {
  max_attempts : int;  (** total attempts per request, [>= 1] *)
  base_delay_ms : int;  (** backoff after attempt [k] is
      [min max_delay_ms (base_delay_ms × 2{^k-1})], or the server's
      [retry_after_ms] hint when larger *)
  max_delay_ms : int;
  jitter : float;  (** ± this fraction of the delay, uniformly *)
  seed : int;  (** jitter stream seed — retries are reproducible *)
}

val default_retry : retry
(** 4 attempts, 50 ms base, 2 s cap, ±20% jitter, seed 0. *)

val run_batch : ?retry:retry -> socket:string -> string list -> string list
(** Sends every line over one connection, pipelined.

    Without [retry]: returns the response lines {e in arrival order}
    (correlate/reorder on the echoed [id]); raises [Dpa_error.Io] if the
    connection drops before every response has arrived — the historical
    behaviour.

    With [retry] (and every request carrying a distinct positive [id]):
    responses are correlated on [id]; [overloaded] answers and requests
    orphaned by a dropped connection are resubmitted over a fresh
    connection after a backoff, up to [max_attempts]; the result is {e
    in request order}, exactly one response per request. Raises
    [Dpa_error.Io] when attempts are exhausted with requests still
    unanswered. If ids are missing or duplicated the policy cannot
    correlate and the call degrades to the single-attempt behaviour.

    Client-side fault injection ({!Dpa_util.Fault.Torn_frame},
    {!Dpa_util.Fault.Drop_conn}) acts inside the pump when armed in this
    process — the chaos soak's way of producing torn writes and
    mid-batch hangups against a live server. *)

val with_self_hosted :
  workers:int ->
  ?jobs:int ->
  ?queue_capacity:int ->
  ?max_request_bytes:int ->
  ?cache_mb:int ->
  ?cache_entries:int ->
  ?cache_snapshot:string ->
  (socket:string -> 'a) ->
  'a
(** [with_self_hosted ~workers f] starts a server in its own domain on a
    fresh temp socket, waits until it is accepting, runs [f ~socket],
    then stops the server gracefully (draining in-flight work) and joins
    its domain — including when [f] raises. [jobs] (default 1) is the
    per-worker intra-request parallelism; [queue_capacity],
    [max_request_bytes] and the cache knobs forward to {!Server.config}
    (result cache on at the server defaults; [cache_mb:0] disables it;
    [cache_snapshot] makes the private server persist and reload its
    cache — how the warm-restart tests drive two server lifetimes over
    one snapshot file). *)
