(** Client side of the wire protocol: connect, submit, batch.

    {!request} is the one-shot path ([dominoflow submit]): one line out,
    one line back. {!run_batch} is the streaming path ([dominoflow
    batch]): it pipelines every request over a single connection with a
    select-based duplex pump — reading responses while there are still
    requests to write, so neither side's socket buffer can deadlock the
    exchange — and returns when every request has been answered.

    {!with_self_hosted} runs a {!Server} in a spawned domain on a fresh
    temporary socket for the duration of a callback — how [dominoflow
    batch] without [--socket], the throughput bench and the test suite
    get a real server (full wire protocol, real domains) without
    managing a daemon. *)

type t

val connect : string -> t
(** Connects to a server socket; {!Dpa_util.Dpa_error.Io} on failure. *)

val close : t -> unit

val request : t -> string -> string
(** [request t line] sends one request line and blocks for one response
    line. Raises [Dpa_error.Io] if the server closes the connection
    first. *)

val run_batch : socket:string -> string list -> string list
(** Sends every line over one connection, pipelined, and returns the
    response lines {e in arrival order} (correlate/reorder on the echoed
    [id]). Raises [Dpa_error.Io] if the connection drops before every
    response has arrived. *)

val with_self_hosted :
  workers:int -> ?jobs:int -> ?queue_capacity:int -> (socket:string -> 'a) -> 'a
(** [with_self_hosted ~workers f] starts a server in its own domain on a
    fresh temp socket, waits until it is accepting, runs [f ~socket],
    then stops the server gracefully (draining in-flight work) and joins
    its domain — including when [f] raises. [jobs] (default 1) is the
    per-worker intra-request parallelism ({!Server.config}). *)
