module Dpa_error = Dpa_util.Dpa_error

type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
}

let io_error fmt =
  Printf.ksprintf (fun msg -> Dpa_error.error (Dpa_error.Io msg)) fmt

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error "cannot connect to %s: %s" path (Unix.error_message err));
  { fd; rbuf = Buffer.create 1024 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd data =
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* One buffered line (newline stripped), or [None] at end of stream. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec take () =
    let data = Buffer.contents t.rbuf in
    match String.index_opt data '\n' with
    | Some nl ->
      let line = String.sub data 0 nl in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (nl + 1) (String.length data - nl - 1);
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length t.rbuf = 0 then None else io_error "truncated response line"
      | n ->
        Buffer.add_subbytes t.rbuf chunk 0 n;
        take ()
      | exception Unix.Unix_error (ECONNRESET, _, _) -> None)
  in
  take ()

let request t line =
  write_all t.fd (Bytes.of_string (line ^ "\n"));
  match read_line t with
  | Some response -> response
  | None -> io_error "server closed the connection before responding"

(* ------------------------------------------------------------------ *)
(* Pipelined batch                                                      *)
(* ------------------------------------------------------------------ *)

let run_batch ~socket lines =
  let n_requests = List.length lines in
  if n_requests = 0 then []
  else begin
    let t = connect socket in
    Fun.protect ~finally:(fun () -> close t) @@ fun () ->
    Unix.set_nonblock t.fd;
    let out = Bytes.of_string (String.concat "\n" lines ^ "\n") in
    let out_len = Bytes.length out in
    let sent = ref 0 in
    let responses = ref [] in
    let received = ref 0 in
    let chunk = Bytes.create 65536 in
    (* one select-driven pump: keep writing while reading, so a full
       buffer on either side never deadlocks the exchange *)
    while !received < n_requests do
      let want_write = !sent < out_len in
      match Unix.select [ t.fd ] (if want_write then [ t.fd ] else []) [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
        (if writable <> [] then
           try sent := !sent + Unix.write t.fd out !sent (out_len - !sent)
           with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ());
        if readable <> [] then begin
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
          | 0 ->
            io_error "server closed the connection after %d of %d responses"
              !received n_requests
          | n ->
            Buffer.add_subbytes t.rbuf chunk 0 n;
            let data = Buffer.contents t.rbuf in
            let len = String.length data in
            let start = ref 0 in
            (try
               while !start < len do
                 let nl = String.index_from data !start '\n' in
                 responses := String.sub data !start (nl - !start) :: !responses;
                 incr received;
                 start := nl + 1
               done
             with Not_found -> ());
            Buffer.clear t.rbuf;
            Buffer.add_substring t.rbuf data !start (len - !start)
        end
    done;
    List.rev !responses
  end

(* ------------------------------------------------------------------ *)
(* Self-hosted server                                                   *)
(* ------------------------------------------------------------------ *)

let fresh_socket_path () =
  let path = Filename.temp_file "dpa_service" ".sock" in
  (* temp_file creates the file; the server wants to bind the name *)
  (try Sys.remove path with Sys_error _ -> ());
  path

let with_self_hosted ~workers ?(jobs = 1) ?(queue_capacity = Server.default_queue_capacity) f =
  let socket = fresh_socket_path () in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let handle = ref None in
  let failure = ref None in
  let signal_ready h =
    Mutex.protect mutex (fun () ->
        handle := Some h;
        Condition.broadcast cond)
  in
  let server =
    Domain.spawn (fun () ->
        try
          Server.run ~on_ready:signal_ready
            { Server.socket_path = socket; workers; jobs; queue_capacity }
        with e ->
          Mutex.protect mutex (fun () ->
              failure := Some e;
              Condition.broadcast cond);
          raise e)
  in
  let ready =
    Mutex.protect mutex (fun () ->
        while !handle = None && !failure = None do
          Condition.wait cond mutex
        done;
        !handle)
  in
  match ready with
  | None ->
    (* the server died before listening; join re-raises its exception *)
    Domain.join server;
    assert false
  | Some h ->
    Fun.protect
      ~finally:(fun () ->
        Server.stop h;
        Domain.join server;
        try Sys.remove socket with Sys_error _ -> ())
      (fun () -> f ~socket)
