module Dpa_error = Dpa_util.Dpa_error
module Jsonlite = Dpa_util.Jsonlite
module Fault = Dpa_util.Fault

type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
}

let io_error fmt =
  Printf.ksprintf (fun msg -> Dpa_error.error (Dpa_error.Io msg)) fmt

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error "cannot connect to %s: %s" path (Unix.error_message err));
  { fd; rbuf = Buffer.create 1024 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd data =
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* One buffered line (newline stripped), or [None] at end of stream. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec take () =
    let data = Buffer.contents t.rbuf in
    match String.index_opt data '\n' with
    | Some nl ->
      let line = String.sub data 0 nl in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (nl + 1) (String.length data - nl - 1);
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length t.rbuf = 0 then None else io_error "truncated response line"
      | n ->
        Buffer.add_subbytes t.rbuf chunk 0 n;
        take ()
      | exception Unix.Unix_error (ECONNRESET, _, _) -> None)
  in
  take ()

let request t line =
  write_all t.fd (Bytes.of_string (line ^ "\n"));
  match read_line t with
  | Some response -> response
  | None -> io_error "server closed the connection before responding"

(* ------------------------------------------------------------------ *)
(* Pipelined batch                                                      *)
(* ------------------------------------------------------------------ *)

(* One pipelined exchange over one connection: write every line, read
   until [expect] responses arrived or the connection died. Client-side
   fault injection lives here: an armed [Torn_frame] splits a write into
   a short piece plus a delayed remainder, an armed [Drop_conn] hangs up
   mid-exchange — both of which the retrying wrapper must survive. *)
type pump_result = {
  got : string list;  (* arrival order *)
  dropped : bool;  (* connection died before [expect] responses *)
}

let pump t ~expect lines =
  if expect = 0 then { got = []; dropped = false }
  else begin
    Unix.set_nonblock t.fd;
    let out = Bytes.of_string (String.concat "\n" lines ^ "\n") in
    let out_len = Bytes.length out in
    let sent = ref 0 in
    let responses = ref [] in
    let received = ref 0 in
    let dropped = ref false in
    let chunk = Bytes.create 65536 in
    let faults = Fault.active () in
    (* one select-driven pump: keep writing while reading, so a full
       buffer on either side never deadlocks the exchange *)
    (try
       while (not !dropped) && !received < expect do
         begin
           let want_write = !sent < out_len in
           match Unix.select [ t.fd ] (if want_write then [ t.fd ] else []) [] (-1.0) with
           | exception Unix.Unix_error (EINTR, _, _) -> ()
           | readable, writable, _ ->
             (if writable <> [] then
                if faults && Fault.fire Fault.Drop_conn then begin
                  (* hang up mid-batch: written requests may already be
                     executing, their responses are lost with the fd *)
                  (try Unix.close t.fd with Unix.Unix_error _ -> ());
                  dropped := true
                end
                else
                  try
                    let remaining = out_len - !sent in
                    if faults && Fault.fire Fault.Torn_frame && remaining > 1 then begin
                      (* tear: a few bytes now, the rest after a pause *)
                      sent := !sent + Unix.write t.fd out !sent (min 7 remaining);
                      Fault.sleep Fault.Torn_frame
                    end
                    else sent := !sent + Unix.write t.fd out !sent remaining
                  with
                  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
                  | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) ->
                    dropped := true);
             if (not !dropped) && readable <> [] then begin
               match Unix.read t.fd chunk 0 (Bytes.length chunk) with
               | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
               | exception Unix.Unix_error ((ECONNRESET | EBADF | ENOTCONN), _, _) ->
                 dropped := true
               | 0 -> dropped := true
               | n ->
                 Buffer.add_subbytes t.rbuf chunk 0 n;
                 let data = Buffer.contents t.rbuf in
                 let len = String.length data in
                 let start = ref 0 in
                 (try
                    while !start < len do
                      let nl = String.index_from data !start '\n' in
                      responses := String.sub data !start (nl - !start) :: !responses;
                      incr received;
                      start := nl + 1
                    done
                  with Not_found -> ());
                 Buffer.clear t.rbuf;
                 Buffer.add_substring t.rbuf data !start (len - !start)
             end
         end
       done
     with Unix.Unix_error (EBADF, _, _) -> dropped := true);
    { got = List.rev !responses; dropped = !dropped }
  end

let run_batch_once ~socket lines =
  let expect = List.length lines in
  if expect = 0 then []
  else begin
    let t = connect socket in
    Fun.protect ~finally:(fun () -> close t) @@ fun () ->
    let r = pump t ~expect lines in
    if r.dropped then
      io_error "server closed the connection after %d of %d responses"
        (List.length r.got) expect;
    r.got
  end

(* ------------------------------------------------------------------ *)
(* Retrying batch                                                       *)
(* ------------------------------------------------------------------ *)

type retry = {
  max_attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  jitter : float;
  seed : int;
}

let default_retry =
  { max_attempts = 4; base_delay_ms = 50; max_delay_ms = 2000; jitter = 0.2; seed = 0 }

let request_id line =
  match Jsonlite.parse line with
  | exception Jsonlite.Parse_error _ -> None
  | json -> (
    match Jsonlite.member_opt "id" json with
    | Some (Jsonlite.Num f) when Float.is_integer f && f > 0.0 -> Some (int_of_float f)
    | _ -> None)

(* [Some (ids, by_id)] iff every line carries a distinct positive id —
   the precondition for resubmitting just the unanswered ones. *)
let correlatable lines =
  let tbl = Hashtbl.create 64 in
  let rec go acc = function
    | [] -> Some (List.rev acc, tbl)
    | line :: rest -> (
      match request_id line with
      | Some id when not (Hashtbl.mem tbl id) ->
        Hashtbl.add tbl id line;
        go (id :: acc) rest
      | _ -> None)
  in
  go [] lines

(* An [overloaded] response is an invitation to retry, not an answer:
   pull out its backoff hint. Returns [None] for every other response. *)
let overloaded_hint line =
  match Protocol.parse_response line with
  | Error _ -> None
  | Ok { Protocol.ok = true; _ } -> None
  | Ok { Protocol.rid; result; _ } -> (
    match Jsonlite.member_opt "kind" result with
    | Some (Jsonlite.Str "overloaded") ->
      let hint =
        match Jsonlite.member_opt "retry_after_ms" result with
        | Some (Jsonlite.Num f) when f > 0.0 -> int_of_float f
        | _ -> 0
      in
      Some (rid, hint)
    | _ -> None)

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

let run_batch ?retry ~socket lines =
  match retry with
  | None -> run_batch_once ~socket lines
  | Some policy -> (
    if policy.max_attempts < 1 then invalid_arg "Client.run_batch: max_attempts must be >= 1";
    match correlatable lines with
    | None ->
      (* without distinct positive ids there is no way to tell which
         requests a partial exchange answered: single attempt *)
      run_batch_once ~socket lines
    | Some (ids, by_id) ->
      let rng = Dpa_util.Rng.create policy.seed in
      let answers : (int, string) Hashtbl.t = Hashtbl.create (List.length ids) in
      let unanswered () = List.filter (fun id -> not (Hashtbl.mem answers id)) ids in
      let attempt = ref 0 in
      let finished = ref false in
      while not !finished do
        incr attempt;
        let todo = unanswered () in
        if todo = [] then finished := true
        else begin
          let todo_lines = List.map (Hashtbl.find by_id) todo in
          let expect = List.length todo_lines in
          let r =
            match connect socket with
            | t ->
              Fun.protect ~finally:(fun () -> close t) (fun () -> pump t ~expect todo_lines)
            | exception Dpa_error.Error (Dpa_error.Io _) ->
              (* connect refused: treat like a dropped exchange *)
              { got = []; dropped = true }
          in
          (* keep final answers; overloaded responses stay unanswered
             and size the backoff *)
          let max_hint = ref 0 in
          List.iter
            (fun line ->
              match overloaded_hint line with
              | Some (_, hint) -> max_hint := max !max_hint hint
              | None -> (
                match Protocol.parse_response line with
                | Ok { Protocol.rid; _ } when Hashtbl.mem by_id rid ->
                  Hashtbl.replace answers rid line
                | Ok _ | Error _ -> ()))
            r.got;
          if unanswered () = [] then finished := true
          else if !attempt >= policy.max_attempts then begin
            let missing = unanswered () in
            io_error "batch gave up after %d attempts with %d of %d requests unanswered (ids %s)"
              !attempt (List.length missing) (List.length ids)
              (String.concat "," (List.map string_of_int missing))
          end
          else begin
            (* capped exponential backoff with jitter, stretched by the
               server's own retry_after hint when it sent one *)
            let expo =
              min policy.max_delay_ms (policy.base_delay_ms * (1 lsl min 16 (!attempt - 1)))
            in
            let base = max expo !max_hint in
            let jitter_span = policy.jitter *. float_of_int base in
            let delta =
              if jitter_span > 0.0 then
                Dpa_util.Rng.float rng (2.0 *. jitter_span) -. jitter_span
              else 0.0
            in
            sleep_ms (max 0 (base + int_of_float delta))
          end
        end
      done;
      (* request order, so callers can zip with their inputs *)
      List.map (fun id -> Hashtbl.find answers id) ids)

(* ------------------------------------------------------------------ *)
(* Self-hosted server                                                   *)
(* ------------------------------------------------------------------ *)

let fresh_socket_path () =
  let path = Filename.temp_file "dpa_service" ".sock" in
  (* temp_file creates the file; the server wants to bind the name *)
  (try Sys.remove path with Sys_error _ -> ());
  path

let with_self_hosted ~workers ?(jobs = 1) ?(queue_capacity = Server.default_queue_capacity)
    ?(max_request_bytes = Server.default_max_request_bytes)
    ?(cache_mb = Server.default_cache_mb) ?(cache_entries = Server.default_cache_entries)
    ?cache_snapshot f =
  let socket = fresh_socket_path () in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let handle = ref None in
  let failure = ref None in
  let signal_ready h =
    Mutex.protect mutex (fun () ->
        handle := Some h;
        Condition.broadcast cond)
  in
  let server =
    Domain.spawn (fun () ->
        try
          Server.run ~on_ready:signal_ready
            {
              Server.socket_path = socket;
              workers;
              jobs;
              queue_capacity;
              max_request_bytes;
              cache_mb;
              cache_entries;
              cache_snapshot;
            }
        with e ->
          Mutex.protect mutex (fun () ->
              failure := Some e;
              Condition.broadcast cond);
          raise e)
  in
  let ready =
    Mutex.protect mutex (fun () ->
        while !handle = None && !failure = None do
          Condition.wait cond mutex
        done;
        !handle)
  in
  match ready with
  | None ->
    (* the server died before listening; join re-raises its exception *)
    Domain.join server;
    assert false
  | Some h ->
    Fun.protect
      ~finally:(fun () ->
        Server.stop h;
        Domain.join server;
        try Sys.remove socket with Sys_error _ -> ())
      (fun () -> f ~socket)
