(** Bounded multi-producer / multi-consumer queue (Mutex + Condition).

    The service's backpressure point: the accept loop pushes decoded
    requests and blocks once [capacity] jobs are waiting, so a flood of
    requests parks in the clients' socket buffers instead of growing the
    server heap; worker domains pop from the other end.

    {!close} flips the queue into drain mode: pending jobs are still
    handed out, further pushes are refused, and once empty every blocked
    {!pop} returns [None] — the workers' signal to exit. This is what
    makes shutdown graceful rather than abrupt. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1] or [Invalid_argument]. *)

val push : 'a t -> 'a -> bool
(** Blocks while the queue is full. [false] iff the queue was (or
    became) closed — the job was not enqueued. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking admission: [`Full] when [capacity] jobs are already
    waiting, [`Closed] after {!close}. The server's overload-shedding
    path — an explicit [overloaded] response instead of a blocked accept
    loop. *)

val pop : 'a t -> 'a option
(** Blocks while the queue is empty and open. [None] once the queue is
    closed and drained. *)

val close : 'a t -> unit
(** Idempotent. Wakes every blocked producer and consumer. *)

val length : 'a t -> int
(** Jobs currently waiting (racy by nature; for metrics). *)
