module Jsonlite = Dpa_util.Jsonlite
module Dpa_error = Dpa_util.Dpa_error
module Engine = Dpa_power.Engine

type source =
  | File of string
  | Inline of { text : string; format : [ `Blif | `Dln ] }

type budget_opts = {
  max_bdd_nodes : int option;
  deadline_s : float option;
  fallback : Engine.fallback;
  sim_backend : Dpa_sim.Backend.t;
}

type request =
  | Ping
  | Info of { source : source }
  | Estimate of {
      source : source;
      input_prob : float;
      phases : string option;
      budget : budget_opts option;
    }
  | Optimize of {
      source : source;
      input_prob : float;
      seed : int;
      budget : budget_opts option;
    }
  | Compare of {
      source : source;
      input_prob : float;
      seed : int;
      budget : budget_opts option;
    }
  | Stats
  | Shutdown

type cache_mode =
  [ `Use  (* default: probe the result cache, populate it on a miss *)
  | `Bypass  (* force the cold path: never probe, never populate *) ]

type envelope = { id : int; request : request; cache : cache_mode }

let cmd_name = function
  | Ping -> "ping"
  | Info _ -> "info"
  | Estimate _ -> "estimate"
  | Optimize _ -> "optimize"
  | Compare _ -> "compare"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* The wall-clock deadline a request carries, if any — the service derives
   its per-request cancellation token from this. *)
let request_deadline_s = function
  | Estimate { budget = Some b; _ }
  | Optimize { budget = Some b; _ }
  | Compare { budget = Some b; _ } -> b.deadline_s
  | Estimate _ | Optimize _ | Compare _ | Ping | Info _ | Stats | Shutdown -> None

(* ------------------------------------------------------------------ *)
(* Encoding (client side)                                               *)
(* ------------------------------------------------------------------ *)

let source_fields = function
  | File path -> [ ("file", Jsonlite.Str path) ]
  | Inline { text; format } ->
    [
      ("netlist", Jsonlite.Str text);
      ("format", Jsonlite.Str (match format with `Blif -> "blif" | `Dln -> "dln"));
    ]

let budget_fields = function
  | None -> []
  | Some b ->
    (match b.max_bdd_nodes with
    | Some n -> [ ("max_bdd_nodes", Jsonlite.Num (float_of_int n)) ]
    | None -> [])
    @ (match b.deadline_s with
      | Some s -> [ ("deadline_s", Jsonlite.Num s) ]
      | None -> [])
    @ [ ("fallback", Jsonlite.Str (Engine.fallback_to_string b.fallback)) ]
    (* emitted only when non-default, so pre-existing recorded request
       lines stay byte-identical *)
    @ (if b.sim_backend = Dpa_sim.Backend.default then []
       else [ ("sim_backend", Jsonlite.Str (Dpa_sim.Backend.to_string b.sim_backend)) ])

let request_to_json { id; request; cache } =
  let base = [ ("id", Jsonlite.Num (float_of_int id)); ("cmd", Jsonlite.Str (cmd_name request)) ] in
  (* emitted only when bypassing, so default request lines are unchanged
     from earlier protocol revisions *)
  let cache_fields =
    match cache with `Use -> [] | `Bypass -> [ ("cache", Jsonlite.Str "bypass") ]
  in
  let rest =
    match request with
    | Ping | Stats | Shutdown -> []
    | Info { source } -> source_fields source
    | Estimate { source; input_prob; phases; budget } ->
      source_fields source
      @ [ ("input_prob", Jsonlite.Num input_prob) ]
      @ (match phases with Some p -> [ ("phases", Jsonlite.Str p) ] | None -> [])
      @ budget_fields budget
    | Optimize { source; input_prob; seed; budget }
    | Compare { source; input_prob; seed; budget } ->
      source_fields source
      @ [
          ("input_prob", Jsonlite.Num input_prob);
          ("seed", Jsonlite.Num (float_of_int seed));
        ]
      @ budget_fields budget
  in
  Jsonlite.Obj (base @ rest @ cache_fields)

let request_line e = Jsonlite.encode (request_to_json e)

(* ------------------------------------------------------------------ *)
(* Decoding (server side)                                               *)
(* ------------------------------------------------------------------ *)

let invalid msg = Error (Dpa_error.Invalid_input msg)

let field_int ?default json key =
  match Jsonlite.member_opt key json with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> invalid (Printf.sprintf "missing field %S" key))
  | Some (Jsonlite.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> invalid (Printf.sprintf "field %S must be an integer" key)

let field_float ~default json key =
  match Jsonlite.member_opt key json with
  | None -> Ok default
  | Some (Jsonlite.Num f) -> Ok f
  | Some _ -> invalid (Printf.sprintf "field %S must be a number" key)

let field_str_opt json key =
  match Jsonlite.member_opt key json with
  | None -> Ok None
  | Some (Jsonlite.Str s) -> Ok (Some s)
  | Some _ -> invalid (Printf.sprintf "field %S must be a string" key)

let ( let* ) = Result.bind

let source_of json =
  let* file = field_str_opt json "file" in
  let* text = field_str_opt json "netlist" in
  let* format = field_str_opt json "format" in
  match file, text with
  | Some _, Some _ -> invalid "fields \"file\" and \"netlist\" are mutually exclusive"
  | None, None -> invalid "one of \"file\" or \"netlist\" is required"
  | Some path, None -> (
    match format with
    | None -> Ok (File path)
    | Some _ -> invalid "field \"format\" applies only to inline \"netlist\" text")
  | None, Some text -> (
    match format with
    | None | Some "dln" -> Ok (Inline { text; format = `Dln })
    | Some "blif" -> Ok (Inline { text; format = `Blif })
    | Some other -> invalid (Printf.sprintf "unknown format %S (blif|dln)" other))

let budget_of json =
  let* max_bdd_nodes =
    match Jsonlite.member_opt "max_bdd_nodes" json with
    | None -> Ok None
    | Some (Jsonlite.Num f) when Float.is_integer f && f > 0.0 ->
      Ok (Some (int_of_float f))
    | Some _ -> invalid "field \"max_bdd_nodes\" must be a positive integer"
  in
  let* deadline_s =
    match Jsonlite.member_opt "deadline_s" json with
    | None -> Ok None
    | Some (Jsonlite.Num f) when f > 0.0 -> Ok (Some f)
    | Some _ -> invalid "field \"deadline_s\" must be a positive number"
  in
  let* fallback =
    match Jsonlite.member_opt "fallback" json with
    | None -> Ok Engine.Simulate
    | Some (Jsonlite.Str s) -> (
      match Engine.fallback_of_string s with
      | Some f -> Ok f
      | None -> invalid (Printf.sprintf "unknown fallback %S (none|reorder|sim)" s))
    | Some _ -> invalid "field \"fallback\" must be a string"
  in
  let* sim_backend =
    match Jsonlite.member_opt "sim_backend" json with
    | None -> Ok Dpa_sim.Backend.default
    | Some (Jsonlite.Str s) -> (
      match Dpa_sim.Backend.of_string s with
      | Some b -> Ok b
      | None -> invalid (Printf.sprintf "unknown sim_backend %S (interp|compiled)" s))
    | Some _ -> invalid "field \"sim_backend\" must be a string"
  in
  if max_bdd_nodes = None && deadline_s = None && sim_backend = Dpa_sim.Backend.default
  then Ok None
  else Ok (Some { max_bdd_nodes; deadline_s; fallback; sim_backend })

let input_prob_of json =
  let* p = field_float ~default:0.5 json "input_prob" in
  if p < 0.0 || p > 1.0 then invalid "field \"input_prob\" must lie in [0,1]" else Ok p

let parse_request line =
  match Jsonlite.parse line with
  | exception Jsonlite.Parse_error msg ->
    Error (Dpa_error.Parse { source = "request"; line = None; message = msg })
  | Jsonlite.Obj _ as json -> (
    let* id = field_int ~default:0 json "id" in
    let* cmd =
      match Jsonlite.member_opt "cmd" json with
      | Some (Jsonlite.Str s) -> Ok s
      | Some _ -> invalid "field \"cmd\" must be a string"
      | None -> invalid "missing field \"cmd\""
    in
    let* request =
      match cmd with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | "info" ->
        let* source = source_of json in
        Ok (Info { source })
      | "estimate" ->
        let* source = source_of json in
        let* input_prob = input_prob_of json in
        let* phases = field_str_opt json "phases" in
        let* budget = budget_of json in
        Ok (Estimate { source; input_prob; phases; budget })
      | "optimize" | "compare" ->
        let* source = source_of json in
        let* input_prob = input_prob_of json in
        let* seed = field_int ~default:1 json "seed" in
        let* budget = budget_of json in
        if cmd = "optimize" then Ok (Optimize { source; input_prob; seed; budget })
        else Ok (Compare { source; input_prob; seed; budget })
      | other ->
        invalid
          (Printf.sprintf
             "unknown cmd %S (ping|info|estimate|optimize|compare|stats|shutdown)" other)
    in
    let* cache =
      match Jsonlite.member_opt "cache" json with
      | None | Some (Jsonlite.Str "use") -> Ok `Use
      | Some (Jsonlite.Str "bypass") -> Ok `Bypass
      | Some _ -> invalid "field \"cache\" must be \"use\" or \"bypass\""
    in
    Ok { id; request; cache })
  | _ -> Error (Dpa_error.Invalid_input "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

let error_kind (e : Dpa_error.t) =
  match e with
  | Dpa_error.Parse _ -> "parse"
  | Dpa_error.Invalid_input _ -> "invalid-input"
  | Dpa_error.Unsupported _ -> "unsupported"
  | Dpa_error.Budget _ -> "budget"
  | Dpa_error.Cancelled (Dpa_error.Deadline _) -> "deadline_exceeded"
  | Dpa_error.Cancelled (Dpa_error.Aborted _) -> "cancelled"
  | Dpa_error.Overloaded _ -> "overloaded"
  | Dpa_error.Io _ -> "io"
  | Dpa_error.Internal _ -> "internal"

let ok_response ~id ~cmd result =
  Jsonlite.encode
    (Jsonlite.Obj
       [
         ("id", Jsonlite.Num (float_of_int id));
         ("ok", Jsonlite.Bool true);
         ("cmd", Jsonlite.Str cmd);
         ("result", result);
       ])

(* The textual twin of [ok_response], for results that are already
   encoded (cache hits and the store-then-reply miss path). [Jsonlite]
   encodes the id and cmd pieces so the bytes agree with [ok_response]
   even for ids outside the integer-printing fast path; the byte
   equality of the two constructors is pinned by a test. *)
let ok_response_text ~id ~cmd result =
  String.concat ""
    [
      "{\"id\":";
      Jsonlite.encode (Jsonlite.Num (float_of_int id));
      ",\"ok\":true,\"cmd\":";
      Jsonlite.encode (Jsonlite.Str cmd);
      ",\"result\":";
      result;
      "}";
    ]

let error_response ~id e =
  let extra =
    match e with
    | Dpa_error.Overloaded { retry_after_ms } ->
      [ ("retry_after_ms", Jsonlite.Num (float_of_int retry_after_ms)) ]
    | _ -> []
  in
  Jsonlite.encode
    (Jsonlite.Obj
       [
         ("id", Jsonlite.Num (float_of_int id));
         ("ok", Jsonlite.Bool false);
         ( "error",
           Jsonlite.Obj
             ([
                ("kind", Jsonlite.Str (error_kind e));
                ("message", Jsonlite.Str (Dpa_error.to_string e));
                ("exit_code", Jsonlite.Num (float_of_int (Dpa_error.exit_code e)));
              ]
             @ extra) );
       ])

type response = {
  rid : int;
  ok : bool;
  cmd : string option;
  result : Jsonlite.t;
}

let parse_response line =
  match Jsonlite.parse line with
  | exception Jsonlite.Parse_error msg -> Error msg
  | json -> (
    try
      let ok = Jsonlite.to_bool (Jsonlite.member "ok" json) in
      Ok
        {
          rid = Jsonlite.to_int (Jsonlite.member "id" json);
          ok;
          cmd = Option.map Jsonlite.to_string (Jsonlite.member_opt "cmd" json);
          result =
            (if ok then Jsonlite.member "result" json else Jsonlite.member "error" json);
        }
    with Jsonlite.Parse_error msg -> Error msg)
