(** The resident phase-assignment server.

    [run] binds a Unix-domain socket, spawns the worker pool, and
    multiplexes client connections from the calling domain with
    [Unix.select]: complete request lines go into the bounded job queue
    (blocking there — not allocating — once it is full, so the queue
    bound is the server's backpressure), and worker domains write each
    response line back on the requesting connection under a
    per-connection mutex.

    Shutdown is graceful by construction: a well-formed [shutdown]
    request (or {!stop}, e.g. from a SIGINT handler) stops the accept
    loop, unlinks the socket, and closes the queue — which drains: jobs
    already accepted still execute and their responses are written
    before [run] returns. Requests arriving during the drain are
    answered with a structured [invalid-input] error, never silently
    dropped.

    Observability: [service.connections.accepted] / [service.rejected]
    counters and a [service.connections] gauge on top of the per-request
    cells documented in {!Pool}. [run] itself writes no trace or metrics
    file — the CLI wraps it in the same [--trace]/[--metrics] plumbing
    as every other subcommand. *)

type config = {
  socket_path : string;
  workers : int;
  jobs : int;
      (** intra-request parallelism per worker (each worker owns a
          private {!Dpa_util.Par} pool of this width); at most
          [workers × jobs] domains are ever busy. 1 = sequential
          requests, the pre-pool behaviour. *)
  queue_capacity : int;
}

val default_queue_capacity : int
(** 64. *)

type t
(** Handle onto a running server, valid while {!run} executes. *)

val stop : t -> unit
(** Triggers the same graceful drain as a [shutdown] request. Safe to
    call from any domain or from a signal handler; idempotent. *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** Blocks until the server has drained and every worker has exited.
    [on_ready] fires once the socket is listening — the hook self-hosted
    clients (tests, [dominoflow batch] without [--socket], the bench
    kernel) use to know when to connect. Raises
    {!Dpa_util.Dpa_error.Error} with an [Io] payload if the socket
    cannot be bound. *)
