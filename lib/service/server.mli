(** The resident phase-assignment server.

    [run] binds a Unix-domain socket, spawns the worker pool, and
    multiplexes client connections from the calling domain with
    [Unix.select]. Complete request lines are admitted to the bounded
    job queue {e non-blockingly}: when the queue is full the request is
    answered immediately with a structured [overloaded] error carrying a
    [retry_after_ms] hint ({!Pool.suggest_retry_ms}), so overload sheds
    explicitly instead of parking the accept loop. Worker domains never
    touch a socket — they append response lines to a per-connection
    write buffer, and the select loop flushes buffers with non-blocking
    writes. A stalled reader therefore only delays its own responses
    (and is dropped once its backlog passes 64 MB); it can never
    head-of-line-block a worker or another client.

    The select loop also runs the {!Pool.watch} watchdog tick every
    iteration (at least every 0.25 s), which is what replaces crashed
    worker domains and rescues or abandons overrunning requests while
    the server stays up.

    A request frame larger than [max_request_bytes] — whether a complete
    line or a newline-less flood — is answered with a structured
    [invalid-input] error {e before} the parser sees it (the flood also
    ends its connection, since the line boundary is lost).

    Shutdown is graceful by construction: a well-formed [shutdown]
    request (or {!stop}, e.g. from a SIGINT/SIGTERM handler) stops the
    accept loop, unlinks the socket, and closes the queue — which
    drains: jobs already accepted still execute and their responses are
    flushed before [run] returns. Requests arriving during the drain are
    answered with a structured [invalid-input] error, never silently
    dropped.

    Result caching: when [cache_mb > 0] the server owns one {!Rescache}
    shared by the whole worker pool, loaded from [cache_snapshot] before
    the pool starts and snapshotted back after the drain — so a
    graceful restart answers its first repetitive batch warm. Cache
    behaviour is entirely inside {!Pool.process_line}; the select loop
    never touches it.

    Fault injection: an armed {!Dpa_util.Fault.Write_stall} freezes a
    connection's flush for the fault parameter; {!Dpa_util.Fault}'s
    other server-side points act inside the pool. All injection sites
    cost one atomic load when injection is off.

    Observability: [service.connections.accepted] / [service.rejected] /
    [service.overloaded] / [service.oversized] counters and a
    [service.connections] gauge on top of the per-request cells
    documented in {!Pool}. [run] itself writes no trace or metrics file —
    the CLI wraps it in the same [--trace]/[--metrics] plumbing as every
    other subcommand. *)

type config = {
  socket_path : string;
  workers : int;
  jobs : int;
      (** intra-request parallelism per worker (each worker owns a
          private {!Dpa_util.Par} pool of this width); at most
          [workers × jobs] domains are ever busy. 1 = sequential
          requests, the pre-pool behaviour. *)
  queue_capacity : int;
  max_request_bytes : int;
      (** largest admissible request frame; larger frames get a
          structured error without being parsed *)
  cache_mb : int;
      (** byte bound of the shared {!Rescache} result cache in MiB;
          [0] disables caching entirely *)
  cache_entries : int;  (** entry bound of the result cache *)
  cache_snapshot : string option;
      (** path of the versioned cache snapshot: loaded before the pool
          starts (so a restarted daemon answers warm; a corrupt or
          version-skewed file is ignored with a warning on stderr) and
          written atomically after the pool has drained on graceful
          shutdown. [None] = in-memory cache only. *)
}

val default_queue_capacity : int
(** 64. *)

val default_max_request_bytes : int
(** 16 MiB. *)

val default_cache_mb : int
(** 64. *)

val default_cache_entries : int
(** 4096. *)

type t
(** Handle onto a running server, valid while {!run} executes. *)

val stop : t -> unit
(** Triggers the same graceful drain as a [shutdown] request. Safe to
    call from any domain or from a signal handler; idempotent. *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** Blocks until the server has drained and every worker has exited.
    [on_ready] fires once the socket is listening — the hook self-hosted
    clients (tests, [dominoflow batch] without [--socket], the bench
    kernel) use to know when to connect. Raises
    {!Dpa_util.Dpa_error.Error} with an [Io] payload if the socket
    cannot be bound. *)
