module Dpa_error = Dpa_util.Dpa_error
module Metrics = Dpa_obs.Metrics
module Clock = Dpa_obs.Clock

type config = {
  socket_path : string;
  workers : int;
  jobs : int;
  queue_capacity : int;
}

let default_queue_capacity = 64

(* A request line longer than this is a protocol violation (or a client
   that never sends a newline); the connection is dropped rather than
   letting its buffer grow without bound. *)
let max_line_bytes = 16 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wmutex : Mutex.t;
  mutable pending : int;  (* jobs in flight whose reply targets this fd *)
  mutable eof : bool;  (* stop reading: client closed or I/O error *)
  mutable closed : bool;  (* fd closed; only the accept loop does this *)
}

type t = {
  config : config;
  queue : Pool.job Jobqueue.t;
  stopping : bool Atomic.t;
  wake_w : Unix.file_descr;  (* self-pipe: wakes the select loop *)
}

let c_accepted =
  Metrics.counter ~help:"client connections accepted" "service.connections.accepted"

let c_rejected =
  Metrics.counter ~help:"requests rejected because the server was draining"
    "service.rejected"

let g_connections = Metrics.gauge ~help:"currently open connections" "service.connections"

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* wake the select loop; the pipe may already be gone during teardown *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* Worker-side reply: one response line per request, written whole under
   the connection mutex so concurrent workers never interleave bytes. *)
let conn_reply conn line =
  Mutex.protect conn.wmutex @@ fun () ->
  (if not (conn.closed || conn.eof) then
     try
       let data = Bytes.of_string (line ^ "\n") in
       let len = Bytes.length data in
       let off = ref 0 in
       while !off < len do
         off := !off + Unix.write conn.fd data !off (len - !off)
       done
     with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) ->
       conn.eof <- true);
  conn.pending <- conn.pending - 1

let drain_error =
  Dpa_error.Invalid_input "server is draining after shutdown; request rejected"

let reject conn line =
  Metrics.incr c_rejected;
  let id =
    match Dpa_util.Jsonlite.parse line with
    | exception Dpa_util.Jsonlite.Parse_error _ -> 0
    | json -> (
      match Dpa_util.Jsonlite.member_opt "id" json with
      | Some (Dpa_util.Jsonlite.Num f) when Float.is_integer f -> int_of_float f
      | _ -> 0)
  in
  Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1);
  conn_reply conn (Protocol.error_response ~id drain_error)

let submit t conn line =
  if Atomic.get t.stopping then reject conn line
  else begin
    Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1);
    let job =
      { Pool.line; enqueued_ns = Clock.now_ns (); reply = conn_reply conn }
    in
    (* blocks when the queue is full: bounded-queue backpressure *)
    if not (Jobqueue.push t.queue job) then begin
      (* queue closed between the stopping check and the push *)
      Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending - 1);
      reject conn line
    end
  end

(* Extract every complete line from the connection buffer and submit it;
   the tail (no newline yet) stays buffered. *)
let drain_lines t conn =
  let data = Buffer.contents conn.rbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       let nl = String.index_from data !start '\n' in
       let len = nl - !start in
       let len = if len > 0 && data.[!start + len - 1] = '\r' then len - 1 else len in
       let line = String.sub data !start len in
       if String.trim line <> "" then submit t conn line;
       start := nl + 1
     done
   with Not_found -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !start (n - !start);
  if Buffer.length conn.rbuf > max_line_bytes then
    Mutex.protect conn.wmutex (fun () -> conn.eof <- true)

let read_chunk = Bytes.create 65536

let handle_readable t conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> Mutex.protect conn.wmutex (fun () -> conn.eof <- true)
  | n ->
    Buffer.add_subbytes conn.rbuf read_chunk 0 n;
    drain_lines t conn
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
    Mutex.protect conn.wmutex (fun () -> conn.eof <- true)

(* Close a connection's fd once nothing will write to it again. Returns
   [true] when the connection is gone. *)
let reap conn =
  Mutex.protect conn.wmutex @@ fun () ->
  if (not conn.closed) && conn.eof && conn.pending = 0 then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    conn.closed <- true
  end;
  conn.closed

let bind_socket path =
  (* a stale socket file from a crashed server is replaced; a live one is
     indistinguishable here, so serve documents single-instance sockets *)
  if Sys.file_exists path then (try Unix.unlink path with Sys_error _ | Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Dpa_error.error
       (Dpa_error.Io
          (Printf.sprintf "cannot bind socket %s: %s" path (Unix.error_message err))));
  Unix.listen fd 64;
  fd

let run ?(on_ready = fun (_ : t) -> ()) config =
  if config.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if config.jobs < 1 then invalid_arg "Server.run: jobs must be >= 1";
  (* a client that disconnects mid-reply must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_socket config.socket_path in
  let wake_r, wake_w = Unix.pipe () in
  let queue = Jobqueue.create ~capacity:config.queue_capacity in
  let t = { config; queue; stopping = Atomic.make false; wake_w } in
  let pool =
    Pool.create ~jobs:config.jobs ~workers:config.workers
      ~on_shutdown:(fun () -> stop t)
      queue
  in
  let conns = ref [] in
  on_ready t;
  (* accept/read loop: runs until a shutdown is requested *)
  while not (Atomic.get t.stopping) do
    let readable_conns = List.filter (fun c -> not (c.eof || c.closed)) !conns in
    let fds = listen_fd :: wake_r :: List.map (fun c -> c.fd) readable_conns in
    (* finite timeout: reap connections whose last in-flight reply
       finished since the previous iteration *)
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
      if List.mem listen_fd ready then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          Metrics.incr c_accepted;
          conns :=
            {
              fd;
              rbuf = Buffer.create 1024;
              wmutex = Mutex.create ();
              pending = 0;
              eof = false;
              closed = false;
            }
            :: !conns
        | exception Unix.Unix_error ((ECONNABORTED | EINTR), _, _) -> ()
      end;
      List.iter (fun c -> if List.mem c.fd ready then handle_readable t c) readable_conns;
      conns := List.filter (fun c -> not (reap c)) !conns;
      Metrics.set g_connections (float_of_int (List.length !conns))
  done;
  (* drain: no new connections or requests; queued jobs still execute *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Sys_error _ | Unix.Unix_error _ -> ());
  Jobqueue.close queue;
  Pool.join pool;
  (* workers are gone, so pending counts are final: flush and close *)
  List.iter
    (fun c ->
      ignore
        (Mutex.protect c.wmutex (fun () ->
             c.eof <- true;
             c.pending <- 0));
      ignore (reap c))
    !conns;
  conns := [];
  Metrics.set g_connections 0.0;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  try Unix.close wake_w with Unix.Unix_error _ -> ()
