module Dpa_error = Dpa_util.Dpa_error
module Fault = Dpa_util.Fault
module Metrics = Dpa_obs.Metrics
module Clock = Dpa_obs.Clock

type config = {
  socket_path : string;
  workers : int;
  jobs : int;
  queue_capacity : int;
  max_request_bytes : int;
  cache_mb : int;
  cache_entries : int;
  cache_snapshot : string option;
}

let default_queue_capacity = 64

let default_max_request_bytes = 16 * 1024 * 1024

let default_cache_mb = 64

let default_cache_entries = 4096

(* A slow reader's response backlog is capped: past this the connection
   is dropped rather than letting the server buffer grow without bound. *)
let max_write_buffer = 64 * 1024 * 1024

(* Bytes attempted per [Unix.write]; bounds the copy out of the write
   buffer so a huge response does not stage itself whole on every
   partial flush. *)
let write_chunk_bytes = 256 * 1024

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wmutex : Mutex.t;
  wbuf : Buffer.t;  (* response bytes not yet on the wire; under wmutex *)
  mutable woff : int;  (* consumed prefix of wbuf *)
  mutable pending : int;  (* jobs in flight whose reply targets this fd *)
  mutable eof : bool;  (* stop reading: client closed or I/O error *)
  mutable closed : bool;  (* fd closed; only the accept loop does this *)
  mutable stall_until : float;  (* Write_stall fault: no flush before this *)
}

type t = {
  config : config;
  queue : Pool.job Jobqueue.t;
  stopping : bool Atomic.t;
  wake_w : Unix.file_descr;  (* self-pipe: wakes the select loop *)
  mutable pool : Pool.t option;  (* set once in [run], before any submit *)
}

let c_accepted =
  Metrics.counter ~help:"client connections accepted" "service.connections.accepted"

let c_rejected =
  Metrics.counter ~help:"requests rejected because the server was draining"
    "service.rejected"

let c_overloaded =
  Metrics.counter ~help:"requests shed with an overloaded response"
    "service.overloaded"

let c_oversized =
  Metrics.counter ~help:"request frames rejected for exceeding max_request_bytes"
    "service.oversized"

let g_connections = Metrics.gauge ~help:"currently open connections" "service.connections"

let wake_byte = Bytes.make 1 '!'

let wake t =
  (* non-blocking pipe: a full pipe already guarantees a pending wakeup *)
  try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stopping true) then wake t

(* Best-effort id recovery for error responses produced before (or
   instead of) protocol decoding. *)
let salvage_id line =
  match Dpa_util.Jsonlite.parse line with
  | exception Dpa_util.Jsonlite.Parse_error _ -> 0
  | json -> (
    match Dpa_util.Jsonlite.member_opt "id" json with
    | Some (Dpa_util.Jsonlite.Num f) when Float.is_integer f -> int_of_float f
    | _ -> 0)

(* Worker-side reply: append the response line to the connection's write
   buffer under its mutex and wake the select loop, which owns the fd.
   Workers never touch the socket, so a stalled client can only slow its
   own buffer down — never park a worker domain (head-of-line blocking).
   A reader falling further than [max_write_buffer] behind is dropped. *)
let conn_reply t conn line =
  Mutex.protect conn.wmutex (fun () ->
      if not (conn.closed || conn.eof) then begin
        Buffer.add_string conn.wbuf line;
        Buffer.add_char conn.wbuf '\n';
        if Buffer.length conn.wbuf - conn.woff > max_write_buffer then begin
          conn.eof <- true;
          Buffer.clear conn.wbuf;
          conn.woff <- 0
        end
      end;
      conn.pending <- conn.pending - 1);
  wake t

let conn_has_output conn =
  Mutex.protect conn.wmutex (fun () ->
      (not conn.closed) && Buffer.length conn.wbuf > conn.woff)

(* Select-loop-side flush: non-blocking writes until the buffer drains
   or the socket would block. The armed [Write_stall] fault freezes the
   flush for its parameter duration — the soak's way of producing slow
   readers on demand. *)
let flush_conn conn =
  Mutex.protect conn.wmutex @@ fun () ->
  if not conn.closed then begin
    if conn.stall_until = 0.0 && Fault.active () && Fault.fire Fault.Write_stall then
      conn.stall_until <- Unix.gettimeofday () +. Fault.param Fault.Write_stall;
    if conn.stall_until > 0.0 && Unix.gettimeofday () < conn.stall_until then ()
    else begin
      conn.stall_until <- 0.0;
      let continue = ref true in
      while !continue do
        let len = Buffer.length conn.wbuf in
        if conn.woff >= len then begin
          Buffer.clear conn.wbuf;
          conn.woff <- 0;
          continue := false
        end
        else begin
          let chunk = min (len - conn.woff) write_chunk_bytes in
          let data = Bytes.create chunk in
          Buffer.blit conn.wbuf conn.woff data 0 chunk;
          match Unix.write conn.fd data 0 chunk with
          | 0 -> continue := false
          | n -> conn.woff <- conn.woff + n
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            continue := false
          | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) ->
            conn.eof <- true;
            Buffer.clear conn.wbuf;
            conn.woff <- 0;
            continue := false
        end
      done
    end
  end

let drain_error =
  Dpa_error.Invalid_input "server is draining after shutdown; request rejected"

let reject t conn line =
  Metrics.incr c_rejected;
  Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1);
  conn_reply t conn (Protocol.error_response ~id:(salvage_id line) drain_error)

let submit t conn line =
  if Atomic.get t.stopping then reject t conn line
  else begin
    Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1);
    let job = { Pool.line; enqueued_ns = Clock.now_ns (); reply = conn_reply t conn } in
    match Jobqueue.try_push t.queue job with
    | `Ok -> ()
    | `Closed ->
      (* queue closed between the stopping check and the push *)
      Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending - 1);
      reject t conn line
    | `Full ->
      (* explicit shedding: a structured [overloaded] answer with a
         backoff hint instead of a blocked accept loop *)
      Metrics.incr c_overloaded;
      let retry_after_ms =
        match t.pool with Some p -> Pool.suggest_retry_ms p | None -> 100
      in
      conn_reply t conn
        (Protocol.error_response ~id:(salvage_id line)
           (Dpa_error.Overloaded { retry_after_ms }))
  end

let oversized_error t conn ~bytes =
  Metrics.incr c_oversized;
  Mutex.protect conn.wmutex (fun () -> conn.pending <- conn.pending + 1);
  conn_reply t conn
    (Protocol.error_response ~id:0
       (Dpa_error.Invalid_input
          (Printf.sprintf "request frame of %d bytes exceeds max_request_bytes=%d"
             bytes t.config.max_request_bytes)))

(* Extract every complete line from the connection buffer and submit it;
   the tail (no newline yet) stays buffered. A frame larger than
   [max_request_bytes] — complete or still growing — is answered with a
   structured error before the parser ever sees it; a growing one also
   ends the connection, because the line boundary is lost. *)
let drain_lines t conn =
  let data = Buffer.contents conn.rbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       let nl = String.index_from data !start '\n' in
       let len = nl - !start in
       let len = if len > 0 && data.[!start + len - 1] = '\r' then len - 1 else len in
       if len > t.config.max_request_bytes then oversized_error t conn ~bytes:len
       else begin
         let line = String.sub data !start len in
         if String.trim line <> "" then submit t conn line
       end;
       start := nl + 1
     done
   with Not_found -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !start (n - !start);
  if Buffer.length conn.rbuf > t.config.max_request_bytes then begin
    oversized_error t conn ~bytes:(Buffer.length conn.rbuf);
    Buffer.clear conn.rbuf;
    Mutex.protect conn.wmutex (fun () -> conn.eof <- true)
  end

let read_chunk = Bytes.create 65536

let handle_readable t conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> Mutex.protect conn.wmutex (fun () -> conn.eof <- true)
  | n ->
    Buffer.add_subbytes conn.rbuf read_chunk 0 n;
    drain_lines t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
    Mutex.protect conn.wmutex (fun () -> conn.eof <- true)

(* Close a connection's fd once nothing will write to it again. Returns
   [true] when the connection is gone. *)
let reap conn =
  Mutex.protect conn.wmutex @@ fun () ->
  if
    (not conn.closed) && conn.eof && conn.pending = 0
    && Buffer.length conn.wbuf <= conn.woff
  then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    conn.closed <- true
  end;
  conn.closed

let bind_socket path =
  (* a stale socket file from a crashed server is replaced; a live one is
     indistinguishable here, so serve documents single-instance sockets *)
  if Sys.file_exists path then (try Unix.unlink path with Sys_error _ | Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Dpa_error.error
       (Dpa_error.Io
          (Printf.sprintf "cannot bind socket %s: %s" path (Unix.error_message err))));
  Unix.listen fd 64;
  fd

(* After the pool has drained, write buffers may still hold response
   bytes: push them out with a bounded blocking-ish loop so the last
   responses of a drain are never lost to process exit. *)
let final_flush conns =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go conns =
    let live =
      List.filter (fun c -> conn_has_output c && not c.eof) conns
    in
    if live <> [] && Unix.gettimeofday () < deadline then begin
      List.iter (fun c -> c.stall_until <- 0.0) live;
      List.iter flush_conn live;
      let still = List.filter (fun c -> conn_has_output c && not c.eof) live in
      if still <> [] then begin
        (match Unix.select [] (List.map (fun c -> c.fd) still) [] 0.05 with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | _ -> ());
        go still
      end
    end
  in
  go conns

let run ?(on_ready = fun (_ : t) -> ()) config =
  if config.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if config.jobs < 1 then invalid_arg "Server.run: jobs must be >= 1";
  if config.max_request_bytes < 1 then
    invalid_arg "Server.run: max_request_bytes must be >= 1";
  (* a client that disconnects mid-reply must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_socket config.socket_path in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let queue = Jobqueue.create ~capacity:config.queue_capacity in
  let t = { config; queue; stopping = Atomic.make false; wake_w; pool = None } in
  (* the shared result cache, warmed from the snapshot when one exists.
     A corrupt or version-skewed snapshot means a cold start with a
     structured warning — never a refused boot. *)
  let cache =
    if config.cache_mb <= 0 then None
    else
      Some
        (Rescache.create
           ~max_bytes:(config.cache_mb * 1024 * 1024)
           ~max_entries:config.cache_entries ())
  in
  (match (cache, config.cache_snapshot) with
  | Some c, Some path -> (
    match Rescache.load c path with
    | `Loaded _ | `Missing -> ()
    | `Rejected reason ->
      Printf.eprintf "dominoflow: warning: cache snapshot %s rejected (%s); starting cold\n%!"
        path reason)
  | _ -> ());
  let pool =
    Pool.create ~jobs:config.jobs ~workers:config.workers ?cache
      ~on_shutdown:(fun () -> stop t)
      queue
  in
  t.pool <- Some pool;
  let conns = ref [] in
  let wake_buf = Bytes.create 4096 in
  on_ready t;
  (* accept/read/flush loop: runs until a shutdown is requested *)
  while not (Atomic.get t.stopping) do
    let readable_conns = List.filter (fun c -> not (c.eof || c.closed)) !conns in
    let read_fds = listen_fd :: wake_r :: List.map (fun c -> c.fd) readable_conns in
    let now = Unix.gettimeofday () in
    let writable_conns =
      (* stalled connections are left out so an armed Write_stall does
         not spin the loop; the 0.25s timeout retries them *)
      List.filter
        (fun c -> conn_has_output c && (not c.eof) && c.stall_until <= now)
        !conns
    in
    let write_fds = List.map (fun c -> c.fd) writable_conns in
    (* finite timeout: watchdog ticks, stall expiries and reaping happen
       even when no fd turns ready *)
    (match Unix.select read_fds write_fds [] 0.25 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
      if List.mem wake_r ready_r then (
        try ignore (Unix.read wake_r wake_buf 0 (Bytes.length wake_buf))
        with Unix.Unix_error _ -> ());
      if List.mem listen_fd ready_r then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          Metrics.incr c_accepted;
          Unix.set_nonblock fd;
          conns :=
            {
              fd;
              rbuf = Buffer.create 1024;
              wmutex = Mutex.create ();
              wbuf = Buffer.create 1024;
              woff = 0;
              pending = 0;
              eof = false;
              closed = false;
              stall_until = 0.0;
            }
            :: !conns
        | exception Unix.Unix_error ((ECONNABORTED | EINTR | EAGAIN | EWOULDBLOCK), _, _)
          -> ()
      end;
      List.iter (fun c -> if List.mem c.fd ready_r then handle_readable t c) readable_conns;
      List.iter (fun c -> if List.mem c.fd ready_w then flush_conn c) writable_conns);
    (* flush stall expiries missed by the writable set *)
    List.iter
      (fun c ->
        if c.stall_until > 0.0 && c.stall_until <= Unix.gettimeofday () then flush_conn c)
      !conns;
    Pool.watch pool;
    conns := List.filter (fun c -> not (reap c)) !conns;
    Metrics.set g_connections (float_of_int (List.length !conns))
  done;
  (* drain: no new connections or requests; queued jobs still execute *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Sys_error _ | Unix.Unix_error _ -> ());
  Jobqueue.close queue;
  Pool.join pool;
  (* workers are gone: the cache is quiescent, so the graceful-drain
     snapshot sees a consistent final state *)
  (match (cache, config.cache_snapshot) with
  | Some c, Some path -> (
    match Rescache.save c path with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "dominoflow: warning: cache snapshot %s not written (%s)\n%!" path
        msg)
  | _ -> ());
  (* workers are gone, so buffers and pending counts are final: flush
     the last responses, then close every connection *)
  final_flush !conns;
  List.iter
    (fun c ->
      ignore
        (Mutex.protect c.wmutex (fun () ->
             c.eof <- true;
             c.pending <- 0;
             Buffer.clear c.wbuf;
             c.woff <- 0));
      ignore (reap c))
    !conns;
  conns := [];
  Metrics.set g_connections 0.0;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  try Unix.close wake_w with Unix.Unix_error _ -> ()
