(** The service wire protocol: newline-delimited JSON requests and
    responses over a Unix-domain socket.

    One request is one line, one JSON object; the server answers each
    with exactly one line. Responses to concurrently executing requests
    may arrive out of request order — the echoed [id] is the correlation
    key, and the batch client reorders on it.

    Request schema (fields beyond [cmd] are optional unless noted):
    {v
    {"id": 7, "cmd": "estimate",
     "file": "data/frg1_synthetic.blif",     -- or "netlist": "<text>"
     "format": "blif" | "dln",               -- inline text only
     "input_prob": 0.5, "phases": "+-+",
     "max_bdd_nodes": 20000, "deadline_s": 1.5,
     "fallback": "none" | "reorder" | "sim",
     "sim_backend": "interp" | "compiled",
     "seed": 1,                              -- optimize / compare
     "cache": "use" | "bypass"}              -- result-cache control
    v}
    [cmd] is one of [ping], [info], [estimate], [optimize], [compare],
    [stats], [shutdown]. Responses are [{"id": n, "ok": true, "cmd": c,
    "result": {...}}] or [{"id": n, "ok": false, "error": {"kind": k,
    "message": m, "exit_code": c}}] with [kind]/[exit_code] following
    the {!Dpa_util.Dpa_error} taxonomy — a malformed or unexecutable
    request produces a structured error response, never a dead worker.
    An [overloaded] error additionally carries [retry_after_ms].

    [cache] (default ["use"]) controls the server's result cache
    ([Rescache]): ["bypass"] forces the cold execution path — the cache
    is neither probed nor populated — which is how [validate] runs and
    tests pin cached-vs-cold byte identity. The response carries no
    cache marker {e by design}: a hit must be byte-identical to the cold
    response, so hit/miss accounting is observable only through [stats]
    and the metrics registry. *)

module Jsonlite = Dpa_util.Jsonlite

(** Where the circuit text comes from: a server-side path (loaded with
    the shared {!Dpa_logic.Io} loader) or inline netlist text shipped in
    the request. *)
type source =
  | File of string
  | Inline of { text : string; format : [ `Blif | `Dln ] }

type budget_opts = {
  max_bdd_nodes : int option;
  deadline_s : float option;
  fallback : Dpa_power.Engine.fallback;
  sim_backend : Dpa_sim.Backend.t;
      (** Monte-Carlo rung backend; wire field [sim_backend]
          (["interp"] | ["compiled"]), omitted when equal to
          {!Dpa_sim.Backend.default} so default-budget request lines are
          unchanged from earlier protocol revisions *)
}

type request =
  | Ping
  | Info of { source : source }
  | Estimate of {
      source : source;
      input_prob : float;
      phases : string option;  (** [None] = all positive *)
      budget : budget_opts option;
    }
  | Optimize of {
      source : source;
      input_prob : float;
      seed : int;
      budget : budget_opts option;
    }
  | Compare of {
      source : source;
      input_prob : float;
      seed : int;
      budget : budget_opts option;
    }
  | Stats
      (** service-health snapshot (worker strength, watchdog counters,
          queue depth) — answered by the pool itself, not a handler *)
  | Shutdown

(** Per-request result-cache control; wire field [cache], omitted when
    [`Use] so default request lines are unchanged from earlier protocol
    revisions. *)
type cache_mode =
  [ `Use  (** probe the result cache, populate it on a miss (default) *)
  | `Bypass  (** force the cold path: never probe, never populate *) ]

type envelope = { id : int; request : request; cache : cache_mode }
(** [id] defaults to 0 when the request omits it. *)

val cmd_name : request -> string

val request_deadline_s : request -> float option
(** The request's wall-clock deadline ([deadline_s] of its budget), if
    any — what the service derives the per-request cancellation token
    from. *)

val request_to_json : envelope -> Jsonlite.t
(** Client-side encoding; {!parse_request} of the encoded line yields an
    equal envelope (the round trip the protocol tests pin down). *)

val request_line : envelope -> string
(** [Jsonlite.encode (request_to_json e)] — one wire line, no newline. *)

val parse_request : string -> (envelope, Dpa_util.Dpa_error.t) result
(** Malformed JSON, an unknown [cmd], or ill-typed fields map to
    [Dpa_error.Parse] / [Invalid_input] payloads. *)

(** {2 Responses} *)

val ok_response : id:int -> cmd:string -> Jsonlite.t -> string
(** One response line (no newline). *)

val ok_response_text : id:int -> cmd:string -> string -> string
(** [ok_response_text ~id ~cmd result] is byte-identical to
    [ok_response ~id ~cmd r] whenever [result = Jsonlite.encode r] —
    the splice the result cache uses to wrap a stored (already encoded)
    [result] payload in a fresh envelope without a decode/re-encode
    round trip. The equality is pinned by a test. *)

val error_response : id:int -> Dpa_util.Dpa_error.t -> string

val error_kind : Dpa_util.Dpa_error.t -> string
(** Stable [kind] strings: [parse], [invalid-input], [unsupported],
    [budget], [deadline_exceeded], [cancelled], [overloaded], [io],
    [internal]. An [overloaded] error object additionally carries a
    numeric [retry_after_ms] field. *)

(** Client-side view of one parsed response line. *)
type response = {
  rid : int;
  ok : bool;
  cmd : string option;  (** present on success *)
  result : Jsonlite.t;  (** the [result] object, or the [error] object *)
}

val parse_response : string -> (response, string) result
