module Jsonlite = Dpa_util.Jsonlite
module Dpa_error = Dpa_util.Dpa_error
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Engine = Dpa_power.Engine
module Flow = Dpa_core.Flow

let num n = Jsonlite.Num (float_of_int n)

let fnum f = Jsonlite.Num f

let str s = Jsonlite.Str s

let load = function
  | Protocol.File path -> Dpa_logic.Io.load_file path
  | Protocol.Inline { text; format } ->
    let source = match format with `Blif -> "inline.blif" | `Dln -> "inline.dln" in
    Dpa_logic.Io.parse_netlist ~source text

let engine_budget = function
  | None -> None
  | Some { Protocol.max_bdd_nodes; deadline_s; fallback; sim_backend } ->
    Some
      { Engine.default_budget with Engine.max_bdd_nodes; deadline_s; fallback; sim_backend }

let assignment_of ~n = function
  | None -> Phase.all_positive n
  | Some s when String.length s = n && String.for_all (fun c -> c = '+' || c = '-') s ->
    Array.init n (fun k -> if s.[k] = '-' then Phase.Negative else Phase.Positive)
  | Some s when String.length s <> n ->
    Dpa_error.error
      (Dpa_error.Invalid_input
         (Printf.sprintf "phase string %S has %d characters for %d outputs" s
            (String.length s) n))
  | Some _ ->
    Dpa_error.error
      (Dpa_error.Invalid_input "phase string may contain only '+' and '-'")

(* ------------------------------------------------------------------ *)
(* Handlers                                                             *)
(* ------------------------------------------------------------------ *)

let ping () = Jsonlite.Obj [ ("pong", Jsonlite.Bool true) ]

let info source =
  let net = load source in
  let s = Dpa_logic.Netstats.compute net in
  let opt = Dpa_synth.Opt.optimize net in
  Jsonlite.Obj
    [
      ("name", str s.Dpa_logic.Netstats.name);
      ("inputs", num s.Dpa_logic.Netstats.inputs);
      ("outputs", num s.Dpa_logic.Netstats.outputs);
      ("gates", num s.Dpa_logic.Netstats.gates);
      ("max_depth", num s.Dpa_logic.Netstats.max_depth);
      ("optimized_gates", num (Netlist.gate_count opt));
    ]

let estimate ?par ?cancel ~source ~input_prob ~phases ~budget () =
  (* the exact [dominoflow estimate] pipeline: optimize, realize the
     phase assignment inverter-free, map, price through the engine *)
  let net = Dpa_synth.Opt.optimize (load source) in
  let n = Netlist.num_outputs net in
  let assignment = assignment_of ~n phases in
  let input_probs = Array.make (Netlist.num_inputs net) input_prob in
  let mapped = Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net assignment) in
  let est = Engine.estimate ?par ?budget:(engine_budget budget) ?cancel ~input_probs mapped in
  let r = est.Engine.report in
  let block = Dpa_domino.Mapped.net mapped in
  let outputs = Netlist.outputs block in
  Jsonlite.Obj
    [
      ("phases", str (Phase.to_string assignment));
      ("cells", num (Dpa_domino.Mapped.size mapped));
      ("total", fnum r.Dpa_power.Estimate.total);
      ("domino_power", fnum r.Dpa_power.Estimate.domino_power);
      ("input_inverter_power", fnum r.Dpa_power.Estimate.input_inverter_power);
      ("output_inverter_power", fnum r.Dpa_power.Estimate.output_inverter_power);
      ("bdd_nodes", num r.Dpa_power.Estimate.bdd_nodes);
      ("exact", Jsonlite.Bool (Engine.all_exact est.Engine.degradation));
      ("degradation", str (Engine.degradation_to_string est.Engine.degradation));
      ( "outputs",
        Jsonlite.Arr (Array.to_list (Array.map (fun (name, _) -> str name) outputs)) );
      ( "output_probs",
        Jsonlite.Arr
          (Array.to_list
             (Array.map
                (fun (_, id) -> fnum r.Dpa_power.Estimate.node_probs.(id))
                outputs)) );
    ]

let realization_json (r : Flow.realization) =
  Jsonlite.Obj
    [
      ("phases", str (Phase.to_string r.Flow.assignment));
      ("size", num r.Flow.size);
      ("power", fnum r.Flow.power);
      ("critical_delay", fnum r.Flow.critical_delay);
      ("met", Jsonlite.Bool r.Flow.met);
      ("measurements", num r.Flow.measurements);
      ("strategy", str r.Flow.strategy);
      ("degradation", str (Engine.degradation_label r.Flow.degradation));
    ]

let flow_result ?par ?(cancel = Dpa_util.Cancel.none) ~source ~input_prob ~seed ~budget () =
  let net = load source in
  let config =
    { Flow.default_config with
      Flow.input_prob;
      seed;
      budget = engine_budget budget;
      par;
      cancel }
  in
  Flow.compare_ma_mp ~config net

let optimize ?par ?cancel ~source ~input_prob ~seed ~budget () =
  let r = flow_result ?par ?cancel ~source ~input_prob ~seed ~budget () in
  realization_json r.Flow.mp

let compare ?par ?cancel ~source ~input_prob ~seed ~budget () =
  let r = flow_result ?par ?cancel ~source ~input_prob ~seed ~budget () in
  Jsonlite.Obj
    [
      ("circuit", str r.Flow.circuit);
      ("n_pi", num r.Flow.n_pi);
      ("n_po", num r.Flow.n_po);
      ("ma", realization_json r.Flow.ma);
      ("mp", realization_json r.Flow.mp);
      ("area_penalty_pct", fnum r.Flow.area_penalty_pct);
      ("power_saving_pct", fnum r.Flow.power_saving_pct);
    ]

let execute ?par ?cancel = function
  | Protocol.Ping -> ping ()
  | Protocol.Shutdown -> Jsonlite.Obj [ ("stopping", Jsonlite.Bool true) ]
  | Protocol.Info { source } -> info source
  | Protocol.Estimate { source; input_prob; phases; budget } ->
    estimate ?par ?cancel ~source ~input_prob ~phases ~budget ()
  | Protocol.Optimize { source; input_prob; seed; budget } ->
    optimize ?par ?cancel ~source ~input_prob ~seed ~budget ()
  | Protocol.Compare { source; input_prob; seed; budget } ->
    compare ?par ?cancel ~source ~input_prob ~seed ~budget ()
  | Protocol.Stats ->
    (* the pool intercepts [stats] before dispatching here; the direct
       handler path has no pool to report on *)
    Dpa_error.error
      (Dpa_error.Unsupported "stats is answered by the service pool, not a handler")
