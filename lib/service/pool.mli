(** Worker pool: OCaml 5 domains draining the job queue, under a
    watchdog.

    Each worker pops raw request lines, decodes them ({!Protocol}),
    executes them ({!Handler}) and hands the response line to the job's
    [reply] callback. Every failure — malformed JSON, a missing file, a
    blown budget with fallback disabled, even an unrecognized exception —
    becomes a structured error response. BDD managers live and die inside
    {!Handler.execute}, so each domain effectively owns a private manager
    per request and results are bit-identical to the one-shot CLI.

    {b Fault tolerance.} Every admitted request is answered exactly once,
    whatever happens to the worker executing it:

    - Each request runs under a per-request {!Dpa_util.Cancel} token.
      Requests carrying [deadline_s] get a token firing at
      [deadline_grace ×] that value — the engine's budget deadline fires
      first and degrades through the ladder; the token is the hard
      backstop when the ladder itself is stuck.
    - A worker that dies mid-request (a crash, or an injected
      {!Dpa_util.Fault.Injected_panic}) answers its in-flight request
      with a typed [internal] error on the way down and flags its slot;
      the next {!watch} tick joins the corpse and staffs a replacement
      without dropping queued jobs.
    - {!watch} also rescues overrunning requests: past [soft_limit_s] it
      fires the request's token (cooperative unwind through the kernel
      polling); past [hard_limit_s] it answers the client, retires the
      hung domain and restaffs the slot. Slot generations make a retired
      domain stand down instead of competing with its successor.
    - All replies go through an exactly-once latch, so a worker's normal
      reply, its dying reply and a watchdog abandonment reply can race
      without the client ever seeing two responses for one id.

    Observability (all through the domain-safe {!Dpa_obs} registry):
    [service.requests] / [service.errors] counters, [service.request.ms]
    and [service.queue.wait_ms] histograms, [service.queue.depth] gauge,
    [service.worker.busy_us], plus watchdog counters
    [service.worker.panics] / [service.worker.replaced] /
    [service.worker.rescued] and a [service.request] trace span per
    request. *)

type job = {
  line : string;  (** one raw request line, newline stripped *)
  enqueued_ns : int;  (** {!Dpa_obs.Clock.now_ns} at enqueue *)
  reply : string -> unit;
      (** called exactly once with the response line (no newline); must
          be safe to call from any worker domain *)
}

type t

val process_line :
  ?par:Dpa_util.Par.t ->
  ?cancel:Dpa_util.Cancel.t ->
  ?stats:(unit -> Dpa_util.Jsonlite.t) ->
  ?cache:Rescache.t ->
  string ->
  string * bool
(** [process_line line] is the full decode → execute → encode pipeline
    of one worker iteration: the response line, and whether the request
    was a well-formed [shutdown]. Exposed so tests (and the pool itself)
    exercise exactly the wire semantics without a socket. [par] is
    forwarded to {!Handler.execute}; it never changes a response byte.
    [cancel] aborts the execution with a [deadline_exceeded] /
    [cancelled] error response when it fires. [stats] answers the
    [stats] command from the pool's health record; without it the
    request falls through to {!Handler.execute} (which rejects it).

    [cache] is the shared {!Rescache}: a cacheable request (see the
    cache's interface) sent with [cache: "use"] is answered from it on a
    hit — byte-identical to cold execution — and populates it after a
    successful cold execution. [None] (the default), or [cache:
    "bypass"] in the request, runs the historical cold path untouched.
    Error responses are never cached. *)

val create :
  ?jobs:int ->
  ?soft_limit_s:float ->
  ?hard_limit_s:float ->
  ?deadline_grace:float ->
  ?cache:Rescache.t ->
  workers:int ->
  on_shutdown:(unit -> unit) ->
  job Jobqueue.t ->
  t
(** Spawns [workers] domains ([>= 1] or [Invalid_argument]). A worker
    that executes a well-formed [shutdown] request calls [on_shutdown]
    (once per such request) {e after} replying.

    [jobs] (default 1) is the intra-request parallelism width: each
    worker owns a private {!Dpa_util.Par} pool of that many jobs,
    created inside the worker domain and shut down when it exits (even
    on a panic), so the process runs at most [workers × jobs] busy
    domains — pick [jobs ≈ cores / workers] to avoid oversubscription.
    [jobs = 1] creates no pool at all: requests execute byte-for-byte
    as the pre-pool service did.

    [soft_limit_s] (default 30) and [hard_limit_s] (default 120) are
    the watchdog thresholds on a single request's wall clock: the soft
    limit fires the request's cancellation token, the hard limit
    abandons the worker. Either can be disabled by passing [0].
    [deadline_grace] (default 2, [>= 1]) scales a request's own
    [deadline_s] into its token's hard deadline.

    [cache] (default none) is the result cache shared by every worker;
    it is forwarded to {!process_line} on each request and reported
    under the [cache] key of {!stats_json}. *)

val watch : t -> unit
(** One watchdog tick: replace crashed workers, cancel requests past the
    soft limit, abandon workers past the hard limit. Must be called from
    a single owner domain (the server's select loop); cheap enough for
    every loop iteration. Does nothing once {!join} has begun. *)

val stats_json : t -> Dpa_util.Jsonlite.t
(** The [stats] command's payload: [workers] (configured), [strength]
    (slots not currently crashed), busy count, queue depth, watchdog
    counters ([panics], [replacements], [rescues],
    [abandoned_requests]), latency EWMA, oldest in-flight age,
    non-zero fault-injection counts, and — when a result cache is
    attached — its {!Rescache.stats_json} health under [cache]. *)

val suggest_retry_ms : t -> int
(** Backoff hint for [overloaded] responses: queue depth × latency EWMA
    across the workers, clamped to [25, 5000] ms. *)

val worker_strength : t -> int
(** Slots currently staffed with a live (non-crashed) domain — the
    chaos soak's "pool back at full strength" assertion. *)

val join : t -> unit
(** Waits for every staffed worker to exit — they do when the queue is
    closed and drained. Stops the watchdog first; abandoned (hung)
    domains are not waited for. *)
