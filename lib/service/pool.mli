(** Worker pool: OCaml 5 domains draining the job queue.

    Each worker pops raw request lines, decodes them ({!Protocol}),
    executes them ({!Handler}) and hands the response line to the job's
    [reply] callback. Every failure — malformed JSON, a missing file, a
    blown budget with fallback disabled, even an unrecognized exception —
    becomes a structured error response; a worker never dies with the
    request. BDD managers live and die inside {!Handler.execute}, so each
    domain effectively owns a private manager per request and results are
    bit-identical to the one-shot CLI.

    Observability (all through the domain-safe {!Dpa_obs} registry):
    [service.requests] / [service.errors] counters, [service.request.ms]
    and [service.queue.wait_ms] histograms, [service.queue.depth] gauge
    (sampled at each pop), [service.worker.busy_us] counter (whole-pool
    busy time, for utilization), plus a [service.request] trace span per
    request tagged with cmd, id and worker. *)

type job = {
  line : string;  (** one raw request line, newline stripped *)
  enqueued_ns : int;  (** {!Dpa_obs.Clock.now_ns} at enqueue *)
  reply : string -> unit;
      (** called exactly once with the response line (no newline); must
          be safe to call from any worker domain *)
}

type t

val process_line : ?par:Dpa_util.Par.t -> string -> string * bool
(** [process_line line] is the full decode → execute → encode pipeline
    of one worker iteration: the response line, and whether the request
    was a well-formed [shutdown]. Exposed so tests (and the pool itself)
    exercise exactly the wire semantics without a socket. [par] is
    forwarded to {!Handler.execute}; it never changes a response byte. *)

val create :
  ?jobs:int -> workers:int -> on_shutdown:(unit -> unit) -> job Jobqueue.t -> t
(** Spawns [workers] domains ([>= 1] or [Invalid_argument]). A worker
    that executes a well-formed [shutdown] request calls [on_shutdown]
    (once per such request) {e after} replying.

    [jobs] (default 1) is the intra-request parallelism width: each
    worker owns a private {!Dpa_util.Par} pool of that many jobs,
    created inside the worker domain and shut down when it exits, so
    the process runs at most [workers × jobs] busy domains — pick
    [jobs ≈ cores / workers] to avoid oversubscription. [jobs = 1]
    creates no pool at all: requests execute byte-for-byte as the
    pre-pool service did. *)

val join : t -> unit
(** Waits for every worker to exit — they do when the queue is closed
    and drained. *)
