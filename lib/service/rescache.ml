module Jsonlite = Dpa_util.Jsonlite
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Metrics cells (eager registration: domain-safe)                      *)
(* ------------------------------------------------------------------ *)

let c_hits = Metrics.counter ~help:"result-cache hits" "service.cache.hits"

let c_misses = Metrics.counter ~help:"result-cache misses" "service.cache.misses"

let c_evictions =
  Metrics.counter ~help:"result-cache entries evicted by the LRU bounds"
    "service.cache.evictions"

let c_stores = Metrics.counter ~help:"result-cache entries stored" "service.cache.stores"

let c_snapshot_rejected =
  Metrics.counter ~help:"cache snapshots rejected as corrupt or version-skewed"
    "service.cache.snapshot_rejected"

let g_bytes = Metrics.gauge ~help:"result-cache resident bytes" "service.cache.bytes"

let g_entries = Metrics.gauge ~help:"result-cache resident entries" "service.cache.entries"

(* ------------------------------------------------------------------ *)
(* Striped LRU                                                          *)
(* ------------------------------------------------------------------ *)

(* Intrusive doubly-linked list threaded through a circular sentinel:
   sent.next is the MRU end, sent.prev the LRU end. Option-free links
   keep the hot path allocation-light. *)
type node = {
  key : string;
  cmd : string;
  result : string;
  size : int;
  mutable prev : node;
  mutable next : node;
}

type stripe = {
  lock : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  sent : node;
  mutable bytes : int;
  mutable entries : int;
}

type t = {
  stripes : stripe array;
  stripe_max_bytes : int;
  stripe_max_entries : int;
  max_bytes : int;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  stores : int Atomic.t;
  total_bytes : int Atomic.t;
  total_entries : int Atomic.t;
}

(* hashtable slot, list links, size fields: a flat accounting constant so
   the byte bound tracks real residency, not just payload length *)
let entry_overhead = 64

let entry_size ~key ~cmd ~result =
  entry_overhead + String.length key + String.length cmd + String.length result

let make_stripe () =
  let rec sent = { key = ""; cmd = ""; result = ""; size = 0; prev = sent; next = sent } in
  { lock = Mutex.create (); tbl = Hashtbl.create 64; sent; bytes = 0; entries = 0 }

let create ?(stripes = 16) ~max_bytes ~max_entries () =
  if max_bytes < 1 then invalid_arg "Rescache.create: max_bytes must be >= 1";
  if max_entries < 1 then invalid_arg "Rescache.create: max_entries must be >= 1";
  let stripes = max 1 stripes in
  (* never let striping round a positive bound down to zero capacity *)
  let per total = max 1 (total / stripes) in
  {
    stripes = Array.init stripes (fun _ -> make_stripe ());
    stripe_max_bytes = per max_bytes;
    stripe_max_entries = per max_entries;
    max_bytes;
    max_entries;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    stores = Atomic.make 0;
    total_bytes = Atomic.make 0;
    total_entries = Atomic.make 0;
  }

let stripe_of t key = t.stripes.(Hashtbl.hash key mod Array.length t.stripes)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front s n =
  n.next <- s.sent.next;
  n.prev <- s.sent;
  s.sent.next.prev <- n;
  s.sent.next <- n

let remove_node t s n =
  unlink n;
  Hashtbl.remove s.tbl n.key;
  s.bytes <- s.bytes - n.size;
  s.entries <- s.entries - 1;
  Atomic.fetch_and_add t.total_bytes (-n.size) |> ignore;
  Atomic.decr t.total_entries

let publish_gauges t =
  Metrics.set g_bytes (float_of_int (Atomic.get t.total_bytes));
  Metrics.set g_entries (float_of_int (Atomic.get t.total_entries))

let find t key =
  Trace.with_span "service.cache.lookup" @@ fun () ->
  let s = stripe_of t key in
  let r =
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some n ->
          unlink n;
          push_front s n;
          Some n.result
        | None -> None)
  in
  (match r with
  | Some _ ->
    Atomic.incr t.hits;
    Metrics.incr c_hits
  | None ->
    Atomic.incr t.misses;
    Metrics.incr c_misses);
  if Trace.is_enabled () then Trace.add_args [ ("hit", Trace.Bool (r <> None)) ];
  r

let store t ~key ~cmd ~result =
  let size = entry_size ~key ~cmd ~result in
  if size <= t.stripe_max_bytes then begin
    let s = stripe_of t key in
    Mutex.protect s.lock (fun () ->
        (match Hashtbl.find_opt s.tbl key with
        | Some old -> remove_node t s old
        | None -> ());
        let n = { key; cmd; result; size; prev = s.sent; next = s.sent } in
        push_front s n;
        Hashtbl.replace s.tbl key n;
        s.bytes <- s.bytes + size;
        s.entries <- s.entries + 1;
        Atomic.fetch_and_add t.total_bytes size |> ignore;
        Atomic.incr t.total_entries;
        while s.bytes > t.stripe_max_bytes || s.entries > t.stripe_max_entries do
          let lru = s.sent.prev in
          (* the loop cannot empty the stripe: the fresh entry fits by
             the size guard above *)
          remove_node t s lru;
          Atomic.incr t.evictions;
          Metrics.incr c_evictions
        done);
    Atomic.incr t.stores;
    Metrics.incr c_stores;
    publish_gauges t
  end

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let stats_json t =
  let num n = Jsonlite.Num (float_of_int n) in
  let hits = Atomic.get t.hits and misses = Atomic.get t.misses in
  let probes = hits + misses in
  Jsonlite.Obj
    [
      ("hits", num hits);
      ("misses", num misses);
      ( "hit_ratio",
        Jsonlite.Num (if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes)
      );
      ("stores", num (Atomic.get t.stores));
      ("evictions", num (Atomic.get t.evictions));
      ("entries", num (Atomic.get t.total_entries));
      ("bytes", num (Atomic.get t.total_bytes));
      ("max_bytes", num t.max_bytes);
      ("max_entries", num t.max_entries);
    ]

(* ------------------------------------------------------------------ *)
(* Key derivation                                                       *)
(* ------------------------------------------------------------------ *)

(* Everything that can change a response byte goes through here; see the
   interface preamble for the rationale of each component. Fields are
   length-delimited ('|' plus explicit lengths where content is free
   text) so adjacent fields cannot alias. *)
let key_material ~pooled ~cmd ~net ~with_name ~input_prob ~phases ~seed ~budget =
  let b = Buffer.create 256 in
  Buffer.add_string b "rckey1|";
  Buffer.add_string b cmd;
  Buffer.add_string b "|";
  Buffer.add_string b (Dpa_logic.Struct_hash.digest net);
  (if with_name then begin
     let name = Dpa_logic.Netlist.name net in
     Buffer.add_string b (Printf.sprintf "|name:%d:%s" (String.length name) name)
   end);
  Buffer.add_string b
    (Printf.sprintf "|p:%Lx" (Int64.bits_of_float input_prob));
  (match phases with
  | None -> Buffer.add_string b "|ph:-"
  | Some p -> Buffer.add_string b (Printf.sprintf "|ph:%d:%s" (String.length p) p));
  (match seed with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf "|seed:%d" s));
  (match (budget : Protocol.budget_opts option) with
  | None -> Buffer.add_string b "|b:-"
  | Some { Protocol.max_bdd_nodes; deadline_s = _; fallback; sim_backend } ->
    Buffer.add_string b
      (Printf.sprintf "|b:%s:%s:%s"
         (match max_bdd_nodes with None -> "-" | Some n -> string_of_int n)
         (Dpa_power.Engine.fallback_to_string fallback)
         (Dpa_sim.Backend.to_string sim_backend)));
  Buffer.add_string b (if pooled then "|par" else "|seq");
  Buffer.contents b

let key ~pooled (request : Protocol.request) =
  let cacheable ~with_name ~cmd ~source ~input_prob ~phases ~seed ~budget =
    match (budget : Protocol.budget_opts option) with
    | Some { Protocol.deadline_s = Some _; _ } ->
      (* ladder degradation under a deadline is wall-clock dependent:
         never cache, never probe *)
      None
    | _ -> (
      match Handler.load source with
      | net ->
        Some
          (Digest.to_hex
             (Digest.string
                (key_material ~pooled ~cmd ~net ~with_name ~input_prob ~phases ~seed
                   ~budget)))
      | exception _ ->
        (* unloadable source: let the cold path produce the error *)
        None)
  in
  match request with
  | Protocol.Estimate { source; input_prob; phases; budget } ->
    cacheable ~with_name:false ~cmd:"estimate" ~source ~input_prob ~phases ~seed:None
      ~budget
  | Protocol.Optimize { source; input_prob; seed; budget } ->
    cacheable ~with_name:false ~cmd:"optimize" ~source ~input_prob ~phases:None
      ~seed:(Some seed) ~budget
  | Protocol.Compare { source; input_prob; seed; budget } ->
    (* the compare response echoes the netlist name as [circuit] *)
    cacheable ~with_name:true ~cmd:"compare" ~source ~input_prob ~phases:None
      ~seed:(Some seed) ~budget
  | Protocol.Ping | Protocol.Info _ | Protocol.Stats | Protocol.Shutdown -> None

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_magic = "dpa-rescache"

let snapshot_version = 1

(* LRU-first across all stripes (round-robin by stripe, each stripe's
   own order preserved): replaying the lines through [store] leaves the
   most recently used entries most recent again. *)
let dump t =
  Array.to_list t.stripes
  |> List.concat_map (fun s ->
         Mutex.protect s.lock (fun () ->
             let rec collect acc n =
               if n == s.sent then acc else collect ((n.key, n.cmd, n.result) :: acc) n.prev
             in
             (* walking MRU→LRU and consing yields LRU-first *)
             collect [] s.sent.prev |> List.rev))

let save t path =
  let entries = dump t in
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        output_string oc
          (Printf.sprintf "{\"magic\":%s,\"version\":%d,\"entries\":%d}\n"
             (Jsonlite.encode (Jsonlite.Str snapshot_magic))
             snapshot_version (List.length entries));
        List.iter
          (fun (key, cmd, result) ->
            (* [result] is already encoded: splice it raw so the bytes
               survive the round trip untouched *)
            output_string oc
              (Printf.sprintf "{\"key\":%s,\"cmd\":%s,\"result\":%s}\n"
                 (Jsonlite.encode (Jsonlite.Str key))
                 (Jsonlite.encode (Jsonlite.Str cmd))
                 result))
          entries);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let is_hex_digest s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* Validate the whole file before a single entry becomes visible: a
   snapshot is loaded entirely or not at all. *)
let parse_snapshot text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty file"
  | header :: rest -> (
    match Jsonlite.parse header with
    | exception Jsonlite.Parse_error msg -> Error ("unparseable header: " ^ msg)
    | h -> (
      match
        ( Jsonlite.member_opt "magic" h,
          Jsonlite.member_opt "version" h,
          Jsonlite.member_opt "entries" h )
      with
      | Some (Jsonlite.Str m), _, _ when m <> snapshot_magic ->
        Error (Printf.sprintf "magic %S is not %S" m snapshot_magic)
      | _, Some (Jsonlite.Num v), _ when int_of_float v <> snapshot_version ->
        Error
          (Printf.sprintf "version %d, this build reads version %d" (int_of_float v)
             snapshot_version)
      | Some (Jsonlite.Str _), Some (Jsonlite.Num _), Some (Jsonlite.Num n) ->
        let declared = int_of_float n in
        if declared <> List.length rest then
          Error
            (Printf.sprintf "header declares %d entries, file holds %d" declared
               (List.length rest))
        else begin
          let parse_entry line =
            match Jsonlite.parse line with
            | exception Jsonlite.Parse_error msg -> Error ("unparseable entry: " ^ msg)
            | j -> (
              match
                ( Jsonlite.member_opt "key" j,
                  Jsonlite.member_opt "cmd" j,
                  Jsonlite.member_opt "result" j )
              with
              | Some (Jsonlite.Str key), Some (Jsonlite.Str cmd), Some result ->
                if not (is_hex_digest key) then Error "malformed key"
                  (* re-encoding a parse of encoder output is the
                     identity, so the stored bytes are preserved *)
                else Ok (key, cmd, Jsonlite.encode result)
              | _ -> Error "entry missing key/cmd/result")
          in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
              match parse_entry line with
              | Ok e -> go (e :: acc) rest
              | Error _ as e -> e)
          in
          go [] rest
        end
      | _ -> Error "header missing magic/version/entries"))

let load t path =
  if not (Sys.file_exists path) then `Missing
  else begin
    let read () =
      match In_channel.with_open_bin path In_channel.input_all with
      | text -> Ok text
      | exception Sys_error msg -> Error msg
    in
    let outcome =
      match read () with
      | Error msg -> `Rejected msg
      | Ok text -> (
        match parse_snapshot text with
        | Error reason -> `Rejected reason
        | Ok entries ->
          List.iter (fun (key, cmd, result) -> store t ~key ~cmd ~result) entries;
          `Loaded (List.length entries))
    in
    (match outcome with `Rejected _ -> Metrics.incr c_snapshot_rejected | _ -> ());
    outcome
  end
