module Jsonlite = Dpa_util.Jsonlite
module Fault = Dpa_util.Fault
module Rng = Dpa_util.Rng
module Clock = Dpa_obs.Clock

type report = {
  requests : int;
  ok : int;
  errors : (string * int) list;
  garbage_probes : int;
  elapsed_s : float;
  workers : int;
  strength : int;
  panics : int;
  replacements : int;
  rescues : int;
  injections : (string * int) list;
}

let num n = Jsonlite.Num (float_of_int n)

let report_json r =
  Jsonlite.Obj
    [
      ("requests", num r.requests);
      ("ok", num r.ok);
      ("errors", Jsonlite.Obj (List.map (fun (k, n) -> (k, num n)) r.errors));
      ("garbage_probes", num r.garbage_probes);
      ("elapsed_s", Jsonlite.Num r.elapsed_s);
      ("workers", num r.workers);
      ("strength", num r.strength);
      ("panics", num r.panics);
      ("replacements", num r.replacements);
      ("rescues", num r.rescues);
      ("injections", Jsonlite.Obj (List.map (fun (k, n) -> (k, num n)) r.injections));
      ("lost", num 0);
    ]

let default_faults =
  [
    (Fault.Slow_cone, 0.10, Some 0.15);
    (Fault.Worker_panic, 0.04, None);
    (Fault.Torn_frame, 0.10, Some 0.005);
    (Fault.Drop_conn, 0.08, None);
    (Fault.Write_stall, 0.10, Some 0.05);
  ]

(* A layered synthetic circuit as DLN text: wide enough that estimates do
   real BDD work, small enough that a soak of hundreds stays quick. *)
let soak_netlist ~inputs ~layers =
  let b = Buffer.create 512 in
  Buffer.add_string b ".model chaos_soak\n.inputs";
  for i = 0 to inputs - 1 do
    Buffer.add_string b (Printf.sprintf " x%d" i)
  done;
  Buffer.add_char b '\n';
  let prev = ref (List.init inputs (fun i -> Printf.sprintf "x%d" i)) in
  for l = 0 to layers - 1 do
    let ins = Array.of_list !prev in
    let n = Array.length ins in
    let width = max 2 (n - 1) in
    let next = ref [] in
    for g = 0 to width - 1 do
      let name = Printf.sprintf "g%d_%d" l g in
      let a = ins.(g mod n) and c = ins.((g + 1) mod n) in
      let op = match (l + g) mod 3 with 0 -> "and" | 1 -> "or" | _ -> "xor" in
      Buffer.add_string b (Printf.sprintf "%s = %s %s %s\n" name op a c);
      next := name :: !next
    done;
    prev := List.rev !next
  done;
  Buffer.add_string b ".outputs";
  List.iter (fun s -> Buffer.add_string b (" " ^ s)) !prev;
  Buffer.add_char b '\n';
  Buffer.contents b

let request_lines ~rng ~requests ~deadline_every netlist =
  List.init requests (fun i ->
      let id = i + 1 in
      let request =
        if id mod 17 = 0 then Protocol.Ping
        else begin
          let budget =
            if deadline_every > 0 && id mod deadline_every = 0 then
              Some
                {
                  Protocol.max_bdd_nodes = Some 20000;
                  deadline_s = Some 0.05;
                  fallback = Dpa_power.Engine.Simulate;
                  sim_backend = Dpa_sim.Backend.default;
                }
            else None
          in
          Protocol.Estimate
            {
              source = Protocol.Inline { text = netlist; format = `Dln };
              input_prob = 0.25 +. (0.5 *. Rng.float rng 1.0);
              phases = None;
              budget;
            }
        end
      in
      (* cache = `Use: the soak exercises the result cache under faults,
         though random input probabilities keep most requests cold *)
      Protocol.request_line { Protocol.id; request; cache = `Use })

let garbage_lines ~rng n =
  List.init n (fun i ->
      match i mod 3 with
      | 0 -> Printf.sprintf "{garbage %d" (Rng.int rng 1000)
      | 1 -> String.make (8 + Rng.int rng 64) 'z'
      | _ -> Printf.sprintf {|{"id":%d,"cmd":"frobnicate"}|} (Rng.int rng 1000))

let error_kind_of line =
  match Protocol.parse_response line with
  | Ok { Protocol.ok = true; _ } -> None
  | Ok { Protocol.result; _ } -> (
    match Jsonlite.member_opt "kind" result with
    | Some (Jsonlite.Str k) -> Some k
    | _ -> Some "unknown")
  | Error _ -> Some "unparseable"

let stats_of ~socket =
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let line =
    Client.request c
      (Protocol.request_line
         { Protocol.id = 999999; request = Protocol.Stats; cache = `Use })
  in
  match Protocol.parse_response line with
  | Ok { Protocol.ok = true; result; _ } -> result
  | Ok _ | Error _ ->
    Dpa_util.Dpa_error.error (Dpa_util.Dpa_error.Internal ("stats request failed: " ^ line))

let stat_int json key =
  match Jsonlite.member_opt key json with
  | Some (Jsonlite.Num f) -> int_of_float f
  | _ -> 0

(* Wait (bounded) for the watchdog to restaff every crashed slot. *)
let await_full_strength ~socket ~workers =
  let deadline = Clock.now_ns () + 5_000_000_000 in
  let rec go () =
    let stats = stats_of ~socket in
    if stat_int stats "strength" >= workers then stats
    else if Clock.now_ns () > deadline then stats
    else begin
      Unix.sleepf 0.1;
      go ()
    end
  in
  go ()

let soak ?(seed = 1) ?(workers = 4) ?(jobs = 1) ?(queue_capacity = 8) ?(requests = 120)
    ?(deadline_every = 5) ?(garbage = 9) ?(faults = default_faults) () =
  let rng = Rng.create seed in
  let netlist = soak_netlist ~inputs:8 ~layers:4 in
  let lines = request_lines ~rng ~requests ~deadline_every netlist in
  let garbage_probes = garbage_lines ~rng garbage in
  Fault.configure ~seed:(seed + 1) faults;
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let t0 = Clock.now_ns () in
  Client.with_self_hosted ~workers ~jobs ~queue_capacity (fun ~socket ->
      (* the soak batch, retried through overloads, drops and tears:
         returns in request order with exactly one response per id, or
         raises if any request went unanswered *)
      (* attempts scale with the batch: under an aggressive drop_conn
         rate each attempt only lands a connection's worth of answers
         before the injected hangup, so a fixed attempt count would
         starve large soaks. The delay cap stays low — progress, not
         politeness, is what a soak is measuring. *)
      let retry =
        {
          Client.default_retry with
          max_attempts = 10 + (requests / 2);
          base_delay_ms = 20;
          max_delay_ms = 250;
          seed;
        }
      in
      let responses = Client.run_batch ~retry ~socket lines in
      if List.length responses <> requests then
        Dpa_util.Dpa_error.error
          (Dpa_util.Dpa_error.Internal
             (Printf.sprintf "soak answered %d of %d requests"
                (List.length responses) requests));
      (* garbage probes ride a clean connection: every one must come
         back as a structured error, not a dropped line *)
      let answered_garbage =
        if garbage = 0 then 0
        else begin
          let c = Client.connect socket in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          List.fold_left
            (fun acc g ->
              let r = Client.request c g in
              match error_kind_of r with Some _ -> acc + 1 | None -> acc)
            0 garbage_probes
        end
      in
      (* quiesce: the accounting phase observes the pool's recovery and
         must not itself be panicked/torn. Injection counts are final
         now — snapshot them before clear resets the registry (the
         server shares this process, so the client-side registry holds
         both sides' counts). *)
      let injections =
        Fault.injection_counts ()
        |> List.filter (fun (_, n) -> n > 0)
        |> List.map (fun (p, n) -> (Fault.point_to_string p, n))
      in
      Fault.clear ();
      let stats = await_full_strength ~socket ~workers in
      let elapsed_s = float_of_int (Clock.now_ns () - t0) /. 1e9 in
      let ok = ref 0 in
      let errors = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match error_kind_of line with
          | None -> incr ok
          | Some kind ->
            Hashtbl.replace errors kind (1 + Option.value ~default:0 (Hashtbl.find_opt errors kind)))
        responses;
      {
        requests;
        ok = !ok;
        errors =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) errors []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
        garbage_probes = answered_garbage;
        elapsed_s;
        workers;
        strength = stat_int stats "strength";
        panics = stat_int stats "panics";
        replacements = stat_int stats "replacements";
        rescues = stat_int stats "rescues";
        injections;
      })
