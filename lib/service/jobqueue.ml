type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobqueue.create: capacity must be >= 1";
  {
    items = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    closed = false;
  }

let push t x =
  Mutex.protect t.mutex @@ fun () ->
  while (not t.closed) && Queue.length t.items >= t.capacity do
    Condition.wait t.not_full t.mutex
  done;
  if t.closed then false
  else begin
    Queue.push x t.items;
    Condition.signal t.not_empty;
    true
  end

let try_push t x =
  Mutex.protect t.mutex @@ fun () ->
  if t.closed then `Closed
  else if Queue.length t.items >= t.capacity then `Full
  else begin
    Queue.push x t.items;
    Condition.signal t.not_empty;
    `Ok
  end

let pop t =
  Mutex.protect t.mutex @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  match Queue.take_opt t.items with
  | Some x ->
    Condition.signal t.not_full;
    Some x
  | None -> None (* closed and drained *)

let close t =
  Mutex.protect t.mutex @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
  end

let length t = Mutex.protect t.mutex (fun () -> Queue.length t.items)
