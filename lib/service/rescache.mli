(** Structural-hash result cache for the service, with warm restarts.

    Production phase-assignment traffic is repetitive: the same cones
    come back with the same phase vectors and budgets, yet every request
    used to rebuild its BDDs from scratch. This cache keys the encoded
    [result] payload of a successful [estimate] / [optimize] / [compare]
    response by everything that can change a response byte, and nothing
    else:

    - the {!Dpa_logic.Struct_hash} canonical digest of the loaded
      netlist (insertion-order independent, alpha-invariant over input
      and gate naming, dead-logic invariant — so textual re-orderings
      and renamings of the same circuit share one entry);
    - the netlist {e name}, for [compare] only (its response echoes the
      name as [circuit]; [estimate]/[optimize] responses do not);
    - the request parameters: command, [input_prob] (exact float bits),
      [phases], [seed], and the budget's [max_bdd_nodes] / [fallback] /
      [sim_backend];
    - whether the executing worker runs with an intra-request pool
      ([jobs > 1]): relative to no pool, the [bdd_nodes] metric can
      differ (per-cone private managers forgo cross-cone sharing), so a
      snapshot written at one [--jobs] width must never answer for the
      other.

    {b What is never cached.} [ping]/[info]/[stats]/[shutdown]; any
    request carrying [deadline_s] (the degradation ladder makes its
    result wall-clock dependent); error responses; and requests sent
    with [cache: "bypass"]. A source that fails to load yields no key —
    the cold path reports the error as before.

    {b Byte identity.} The cache stores the already-encoded [result]
    substring of the cold response and splices it into fresh envelopes
    with {!Protocol.ok_response_text}, so a hit is byte-identical to the
    cold response by construction — there is no decode/re-encode round
    trip to disagree over float formatting.

    {b Concurrency.} One cache is shared by every worker domain, behind
    a striped lock: the key space is partitioned over independent
    mutex-guarded LRU stripes, so concurrent workers only contend when
    their keys land on the same stripe. Byte and entry bounds are split
    evenly across stripes (a stripe evicts its own LRU tail), which
    bounds the total within [stripes - 1] entries of a global LRU.

    {b Observability.} [service.cache.hits] / [.misses] / [.evictions] /
    [.stores] / [.snapshot_rejected] counters and [service.cache.bytes]
    / [.entries] gauges in {!Dpa_obs.Metrics}; a [service.cache.lookup]
    trace span (with a [hit] attribute) around every probe; and
    {!stats_json} for the wire-level [stats] extension.

    {b Persistence.} {!save} writes a versioned newline-delimited JSON
    snapshot (written on graceful drain); {!load} rebuilds a cache from
    one at startup so a restarted daemon answers warm. A corrupt,
    truncated or version-skewed snapshot is {e rejected as a whole} —
    the daemon starts cold with a structured warning, never crashes, and
    never loads a partial file. *)

type t

val create : ?stripes:int -> max_bytes:int -> max_entries:int -> unit -> t
(** [create ~max_bytes ~max_entries ()] — total byte and entry bounds
    across all stripes. [stripes] (default 16, clamped to [>= 1]) is the
    lock-striping width. [max_bytes] counts keys, payloads and a fixed
    per-entry overhead; an entry larger than its stripe's byte share is
    simply not stored. Raises [Invalid_argument] if either bound
    is [< 1]. *)

val key : pooled:bool -> Protocol.request -> string option
(** The cache key of a request, or [None] when the request must not be
    cached (wrong command, carries a deadline, or its source fails to
    load — see the module preamble). [pooled] says whether execution
    will run with an intra-request pool; it is part of the key. Loads
    and canonicalizes the netlist, which costs a parse — small against
    the BDD work a hit saves. *)

val find : t -> string -> string option
(** The stored encoded [result] payload, refreshing the entry's
    recency. Counts a hit or miss. *)

val store : t -> key:string -> cmd:string -> result:string -> unit
(** Inserts (or refreshes) an entry, evicting LRU entries of the key's
    stripe until its bounds hold again. [result] must be the
    [Jsonlite]-encoded payload of a {e successful} response; [cmd] is
    kept for snapshot integrity checks. *)

val hits : t -> int

val misses : t -> int

val stats_json : t -> Dpa_util.Jsonlite.t
(** The [cache] sub-object of the service [stats] response: [hits],
    [misses], [hit_ratio] (0 when unprobed), [stores], [evictions],
    [entries], [bytes], [max_bytes], [max_entries]. *)

(** {2 Snapshots}

    Format: a header line
    [{"magic":"dpa-rescache","version":1,"entries":N}] followed by one
    [{"key":h,"cmd":c,"result":{...}}] line per entry, least recently
    used first (so replaying the file restores recency order). The load
    validates the whole file — magic, version, entry count, key shape —
    before a single entry becomes visible. *)

val snapshot_version : int

val save : t -> string -> (unit, string) result
(** Writes atomically (temp file + rename). [Error] carries the I/O
    failure reason; the cache is unchanged either way. *)

val load : t -> string -> [ `Loaded of int | `Missing | `Rejected of string ]
(** Populates an (empty or live) cache from a snapshot, entry bounds
    enforced as usual. [`Missing]: no file at the path — a first boot,
    not an error. [`Rejected reason]: the file exists but failed
    validation; nothing was loaded, and the
    [service.cache.snapshot_rejected] counter was bumped. Never
    raises. *)
