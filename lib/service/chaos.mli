(** Chaos soak: a self-hosted server under injected faults, with
    exactly-once accounting.

    {!soak} arms the {!Dpa_util.Fault} registry (server- and client-side
    points: stalled cone builds, worker panics, torn frames, dropped
    connections, stalled flushes), runs a batch of estimate/ping
    requests — some carrying tight [deadline_s] budgets — through the
    retrying client against a real server, fires a stream of garbage
    probes, and then interrogates the server's [stats] endpoint.

    The soak's invariants, checked here rather than by the caller:
    every request id is answered exactly once ({!Dpa_util.Dpa_error}
    [Internal] is raised otherwise — the retrying client already raises
    when attempts run out with ids unanswered), every garbage probe gets
    a structured error, and the pool is back at full worker strength at
    the end (reported, so the caller can assert [strength = workers]).
    Responses may legitimately be errors — [deadline_exceeded] from the
    cancellation backstop, [internal] from a panicked worker — the
    hardening guarantee is {e answered}, not {e succeeded}.

    Fault decisions and request payloads derive from [seed], so a soak
    run is reproducible. The registry is cleared on the way out, even on
    failure. *)

type report = {
  requests : int;
  ok : int;
  errors : (string * int) list;  (** error-kind → count over final answers *)
  garbage_probes : int;  (** garbage lines that got a structured answer *)
  elapsed_s : float;
  workers : int;
  strength : int;  (** staffed workers at the end; [= workers] on a pass *)
  panics : int;
  replacements : int;
  rescues : int;
  injections : (string * int) list;  (** fault point → times fired *)
}

val report_json : report -> Dpa_util.Jsonlite.t
(** The report as the JSON object [dominoflow chaos --json] prints. *)

val soak :
  ?seed:int ->
  ?workers:int ->
  ?jobs:int ->
  ?queue_capacity:int ->
  ?requests:int ->
  ?deadline_every:int ->
  ?garbage:int ->
  ?faults:(Dpa_util.Fault.point * float * float option) list ->
  unit ->
  report
(** Defaults: seed 1, 4 workers, jobs 1, queue capacity 8 (small on
    purpose — overload shedding must trigger), 120 requests with a tight
    deadline on every 5th, 9 garbage probes, and moderate rates on all
    five fault points. [deadline_every = 0] disables deadline budgets;
    [faults = []] is a fault-free control run. *)
