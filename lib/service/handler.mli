(** Executes one decoded request on the calling domain.

    Each handler mirrors the corresponding one-shot CLI code path —
    [estimate] is optimize → realize → map → {!Dpa_power.Engine.estimate}
    exactly as [dominoflow estimate], [compare] is
    {!Dpa_core.Flow.compare_ma_mp} exactly as [dominoflow run] — so a
    worker domain returns bit-identical numbers to the CLI. Workers each
    call this with their own arguments; every BDD manager involved is
    created inside the call, so concurrent executions share no mutable
    state beyond the (domain-safe) observability registry. *)

val load : Protocol.source -> Dpa_logic.Netlist.t
(** Resolves a request's circuit source exactly as the handlers do —
    [File] through {!Dpa_logic.Io.load_file}, [Inline] through
    {!Dpa_logic.Io.parse_netlist}. Exposed so {!Rescache} keys a request
    by the {e loaded} structure (a file edited on disk naturally changes
    the key) with the same failure behaviour as execution. Raises
    {!Dpa_util.Dpa_error.Error} on a missing file or a parse error. *)

val execute :
  ?par:Dpa_util.Par.t -> ?cancel:Dpa_util.Cancel.t -> Protocol.request -> Dpa_util.Jsonlite.t
(** The [result] payload of a success response. Failures raise
    {!Dpa_util.Dpa_error.Error} (or exceptions its [of_exn] recognizes);
    the worker pool maps them to structured error responses.

    [cancel] is the per-request cooperative-cancellation token: it is
    threaded through every estimate, search and simulation the request
    runs, and a fired token aborts the request with
    [Dpa_error.Error (Cancelled _)] — which the pool encodes as a
    [deadline_exceeded] / [cancelled] error response. [Stats] raises
    [Unsupported] here: the pool answers it from its own health record.

    [par] is the calling worker's private domain pool for intra-request
    parallelism (per-cone estimation, speculative phase-search pricing).
    It must belong to the calling domain exclusively — pools are one
    submitter at a time, and each service worker owns its own so
    inter-request and intra-request parallelism compose without sharing.
    Responses are bit-identical at every pool width; relative to {e no}
    pool, every power and probability is identical too, but the
    [bdd_nodes] complexity metric can be larger (per-cone private
    managers forgo cross-cone node sharing). *)
