type latch = { data : int; init : bool }

type sequential = {
  comb : Netlist.t;
  n_real_inputs : int;
  latches : latch array;
}

(* ---------------- lexing: comments, continuations, tokens ------------ *)

type line = { num : int; tokens : string list }

let tokenize text =
  let raw = String.split_on_char '\n' text in
  (* join '\' continuations, remembering the first physical line *)
  let rec join acc pending = function
    | [] -> (
      match pending with
      | Some (num, buf) -> List.rev ((num, buf) :: acc)
      | None -> List.rev acc)
    | line :: rest ->
      let n = List.length raw - List.length rest in
      let stripped =
        match String.index_opt line '#' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      let trimmed = String.trim stripped in
      let continued = String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\' in
      let body =
        if continued then String.sub trimmed 0 (String.length trimmed - 1) else trimmed
      in
      (match pending with
      | Some (num, buf) ->
        let merged = buf ^ " " ^ body in
        if continued then join acc (Some (num, merged)) rest
        else join ((num, merged) :: acc) None rest
      | None ->
        if continued then join acc (Some (n, body)) rest
        else join ((n, body) :: acc) None rest)
  in
  join [] None raw
  |> List.filter_map (fun (num, body) ->
         match List.filter (fun s -> s <> "") (String.split_on_char ' ' body) with
         | [] -> None
         | tokens ->
           let tokens =
             List.concat_map (fun t -> String.split_on_char '\t' t) tokens
             |> List.filter (fun s -> s <> "")
           in
           Some { num; tokens })

(* ---------------- parsing into declarations ------------------------- *)

type cover = {
  out_name : string;
  in_names : string list;
  rows : (int * string * char) list;  (** physical line, input pattern, output value *)
  decl_line : int;
}

type decls = {
  mutable model : string;
  mutable input_names : string list; (* reversed *)
  mutable output_names : string list; (* reversed *)
  mutable covers : cover list; (* reversed *)
  mutable latch_decls : (string * string * bool * int) list; (* in, out, init, line; reversed *)
}

let parse_decls text =
  let lines = tokenize text in
  let d =
    { model = "blif"; input_names = []; output_names = []; covers = []; latch_decls = [] }
  in
  let error num fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" num s)) fmt in
  let rec statements = function
    | [] -> Ok ()
    | { num; tokens } :: rest -> (
      match tokens with
      | ".model" :: names ->
        (match names with name :: _ -> d.model <- name | [] -> ());
        statements rest
      | ".inputs" :: names ->
        d.input_names <- List.rev_append names d.input_names;
        statements rest
      | ".outputs" :: names ->
        d.output_names <- List.rev_append names d.output_names;
        statements rest
      | ".latch" :: args -> (
        match args with
        | input :: output :: tail ->
          let init =
            match List.rev tail with
            | last :: _ when last = "1" -> true
            | _ :: _ | [] -> false
          in
          d.latch_decls <- (input, output, init, num) :: d.latch_decls;
          statements rest
        | [ _ ] | [] -> error num ".latch needs an input and an output")
      | ".names" :: args -> (
        match List.rev args with
        | out_name :: rev_ins ->
          let in_names = List.rev rev_ins in
          let rec take_rows acc = function
            | { num = rnum; tokens = rtokens } :: more
              when (match rtokens with
                   | t :: _ -> String.length t > 0 && t.[0] <> '.'
                   | [] -> false) -> (
              match rtokens with
              | [ pattern; value ] when List.length in_names > 0 ->
                if String.length pattern <> List.length in_names then
                  Error
                    (Printf.sprintf
                       "line %d: pattern %S is %d characters wide for %d inputs" rnum
                       pattern (String.length pattern) (List.length in_names))
                else if value <> "0" && value <> "1" then
                  Error (Printf.sprintf "line %d: output value must be 0 or 1" rnum)
                else take_rows ((rnum, pattern, value.[0]) :: acc) more
              | [ value ] when in_names = [] ->
                if value <> "0" && value <> "1" then
                  Error (Printf.sprintf "line %d: constant cover row must be 0 or 1" rnum)
                else take_rows ((rnum, "", value.[0]) :: acc) more
              | _ -> Error (Printf.sprintf "line %d: malformed cover row" rnum))
            | remaining -> Ok (List.rev acc, remaining)
          in
          (match take_rows [] rest with
          | Error e -> Error e
          | Ok (rows, remaining) ->
            d.covers <- { out_name; in_names; rows; decl_line = num } :: d.covers;
            statements remaining)
        | [] -> error num ".names needs at least an output")
      | [ ".end" ] -> Ok ()
      | ".exdc" :: _ | ".subckt" :: _ | ".search" :: _ ->
        error num "unsupported BLIF construct %s" (List.hd tokens)
      | tok :: _ ->
        if String.length tok > 0 && tok.[0] = '.' then error num "unknown directive %s" tok
        else error num "cover row outside a .names block"
      | [] -> statements rest)
  in
  match statements lines with
  | Error e -> Error e
  | Ok () -> Ok d

(* ---------------- elaboration --------------------------------------- *)

let build_cover b env cover =
  let resolve name =
    match Hashtbl.find_opt env name with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "line %d: unknown signal %S" cover.decl_line name)
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match resolve n with Ok id -> resolve_all (id :: acc) rest | Error e -> Error e)
  in
  match resolve_all [] cover.in_names with
  | Error e -> Error e
  | Ok input_ids -> (
    let input_ids = Array.of_list input_ids in
    match cover.rows with
    | [] -> Ok (Builder.const b false)
    | (_, _, first_value) :: _ -> (
      match List.find_opt (fun (_, _, v) -> v <> first_value) cover.rows with
      | Some (rnum, _, _) ->
        Error
          (Printf.sprintf "line %d: cover mixes on-set and off-set rows (.names at line %d)"
             rnum cover.decl_line)
      | None ->
        (* One AND term per row; any malformed character is an explicit
           [Error] carrying the row's own line number — nothing here raises. *)
        let product rnum pattern =
          let rec literals k acc =
            if k = String.length pattern then Ok acc
            else
              match pattern.[k] with
              | '1' -> literals (k + 1) (input_ids.(k) :: acc)
              | '0' -> literals (k + 1) (Builder.not_ b input_ids.(k) :: acc)
              | '-' -> literals (k + 1) acc
              | c ->
                Error
                  (Printf.sprintf "line %d: bad cover character %C in pattern %S" rnum c
                     pattern)
          in
          match literals 0 [] with
          | Error e -> Error e
          | Ok [] -> Ok (Builder.const b true)
          | Ok lits -> Ok (Builder.and_ b lits)
        in
        let rec products acc = function
          | [] -> Ok (List.rev acc)
          | (rnum, pattern, _) :: rest -> (
            match product rnum pattern with
            | Ok p -> products (p :: acc) rest
            | Error e -> Error e)
        in
        match products [] cover.rows with
        | Error e -> Error e
        | Ok [ single ] ->
          Ok (if first_value = '1' then single else Builder.not_ b single)
        | Ok terms ->
          let union = Builder.or_ b terms in
          Ok (if first_value = '1' then union else Builder.not_ b union)))

(* Order covers so that every cover's inputs are built first. *)
let order_covers d ~external_names =
  let by_output = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace by_output c.out_name c) d.covers;
  let done_ = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace done_ n ()) external_names;
  let visiting = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if Hashtbl.mem done_ name then Ok ()
    else if Hashtbl.mem visiting name then
      Error (Printf.sprintf "combinational cycle through signal %S" name)
    else
      match Hashtbl.find_opt by_output name with
      | None -> Error (Printf.sprintf "undriven signal %S" name)
      | Some cover ->
        Hashtbl.replace visiting name ();
        let rec deps = function
          | [] -> Ok ()
          | n :: rest -> ( match visit n with Ok () -> deps rest | Error e -> Error e)
        in
        (match deps cover.in_names with
        | Error e -> Error e
        | Ok () ->
          Hashtbl.remove visiting name;
          Hashtbl.replace done_ name ();
          order := cover :: !order;
          Ok ())
  in
  let rec all = function
    | [] -> Ok (List.rev !order)
    | c :: rest -> ( match visit c.out_name with Ok () -> all rest | Error e -> Error e)
  in
  all (List.rev d.covers)

let elaborate d =
  let input_names = List.rev d.input_names in
  let latch_decls = List.rev d.latch_decls in
  let latch_outputs = List.map (fun (_, out, _, _) -> out) latch_decls in
  let b = Builder.create ~name:d.model () in
  let env = Hashtbl.create 64 in
  let declare_input name =
    if Hashtbl.mem env name then Error (Printf.sprintf "duplicate signal %S" name)
    else begin
      Hashtbl.replace env name (Builder.input ~name b);
      Ok ()
    end
  in
  let rec declare_all = function
    | [] -> Ok ()
    | n :: rest -> ( match declare_input n with Ok () -> declare_all rest | Error e -> Error e)
  in
  match declare_all (input_names @ latch_outputs) with
  | Error e -> Error e
  | Ok () -> (
    match order_covers d ~external_names:(input_names @ latch_outputs) with
    | Error e -> Error e
    | Ok ordered ->
      let rec build = function
        | [] -> Ok ()
        | cover :: rest -> (
          match build_cover b env cover with
          | Error e -> Error e
          | Ok id ->
            Hashtbl.replace env cover.out_name id;
            build rest)
      in
      (match build ordered with
      | Error e -> Error e
      | Ok () ->
        let resolve name =
          match Hashtbl.find_opt env name with
          | Some id -> Ok id
          | None -> Error (Printf.sprintf "undriven output %S" name)
        in
        let rec outputs = function
          | [] -> Ok ()
          | name :: rest -> (
            match resolve name with
            | Ok id ->
              Builder.output b name id;
              outputs rest
            | Error e -> Error e)
        in
        (match outputs (List.rev d.output_names) with
        | Error e -> Error e
        | Ok () ->
          let rec latch_data acc = function
            | [] -> Ok (List.rev acc)
            | (input, _, init, num) :: rest -> (
              match Hashtbl.find_opt env input with
              | Some id -> latch_data ({ data = id; init } :: acc) rest
              | None -> Error (Printf.sprintf "line %d: undriven latch input %S" num input))
          in
          (match latch_data [] latch_decls with
          | Error e -> Error e
          | Ok latches ->
            Ok
              {
                comb = Builder.finish b;
                n_real_inputs = List.length input_names;
                latches = Array.of_list latches;
              }))))

(* Physical line count of the source, for the parse span (computed only
   when tracing is live, so the common path never scans the text twice). *)
let count_lines text =
  let n = ref 1 in
  String.iter (fun c -> if c = '\n' then Stdlib.incr n) text;
  !n

let sequential_of_string text =
  Dpa_obs.Trace.with_span "blif.parse" @@ fun () ->
  if Dpa_obs.Trace.is_enabled () then
    Dpa_obs.Trace.add_args
      [
        ("lines", Dpa_obs.Trace.Int (count_lines text));
        ("bytes", Dpa_obs.Trace.Int (String.length text));
      ];
  let result = match parse_decls text with Error e -> Error e | Ok d -> elaborate d in
  (match result with
  | Ok { comb; latches; _ } ->
    Dpa_obs.Trace.add_args
      [
        ("gates", Dpa_obs.Trace.Int (Netlist.gate_count comb));
        ("latches", Dpa_obs.Trace.Int (Array.length latches));
      ]
  | Error _ -> Dpa_obs.Trace.add_args [ ("error", Dpa_obs.Trace.Bool true) ]);
  result

let of_string text =
  match sequential_of_string text with
  | Error e -> Error e
  | Ok { comb; latches; _ } ->
    if Array.length latches > 0 then
      Error "model contains .latch statements; use sequential_of_string"
    else Ok comb

(* ---------------- writing ------------------------------------------- *)

(* Unique label per node: explicit names win; unnamed nodes get "n<id>",
   suffixed with underscores if a user name already claims that token. *)
let make_labels t =
  let used = Hashtbl.create 16 in
  Netlist.iter_nodes
    (fun i _ ->
      match Netlist.node_name t i with
      | Some n -> Hashtbl.replace used n ()
      | None -> ())
    t;
  Array.init (Netlist.size t) (fun i ->
      match Netlist.node_name t i with
      | Some n -> n
      | None ->
        let rec fresh candidate =
          if Hashtbl.mem used candidate then fresh (candidate ^ "_") else candidate
        in
        let label = fresh (Printf.sprintf "n%d" i) in
        Hashtbl.replace used label ();
        label)

(* Writer core shared by the combinational and sequential exporters:
   [pseudo_inputs] are netlist inputs that must NOT appear in .inputs
   (latch outputs), [extra] is appended before .end. *)
let write_model ?(pseudo_inputs = []) ?(extra = "") t =
  let labels = make_labels t in
  let node_label _ i = labels.(i) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Netlist.name t));
  let names ids = String.concat " " (List.map (node_label t) ids) in
  let real_inputs =
    List.filter
      (fun id -> not (List.mem id pseudo_inputs))
      (Array.to_list (Netlist.inputs t))
  in
  Buffer.add_string buf (".inputs " ^ names real_inputs ^ "\n");
  Buffer.add_string buf
    (".outputs "
    ^ String.concat " " (Array.to_list (Array.map fst (Netlist.outputs t)))
    ^ "\n");
  let cover out_label in_ids rows =
    Buffer.add_string buf (Printf.sprintf ".names %s %s\n" (names in_ids) out_label);
    List.iter (fun row -> Buffer.add_string buf (row ^ "\n")) rows
  in
  Netlist.iter_nodes
    (fun i g ->
      let lbl = node_label t i in
      match g with
      | Gate.Input -> ()
      | Gate.Const b ->
        Buffer.add_string buf (Printf.sprintf ".names %s\n" lbl);
        if b then Buffer.add_string buf "1\n"
      | Gate.Buf x -> cover lbl [ x ] [ "1 1" ]
      | Gate.Not x -> cover lbl [ x ] [ "0 1" ]
      | Gate.And xs ->
        cover lbl (Array.to_list xs) [ String.make (Array.length xs) '1' ^ " 1" ]
      | Gate.Or xs ->
        let w = Array.length xs in
        let rows =
          List.init w (fun k ->
              String.init w (fun j -> if j = k then '1' else '-') ^ " 1")
        in
        cover lbl (Array.to_list xs) rows
      | Gate.Xor (a, b) -> cover lbl [ a; b ] [ "10 1"; "01 1" ])
    t;
  (* alias covers connect PO names to their drivers *)
  Array.iter
    (fun (po, driver) ->
      if po <> node_label t driver then cover po [ driver ] [ "1 1" ])
    (Netlist.outputs t);
  Buffer.add_string buf extra;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_string t = write_model t

let sequential_to_string { comb; n_real_inputs; latches } =
  let labels = make_labels comb in
  let node_label _ i = labels.(i) in
  let ins = Netlist.inputs comb in
  let pseudo_inputs =
    Array.to_list (Array.sub ins n_real_inputs (Array.length ins - n_real_inputs))
  in
  let buf = Buffer.create 128 in
  Array.iteri
    (fun k { data; init } ->
      let q = ins.(n_real_inputs + k) in
      Buffer.add_string buf
        (Printf.sprintf ".latch %s %s re clk %d\n" (node_label comb data)
           (node_label comb q) (Bool.to_int init)))
    latches;
  write_model ~pseudo_inputs ~extra:(Buffer.contents buf) comb
