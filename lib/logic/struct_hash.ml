(* Canonical ids are assigned by first visit in an explicit-stack DFS
   from the primary outputs in declaration order, fanins left to right.
   The numbering therefore depends only on the (output order, fanin
   order) structure — never on creation order or names — which is the
   whole invariance claim of the interface. *)

let canonical net =
  let n = Netlist.size net in
  let canon = Array.make n (-1) in
  (* original ids in canonical order *)
  let visited = ref [] in
  let next = ref 0 in
  let stack = Stack.create () in
  let visit root =
    Stack.push root stack;
    while not (Stack.is_empty stack) do
      let id = Stack.pop stack in
      if canon.(id) < 0 then begin
        canon.(id) <- !next;
        incr next;
        visited := id :: !visited;
        (* push fanins reversed so the leftmost is numbered first *)
        let fi = Netlist.fanins net id in
        for k = Array.length fi - 1 downto 0 do
          Stack.push fi.(k) stack
        done
      end
    done
  in
  let outputs = Netlist.outputs net in
  Array.iter (fun (_, driver) -> visit driver) outputs;
  let b = Buffer.create 1024 in
  Buffer.add_string b "shv1";
  Buffer.add_string b (Printf.sprintf "|pi:%d" (Netlist.num_inputs net));
  Array.iter
    (fun (name, driver) ->
      (* the name is length-prefixed so "a"^"b:1" cannot collide with
         "ab"^":1" *)
      Buffer.add_string b
        (Printf.sprintf "|po:%d:%s:%d" (String.length name) name canon.(driver)))
    outputs;
  let node id =
    let c f = canon.(f) in
    match Netlist.gate net id with
    | Gate.Input -> Buffer.add_string b "|i"
    | Gate.Const false -> Buffer.add_string b "|c0"
    | Gate.Const true -> Buffer.add_string b "|c1"
    | Gate.Buf f -> Buffer.add_string b (Printf.sprintf "|b%d" (c f))
    | Gate.Not f -> Buffer.add_string b (Printf.sprintf "|n%d" (c f))
    | Gate.And fs ->
      Buffer.add_string b "|a";
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf ".%d" (c f))) fs
    | Gate.Or fs ->
      Buffer.add_string b "|o";
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf ".%d" (c f))) fs
    | Gate.Xor (f, g) -> Buffer.add_string b (Printf.sprintf "|x%d.%d" (c f) (c g))
  in
  List.iter node (List.rev !visited);
  Buffer.contents b

let digest net = Digest.to_hex (Digest.string (canonical net))
