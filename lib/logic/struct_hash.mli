(** Canonical structural hashing of netlists.

    {!digest} names the {e function} a netlist computes, not the text it
    was parsed from: two netlists get the same digest exactly when they
    have the same primary-input count, the same primary-output names in
    the same declaration order, and structurally identical output cones.
    The canonical form is

    - {b insertion-order independent} — node ids are renumbered by first
      visit in a DFS from the outputs (declaration order, fanins left to
      right), so the order gates were created in does not matter;
    - {b alpha-invariant over input and gate naming} — internal node
      names never enter the hash (primary-output names do: they appear
      verbatim in service responses, so two nets whose PO names differ
      must never share a cache entry);
    - {b dead-logic invariant} — nodes unreachable from any output are
      excluded, matching {!Dpa_synth.Opt.optimize}'s dead-logic removal
      (every service pipeline optimizes before computing). The
      primary-input {e count} is included even when inputs are unused,
      because [compare] responses report [n_pi] over the raw interface.

    Fanin order is preserved (AND/OR are not commutativity-canonicalized
    here: upstream canonicalization is {!Dpa_synth.Opt}'s job, and a
    conservative key only costs a duplicate cache entry, never a wrong
    hit). This is the keystone of the service result cache
    ([Dpa_service.Rescache]): everything that can change a response byte
    is either in this digest or in the explicit key fields layered on
    top of it. *)

val canonical : Netlist.t -> string
(** The canonical description the digest is computed over, exposed so
    tests can assert invariances on readable text. Format (version
    tagged, ['|']-separated): input count, each primary output as
    [po:<name>:<canonical driver id>], then each reachable node in
    canonical id order as a gate tag with canonical fanin ids. *)

val digest : Netlist.t -> string
(** MD5 of {!canonical} in lowercase hex (32 characters). *)
