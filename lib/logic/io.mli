(** Text serialization of netlists (".dln" format) and Graphviz export.

    The format, one statement per line ([#] starts a comment):
    {v
    .model fig5
    .inputs a b c d
    t1 = and a b
    t2 = not t1
    f  = or t2 c
    .outputs f
    .end
    v}
    Operators: [and], [or], [not], [buf], [xor], [const0], [const1].
    Every operand must name an input or an earlier gate. *)

val to_string : Netlist.t -> string
(** Serializes. Unnamed nodes receive generated [n<id>] names. *)

val of_string : string -> (Netlist.t, string) result
(** Parses; the error string carries a line number. *)

val parse_exn : string -> Netlist.t
(** [of_string] raising {!Dpa_util.Dpa_error.Error} with a [Parse]
    payload — convenient for embedded literals. *)

val to_dot : Netlist.t -> string
(** Graphviz digraph for debugging / documentation. *)

(** {2 File loading}

    The one shared loader behind every entry point that takes a netlist
    path — CLI subcommands and service requests alike — so format
    dispatch and error mapping cannot drift between them. *)

val read_file : string -> string
(** Whole file as a string; the channel is closed even when reading
    raises. [Sys_error] propagates (the CLI folds it into
    {!Dpa_util.Dpa_error.Io}). *)

val parse_netlist : source:string -> string -> Netlist.t
(** Parses netlist text: a [source] ending in [.blif] selects the BLIF
    parser, anything else the .dln parser. Raises
    {!Dpa_util.Dpa_error.Error} with a [Parse] payload carrying
    [source]. *)

val load_file : string -> Netlist.t
(** [parse_netlist ~source:path (read_file path)]. *)
