(* Unique label per node: explicit names win; unnamed nodes get "n<id>",
   suffixed with underscores if a user name already claims that token. *)
let make_labels t =
  let used = Hashtbl.create 16 in
  Netlist.iter_nodes
    (fun i _ ->
      match Netlist.node_name t i with
      | Some n -> Hashtbl.replace used n ()
      | None -> ())
    t;
  Array.init (Netlist.size t) (fun i ->
      match Netlist.node_name t i with
      | Some n -> n
      | None ->
        let rec fresh candidate =
          if Hashtbl.mem used candidate then fresh (candidate ^ "_") else candidate
        in
        let label = fresh (Printf.sprintf "n%d" i) in
        Hashtbl.replace used label ();
        label)

let to_string t =
  let labels = make_labels t in
  let node_label _ i = labels.(i) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Netlist.name t));
  let input_names = Array.to_list (Array.map (node_label t) (Netlist.inputs t)) in
  Buffer.add_string buf (".inputs " ^ String.concat " " input_names ^ "\n");
  Netlist.iter_nodes
    (fun i g ->
      let lbl = node_label t i in
      let operands xs = String.concat " " (Array.to_list (Array.map (node_label t) xs)) in
      match g with
      | Gate.Input -> ()
      | Gate.Const b -> Buffer.add_string buf (Printf.sprintf "%s = const%d\n" lbl (Bool.to_int b))
      | Gate.Buf x -> Buffer.add_string buf (Printf.sprintf "%s = buf %s\n" lbl (node_label t x))
      | Gate.Not x -> Buffer.add_string buf (Printf.sprintf "%s = not %s\n" lbl (node_label t x))
      | Gate.And xs -> Buffer.add_string buf (Printf.sprintf "%s = and %s\n" lbl (operands xs))
      | Gate.Or xs -> Buffer.add_string buf (Printf.sprintf "%s = or %s\n" lbl (operands xs))
      | Gate.Xor (a, b) ->
        Buffer.add_string buf
          (Printf.sprintf "%s = xor %s %s\n" lbl (node_label t a) (node_label t b)))
    t;
  let out_names =
    Array.to_list (Array.map (fun (po, d) -> ignore po; node_label t d) (Netlist.outputs t))
  in
  Buffer.add_string buf (".outputs " ^ String.concat " " out_names ^ "\n.end\n");
  Buffer.contents buf

type parse_state = {
  net : Netlist.t;
  ids : (string, int) Hashtbl.t;
  mutable saw_end : bool;
  mutable saw_outputs : bool;
}

let of_string text =
  Dpa_obs.Trace.with_span "dln.parse" @@ fun () ->
  if Dpa_obs.Trace.is_enabled () then begin
    let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1 text in
    Dpa_obs.Trace.add_args
      [ ("lines", Dpa_obs.Trace.Int lines); ("bytes", Dpa_obs.Trace.Int (String.length text)) ]
  end;
  let st =
    { net = Netlist.create (); ids = Hashtbl.create 64; saw_end = false; saw_outputs = false }
  in
  let error line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let resolve line name =
    match Hashtbl.find_opt st.ids name with
    | Some id -> Ok id
    | None -> error line (Printf.sprintf "unknown signal %S" name)
  in
  let rec resolve_all line acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match resolve line name with
      | Ok id -> resolve_all line (id :: acc) rest
      | Error _ as e -> e)
  in
  let define line name gate =
    if Hashtbl.mem st.ids name then error line (Printf.sprintf "redefinition of %S" name)
    else begin
      let id = Netlist.add_gate ~name st.net gate in
      Hashtbl.replace st.ids name id;
      Ok ()
    end
  in
  let parse_gate line name op operands =
    match op, operands with
    | "const0", [] -> define line name (Gate.Const false)
    | "const1", [] -> define line name (Gate.Const true)
    | "not", [ x ] -> (
      match resolve line x with Ok id -> define line name (Gate.Not id) | Error e -> Error e)
    | "buf", [ x ] -> (
      match resolve line x with Ok id -> define line name (Gate.Buf id) | Error e -> Error e)
    | "xor", [ a; b ] -> (
      match resolve_all line [] [ a; b ] with
      | Ok [ ia; ib ] -> define line name (Gate.Xor (ia, ib))
      | Ok _ -> assert false
      | Error e -> Error e)
    | "and", (_ :: _ as xs) -> (
      match resolve_all line [] xs with
      | Ok ids -> define line name (Gate.And (Array.of_list ids))
      | Error e -> Error e)
    | "or", (_ :: _ as xs) -> (
      match resolve_all line [] xs with
      | Ok ids -> define line name (Gate.Or (Array.of_list ids))
      | Error e -> Error e)
    | _, _ -> error line (Printf.sprintf "malformed gate %S with %d operand(s)" op (List.length operands))
  in
  let handle_line lineno raw =
    let stripped =
      match String.index_opt raw '#' with
      | Some k -> String.sub raw 0 k
      | None -> raw
    in
    let tokens =
      String.split_on_char ' ' (String.trim stripped)
      |> List.filter (fun s -> s <> "")
    in
    match tokens with
    | [] -> Ok ()
    | ".model" :: rest ->
      Netlist.set_name st.net (String.concat "_" rest);
      Ok ()
    | ".inputs" :: names ->
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ as e -> e
          | Ok () ->
            if Hashtbl.mem st.ids name then
              error lineno (Printf.sprintf "redefinition of %S" name)
            else begin
              Hashtbl.replace st.ids name (Netlist.add_input ~name st.net);
              Ok ()
            end)
        (Ok ()) names
    | ".outputs" :: names ->
      st.saw_outputs <- true;
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            match resolve lineno name with
            | Ok id -> Netlist.add_output st.net name id; Ok ()
            | Error e -> Error e))
        (Ok ()) names
    | [ ".end" ] ->
      st.saw_end <- true;
      Ok ()
    | name :: "=" :: op :: operands -> parse_gate lineno name op operands
    | tok :: _ -> error lineno (Printf.sprintf "cannot parse statement starting with %S" tok)
  in
  let lines = String.split_on_char '\n' text in
  let rec run lineno = function
    | [] ->
      if not st.saw_outputs then Error "missing .outputs declaration" else Ok st.net
    | line :: rest -> (
      if st.saw_end then Ok st.net
      else
        match handle_line lineno line with
        | Ok () -> run (lineno + 1) rest
        | Error _ as e -> e)
  in
  run 1 lines

let parse_exn text =
  match of_string text with
  | Ok net -> net
  | Error msg ->
    Dpa_util.Dpa_error.error
      (Dpa_util.Dpa_error.Parse { source = "dln"; line = None; message = msg })

let to_dot t =
  let labels = make_labels t in
  let node_label _ i = labels.(i) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" (Netlist.name t));
  Netlist.iter_nodes
    (fun i g ->
      let shape, text =
        match g with
        | Gate.Input -> "circle", node_label t i
        | Gate.Const b -> "plaintext", string_of_int (Bool.to_int b)
        | Gate.Buf _ -> "box", "buf"
        | Gate.Not _ -> "invtriangle", "not"
        | Gate.And _ -> "box", "and"
        | Gate.Or _ -> "box", "or"
        | Gate.Xor _ -> "box", "xor"
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [shape=%s,label=%S];\n" i shape text);
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" x i)) (Gate.fanins g))
    t;
  Array.iter
    (fun (po, d) ->
      Buffer.add_string buf (Printf.sprintf "  out_%s [shape=doublecircle,label=%S];\n" po po);
      Buffer.add_string buf (Printf.sprintf "  n%d -> out_%s;\n" d po))
    (Netlist.outputs t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File loading (shared by the CLI and the service)                     *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_netlist ~source text =
  let parsed =
    if Filename.check_suffix source ".blif" then Blif.of_string text
    else of_string text
  in
  match parsed with
  | Ok net -> net
  | Error msg ->
    Dpa_util.Dpa_error.error
      (Dpa_util.Dpa_error.Parse { source; line = None; message = msg })

let load_file path = parse_netlist ~source:path (read_file path)
