module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

type measurement = {
  zero_delay : float;
  with_glitches : float;
  glitch_ratio : float;
  cycles : int;
}

let measure ?(backend = Backend.default) ?(cycles = Backend.default_cycles) rng ~input_probs
    net =
  if cycles <= 0 then invalid_arg "Static_sim.measure: cycles must be positive";
  let ins = Netlist.inputs net in
  if Array.length input_probs <> Array.length ins then
    invalid_arg "Static_sim.measure: input_probs length mismatch";
  let n = Netlist.size net in
  let fanouts = Dpa_logic.Topo.fanouts net in
  let is_gate = Array.make n false in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input | Gate.Const _ -> ()
      | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ -> is_gate.(i) <- true)
    net;
  (* settle the network from the initial vector *)
  let pi_vec = Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) input_probs in
  let values = ref (Dpa_logic.Eval.all_nodes net pi_vec) in
  let zero_delay = ref 0 and glitchy = ref 0 in
  (* propagate one node's new value through its transitive fanout,
     recomputing gates immediately (order-accurate hazard model) and
     counting every value change *)
  let propagate start_values =
    let current = start_values in
    let rec touch i =
      Array.iter
        (fun reader ->
          let v = Gate.eval (Netlist.gate net reader) (fun x -> current.(x)) in
          if v <> current.(reader) then begin
            current.(reader) <- v;
            incr glitchy;
            touch reader
          end)
        fanouts.(i)
    in
    touch
  in
  for _ = 2 to cycles do
    let next_vec = Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) input_probs in
    (* changed inputs arrive in a random order *)
    let changed = ref [] in
    Array.iteri (fun k id -> if next_vec.(k) <> pi_vec.(k) then changed := (k, id) :: !changed) ins;
    let order = Array.of_list !changed in
    Dpa_util.Rng.shuffle rng order;
    let current = Array.copy !values in
    let touch = propagate current in
    Array.iter
      (fun (k, id) ->
        current.(id) <- next_vec.(k);
        touch id)
      order;
    (* Final settled values must equal the zero-delay evaluation: the
       network is acyclic and every change re-touches its readers, so
       quiescence is the unique fixpoint [Eval.all_nodes] computes. The
       interpreter backend recomputes it and asserts the equality; the
       compiled backend relies on the invariant and skips the O(n)
       re-evaluation — the one part of this glitch model that {e can} be
       elided without perturbing the random stream (the per-cycle
       draw/shuffle interleaving rules out lane batching here). *)
    let settled =
      match backend with
      | Backend.Compiled -> current
      | Backend.Interp ->
        let settled = Dpa_logic.Eval.all_nodes net next_vec in
        assert (settled = current);
        settled
    in
    Array.iteri
      (fun i v -> if is_gate.(i) && v <> !values.(i) then incr zero_delay)
      settled;
    values := settled;
    Array.blit next_vec 0 pi_vec 0 (Array.length pi_vec)
  done;
  let c = float_of_int cycles in
  let zd = float_of_int !zero_delay /. c in
  let gl = float_of_int !glitchy /. c in
  {
    zero_delay = zd;
    with_glitches = gl;
    glitch_ratio = (if zd = 0.0 then 1.0 else gl /. zd);
    cycles;
  }
