(** Simulation backend selector.

    Both backends consume the {e same} random stream in the same order
    and therefore produce bit-identical activity counts; the selector
    only chooses how fast those counts are obtained (see DESIGN.md §12
    for the determinism contract):

    - [Interp] — the original cycle-at-a-time interpreter, one
      {!Dpa_logic.Eval.all_nodes} walk per cycle.
    - [Compiled] — the block is lowered once to a flat instruction tape
      and evaluated on 63-bit words, one simulated cycle per bit lane,
      so one tape pass covers up to 63 cycles ({!Compiled}). *)

type t = Interp | Compiled

val default : t
(** [Compiled] — safe because the backends are count-identical by
    construction (and gated on that equality by the test suite); the
    interpreter remains selectable as the executable specification. *)

val default_cycles : int
(** The one default sample count ([10_000]) shared by every measurement
    entry point — {!Simulator.measure}, {!Static_sim.measure} and the
    compiled paths — so that "I didn't ask for a cycle count" means the
    same thing everywhere. Overridable per call ([?cycles]) and from the
    CLI ([--cycles]). Chosen to put the binomial 95% confidence
    halfwidth on a measured probability below ±0.01. *)

val to_string : t -> string
(** ["interp"] / ["compiled"] — the [--sim-backend] spellings. *)

val of_string : string -> t option

val all : t list
