let lanes = 63

(* SWAR popcount over the 63 usable bits of an OCaml int. The standard
   64-bit constants are reused with bit 63 conceptually zero; only the
   0x5555… mask exceeds [max_int] and has to be assembled. The final
   multiply cannot wrap: every byte-sum is ≤ 63, so the true 64-bit
   product stays below 2^63 and mod-2^63 arithmetic is exact. *)
let m55 = 0x1555555555555555 lor (1 lsl 62)
let m33 = 0x3333333333333333
let m0f = 0x0F0F0F0F0F0F0F0F
let h01 = 0x0101010101010101

let popcount v =
  let v = v - ((v lsr 1) land m55) in
  let v = (v land m33) + ((v lsr 2) land m33) in
  let v = (v + (v lsr 4)) land m0f in
  (v * h01) lsr 56

let lane_mask w =
  if w < 1 || w > lanes then invalid_arg "Vectors.lane_mask: width not in 1..63";
  if w = lanes then -1 else (1 lsl w) - 1

let lane_toggles ~prev_last word ~width =
  if width < 1 || width > lanes then invalid_arg "Vectors.lane_toggles: width not in 1..63";
  let adjacent = popcount ((word lxor (word lsr 1)) land ((1 lsl (width - 1)) - 1)) in
  match prev_last with
  | None -> adjacent
  | Some last -> adjacent + (if word land 1 <> last then 1 else 0)

let generate rng ~probs ~cycles =
  Array.init cycles (fun _ -> Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) probs)

let empirical_probs vectors =
  match Array.length vectors with
  | 0 -> [||]
  | n ->
    let width = Array.length vectors.(0) in
    let counts = Array.make width 0 in
    Array.iter
      (fun vec -> Array.iteri (fun k b -> if b then counts.(k) <- counts.(k) + 1) vec)
      vectors;
    Array.map (fun c -> float_of_int c /. float_of_int n) counts
