type t = Interp | Compiled

let default = Compiled

let default_cycles = 10_000

let to_string = function Interp -> "interp" | Compiled -> "compiled"

let of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

let all = [ Interp; Compiled ]
