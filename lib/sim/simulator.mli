(** Cycle-accurate gate-level simulation of mapped domino blocks — the
    repository's stand-in for the EPIC PowerMill measurement step.

    Each clock cycle has a precharge phase (every dynamic output returns
    high / buffered output low) and an evaluate phase. A dynamic cell
    dissipates when its logical output is 1 that cycle (it discharges and
    must precharge again) — Property 2.1 — and domino logic is glitch-free
    (Property 2.2), so zero-delay evaluation is exact; {!event_evaluate}
    demonstrates the glitch-freedom explicitly under adversarial input
    arrival orders.

    This library measures raw {e activity} only; pricing lives one layer
    up in [Dpa_power.Estimate.price] (see [Dpa_power.Estimate.of_activity])
    so the power library can also call the simulator as the Monte-Carlo
    fallback rung of its resource-bounded estimation engine. *)

type activity = {
  node_probs : float array;  (** measured signal probability per block node *)
  input_toggles : float array;
      (** measured toggle rate per {e original} primary input position *)
  cycles : int;
  fire_counts : int array;  (** discharge events per block node *)
}

val measure :
  ?backend:Backend.t ->
  ?cycles:int ->
  ?cancel:Dpa_util.Cancel.t ->
  Dpa_util.Rng.t ->
  input_probs:float array ->
  Dpa_domino.Mapped.t ->
  activity
(** Drives the block with Bernoulli vectors over the {e original} primary
    inputs (default {!Backend.default_cycles} cycles). The measured
    activity uses the same per-node indexing as the BDD estimator, so
    the two are directly comparable once priced with the same model.

    [backend] (default {!Backend.default}) selects the interpreter or
    the bit-parallel {!Compiled} tape; both consume the same random
    stream in the same order, so [fire_counts], [input_toggles] and the
    derived probabilities are bit-identical across backends for equal
    seeds. Emits a [sim.run] trace span tagged with the backend and
    publishes a [sim.<backend>.cycles_per_sec] gauge.

    [cancel] is polled every 64 cycles (interpreter) or once per 63-cycle
    tape pass (compiled); a fired token raises
    [Dpa_error.Error (Cancelled _)]. The checks never perturb the random
    stream, so cancellation does not break backend bit-identity. *)

val measure_compiled :
  ?cycles:int ->
  ?cancel:Dpa_util.Cancel.t ->
  Dpa_util.Rng.t ->
  input_probs:float array ->
  Compiled.t ->
  activity
(** As [measure ~backend:Compiled], but on an already-compiled program —
    the engine's per-cone Monte-Carlo rung compiles the block once and
    measures many cones against it (the program is immutable and safe to
    share across pool domains). *)

type evaluate_trace = {
  rises : int array;  (** 0→1 transitions per node during one evaluate *)
  final : bool array;  (** values at the end of the evaluate phase *)
}

val event_evaluate :
  Dpa_util.Rng.t -> Dpa_domino.Mapped.t -> bool array -> evaluate_trace
(** Event-driven evaluation of one cycle with the true input literals
    arriving in a random order: inputs only rise, the network is monotone,
    so every node makes at most one transition regardless of timing — the
    executable form of Property 2.2. *)
