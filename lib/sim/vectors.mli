(** Statistically generated input vectors.

    The paper measures power "with statistically generated input vectors
    with the appropriate signal probabilities" — each primary input is an
    independent Bernoulli stream. *)

val generate :
  Dpa_util.Rng.t -> probs:float array -> cycles:int -> bool array array
(** [cycles] vectors of [Array.length probs] bits each. *)

(** {2 Bit-packed lanes}

    Helpers for the {!Compiled} backend, which packs one simulation
    cycle per bit ("lane") of an OCaml [int] and evaluates up to
    {!lanes} cycles per pass. *)

val lanes : int
(** Usable bits per word: [63] (an OCaml [int] on a 64-bit platform). *)

val popcount : int -> int
(** Set bits among the 63 usable bits, sign bit included — counting a
    full lane word such as [lane_mask 63 = -1] yields [63]. *)

val lane_mask : int -> int
(** [lane_mask w] has lanes [0..w-1] set. [w] must be in [1..lanes];
    [lane_mask lanes] is [-1] (all 63 bits). *)

val lane_toggles : prev_last:int option -> int -> width:int -> int
(** [lane_toggles ~prev_last word ~width] counts value changes between
    consecutive cycles inside [word]'s low [width] lanes — adjacent-lane
    differences — plus, when [prev_last] is [Some b], the boundary
    change between the previous pass's final lane value [b] and lane 0.
    [None] marks the first pass, whose first cycle has no predecessor:
    summing over all passes yields exactly [cycles - 1] comparisons,
    matching the cycle-at-a-time simulator. *)

val empirical_probs : bool array array -> float array
(** Per-column fraction of ones; the sanity check that generated vectors
    realize the requested probabilities. *)
