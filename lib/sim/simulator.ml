module Netlist = Dpa_logic.Netlist
module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics
module Clock = Dpa_obs.Clock

type activity = {
  node_probs : float array;
  input_toggles : float array;
  cycles : int;
  fire_counts : int array;
}

(* eager registration — forcing a [lazy] cell from two domains races *)
let g_interp_cps =
  Metrics.gauge ~help:"interpreter backend throughput, simulated cycles per second"
    "sim.interp.cycles_per_sec"

let g_compiled_cps =
  Metrics.gauge ~help:"compiled backend throughput, simulated cycles per second"
    "sim.compiled.cycles_per_sec"

let publish_cps gauge ~cycles ~since =
  let dt = Clock.elapsed_ns ~since in
  if dt > 0 then Metrics.set gauge (float_of_int cycles *. 1e9 /. float_of_int dt)

let literal_vector lits pi_vec =
  Array.map
    (fun (opos, pol) ->
      match pol with
      | Inverterless.Pos -> pi_vec.(opos)
      | Inverterless.Neg -> not pi_vec.(opos))
    lits

let interp_measure ~cycles ~cancel rng ~input_probs mapped =
  let net = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  let n = Netlist.size net in
  let fire_counts = Array.make n 0 in
  let pi_toggles = Array.make (Array.length input_probs) 0 in
  let prev_pi = ref None in
  for cycle = 1 to cycles do
    if cycle land 63 = 0 then Dpa_util.Cancel.check cancel;
    let pi_vec = Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) input_probs in
    (match !prev_pi with
    | Some prev ->
      Array.iteri (fun k b -> if b <> prev.(k) then pi_toggles.(k) <- pi_toggles.(k) + 1) pi_vec
    | None -> ());
    prev_pi := Some pi_vec;
    let values = Dpa_logic.Eval.all_nodes net (literal_vector lits pi_vec) in
    Array.iteri (fun i v -> if v then fire_counts.(i) <- fire_counts.(i) + 1) values
  done;
  (fire_counts, pi_toggles)

let activity_of_counts ~cycles ~fire_counts ~pi_toggles =
  let fc = float_of_int cycles in
  let node_probs = Array.map (fun c -> float_of_int c /. fc) fire_counts in
  let input_toggles = Array.map (fun c -> float_of_int c /. fc) pi_toggles in
  { node_probs; input_toggles; cycles; fire_counts }

let measure_compiled ?(cycles = Backend.default_cycles) ?(cancel = Dpa_util.Cancel.none) rng
    ~input_probs prog =
  Trace.with_span "sim.run"
    ~args:
      [
        ("backend", Trace.Str "compiled");
        ("cycles", Trace.Int cycles);
        ("nodes", Trace.Int (Compiled.n_nodes prog));
      ]
  @@ fun () ->
  let since = Clock.now_ns () in
  let counts = Compiled.measure_counts ~cycles ~cancel rng ~input_probs prog in
  publish_cps g_compiled_cps ~cycles ~since;
  activity_of_counts ~cycles ~fire_counts:counts.Compiled.fire
    ~pi_toggles:counts.Compiled.source_toggles

let measure ?(backend = Backend.default) ?(cycles = Backend.default_cycles)
    ?(cancel = Dpa_util.Cancel.none) rng ~input_probs mapped =
  if cycles <= 0 then invalid_arg "Simulator.measure: cycles must be positive";
  match backend with
  | Backend.Compiled ->
    measure_compiled ~cycles ~cancel rng ~input_probs (Compiled.of_block mapped)
  | Backend.Interp ->
    Trace.with_span "sim.run"
      ~args:[ ("backend", Trace.Str "interp"); ("cycles", Trace.Int cycles) ]
    @@ fun () ->
    let since = Clock.now_ns () in
    let fire_counts, pi_toggles = interp_measure ~cycles ~cancel rng ~input_probs mapped in
    publish_cps g_interp_cps ~cycles ~since;
    activity_of_counts ~cycles ~fire_counts ~pi_toggles

type evaluate_trace = {
  rises : int array;
  final : bool array;
}

let event_evaluate rng mapped pi_vec =
  let net = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  let n = Netlist.size net in
  let fanouts = Dpa_logic.Topo.fanouts net in
  (* Precharged state: every signal reads 0 at the buffered outputs. *)
  let value = Array.make n false in
  let rises = Array.make n 0 in
  (* Constants that are true "arrive" immediately. *)
  let queue = Queue.create () in
  let raise_node i =
    if not value.(i) then begin
      value.(i) <- true;
      rises.(i) <- rises.(i) + 1;
      Queue.add i queue
    end
  in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Dpa_logic.Gate.Const true -> raise_node i
      | Dpa_logic.Gate.Const false | Dpa_logic.Gate.Input | Dpa_logic.Gate.Buf _
      | Dpa_logic.Gate.Not _ | Dpa_logic.Gate.And _ | Dpa_logic.Gate.Or _
      | Dpa_logic.Gate.Xor _ -> ())
    net;
  let literal_values = literal_vector lits pi_vec in
  (* True literals arrive in a random order; false literals never rise. *)
  let arriving = ref [] in
  Array.iteri
    (fun pos id -> if literal_values.(pos) then arriving := id :: !arriving)
    (Netlist.inputs net);
  let order = Array.of_list !arriving in
  Dpa_util.Rng.shuffle rng order;
  let propagate () =
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      Array.iter
        (fun reader ->
          if not value.(reader) then begin
            let fires =
              match Netlist.gate net reader with
              | Dpa_logic.Gate.And xs -> Array.for_all (fun x -> value.(x)) xs
              | Dpa_logic.Gate.Or xs -> Array.exists (fun x -> value.(x)) xs
              | Dpa_logic.Gate.Input | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Buf _
              | Dpa_logic.Gate.Not _ | Dpa_logic.Gate.Xor _ -> false
            in
            if fires then raise_node reader
          end)
        fanouts.(i)
    done
  in
  propagate ();
  Array.iter
    (fun id ->
      raise_node id;
      propagate ())
    order;
  { rises; final = Array.copy value }
