(** Bit-parallel compiled simulation: the netlist is lowered once to a
    flat instruction tape and evaluated over 63-bit words, one simulated
    cycle per bit lane, so one tape pass covers up to 63 Bernoulli
    cycles — the netlist-to-array-program shape of Blarney's simulation
    backend, applied to the Monte-Carlo rung here.

    {b Determinism contract.} The compiled backend is {e bit-identical}
    to {!Simulator.measure}'s interpreter, not merely statistically
    equivalent: the packed generator ({!Dpa_util.Rng.fill_bernoulli_lanes})
    draws one Bernoulli per input per cycle in the interpreter's exact
    order (cycle-major, input-minor) and packs cycle [c] of a pass into
    lane [c], so every per-node fire count and per-input toggle count
    comes out equal for equal seeds — at any cycle count, including
    partial final passes ([cycles mod 63 ≠ 0]). The test suite gates the
    backend on that equality; DESIGN.md §12 documents the tape format. *)

type t
(** A compiled program: the tape, plus the literal map from block-input
    positions to original primary inputs. Immutable after compilation —
    safe to share across domains; the mutable register file is allocated
    per measurement. *)

val of_block : Dpa_domino.Mapped.t -> t
(** Compile a mapped domino block. Block inputs load from the original
    PI stream through {!Dpa_domino.Mapped.literals} (negative literals
    complement the packed word), exactly as the interpreter's
    literal-vector expansion. Emits a [sim.compile] trace span. *)

val of_netlist : Dpa_logic.Netlist.t -> t
(** Compile a raw netlist (any gate type, including [Xor]); input [k]
    of the netlist reads stream [k] directly. Serves the netlist-level
    Monte-Carlo rung of [Dpa_power.Engine.node_probabilities]. *)

val n_nodes : t -> int

val n_instructions : t -> int

type counts = {
  fire : int array;  (** cycles each node evaluated to 1 *)
  source_toggles : int array;  (** toggles per original primary input *)
  cycles : int;
}

val measure_counts :
  ?cycles:int ->
  ?cancel:Dpa_util.Cancel.t ->
  Dpa_util.Rng.t ->
  input_probs:float array ->
  t ->
  counts
(** Raw activity counts over [cycles] Bernoulli cycles (default
    {!Backend.default_cycles}); {!Simulator.measure} dresses them up as
    an {!Simulator.activity}. [input_probs] indexes the {e original}
    primary inputs, as in the interpreter. [cancel] is polled once per
    63-cycle tape pass; a fired token raises
    [Dpa_error.Error (Cancelled _)]. *)

val node_probabilities :
  ?cycles:int ->
  ?cancel:Dpa_util.Cancel.t ->
  Dpa_util.Rng.t ->
  input_probs:float array ->
  t ->
  float array
(** [measure_counts] reduced to per-node signal probabilities —
    the shape [Dpa_power.Engine.node_probabilities]'s simulation rung
    needs. *)
