(** Event-driven simulation of a static CMOS implementation, glitches
    included.

    Domino logic never glitches (Property 2.2), so its zero-delay activity
    is exact. Static CMOS does glitch: when inputs settle in an arbitrary
    order, a gate can toggle several times before reaching its final
    value. This simulator propagates input changes one at a time in a
    random order — a unit-delay-free but order-accurate hazard model — and
    counts {e every} transition, quantifying how much the textbook
    [2p(1-p)] zero-delay figure underestimates real static activity. The
    domino/static comparisons in the bench use it to keep the paper's
    "up to 4×" motivation honest. *)

type measurement = {
  zero_delay : float;  (** Σ over gates of final-value toggles per cycle *)
  with_glitches : float;  (** Σ over gates of all transitions per cycle *)
  glitch_ratio : float;  (** [with_glitches / zero_delay]; 1.0 when clean *)
  cycles : int;
}

val measure :
  ?backend:Backend.t ->
  ?cycles:int ->
  Dpa_util.Rng.t ->
  input_probs:float array ->
  Dpa_logic.Netlist.t ->
  measurement
(** Default {!Backend.default_cycles} cycles. Inputs are independent
    Bernoulli streams; each cycle the changed inputs are applied in a
    fresh random order. The network may contain any gate type.

    [backend] keeps the measurement bit-identical either way: the hazard
    model interleaves Bernoulli draws with per-cycle shuffles, which
    rules out the lane-packed tape, so [Compiled] instead elides the
    per-cycle zero-delay re-evaluation (the event propagation already
    settles to the same fixpoint, asserted under [Interp]). *)
