module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless
module Rng = Dpa_util.Rng
module Trace = Dpa_obs.Trace

(* ------------------------------------------------------------------ *)
(* Instruction tape                                                    *)
(* ------------------------------------------------------------------ *)

(* One flat [int array], decoded by a program counter:

     const0 dst            | const1 dst
     buf    dst src        | not    dst src
     and2   dst a b        | or2    dst a b        | xor2 dst a b
     andn   dst k x1 .. xk | orn    dst k x1 .. xk

   Operands are node ids, indexing the register file directly: one
   63-bit word per node, one simulated cycle per bit lane. Input nodes
   have no instruction — their words are loaded from the packed
   Bernoulli generator before each pass. A netlist is topologically
   ordered by construction (every fanin id is smaller than its reader),
   so lowering is a single [iter_nodes] walk and the tape never reads a
   register before writing it. *)

let op_const0 = 0
let op_const1 = 1
let op_buf = 2
let op_not = 3
let op_and2 = 4
let op_or2 = 5
let op_xor2 = 6
let op_andn = 7
let op_orn = 8

type t = {
  code : int array;
  n_nodes : int;
  n_instructions : int;
  input_ids : int array;  (** node id per block-input position *)
  src_pos : int array;  (** original PI feeding each block input *)
  negated : bool array;  (** complemented literal? *)
}

let n_nodes t = t.n_nodes

let n_instructions t = t.n_instructions

let lower net =
  let rev = ref [] in
  let count = ref 0 in
  let push v = rev := v :: !rev in
  let emit_nary ~op2 ~opn ~empty dst xs =
    incr count;
    match Array.length xs with
    | 0 ->
      push empty;
      push dst
    | 1 ->
      push op_buf;
      push dst;
      push xs.(0)
    | 2 ->
      push op2;
      push dst;
      push xs.(0);
      push xs.(1)
    | k ->
      push opn;
      push dst;
      push k;
      Array.iter push xs
  in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input -> ()
      | Gate.Const false ->
        incr count;
        push op_const0;
        push i
      | Gate.Const true ->
        incr count;
        push op_const1;
        push i
      | Gate.Buf x ->
        incr count;
        push op_buf;
        push i;
        push x
      | Gate.Not x ->
        incr count;
        push op_not;
        push i;
        push x
      | Gate.Xor (a, b) ->
        incr count;
        push op_xor2;
        push i;
        push a;
        push b
      | Gate.And xs -> emit_nary ~op2:op_and2 ~opn:op_andn ~empty:op_const1 i xs
      | Gate.Or xs -> emit_nary ~op2:op_or2 ~opn:op_orn ~empty:op_const0 i xs)
    net;
  (Array.of_list (List.rev !rev), !count)

let of_netlist net =
  Trace.with_span "sim.compile"
    ~args:[ ("kind", Trace.Str "netlist"); ("nodes", Trace.Int (Netlist.size net)) ]
  @@ fun () ->
  let inputs = Netlist.inputs net in
  let code, n_instructions = lower net in
  {
    code;
    n_nodes = Netlist.size net;
    n_instructions;
    input_ids = Array.copy inputs;
    src_pos = Array.init (Array.length inputs) Fun.id;
    negated = Array.make (Array.length inputs) false;
  }

let of_block mapped =
  let net = Mapped.net mapped in
  Trace.with_span "sim.compile"
    ~args:[ ("kind", Trace.Str "block"); ("nodes", Trace.Int (Netlist.size net)) ]
  @@ fun () ->
  let lits = Mapped.literals mapped in
  let code, n_instructions = lower net in
  {
    code;
    n_nodes = Netlist.size net;
    n_instructions;
    input_ids = Array.copy (Netlist.inputs net);
    src_pos = Array.map fst lits;
    negated = Array.map (fun (_, pol) -> pol = Inverterless.Neg) lits;
  }

(* ------------------------------------------------------------------ *)
(* Tape evaluation                                                     *)
(* ------------------------------------------------------------------ *)

(* Unsafe accesses are justified by construction: every operand the
   tape contains is a node id < n_nodes = Array.length regs, and the
   decoder only ever advances by whole instructions. *)
let exec code regs ~mask =
  let len = Array.length code in
  let pc = ref 0 in
  while !pc < len do
    let p = !pc in
    match Array.unsafe_get code p with
    | 0 (* const0 *) ->
      Array.unsafe_set regs (Array.unsafe_get code (p + 1)) 0;
      pc := p + 2
    | 1 (* const1 *) ->
      Array.unsafe_set regs (Array.unsafe_get code (p + 1)) mask;
      pc := p + 2
    | 2 (* buf *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (p + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (p + 2)));
      pc := p + 3
    | 3 (* not *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (p + 1))
        (lnot (Array.unsafe_get regs (Array.unsafe_get code (p + 2))) land mask);
      pc := p + 3
    | 4 (* and2 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (p + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (p + 2))
        land Array.unsafe_get regs (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 5 (* or2 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (p + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (p + 2))
        lor Array.unsafe_get regs (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 6 (* xor2 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (p + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (p + 2))
        lxor Array.unsafe_get regs (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 7 (* andn *) ->
      let k = Array.unsafe_get code (p + 2) in
      let acc = ref (Array.unsafe_get regs (Array.unsafe_get code (p + 3))) in
      for j = 1 to k - 1 do
        acc := !acc land Array.unsafe_get regs (Array.unsafe_get code (p + 3 + j))
      done;
      Array.unsafe_set regs (Array.unsafe_get code (p + 1)) !acc;
      pc := p + 3 + k
    | 8 (* orn *) ->
      let k = Array.unsafe_get code (p + 2) in
      let acc = ref (Array.unsafe_get regs (Array.unsafe_get code (p + 3))) in
      for j = 1 to k - 1 do
        acc := !acc lor Array.unsafe_get regs (Array.unsafe_get code (p + 3 + j))
      done;
      Array.unsafe_set regs (Array.unsafe_get code (p + 1)) !acc;
      pc := p + 3 + k
    | _ -> assert false
  done

(* ------------------------------------------------------------------ *)
(* Bit-parallel measurement                                            *)
(* ------------------------------------------------------------------ *)

type counts = {
  fire : int array;  (** cycles each node evaluated to 1 *)
  source_toggles : int array;  (** toggles per original primary input *)
  cycles : int;
}

let measure_counts ?(cycles = Backend.default_cycles) ?(cancel = Dpa_util.Cancel.none) rng
    ~input_probs prog =
  if cycles <= 0 then invalid_arg "Compiled.measure_counts: cycles must be positive";
  let n_pi = Array.length input_probs in
  Array.iter
    (fun src ->
      if src < 0 || src >= n_pi then
        invalid_arg "Compiled.measure_counts: input_probs shorter than the block's literals")
    prog.src_pos;
  let thresholds = Array.map Rng.bernoulli_threshold input_probs in
  let pi_words = Array.make n_pi 0 in
  let regs = Array.make prog.n_nodes 0 in
  let fire = Array.make prog.n_nodes 0 in
  let source_toggles = Array.make n_pi 0 in
  let prev_last = Array.make n_pi 0 in
  let first = ref true in
  let remaining = ref cycles in
  while !remaining > 0 do
    (* One poll per 63-cycle tape pass: cheap relative to the pass, tight
       enough that a fired token stops a long measurement within ~one pass. *)
    Dpa_util.Cancel.check cancel;
    let w = min Vectors.lanes !remaining in
    let mask = Vectors.lane_mask w in
    (* Same stream, same order, as the interpreter: one draw per input
       per cycle, inputs in ascending order within the cycle. *)
    Rng.fill_bernoulli_lanes rng ~thresholds ~lanes:w ~into:pi_words;
    for k = 0 to n_pi - 1 do
      let word = Array.unsafe_get pi_words k in
      let prev = if !first then None else Some (Array.unsafe_get prev_last k) in
      source_toggles.(k) <- source_toggles.(k) + Vectors.lane_toggles ~prev_last:prev word ~width:w;
      prev_last.(k) <- (word lsr (w - 1)) land 1
    done;
    first := false;
    for pos = 0 to Array.length prog.input_ids - 1 do
      let word = pi_words.(prog.src_pos.(pos)) in
      regs.(prog.input_ids.(pos)) <- (if prog.negated.(pos) then lnot word land mask else word)
    done;
    exec prog.code regs ~mask;
    for i = 0 to prog.n_nodes - 1 do
      Array.unsafe_set fire i (Array.unsafe_get fire i + Vectors.popcount (Array.unsafe_get regs i))
    done;
    remaining := !remaining - w
  done;
  { fire; source_toggles; cycles }

let node_probabilities ?cycles ?cancel rng ~input_probs prog =
  let counts = measure_counts ?cycles ?cancel rng ~input_probs prog in
  let fc = float_of_int counts.cycles in
  Array.map (fun c -> float_of_int c /. fc) counts.fire
