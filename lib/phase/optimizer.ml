module Netlist = Dpa_logic.Netlist

type strategy =
  | Auto
  | Exhaustive
  | Greedy
  | Multi_start of int
  | Annealing of Annealing.params

type config = {
  library : Dpa_domino.Library.t;
  input_probs : float array;
  strategy : strategy;
  exhaustive_limit : int;
  pair_limit : int option;
  seed : int;
  budget : Dpa_power.Engine.budget option;
  par : Dpa_util.Par.t option;
  cancel : Dpa_util.Cancel.t;
}

let default_config ~input_probs =
  {
    library = Dpa_domino.Library.default;
    input_probs;
    strategy = Auto;
    exhaustive_limit = 10;
    pair_limit = None;
    seed = 1;
    budget = None;
    par = None;
    cancel = Dpa_util.Cancel.none;
  }

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  measurements : int;
  strategy_used : string;
  degraded_measurements : int;
  degradation : Dpa_power.Engine.degradation option;
}

let minimize_power config net =
  let n = Netlist.num_outputs net in
  if n = 0 then invalid_arg "Optimizer.minimize_power: network has no outputs";
  Dpa_obs.Trace.with_span "phase.optimize" ~args:[ ("outputs", Dpa_obs.Trace.Int n) ]
  @@ fun () ->
  let measure =
    Measure.create ~library:config.library ?budget:config.budget ~cancel:config.cancel
      ?par:config.par ~input_probs:config.input_probs net
  in
  let run_exhaustive () =
    (* Exhaustive search visits every assignment anyway, so speculation
       is free of waste: price the enumeration across the pool in
       bounded chunks, then let the sequential scan answer from cache.
       The scan order — and thus the argmin tie-break — is unchanged. *)
    (if Measure.parallel_jobs measure > 1 then begin
       let chunk = 64 * Measure.parallel_jobs measure in
       let rec go seq =
         let batch = ref [] and count = ref 0 and rest = ref seq in
         (try
            while !count < chunk do
              match Seq.uncons !rest with
              | None -> raise Exit
              | Some (a, tl) ->
                batch := a :: !batch;
                incr count;
                rest := tl
            done
          with Exit -> ());
         if !batch <> [] then begin
           Measure.prefetch measure !batch;
           go !rest
         end
       in
       go (Dpa_synth.Phase.enumerate ~num_outputs:n)
     end);
    let r = Exhaustive.run measure ~num_outputs:n in
    (r.Exhaustive.assignment, r.Exhaustive.power, r.Exhaustive.size, "exhaustive")
  in
  let cost_and_base () =
    let cost = Cost.make net in
    let base_probs =
      match config.budget with
      | Some budget when not (Dpa_power.Engine.is_unbounded budget) ->
        fst
          (Dpa_power.Engine.node_probabilities ~budget ~cancel:config.cancel
             ~input_probs:config.input_probs net)
      | Some _ | None -> Dpa_bdd.Build.probabilities ~input_probs:config.input_probs net
    in
    (cost, base_probs)
  in
  let run_greedy () =
    let cost, base_probs = cost_and_base () in
    let r = Greedy.run ?pair_limit:config.pair_limit measure ~cost ~base_probs in
    (r.Greedy.assignment, r.Greedy.power, r.Greedy.size, "greedy")
  in
  let run_multi_start restarts =
    if restarts < 1 then invalid_arg "Optimizer: Multi_start needs at least one run";
    let cost, base_probs = cost_and_base () in
    let rng = Dpa_util.Rng.create config.seed in
    let run initial = Greedy.run ~initial ?pair_limit:config.pair_limit measure ~cost ~base_probs in
    let first = run `All_positive in
    let best = ref first in
    for _ = 2 to restarts do
      let r = run (`Random rng) in
      if
        r.Greedy.power < !best.Greedy.power
        || (r.Greedy.power = !best.Greedy.power && r.Greedy.size < !best.Greedy.size)
      then best := r
    done;
    ( !best.Greedy.assignment,
      !best.Greedy.power,
      !best.Greedy.size,
      Printf.sprintf "multi-start(%d)" restarts )
  in
  let assignment, power, size, strategy_used =
    match config.strategy with
    | Exhaustive -> run_exhaustive ()
    | Greedy -> run_greedy ()
    | Multi_start restarts -> run_multi_start restarts
    | Annealing params ->
      let rng = Dpa_util.Rng.create config.seed in
      let r = Annealing.run ~params rng measure ~num_outputs:n in
      (r.Annealing.assignment, r.Annealing.power, r.Annealing.size, "annealing")
    | Auto -> if n <= config.exhaustive_limit then run_exhaustive () else run_greedy ()
  in
  Measure.publish_metrics measure;
  Dpa_obs.Trace.add_args
    [
      ("strategy", Dpa_obs.Trace.Str strategy_used);
      ("measurements", Dpa_obs.Trace.Int (Measure.evaluations measure));
    ];
  {
    assignment;
    power;
    size;
    measurements = Measure.evaluations measure;
    strategy_used;
    degraded_measurements = Measure.degraded_evaluations measure;
    degradation = Measure.worst_degradation measure;
  }
