(** Top-level minimum-power phase assignment (the "MP" flow of the
    paper's Fig. 6): compute base signal probabilities with the enhanced
    BDD estimator, then search — exhaustively when the output count
    permits, otherwise with the greedy pairwise heuristic (optionally
    refined by annealing). *)

type strategy =
  | Auto  (** exhaustive up to [exhaustive_limit] outputs, else greedy *)
  | Exhaustive
  | Greedy
  | Multi_start of int
      (** best of N greedy runs — one from all-positive, the rest from
          seeded random initial assignments; the measurement cache is
          shared so repeated candidates cost nothing *)
  | Annealing of Annealing.params

type config = {
  library : Dpa_domino.Library.t;
  input_probs : float array;  (** per primary input of the network *)
  strategy : strategy;
  exhaustive_limit : int;  (** [Auto] threshold, default 10 *)
  pair_limit : int option;  (** greedy candidate cap, default none *)
  seed : int;  (** randomized strategies *)
  budget : Dpa_power.Engine.budget option;
      (** resource budget for every estimate in the search (base
          probabilities and per-candidate pricing); [None] = exact,
          unbounded *)
  par : Dpa_util.Par.t option;
      (** domain pool for speculative parallel candidate pricing (greedy
          lookahead, exhaustive chunked prefetch). Never changes any
          measured value or the search trajectory — the result is
          bit-identical with or without it, at any jobs count. *)
  cancel : Dpa_util.Cancel.t;
      (** cooperative-cancellation token polled on every measurement; a
          fired token aborts the search with
          [Dpa_error.Error (Cancelled _)]. Default {!Dpa_util.Cancel.none}
          (never fires, zero overhead). *)
}

val default_config : input_probs:float array -> config

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  measurements : int;  (** distinct assignments synthesized and priced *)
  strategy_used : string;
  degraded_measurements : int;
      (** measurements that fell below fully exact (0 without a budget) *)
  degradation : Dpa_power.Engine.degradation option;
      (** worst per-candidate degradation seen, [None] when all exact *)
}

val minimize_power : config -> Dpa_logic.Netlist.t -> result
(** The netlist must be domino-ready (run {!Dpa_synth.Opt.optimize}
    first). *)
