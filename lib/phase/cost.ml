module Bitset = Dpa_util.Bitset

type action = Retain | Invert

type t = {
  cones : Bitset.t array;
  sizes : int array;
  overlaps : float array array;
}

let make net =
  let cones = Dpa_logic.Cone.of_outputs net in
  let n = Array.length cones in
  let sizes = Array.map Bitset.cardinal cones in
  let overlaps = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let o = Dpa_logic.Cone.overlap cones.(i) cones.(j) in
      overlaps.(i).(j) <- o;
      overlaps.(j).(i) <- o
    done
  done;
  { cones; sizes; overlaps }

let num_outputs t = Array.length t.sizes

let cone_size t i = t.sizes.(i)

let overlap t i j = t.overlaps.(i).(j)

(* Mean base probability per cone. Assignment-independent (Property 4.1
   only complements the mean), so a search computes this once and derives
   the per-assignment averages in O(outputs) instead of re-walking every
   cone after each commit. *)
type averager = float array

let averager t ~base_probs =
  Array.mapi
    (fun i cone ->
      if t.sizes.(i) = 0 then 0.0
      else begin
        let sum = ref 0.0 in
        Bitset.iter (fun node -> sum := !sum +. base_probs.(node)) cone;
        !sum /. float_of_int t.sizes.(i)
      end)
    t.cones

let averages_of t means assignment =
  if Array.length assignment <> num_outputs t then
    invalid_arg "Cost.averages_of: assignment length mismatch";
  Array.mapi
    (fun i mean ->
      if t.sizes.(i) = 0 then 0.0
      else
        match assignment.(i) with
        | Dpa_synth.Phase.Positive -> mean
        | Dpa_synth.Phase.Negative -> 1.0 -. mean)
    means

let averages t ~base_probs assignment =
  if Array.length assignment <> num_outputs t then
    invalid_arg "Cost.averages: assignment length mismatch";
  averages_of t (averager t ~base_probs) assignment

let effective a = function
  | Retain -> a
  | Invert -> 1.0 -. a

let k t ~averages i ai j aj =
  let a_i = effective averages.(i) ai and a_j = effective averages.(j) aj in
  (float_of_int t.sizes.(i) *. a_i)
  +. (float_of_int t.sizes.(j) *. a_j)
  +. (0.5 *. t.overlaps.(i).(j) *. (a_i +. a_j))

let k_tuple t ~averages assignments =
  let size_terms =
    List.fold_left
      (fun acc (i, ai) -> acc +. (float_of_int t.sizes.(i) *. effective averages.(i) ai))
      0.0 assignments
  in
  let rec overlap_terms acc = function
    | [] -> acc
    | (i, ai) :: rest ->
      let acc =
        List.fold_left
          (fun acc (j, aj) ->
            acc
            +. 0.5 *. t.overlaps.(i).(j)
               *. (effective averages.(i) ai +. effective averages.(j) aj))
          acc rest
      in
      overlap_terms acc rest
  in
  overlap_terms size_terms assignments

let enumerate_action_tuples t ~averages tuple =
  let n = List.length tuple in
  if n = 0 then invalid_arg "Cost.best_action_tuple: empty tuple";
  if n > 20 then invalid_arg "Cost.best_action_tuple: tuple too long to enumerate";
  List.init (1 lsl n) (fun code ->
      let actions =
        List.mapi (fun k i -> (i, if (code lsr k) land 1 = 1 then Invert else Retain)) tuple
      in
      (List.map snd actions, k_tuple t ~averages actions))

let best_action_tuple t ~averages tuple =
  match enumerate_action_tuples t ~averages tuple with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun (ba, bk) (a, k) -> if k < bk then (a, k) else (ba, bk)) first rest

let ranked_action_tuples t ~averages tuple =
  List.stable_sort
    (fun (_, a) (_, b) -> compare a b)
    (enumerate_action_tuples t ~averages tuple)

let best_action_pair t ~averages i j =
  let candidates =
    [ (Retain, Retain); (Invert, Invert); (Retain, Invert); (Invert, Retain) ]
  in
  List.fold_left
    (fun (bai, baj, bk) (ai, aj) ->
      let cost = k t ~averages i ai j aj in
      if cost < bk then (ai, aj, cost) else (bai, baj, bk))
    (Retain, Retain, k t ~averages i Retain j Retain)
    (List.tl candidates)
