module Phase = Dpa_synth.Phase

type result = {
  assignment : Phase.assignment;
  power : float;
  size : int;
  initial_power : float;
  commits : int;
  tuples_considered : int;
}

(* All k-subsets of 0..n-1 in lexicographic order. *)
let subsets n k =
  let acc = ref [] in
  let rec go chosen next remaining =
    if remaining = 0 then acc := List.rev chosen :: !acc
    else
      for v = next to n - remaining do
        go (v :: chosen) (v + 1) (remaining - 1)
      done
  in
  go [] 0 k;
  List.rev !acc

let apply_actions assignment tuple actions =
  let a = Array.copy assignment in
  List.iter2
    (fun i action ->
      match action with
      | Cost.Invert -> a.(i) <- Phase.flip a.(i)
      | Cost.Retain -> ())
    tuple actions;
  a

let run ?(initial = `All_positive) ?(tuple_limit = 5000) ?(vectors_per_tuple = 1) ~k measure
    ~cost ~base_probs =
  if vectors_per_tuple < 1 then
    invalid_arg "Tuple_search.run: vectors_per_tuple must be positive";
  let n = Cost.num_outputs cost in
  if k < 2 || k > n then
    invalid_arg (Printf.sprintf "Tuple_search.run: k = %d outside [2, %d]" k n);
  let current =
    ref
      (match initial with
      | `All_positive -> Phase.all_positive n
      | `Random rng -> Phase.random rng ~num_outputs:n
      | `Given a ->
        if Array.length a <> n then invalid_arg "Tuple_search.run: initial length";
        Array.copy a)
  in
  let current_sample = ref (Measure.eval measure !current) in
  let initial_power = !current_sample.Measure.power in
  let cone_means = Cost.averager cost ~base_probs in
  let averages = ref (Cost.averages_of cost cone_means !current) in
  let candidates =
    let all = subsets n k in
    if List.length all <= tuple_limit then ref all
    else begin
      let gain tuple =
        let retain_cost =
          Cost.k_tuple cost ~averages:!averages
            (List.map (fun i -> (i, Cost.Retain)) tuple)
        in
        let _, best = Cost.best_action_tuple cost ~averages:!averages tuple in
        retain_cost -. best
      in
      let scored = List.map (fun tu -> (gain tu, tu)) all in
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
      ref (List.filteri (fun idx _ -> idx < tuple_limit) (List.map snd sorted))
    end
  in
  let tuples_considered = List.length !candidates in
  let commits = ref 0 in
  let finished = ref (!candidates = []) in
  while not !finished do
    let choose (best, all_retain) tuple =
      let actions, cost_value = Cost.best_action_tuple cost ~averages:!averages tuple in
      let retains = List.for_all (fun a -> a = Cost.Retain) actions in
      let best' =
        match best with
        | Some (_, _, bk) when bk <= cost_value -> best
        | Some _ | None -> Some (tuple, actions, cost_value)
      in
      (best', all_retain && retains)
    in
    let best, all_retain = List.fold_left choose (None, true) !candidates in
    match best with
    | None -> finished := true
    | Some _ when all_retain -> finished := true
    | Some (tuple, _, _) ->
      (* measure the tuple's K-ranked action vectors (the argmin when
         vectors_per_tuple = 1), committing every improvement *)
      let ranked = Cost.ranked_action_tuples cost ~averages:!averages tuple in
      let rec try_vectors budget = function
        | [] -> ()
        | (actions, _) :: rest ->
          if budget = 0 then ()
          else begin
            let proposed = apply_actions !current tuple actions in
            if Phase.equal proposed !current then try_vectors budget rest
            else begin
              let sample = Measure.eval measure proposed in
              if sample.Measure.power < !current_sample.Measure.power then begin
                current := proposed;
                current_sample := sample;
                averages := Cost.averages_of cost cone_means !current;
                incr commits
              end;
              try_vectors (budget - 1) rest
            end
          end
      in
      try_vectors vectors_per_tuple ranked;
      candidates := List.filter (fun tu -> tu <> tuple) !candidates;
      if !candidates = [] then finished := true
  done;
  {
    assignment = !current;
    power = !current_sample.Measure.power;
    size = !current_sample.Measure.size;
    initial_power;
    commits = !commits;
    tuples_considered;
  }
