(** The paper's pairwise cost function (§4.1).

    For primary outputs [i, j] with transitive-fanin cones [Di, Dj],
    overlap [O(i,j) = |Di∩Dj| / (|Di|+|Dj|)] and average cone signal
    probability [Ai] {e under the current assignment}:

    {v
    K(i+,j+) = |Di|·Ai     + |Dj|·Aj     + ½·O(i,j)·(Ai     + Aj)
    K(i-,j-) = |Di|·(1-Ai) + |Dj|·(1-Aj) + ½·O(i,j)·((1-Ai) + (1-Aj))
    K(i+,j-) = |Di|·Ai     + |Dj|·(1-Aj) + ½·O(i,j)·(Ai     + (1-Aj))
    K(i-,j+) = |Di|·(1-Ai) + |Dj|·Aj     + ½·O(i,j)·((1-Ai) + Aj)
    v}

    [+] means {e retain} the output's current phase and [-] means
    {e invert it} (not absolute polarity). Property 4.1 enters through the
    [(1-A)] terms: inverting an output's phase complements the signal
    probability of every node in its cone. The overlap term prices the
    worst-case duplication of conflicting assignments. *)

type action = Retain | Invert
(** What a candidate move does to an output's {e current} phase —
    relative, not an absolute polarity. *)

type t
(** Assignment-independent cone data of one netlist: cones, sizes,
    pairwise overlaps. *)

val make : Dpa_logic.Netlist.t -> t
(** Precomputes cones, cone sizes and pairwise overlaps (assignment
    independent). *)

val num_outputs : t -> int
(** Primary-output count of the underlying netlist. *)

val cone_size : t -> int -> int
(** [|Di|]: transitive-fanin cone size of output [i], gates only. *)

val overlap : t -> int -> int -> float
(** Symmetric; [overlap t i i] is well defined but unused by the search. *)

val averages :
  t -> base_probs:float array -> Dpa_synth.Phase.assignment -> float array
(** [Ai] per output: mean over the cone of the node signal probabilities
    [base_probs] (computed once on the network as specified, i.e. with the
    all-positive implementation), complemented when the output's current
    phase is negative — the paper's Property 4.1 approximation. *)

type averager
(** Precomputed per-cone mean of [base_probs]. The mean is assignment
    independent — Property 4.1 only complements it — so a search builds
    this once and rederives {!averages} in O(outputs) per committed move
    instead of re-walking every cone. *)

val averager : t -> base_probs:float array -> averager
(** Builds the per-cone means once; feed to {!averages_of}. *)

val averages_of : t -> averager -> Dpa_synth.Phase.assignment -> float array
(** Identical to {!averages} over the precomputed means. *)

val k : t -> averages:float array -> int -> action -> int -> action -> float
(** [k t ~averages i ai j aj] evaluates the cost of applying actions
    [ai]/[aj] to outputs [i]/[j]. *)

val best_action_pair :
  t -> averages:float array -> int -> int -> action * action * float
(** Minimum-cost combination for a pair (first minimum in the order
    [++ , -- , +- , -+]). *)

val k_tuple : t -> averages:float array -> (int * action) list -> float
(** The paper's §4.1 generalization of [K] to more than a pair: per-output
    size terms plus the ½·O(i,j) duplication term for {e every} pair
    inside the tuple. For two outputs this coincides with {!k}. *)

val best_action_tuple :
  t -> averages:float array -> int list -> action list * float
(** Minimum-cost action vector over all [2^|tuple|] combinations (ties:
    lowest enumeration index, retain = 0 bit). Raises [Invalid_argument]
    on an empty tuple or one longer than 20 outputs. *)

val ranked_action_tuples :
  t -> averages:float array -> int list -> (action list * float) list
(** All [2^|tuple|] action vectors sorted by ascending cost — the
    enumeration order of the paper's "greedily ordered exhaustive
    search". Same bounds as {!best_action_tuple}. *)
