module Phase = Dpa_synth.Phase
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

let c_committed = (Metrics.counter ~help:"greedy moves that lowered measured power" "phase.greedy.moves_committed")

let c_rejected = (Metrics.counter ~help:"greedy moves measured but not committed" "phase.greedy.moves_rejected")

type initial =
  [ `All_positive | `Random of Dpa_util.Rng.t | `Given of Phase.assignment ]

type step = {
  pair : int * int;
  actions : Cost.action * Cost.action;
  predicted_cost : float;
  measured_power : float option;
  committed : bool;
}

type result = {
  assignment : Phase.assignment;
  power : float;
  size : int;
  initial_power : float;
  commits : int;
  steps : step list;
}

let apply_actions assignment (i, ai) (j, aj) =
  let a = Array.copy assignment in
  (match ai with Cost.Invert -> a.(i) <- Phase.flip a.(i) | Cost.Retain -> ());
  (match aj with Cost.Invert -> a.(j) <- Phase.flip a.(j) | Cost.Retain -> ());
  a

let all_pairs n =
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      acc := (i, j) :: !acc
    done
  done;
  !acc

(* Predicted gain of a pair: how much K improves over retaining both. *)
let gain cost ~averages (i, j) =
  let _, _, best = Cost.best_action_pair cost ~averages i j in
  Cost.k cost ~averages i Cost.Retain j Cost.Retain -. best

(* Mutable search state shared by the sequential loop and the
   speculative replay: both drive exactly the same trajectory. *)
type state = {
  measure : Measure.t;
  cost : Cost.t;
  cone_means : Cost.averager;
  mutable current : Phase.assignment;
  mutable current_sample : Measure.sample;
  mutable averages : float array;
  mutable candidates : (int * int) list;
  mutable commits : int;
  mutable steps : step list;
  mutable passes : int;
  mutable finished : bool;
}

let remove_candidate st pair =
  st.candidates <- List.filter (fun p -> p <> pair) st.candidates;
  if st.candidates = [] then st.finished <- true

let commit_move st ~proposed ~sample =
  st.current <- proposed;
  st.current_sample <- sample;
  st.averages <- Cost.averages_of st.cost st.cone_means st.current;
  st.commits <- st.commits + 1

(* One sequential iteration: pick the global minimum-K pair (earlier
   candidate wins ties), measure its proposal if it changes anything,
   commit when measured power improves. *)
let sequential_pass st =
  st.passes <- st.passes + 1;
  Trace.with_span "phase.greedy.pass"
    ~args:
      [ ("pass", Trace.Int st.passes); ("candidates", Trace.Int (List.length st.candidates)) ]
  @@ fun () ->
  let choose (best, all_retain) ((i, j) as p) =
    let ai, aj, k = Cost.best_action_pair st.cost ~averages:st.averages i j in
    let retains = ai = Cost.Retain && aj = Cost.Retain in
    let best' =
      match best with
      | Some (_, _, bk) when bk <= k -> best
      | Some _ | None -> Some (p, (ai, aj), k)
    in
    (best', all_retain && retains)
  in
  let best, all_retain = List.fold_left choose (None, true) st.candidates in
  match best with
  | None -> st.finished <- true
  | Some _ when all_retain ->
    (* no remaining pair proposes a change: nothing can ever commit *)
    st.finished <- true
  | Some (((i, j) as pair), ((ai, aj) as actions), k) ->
    let proposed = apply_actions st.current (i, ai) (j, aj) in
    let step =
      if Phase.equal proposed st.current then
        { pair; actions; predicted_cost = k; measured_power = None; committed = false }
      else begin
        let sample = Measure.eval st.measure proposed in
        let better = sample.Measure.power < st.current_sample.Measure.power in
        Metrics.incr (if better then c_committed else c_rejected);
        if better then commit_move st ~proposed ~sample;
        {
          pair;
          actions;
          predicted_cost = k;
          measured_power = Some sample.Measure.power;
          committed = better;
        }
      end
    in
    st.steps <- step :: st.steps;
    remove_candidate st pair

(* Speculative replay: between commits the cone averages are frozen, so
   the sequential search's successive argmins over the shrinking
   candidate list are exactly the remaining candidates in a stable sort
   by (K, original position) — [List.stable_sort] with [Float.compare]
   reproduces the fold's earlier-wins tie-break. We therefore rank once,
   prefetch the next [jobs] distinct proposals across the pool, and
   replay the ranked list in order: every eval, step, commit and removal
   happens in the same order as the sequential loop, so the trajectory —
   and with it every measured float, counter and the final assignment —
   is bit-identical at any jobs count. A commit invalidates the ranking
   (averages move), so we stop, re-rank, and speculate again. *)
let replay_pass ~jobs st =
  let ranked =
    List.map
      (fun ((i, j) as p) ->
        let ai, aj, k = Cost.best_action_pair st.cost ~averages:st.averages i j in
        (p, (ai, aj), k))
      st.candidates
  in
  let nonretain =
    List.fold_left
      (fun acc (_, (ai, aj), _) ->
        if ai = Cost.Retain && aj = Cost.Retain then acc else acc + 1)
      0 ranked
  in
  if ranked = [] then st.finished <- true
  else if nonretain = 0 then begin
    (* the sequential loop burns one pass discovering all_retain *)
    st.passes <- st.passes + 1;
    Trace.with_span "phase.greedy.pass"
      ~args:
        [ ("pass", Trace.Int st.passes);
          ("candidates", Trace.Int (List.length st.candidates));
        ]
      (fun () -> ());
    st.finished <- true
  end
  else begin
    let sorted =
      List.stable_sort (fun (_, _, k1) (_, _, k2) -> Float.compare k1 k2) ranked
    in
    let elems =
      List.map
        (fun (((i, j) as pair), ((ai, aj) as actions), k) ->
          let noop = ai = Cost.Retain && aj = Cost.Retain in
          (pair, actions, k, apply_actions st.current (i, ai) (j, aj), noop))
        sorted
    in
    let measurable_ahead elems =
      let rec take n = function
        | _ when n = 0 -> []
        | [] -> []
        | (_, _, _, proposed, noop) :: rest ->
          if noop then take n rest else proposed :: take (n - 1) rest
      in
      take jobs elems
    in
    (* [covered] counts measurable elements already included in a
       prefetch window; when it runs out we speculate another window *)
    let rec walk elems nonretain_left covered =
      match elems with
      | [] -> st.finished <- true
      | _ when nonretain_left = 0 ->
        (* remaining candidates all retain: sequential would discover
           all_retain on its next pass and finish without stepping them *)
        st.passes <- st.passes + 1;
        Trace.with_span "phase.greedy.pass"
          ~args:
            [ ("pass", Trace.Int st.passes);
              ("candidates", Trace.Int (List.length st.candidates));
            ]
          (fun () -> ());
        st.finished <- true
      | ((pair, actions, k, proposed, noop) as elem) :: rest ->
        st.passes <- st.passes + 1;
        let continue_ =
          Trace.with_span "phase.greedy.pass"
            ~args:
              [ ("pass", Trace.Int st.passes);
                ("candidates", Trace.Int (List.length st.candidates));
              ]
          @@ fun () ->
          if noop then begin
            st.steps <-
              { pair; actions; predicted_cost = k; measured_power = None; committed = false }
              :: st.steps;
            remove_candidate st pair;
            Some (nonretain_left, covered)
          end
          else begin
            let covered =
              if covered > 0 then covered
              else begin
                let window = measurable_ahead (elem :: rest) in
                Measure.prefetch st.measure window;
                List.length window
              end
            in
            let sample = Measure.eval st.measure proposed in
            let better = sample.Measure.power < st.current_sample.Measure.power in
            Metrics.incr (if better then c_committed else c_rejected);
            st.steps <-
              {
                pair;
                actions;
                predicted_cost = k;
                measured_power = Some sample.Measure.power;
                committed = better;
              }
              :: st.steps;
            remove_candidate st pair;
            if better then begin
              commit_move st ~proposed ~sample;
              None (* averages moved: re-rank before touching anything else *)
            end
            else Some (nonretain_left - 1, covered - 1)
          end
        in
        match continue_ with
        | Some (nl, cov) -> walk rest nl cov
        | None -> ()
    in
    walk elems nonretain 0
  end

let run ?(initial = `All_positive) ?pair_limit measure ~cost ~base_probs =
  let n = Cost.num_outputs cost in
  let current =
    match initial with
    | `All_positive -> Phase.all_positive n
    | `Random rng -> Phase.random rng ~num_outputs:n
    | `Given a ->
      if Array.length a <> n then invalid_arg "Greedy.run: initial assignment length";
      Array.copy a
  in
  let current_sample = Measure.eval measure current in
  let initial_power = current_sample.Measure.power in
  let cone_means = Cost.averager cost ~base_probs in
  let averages = Cost.averages_of cost cone_means current in
  let candidates =
    let pairs = all_pairs n in
    match pair_limit with
    | None -> pairs
    | Some limit ->
      let scored = List.map (fun p -> (gain cost ~averages p, p)) pairs in
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
      List.filteri (fun k _ -> k < limit) (List.map snd sorted)
  in
  let st =
    {
      measure;
      cost;
      cone_means;
      current;
      current_sample;
      averages;
      candidates;
      commits = 0;
      steps = [];
      passes = 0;
      finished = candidates = [];
    }
  in
  let jobs = Measure.parallel_jobs measure in
  while not st.finished do
    if jobs <= 1 then sequential_pass st else replay_pass ~jobs st
  done;
  {
    assignment = st.current;
    power = st.current_sample.Measure.power;
    size = st.current_sample.Measure.size;
    initial_power;
    commits = st.commits;
    steps = List.rev st.steps;
  }
