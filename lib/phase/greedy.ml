module Phase = Dpa_synth.Phase
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

let c_committed = (Metrics.counter ~help:"greedy moves that lowered measured power" "phase.greedy.moves_committed")

let c_rejected = (Metrics.counter ~help:"greedy moves measured but not committed" "phase.greedy.moves_rejected")

type initial =
  [ `All_positive | `Random of Dpa_util.Rng.t | `Given of Phase.assignment ]

type step = {
  pair : int * int;
  actions : Cost.action * Cost.action;
  predicted_cost : float;
  measured_power : float option;
  committed : bool;
}

type result = {
  assignment : Phase.assignment;
  power : float;
  size : int;
  initial_power : float;
  commits : int;
  steps : step list;
}

let apply_actions assignment (i, ai) (j, aj) =
  let a = Array.copy assignment in
  (match ai with Cost.Invert -> a.(i) <- Phase.flip a.(i) | Cost.Retain -> ());
  (match aj with Cost.Invert -> a.(j) <- Phase.flip a.(j) | Cost.Retain -> ());
  a

let all_pairs n =
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      acc := (i, j) :: !acc
    done
  done;
  !acc

(* Predicted gain of a pair: how much K improves over retaining both. *)
let gain cost ~averages (i, j) =
  let _, _, best = Cost.best_action_pair cost ~averages i j in
  Cost.k cost ~averages i Cost.Retain j Cost.Retain -. best

let run ?(initial = `All_positive) ?pair_limit measure ~cost ~base_probs =
  let n = Cost.num_outputs cost in
  let current =
    ref
      (match initial with
      | `All_positive -> Phase.all_positive n
      | `Random rng -> Phase.random rng ~num_outputs:n
      | `Given a ->
        if Array.length a <> n then invalid_arg "Greedy.run: initial assignment length";
        Array.copy a)
  in
  let current_sample = ref (Measure.eval measure !current) in
  let initial_power = !current_sample.Measure.power in
  let cone_means = Cost.averager cost ~base_probs in
  let averages = ref (Cost.averages_of cost cone_means !current) in
  let candidates =
    let pairs = all_pairs n in
    match pair_limit with
    | None -> ref pairs
    | Some limit ->
      let scored = List.map (fun p -> (gain cost ~averages:!averages p, p)) pairs in
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
      ref (List.filteri (fun k _ -> k < limit) (List.map snd sorted))
  in
  let commits = ref 0 in
  let steps = ref [] in
  let passes = ref 0 in
  let finished = ref (!candidates = []) in
  while not !finished do
    incr passes;
    Trace.with_span "phase.greedy.pass"
      ~args:
        [ ("pass", Trace.Int !passes); ("candidates", Trace.Int (List.length !candidates)) ]
    @@ fun () ->
    (* global minimum-cost pair/combination over the remaining candidates *)
    let choose (best, all_retain) ((i, j) as p) =
      let ai, aj, k = Cost.best_action_pair cost ~averages:!averages i j in
      let retains = ai = Cost.Retain && aj = Cost.Retain in
      let best' =
        match best with
        | Some (_, _, bk) when bk <= k -> best
        | Some _ | None -> Some (p, (ai, aj), k)
      in
      (best', all_retain && retains)
    in
    let best, all_retain = List.fold_left choose (None, true) !candidates in
    match best with
    | None -> finished := true
    | Some _ when all_retain ->
      (* no remaining pair proposes a change: nothing can ever commit *)
      finished := true
    | Some (((i, j) as pair), ((ai, aj) as actions), k) ->
      let proposed = apply_actions !current (i, ai) (j, aj) in
      let step =
        if Phase.equal proposed !current then
          { pair; actions; predicted_cost = k; measured_power = None; committed = false }
        else begin
          let sample = Measure.eval measure proposed in
          let better = sample.Measure.power < !current_sample.Measure.power in
          Metrics.incr (if better then c_committed else c_rejected);
          if better then begin
            current := proposed;
            current_sample := sample;
            averages := Cost.averages_of cost cone_means !current;
            incr commits
          end;
          {
            pair;
            actions;
            predicted_cost = k;
            measured_power = Some sample.Measure.power;
            committed = better;
          }
        end
      in
      steps := step :: !steps;
      candidates := List.filter (fun p -> p <> pair) !candidates;
      if !candidates = [] then finished := true
  done;
  {
    assignment = !current;
    power = !current_sample.Measure.power;
    size = !current_sample.Measure.size;
    initial_power;
    commits = !commits;
    steps = List.rev !steps;
  }
