(** Ground-truth power measurement of a candidate phase assignment:
    realize the inverter-free block, map it onto the domino library, and
    run the BDD power estimator. Results are memoized per assignment, so a
    search never pays twice for the same candidate.

    By default measurement is {e incremental}: all candidates share one
    BDD manager (variable order fixed from the all-positive realization)
    and one per-node probability cache, so pricing a flip only builds and
    evaluates the BDD nodes its changed cones introduce — the paper's
    Property 4.1 observation that a phase flip complements a cone's
    probabilities, realized structurally through BDD sharing. [`Rebuild]
    restores the original build-from-scratch behavior (a fresh manager and
    a per-block variable order for every candidate). Both modes are exact;
    they can differ in the last ulp because summation order over BDD nodes
    differs.

    With a {!Dpa_util.Par} pool the searches built on top can
    {!prefetch} candidates speculatively across domains. Each domain owns
    a private incremental env (BDD managers are single-domain); every env
    uses the same assignment-independent variable order, so a price is
    bitwise identical no matter which domain computed it, and the
    trajectory counters ({!evaluations}, {!degraded_evaluations},
    {!worst_degradation}) advance only when {!eval} first visits an
    assignment — never during speculation. *)

type sample = {
  power : float;  (** Estimate total: domino + boundary inverters *)
  size : int;  (** standard-cell count of the mapped block *)
  domino_switching : float;
}

type mode = [ `Incremental | `Rebuild ]

type t

val create :
  ?library:Dpa_domino.Library.t ->
  ?mode:mode ->
  ?budget:Dpa_power.Engine.budget ->
  ?cancel:Dpa_util.Cancel.t ->
  ?pricer:(Dpa_domino.Mapped.t -> sample) ->
  ?par:Dpa_util.Par.t ->
  input_probs:float array ->
  Dpa_logic.Netlist.t ->
  t
(** The netlist must be domino-ready (no XOR). [mode] defaults to
    [`Incremental] and only affects the built-in pricer. [pricer]
    overrides how a mapped block is turned into a sample — the default is
    the BDD power estimate and the plain cell count; the timing-integrated
    optimizer substitutes a price-after-resizing pricer. A custom [pricer]
    is opaque (it may close over single-domain state), so it disables
    {!prefetch} but not the search.

    A non-unbounded [budget] switches the built-in pricer to the
    resource-bounded {!Dpa_power.Engine}: every candidate is priced under
    the same node/deadline limits with the same deterministic simulator
    seed, so a greedy search ranks candidates consistently even when the
    degradation ladder kicks in — fallback never breaks monotonicity.
    Degradations are tallied per distinct candidate (see
    {!degraded_evaluations}, {!worst_degradation}).

    [par] enables speculative parallel pricing via {!prefetch}; it never
    changes any measured value, only where and when prices are computed.

    [cancel] makes every measurement cooperatively cancellable: the token
    is polled on each {!eval}, threaded into the bounded engine, and
    installed on every incremental env manager, so a firing token aborts
    a search mid-candidate with [Dpa_error.Error (Cancelled _)]. The
    checks never change measured values. *)

val eval : t -> Dpa_synth.Phase.assignment -> sample

val prefetch : t -> Dpa_synth.Phase.assignment list -> unit
(** Prices the given candidates across the pool's domains and stores the
    results in the sample cache, so subsequent {!eval} calls answer
    without recomputing. Duplicates and already-priced candidates are
    skipped. A no-op without [par] or with a custom pricer. Does {e not}
    touch {!evaluations} or the degradation tallies — those track the
    search trajectory, which speculation must not perturb. *)

val parallel_jobs : t -> int
(** How wide a search built on this measure should speculate: the pool's
    job count when {!prefetch} is operational, [1] otherwise (no pool, or
    an opaque custom pricer). *)

val evaluations : t -> int
(** Number of {e distinct} assignments the search visited via {!eval}
    (trajectory cache misses — speculative prefetches excluded until the
    search actually reaches them). *)

val degraded_evaluations : t -> int
(** Distinct visited assignments whose estimate degraded below fully
    exact (only ever nonzero under a [budget]). *)

val worst_degradation : t -> Dpa_power.Engine.degradation option
(** The most degraded report seen (most simulated cones, ties broken by
    reordered cones); [None] when every estimate was exact. *)

val realize_mapped : t -> Dpa_synth.Phase.assignment -> Dpa_domino.Mapped.t
(** The mapped block for an assignment (not cached). *)

val publish_metrics : t -> unit
(** Folds the kernel counters of every per-domain incremental manager
    into the {!Dpa_obs.Metrics} registry (a no-op until the first
    [`Incremental] evaluation). The registry is the one source of truth
    for BDD counters; call this after a search. *)
