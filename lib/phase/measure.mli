(** Ground-truth power measurement of a candidate phase assignment:
    realize the inverter-free block, map it onto the domino library, and
    run the BDD power estimator. Results are memoized per assignment, so a
    search never pays twice for the same candidate.

    By default measurement is {e incremental}: all candidates share one
    BDD manager (variable order fixed from the all-positive realization)
    and one per-node probability cache, so pricing a flip only builds and
    evaluates the BDD nodes its changed cones introduce — the paper's
    Property 4.1 observation that a phase flip complements a cone's
    probabilities, realized structurally through BDD sharing. [`Rebuild]
    restores the original build-from-scratch behavior (a fresh manager and
    a per-block variable order for every candidate). Both modes are exact;
    they can differ in the last ulp because summation order over BDD nodes
    differs. *)

type sample = {
  power : float;  (** Estimate total: domino + boundary inverters *)
  size : int;  (** standard-cell count of the mapped block *)
  domino_switching : float;
}

type mode = [ `Incremental | `Rebuild ]

type t

val create :
  ?library:Dpa_domino.Library.t ->
  ?mode:mode ->
  ?budget:Dpa_power.Engine.budget ->
  ?pricer:(Dpa_domino.Mapped.t -> sample) ->
  input_probs:float array ->
  Dpa_logic.Netlist.t ->
  t
(** The netlist must be domino-ready (no XOR). [mode] defaults to
    [`Incremental] and only affects the built-in pricer. [pricer]
    overrides how a mapped block is turned into a sample — the default is
    the BDD power estimate and the plain cell count; the timing-integrated
    optimizer substitutes a price-after-resizing pricer.

    A non-unbounded [budget] switches the built-in pricer to the
    resource-bounded {!Dpa_power.Engine}: every candidate is priced under
    the same node/deadline limits with the same deterministic simulator
    seed, so a greedy search ranks candidates consistently even when the
    degradation ladder kicks in — fallback never breaks monotonicity.
    Degradations are tallied per distinct candidate (see
    {!degraded_evaluations}, {!worst_degradation}). *)

val eval : t -> Dpa_synth.Phase.assignment -> sample

val evaluations : t -> int
(** Number of {e distinct} assignments measured so far (cache misses). *)

val degraded_evaluations : t -> int
(** Distinct assignments whose estimate degraded below fully exact (only
    ever nonzero under a [budget]). *)

val worst_degradation : t -> Dpa_power.Engine.degradation option
(** The most degraded report seen (most simulated cones, ties broken by
    reordered cones); [None] when every estimate was exact. *)

val realize_mapped : t -> Dpa_synth.Phase.assignment -> Dpa_domino.Mapped.t
(** The mapped block for an assignment (not cached). *)

val publish_metrics : t -> unit
(** Folds the shared incremental manager's kernel counters into the
    {!Dpa_obs.Metrics} registry (a no-op until the first [`Incremental]
    evaluation). The registry is the one source of truth for BDD
    counters; call this after a search instead of reading {!bdd_stats}. *)

(** Kernel counters of the shared incremental manager; [None] until the
    first [`Incremental] evaluation (or always, under [`Rebuild] or a
    custom pricer). *)
val bdd_stats : t -> Dpa_bdd.Robdd.stats option
  [@@ocaml.deprecated
    "ad-hoc accessor; use Measure.publish_metrics and read the Dpa_obs.Metrics registry"]
