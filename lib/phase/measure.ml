module Phase = Dpa_synth.Phase
module Par = Dpa_util.Par
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

let c_evals = (Metrics.counter ~help:"candidate assignments priced" "phase.measure.evaluations")

let c_cache_hits = (Metrics.counter ~help:"assignments answered from the sample cache" "phase.measure.cache_hits")

let c_prefetched =
  Metrics.counter ~help:"assignments priced speculatively by the prefetch fan-out"
    "phase.measure.prefetched"

let c_par_tasks = Metrics.counter ~help:"tasks fanned out to the domain pool" "par.tasks"

let c_par_steals =
  Metrics.counter ~help:"work-stealing operations in the domain pool" "par.steals"

type sample = {
  power : float;
  size : int;
  domino_switching : float;
}

type mode = [ `Incremental | `Rebuild ]

(* What a measurement produces. Degradation is carried alongside the
   sample instead of being recorded eagerly so that a speculative
   prefetch can price a candidate without touching the search-trajectory
   accounting: [degraded_evaluations] and [worst_degradation] only ever
   advance when {!eval} first visits the assignment, in trajectory
   order — identical at any jobs count. *)
type entry = {
  sample : sample;
  degradation : Dpa_power.Engine.degradation option;
}

type t = {
  net : Dpa_logic.Netlist.t;
  library : Dpa_domino.Library.t;
  input_probs : float array;
  mode : mode;
  budget : Dpa_power.Engine.budget option;
  cancel : Dpa_util.Cancel.t;
  custom_pricer : (t -> Dpa_domino.Mapped.t -> sample) option;
  par : Par.t option;
  cache : (string, entry) Hashtbl.t;  (* priced candidates, incl. speculative *)
  seen : (string, unit) Hashtbl.t;  (* assignments the search actually visited *)
  (* one incremental estimation env per domain: BDD managers are
     single-domain (Robdd ownership), and each env is created inside the
     domain that uses it. All envs share the same assignment-independent
     variable order, so their probabilities are bitwise identical. *)
  envs : (int, Dpa_power.Estimate.env) Hashtbl.t;
  envs_mutex : Mutex.t;
  mutable misses : int;
  mutable degraded : int;
  mutable worst : Dpa_power.Engine.degradation option;
}

let realize_mapped t assignment =
  Dpa_domino.Mapped.map ~library:t.library (Dpa_synth.Inverterless.realize t.net assignment)

(* The shared estimation env is seeded from the all-positive realization —
   not from whichever candidate happens to be measured first — so the
   variable order is assignment-independent and the search deterministic.
   Keyed by domain: the submitting domain and every pool worker get (and
   keep) their own manager. *)
let env_of t =
  let d = (Domain.self () :> int) in
  let existing = Mutex.protect t.envs_mutex (fun () -> Hashtbl.find_opt t.envs d) in
  match existing with
  | Some e -> e
  | None ->
    let n_out = Array.length (Dpa_logic.Netlist.outputs t.net) in
    let all_pos = Array.make n_out Phase.Positive in
    let e =
      Dpa_power.Estimate.make_env ~cancel:t.cancel ~input_probs:t.input_probs
        (realize_mapped t all_pos)
    in
    Mutex.protect t.envs_mutex (fun () -> Hashtbl.replace t.envs d e);
    e

(* Ranks degradation reports so the search can remember its worst case. *)
let more_degraded a b =
  let open Dpa_power.Engine in
  (simulated_cones a, reordered_cones a) > (simulated_cones b, reordered_cones b)

let record_degradation t (d : Dpa_power.Engine.degradation) =
  if not (Dpa_power.Engine.all_exact d) then begin
    t.degraded <- t.degraded + 1;
    match t.worst with
    | None -> t.worst <- Some d
    | Some w -> if more_degraded d w then t.worst <- Some d
  end

(* Price one candidate on the calling domain. Safe to run concurrently
   from pool workers: the only shared state it touches is the env table
   (mutex-guarded, one slot per domain). *)
let price t mapped =
  match t.custom_pricer with
  | Some f -> { sample = f t mapped; degradation = None }
  | None -> (
    match t.budget with
    | Some budget when not (Dpa_power.Engine.is_unbounded budget) ->
      (* Every candidate is priced under the same budget policy with a
         deterministic simulator seed, so comparisons between candidates
         stay consistent and greedy descent stays monotone even when some
         cones fall back to simulation. *)
      let r =
        Dpa_power.Engine.estimate ~budget ~cancel:t.cancel ~input_probs:t.input_probs
          mapped
      in
      let report = r.Dpa_power.Engine.report in
      {
        sample =
          {
            power = report.Dpa_power.Estimate.total;
            size = Dpa_domino.Mapped.size mapped;
            domino_switching = report.Dpa_power.Estimate.domino_switching;
          };
        degradation = Some r.Dpa_power.Engine.degradation;
      }
    | Some _ | None ->
      let report =
        match t.mode with
        | `Rebuild ->
          Dpa_power.Estimate.of_mapped ~cancel:t.cancel ~input_probs:t.input_probs mapped
        | `Incremental -> Dpa_power.Estimate.of_mapped_env (env_of t) mapped
      in
      {
        sample =
          {
            power = report.Dpa_power.Estimate.total;
            size = Dpa_domino.Mapped.size mapped;
            domino_switching = report.Dpa_power.Estimate.domino_switching;
          };
        degradation = None;
      })

let create ?(library = Dpa_domino.Library.default) ?(mode = `Incremental) ?budget
    ?(cancel = Dpa_util.Cancel.none) ?pricer ?par ~input_probs net =
  if not (Dpa_synth.Opt.is_domino_ready net) then
    invalid_arg "Measure.create: netlist contains XOR; run Opt.optimize first";
  if Array.length input_probs <> Dpa_logic.Netlist.num_inputs net then
    invalid_arg "Measure.create: input_probs length mismatch";
  {
    net;
    library;
    input_probs;
    mode;
    budget;
    cancel;
    custom_pricer = Option.map (fun f t mapped -> (ignore t; f mapped)) pricer;
    par;
    cache = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    envs = Hashtbl.create 4;
    envs_mutex = Mutex.create ();
    misses = 0;
    degraded = 0;
    worst = None;
  }

let eval t assignment =
  Dpa_util.Cancel.check t.cancel;
  let key = Phase.to_string assignment in
  if Hashtbl.mem t.seen key then begin
    Metrics.incr c_cache_hits;
    (Hashtbl.find t.cache key).sample
  end
  else begin
    (* first visit on the search trajectory: counts as an evaluation
       whether the price comes from a speculative prefetch or is
       computed here — both yield the same entry, so every counter and
       degradation record is independent of the speculation schedule *)
    Hashtbl.replace t.seen key ();
    t.misses <- t.misses + 1;
    Metrics.incr c_evals;
    let entry =
      match Hashtbl.find_opt t.cache key with
      | Some e -> e
      | None ->
        let e =
          Trace.with_span "phase.measure.eval" @@ fun () ->
          if Trace.is_enabled () then Trace.add_args [ ("phases", Trace.Str key) ];
          price t (realize_mapped t assignment)
        in
        Hashtbl.replace t.cache key e;
        e
    in
    Option.iter (record_degradation t) entry.degradation;
    entry.sample
  end

(* How wide the greedy search should speculate: the pool's job count
   when speculative pricing is known-safe, 1 (no speculation) otherwise.
   A custom pricer is opaque — it may close over single-domain state —
   so it disables the fan-out but not the search itself. *)
let parallel_jobs t =
  match t.par, t.custom_pricer with
  | Some pool, None -> Par.jobs pool
  | Some _, Some _ | None, _ -> 1

let prefetch t assignments =
  match t.par, t.custom_pricer with
  | None, _ | Some _, Some _ -> ()
  | Some pool, None ->
    (* dedup (two pairs can propose the same flip) and drop anything
       already priced; order is irrelevant — entries are keyed merges *)
    let todo = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let key = Phase.to_string a in
        if not (Hashtbl.mem t.cache key || Hashtbl.mem todo key) then
          Hashtbl.replace todo key a)
      assignments;
    if Hashtbl.length todo > 0 then begin
      let work =
        Array.of_seq (Seq.map (fun (k, a) -> (k, a)) (Hashtbl.to_seq todo))
      in
      let before = Par.stats pool in
      let entries =
        Par.map pool (Array.length work) (fun i ->
            let _, assignment = work.(i) in
            Trace.with_span "phase.measure.prefetch"
              ~args:[ ("domain", Trace.Int (Domain.self () :> int)) ]
            @@ fun () ->
            price t (realize_mapped t assignment))
      in
      let after = Par.stats pool in
      Metrics.add c_par_tasks (after.Par.tasks - before.Par.tasks);
      Metrics.add c_par_steals (after.Par.steals - before.Par.steals);
      Metrics.add c_prefetched (Array.length work);
      Array.iteri (fun i e -> Hashtbl.replace t.cache (fst work.(i)) e) entries
    end

let evaluations t = t.misses

let degraded_evaluations t = t.degraded

let worst_degradation t = t.worst

let publish_metrics t =
  Mutex.protect t.envs_mutex @@ fun () ->
  Hashtbl.iter
    (fun _ e -> Dpa_bdd.Robdd.publish_metrics (Dpa_power.Estimate.env_manager e))
    t.envs
