module Phase = Dpa_synth.Phase
module Trace = Dpa_obs.Trace
module Metrics = Dpa_obs.Metrics

let c_evals = (Metrics.counter ~help:"candidate assignments priced" "phase.measure.evaluations")

let c_cache_hits = (Metrics.counter ~help:"assignments answered from the sample cache" "phase.measure.cache_hits")

type sample = {
  power : float;
  size : int;
  domino_switching : float;
}

type mode = [ `Incremental | `Rebuild ]

type t = {
  net : Dpa_logic.Netlist.t;
  library : Dpa_domino.Library.t;
  input_probs : float array;
  mode : mode;
  budget : Dpa_power.Engine.budget option;
  pricer : t -> Dpa_domino.Mapped.t -> sample;
  cache : (string, sample) Hashtbl.t;
  mutable env : Dpa_power.Estimate.env option;
  mutable misses : int;
  mutable degraded : int;
  mutable worst : Dpa_power.Engine.degradation option;
}

let realize_mapped t assignment =
  Dpa_domino.Mapped.map ~library:t.library (Dpa_synth.Inverterless.realize t.net assignment)

(* The shared estimation env is seeded from the all-positive realization —
   not from whichever candidate happens to be measured first — so the
   variable order is assignment-independent and the search deterministic. *)
let env_of t =
  match t.env with
  | Some e -> e
  | None ->
    let n_out = Array.length (Dpa_logic.Netlist.outputs t.net) in
    let all_pos = Array.make n_out Phase.Positive in
    let e =
      Dpa_power.Estimate.make_env ~input_probs:t.input_probs (realize_mapped t all_pos)
    in
    t.env <- Some e;
    e

(* Ranks degradation reports so the search can remember its worst case. *)
let more_degraded a b =
  let open Dpa_power.Engine in
  (simulated_cones a, reordered_cones a) > (simulated_cones b, reordered_cones b)

let record_degradation t (d : Dpa_power.Engine.degradation) =
  if not (Dpa_power.Engine.all_exact d) then begin
    t.degraded <- t.degraded + 1;
    match t.worst with
    | None -> t.worst <- Some d
    | Some w -> if more_degraded d w then t.worst <- Some d
  end

let default_price t mapped =
  let report =
    match t.budget with
    | Some budget when not (Dpa_power.Engine.is_unbounded budget) ->
      (* Every candidate is priced under the same budget policy with a
         deterministic simulator seed, so comparisons between candidates
         stay consistent and greedy descent stays monotone even when some
         cones fall back to simulation. *)
      let r = Dpa_power.Engine.estimate ~budget ~input_probs:t.input_probs mapped in
      record_degradation t r.Dpa_power.Engine.degradation;
      r.Dpa_power.Engine.report
    | Some _ | None -> (
      match t.mode with
      | `Rebuild -> Dpa_power.Estimate.of_mapped ~input_probs:t.input_probs mapped
      | `Incremental -> Dpa_power.Estimate.of_mapped_env (env_of t) mapped)
  in
  {
    power = report.Dpa_power.Estimate.total;
    size = Dpa_domino.Mapped.size mapped;
    domino_switching = report.Dpa_power.Estimate.domino_switching;
  }

let create ?(library = Dpa_domino.Library.default) ?(mode = `Incremental) ?budget ?pricer
    ~input_probs net =
  if not (Dpa_synth.Opt.is_domino_ready net) then
    invalid_arg "Measure.create: netlist contains XOR; run Opt.optimize first";
  if Array.length input_probs <> Dpa_logic.Netlist.num_inputs net then
    invalid_arg "Measure.create: input_probs length mismatch";
  let pricer =
    match pricer with
    | Some f -> fun _ mapped -> f mapped
    | None -> default_price
  in
  {
    net;
    library;
    input_probs;
    mode;
    budget;
    pricer;
    cache = Hashtbl.create 64;
    env = None;
    misses = 0;
    degraded = 0;
    worst = None;
  }

let eval t assignment =
  let key = Phase.to_string assignment in
  match Hashtbl.find_opt t.cache key with
  | Some s ->
    Metrics.incr c_cache_hits;
    s
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr c_evals;
    let s =
      Trace.with_span "phase.measure.eval" @@ fun () ->
      if Trace.is_enabled () then Trace.add_args [ ("phases", Trace.Str key) ];
      t.pricer t (realize_mapped t assignment)
    in
    Hashtbl.replace t.cache key s;
    s

let evaluations t = t.misses

let degraded_evaluations t = t.degraded

let worst_degradation t = t.worst

let bdd_stats t =
  Option.map (fun e -> Dpa_bdd.Robdd.stats (Dpa_power.Estimate.env_manager e)) t.env

let publish_metrics t =
  Option.iter
    (fun e -> Dpa_bdd.Robdd.publish_metrics (Dpa_power.Estimate.env_manager e))
    t.env
