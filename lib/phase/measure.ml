module Phase = Dpa_synth.Phase

type sample = {
  power : float;
  size : int;
  domino_switching : float;
}

type mode = [ `Incremental | `Rebuild ]

type t = {
  net : Dpa_logic.Netlist.t;
  library : Dpa_domino.Library.t;
  input_probs : float array;
  mode : mode;
  pricer : t -> Dpa_domino.Mapped.t -> sample;
  cache : (string, sample) Hashtbl.t;
  mutable env : Dpa_power.Estimate.env option;
  mutable misses : int;
}

let realize_mapped t assignment =
  Dpa_domino.Mapped.map ~library:t.library (Dpa_synth.Inverterless.realize t.net assignment)

(* The shared estimation env is seeded from the all-positive realization —
   not from whichever candidate happens to be measured first — so the
   variable order is assignment-independent and the search deterministic. *)
let env_of t =
  match t.env with
  | Some e -> e
  | None ->
    let n_out = Array.length (Dpa_logic.Netlist.outputs t.net) in
    let all_pos = Array.make n_out Phase.Positive in
    let e =
      Dpa_power.Estimate.make_env ~input_probs:t.input_probs (realize_mapped t all_pos)
    in
    t.env <- Some e;
    e

let default_price t mapped =
  let report =
    match t.mode with
    | `Rebuild -> Dpa_power.Estimate.of_mapped ~input_probs:t.input_probs mapped
    | `Incremental -> Dpa_power.Estimate.of_mapped_env (env_of t) mapped
  in
  {
    power = report.Dpa_power.Estimate.total;
    size = Dpa_domino.Mapped.size mapped;
    domino_switching = report.Dpa_power.Estimate.domino_switching;
  }

let create ?(library = Dpa_domino.Library.default) ?(mode = `Incremental) ?pricer
    ~input_probs net =
  if not (Dpa_synth.Opt.is_domino_ready net) then
    invalid_arg "Measure.create: netlist contains XOR; run Opt.optimize first";
  if Array.length input_probs <> Dpa_logic.Netlist.num_inputs net then
    invalid_arg "Measure.create: input_probs length mismatch";
  let pricer =
    match pricer with
    | Some f -> fun _ mapped -> f mapped
    | None -> default_price
  in
  {
    net;
    library;
    input_probs;
    mode;
    pricer;
    cache = Hashtbl.create 64;
    env = None;
    misses = 0;
  }

let eval t assignment =
  let key = Phase.to_string assignment in
  match Hashtbl.find_opt t.cache key with
  | Some s -> s
  | None ->
    t.misses <- t.misses + 1;
    let s = t.pricer t (realize_mapped t assignment) in
    Hashtbl.replace t.cache key s;
    s

let evaluations t = t.misses

let bdd_stats t =
  Option.map (fun e -> Dpa_bdd.Robdd.stats (Dpa_power.Estimate.env_manager e)) t.env
