(* dominoflow — command-line front end for the low-power domino synthesis
   flow (Patra & Narayanan, DAC'99 reproduction).

     dominoflow run --profile apex7 [--timed]
     dominoflow run --file design.dln --input-prob 0.5
     dominoflow estimate --file design.dln --phases "+-+"
     dominoflow generate --profile frg1 > frg1.dln
     dominoflow table1 / table2 *)

open Cmdliner
module Flow = Dpa_core.Flow
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Dpa_error = Dpa_util.Dpa_error

(* Every action runs under [guard]: recognized failures — parse errors,
   missing files, blown budgets with fallback disabled, internal invariant
   violations — become one clean line on stderr and a documented
   sysexits-style code (65 data, 66 io, 69 unsupported, 70 internal,
   75 budget), never a raw backtrace. *)
let die e =
  prerr_endline ("dominoflow: " ^ Dpa_error.to_string e);
  exit (Dpa_error.exit_code e)

let guard f =
  try f () with
  | e -> ( match Dpa_error.of_exn e with Some err -> die err | None -> raise e)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_netlist path =
  let text = read_file path in
  let parsed =
    if Filename.check_suffix path ".blif" then Dpa_logic.Blif.of_string text
    else Dpa_logic.Io.of_string text
  in
  match parsed with
  | Ok net -> net
  | Error msg ->
    Dpa_error.error (Dpa_error.Parse { source = path; line = None; message = msg })

let netlist_of_source ~file ~profile =
  match file, profile with
  | Some path, None -> Ok (load_netlist path)
  | None, Some name -> (
    match Dpa_workload.Profiles.find name with
    | Some p -> Ok (Dpa_workload.Generator.combinational p.Dpa_workload.Profiles.params)
    | None ->
      Error
        (Printf.sprintf "unknown profile %S (available: %s)" name
           (String.concat ", " Dpa_workload.Profiles.names)))
  | Some _, Some _ -> Error "--file and --profile are mutually exclusive"
  | None, None -> Error "one of --file or --profile is required"

let pair_limit_of ~profile =
  match profile with
  | Some name -> (
    match Dpa_workload.Profiles.find name with
    | Some p -> p.Dpa_workload.Profiles.pair_limit
    | None -> None)
  | None -> None

(* ---- common options ---- *)

let file_arg =
  let doc = "Netlist file; .blif is parsed as BLIF, anything else as the .dln text format." in
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc = "Named benchmark profile (industry1-3, apex7, frg1, x1, x3)." in
  Arg.(value & opt (some string) None & info [ "profile"; "p" ] ~docv:"NAME" ~doc)

let input_prob_arg =
  let doc = "Uniform signal probability of the primary inputs." in
  Arg.(value & opt float 0.5 & info [ "input-prob" ] ~docv:"P" ~doc)

let timed_arg =
  let doc = "Run the Table 2 flow: derive a clock constraint and resize." in
  Arg.(value & flag & info [ "timed" ] ~doc)

let seed_arg =
  let doc = "Seed for randomized search strategies." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

(* ---- observability options ---- *)

let trace_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) in Chrome \
     trace format (load it in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges and per-span latency \
     histograms) to $(docv) as JSON after the command finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Runs [f] with tracing/profiling switched on as requested and writes the
   output files even when [f] raises — the exception continues on to [guard],
   so recognized failures still produce a (partial) trace for diagnosis. *)
let with_obs ~trace ~metrics f =
  if trace = None && metrics = None then f ()
  else begin
    if trace <> None then Dpa_obs.Trace.start ();
    if metrics <> None then Dpa_obs.Profile.enable ();
    Fun.protect
      ~finally:(fun () ->
        (match trace with Some path -> Dpa_obs.Trace.save path | None -> ());
        match metrics with Some path -> Dpa_obs.Metrics.save_json path | None -> ())
      f
  end

(* ---- resource budget options ---- *)

let max_bdd_nodes_arg =
  let doc =
    "Cap the BDD manager at $(docv) nodes; estimation degrades per the \
     --fallback policy instead of exhausting memory."
  in
  Arg.(value & opt (some int) None & info [ "max-bdd-nodes" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Wall-clock deadline in seconds for each power estimate." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let fallback_arg =
  let doc =
    "What to do when a budget runs out: $(b,none) fails with exit code 75, \
     $(b,reorder) retries once under a reordered variable order, $(b,sim) \
     (default) additionally falls back to Monte-Carlo simulation."
  in
  let fb_conv =
    Arg.conv
      ( (fun s ->
          match Dpa_power.Engine.fallback_of_string s with
          | Some f -> Ok f
          | None -> Error (`Msg (Printf.sprintf "invalid fallback %S (none|reorder|sim)" s))),
        fun fmt f -> Format.pp_print_string fmt (Dpa_power.Engine.fallback_to_string f) )
  in
  Arg.(value & opt fb_conv Dpa_power.Engine.Simulate & info [ "fallback" ] ~docv:"POLICY" ~doc)

let budget_of ~max_bdd_nodes ~deadline ~fallback =
  match max_bdd_nodes, deadline with
  | None, None -> None
  | _ ->
    Some
      { Dpa_power.Engine.default_budget with
        Dpa_power.Engine.max_bdd_nodes;
        deadline_s = deadline;
        fallback }

(* ---- run ---- *)

let run_cmd =
  let sequential_arg =
    let doc =
      "Treat the design as sequential: parse .latch statements (BLIF files only), cut the \
       MFVS, propagate flip-flop probabilities and compare flows on the combinational core."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let two_level_arg =
    let doc = "Collapse narrow output cones to irredundant two-level form (ISOP) first." in
    Arg.(value & flag & info [ "two-level" ] ~doc)
  in
  let action file profile input_prob timed seed sequential two_level max_bdd_nodes
      deadline fallback trace metrics =
    if input_prob < 0.0 || input_prob > 1.0 then
      `Error (false, "--input-prob must lie in [0,1]")
    else begin
      guard @@ fun () ->
      with_obs ~trace ~metrics @@ fun () ->
      let config =
        { Flow.default_config with
          Flow.input_prob;
          seed;
          pair_limit = pair_limit_of ~profile;
          timing = (if timed then Some Flow.default_timing else None);
          budget = budget_of ~max_bdd_nodes ~deadline ~fallback }
      in
      if sequential then begin
        match file with
        | Some path when Filename.check_suffix path ".blif" -> (
          match Dpa_logic.Blif.sequential_of_string (read_file path) with
          | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)
          | Ok parsed ->
            let sn = Dpa_seq.Seq_netlist.of_blif parsed in
            let r = Dpa_core.Seq_flow.compare_ma_mp ~config sn in
            Printf.printf
              "sequential design: %d flip-flops, MFVS cut {%s}, %d symmetry group(s)\n"
              (Dpa_seq.Seq_netlist.n_ffs sn)
              (String.concat "," (List.map string_of_int r.Dpa_core.Seq_flow.fvs))
              r.Dpa_core.Seq_flow.supervertices;
            Array.iteri
              (fun k p -> Printf.printf "  ff%d steady P(Q) = %.3f\n" k p)
              r.Dpa_core.Seq_flow.ff_probs;
            print_newline ();
            print_string
              (Dpa_core.Report.table ~title:"MA vs MP (combinational core):"
                 [ ("", r.Dpa_core.Seq_flow.comb) ]);
            `Ok ())
        | Some _ -> `Error (false, "--sequential requires a .blif file")
        | None -> `Error (false, "--sequential requires --file")
      end
      else
        match netlist_of_source ~file ~profile with
        | Error msg -> `Error (false, msg)
        | Ok net ->
          let net =
            if two_level then begin
              let flat, stats =
                Dpa_synth.Resynth.two_level (Dpa_synth.Opt.optimize net)
              in
              Printf.printf "two-level resynthesis: %d/%d cones collapsed (%d cubes)\n"
                stats.Dpa_synth.Resynth.collapsed_outputs
                (stats.Dpa_synth.Resynth.collapsed_outputs
                + stats.Dpa_synth.Resynth.kept_outputs)
                stats.Dpa_synth.Resynth.cubes;
              flat
            end
            else net
          in
          let r = Flow.compare_ma_mp ~config net in
          print_string (Dpa_core.Report.table ~title:"MA vs MP:" [ ("", r) ]);
          print_newline ();
          print_endline (Dpa_core.Report.summary r);
          `Ok ()
    end
  in
  let doc = "Compare minimum-area and minimum-power phase assignment on a circuit." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const action $ file_arg $ profile_arg $ input_prob_arg $ timed_arg $ seed_arg
        $ sequential_arg $ two_level_arg $ max_bdd_nodes_arg $ deadline_arg
        $ fallback_arg $ trace_arg $ metrics_arg))

(* ---- estimate ---- *)

let estimate_cmd =
  let phases_arg =
    let doc = "Explicit phase string, e.g. \"+-+\" (default all positive)." in
    Arg.(value & opt (some string) None & info [ "phases" ] ~docv:"PHASES" ~doc)
  in
  let cycles_arg =
    let doc = "Also simulate this many cycles and report measured power." in
    Arg.(value & opt (some int) None & info [ "simulate" ] ~docv:"CYCLES" ~doc)
  in
  let action file profile input_prob phases cycles max_bdd_nodes deadline fallback
      trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    match netlist_of_source ~file ~profile with
    | Error msg -> `Error (false, msg)
    | Ok raw ->
      let net = Dpa_synth.Opt.optimize raw in
      let n = Netlist.num_outputs net in
      let assignment =
        match phases with
        | None -> Ok (Phase.all_positive n)
        | Some s when String.length s = n ->
          let ok = String.for_all (fun c -> c = '+' || c = '-') s in
          if ok then
            Ok (Array.init n (fun k -> if s.[k] = '-' then Phase.Negative else Phase.Positive))
          else Error "phase string may contain only '+' and '-'"
        | Some s ->
          Error
            (Printf.sprintf "phase string %S has %d characters for %d outputs" s
               (String.length s) n)
      in
      (match assignment with
      | Error msg -> `Error (false, msg)
      | Ok assignment ->
        let input_probs = Array.make (Netlist.num_inputs net) input_prob in
        let mapped =
          Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net assignment)
        in
        let est =
          Dpa_power.Engine.estimate
            ?budget:(budget_of ~max_bdd_nodes ~deadline ~fallback)
            ~input_probs mapped
        in
        let r = est.Dpa_power.Engine.report in
        Printf.printf "phases %s: %d cells\n" (Phase.to_string assignment)
          (Dpa_domino.Mapped.size mapped);
        if not (Dpa_power.Engine.all_exact est.Dpa_power.Engine.degradation) then
          Printf.printf "  estimate degraded: %s\n"
            (Dpa_power.Engine.degradation_to_string est.Dpa_power.Engine.degradation);
        Printf.printf "  domino block power   %10.4f\n" r.Dpa_power.Estimate.domino_power;
        Printf.printf "  input inverters      %10.4f\n"
          r.Dpa_power.Estimate.input_inverter_power;
        Printf.printf "  output inverters     %10.4f\n"
          r.Dpa_power.Estimate.output_inverter_power;
        Printf.printf "  total                %10.4f\n" r.Dpa_power.Estimate.total;
        print_endline "  by cell type:";
        List.iter
          (fun (cname, count, power) ->
            Printf.printf "    %-10s x%-4d %10.4f\n" cname count power)
          (Dpa_power.Estimate.by_cell_type
             ~input_toggle:(fun pos -> Dpa_power.Model.static_switching input_probs.(pos))
             mapped ~node_probs:r.Dpa_power.Estimate.node_probs);
        (match cycles with
        | Some c when c > 0 ->
          let rng = Dpa_util.Rng.create 1 in
          let m =
            Dpa_power.Estimate.of_activity mapped
              (Dpa_sim.Simulator.measure ~cycles:c rng ~input_probs mapped)
          in
          Printf.printf "  simulated (%d cycles) %9.4f\n" c
            m.Dpa_power.Estimate.total
        | Some _ | None -> ());
        `Ok ())
  in
  let doc = "Estimate (and optionally simulate) domino power for a phase assignment." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      ret
        (const action $ file_arg $ profile_arg $ input_prob_arg $ phases_arg $ cycles_arg
        $ max_bdd_nodes_arg $ deadline_arg $ fallback_arg $ trace_arg $ metrics_arg))

(* ---- generate ---- *)

let generate_cmd =
  let action profile =
    match Dpa_workload.Profiles.find profile with
    | None ->
      `Error
        ( false,
          Printf.sprintf "unknown profile %S (available: %s)" profile
            (String.concat ", " Dpa_workload.Profiles.names) )
    | Some p ->
      print_string
        (Dpa_logic.Io.to_string
           (Dpa_workload.Generator.combinational p.Dpa_workload.Profiles.params));
      `Ok ()
  in
  let profile_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE")
  in
  let doc = "Emit a benchmark profile's netlist in .dln format on stdout." in
  Cmd.v (Cmd.info "generate" ~doc) Term.(ret (const action $ profile_pos))

(* ---- info ---- *)

let info_cmd =
  let action file profile trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    match netlist_of_source ~file ~profile with
    | Error msg -> `Error (false, msg)
    | Ok net ->
      print_string (Dpa_logic.Netstats.to_string (Dpa_logic.Netstats.compute net));
      let opt = Dpa_synth.Opt.optimize net in
      Printf.printf "after technology-independent optimization: %d gates\n"
        (Netlist.gate_count opt);
      let probs = Array.make (Netlist.num_inputs opt) 0.5 in
      Printf.printf "domino/static power ratio at p=0.5 (min-area phases): %.2fx\n"
        (Dpa_power.Static_model.domino_to_static_ratio ~input_probs:probs opt);
      `Ok ()
  in
  let doc = "Print structural statistics and the domino/static power ratio." in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(ret (const action $ file_arg $ profile_arg $ trace_arg $ metrics_arg))

(* ---- equiv ---- *)

let equiv_cmd =
  let action file_a file_b =
    guard @@ fun () ->
    let a = load_netlist file_a and b = load_netlist file_b in
    (
      match Dpa_bdd.Equiv.check a b with
      | Dpa_bdd.Equiv.Equivalent ->
        print_endline "EQUIVALENT";
        `Ok ()
      | Dpa_bdd.Equiv.Interface_mismatch msg ->
        Printf.printf "INTERFACE MISMATCH: %s\n" msg;
        exit 2
      | Dpa_bdd.Equiv.Differ { output; witness } ->
        let po_name =
          match Array.to_list (Dpa_logic.Netlist.outputs a) with
          | outs when output < List.length outs -> fst (List.nth outs output)
          | _ -> string_of_int output
        in
        Printf.printf "DIFFER at output %s; witness inputs:\n" po_name;
        Array.iteri
          (fun pos id ->
            let name =
              Option.value ~default:(Printf.sprintf "pi%d" pos)
                (Dpa_logic.Netlist.node_name a id)
            in
            Printf.printf "  %s = %d\n" name (Bool.to_int witness.(pos)))
          (Dpa_logic.Netlist.inputs a);
        exit 1)
  in
  let file_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A") in
  let file_b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B") in
  let doc = "Check two netlists for combinational equivalence (BDD-based)." in
  Cmd.v (Cmd.info "equiv" ~doc) Term.(ret (const action $ file_a $ file_b))

(* ---- mfvs ---- *)

let mfvs_cmd =
  let action file trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    if not (Filename.check_suffix file ".blif") then
      `Error (false, "mfvs requires a sequential .blif file")
    else
      match Dpa_logic.Blif.sequential_of_string (read_file file) with
      | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
      | Ok parsed ->
        let sn = Dpa_seq.Seq_netlist.of_blif parsed in
        let g = Dpa_seq.Sgraph.of_seq_netlist sn in
        let n = Dpa_seq.Seq_netlist.n_ffs sn in
        Printf.printf "s-graph: %d flip-flops\n" n;
        List.iter
          (fun v ->
            Printf.printf "  ff%d -> {%s}\n" v
              (String.concat "," (List.map string_of_int (Dpa_seq.Sgraph.succ g v))))
          (Dpa_seq.Sgraph.alive_vertices g);
        let heuristic = Dpa_seq.Mfvs.solve g in
        Printf.printf "enhanced MFVS: {%s} (%d supervertices, %d greedy picks)\n"
          (String.concat "," (List.map string_of_int heuristic.Dpa_seq.Mfvs.fvs))
          (List.length heuristic.Dpa_seq.Mfvs.supervertices)
          heuristic.Dpa_seq.Mfvs.greedy_picks;
        (match Dpa_seq.Exact_mfvs.solve ~node_limit:100_000 g with
        | Some exact ->
          Printf.printf "exact optimum: {%s} (weight %d, %d branch nodes)\n"
            (String.concat "," (List.map string_of_int exact.Dpa_seq.Exact_mfvs.fvs))
            exact.Dpa_seq.Exact_mfvs.weight exact.Dpa_seq.Exact_mfvs.nodes_explored
        | None -> print_endline "exact optimum: search budget exceeded");
        let part = Dpa_seq.Partition.probabilities ~input_probs:(Array.make (Dpa_seq.Seq_netlist.n_real_inputs sn) 0.5) sn in
        Array.iteri
          (fun k p ->
            Printf.printf "  ff%d steady P(Q) = %.4f%s\n" k p
              (if List.mem k part.Dpa_seq.Partition.fvs then "   (cut, assumed)" else ""))
          part.Dpa_seq.Partition.ff_probs;
        `Ok ()
  in
  let file_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.blif") in
  let doc = "Analyze a sequential design: s-graph, enhanced and exact MFVS, probabilities." in
  Cmd.v (Cmd.info "mfvs" ~doc)
    Term.(ret (const action $ file_pos $ trace_arg $ metrics_arg))

(* ---- tables ---- *)

let table_cmd name doc profiles timed =
  let csv_arg =
    let d = "Emit machine-readable CSV instead of the formatted table." in
    Arg.(value & flag & info [ "csv" ] ~doc:d)
  in
  let action csv trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let rows =
      List.map
        (fun p ->
          let net = Dpa_workload.Generator.combinational p.Dpa_workload.Profiles.params in
          let config =
            { Flow.default_config with
              Flow.pair_limit = p.Dpa_workload.Profiles.pair_limit;
              timing = (if timed then Some Flow.default_timing else None) }
          in
          (p.Dpa_workload.Profiles.description, Flow.compare_ma_mp ~config net))
        profiles
    in
    if csv then print_string (Dpa_core.Report.csv rows)
    else print_string (Dpa_core.Report.table ~title:(String.uppercase_ascii name ^ ":") rows)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ csv_arg $ trace_arg $ metrics_arg)

let table1_cmd =
  table_cmd "table1" "Reproduce Table 1 (untimed synthesis, input probability 0.5)."
    Dpa_workload.Profiles.table1 false

let table2_cmd =
  table_cmd "table2" "Reproduce Table 2 (timed synthesis with resizing)."
    Dpa_workload.Profiles.table2 true

(* ---- main ---- *)

let () =
  let doc = "automated phase assignment for low power domino circuits" in
  let info = Cmd.info "dominoflow" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ run_cmd; estimate_cmd; generate_cmd; info_cmd; equiv_cmd; mfvs_cmd; table1_cmd;
         table2_cmd ]))
