(* dominoflow — command-line front end for the low-power domino synthesis
   flow (Patra & Narayanan, DAC'99 reproduction).

     dominoflow run --profile apex7 [--timed]
     dominoflow run --file design.dln --input-prob 0.5
     dominoflow estimate --file design.dln --phases "+-+"
     dominoflow generate --profile frg1 > frg1.dln
     dominoflow table1 / table2 *)

open Cmdliner
module Flow = Dpa_core.Flow
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Dpa_error = Dpa_util.Dpa_error

(* Every action runs under [guard]: recognized failures — parse errors,
   missing files, blown budgets with fallback disabled, internal invariant
   violations — become one clean line on stderr and a documented
   sysexits-style code (65 data, 66 io, 69 unsupported, 70 internal,
   75 budget), never a raw backtrace. *)
let die e =
  prerr_endline ("dominoflow: " ^ Dpa_error.to_string e);
  exit (Dpa_error.exit_code e)

let guard f =
  try f () with
  | e -> ( match Dpa_error.of_exn e with Some err -> die err | None -> raise e)

(* one shared loader (Dpa_logic.Io) for every path-taking entry point:
   exception-safe reads, one place for the .blif/.dln dispatch *)
let read_file = Dpa_logic.Io.read_file

let netlist_of_source ~file ~profile =
  match file, profile with
  | Some path, None -> Ok (Dpa_logic.Io.load_file path)
  | None, Some name -> (
    match Dpa_workload.Profiles.find name with
    | Some p when Dpa_workload.Profiles.is_sequential p ->
      Error
        (Printf.sprintf
           "profile %S is sequential; use `dominoflow corpus` or `dominoflow workload --emit`"
           name)
    | Some p -> Ok (Dpa_workload.Profiles.build_comb p)
    | None ->
      Error
        (Printf.sprintf "unknown profile %S (available: %s)" name
           (String.concat ", " Dpa_workload.Profiles.names)))
  | Some _, Some _ -> Error "--file and --profile are mutually exclusive"
  | None, None -> Error "one of --file or --profile is required"

let pair_limit_of ~profile =
  match profile with
  | Some name -> (
    match Dpa_workload.Profiles.find name with
    | Some p -> p.Dpa_workload.Profiles.pair_limit
    | None -> None)
  | None -> None

(* ---- common options ---- *)

let file_arg =
  let doc = "Netlist file; .blif is parsed as BLIF, anything else as the .dln text format." in
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Named benchmark profile (industry1-3, apex7, frg1, x1, x3, or any corpus \
     profile; `dominoflow workload` lists them all)."
  in
  Arg.(value & opt (some string) None & info [ "profile"; "p" ] ~docv:"NAME" ~doc)

let input_prob_arg =
  let doc = "Uniform signal probability of the primary inputs." in
  Arg.(value & opt float 0.5 & info [ "input-prob" ] ~docv:"P" ~doc)

let timed_arg =
  let doc = "Run the Table 2 flow: derive a clock constraint and resize." in
  Arg.(value & flag & info [ "timed" ] ~doc)

let seed_arg =
  let doc = "Seed for randomized search strategies." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Domains used for intra-request parallelism: per-cone BDD estimation fans \
     out across $(docv) domains and the phase search prices candidate moves \
     speculatively. Results are bit-identical at any value (including 1). \
     Default: the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

(* One pool per command invocation, created before the work and shut down
   after. The width is a performance hint, never a semantic knob, so an
   out-of-range request is clamped to what Par.create accepts rather than
   rejected. *)
let with_par ~jobs f =
  let requested = match jobs with Some j -> j | None -> Dpa_util.Par.default_jobs () in
  Dpa_util.Par.with_pool ~jobs:(max 1 (min 126 requested)) f

(* ---- observability options ---- *)

let trace_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) in Chrome \
     trace format (load it in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges and per-span latency \
     histograms) to $(docv) as JSON after the command finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Runs [f] with tracing/profiling switched on as requested and writes the
   output files even when [f] raises — the exception continues on to [guard],
   so recognized failures still produce a (partial) trace for diagnosis. *)
let with_obs ~trace ~metrics f =
  if trace = None && metrics = None then f ()
  else begin
    if trace <> None then Dpa_obs.Trace.start ();
    if metrics <> None then Dpa_obs.Profile.enable ();
    Fun.protect
      ~finally:(fun () ->
        (match trace with Some path -> Dpa_obs.Trace.save path | None -> ());
        match metrics with Some path -> Dpa_obs.Metrics.save_json path | None -> ())
      f
  end

(* ---- resource budget options ---- *)

let max_bdd_nodes_arg =
  let doc =
    "Cap the BDD manager at $(docv) nodes; estimation degrades per the \
     --fallback policy instead of exhausting memory."
  in
  Arg.(value & opt (some int) None & info [ "max-bdd-nodes" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Wall-clock deadline in seconds for each power estimate." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let fallback_arg =
  let doc =
    "What to do when a budget runs out: $(b,none) fails with exit code 75, \
     $(b,reorder) retries once under a reordered variable order, $(b,sim) \
     (default) additionally falls back to Monte-Carlo simulation."
  in
  let fb_conv =
    Arg.conv
      ( (fun s ->
          match Dpa_power.Engine.fallback_of_string s with
          | Some f -> Ok f
          | None -> Error (`Msg (Printf.sprintf "invalid fallback %S (none|reorder|sim)" s))),
        fun fmt f -> Format.pp_print_string fmt (Dpa_power.Engine.fallback_to_string f) )
  in
  Arg.(value & opt fb_conv Dpa_power.Engine.Simulate & info [ "fallback" ] ~docv:"POLICY" ~doc)

let reorder_conv =
  Arg.conv
    ( (fun s ->
        match Dpa_power.Engine.reorder_of_string s with
        | Some r -> Ok r
        | None -> Error (`Msg (Printf.sprintf "invalid reorder strategy %S (sift|rebuild)" s))),
      fun fmt r -> Format.pp_print_string fmt (Dpa_power.Engine.reorder_to_string r) )

let reorder_arg =
  let doc =
    "Reorder-rung strategy when a cone blows the node budget: $(b,sift) (default) \
     dynamically reorders the existing BDD store in place and resumes the failed \
     cones, $(b,rebuild) hill-climbs a fresh variable order with full bounded \
     rebuilds as the cost oracle."
  in
  Arg.(
    value & opt reorder_conv Dpa_power.Engine.Sift & info [ "reorder" ] ~docv:"STRATEGY" ~doc)

let reorder_passes_arg =
  let doc =
    "Reorder-rung passes (sift passes under $(b,--reorder sift), hill-climb passes \
     under $(b,--reorder rebuild)); $(b,0) disables the rung entirely, so exhausted \
     cones fall straight through to the $(b,--fallback) policy."
  in
  Arg.(
    value
    & opt int Dpa_power.Engine.default_budget.Dpa_power.Engine.reorder_passes
    & info [ "reorder-passes" ] ~docv:"N" ~doc)

let sim_backend_arg =
  let doc =
    "Monte-Carlo simulation backend: $(b,interp) walks the netlist event queue \
     cycle by cycle, $(b,compiled) (default) lowers the block once to a flat \
     bit-parallel instruction tape that evaluates 63 cycles per pass. Both \
     backends produce bit-identical activity counts for equal seeds."
  in
  let sb_conv =
    Arg.conv
      ( (fun s ->
          match Dpa_sim.Backend.of_string s with
          | Some b -> Ok b
          | None ->
            Error (`Msg (Printf.sprintf "invalid sim backend %S (interp|compiled)" s))),
        fun fmt b -> Format.pp_print_string fmt (Dpa_sim.Backend.to_string b) )
  in
  Arg.(
    value
    & opt sb_conv Dpa_sim.Backend.default
    & info [ "sim-backend" ] ~docv:"BACKEND" ~doc)

let budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend ~reorder ~reorder_passes =
  match max_bdd_nodes, deadline with
  | None, None when sim_backend = Dpa_sim.Backend.default -> None
  | _ ->
    Some
      { Dpa_power.Engine.default_budget with
        Dpa_power.Engine.max_bdd_nodes;
        deadline_s = deadline;
        fallback;
        sim_backend;
        reorder;
        reorder_passes }

(* ---- run ---- *)

let run_cmd =
  let sequential_arg =
    let doc =
      "Treat the design as sequential: parse .latch statements (BLIF files only), cut the \
       MFVS, propagate flip-flop probabilities and compare flows on the combinational core."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let two_level_arg =
    let doc = "Collapse narrow output cones to irredundant two-level form (ISOP) first." in
    Arg.(value & flag & info [ "two-level" ] ~doc)
  in
  let action file profile input_prob timed seed sequential two_level max_bdd_nodes
      deadline fallback reorder reorder_passes sim_backend jobs trace metrics =
    if input_prob < 0.0 || input_prob > 1.0 then
      `Error (false, "--input-prob must lie in [0,1]")
    else begin
      guard @@ fun () ->
      with_obs ~trace ~metrics @@ fun () ->
      with_par ~jobs @@ fun pool ->
      let config =
        { Flow.default_config with
          Flow.input_prob;
          seed;
          pair_limit = pair_limit_of ~profile;
          timing = (if timed then Some Flow.default_timing else None);
          budget = budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend ~reorder ~reorder_passes;
          par = Some pool }
      in
      if sequential then begin
        match file with
        | Some path when Filename.check_suffix path ".blif" -> (
          match Dpa_logic.Blif.sequential_of_string (read_file path) with
          | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)
          | Ok parsed ->
            let sn = Dpa_seq.Seq_netlist.of_blif parsed in
            let r = Dpa_core.Seq_flow.compare_ma_mp ~config sn in
            Printf.printf
              "sequential design: %d flip-flops, MFVS cut {%s}, %d symmetry group(s)\n"
              (Dpa_seq.Seq_netlist.n_ffs sn)
              (String.concat "," (List.map string_of_int r.Dpa_core.Seq_flow.fvs))
              r.Dpa_core.Seq_flow.supervertices;
            Array.iteri
              (fun k p -> Printf.printf "  ff%d steady P(Q) = %.3f\n" k p)
              r.Dpa_core.Seq_flow.ff_probs;
            print_newline ();
            print_string
              (Dpa_core.Report.table ~title:"MA vs MP (combinational core):"
                 [ ("", r.Dpa_core.Seq_flow.comb) ]);
            `Ok ())
        | Some _ -> `Error (false, "--sequential requires a .blif file")
        | None -> `Error (false, "--sequential requires --file")
      end
      else
        match netlist_of_source ~file ~profile with
        | Error msg -> `Error (false, msg)
        | Ok net ->
          let net =
            if two_level then begin
              let flat, stats =
                Dpa_synth.Resynth.two_level (Dpa_synth.Opt.optimize net)
              in
              Printf.printf "two-level resynthesis: %d/%d cones collapsed (%d cubes)\n"
                stats.Dpa_synth.Resynth.collapsed_outputs
                (stats.Dpa_synth.Resynth.collapsed_outputs
                + stats.Dpa_synth.Resynth.kept_outputs)
                stats.Dpa_synth.Resynth.cubes;
              flat
            end
            else net
          in
          let r = Flow.compare_ma_mp ~config net in
          print_string (Dpa_core.Report.table ~title:"MA vs MP:" [ ("", r) ]);
          print_newline ();
          print_endline (Dpa_core.Report.summary r);
          `Ok ()
    end
  in
  let doc = "Compare minimum-area and minimum-power phase assignment on a circuit." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const action $ file_arg $ profile_arg $ input_prob_arg $ timed_arg $ seed_arg
        $ sequential_arg $ two_level_arg $ max_bdd_nodes_arg $ deadline_arg
        $ fallback_arg $ reorder_arg $ reorder_passes_arg $ sim_backend_arg
        $ jobs_arg $ trace_arg $ metrics_arg))

(* ---- estimate ---- *)

let estimate_cmd =
  let phases_arg =
    let doc = "Explicit phase string, e.g. \"+-+\" (default all positive)." in
    Arg.(value & opt (some string) None & info [ "phases" ] ~docv:"PHASES" ~doc)
  in
  let cycles_arg =
    let doc = "Also simulate this many cycles and report measured power." in
    Arg.(value & opt (some int) None & info [ "simulate" ] ~docv:"CYCLES" ~doc)
  in
  let action file profile input_prob phases cycles max_bdd_nodes deadline fallback
      reorder reorder_passes sim_backend jobs trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    with_par ~jobs @@ fun pool ->
    match netlist_of_source ~file ~profile with
    | Error msg -> `Error (false, msg)
    | Ok raw ->
      let net = Dpa_synth.Opt.optimize raw in
      let n = Netlist.num_outputs net in
      let assignment =
        match phases with
        | None -> Ok (Phase.all_positive n)
        | Some s when String.length s = n ->
          let ok = String.for_all (fun c -> c = '+' || c = '-') s in
          if ok then
            Ok (Array.init n (fun k -> if s.[k] = '-' then Phase.Negative else Phase.Positive))
          else Error "phase string may contain only '+' and '-'"
        | Some s ->
          Error
            (Printf.sprintf "phase string %S has %d characters for %d outputs" s
               (String.length s) n)
      in
      (match assignment with
      | Error msg -> `Error (false, msg)
      | Ok assignment ->
        let input_probs = Array.make (Netlist.num_inputs net) input_prob in
        let mapped =
          Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net assignment)
        in
        let est =
          Dpa_power.Engine.estimate ~par:pool
            ?budget:(budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend ~reorder ~reorder_passes)
            ~input_probs mapped
        in
        let r = est.Dpa_power.Engine.report in
        Printf.printf "phases %s: %d cells\n" (Phase.to_string assignment)
          (Dpa_domino.Mapped.size mapped);
        if not (Dpa_power.Engine.all_exact est.Dpa_power.Engine.degradation) then
          Printf.printf "  estimate degraded: %s\n"
            (Dpa_power.Engine.degradation_to_string est.Dpa_power.Engine.degradation);
        Printf.printf "  domino block power   %10.4f\n" r.Dpa_power.Estimate.domino_power;
        Printf.printf "  input inverters      %10.4f\n"
          r.Dpa_power.Estimate.input_inverter_power;
        Printf.printf "  output inverters     %10.4f\n"
          r.Dpa_power.Estimate.output_inverter_power;
        Printf.printf "  total                %10.4f\n" r.Dpa_power.Estimate.total;
        print_endline "  by cell type:";
        List.iter
          (fun (cname, count, power) ->
            Printf.printf "    %-10s x%-4d %10.4f\n" cname count power)
          (Dpa_power.Estimate.by_cell_type
             ~input_toggle:(fun pos -> Dpa_power.Model.static_switching input_probs.(pos))
             mapped ~node_probs:r.Dpa_power.Estimate.node_probs);
        (match cycles with
        | Some c when c > 0 ->
          let rng = Dpa_util.Rng.create 1 in
          let m =
            Dpa_power.Estimate.of_activity mapped
              (Dpa_sim.Simulator.measure ~backend:sim_backend ~cycles:c rng ~input_probs
                 mapped)
          in
          Printf.printf "  simulated (%d cycles) %9.4f\n" c
            m.Dpa_power.Estimate.total
        | Some _ | None -> ());
        `Ok ())
  in
  let doc = "Estimate (and optionally simulate) domino power for a phase assignment." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      ret
        (const action $ file_arg $ profile_arg $ input_prob_arg $ phases_arg $ cycles_arg
        $ max_bdd_nodes_arg $ deadline_arg $ fallback_arg $ reorder_arg
        $ reorder_passes_arg $ sim_backend_arg $ jobs_arg $ trace_arg $ metrics_arg))

(* ---- validate ---- *)

(* Cross-check the analytic engine estimate against a Monte-Carlo
   measurement of the same mapped block. The simulated number is the
   ground truth the whole estimation stack approximates, so this is the
   end-to-end validation path for both the engine and the simulation
   backends. *)
let validate_cmd =
  let phases_arg =
    let doc = "Explicit phase string, e.g. \"+-+\" (default all positive)." in
    Arg.(value & opt (some string) None & info [ "phases" ] ~docv:"PHASES" ~doc)
  in
  let cycles_arg =
    let doc =
      "Monte-Carlo cycles for the simulated measurement (default: the shared \
       simulator default, 10000)."
    in
    Arg.(
      value
      & opt int Dpa_sim.Backend.default_cycles
      & info [ "cycles" ] ~docv:"N" ~doc)
  in
  let action file profile input_prob phases cycles seed sim_backend max_bdd_nodes
      deadline fallback reorder reorder_passes jobs trace metrics =
    if cycles < 1 then `Error (false, "--cycles must be >= 1")
    else begin
      guard @@ fun () ->
      with_obs ~trace ~metrics @@ fun () ->
      with_par ~jobs @@ fun pool ->
      match netlist_of_source ~file ~profile with
      | Error msg -> `Error (false, msg)
      | Ok raw ->
        let net = Dpa_synth.Opt.optimize raw in
        let n = Netlist.num_outputs net in
        let assignment =
          match phases with
          | None -> Ok (Phase.all_positive n)
          | Some s when String.length s = n ->
            if String.for_all (fun c -> c = '+' || c = '-') s then
              Ok
                (Array.init n (fun k ->
                     if s.[k] = '-' then Phase.Negative else Phase.Positive))
            else Error "phase string may contain only '+' and '-'"
          | Some s ->
            Error
              (Printf.sprintf "phase string %S has %d characters for %d outputs" s
                 (String.length s) n)
        in
        (match assignment with
        | Error msg -> `Error (false, msg)
        | Ok assignment ->
          let input_probs = Array.make (Netlist.num_inputs net) input_prob in
          let mapped =
            Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net assignment)
          in
          let est =
            Dpa_power.Engine.estimate ~par:pool
              ?budget:(budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend ~reorder ~reorder_passes)
              ~input_probs mapped
          in
          let estimated = est.Dpa_power.Engine.report.Dpa_power.Estimate.total in
          let rng = Dpa_util.Rng.create seed in
          let measured =
            Dpa_power.Estimate.of_activity mapped
              (Dpa_sim.Simulator.measure ~backend:sim_backend ~cycles rng ~input_probs
                 mapped)
          in
          let simulated = measured.Dpa_power.Estimate.total in
          let rel =
            if Float.abs estimated > 1e-12 then
              100.0 *. Float.abs (simulated -. estimated) /. estimated
            else 0.0
          in
          Printf.printf "phases %s: %d cells\n" (Phase.to_string assignment)
            (Dpa_domino.Mapped.size mapped);
          if not (Dpa_power.Engine.all_exact est.Dpa_power.Engine.degradation) then
            Printf.printf "  estimate degraded: %s\n"
              (Dpa_power.Engine.degradation_to_string
                 est.Dpa_power.Engine.degradation);
          Printf.printf "  estimated total      %10.4f\n" estimated;
          Printf.printf "  simulated total      %10.4f   (%s backend, %d cycles, seed %d)\n"
            simulated
            (Dpa_sim.Backend.to_string sim_backend)
            cycles seed;
          Printf.printf "  relative gap         %9.2f%%\n" rel;
          `Ok ())
    end
  in
  let doc =
    "Validate the analytic power estimate against a Monte-Carlo simulation of the \
     mapped block (selectable backend, deterministic seed)."
  in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(
      ret
        (const action $ file_arg $ profile_arg $ input_prob_arg $ phases_arg $ cycles_arg
        $ seed_arg $ sim_backend_arg $ max_bdd_nodes_arg $ deadline_arg $ fallback_arg
        $ reorder_arg $ reorder_passes_arg $ jobs_arg $ trace_arg $ metrics_arg))

(* ---- generate ---- *)

let generate_cmd =
  let action profile =
    match Dpa_workload.Profiles.find profile with
    | None ->
      `Error
        ( false,
          Printf.sprintf "unknown profile %S (available: %s)" profile
            (String.concat ", " Dpa_workload.Profiles.names) )
    | Some p when Dpa_workload.Profiles.is_sequential p ->
      `Error
        ( false,
          Printf.sprintf "profile %S is sequential; use `dominoflow workload --emit`"
            profile )
    | Some p ->
      print_string (Dpa_logic.Io.to_string (Dpa_workload.Profiles.build_comb p));
      `Ok ()
  in
  let profile_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE")
  in
  let doc = "Emit a benchmark profile's netlist in .dln format on stdout." in
  Cmd.v (Cmd.info "generate" ~doc) Term.(ret (const action $ profile_pos))

(* ---- info ---- *)

let info_cmd =
  let action file profile trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    match netlist_of_source ~file ~profile with
    | Error msg -> `Error (false, msg)
    | Ok net ->
      print_string (Dpa_logic.Netstats.to_string (Dpa_logic.Netstats.compute net));
      let opt = Dpa_synth.Opt.optimize net in
      Printf.printf "after technology-independent optimization: %d gates\n"
        (Netlist.gate_count opt);
      let probs = Array.make (Netlist.num_inputs opt) 0.5 in
      Printf.printf "domino/static power ratio at p=0.5 (min-area phases): %.2fx\n"
        (Dpa_power.Static_model.domino_to_static_ratio ~input_probs:probs opt);
      `Ok ()
  in
  let doc = "Print structural statistics and the domino/static power ratio." in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(ret (const action $ file_arg $ profile_arg $ trace_arg $ metrics_arg))

(* ---- equiv ---- *)

let equiv_cmd =
  let action file_a file_b =
    guard @@ fun () ->
    let a = Dpa_logic.Io.load_file file_a and b = Dpa_logic.Io.load_file file_b in
    (
      match Dpa_bdd.Equiv.check a b with
      | Dpa_bdd.Equiv.Equivalent ->
        print_endline "EQUIVALENT";
        `Ok ()
      | Dpa_bdd.Equiv.Interface_mismatch msg ->
        Printf.printf "INTERFACE MISMATCH: %s\n" msg;
        exit 2
      | Dpa_bdd.Equiv.Differ { output; witness } ->
        let po_name =
          match Array.to_list (Dpa_logic.Netlist.outputs a) with
          | outs when output < List.length outs -> fst (List.nth outs output)
          | _ -> string_of_int output
        in
        Printf.printf "DIFFER at output %s; witness inputs:\n" po_name;
        Array.iteri
          (fun pos id ->
            let name =
              Option.value ~default:(Printf.sprintf "pi%d" pos)
                (Dpa_logic.Netlist.node_name a id)
            in
            Printf.printf "  %s = %d\n" name (Bool.to_int witness.(pos)))
          (Dpa_logic.Netlist.inputs a);
        exit 1)
  in
  let file_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A") in
  let file_b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B") in
  let doc = "Check two netlists for combinational equivalence (BDD-based)." in
  Cmd.v (Cmd.info "equiv" ~doc) Term.(ret (const action $ file_a $ file_b))

(* ---- mfvs ---- *)

let mfvs_cmd =
  let action file trace metrics =
    guard @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    if not (Filename.check_suffix file ".blif") then
      `Error (false, "mfvs requires a sequential .blif file")
    else
      match Dpa_logic.Blif.sequential_of_string (read_file file) with
      | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
      | Ok parsed ->
        let sn = Dpa_seq.Seq_netlist.of_blif parsed in
        let g = Dpa_seq.Sgraph.of_seq_netlist sn in
        let n = Dpa_seq.Seq_netlist.n_ffs sn in
        Printf.printf "s-graph: %d flip-flops\n" n;
        List.iter
          (fun v ->
            Printf.printf "  ff%d -> {%s}\n" v
              (String.concat "," (List.map string_of_int (Dpa_seq.Sgraph.succ g v))))
          (Dpa_seq.Sgraph.alive_vertices g);
        let heuristic = Dpa_seq.Mfvs.solve g in
        Printf.printf "enhanced MFVS: {%s} (%d supervertices, %d greedy picks)\n"
          (String.concat "," (List.map string_of_int heuristic.Dpa_seq.Mfvs.fvs))
          (List.length heuristic.Dpa_seq.Mfvs.supervertices)
          heuristic.Dpa_seq.Mfvs.greedy_picks;
        (match Dpa_seq.Exact_mfvs.solve ~node_limit:100_000 g with
        | Some exact ->
          Printf.printf "exact optimum: {%s} (weight %d, %d branch nodes)\n"
            (String.concat "," (List.map string_of_int exact.Dpa_seq.Exact_mfvs.fvs))
            exact.Dpa_seq.Exact_mfvs.weight exact.Dpa_seq.Exact_mfvs.nodes_explored
        | None -> print_endline "exact optimum: search budget exceeded");
        let part = Dpa_seq.Partition.probabilities ~input_probs:(Array.make (Dpa_seq.Seq_netlist.n_real_inputs sn) 0.5) sn in
        Array.iteri
          (fun k p ->
            Printf.printf "  ff%d steady P(Q) = %.4f%s\n" k p
              (if List.mem k part.Dpa_seq.Partition.fvs then "   (cut, assumed)" else ""))
          part.Dpa_seq.Partition.ff_probs;
        `Ok ()
  in
  let file_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.blif") in
  let doc = "Analyze a sequential design: s-graph, enhanced and exact MFVS, probabilities." in
  Cmd.v (Cmd.info "mfvs" ~doc)
    Term.(ret (const action $ file_pos $ trace_arg $ metrics_arg))

(* ---- serve / submit / batch (the resident service) ---- *)

module Server = Dpa_service.Server
module Client = Dpa_service.Client
module Protocol = Dpa_service.Protocol

let socket_doc = "Unix-domain socket path of the phase-assignment server."

let socket_req_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:socket_doc)

let socket_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ]
        ~docv:"PATH"
        ~doc:(socket_doc ^ " Omitted: a private server is started in-process for the call."))

let workers_arg =
  let doc = "Worker domains executing requests in parallel." in
  Arg.(
    value
    & opt int (max 1 (min 4 (Domain.recommended_domain_count () - 1)))
    & info [ "workers"; "j" ] ~docv:"N" ~doc)

(* Fault-injection plumbing shared by serve and chaos: an explicit
   --fault spec wins over the DPA_FAULT environment variable. *)
let fault_arg =
  let doc =
    "Arm fault injection: $(docv) is \"point:rate[:param],...\" over slow_cone, \
     worker_panic, garbage_frame, torn_frame, drop_conn, write_stall. Overrides \
     $(b,DPA_FAULT)."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault-decision stream (with --fault; default 0)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N" ~doc)

let arm_faults ~fault ~fault_seed =
  match fault with
  | Some spec -> (
    match Dpa_util.Fault.parse_config spec with
    | Ok cfg ->
      Dpa_util.Fault.configure ~seed:fault_seed cfg;
      Ok ()
    | Error msg -> Error ("--fault: " ^ msg))
  | None -> (
    match Dpa_util.Fault.from_env () with
    | Ok () -> Ok ()
    | Error msg -> Error ("DPA_FAULT: " ^ msg))

let max_request_bytes_arg =
  let doc =
    "Largest admissible request frame in bytes; larger frames are answered with \
     a structured error before parsing."
  in
  Arg.(
    value
    & opt int Server.default_max_request_bytes
    & info [ "max-request-bytes" ] ~docv:"BYTES" ~doc)

let serve_cmd =
  let queue_arg =
    let doc =
      "Bound of the job queue; once full, further requests are shed with a \
       structured $(b,overloaded) response carrying a retry_after_ms hint \
       instead of buffering without limit."
    in
    Arg.(value & opt int Server.default_queue_capacity & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let serve_jobs_arg =
    let doc =
      "Intra-request domains per worker: each worker owns a private pool, so at \
       most workers × $(docv) domains are ever busy. Default: the machine's \
       cores spread evenly across the workers."
    in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let cache_mb_arg =
    let doc =
      "Byte bound of the shared result cache in MiB (successful estimate, \
       optimize and compare responses keyed by canonical structure); 0 \
       disables caching."
    in
    Arg.(value & opt int Server.default_cache_mb & info [ "cache-mb" ] ~docv:"MB" ~doc)
  in
  let cache_entries_arg =
    let doc = "Entry bound of the result cache." in
    Arg.(
      value & opt int Server.default_cache_entries & info [ "cache-entries" ] ~docv:"N" ~doc)
  in
  let cache_snapshot_arg =
    let doc =
      "Persist the result cache to $(docv): loaded at startup (a corrupt or \
       version-skewed file is ignored with a warning) and rewritten atomically \
       on graceful drain, so a restarted server answers warm."
    in
    Arg.(value & opt (some string) None & info [ "cache-snapshot" ] ~docv:"PATH" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the result cache (same as --cache-mb 0)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let action socket workers jobs queue_capacity max_request_bytes cache_mb cache_entries
      cache_snapshot no_cache fault fault_seed trace metrics =
    if workers < 1 then `Error (false, "--workers must be >= 1")
    else if queue_capacity < 1 then `Error (false, "--queue-capacity must be >= 1")
    else if max_request_bytes < 1 then `Error (false, "--max-request-bytes must be >= 1")
    else if cache_mb < 0 then `Error (false, "--cache-mb must be >= 0")
    else if cache_entries < 1 then `Error (false, "--cache-entries must be >= 1")
    else if (match jobs with Some j -> j < 1 | None -> false) then
      `Error (false, "--jobs must be >= 1")
    else begin
      match arm_faults ~fault ~fault_seed with
      | Error msg -> `Error (false, msg)
      | Ok () ->
        guard @@ fun () ->
        with_obs ~trace ~metrics @@ fun () ->
        let jobs =
          match jobs with
          | Some j -> min 126 j
          | None -> max 1 (min 126 (Dpa_util.Par.default_jobs () / workers))
        in
        (* a signal drains like a shutdown request instead of killing
           in-flight work; the exit code records which signal it was *)
        let caught_signal = ref None in
        Server.run
          ~on_ready:(fun h ->
            let drain_on signum =
              Sys.set_signal signum
                (Sys.Signal_handle
                   (fun _ ->
                     caught_signal := Some signum;
                     Server.stop h))
            in
            drain_on Sys.sigint;
            drain_on Sys.sigterm;
            Printf.printf "dominoflow: serving on %s (workers=%d, jobs=%d, queue=%d)\n%!"
              socket workers jobs queue_capacity)
          {
            Server.socket_path = socket;
            workers;
            jobs;
            queue_capacity;
            max_request_bytes;
            cache_mb = (if no_cache then 0 else cache_mb);
            cache_entries;
            cache_snapshot;
          };
        print_endline "dominoflow: server drained, bye";
        (match !caught_signal with
        | Some s when s = Sys.sigterm -> exit (128 + 15)
        | Some s when s = Sys.sigint -> exit (128 + 2)
        | Some _ | None -> ());
        `Ok ()
    end
  in
  let doc =
    "Run the resident phase-assignment server: newline-delimited JSON requests \
     (ping, info, estimate, optimize, compare, stats, shutdown) over a Unix \
     socket, executed by a pool of worker domains under a watchdog. SIGINT and \
     SIGTERM drain gracefully (exit 130 / 143)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const action $ socket_req_arg $ workers_arg $ serve_jobs_arg $ queue_arg
       $ max_request_bytes_arg $ cache_mb_arg $ cache_entries_arg $ cache_snapshot_arg
       $ no_cache_arg $ fault_arg $ fault_seed_arg $ trace_arg $ metrics_arg))

(* Request construction shared by submit and batch: one CLI-side source
   of truth for turning flags into protocol envelopes. *)
let build_request ~id ~cmd ~file ~inline ~input_prob ~phases ~seed ~budget ~cache =
  let source path =
    if inline then
      Protocol.Inline
        {
          text = read_file path;
          format = (if Filename.check_suffix path ".blif" then `Blif else `Dln);
        }
    else Protocol.File path
  in
  let need_file k =
    match file with
    | Some path -> Ok (source path)
    | None -> Error (Printf.sprintf "cmd %s requires --file" k)
  in
  let budget_opts =
    Option.map
      (fun b ->
        {
          Protocol.max_bdd_nodes = b.Dpa_power.Engine.max_bdd_nodes;
          deadline_s = b.Dpa_power.Engine.deadline_s;
          fallback = b.Dpa_power.Engine.fallback;
          sim_backend = b.Dpa_power.Engine.sim_backend;
        })
      budget
  in
  let req =
    match cmd with
    | "ping" -> Ok Protocol.Ping
    | "stats" -> Ok Protocol.Stats
    | "shutdown" -> Ok Protocol.Shutdown
    | "info" -> Result.map (fun s -> Protocol.Info { source = s }) (need_file "info")
    | "estimate" ->
      Result.map
        (fun s ->
          Protocol.Estimate { source = s; input_prob; phases; budget = budget_opts })
        (need_file "estimate")
    | "optimize" ->
      Result.map
        (fun s -> Protocol.Optimize { source = s; input_prob; seed; budget = budget_opts })
        (need_file "optimize")
    | "compare" ->
      Result.map
        (fun s -> Protocol.Compare { source = s; input_prob; seed; budget = budget_opts })
        (need_file "compare")
    | other ->
      Error
        (Printf.sprintf
           "unknown cmd %S (ping|info|estimate|optimize|compare|stats|shutdown)" other)
  in
  Result.map (fun request -> { Protocol.id; request; cache }) req

let cache_arg =
  let doc =
    "Result-cache control: $(b,use) (default) answers from the server's cache \
     on a hit, $(b,bypass) forces the cold execution path (never probes, never \
     populates — responses are byte-identical either way)."
  in
  Arg.(
    value
    & opt (enum [ ("use", `Use); ("bypass", `Bypass) ]) `Use
    & info [ "cache" ] ~docv:"MODE" ~doc)

let cmd_pos =
  let doc = "Request kind: ping, info, estimate, optimize, compare, stats or shutdown." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CMD" ~doc)

let inline_arg =
  let doc =
    "Ship the netlist text inside the request instead of sending the path \
     (useful when the server runs in another directory)."
  in
  Arg.(value & flag & info [ "inline" ] ~doc)

let submit_cmd =
  let id_arg =
    let doc = "Request id echoed in the response." in
    Arg.(value & opt int 0 & info [ "id" ] ~docv:"N" ~doc)
  in
  let action socket cmd id file inline input_prob phases seed max_bdd_nodes deadline
      fallback sim_backend cache =
    guard @@ fun () ->
    (* the wire protocol does not carry a reorder strategy; the server
       estimates under the engine default *)
    let budget =
      budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend
        ~reorder:Dpa_power.Engine.default_budget.Dpa_power.Engine.reorder
        ~reorder_passes:Dpa_power.Engine.default_budget.Dpa_power.Engine.reorder_passes
    in
    match build_request ~id ~cmd ~file ~inline ~input_prob ~phases ~seed ~budget ~cache with
    | Error msg -> `Error (false, msg)
    | Ok envelope ->
      let client = Client.connect socket in
      let line =
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () -> Client.request client (Protocol.request_line envelope))
      in
      print_endline line;
      (match Protocol.parse_response line with
      | Ok { Protocol.ok = true; _ } -> `Ok ()
      | Ok { Protocol.ok = false; result; _ } ->
        let code =
          match Dpa_util.Jsonlite.member_opt "exit_code" result with
          | Some (Dpa_util.Jsonlite.Num f) -> int_of_float f
          | _ -> 70
        in
        exit code
      | Error msg -> die (Dpa_error.Internal ("unparseable response: " ^ msg)))
  in
  let doc = "Send one request to a running server and print the response line." in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      ret
        (const action $ socket_req_arg $ cmd_pos $ id_arg $ file_arg
       $ inline_arg $ input_prob_arg
        $ Arg.(
            value
            & opt (some string) None
            & info [ "phases" ] ~docv:"PHASES" ~doc:"Explicit phase string (estimate).")
        $ seed_arg $ max_bdd_nodes_arg $ deadline_arg $ fallback_arg $ sim_backend_arg
        $ cache_arg))

let batch_cmd =
  let jobs_arg =
    let doc =
      "Newline-delimited JSON request file ($(b,-) reads stdin); requests without \
       an id get their line number. Mutually exclusive with positional FILEs."
    in
    Arg.(value & opt (some string) None & info [ "jobs" ] ~docv:"FILE" ~doc)
  in
  let files_pos =
    let doc = "Netlist files; each becomes one request of kind --cmd." in
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let cmd_arg =
    let doc = "Request kind for positional FILEs (estimate, optimize, compare, info)." in
    Arg.(value & opt string "estimate" & info [ "cmd" ] ~docv:"CMD" ~doc)
  in
  let repeat_arg =
    let doc = "Send each request $(docv) times (throughput measurement)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let request_jobs_arg =
    let doc =
      "Intra-request domains per worker of the in-process server (ignored with \
       --socket; the resident server sets its own width via $(b,serve --jobs))."
    in
    Arg.(value & opt int 1 & info [ "request-jobs" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry attempts after the first for requests answered $(b,overloaded) or \
       orphaned by a dropped connection (capped exponential backoff with \
       jitter, honoring the server's retry_after_ms hint). Requires distinct \
       positive request ids (the default numbering provides them); 0 disables."
    in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"K" ~doc)
  in
  let action socket workers request_jobs retries jobs files cmd repeat inline input_prob
      phases seed max_bdd_nodes deadline fallback sim_backend cache =
    guard @@ fun () ->
    let budget =
      budget_of ~max_bdd_nodes ~deadline ~fallback ~sim_backend
        ~reorder:Dpa_power.Engine.default_budget.Dpa_power.Engine.reorder
        ~reorder_passes:Dpa_power.Engine.default_budget.Dpa_power.Engine.reorder_passes
    in
    let with_id i json =
      match Dpa_util.Jsonlite.member_opt "id" json with
      | Some _ -> json
      | None -> (
        match json with
        | Dpa_util.Jsonlite.Obj fields ->
          Dpa_util.Jsonlite.Obj (("id", Dpa_util.Jsonlite.Num (float_of_int i)) :: fields)
        | other -> other)
    in
    let requests =
      match jobs, files with
      | Some _, _ :: _ -> Error "--jobs and positional FILEs are mutually exclusive"
      | None, [] -> Error "nothing to do: pass --jobs FILE or netlist FILEs"
      | Some path, [] ->
        let text = if path = "-" then In_channel.input_all stdin else read_file path in
        let lines =
          String.split_on_char '\n' text
          |> List.filter (fun l -> String.trim l <> "")
        in
        let parse i line =
          match Dpa_util.Jsonlite.parse line with
          | json -> Ok (Dpa_util.Jsonlite.encode (with_id (i + 1) json))
          | exception Dpa_util.Jsonlite.Parse_error msg ->
            Error (Printf.sprintf "jobs line %d: %s" (i + 1) msg)
        in
        List.mapi parse lines
        |> List.fold_left
             (fun acc r ->
               match acc, r with
               | Error e, _ -> Error e
               | Ok _, Error e -> Error e
               | Ok xs, Ok x -> Ok (x :: xs))
             (Ok [])
        |> Result.map List.rev
      | None, files ->
        let rec expand i acc = function
          | [] -> Ok (List.rev acc)
          | path :: rest -> (
            match
              build_request ~id:i ~cmd ~file:(Some path) ~inline ~input_prob ~phases
                ~seed ~budget ~cache
            with
            | Error msg -> Error msg
            | Ok env -> expand (i + 1) (Protocol.request_line env :: acc) rest)
        in
        let repeated =
          List.concat_map (fun f -> List.init repeat (fun _ -> f)) files
        in
        (* ids start at 1: retry correlation needs distinct positive ids *)
        expand 1 [] repeated
    in
    match requests with
    | Error msg -> `Error (false, msg)
    | Ok [] -> `Ok ()
    | Ok lines ->
      let retry =
        if retries <= 0 then None
        else Some { Client.default_retry with Client.max_attempts = retries + 1; seed }
      in
      let run ~socket =
        let t0 = Unix.gettimeofday () in
        let responses = Client.run_batch ?retry ~socket lines in
        (responses, Unix.gettimeofday () -. t0)
      in
      let responses, dt =
        match socket with
        | Some s -> run ~socket:s
        | None ->
          Client.with_self_hosted ~workers
            ~jobs:(max 1 (min 126 request_jobs))
            (fun ~socket -> run ~socket)
      in
      (* responses arrive in completion order; print them in request
         order by correlating on the echoed id *)
      let order = Hashtbl.create 64 in
      List.iteri
        (fun pos line ->
          match Dpa_util.Jsonlite.(member_opt "id" (parse line)) with
          | Some (Dpa_util.Jsonlite.Num f) ->
            let id = int_of_float f in
            Hashtbl.replace order id
              (match Hashtbl.find_opt order id with
              | Some ps -> ps @ [ pos ]
              | None -> [ pos ])
          | _ -> ())
        lines;
      let n = List.length lines in
      let slots = Array.make n None in
      let spill = ref [] in
      List.iter
        (fun line ->
          let id =
            match Protocol.parse_response line with
            | Ok r -> Some r.Protocol.rid
            | Error _ -> None
          in
          let placed =
            match id with
            | None -> false
            | Some id -> (
              match Hashtbl.find_opt order id with
              | Some (pos :: rest) ->
                Hashtbl.replace order id rest;
                slots.(pos) <- Some line;
                true
              | Some [] | None -> false)
          in
          if not placed then spill := line :: !spill)
        responses;
      Array.iter (function Some line -> print_endline line | None -> ()) slots;
      List.iter print_endline (List.rev !spill);
      Printf.eprintf "batch: %d requests in %.3f s (%.1f req/s, workers=%s)\n" n dt
        (float_of_int n /. Float.max dt 1e-9)
        (match socket with Some _ -> "server" | None -> string_of_int workers);
      `Ok ()
  in
  let doc =
    "Stream many requests over one connection (pipelined), print the responses \
     in request order and report aggregate throughput. Without --socket, a \
     private in-process server with --workers domains handles the batch."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      ret
        (const action $ socket_opt_arg $ workers_arg $ request_jobs_arg $ retries_arg
       $ jobs_arg $ files_pos $ cmd_arg $ repeat_arg $ inline_arg $ input_prob_arg
        $ Arg.(
            value
            & opt (some string) None
            & info [ "phases" ] ~docv:"PHASES" ~doc:"Explicit phase string (estimate).")
        $ seed_arg $ max_bdd_nodes_arg $ deadline_arg $ fallback_arg $ sim_backend_arg
        $ cache_arg))

let chaos_cmd =
  let requests_arg =
    let doc = "Requests in the soak batch." in
    Arg.(value & opt int 120 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let garbage_arg =
    let doc = "Garbage probe lines (each must get a structured error back)." in
    Arg.(value & opt int 9 & info [ "garbage" ] ~docv:"N" ~doc)
  in
  let deadline_every_arg =
    let doc = "Attach a tight 50ms deadline budget to every $(docv)th request (0 = never)." in
    Arg.(value & opt int 5 & info [ "deadline-every" ] ~docv:"K" ~doc)
  in
  let chaos_queue_arg =
    let doc = "Job-queue bound (small on purpose, so overload shedding triggers)." in
    Arg.(value & opt int 8 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let chaos_jobs_arg =
    let doc = "Intra-request domains per worker." in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Also write the report JSON to $(docv) (the CI metrics artifact)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let action workers jobs requests garbage deadline_every queue_capacity fault seed out
      trace metrics =
    if workers < 1 then `Error (false, "--workers must be >= 1")
    else if requests < 1 then `Error (false, "--requests must be >= 1")
    else begin
      let faults =
        match fault with
        | None -> Ok None
        | Some spec -> Result.map Option.some (Dpa_util.Fault.parse_config spec)
      in
      match faults with
      | Error msg -> `Error (false, "--fault: " ^ msg)
      | Ok faults ->
        guard @@ fun () ->
        with_obs ~trace ~metrics @@ fun () ->
        let r =
          Dpa_service.Chaos.soak ~seed ~workers ~jobs:(max 1 (min 126 jobs))
            ~queue_capacity ~requests ~deadline_every ~garbage ?faults ()
        in
        let json = Dpa_util.Jsonlite.encode (Dpa_service.Chaos.report_json r) in
        print_endline json;
        (match out with
        | Some path ->
          Out_channel.with_open_text path (fun oc -> output_string oc (json ^ "\n"))
        | None -> ());
        if r.Dpa_service.Chaos.strength < r.Dpa_service.Chaos.workers then
          die
            (Dpa_error.Internal
               (Printf.sprintf "pool not at full strength after soak: %d/%d workers"
                  r.Dpa_service.Chaos.strength r.Dpa_service.Chaos.workers))
        else `Ok ()
    end
  in
  let doc =
    "Chaos soak: run a self-hosted server under injected faults (stalled cones, \
     worker panics, torn frames, dropped connections, stalled flushes) and \
     verify every request is answered exactly once, every garbage probe gets a \
     structured error, and the worker pool ends at full strength. Prints a JSON \
     report; exits non-zero when an invariant fails."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const action $ workers_arg $ chaos_jobs_arg $ requests_arg $ garbage_arg
       $ deadline_every_arg $ chaos_queue_arg $ fault_arg $ seed_arg $ out_arg
       $ trace_arg $ metrics_arg))

(* ---- workload ---- *)

let workload_cmd =
  let module P = Dpa_workload.Profiles in
  let list_profiles () =
    Printf.printf "%-14s %-10s %8s %5s %5s %4s %6s %s\n" "NAME" "FAMILY" "~GATES"
      "PI" "PO" "FF" "PAIRS" "DESCRIPTION";
    List.iter
      (fun name ->
        match P.find name with
        | None -> ()
        | Some p ->
          let n_pi, n_po, n_ffs = P.interface p in
          Printf.printf "%-14s %-10s %8d %5d %5d %4d %6s %s\n" p.P.name
            (P.family_name p.P.family) p.P.scale n_pi n_po n_ffs
            (match p.P.pair_limit with Some n -> string_of_int n | None -> "all")
            p.P.description)
      P.names
  in
  let emit name format out =
    match P.find name with
    | None ->
      `Error
        ( false,
          Printf.sprintf "unknown profile %S (available: %s)" name
            (String.concat ", " P.names) )
    | Some p ->
      let text =
        match P.build p, format with
        | P.Comb net, `Blif -> Ok (Dpa_logic.Blif.to_string net)
        | P.Comb net, `Dln -> Ok (Dpa_logic.Io.to_string net)
        | P.Seq sn, `Blif ->
          Ok
            (Dpa_logic.Blif.sequential_to_string
               {
                 Dpa_logic.Blif.comb = Dpa_seq.Seq_netlist.comb sn;
                 n_real_inputs = Dpa_seq.Seq_netlist.n_real_inputs sn;
                 latches =
                   Array.map
                     (fun ff ->
                       {
                         Dpa_logic.Blif.data = ff.Dpa_seq.Seq_netlist.data;
                         init = ff.Dpa_seq.Seq_netlist.init;
                       })
                     (Dpa_seq.Seq_netlist.ffs sn);
               })
        | P.Seq _, `Dln ->
          Error
            (Printf.sprintf
               "profile %S is sequential; the .dln format is combinational-only \
                (use --format blif)"
               name)
      in
      (match text with
      | Error msg -> `Error (false, msg)
      | Ok text ->
        (match out with
        | None -> print_string text
        | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text));
        `Ok ())
  in
  let action emit_name format out =
    match emit_name with
    | None ->
      list_profiles ();
      `Ok ()
    | Some name -> emit name format out
  in
  let emit_arg =
    let doc = "Emit profile $(docv) as a netlist instead of listing." in
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"NAME" ~doc)
  in
  let format_arg =
    let doc = "Emit format: $(b,blif) (default; the only one carrying latches) or $(b,dln)." in
    Arg.(
      value
      & opt (enum [ ("blif", `Blif); ("dln", `Dln) ]) `Blif
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out_arg =
    let doc = "Write the emitted netlist to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "List workload profiles (tables + corpus) or emit one as BLIF/.dln for use \
     with validate/serve/submit."
  in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(ret (const action $ emit_arg $ format_arg $ out_arg))

(* ---- corpus ---- *)

let corpus_cmd =
  let module C = Dpa_workload.Corpus in
  (* override flags are Option-valued here (unlike the estimate/run budget
     flags) so "flag absent" leaves the per-spec manifest budget alone *)
  let fallback_opt_arg =
    let doc = "Override every spec's budget fallback policy (none|reorder|sim)." in
    let fb_conv =
      Arg.conv
        ( (fun s ->
            match Dpa_power.Engine.fallback_of_string s with
            | Some f -> Ok f
            | None ->
              Error (`Msg (Printf.sprintf "invalid fallback %S (none|reorder|sim)" s))),
          fun fmt f ->
            Format.pp_print_string fmt (Dpa_power.Engine.fallback_to_string f) )
    in
    Arg.(value & opt (some fb_conv) None & info [ "fallback" ] ~docv:"POLICY" ~doc)
  in
  let reorder_opt_arg =
    let doc = "Override every spec's reorder-rung strategy (sift|rebuild)." in
    Arg.(value & opt (some reorder_conv) None & info [ "reorder" ] ~docv:"STRATEGY" ~doc)
  in
  let sim_backend_opt_arg =
    let doc = "Override the Monte-Carlo backend used by budgeted specs (interp|compiled)." in
    let sb_conv =
      Arg.conv
        ( (fun s ->
            match Dpa_sim.Backend.of_string s with
            | Some b -> Ok b
            | None ->
              Error (`Msg (Printf.sprintf "invalid sim backend %S (interp|compiled)" s))),
          fun fmt b -> Format.pp_print_string fmt (Dpa_sim.Backend.to_string b) )
    in
    Arg.(value & opt (some sb_conv) None & info [ "sim-backend" ] ~docv:"BACKEND" ~doc)
  in
  let manifest_arg =
    let doc = "Manifest to sweep: $(b,full) (default) or $(b,smoke) (CI-size)." in
    Arg.(value & opt string "full" & info [ "manifest" ] ~docv:"NAME" ~doc)
  in
  let only_arg =
    let doc = "Restrict the sweep to circuit $(docv) from the manifest." in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAME" ~doc)
  in
  let update_arg =
    let doc = "Rewrite the stored baselines from this run instead of diffing against them." in
    Arg.(value & flag & info [ "update-baselines" ] ~doc)
  in
  let baseline_dir_arg =
    let doc = "Directory of per-circuit baseline JSON files." in
    Arg.(value & opt string "data/baselines" & info [ "baseline-dir" ] ~docv:"DIR" ~doc)
  in
  let out_arg =
    let doc = "Write the per-circuit bench report to $(docv)." in
    Arg.(value & opt string "BENCH_corpus.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let perf_slack_arg =
    let doc =
      "Fail when a circuit's wall time exceeds $(docv)x its baseline; 0 \
       disables the perf check (quality checks are always exact)."
    in
    Arg.(value & opt float 10.0 & info [ "perf-slack" ] ~docv:"X" ~doc)
  in
  let action manifest only update baseline_dir out perf_slack max_bdd_nodes deadline
      fallback reorder sim_backend jobs trace metrics =
    guard @@ fun () ->
    match C.manifest_of_string manifest with
    | None ->
      prerr_endline (Printf.sprintf "unknown manifest %S (full|smoke)" manifest);
      exit 64
    | Some m ->
      let specs =
        match only with
        | None -> m.C.specs
        | Some name -> (
          match C.find_spec m name with
          | Some s -> [ s ]
          | None ->
            prerr_endline
              (Printf.sprintf "circuit %S is not in manifest %S (has: %s)" name m.C.name
                 (String.concat ", "
                    (List.map (fun s -> s.C.profile.Dpa_workload.Profiles.name) m.C.specs)));
            exit 64)
      in
      let jobs_n =
        max 1 (min 126 (match jobs with Some j -> j | None -> Dpa_util.Par.default_jobs ()))
      in
      with_obs ~trace ~metrics @@ fun () ->
      with_par ~jobs @@ fun pool ->
      let problems = ref [] in
      let outcomes =
        List.map
          (fun spec ->
            let name = spec.C.profile.Dpa_workload.Profiles.name in
            let budget =
              C.merge_budget spec ~max_bdd_nodes ~deadline_s:deadline ~fallback
                ~sim_backend ~reorder
            in
            let o = C.run_spec ~par:pool ?budget spec in
            Printf.printf
              "%-14s %6d gates  MA %8.2f  MP %8.2f  (%+5.1f%% power, %+5.1f%% area)  \
               [%s] %.2fs\n\
               %!"
              o.C.name o.C.gates o.C.ma_power o.C.mp_power o.C.power_saving_pct
              o.C.area_penalty_pct o.C.ladder o.C.runtime_s;
            if update then C.write_baseline ~dir:baseline_dir o
            else begin
              match C.read_baseline ~dir:baseline_dir name with
              | None ->
                problems :=
                  (name, [ "no stored baseline (run corpus --update-baselines)" ])
                  :: !problems
              | Some expected -> (
                match C.diff ~perf_slack ~expected ~actual:o () with
                | [] -> ()
                | ds -> problems := (name, ds) :: !problems)
            end;
            o)
          specs
      in
      let oc = open_out out in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (C.bench_json ~manifest:m.C.name ~jobs:jobs_n outcomes);
          output_char oc '\n');
      (match !problems with
      | [] ->
        if not update then
          Printf.printf "corpus: %d circuits clean against %s\n" (List.length outcomes)
            baseline_dir
      | ps ->
        List.iter
          (fun (name, ds) ->
            List.iter (fun d -> Printf.eprintf "REGRESSION %s: %s\n" name d) ds)
          (List.rev ps);
        Printf.eprintf "corpus: %d/%d circuits regressed\n" (List.length ps)
          (List.length outcomes);
        exit 65)
  in
  let doc =
    "Sweep a corpus manifest through the MA-vs-MP flows and diff every circuit \
     against its stored baseline (non-zero exit on regression)."
  in
  Cmd.v (Cmd.info "corpus" ~doc)
    Term.(
      const action $ manifest_arg $ only_arg $ update_arg $ baseline_dir_arg $ out_arg
      $ perf_slack_arg $ max_bdd_nodes_arg $ deadline_arg $ fallback_opt_arg
      $ reorder_opt_arg $ sim_backend_opt_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* ---- tables ---- *)

let table_cmd name doc profiles timed =
  let csv_arg =
    let d = "Emit machine-readable CSV instead of the formatted table." in
    Arg.(value & flag & info [ "csv" ] ~doc:d)
  in
  let action csv jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_par ~jobs @@ fun pool ->
    let rows =
      List.map
        (fun p ->
          let net = Dpa_workload.Profiles.build_comb p in
          let config =
            { Flow.default_config with
              Flow.pair_limit = p.Dpa_workload.Profiles.pair_limit;
              timing = (if timed then Some Flow.default_timing else None);
              par = Some pool }
          in
          (p.Dpa_workload.Profiles.description, Flow.compare_ma_mp ~config net))
        profiles
    in
    if csv then print_string (Dpa_core.Report.csv rows)
    else print_string (Dpa_core.Report.table ~title:(String.uppercase_ascii name ^ ":") rows)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ csv_arg $ jobs_arg $ trace_arg $ metrics_arg)

let table1_cmd =
  table_cmd "table1" "Reproduce Table 1 (untimed synthesis, input probability 0.5)."
    Dpa_workload.Profiles.table1 false

let table2_cmd =
  table_cmd "table2" "Reproduce Table 2 (timed synthesis with resizing)."
    Dpa_workload.Profiles.table2 true

(* ---- main ---- *)

let () =
  let doc = "automated phase assignment for low power domino circuits" in
  let info = Cmd.info "dominoflow" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ run_cmd; estimate_cmd; validate_cmd; generate_cmd; info_cmd; equiv_cmd;
         mfvs_cmd; workload_cmd; corpus_cmd; table1_cmd; table2_cmd; serve_cmd;
         submit_cmd; batch_cmd; chaos_cmd ]))
