(* The paper's headline experiment, end to end, on one circuit:

     dune exec examples/control_block_flow.exe -- [profile] [--timed]

   Generates the named benchmark profile (default apex7; see
   Dpa_workload.Profiles for the Table 1 set), runs both the minimum-area
   and the minimum-power flows, and prints a paper-style comparison row
   plus the timing story when --timed is given. *)

module Flow = Dpa_core.Flow
module Profiles = Dpa_workload.Profiles

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let timed = List.mem "--timed" args in
  let name =
    match List.filter (fun a -> a <> "--timed") args with
    | [] -> "apex7"
    | n :: _ -> n
  in
  match Profiles.find name with
  | None ->
    Printf.eprintf "unknown profile %S; available: %s\n" name
      (String.concat ", " Profiles.names);
    exit 1
  | Some profile when Profiles.is_sequential profile ->
    Printf.eprintf "profile %S is sequential; use `dominoflow corpus`\n" name;
    exit 1
  | Some profile ->
    let net = Profiles.build_comb profile in
    Printf.printf "profile %s (%s): %d PIs, %d POs, %d gates generated\n%!" name
      profile.Profiles.description
      (Dpa_logic.Netlist.num_inputs net)
      (Dpa_logic.Netlist.num_outputs net)
      (Dpa_logic.Netlist.gate_count net);
    let config =
      { Flow.default_config with
        Flow.pair_limit = profile.Profiles.pair_limit;
        timing = (if timed then Some Flow.default_timing else None) }
    in
    let r = Flow.compare_ma_mp ~config net in
    print_newline ();
    print_string (Dpa_core.Report.table ~title:"MA vs MP:" [ (profile.Profiles.description, r) ]);
    print_newline ();
    print_endline (Dpa_core.Report.summary r);
    if timed then
      match r.Flow.clock with
      | Some clock ->
        Printf.printf
          "\nclock constraint %.2f delay units: MA closes at %.2f (%s), MP at %.2f (%s)\n"
          clock r.Flow.ma.Flow.critical_delay
          (if r.Flow.ma.Flow.met then "met" else "VIOLATED")
          r.Flow.mp.Flow.critical_delay
          (if r.Flow.mp.Flow.met then "met" else "VIOLATED")
      | None -> ()
