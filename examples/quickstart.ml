(* Quickstart: the full low-power domino synthesis pipeline on a small
   hand-written circuit.

     dune exec examples/quickstart.exe

   Steps mirror the paper's flow (Fig. 6): parse → technology-independent
   optimization → phase assignment (min-area vs min-power) → inverter
   removal → domino mapping → power estimation → simulation cross-check. *)

module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase

(* A 6-input arbiter-ish control block, in the .dln netlist format. *)
let source = {|
.model quickstart
.inputs req0 req1 req2 lock sel clear
# request aggregation
any  = or req0 req1 req2
all  = and req0 req1 req2
# lock and clear gating, with inverters a static-CMOS synthesizer leaves
nclr = not clear
gnt  = and any nclr
hold = and lock nclr
busy = or gnt hold
# outputs: one naturally high-probability, one low
stall = and busy sel
free  = not busy
.outputs stall free busy
.end
|}

let () =
  (* 1. parse and optimize *)
  let raw = Dpa_logic.Io.parse_exn source in
  let net = Dpa_synth.Opt.optimize raw in
  Printf.printf "circuit %s: %d inputs, %d outputs, %d gates after optimization\n\n"
    (Netlist.name net) (Netlist.num_inputs net) (Netlist.num_outputs net)
    (Netlist.gate_count net);

  (* 2. input statistics for a busy system: requests and selects are
     usually asserted, clears are rare — the regime where internal signal
     probabilities run high and phase choice matters most *)
  let input_probs =
    Array.map
      (fun id ->
        match Netlist.node_name net id with
        | Some "clear" -> 0.1
        | Some "lock" -> 0.8
        | Some _ | None -> 0.9)
      (Netlist.inputs net)
  in

  (* 3. minimum-area baseline (the Puri-style "MA" flow) *)
  let ma = Dpa_synth.Min_area.best net in
  let ma_mapped = Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net ma) in
  let ma_power = Dpa_power.Estimate.of_mapped ~input_probs ma_mapped in
  Printf.printf "minimum-area phases  %s: %2d cells, power %.4f\n" (Phase.to_string ma)
    (Dpa_domino.Mapped.size ma_mapped) ma_power.Dpa_power.Estimate.total;

  (* 4. minimum-power phases (the paper's "MP" flow) *)
  let config = Dpa_phase.Optimizer.default_config ~input_probs in
  let mp = Dpa_phase.Optimizer.minimize_power config net in
  let mp_mapped =
    Dpa_domino.Mapped.map
      (Dpa_synth.Inverterless.realize net mp.Dpa_phase.Optimizer.assignment)
  in
  let mp_power = Dpa_power.Estimate.of_mapped ~input_probs mp_mapped in
  Printf.printf "minimum-power phases %s: %2d cells, power %.4f (%s, %d measurements)\n"
    (Phase.to_string mp.Dpa_phase.Optimizer.assignment)
    (Dpa_domino.Mapped.size mp_mapped) mp_power.Dpa_power.Estimate.total
    mp.Dpa_phase.Optimizer.strategy_used mp.Dpa_phase.Optimizer.measurements;
  Printf.printf "power saving %.1f%% for %+d cells\n\n"
    (Dpa_util.Stats.percent_change ~from:ma_power.Dpa_power.Estimate.total
       ~to_:mp_power.Dpa_power.Estimate.total)
    (Dpa_domino.Mapped.size mp_mapped - Dpa_domino.Mapped.size ma_mapped);

  (* 5. per-output phase detail *)
  Array.iteri
    (fun k (po, _) ->
      Printf.printf "  output %-5s  area-phase %c  power-phase %c\n" po
        (Phase.to_string ma).[k]
        (Phase.to_string mp.Dpa_phase.Optimizer.assignment).[k])
    (Netlist.outputs net);

  (* 6. cross-check the estimate with the cycle-accurate simulator *)
  let rng = Dpa_util.Rng.create 2024 in
  let meas =
    Dpa_power.Estimate.of_activity mp_mapped
      (Dpa_sim.Simulator.measure ~cycles:20_000 rng ~input_probs mp_mapped)
  in
  Printf.printf
    "\nsimulated power over 20k cycles: %.4f (estimator said %.4f, error %.2f%%)\n"
    meas.Dpa_power.Estimate.total mp_power.Dpa_power.Estimate.total
    (Dpa_util.Stats.relative_error ~expected:mp_power.Dpa_power.Estimate.total
       ~actual:meas.Dpa_power.Estimate.total
    *. 100.0);

  (* 7. functional equivalence spot-check *)
  let equivalent = ref true in
  for m = 0 to 63 do
    let vec = Array.init 6 (fun k -> (m lsr k) land 1 = 1) in
    if Dpa_logic.Eval.outputs raw vec <> Dpa_domino.Mapped.eval_original_outputs mp_mapped vec
    then equivalent := false
  done;
  Printf.printf "domino block is functionally equivalent to the spec: %b\n" !equivalent
