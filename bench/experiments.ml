(* Regeneration of every table and figure of the paper (see DESIGN.md §4
   and EXPERIMENTS.md for the paper-vs-measured record). Each experiment
   prints the same rows/series the paper reports. *)

module Table = Dpa_util.Table
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Inverterless = Dpa_synth.Inverterless
module Mapped = Dpa_domino.Mapped
module Estimate = Dpa_power.Estimate
module Flow = Dpa_core.Flow

let section title =
  Printf.printf "\n=== %s ===\n\n" title

(* ------------------------------------------------------------------ *)
(* Figure 2: switching vs signal probability                           *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Figure 2 — switching probability vs signal probability";
  let t =
    Table.create
      ~columns:
        [ ("signal p", Table.Right);
          ("domino S = p", Table.Right);
          ("static S = 2p(1-p)", Table.Right) ]
  in
  List.iter
    (fun (p, dom, sta) ->
      Table.add_row t
        [ Table.cell_float p; Table.cell_float ~decimals:3 dom;
          Table.cell_float ~decimals:3 sta ])
    (Dpa_power.Model.fig2_points ~steps:11 ());
  Table.print t;
  print_endline
    "Domino switching rises linearly with signal probability (Property 2.1);\n\
     static CMOS peaks at p = 1/2. The asymmetry above p = 1/2 is what phase\n\
     assignment exploits."

(* ------------------------------------------------------------------ *)
(* Figures 3 & 4: inverter removal and duplication per assignment      *)
(* ------------------------------------------------------------------ *)

let fig3_4 () =
  section "Figures 3–4 — inverter removal and phase-dependent duplication";
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let t =
    Table.create
      ~columns:
        [ ("phases f,g", Table.Left);
          ("domino gates", Table.Right);
          ("duplicated", Table.Right);
          ("input invs", Table.Right);
          ("output invs", Table.Right);
          ("area", Table.Right) ]
  in
  Seq.iter
    (fun a ->
      let s = Inverterless.stats (Inverterless.realize net a) in
      Table.add_row t
        [ Phase.to_string a;
          Table.cell_int s.Inverterless.domino_gates;
          Table.cell_int s.Inverterless.duplicated_nodes;
          Table.cell_int s.Inverterless.input_inverters;
          Table.cell_int s.Inverterless.output_inverters;
          Table.cell_int s.Inverterless.area ])
    (Phase.enumerate ~num_outputs:2);
  Table.print t;
  print_endline
    "Every realization is inverter-free inside the block; conflicting phases\n\
     duplicate shared logic (the trapped-inverter penalty of Fig. 4)."

(* ------------------------------------------------------------------ *)
(* Figure 5: the exact worked power numbers                            *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5 — switching of two phase assignments (input p = 0.9)";
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let probs = Array.make 4 0.9 in
  let report name assignment paper_domino paper_in paper_out =
    let mapped = Mapped.map (Inverterless.realize net assignment) in
    let r = Estimate.of_mapped ~input_probs:probs mapped in
    Printf.printf "%s (phases %s):\n" name (Phase.to_string assignment);
    Printf.printf "  domino block        %8.4f   (paper: %s)\n"
      r.Estimate.domino_switching paper_domino;
    Printf.printf "  input inverters     %8.4f   (paper: %s)\n"
      r.Estimate.input_inverter_power paper_in;
    Printf.printf "  output inverters    %8.4f   (paper: %s)\n"
      r.Estimate.output_inverter_power paper_out;
    Printf.printf "  TOTAL SWITCHING     %8.4f\n\n" r.Estimate.total;
    r.Estimate.total
  in
  let t1 = report "Realization 1" [| Phase.Negative; Phase.Positive |] "3.6" "0.0" ".8019" in
  let t2 = report "Realization 2" [| Phase.Positive; Phase.Negative |] ".40" ".72" ".0019" in
  Printf.printf "Realization 2 has %.1f%% fewer transitions (paper: 75%%).\n"
    ((t1 -. t2) /. t1 *. 100.0)

(* ------------------------------------------------------------------ *)
(* Figure 6: the measure-and-commit optimization loop, traced          *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Figure 6 — power minimization loop trace (greedy pairwise search)";
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 42;
      n_inputs = 24;
      n_outputs = 6;
      gates_per_output = 10;
      and_bias = 0.35;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let measure = Dpa_phase.Measure.create ~input_probs:probs net in
  let cost = Dpa_phase.Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let r = Dpa_phase.Greedy.run measure ~cost ~base_probs:base in
  Printf.printf "initial power %.3f (all positive)\n" r.Dpa_phase.Greedy.initial_power;
  List.iteri
    (fun k step ->
      let (i, j) = step.Dpa_phase.Greedy.pair in
      let action = function Dpa_phase.Cost.Retain -> '+' | Dpa_phase.Cost.Invert -> '-' in
      let ai, aj = step.Dpa_phase.Greedy.actions in
      match step.Dpa_phase.Greedy.measured_power with
      | None ->
        Printf.printf "  step %2d: pair (%d,%d) %c%c  K=%7.2f  retained, no synthesis\n" k i j
          (action ai) (action aj) step.Dpa_phase.Greedy.predicted_cost
      | Some p ->
        Printf.printf "  step %2d: pair (%d,%d) %c%c  K=%7.2f  measured %.3f  %s\n" k i j
          (action ai) (action aj) step.Dpa_phase.Greedy.predicted_cost p
          (if step.Dpa_phase.Greedy.committed then "COMMIT" else "reject"))
    r.Dpa_phase.Greedy.steps;
  Printf.printf "final power %.3f with phases %s (%d commits)\n" r.Dpa_phase.Greedy.power
    (Phase.to_string r.Dpa_phase.Greedy.assignment)
    r.Dpa_phase.Greedy.commits

(* ------------------------------------------------------------------ *)
(* Figure 7: partitioning a sequential circuit                         *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Figure 7 — sequential partitioning: fewer pseudo-inputs is better";
  let sn = Dpa_workload.Examples.fig7_sequential () in
  let n_ffs = Dpa_seq.Seq_netlist.n_ffs sn in
  let ideal = Dpa_seq.Partition.probabilities ~input_probs:[| 0.5 |] sn in
  Printf.printf "circuit: %d flip-flops, two coupled loops\n" n_ffs;
  Printf.printf "naive partition: cut every flip-flop -> %d pseudo-inputs at p=0.5\n" n_ffs;
  Printf.printf "MFVS partition:  cut {%s} -> %d pseudo-input(s)\n"
    (String.concat "," (List.map string_of_int ideal.Dpa_seq.Partition.fvs))
    (List.length ideal.Dpa_seq.Partition.fvs);
  (* compare against long-run simulation *)
  let rng = Dpa_util.Rng.create 7 in
  let cycles = 50_000 in
  let vectors =
    Array.init cycles (fun _ -> [| Dpa_util.Rng.bernoulli rng 0.5 |])
  in
  let core = Dpa_seq.Seq_netlist.comb sn in
  let state = Array.map (fun ff -> ff.Dpa_seq.Seq_netlist.init) (Dpa_seq.Seq_netlist.ffs sn) in
  let hits = Array.make n_ffs 0 in
  Array.iter
    (fun vec ->
      let values = Dpa_logic.Eval.all_nodes core (Array.append vec state) in
      Array.iteri
        (fun k ff -> state.(k) <- values.(ff.Dpa_seq.Seq_netlist.data))
        (Dpa_seq.Seq_netlist.ffs sn);
      Array.iteri (fun k q -> if q then hits.(k) <- hits.(k) + 1) state)
    vectors;
  let t =
    Table.create
      ~columns:
        [ ("flip-flop", Table.Left); ("estimated P(Q)", Table.Right);
          ("simulated P(Q)", Table.Right); ("cut?", Table.Left) ]
  in
  Array.iteri
    (fun k est ->
      Table.add_row t
        [ Printf.sprintf "ff%d" k;
          Table.cell_float ~decimals:3 est;
          Table.cell_float ~decimals:3 (float_of_int hits.(k) /. float_of_int cycles);
          (if List.mem k ideal.Dpa_seq.Partition.fvs then "cut (p=0.5 assumed)" else "") ])
    ideal.Dpa_seq.Partition.ff_probs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 8: the classical s-graph reductions                          *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Figure 8 — classical MFVS reductions on the s-graph";
  (* (a) sink/source removal *)
  let g = Dpa_seq.Sgraph.create 3 in
  Dpa_seq.Sgraph.add_edge g 0 1;
  Dpa_seq.Sgraph.add_edge g 1 2;
  let forced = Dpa_seq.Mfvs.reduce g in
  Printf.printf "(a) chain 0->1->2 (no cycles): reduced away, forced = {%s}, alive = %d\n"
    (String.concat "," (List.map string_of_int forced))
    (List.length (Dpa_seq.Sgraph.alive_vertices g));
  (* (b) self loop forces membership *)
  let g = Dpa_seq.Sgraph.create 2 in
  Dpa_seq.Sgraph.add_edge g 0 0;
  Dpa_seq.Sgraph.add_edge g 0 1;
  Dpa_seq.Sgraph.add_edge g 1 0;
  let forced = Dpa_seq.Mfvs.reduce g in
  Printf.printf "(b) self-loop on 0: forced = {%s}\n"
    (String.concat "," (List.map string_of_int forced));
  (* (c) unit degree bypass *)
  let g = Dpa_seq.Sgraph.create 3 in
  Dpa_seq.Sgraph.add_edge g 0 1;
  Dpa_seq.Sgraph.add_edge g 1 2;
  Dpa_seq.Sgraph.add_edge g 2 0;
  let forced = Dpa_seq.Mfvs.reduce g in
  Printf.printf "(c) 3-cycle: unit-degree bypasses collapse it, forced = {%s} (1 vertex)\n"
    (String.concat "," (List.map string_of_int forced))

(* ------------------------------------------------------------------ *)
(* Figure 9: the symmetry-based supervertex transformation             *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Figure 9 — symmetry supervertex transformation";
  let g = Dpa_workload.Examples.fig9_sgraph () in
  print_endline "s-graph: {A,B,E} <-> {C,D} complete bipartite (strongly connected)";
  let g' = Dpa_seq.Sgraph.copy g in
  let forced = Dpa_seq.Mfvs.reduce g' in
  Printf.printf "classical reductions alone: forced = {%s}, %d vertices remain\n"
    (String.concat "," (List.map string_of_int forced))
    (List.length (Dpa_seq.Sgraph.alive_vertices g'));
  let groups = Dpa_seq.Mfvs.symmetrize g' in
  List.iter
    (fun members ->
      Printf.printf "supervertex {%s} weight %d\n"
        (String.concat ","
           (List.map (fun v -> String.make 1 "ABCDE".[v]) (List.sort compare members)))
        (List.length members))
    groups;
  let r = Dpa_seq.Mfvs.solve g in
  Printf.printf "FVS with symmetry: {%s} (weight %d) — ABE is bypassed, CD absorbs the loop\n"
    (String.concat "," (List.map (fun v -> String.make 1 "ABCDE".[v]) r.Dpa_seq.Mfvs.fvs))
    (List.length r.Dpa_seq.Mfvs.fvs);
  let r' = Dpa_seq.Mfvs.solve ~symmetry:false g in
  Printf.printf "FVS without symmetry: {%s} (weight %d)\n"
    (String.concat "," (List.map (fun v -> String.make 1 "ABCDE".[v]) r'.Dpa_seq.Mfvs.fvs))
    (List.length r'.Dpa_seq.Mfvs.fvs)

(* ------------------------------------------------------------------ *)
(* Figure 10: BDD variable ordering                                    *)
(* ------------------------------------------------------------------ *)

let order_names net =
  [ ("reverse topological (paper)", Dpa_bdd.Ordering.reverse_topological net);
    ("topological", Dpa_bdd.Ordering.topological net);
    ("disturbed grouping", Dpa_bdd.Ordering.disturbed net);
    ("declaration", Dpa_bdd.Ordering.declaration net) ]

let fig10 () =
  section "Figure 10 — BDD variable ordering on P = x1x2x3, Q = x3x4, R = P+Q+x5";
  let net = Dpa_workload.Examples.fig10 () in
  let t =
    Table.create
      ~columns:
        [ ("ordering", Table.Left); ("variables (top..bottom)", Table.Left);
          ("BDD nodes", Table.Right); ("paper", Table.Right) ]
  in
  let paper = [ "7"; "11"; "9"; "-" ] in
  List.iter2
    (fun (name, order) paper_nodes ->
      let b = Dpa_bdd.Build.of_netlist ~order net in
      let vars =
        String.concat ","
          (Array.to_list (Array.map (fun pos -> Printf.sprintf "x%d" (pos + 1)) order))
      in
      Table.add_row t
        [ name; vars;
          Table.cell_int (Dpa_bdd.Build.shared_output_size net b); paper_nodes ])
    (order_names net) paper;
  Table.print t;
  print_endline
    "(The paper draws 9 nodes for the disturbed order; the fully shared ROBDD\n\
     of the reconstructed circuit needs 8 — the ranking, which is the claim,\n\
     is identical.)";
  (* the heuristic at scale: generated control blocks *)
  Printf.printf "\nGenerated control blocks (shared BDD nodes over all gates):\n";
  let t2 =
    Table.create
      ~columns:
        [ ("circuit", Table.Left); ("reverse topo", Table.Right); ("topological", Table.Right);
          ("disturbed", Table.Right); ("declaration", Table.Right); ("random", Table.Right) ]
  in
  let bench_net seed =
    Dpa_synth.Opt.optimize
      (Dpa_workload.Generator.combinational
         { Dpa_workload.Generator.default with
           Dpa_workload.Generator.seed;
           n_inputs = 36;
           n_outputs = 9;
           gates_per_output = 12;
           support = 10 })
  in
  List.iter
    (fun seed ->
      let net = bench_net seed in
      let size order = Dpa_bdd.Build.shared_all_size net (Dpa_bdd.Build.of_netlist ~order net) in
      let rng = Dpa_util.Rng.create (seed * 7) in
      Table.add_row t2
        [ Printf.sprintf "ctrl-%d" seed;
          Table.cell_int (size (Dpa_bdd.Ordering.reverse_topological net));
          Table.cell_int (size (Dpa_bdd.Ordering.topological net));
          Table.cell_int (size (Dpa_bdd.Ordering.disturbed net));
          Table.cell_int (size (Dpa_bdd.Ordering.declaration net));
          Table.cell_int (size (Dpa_bdd.Ordering.shuffled rng net)) ])
    [ 1; 2; 3; 4; 5 ];
  Table.print t2;
  (* refinement headroom over the paper's heuristic *)
  let net = bench_net 1 in
  let seed_order = Dpa_bdd.Ordering.reverse_topological net in
  let refined = Dpa_bdd.Reorder.refine net seed_order in
  Printf.printf
    "\nAdjacent-swap refinement of the paper's order on ctrl-1: %d -> %d nodes \
     (%d swaps, %d passes)\n"
    refined.Dpa_bdd.Reorder.initial_nodes refined.Dpa_bdd.Reorder.nodes
    refined.Dpa_bdd.Reorder.swaps_accepted refined.Dpa_bdd.Reorder.passes

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2                                                      *)
(* ------------------------------------------------------------------ *)

let run_profiles ~timed profiles =
  List.map
    (fun p ->
      let net = Dpa_workload.Profiles.build_comb p in
      let config =
        { Flow.default_config with
          Flow.pair_limit = p.Dpa_workload.Profiles.pair_limit;
          timing = (if timed then Some Flow.default_timing else None) }
      in
      (p.Dpa_workload.Profiles.description, Flow.compare_ma_mp ~config net))
    profiles

let paper_table1 =
  [ ("Industry 1", 1849, 12.47, 1970, 9.65, 6.5, 22.6);
    ("Industry 2", 2272, 13.74, 2348, 14.13, 3.3, -2.8);
    ("Industry 3", 1589, 11.77, 1699, 8.56, 6.9, 27.3);
    ("apex7", 394, 3.71, 443, 2.98, 12.4, 19.5);
    ("frg1", 98, 1.30, 145, 0.86, 48.0, 34.1);
    ("x1", 404, 2.57, 421, 2.34, 4.2, 8.9);
    ("x3", 1372, 7.49, 1390, 6.25, 1.3, 16.6) ]

let paper_table2 =
  [ ("apex7", 452, 3.72, 485, 3.04, 7.3, 18.3);
    ("frg1", 98, 3.20, 147, 1.91, 50.0, 40.3);
    ("x1", 406, 7.67, 433, 6.10, 6.7, 20.5);
    ("x3", 2005, 70.13, 1601, 26.61, -20.0, 62.0) ]

let print_paper_reference title rows avg_pen avg_sav =
  Printf.printf "\nPaper reference (%s):\n" title;
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("MA Size", Table.Right); ("MA Pwr", Table.Right);
          ("MP Size", Table.Right); ("MP Pwr", Table.Right);
          ("% Area Pen.", Table.Right); ("% Pwr Sav.", Table.Right) ]
  in
  List.iter
    (fun (name, mas, map_, mps, mpp, pen, sav) ->
      Table.add_row t
        [ name; Table.cell_int mas; Table.cell_float map_; Table.cell_int mps;
          Table.cell_float mpp; Table.cell_float ~decimals:1 pen;
          Table.cell_float ~decimals:1 sav ])
    rows;
  Table.add_separator t;
  Table.add_row t
    [ "Average"; ""; ""; ""; ""; Table.cell_float ~decimals:1 avg_pen;
      Table.cell_float ~decimals:1 avg_sav ];
  Table.print t

let table1 () =
  section "Table 1 — synthesis at input signal probability 0.5";
  let rows = run_profiles ~timed:false Dpa_workload.Profiles.table1 in
  print_string (Dpa_core.Report.table ~title:"Measured (this reproduction):" rows);
  print_paper_reference "Table 1" paper_table1 11.8 18.0;
  print_endline
    "Power units differ (ours are switched capacitance units, the paper's are\n\
     mA from PowerMill); the comparison targets are the savings/penalty\n\
     percentages and their distribution across circuits."

let table1_probs () =
  section
    "Table 1 sensitivity — the paper: \"different signal probabilities yielded \
     similar results\"";
  let t =
    Table.create
      ~columns:
        [ ("input p", Table.Right); ("avg % area pen.", Table.Right);
          ("avg % pwr sav.", Table.Right); ("min sav.", Table.Right);
          ("max sav.", Table.Right) ]
  in
  List.iter
    (fun p ->
      let rows =
        List.map
          (fun prof ->
            let net =
              Dpa_workload.Profiles.build_comb prof
            in
            let config =
              { Flow.default_config with
                Flow.input_prob = p;
                pair_limit = prof.Dpa_workload.Profiles.pair_limit }
            in
            Flow.compare_ma_mp ~config net)
          Dpa_workload.Profiles.table2
        (* the public-domain subset keeps the sweep quick *)
      in
      let savs = List.map (fun r -> r.Flow.power_saving_pct) rows in
      let pens = List.map (fun r -> r.Flow.area_penalty_pct) rows in
      Table.add_row t
        [ Table.cell_float ~decimals:2 p;
          Table.cell_float ~decimals:1 (Dpa_util.Stats.mean pens);
          Table.cell_float ~decimals:1 (Dpa_util.Stats.mean savs);
          Table.cell_float ~decimals:1 (List.fold_left Float.min infinity savs);
          Table.cell_float ~decimals:1 (List.fold_left Float.max neg_infinity savs) ])
    [ 0.3; 0.4; 0.5; 0.6; 0.7 ];
  Table.print t;
  print_endline
    "(Public-domain subset: apex7, frg1, x1, x3.) The minimum-power phase\n\
     assignment keeps winning across the input-statistics sweep, matching the\n\
     paper's parenthetical claim for Table 1."

let table2 () =
  section "Table 2 — timed synthesis (resizing to meet the clock), input p = 0.5";
  let rows = run_profiles ~timed:true Dpa_workload.Profiles.table2 in
  print_string (Dpa_core.Report.table ~title:"Measured (this reproduction):" rows);
  List.iter
    (fun (_, r) ->
      Printf.printf "  %s: clock %.2f, MA %s (delay %.2f), MP %s (delay %.2f)\n"
        r.Flow.circuit
        (match r.Flow.clock with Some c -> c | None -> nan)
        (if r.Flow.ma.Flow.met then "met" else "VIOLATED")
        r.Flow.ma.Flow.critical_delay
        (if r.Flow.mp.Flow.met then "met" else "VIOLATED")
        r.Flow.mp.Flow.critical_delay)
    rows;
  print_paper_reference "Table 2" paper_table2 8.6 35.3

(* ------------------------------------------------------------------ *)
(* Case study: structured circuits (decode / arbitrate / add) — the     *)
(* workloads the paper's introduction motivates domino with             *)
(* ------------------------------------------------------------------ *)

let casestudy () =
  section "Case study — structured circuits through the flow (input p = 0.5)";
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("#PIs", Table.Right); ("#POs", Table.Right);
          ("MA Size", Table.Right); ("MA Pwr", Table.Right); ("MP Size", Table.Right);
          ("MP Pwr", Table.Right); ("% Pwr Sav.", Table.Right); ("MP phases", Table.Left) ]
  in
  List.iter
    (fun net ->
      let r = Flow.compare_ma_mp net in
      let phases = Phase.to_string r.Flow.mp.Flow.assignment in
      let phases =
        if String.length phases > 20 then String.sub phases 0 17 ^ "..." else phases
      in
      Table.add_row t
        [ r.Flow.circuit; Table.cell_int r.Flow.n_pi; Table.cell_int r.Flow.n_po;
          Table.cell_int r.Flow.ma.Flow.size; Table.cell_float r.Flow.ma.Flow.power;
          Table.cell_int r.Flow.mp.Flow.size; Table.cell_float r.Flow.mp.Flow.power;
          Table.cell_float ~decimals:1 r.Flow.power_saving_pct; phases ])
    [ Dpa_workload.Examples.decoder ~bits:4;
      Dpa_workload.Examples.priority_arbiter ~width:8;
      Dpa_workload.Examples.carry_chain ~width:6 ];
  Table.print t;
  print_endline
    "A one-hot decoder is already power-optimal all-positive (every output\n\
     fires with probability 2^-bits); the arbiter's busy/low-priority grants\n\
     and the adder's carry chain give the optimizer real phase decisions."

(* ------------------------------------------------------------------ *)
(* Sequential suite: the §4.2 pipeline end to end (our extension —      *)
(* the paper's own tables are combinational)                            *)
(* ------------------------------------------------------------------ *)

let seq_table () =
  section "Sequential suite — MFVS partitioning + phase assignment end to end";
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("#PIs", Table.Right); ("#FFs", Table.Right);
          ("|FVS|", Table.Right); ("groups", Table.Right); ("#outs", Table.Right);
          ("MA Pwr", Table.Right); ("MP Pwr", Table.Right); ("% Pwr Sav.", Table.Right) ]
  in
  let savings = ref [] in
  List.iter
    (fun (seed, n_ffs) ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with
            Dpa_workload.Generator.seed;
            n_inputs = 14;
            n_outputs = 4;
            gates_per_output = 9;
            and_bias = 0.4;
            inverter_prob = 0.1;
            reuse_fraction = 0.4 }
          ~n_ffs
      in
      let r = Dpa_core.Seq_flow.compare_ma_mp sn in
      savings := r.Dpa_core.Seq_flow.comb.Flow.power_saving_pct :: !savings;
      Table.add_row t
        [ Printf.sprintf "seq-%d" seed;
          Table.cell_int (Dpa_seq.Seq_netlist.n_real_inputs sn);
          Table.cell_int n_ffs;
          Table.cell_int (List.length r.Dpa_core.Seq_flow.fvs);
          Table.cell_int r.Dpa_core.Seq_flow.supervertices;
          Table.cell_int r.Dpa_core.Seq_flow.comb.Flow.n_po;
          Table.cell_float r.Dpa_core.Seq_flow.comb.Flow.ma.Flow.power;
          Table.cell_float r.Dpa_core.Seq_flow.comb.Flow.mp.Flow.power;
          Table.cell_float ~decimals:1 r.Dpa_core.Seq_flow.comb.Flow.power_saving_pct ])
    [ (1, 6); (4, 6); (8, 8); (16, 8); (26, 10) ];
  Table.add_separator t;
  Table.add_row t
    [ "Average"; ""; ""; ""; ""; ""; ""; "";
      Table.cell_float ~decimals:1 (Dpa_util.Stats.mean !savings) ];
  Table.print t;
  print_endline
    "Every flip-flop's D pin receives a phase of its own; steady-state Q\n\
     probabilities come from the MFVS partition (cut flip-flops at 0.5,\n\
     the rest propagated exactly through the acyclic remainder)."

(* ------------------------------------------------------------------ *)
(* Validation: estimator vs simulator across the Table 1 suite          *)
(* ------------------------------------------------------------------ *)

let validate () =
  section "Validation — BDD estimator vs PowerMill-substitute, Table 1 suite";
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("phases", Table.Left); ("estimated", Table.Right);
          ("simulated", Table.Right); ("error %", Table.Right) ]
  in
  List.iter
    (fun p ->
      let net =
        Dpa_synth.Opt.optimize
          (Dpa_workload.Profiles.build_comb p)
      in
      let probs = Array.make (Netlist.num_inputs net) 0.5 in
      (* validate on the minimum-power realization, the one the tables
         report; exhaustive search is skipped here (the assignment is not
         the point, the estimate is) *)
      let assignment =
        Dpa_synth.Min_area.local_search net (* deterministic, cheap *)
      in
      let mapped = Mapped.map (Inverterless.realize net assignment) in
      let est = (Estimate.of_mapped ~input_probs:probs mapped).Estimate.total in
      let rng = Dpa_util.Rng.create 2024 in
      let sim =
        (Estimate.of_activity mapped
           (Dpa_sim.Simulator.measure ~cycles:20_000 rng ~input_probs:probs mapped))
          .Estimate.total
      in
      let negs = Phase.count_negative assignment in
      Table.add_row t
        [ p.Dpa_workload.Profiles.name;
          Printf.sprintf "%d neg / %d" negs (Array.length assignment);
          Table.cell_float ~decimals:3 est;
          Table.cell_float ~decimals:3 sim;
          Table.cell_float ~decimals:2
            (Dpa_util.Stats.relative_error ~expected:est ~actual:sim *. 100.0) ])
    Dpa_workload.Profiles.table1;
  Table.print t;
  print_endline
    "The paper measured with PowerMill because its estimator needed external\n\
     validation; here the cycle-accurate simulator plays that role. Domino's\n\
     glitch-freedom (Property 2.2) is why a logic-level estimate can be this\n\
     accurate."

(* ------------------------------------------------------------------ *)
(* Compiled simulation: interp vs bit-parallel tape throughput          *)
(* ------------------------------------------------------------------ *)

(* Cycles/second of the two Monte-Carlo backends on every data/ circuit
   plus a generated Table 1 profile, same seed for both. The activity
   counts are compared first — a speedup for different answers would be
   meaningless, so the bench aborts on any mismatch (the determinism
   contract of Dpa_sim.Backend). With [json] the rows land in
   BENCH_sim_compile.json for CI trend tracking. *)
let sim_compile ?(quick = false) ?(json = false) () =
  section "Compiled simulation — interpreter vs bit-parallel tape";
  let cycles = if quick then 2_000 else 20_000 in
  let repeats = if quick then 1 else 3 in
  let data_circuits =
    if Sys.file_exists "data" then
      Sys.readdir "data" |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".blif")
      |> List.sort compare
      |> List.filter_map (fun f ->
             (* sequential designs contribute their combinational core
                (latch outputs become PIs), as the flow does *)
             let text =
               let ic = open_in_bin (Filename.concat "data" f) in
               let s = really_input_string ic (in_channel_length ic) in
               close_in ic;
               s
             in
             let net =
               match Dpa_logic.Blif.of_string text with
               | Ok net -> Some net
               | Error _ -> (
                 match Dpa_logic.Blif.sequential_of_string text with
                 | Ok s -> Some s.Dpa_logic.Blif.comb
                 | Error _ -> None)
             in
             Option.map (fun net -> (Filename.chop_suffix f ".blif", net)) net)
    else []
  in
  let generated =
    match Dpa_workload.Profiles.find "industry2" with
    | Some p ->
      [ ( p.Dpa_workload.Profiles.name,
          Dpa_workload.Profiles.build_comb p ) ]
    | None -> []
  in
  let measure (name, raw) =
    let net = Dpa_synth.Opt.optimize raw in
    let mapped =
      Mapped.map (Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net)))
    in
    let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
    let run backend =
      let best = ref infinity and result = ref None in
      for _ = 1 to repeats do
        let rng = Dpa_util.Rng.create 2024 in
        let t0 = Unix.gettimeofday () in
        let a = Dpa_sim.Simulator.measure ~backend ~cycles rng ~input_probs mapped in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        result := Some a
      done;
      (Option.get !result, float_of_int cycles /. Float.max !best 1e-9)
    in
    let ai, interp_cps = run Dpa_sim.Backend.Interp in
    let ac, compiled_cps = run Dpa_sim.Backend.Compiled in
    let identical =
      ai.Dpa_sim.Simulator.fire_counts = ac.Dpa_sim.Simulator.fire_counts
      && ai.Dpa_sim.Simulator.input_toggles = ac.Dpa_sim.Simulator.input_toggles
      && ai.Dpa_sim.Simulator.node_probs = ac.Dpa_sim.Simulator.node_probs
    in
    if not identical then begin
      Printf.eprintf
        "sim bench: %s: backends disagree at seed 2024 — speedup would be meaningless\n"
        name;
      exit 1
    end;
    (name, Netlist.size (Mapped.net mapped), interp_cps, compiled_cps)
  in
  let rows = List.map measure (data_circuits @ generated) in
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("nodes", Table.Right); ("interp cyc/s", Table.Right);
          ("compiled cyc/s", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun (name, nodes, icps, ccps) ->
      Table.add_row t
        [ name; string_of_int nodes;
          Printf.sprintf "%.0f" icps;
          Printf.sprintf "%.0f" ccps;
          Printf.sprintf "%.1fx" (ccps /. Float.max icps 1e-9) ])
    rows;
  Table.print t;
  Printf.printf "\nall circuits bit-identical across backends (%d cycles, seed 2024)\n"
    cycles;
  if json then begin
    let json_float f =
      if Float.is_nan f then "null"
      else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.6g" f
    in
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"bench\": \"sim_compile\",\n  \"unit\": \"cycles/s\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"quick\": %b,\n  \"cycles\": %d,\n  \"results\": [\n" quick cycles);
    let n = List.length rows in
    List.iteri
      (fun k (name, nodes, icps, ccps) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"circuit\": \"%s\", \"nodes\": %d, \"interp_cps\": %s, \
              \"compiled_cps\": %s, \"speedup\": %s, \"identical\": true}%s\n"
             name nodes (json_float icps) (json_float ccps)
             (json_float (ccps /. Float.max icps 1e-9))
             (if k = n - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out "BENCH_sim_compile.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote BENCH_sim_compile.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation — design choices called out in DESIGN.md";
  (* 1: search strategy comparison *)
  Printf.printf "1. Search strategies (6-output control block):\n";
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 77;
      n_inputs = 24;
      n_outputs = 6;
      gates_per_output = 10;
      and_bias = 0.35;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let run strategy name =
    let config =
      { (Dpa_phase.Optimizer.default_config ~input_probs:probs) with
        Dpa_phase.Optimizer.strategy }
    in
    let r = Dpa_phase.Optimizer.minimize_power config net in
    Printf.printf "   %-12s power %8.3f  size %4d  measurements %4d\n" name
      r.Dpa_phase.Optimizer.power r.Dpa_phase.Optimizer.size
      r.Dpa_phase.Optimizer.measurements
  in
  run Dpa_phase.Optimizer.Exhaustive "exhaustive";
  run Dpa_phase.Optimizer.Greedy "greedy";
  run (Dpa_phase.Optimizer.Annealing Dpa_phase.Annealing.default_params) "annealing";
  (* 2: gate-type penalty *)
  Printf.printf "\n2. Gate-type penalty P_i (series-transistor surcharge):\n";
  List.iter
    (fun per_stage ->
      let library =
        if per_stage = 0.0 then Dpa_domino.Library.default
        else Dpa_domino.Library.with_series_penalty ~per_stage Dpa_domino.Library.default
      in
      let config =
        { (Dpa_phase.Optimizer.default_config ~input_probs:probs) with
          Dpa_phase.Optimizer.library }
      in
      let r = Dpa_phase.Optimizer.minimize_power config net in
      (* re-price the chosen assignment with the unpenalized library to
         compare true switching *)
      let mapped = Mapped.map (Inverterless.realize net r.Dpa_phase.Optimizer.assignment) in
      let plain = Estimate.of_mapped ~input_probs:probs mapped in
      Printf.printf
        "   P=%.2f/stage: priced power %8.3f, raw switching %8.3f, phases %s\n" per_stage
        r.Dpa_phase.Optimizer.power plain.Estimate.domino_switching
        (Phase.to_string r.Dpa_phase.Optimizer.assignment))
    [ 0.0; 0.25; 1.0 ];
  (* 3: MFVS symmetry on duplicated register banks (the structure domino
     duplication creates) and on generated sequential circuits *)
  Printf.printf
    "\n3. Enhanced MFVS (symmetry) vs classical on duplicated register banks:\n";
  List.iter
    (fun (banks, width) ->
      let sn = Dpa_workload.Examples.replicated_bank_ring ~banks ~width in
      let g = Dpa_seq.Sgraph.of_seq_netlist sn in
      let with_sym = Dpa_seq.Mfvs.solve ~symmetry:true g in
      let without = Dpa_seq.Mfvs.solve ~symmetry:false g in
      Printf.printf
        "   %d banks x %d FFs: |FVS| with symmetry %d (%d supervertices, %d greedy picks), \
         without %d (%d picks)\n"
        banks width
        (List.length with_sym.Dpa_seq.Mfvs.fvs)
        (List.length with_sym.Dpa_seq.Mfvs.supervertices)
        with_sym.Dpa_seq.Mfvs.greedy_picks
        (List.length without.Dpa_seq.Mfvs.fvs)
        without.Dpa_seq.Mfvs.greedy_picks)
    [ (3, 3); (4, 4); (5, 6) ];
  Printf.printf "   Partition accuracy vs exact Markov steady state (4-FF circuits):\n";
  List.iter
    (fun seed ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with
            Dpa_workload.Generator.seed;
            n_inputs = 5;
            n_outputs = 2;
            gates_per_output = 5;
            support = 4 }
          ~n_ffs:4
      in
      let exact = Dpa_seq.Steady_state.analyze ~input_probs:(Array.make 5 0.5) sn in
      let report label part =
        let errors =
          Array.to_list
            (Array.mapi
               (fun k p -> Float.abs (p -. exact.Dpa_seq.Steady_state.ff_probs.(k)))
               part.Dpa_seq.Partition.ff_probs)
        in
        Printf.printf "     seed %3d %-12s mean |err| %.4f  max %.4f  (|FVS| %d)\n" seed
          label (Dpa_util.Stats.mean errors)
          (List.fold_left Float.max 0.0 errors)
          (List.length part.Dpa_seq.Partition.fvs)
      in
      report "one pass" (Dpa_seq.Partition.probabilities ~input_probs:(Array.make 5 0.5) sn);
      report "refined x8"
        (Dpa_seq.Partition.probabilities ~refine:8 ~input_probs:(Array.make 5 0.5) sn))
    [ 4; 8; 16 ];
  Printf.printf "   Generated sequential circuits (no forced duplication):\n";
  List.iter
    (fun seed ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with Dpa_workload.Generator.seed } ~n_ffs:10
      in
      let g = Dpa_seq.Sgraph.of_seq_netlist sn in
      let with_sym = Dpa_seq.Mfvs.solve ~symmetry:true g in
      let without = Dpa_seq.Mfvs.solve ~symmetry:false g in
      Printf.printf "   seed %3d: |FVS| with symmetry %d, without %d, supervertices %d\n" seed
        (List.length with_sym.Dpa_seq.Mfvs.fvs)
        (List.length without.Dpa_seq.Mfvs.fvs)
        (List.length with_sym.Dpa_seq.Mfvs.supervertices))
    [ 1; 2; 3; 4; 5 ];
  (* 4: k-tuple cost extension (paper §4.1's "more than a pair") *)
  Printf.printf "\n4. Cost function over k-tuples (pairwise = the paper's heuristic):\n";
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let cost = Dpa_phase.Cost.make net in
  List.iter
    (fun (kk, vectors) ->
      let measure = Dpa_phase.Measure.create ~input_probs:probs net in
      let r =
        Dpa_phase.Tuple_search.run ~k:kk ~vectors_per_tuple:vectors measure ~cost
          ~base_probs:base
      in
      Printf.printf
        "   k=%d (top %2d vectors/tuple): power %8.3f  commits %2d  tuples %3d  measurements %3d\n"
        kk vectors r.Dpa_phase.Tuple_search.power r.Dpa_phase.Tuple_search.commits
        r.Dpa_phase.Tuple_search.tuples_considered
        (Dpa_phase.Measure.evaluations measure))
    [ (2, 1); (3, 1); (3, 4); (6, 16) ];
  (* 5: timing-integrated phase assignment (the paper's §6 future work) *)
  Printf.printf
    "\n5. Timing-integrated phase assignment (paper §6 future direction):\n";
  let ma_assignment = Dpa_synth.Min_area.best net in
  let ma_mapped = Mapped.map (Inverterless.realize net ma_assignment) in
  let unsized = (Dpa_timing.Sta.analyze ma_mapped).Dpa_timing.Sta.critical_delay in
  List.iter
    (fun factor ->
      let clock = factor *. unsized in
      (* sequential: pick phases for unsized power, then resize *)
      let seq_config = Dpa_phase.Optimizer.default_config ~input_probs:probs in
      let seq = Dpa_phase.Optimizer.minimize_power seq_config net in
      let seq_mapped = Mapped.map (Inverterless.realize net seq.Dpa_phase.Optimizer.assignment) in
      let seq_resize = Dpa_timing.Resize.meet ~clock seq_mapped in
      let seq_power = (Estimate.of_mapped ~input_probs:probs seq_mapped).Estimate.total in
      (* integrated: price every candidate after timing closure *)
      let ta_config = Dpa_phase.Timing_aware.default_config ~input_probs:probs ~clock in
      let ta = Dpa_phase.Timing_aware.minimize ta_config net in
      Printf.printf
        "   clock %.2f (%.0f%% of MA): phase-then-resize %8.3f (%s, %s)  integrated %8.3f (%s, %s)\n"
        clock (factor *. 100.0) seq_power
        (Phase.to_string seq.Dpa_phase.Optimizer.assignment)
        (if seq_resize.Dpa_timing.Resize.met then "met" else "VIOLATED")
        ta.Dpa_phase.Timing_aware.power
        (Phase.to_string ta.Dpa_phase.Timing_aware.assignment)
        (if ta.Dpa_phase.Timing_aware.met then "met" else "VIOLATED"))
    [ 1.0; 0.6; 0.4 ];
  (* 6: the intro's "domino costs up to 4x static" motivation, kept honest
     by simulating static glitches (which the zero-delay figure misses and
     domino physically cannot have, Property 2.2) *)
  Printf.printf
    "\n6. Domino vs static CMOS switching power (intro motivation):\n";
  List.iter
    (fun name ->
      match Dpa_workload.Profiles.find name with
      | None -> ()
      | Some prof ->
        let pnet =
          Dpa_synth.Opt.optimize
            (Dpa_workload.Profiles.build_comb prof)
        in
        let pprobs = Array.make (Netlist.num_inputs pnet) 0.5 in
        let ratio = Dpa_power.Static_model.domino_to_static_ratio ~input_probs:pprobs pnet in
        let rng = Dpa_util.Rng.create 13 in
        let glitch =
          Dpa_sim.Static_sim.measure ~cycles:3000 rng ~input_probs:pprobs pnet
        in
        Printf.printf
          "   %-10s domino/static(zero-delay) %.2fx | static glitch factor %.2fx -> \
           domino/static(real) %.2fx\n"
          name ratio glitch.Dpa_sim.Static_sim.glitch_ratio
          (ratio /. Float.max glitch.Dpa_sim.Static_sim.glitch_ratio 1e-9))
    [ "apex7"; "frg1"; "x1" ];
  (* 7: two-level ISOP resynthesis ahead of phase assignment *)
  Printf.printf "\n7. Two-level (ISOP) resynthesis before phase assignment:\n";
  (match Dpa_workload.Profiles.find "x1" with
  | None -> ()
  | Some prof ->
    let raw = Dpa_workload.Profiles.build_comb prof in
    let config =
      { Flow.default_config with Flow.pair_limit = prof.Dpa_workload.Profiles.pair_limit }
    in
    let multi = Flow.compare_ma_mp ~config raw in
    let flat, stats =
      Dpa_synth.Resynth.two_level ~max_support:12 (Dpa_synth.Opt.optimize raw)
    in
    let flat_result = Flow.compare_ma_mp ~config flat in
    let fact, fstats =
      Dpa_synth.Resynth.factored ~max_support:12 (Dpa_synth.Opt.optimize raw)
    in
    let fact_result = Flow.compare_ma_mp ~config fact in
    Printf.printf
      "   multi-level: MA %4d cells / %8.2f pwr | MP %4d / %8.2f (%.1f%% saving)\n"
      multi.Flow.ma.Flow.size multi.Flow.ma.Flow.power multi.Flow.mp.Flow.size
      multi.Flow.mp.Flow.power multi.Flow.power_saving_pct;
    Printf.printf
      "   two-level:   MA %4d cells / %8.2f pwr | MP %4d / %8.2f (%.1f%% saving)  \
       [%d/%d outputs collapsed, %d cubes, %d literals]\n"
      flat_result.Flow.ma.Flow.size flat_result.Flow.ma.Flow.power
      flat_result.Flow.mp.Flow.size flat_result.Flow.mp.Flow.power
      flat_result.Flow.power_saving_pct stats.Dpa_synth.Resynth.collapsed_outputs
      (stats.Dpa_synth.Resynth.collapsed_outputs + stats.Dpa_synth.Resynth.kept_outputs)
      stats.Dpa_synth.Resynth.cubes stats.Dpa_synth.Resynth.literals;
    Printf.printf
      "   factored:    MA %4d cells / %8.2f pwr | MP %4d / %8.2f (%.1f%% saving)  \
       [%d literals after algebraic factoring]\n"
      fact_result.Flow.ma.Flow.size fact_result.Flow.ma.Flow.power
      fact_result.Flow.mp.Flow.size fact_result.Flow.mp.Flow.power
      fact_result.Flow.power_saving_pct fstats.Dpa_synth.Resynth.literals);
  (* 8: compound (OR-of-AND) domino cells *)
  Printf.printf "\n8. Compound OR-of-AND domino cells (single-stage pulldown networks):\n";
  (match Dpa_workload.Profiles.find "apex7" with
  | None -> ()
  | Some prof ->
    let raw = Dpa_workload.Profiles.build_comb prof in
    let plain = Flow.compare_ma_mp raw in
    let compound_lib = Dpa_domino.Library.with_compound Dpa_domino.Library.default in
    let compound_cfg = { Flow.default_config with Flow.library = compound_lib } in
    let fancy = Flow.compare_ma_mp ~config:compound_cfg raw in
    Printf.printf
      "   simple cells:   MA %4d cells / %8.2f pwr | MP %4d / %8.2f (%.1f%% saving)\n"
      plain.Flow.ma.Flow.size plain.Flow.ma.Flow.power plain.Flow.mp.Flow.size
      plain.Flow.mp.Flow.power plain.Flow.power_saving_pct;
    Printf.printf
      "   compound cells: MA %4d cells / %8.2f pwr | MP %4d / %8.2f (%.1f%% saving)\n"
      fancy.Flow.ma.Flow.size fancy.Flow.ma.Flow.power fancy.Flow.mp.Flow.size
      fancy.Flow.mp.Flow.power fancy.Flow.power_saving_pct);
  (* 9: estimator vs simulator cross-check at scale *)
  Printf.printf "\n9. BDD estimator vs PowerMill-substitute simulator (apex7 profile):\n";
  (match Dpa_workload.Profiles.find "apex7" with
  | None -> ()
  | Some prof ->
    let net =
      Dpa_synth.Opt.optimize
        (Dpa_workload.Profiles.build_comb prof)
    in
    let probs = Array.make (Netlist.num_inputs net) 0.5 in
    let a = Phase.all_positive (Netlist.num_outputs net) in
    let mapped = Mapped.map (Inverterless.realize net a) in
    let est = Estimate.of_mapped ~input_probs:probs mapped in
    let rng = Dpa_util.Rng.create 5 in
    let meas =
      Estimate.of_activity mapped
        (Dpa_sim.Simulator.measure ~cycles:20_000 rng ~input_probs:probs mapped)
    in
    Printf.printf "   estimated %.3f, simulated %.3f, relative error %.2f%%\n"
      est.Estimate.total meas.Estimate.total
      (Dpa_util.Stats.relative_error ~expected:est.Estimate.total
         ~actual:meas.Estimate.total
      *. 100.0))

(* ------------------------------------------------------------------ *)
(* Corpus sweep                                                        *)
(* ------------------------------------------------------------------ *)

(* The production-scale regression substrate (ROADMAP item 1): every
   manifest circuit through the MA-vs-MP flow, reporting per-circuit wall
   time, ladder rung, BDD nodes, power and phase-conflict counts; --json
   writes BENCH_corpus.json for CI trend tracking. Quick mode sweeps the
   CI-size smoke manifest instead of the full one. *)
(* ------------------------------------------------------------------ *)
(* Reorder-rung strategies: sift vs rebuild vs none                     *)
(* ------------------------------------------------------------------ *)

(* Head-to-head of the degradation ladder's rung-2 strategies on the
   sequential path (par = None, so the rung comparison is not confounded
   by shard planning): the rung disabled, the [Rebuild] hill climb whose
   cost oracle re-builds the whole block per candidate swap, and the
   default in-place [Sift]. Node caps are half the exact shared build
   (fig5, apex7) or the corpus cap (parity_deep), so rung 1 always
   fails and rung 2 must engage. No deadlines: a budget deadline bounds
   the whole estimate including the Monte-Carlo rung, which would turn
   a slow rebuild into a crash instead of a measurement. Long variants
   (the parity_deep rebuild prices each of its O(inputs) candidate
   swaps with a ~cap-sized build) are instead measured once — repeats
   exist to beat timer noise, which minute-scale runs don't have. *)
let reorder ?(quick = false) ?(json = false) () =
  let module Engine = Dpa_power.Engine in
  section "Reorder rung — in-place sift vs rebuild hill climb";
  let repeats = if quick then 1 else 3 in
  let prep raw =
    let net = Dpa_synth.Opt.optimize raw in
    let mapped =
      Mapped.map (Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net)))
    in
    let input_probs = Array.make (Netlist.num_inputs net) 0.5 in
    (mapped, input_probs)
  in
  let half_exact (mapped, input_probs) =
    let r = Engine.estimate ~input_probs mapped in
    max 8 (r.Engine.report.Estimate.bdd_nodes / 2)
  in
  let circuits =
    let fig5 =
      let c = prep (Dpa_workload.Examples.fig5 ()) in
      ("fig5", c, half_exact c, None)
    in
    let apex7 =
      if not (Sys.file_exists "data/apex7_synthetic.blif") then []
      else begin
        let text =
          let ic = open_in_bin "data/apex7_synthetic.blif" in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        match Dpa_logic.Blif.of_string text with
        | Error _ -> []
        | Ok raw ->
          let c = prep raw in
          [ ("apex7", c, half_exact c, None) ]
      end
    in
    let parity_deep =
      match Dpa_workload.Profiles.find "parity_deep" with
      | None -> []
      | Some p ->
        let c = prep (Dpa_workload.Profiles.build_comb p) in
        (* the corpus CI target — the default 1% half-width would make
           the unavoidable Monte-Carlo rung dominate all three variants *)
        [ ("parity_deep", c, 120_000, Some 0.02) ]
    in
    (fig5 :: apex7) @ parity_deep
  in
  let variants = [ "none"; "rebuild"; "sift" ] in
  let run (name, (mapped, input_probs), cap, halfwidth) variant =
    let budget =
      let strategy = if variant = "rebuild" then Engine.Rebuild else Engine.Sift in
      let b =
        Engine.bounded ~max_bdd_nodes:cap ~fallback:Engine.Simulate ~reorder:strategy ()
      in
      let b =
        match halfwidth with
        | Some h -> { b with Engine.sim_halfwidth = h }
        | None -> b
      in
      if variant = "none" then { b with Engine.reorder_passes = 0 } else b
    in
    let best = ref infinity and result = ref None in
    for i = 1 to repeats do
      if i = 1 || !best < 60.0 then begin
        let t0 = Unix.gettimeofday () in
        let r = Engine.estimate ~budget ~input_probs mapped in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        result := Some r
      end
    done;
    let r = Option.get !result in
    ( name,
      variant,
      cap,
      !best,
      Engine.degradation_label r.Engine.degradation,
      r.Engine.degradation.Engine.bdd_nodes,
      Engine.simulated_cones r.Engine.degradation )
  in
  let rows = List.concat_map (fun c -> List.map (run c) variants) circuits in
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("strategy", Table.Left); ("cap", Table.Right);
          ("wall s", Table.Right); ("ladder", Table.Left); ("bdd nodes", Table.Right);
          ("sim cones", Table.Right) ]
  in
  List.iter
    (fun (name, variant, cap, wall, ladder, nodes, sim) ->
      Table.add_row t
        [ name; variant; string_of_int cap; Printf.sprintf "%.3f" wall; ladder;
          string_of_int nodes; string_of_int sim ])
    rows;
  Table.print t;
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"bench\": \"reorder\",\n  \"unit\": \"s\",\n";
    Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n  \"results\": [\n" quick);
    let n = List.length rows in
    List.iteri
      (fun k (name, variant, cap, wall, ladder, nodes, sim) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"circuit\": \"%s\", \"strategy\": \"%s\", \"cap\": %d, \
              \"wall_s\": %.6f, \"ladder\": \"%s\", \"bdd_nodes\": %d, \
              \"simulated_cones\": %d}%s\n"
             name variant cap wall ladder nodes sim
             (if k = n - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out "BENCH_reorder.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote BENCH_reorder.json\n"
  end

let corpus_sweep ?(quick = false) ?(json = false) () =
  let module C = Dpa_workload.Corpus in
  let m = if quick then C.smoke else C.full in
  section
    (Printf.sprintf "Corpus sweep — %s manifest through the MA-vs-MP flows" m.C.name);
  let outcomes =
    List.map
      (fun spec ->
        let o = C.run_spec spec in
        Printf.printf "  %-14s %6d gates  [%s]  %.2fs\n%!" o.C.name o.C.gates o.C.ladder
          o.C.runtime_s;
        o)
      m.C.specs
  in
  let t =
    Table.create
      ~columns:
        [ ("Ckt", Table.Left); ("family", Table.Left); ("gates", Table.Right);
          ("MA pwr", Table.Right); ("MP pwr", Table.Right); ("sav %", Table.Right);
          ("flips", Table.Right); ("dup", Table.Right); ("ladder", Table.Left);
          ("bdd nodes", Table.Right); ("sec", Table.Right) ]
  in
  List.iter
    (fun (o : C.outcome) ->
      Table.add_row t
        [ o.C.name; o.C.family; string_of_int o.C.gates;
          Table.cell_float ~decimals:2 o.C.ma_power;
          Table.cell_float ~decimals:2 o.C.mp_power;
          Table.cell_float ~decimals:1 o.C.power_saving_pct;
          string_of_int o.C.phase_flips; string_of_int o.C.duplicated_gates; o.C.ladder;
          string_of_int o.C.bdd_nodes;
          Table.cell_float ~decimals:2 o.C.runtime_s ])
    outcomes;
  Table.print t;
  if json then begin
    let oc = open_out "BENCH_corpus.json" in
    output_string oc (C.bench_json ~manifest:m.C.name ~jobs:1 outcomes);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_corpus.json\n"
  end
