(* Benchmark driver: regenerates every table and figure of the paper and
   runs Bechamel micro-benchmarks of the kernels behind each experiment.

   Usage:
     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- fig5            # one experiment
     dune exec bench/main.exe -- perf            # just the Bechamel suite
     dune exec bench/main.exe -- perf --json     # + write BENCH_bdd_kernel.json
     dune exec bench/main.exe -- --quick         # run each kernel once (CI smoke) *)

open Bechamel
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase

(* ------------------------------------------------------------------ *)
(* Kernels: one closure per table/figure (scaled where the full          *)
(* experiment runs seconds), shared between the Bechamel suite and the   *)
(* --quick smoke mode.                                                   *)
(* ------------------------------------------------------------------ *)

let small_profile =
  { Dpa_workload.Generator.default with
    Dpa_workload.Generator.seed = 7;
    n_inputs = 24;
    n_outputs = 6;
    gates_per_output = 10;
    and_bias = 0.35;
    inverter_prob = 0.1;
    reuse_fraction = 0.4 }

let prepared_net = lazy (Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational small_profile))

let prepared_mapped =
  lazy
    (let net = Lazy.force prepared_net in
     Dpa_domino.Mapped.map
       (Dpa_synth.Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net))))

let prepared_built =
  lazy
    (let net = Lazy.force prepared_net in
     Dpa_bdd.Build.of_netlist ~order:(Dpa_bdd.Ordering.reverse_topological net) net)

let prepared_seq =
  lazy
    (Dpa_workload.Generator.sequential
       { small_profile with Dpa_workload.Generator.seed = 21 } ~n_ffs:6)

let opaque x = ignore (Sys.opaque_identity x)

let run_greedy ~mode () =
  let net = Lazy.force prepared_net in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let measure = Dpa_phase.Measure.create ~mode ~input_probs:probs net in
  let cost = Dpa_phase.Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  Dpa_phase.Greedy.run measure ~cost ~base_probs:base

let kernels =
  [ ("fig2.switching-model", fun () ->
      opaque (Dpa_power.Model.fig2_points ~steps:101 ()));
    ("fig3-4.inverterless-realize", fun () ->
      let net = Lazy.force prepared_net in
      opaque (Dpa_synth.Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net))));
    ("fig5.power-estimate", fun () ->
      let mapped = Lazy.force prepared_mapped in
      opaque
        (Dpa_power.Estimate.of_mapped
           ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
           mapped));
    ("engine.budgeted-estimate", fun () ->
      (* the degradation ladder under a node budget tight enough to force
         per-cone fallback — prices the robustness path, not just the
         exact one *)
      let mapped = Lazy.force prepared_mapped in
      let budget = Dpa_power.Engine.bounded ~max_bdd_nodes:64 () in
      opaque
        (Dpa_power.Engine.estimate ~budget
           ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
           mapped));
    ("fig6.greedy-search", fun () -> opaque (run_greedy ~mode:`Incremental ()));
    ("fig6.greedy-search-rebuild", fun () -> opaque (run_greedy ~mode:`Rebuild ()));
    ("fig7.partition-probabilities", fun () ->
      let sn =
        Dpa_workload.Generator.sequential
          { small_profile with Dpa_workload.Generator.seed = 11 } ~n_ffs:8
      in
      opaque (Dpa_seq.Partition.probabilities ~input_probs:(Array.make 24 0.5) sn));
    ("fig8-9.mfvs-solve", fun () ->
      let sn =
        Dpa_workload.Generator.sequential
          { small_profile with Dpa_workload.Generator.seed = 13 } ~n_ffs:12
      in
      opaque (Dpa_seq.Mfvs.solve (Dpa_seq.Sgraph.of_seq_netlist sn)));
    ("fig10.bdd-build-ordered", fun () ->
      let net = Lazy.force prepared_net in
      opaque (Dpa_bdd.Build.of_netlist ~order:(Dpa_bdd.Ordering.reverse_topological net) net));
    ("bdd.ite", fun () ->
      (* mk/ite/unique-table throughput: a fresh manager every call, so the
         tables are exercised cold (interning misses) and warm (hits). *)
      let m = Dpa_bdd.Robdd.create ~nvars:16 in
      let x l = Dpa_bdd.Robdd.var m l in
      let parity = ref (x 0) and majority = ref Dpa_bdd.Robdd.bdd_false in
      for l = 1 to 15 do
        parity := Dpa_bdd.Robdd.apply_xor m !parity (x l);
        majority := Dpa_bdd.Robdd.ite m (x l) !parity !majority
      done;
      opaque (Dpa_bdd.Robdd.ite m !majority !parity (Dpa_bdd.Robdd.neg m !parity)));
    ("bdd.probabilities", fun () ->
      (* memoized probability descent over the prepared circuit's BDDs *)
      let b = Lazy.force prepared_built in
      let probs = Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5 in
      opaque (Dpa_bdd.Build.probabilities_of_built ~input_probs:probs b));
    ("table1.ma-vs-mp-flow", fun () ->
      opaque (Dpa_core.Flow.compare_ma_mp (Dpa_workload.Generator.combinational small_profile)));
    ("table2.timed-flow", fun () ->
      let config =
        { Dpa_core.Flow.default_config with
          Dpa_core.Flow.timing = Some Dpa_core.Flow.default_timing }
      in
      opaque
        (Dpa_core.Flow.compare_ma_mp ~config
           (Dpa_workload.Generator.combinational small_profile)));
    ("seqtable.seq-flow", fun () ->
      opaque (Dpa_core.Seq_flow.compare_ma_mp (Lazy.force prepared_seq)));
    ("validate.sim-2k-cycles", fun () ->
      let mapped = Lazy.force prepared_mapped in
      let rng = Dpa_util.Rng.create 5 in
      opaque
        (Dpa_sim.Simulator.measure ~cycles:2000 rng
           ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
           mapped));
    ("equiv.bdd-check", fun () ->
      let net = Lazy.force prepared_net in
      opaque (Dpa_bdd.Equiv.check net (Dpa_synth.Opt.optimize net)));
    ("resynth.isop-two-level", fun () ->
      opaque (Dpa_synth.Resynth.two_level (Lazy.force prepared_net)));
    ("steady-state.markov", fun () ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with
            Dpa_workload.Generator.seed = 4;
            n_inputs = 5;
            n_outputs = 2;
            gates_per_output = 5;
            support = 4 }
          ~n_ffs:4
      in
      opaque (Dpa_seq.Steady_state.analyze ~input_probs:(Array.make 5 0.5) sn));
    ("powermill-substitute.1k-cycles", fun () ->
      let mapped = Lazy.force prepared_mapped in
      let rng = Dpa_util.Rng.create 3 in
      opaque
        (Dpa_sim.Simulator.measure ~cycles:1000 rng
           ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
           mapped));
    ("timing.sta", fun () -> opaque (Dpa_timing.Sta.analyze (Lazy.force prepared_mapped)));
    ("corpus.midsize-roundtrip", fun () ->
      (* one mid-size corpus circuit through generation, well-formedness
         and the baseline wire format — the smoke path catches generator
         or baseline-format breakage before a full corpus sweep does *)
      let p =
        match Dpa_workload.Profiles.find "parity_mix" with
        | Some p -> p
        | None -> failwith "corpus profile parity_mix vanished"
      in
      let net = Dpa_workload.Profiles.build_comb p in
      (match Dpa_logic.Netlist.validate net with
      | Ok () -> ()
      | Error e -> failwith ("corpus generator: " ^ e));
      let o =
        { Dpa_workload.Corpus.name = p.Dpa_workload.Profiles.name;
          family = Dpa_workload.Profiles.family_name p.Dpa_workload.Profiles.family;
          digest = Dpa_logic.Struct_hash.digest net;
          gates = Dpa_logic.Netlist.gate_count net;
          n_pi = Dpa_logic.Netlist.num_inputs net;
          n_po = Dpa_logic.Netlist.num_outputs net;
          n_ffs = 0; fvs = 0; supervertices = 0;
          ma_size = 0; ma_power = 0.125; mp_size = 0; mp_power = 0.0625;
          mp_phases = 0; phase_flips = 0; duplicated_gates = 0;
          power_saving_pct = 50.0; area_penalty_pct = 0.1;
          ladder = "exact"; bdd_nodes = 0; runtime_s = 0.5 }
      in
      let rt =
        Dpa_workload.Corpus.outcome_of_json
          (Dpa_util.Jsonlite.parse
             (Dpa_util.Jsonlite.encode (Dpa_workload.Corpus.json_of_outcome o)))
      in
      if rt <> o then failwith "corpus baseline round-trip drifted";
      opaque rt) ]

(* ------------------------------------------------------------------ *)
(* JSON emission (hand rolled — no JSON library in the dependency set)  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* Kernel counters of one incremental greedy search (the tentpole path),
   read back from the Dpa_obs metrics registry — the one source of truth
   for BDD counters. The registry is reset first so the numbers belong to
   exactly this run. *)
let greedy_registry_snapshot () =
  Dpa_obs.Metrics.reset ();
  let net = Lazy.force prepared_net in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let measure = Dpa_phase.Measure.create ~mode:`Incremental ~input_probs:probs net in
  let cost = Dpa_phase.Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  ignore (Dpa_phase.Greedy.run measure ~cost ~base_probs:base);
  Dpa_phase.Measure.publish_metrics measure;
  let c name = Dpa_obs.Metrics.counter_value (Dpa_obs.Metrics.counter name) in
  [ ("nodes", c "bdd.nodes_allocated");
    ("unique_probes", c "bdd.unique.probes");
    ("unique_hits", c "bdd.unique.hits");
    ("unique_resizes", c "bdd.unique.resizes");
    ("ite_probes", c "bdd.ite.probes");
    ("ite_hits", c "bdd.ite.hits");
    ("ite_resizes", c "bdd.ite.resizes") ]

let write_kernel_json ?(metrics = false) ~path results =
  let stats = greedy_registry_snapshot () in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"bench\": \"bdd_kernel\",\n  \"unit\": \"ns/op\",\n  \"results\": [\n";
  List.iteri
    (fun k (name, ns, rsq) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"r_square\": %s}%s\n"
           (json_escape name) (json_float ns)
           (match rsq with Some v -> json_float v | None -> "null")
           (if k = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"greedy_robdd_stats\": {";
  List.iteri
    (fun k (key, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %d" (if k = 0 then "" else ", ") key v))
    stats;
  Buffer.add_string b "}";
  if metrics then begin
    (* the full registry of the greedy run, for dashboards that want more
       than the seven headline counters *)
    Buffer.add_string b ",\n  \"metrics\": ";
    let body = String.trim (Dpa_obs.Metrics.to_json ()) in
    Buffer.add_string b body
  end;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Service throughput                                                   *)
(* ------------------------------------------------------------------ *)

(* End-to-end throughput of the resident server: a pipelined batch of
   estimate requests over one real Unix-socket connection, repeated at
   several worker-pool sizes. The interesting number is the speedup of 4
   workers over 1 — the requests are CPU-bound (BDD build + probability
   descent per request), so the pool should scale until the socket pump
   or the queue becomes the bottleneck. Requests ship the netlist text
   inline so the measurement has no filesystem dependency. *)
let service_throughput ?(quick = false) ?(json = false) () =
  let requests_per_worker_count = if quick then 8 else 48 in
  let worker_counts = [ 1; 2; 4 ] in
  let inline_sources =
    (* heavier than [small_profile]: each estimate costs several
       milliseconds of BDD work, so the pool's scaling is measured
       against real per-request compute rather than socket overhead *)
    List.map
      (fun seed ->
        Dpa_logic.Io.to_string
          (Dpa_workload.Generator.combinational
             { small_profile with
               Dpa_workload.Generator.seed;
               n_inputs = 32;
               n_outputs = 10;
               gates_per_output = 22 }))
      [ 7; 11; 13 ]
  in
  let lines =
    List.init requests_per_worker_count (fun i ->
        let text = List.nth inline_sources (i mod List.length inline_sources) in
        Dpa_service.Protocol.request_line
          { Dpa_service.Protocol.id = i;
            request =
              Dpa_service.Protocol.Estimate
                { source = Dpa_service.Protocol.Inline { text; format = `Dln };
                  input_prob = 0.5;
                  phases = None;
                  budget = None };
            (* bypass: this bench measures worker-pool scaling on real
               BDD work; repeated sources would otherwise all hit the
               result cache and measure the socket pump instead *)
            cache = `Bypass })
  in
  Printf.printf "\n=== service throughput (%d pipelined estimate requests) ===\n\n"
    requests_per_worker_count;
  let measure workers =
    Dpa_service.Client.with_self_hosted ~workers (fun ~socket ->
        (* warm-up pass so domain spawn and first-connection costs are not
           billed to the measured batch *)
        ignore (Dpa_service.Client.run_batch ~socket [ List.hd lines ]);
        let t0 = Unix.gettimeofday () in
        let responses = Dpa_service.Client.run_batch ~socket lines in
        let dt = Unix.gettimeofday () -. t0 in
        let failed =
          List.filter
            (fun l ->
              match Dpa_service.Protocol.parse_response l with
              | Ok r -> not r.Dpa_service.Protocol.ok
              | Error _ -> true)
            responses
        in
        if failed <> [] then begin
          Printf.eprintf "service bench: %d request(s) failed, e.g. %s\n"
            (List.length failed) (List.hd failed);
          exit 1
        end;
        (workers, List.length responses, dt))
  in
  let rows = List.map measure worker_counts in
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("workers", Dpa_util.Table.Right);
          ("requests", Dpa_util.Table.Right);
          ("seconds", Dpa_util.Table.Right);
          ("req/s", Dpa_util.Table.Right) ]
  in
  let rate (_, n, dt) = float_of_int n /. Float.max dt 1e-9 in
  List.iter
    (fun ((workers, n, dt) as row) ->
      Dpa_util.Table.add_row t
        [ string_of_int workers;
          string_of_int n;
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.1f" (rate row) ])
    rows;
  Dpa_util.Table.print t;
  let find w = List.find (fun (workers, _, _) -> workers = w) rows in
  let speedup = rate (find 4) /. rate (find 1) in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "\nspeedup 4 workers vs 1: %.2fx (host parallelism: %d)\n" speedup cores;
  if cores < 4 then
    Printf.printf
      "note: requests are CPU-bound, so the pool can only scale up to the\n\
       host's available cores; run on >= 4 cores to see the full speedup.\n";
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"bench\": \"service\",\n  \"unit\": \"req/s\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"quick\": %b,\n  \"cores\": %d,\n  \"results\": [\n" quick cores);
    List.iteri
      (fun k ((workers, n, dt) as row) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"workers\": %d, \"requests\": %d, \"seconds\": %s, \"req_per_s\": %s}%s\n"
             workers n (json_float dt) (json_float (rate row))
             (if k = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b (Printf.sprintf "  \"speedup_4v1\": %s\n}\n" (json_float speedup));
    let oc = open_out "BENCH_service.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote BENCH_service.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Service load generator (result-cache proof)                          *)
(* ------------------------------------------------------------------ *)

(* Drives a 2-worker self-hosted daemon with closed-loop client fleets
   of increasing width — each client a domain with its own connection
   issuing estimate requests back to back, so offered load rises with
   the fleet — over two traffic shapes: a "repetitive" mix cycling a
   small pool of circuits (production-like: the same cones come back
   again and again) and a "fresh" mix where every request is a circuit
   the server has never seen. Each shape runs once against the result
   cache and once bypassing it. Per-request latencies give p50/p99, the
   best fleet width gives throughput at saturation, and the server's
   own [stats] response gives the hit ratio. The headline number is the
   repetitive-mix p50 improvement of [use] over [bypass] — what the
   cache actually buys on realistic traffic. *)
let service_loadgen ?(quick = false) ?(json = false) () =
  let workers = 2 in
  let fleet_widths = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let per_client = if quick then 6 else 24 in
  let gen seed =
    Dpa_logic.Io.to_string
      (Dpa_workload.Generator.combinational
         { small_profile with
           Dpa_workload.Generator.seed;
           n_inputs = 32;
           n_outputs = 10;
           gates_per_output = 22 })
  in
  let repetitive_pool = Array.of_list (List.map gen [ 21; 22; 23; 24 ]) in
  let total_requests =
    List.fold_left (fun acc w -> acc + (w * per_client)) 0 fleet_widths
  in
  let fresh_texts = Array.init total_requests (fun i -> gen (1000 + i)) in
  let request_line ~cache ~id text =
    Dpa_service.Protocol.request_line
      { Dpa_service.Protocol.id;
        request =
          Dpa_service.Protocol.Estimate
            { source = Dpa_service.Protocol.Inline { text; format = `Dln };
              input_prob = 0.5;
              phases = None;
              budget = None };
        cache }
  in
  let cache_stats ~socket =
    let c = Dpa_service.Client.connect socket in
    Fun.protect ~finally:(fun () -> Dpa_service.Client.close c) @@ fun () ->
    let r =
      Dpa_service.Client.request c
        (Dpa_service.Protocol.request_line
           { Dpa_service.Protocol.id = 999_999;
             request = Dpa_service.Protocol.Stats;
             cache = `Use })
    in
    match Dpa_service.Protocol.parse_response r with
    | Ok { Dpa_service.Protocol.ok = true; result; _ } -> (
      match Dpa_util.Jsonlite.member_opt "cache" result with
      | Some cache ->
        let n key =
          match Dpa_util.Jsonlite.member_opt key cache with
          | Some (Dpa_util.Jsonlite.Num f) -> int_of_float f
          | _ -> 0
        in
        (n "hits", n "misses")
      | None -> (0, 0))
    | _ -> (0, 0)
  in
  (* one server per (shape, mode) run so hit ratios don't bleed across
     combinations; levels sweep ascending inside it, cache warmth
     accumulating as it would in a long-lived daemon *)
  let run ~cache ~text_of =
    Dpa_service.Client.with_self_hosted ~workers (fun ~socket ->
        let offset = ref 0 in
        let levels =
          List.map
            (fun width ->
              let base = !offset in
              offset := base + (width * per_client);
              let t0 = Unix.gettimeofday () in
              let clients =
                List.init width (fun c ->
                    Domain.spawn (fun () ->
                        let conn = Dpa_service.Client.connect socket in
                        Fun.protect
                          ~finally:(fun () -> Dpa_service.Client.close conn)
                        @@ fun () ->
                        Array.init per_client (fun i ->
                            let g = base + (c * per_client) + i in
                            let line = request_line ~cache ~id:(g + 1) (text_of g) in
                            let s0 = Unix.gettimeofday () in
                            let r = Dpa_service.Client.request conn line in
                            let dt = Unix.gettimeofday () -. s0 in
                            (match Dpa_service.Protocol.parse_response r with
                            | Ok { Dpa_service.Protocol.ok = true; _ } -> ()
                            | _ -> failwith ("loadgen request failed: " ^ r));
                            dt)))
              in
              let latencies =
                List.concat_map (fun d -> Array.to_list (Domain.join d)) clients
              in
              let dt = Unix.gettimeofday () -. t0 in
              (width, latencies, dt))
            fleet_widths
        in
        let hits, misses = cache_stats ~socket in
        (levels, hits, misses))
  in
  let percentile latencies p =
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then Float.nan
    else a.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
  in
  Printf.printf
    "\n=== service load (cache proof): %d-worker daemon, fleets %s ===\n\n"
    workers
    (String.concat "/" (List.map string_of_int fleet_widths));
  let combos =
    [ ("repetitive", `Use, fun g -> repetitive_pool.(g mod Array.length repetitive_pool));
      ("repetitive", `Bypass, fun g -> repetitive_pool.(g mod Array.length repetitive_pool));
      ("fresh", `Use, fun g -> fresh_texts.(g));
      ("fresh", `Bypass, fun g -> fresh_texts.(g)) ]
  in
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("workload", Dpa_util.Table.Left);
          ("cache", Dpa_util.Table.Left);
          ("fleet", Dpa_util.Table.Right);
          ("req/s", Dpa_util.Table.Right);
          ("p50 ms", Dpa_util.Table.Right);
          ("p99 ms", Dpa_util.Table.Right);
          ("hit ratio", Dpa_util.Table.Right) ]
  in
  let results =
    List.map
      (fun (workload, cache, text_of) ->
        let levels, hits, misses = run ~cache ~text_of in
        let probes = hits + misses in
        let hit_ratio =
          if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes
        in
        let mode = match cache with `Use -> "use" | `Bypass -> "bypass" in
        let rows =
          List.map
            (fun (width, latencies, dt) ->
              let n = List.length latencies in
              let rate = float_of_int n /. Float.max dt 1e-9 in
              let p50 = 1e3 *. percentile latencies 50.0 in
              let p99 = 1e3 *. percentile latencies 99.0 in
              Dpa_util.Table.add_row t
                [ workload;
                  mode;
                  string_of_int width;
                  Printf.sprintf "%.1f" rate;
                  Printf.sprintf "%.3f" p50;
                  Printf.sprintf "%.3f" p99;
                  Printf.sprintf "%.2f" hit_ratio ];
              (width, n, dt, rate, p50, p99))
            levels
        in
        let pooled = List.concat_map (fun (_, l, _) -> l) levels in
        let saturation =
          List.fold_left (fun acc (_, _, _, r, _, _) -> Float.max acc r) 0.0 rows
        in
        ( workload,
          mode,
          rows,
          1e3 *. percentile pooled 50.0,
          1e3 *. percentile pooled 99.0,
          saturation,
          hit_ratio ))
      combos
  in
  Dpa_util.Table.print t;
  let pooled_p50 workload mode =
    let _, _, _, p50, _, _, _ =
      List.find (fun (w, m, _, _, _, _, _) -> w = workload && m = mode) results
    in
    p50
  in
  let sat workload mode =
    let _, _, _, _, _, s, _ =
      List.find (fun (w, m, _, _, _, _, _) -> w = workload && m = mode) results
    in
    s
  in
  let hit_ratio_of workload mode =
    let _, _, _, _, _, _, h =
      List.find (fun (w, m, _, _, _, _, _) -> w = workload && m = mode) results
    in
    h
  in
  let p50_speedup = pooled_p50 "repetitive" "bypass" /. pooled_p50 "repetitive" "use" in
  let sat_speedup = sat "repetitive" "use" /. sat "repetitive" "bypass" in
  Printf.printf
    "\nrepetitive mix: p50 %.3f ms -> %.3f ms (%.1fx), saturation %.1fx, hit ratio %.2f\n"
    (pooled_p50 "repetitive" "bypass")
    (pooled_p50 "repetitive" "use")
    p50_speedup sat_speedup
    (hit_ratio_of "repetitive" "use");
  if json then begin
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n  \"bench\": \"service_load\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"quick\": %b,\n  \"workers\": %d,\n  \"runs\": [\n" quick
         workers);
    List.iteri
      (fun k (workload, mode, rows, p50, p99, saturation, hit_ratio) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"workload\": \"%s\", \"cache\": \"%s\", \"p50_ms\": %s, \
              \"p99_ms\": %s, \"saturation_req_per_s\": %s, \"hit_ratio\": %s,\n\
             \     \"levels\": [\n"
             (json_escape workload) (json_escape mode) (json_float p50)
             (json_float p99) (json_float saturation) (json_float hit_ratio));
        List.iteri
          (fun j (width, n, dt, rate, lp50, lp99) ->
            Buffer.add_string b
              (Printf.sprintf
                 "      {\"fleet\": %d, \"requests\": %d, \"seconds\": %s, \
                  \"req_per_s\": %s, \"p50_ms\": %s, \"p99_ms\": %s}%s\n"
                 width n (json_float dt) (json_float rate) (json_float lp50)
                 (json_float lp99)
                 (if j = List.length rows - 1 then "" else ",")))
          rows;
        Buffer.add_string b
          (Printf.sprintf "    ]}%s\n" (if k = List.length results - 1 then "" else ","));
        ())
      results;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"hit_ratio_repetitive\": %s,\n  \"p50_speedup_repetitive\": %s,\n\
         \  \"saturation_speedup_repetitive\": %s\n}\n"
         (json_float (hit_ratio_of "repetitive" "use"))
         (json_float p50_speedup) (json_float sat_speedup));
    let oc = open_out "BENCH_service_load.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote BENCH_service_load.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Intra-request parallel speedup                                       *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of the two pool-driven hot paths — per-cone estimation and
   the speculative greedy search — at jobs = 1/2/4, plus the full MA/MP
   flow on the largest real netlist in data/. Every workload returns a
   float fingerprint that must be bitwise identical at every jobs count;
   the bench aborts if the determinism contract is ever violated, so the
   speedup numbers are only ever reported for identical answers. *)
let parallel_bench ?(quick = false) ?(json = false) () =
  let job_counts = [ 1; 2; 4 ] in
  let repeats = if quick then 1 else 3 in
  (* heavier than [small_profile] so per-cone BDD work dominates the
     pool's fan-out overhead *)
  let est_net =
    Dpa_synth.Opt.optimize
      (Dpa_workload.Generator.combinational
         { small_profile with
           Dpa_workload.Generator.seed = 19;
           n_inputs = 32;
           n_outputs = 12;
           gates_per_output = 24 })
  in
  let est_mapped =
    Dpa_domino.Mapped.map
      (Dpa_synth.Inverterless.realize est_net
         (Phase.all_positive (Netlist.num_outputs est_net)))
  in
  let est_probs = Array.make (Netlist.num_inputs est_net) 0.5 in
  let workloads =
    [ ("fig5.estimate", fun pool ->
        let r =
          Dpa_power.Engine.estimate ~par:pool ~input_probs:est_probs est_mapped
        in
        r.Dpa_power.Engine.report.Dpa_power.Estimate.total);
      ("fig6.greedy-optimize", fun pool ->
        let config =
          { (Dpa_phase.Optimizer.default_config ~input_probs:est_probs) with
            Dpa_phase.Optimizer.strategy = Dpa_phase.Optimizer.Greedy;
            par = Some pool }
        in
        (Dpa_phase.Optimizer.minimize_power config est_net).Dpa_phase.Optimizer.power) ]
    @
    let apex7 = "data/apex7_synthetic.blif" in
    if not (Sys.file_exists apex7) then []
    else begin
      let ic = open_in_bin apex7 in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Dpa_logic.Blif.of_string text with
      | Error _ -> []
      | Ok raw ->
        let net = Dpa_synth.Opt.optimize raw in
        let mapped =
          Dpa_domino.Mapped.map
            (Dpa_synth.Inverterless.realize net
               (Phase.all_positive (Netlist.num_outputs net)))
        in
        let probs = Array.make (Netlist.num_inputs net) 0.5 in
        [ ("apex7.estimate", fun pool ->
            let r = Dpa_power.Engine.estimate ~par:pool ~input_probs:probs mapped in
            r.Dpa_power.Engine.report.Dpa_power.Estimate.total);
          ("apex7.ma-vs-mp-flow", fun pool ->
            let config =
              { Dpa_core.Flow.default_config with Dpa_core.Flow.par = Some pool }
            in
            let r = Dpa_core.Flow.compare_ma_mp ~config raw in
            r.Dpa_core.Flow.mp.Dpa_core.Flow.power) ]
    end
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "\n=== intra-request parallel speedup (host parallelism: %d) ===\n\n" cores;
  let measure (name, f) =
    let runs =
      List.map
        (fun jobs ->
          Dpa_util.Par.with_pool ~jobs (fun pool ->
              let fingerprint = f pool in
              (* warmed: the line above already ran the workload once *)
              let best = ref infinity in
              for _ = 1 to repeats do
                let t0 = Unix.gettimeofday () in
                let v = f pool in
                let dt = Unix.gettimeofday () -. t0 in
                if Int64.bits_of_float v <> Int64.bits_of_float fingerprint then begin
                  Printf.eprintf
                    "parallel bench: %s not deterministic at jobs=%d (%h vs %h)\n"
                    name jobs v fingerprint;
                  exit 1
                end;
                if dt < !best then best := dt
              done;
              (jobs, !best, fingerprint)))
        job_counts
    in
    let _, t1, fp1 = List.hd runs in
    List.iter
      (fun (jobs, _, fp) ->
        if Int64.bits_of_float fp <> Int64.bits_of_float fp1 then begin
          Printf.eprintf
            "parallel bench: %s differs between jobs=1 and jobs=%d (%h vs %h)\n"
            name jobs fp fp1;
          exit 1
        end)
      runs;
    (name, List.map (fun (jobs, dt, _) -> (jobs, dt, t1 /. Float.max dt 1e-9)) runs)
  in
  let rows = List.map measure workloads in
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("workload", Dpa_util.Table.Left);
          ("jobs", Dpa_util.Table.Right);
          ("seconds", Dpa_util.Table.Right);
          ("speedup", Dpa_util.Table.Right) ]
  in
  List.iter
    (fun (name, runs) ->
      List.iter
        (fun (jobs, dt, speedup) ->
          Dpa_util.Table.add_row t
            [ name;
              string_of_int jobs;
              Printf.sprintf "%.4f" dt;
              Printf.sprintf "%.2fx" speedup ])
        runs)
    rows;
  Dpa_util.Table.print t;
  Printf.printf "\nall workloads bit-identical across jobs counts\n";
  if cores < 4 then
    Printf.printf
      "note: speedup is bounded by the host's available cores (%d here);\n\
       run on >= 4 cores to see the full effect.\n"
      cores;
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"bench\": \"parallel\",\n  \"unit\": \"s\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"quick\": %b,\n  \"cores\": %d,\n  \"results\": [\n" quick cores);
    let n_rows = List.length rows in
    List.iteri
      (fun i (name, runs) ->
        let n_runs = List.length runs in
        List.iteri
          (fun k (jobs, dt, speedup) ->
            Buffer.add_string b
              (Printf.sprintf
                 "    {\"workload\": \"%s\", \"jobs\": %d, \"seconds\": %s, \"speedup\": %s}%s\n"
                 (json_escape name) jobs (json_float dt) (json_float speedup)
                 (if i = n_rows - 1 && k = n_runs - 1 then "" else ",")))
          runs)
      rows;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out "BENCH_parallel.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote BENCH_parallel.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Bechamel suite                                                       *)
(* ------------------------------------------------------------------ *)

let perf ?(json = false) ?(metrics = false) () =
  Printf.printf "\n=== Bechamel micro-benchmarks (one per experiment) ===\n\n";
  let tests =
    Test.make_grouped ~name:"dpa"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("benchmark", Dpa_util.Table.Left);
          ("time/run", Dpa_util.Table.Right);
          ("r²", Dpa_util.Table.Right) ]
  in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let measured =
    List.map
      (fun (name, r) ->
        let ns =
          match Analyze.OLS.estimates r with Some [ e ] -> e | Some _ | None -> Float.nan
        in
        (name, ns, Analyze.OLS.r_square r))
      rows
  in
  List.iter
    (fun (name, ns, rsq) ->
      Dpa_util.Table.add_row t
        [ name;
          (if Float.is_nan ns then "n/a" else pretty_time ns);
          (match rsq with Some v -> Printf.sprintf "%.3f" v | None -> "-") ])
    measured;
  Dpa_util.Table.print t;
  if json then write_kernel_json ~metrics ~path:"BENCH_bdd_kernel.json" measured
  else if metrics then begin
    ignore (greedy_registry_snapshot ());
    print_string (Dpa_obs.Metrics.dump ())
  end

let quick ?(metrics = false) () =
  Printf.printf "=== quick smoke: each bench kernel once ===\n%!";
  List.iter
    (fun (name, f) ->
      Printf.printf "  %-35s %!" name;
      f ();
      Printf.printf "ok\n%!")
    kernels;
  Printf.printf "all %d kernels ok\n" (List.length kernels);
  if metrics then print_string (Dpa_obs.Metrics.dump ())

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all () =
  (* fig3 and fig4 share a regeneration; run each distinct experiment once *)
  Experiments.fig2 ();
  Experiments.fig3_4 ();
  Experiments.fig5 ();
  Experiments.fig6 ();
  Experiments.fig7 ();
  Experiments.fig8 ();
  Experiments.fig9 ();
  Experiments.fig10 ();
  Experiments.table1 ();
  Experiments.table1_probs ();
  Experiments.table2 ();
  Experiments.casestudy ();
  Experiments.seq_table ();
  Experiments.validate ();
  Experiments.ablation ();
  Experiments.sim_compile ();
  Experiments.reorder ();
  Experiments.corpus_sweep ();
  service_throughput ();
  service_loadgen ();
  parallel_bench ();
  perf ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  let json = List.mem "--json" flags
  and is_quick = List.mem "--quick" flags
  and metrics = List.mem "--metrics" flags in
  List.iter
    (fun f ->
      if f <> "--json" && f <> "--quick" && f <> "--metrics" then begin
        Printf.eprintf "unknown flag %S; flags: --json, --quick, --metrics\n" f;
        exit 1
      end)
    flags;
  let experiments =
    [ ("fig2", Experiments.fig2);
      ("fig3", Experiments.fig3_4);
      ("fig4", Experiments.fig3_4);
      ("fig5", Experiments.fig5);
      ("fig6", Experiments.fig6);
      ("fig7", Experiments.fig7);
      ("fig8", Experiments.fig8);
      ("fig9", Experiments.fig9);
      ("fig10", Experiments.fig10);
      ("table1", Experiments.table1);
      ("table1-probs", Experiments.table1_probs);
      ("table2", Experiments.table2);
      ("casestudy", Experiments.casestudy);
      ("seqtable", Experiments.seq_table);
      ("validate", Experiments.validate);
      ("ablation", Experiments.ablation);
      ("sim", fun () -> Experiments.sim_compile ~quick:is_quick ~json ());
      ("reorder", fun () -> Experiments.reorder ~quick:is_quick ~json ());
      ("corpus", fun () -> Experiments.corpus_sweep ~quick:is_quick ~json ());
      ("service", fun () -> service_throughput ~quick:is_quick ~json ());
      ("loadgen", fun () -> service_loadgen ~quick:is_quick ~json ());
      ("parallel", fun () -> parallel_bench ~quick:is_quick ~json ());
      ("perf", perf ~json ~metrics) ]
  in
  match names with
  | [] -> if is_quick then quick ~metrics () else all ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) experiments with
        | Some f -> if is_quick && name = "perf" then quick ~metrics () else f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
