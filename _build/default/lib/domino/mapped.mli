(** Technology mapping of an inverter-free block onto the domino library.

    Gates wider than the library limits are decomposed into balanced trees
    of legal cells (a 10-input AND under a 4-wide library becomes two
    levels of AND cells). The result — the {e mapped block} — is what the
    paper's "Size" columns count, what the power models price, and what the
    simulator and timing analysis run on. *)

type t

val map : ?library:Library.t -> Dpa_synth.Inverterless.t -> t
(** Default library: {!Library.default}. *)

val net : t -> Dpa_logic.Netlist.t
(** Width-limited monotone AND/OR network; inputs are PI literals, outputs
    carry original PO names (negative-phase POs complemented, as in
    {!Dpa_synth.Inverterless.block}). *)

val library : t -> Library.t

val assignment : t -> Dpa_synth.Phase.assignment

val literals : t -> (int * Dpa_synth.Inverterless.polarity) array
(** Per block-input position: (original PI position, polarity). *)

val cell_of_node : t -> int -> Cell.t option
(** The library cell a node maps to; [None] for inputs, constants and
    AND gates absorbed into a consuming compound cell. *)

val is_absorbed : t -> int -> bool
(** True for AND nodes folded into a compound cell's pulldown network:
    they remain in the netlist for evaluation but are not cells — no
    precharge node, no switching power, no gate delay of their own. *)

val input_inverters : t -> int
(** Static inverters feeding complemented PI literals. *)

val output_inverters : t -> int
(** Static inverters on negative-phase outputs. *)

val dynamic_cells : t -> int

val size : t -> int
(** Total standard cells = dynamic cells + boundary inverters — the
    paper's "Size" column. *)

val drive : t -> int -> float
(** Drive-strength multiplier of a node's cell (1.0 after mapping); the
    timing-driven resizing step scales it, and effective capacitance is
    [C_cell × drive]. *)

val set_drive : t -> int -> float -> unit

val eval_original_outputs : t -> bool array -> bool array
(** Functional oracle: original-PI vector in, original-PO values out. *)
