type t = {
  max_and_width : int;
  max_or_width : int;
  compound_legs : int;
  capacitance : Cell.t -> float;
  penalty : Cell.t -> float;
}

let default =
  {
    max_and_width = 4;
    max_or_width = 8;
    compound_legs = 0;
    capacitance = (fun _ -> 1.0);
    penalty = (fun _ -> 0.0);
  }

let with_compound ?(legs = 4) lib =
  if legs < 2 then invalid_arg "Library.with_compound: need at least 2 legs";
  { lib with compound_legs = legs }

let with_series_penalty ?(per_stage = 0.25) lib =
  let penalty cell =
    match cell with
    | Cell.Dynamic _ | Cell.Compound _ ->
      lib.penalty cell +. (per_stage *. float_of_int (Cell.series_transistors cell - 1))
    | Cell.Static_inverter -> lib.penalty cell
  in
  { lib with penalty }

let legal_width t kind w =
  w >= 2
  && match kind with Cell.And -> w <= t.max_and_width | Cell.Or -> w <= t.max_or_width

let cell_of_gate t g =
  match g with
  | Dpa_logic.Gate.And xs ->
    let w = Array.length xs in
    if legal_width t Cell.And w then Cell.dynamic Cell.And w
    else invalid_arg (Printf.sprintf "Library.cell_of_gate: AND width %d exceeds library" w)
  | Dpa_logic.Gate.Or xs ->
    let w = Array.length xs in
    if legal_width t Cell.Or w then Cell.dynamic Cell.Or w
    else invalid_arg (Printf.sprintf "Library.cell_of_gate: OR width %d exceeds library" w)
  | Dpa_logic.Gate.Input | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Buf _
  | Dpa_logic.Gate.Not _ | Dpa_logic.Gate.Xor _ ->
    invalid_arg "Library.cell_of_gate: only AND/OR gates map to domino cells"
