(** Domino cell library: width limits, capacitance and penalty models.

    The paper's experiments use [C_i = 1] and [P_i = 0] ("we effectively
    determined the phase assignment that minimized the total switching
    activity"); both hooks are kept configurable for the penalty ablation
    study. We read the paper's power expression [Σ S_i·C_i·P_i] as
    [Σ S_i·C_i·(1 + P_i)], the only reading under which [P_i = 0] yields
    pure switching activity rather than zero. *)

type t = {
  max_and_width : int;  (** series-stack limit of dynamic AND cells *)
  max_or_width : int;  (** parallel-leg limit of dynamic OR cells *)
  compound_legs : int;
      (** maximum pulldown legs of compound (OR-of-AND) cells; 0 disables
          compound mapping *)
  capacitance : Cell.t -> float;  (** output load [C_i] *)
  penalty : Cell.t -> float;  (** gate-type surcharge [P_i] ≥ 0 *)
}

val default : t
(** AND up to 4 wide, OR up to 8 wide, no compound cells, [C_i = 1],
    [P_i = 0] — the paper's experimental configuration. *)

val with_compound : ?legs:int -> t -> t
(** Enables compound OR-of-AND cells with up to [legs] pulldown legs
    (default 4). The mapper then absorbs single-fanout AND terms into the
    consuming OR's pulldown network — one dynamic node instead of
    several, eliminating the absorbed terms' precharge power. *)

val with_series_penalty : ?per_stage:float -> t -> t
(** Penalizes dynamic cells by [per_stage × (series_transistors - 1)]
    (default 0.25): the "performance penalty for an excessive number of
    AND gates" knob of §4.2, used in the ablation bench. *)

val cell_of_gate : t -> Dpa_logic.Gate.t -> Cell.t
(** Library cell implementing a (width-limited) AND/OR gate. Raises
    [Invalid_argument] for non-AND/OR gates or widths over the limit. *)

val legal_width : t -> Cell.kind -> int -> bool
