(** Domino standard cells.

    A domino cell (Fig. 1 of the paper) is an N-logic pulldown network with
    precharge/evaluate transistors and a static inverting output buffer.
    AND cells stack their inputs in series (slow, limited width); OR cells
    connect them in parallel (fast, wider allowed). Static inverters appear
    only at block boundaries. *)

type kind = And | Or

type t =
  | Dynamic of kind * int  (** width ≥ 2 *)
  | Compound of int list
      (** OR-of-ANDs in one dynamic stage: each entry is the series width
          of one pulldown leg (1 = a bare literal leg), ≥ 2 legs, sorted
          descending. Real domino libraries are full of these — a complex
          pulldown network costs one precharge node, so absorbing the AND
          terms removes their switching entirely. *)
  | Static_inverter

val dynamic : kind -> int -> t
(** Raises [Invalid_argument] for width < 2. *)

val compound : int list -> t
(** Raises [Invalid_argument] for fewer than 2 legs or a leg < 1. *)

val width : t -> int
(** Number of logic inputs (1 for the inverter). *)

val series_transistors : t -> int
(** Transistors in the longest pulldown stack, the quantity the paper's
    per-gate-type penalty [P_i] and the delay model key off: [width] for
    AND cells (plus the evaluate device, accounted in the delay model),
    1 for OR cells and the inverter, the deepest leg for compound
    cells. *)

val name : t -> string
(** E.g. ["DAND3"], ["DOR4"], ["DAO221"], ["INV"]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
