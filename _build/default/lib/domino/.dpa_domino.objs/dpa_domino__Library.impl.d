lib/domino/library.ml: Array Cell Dpa_logic Printf
