lib/domino/mapped.ml: Array Cell Dpa_logic Dpa_synth Hashtbl Library List
