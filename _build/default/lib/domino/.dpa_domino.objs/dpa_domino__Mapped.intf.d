lib/domino/mapped.mli: Cell Dpa_logic Dpa_synth Library
