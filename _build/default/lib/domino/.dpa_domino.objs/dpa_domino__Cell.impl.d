lib/domino/cell.ml: Format List Printf String
