lib/domino/cell.mli: Format
