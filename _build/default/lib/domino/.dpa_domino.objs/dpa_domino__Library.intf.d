lib/domino/library.mli: Cell Dpa_logic
