type kind = And | Or

type t = Dynamic of kind * int | Compound of int list | Static_inverter

let dynamic kind width =
  if width < 2 then invalid_arg (Printf.sprintf "Cell.dynamic: width %d < 2" width);
  Dynamic (kind, width)

let compound legs =
  if List.length legs < 2 then invalid_arg "Cell.compound: need at least 2 legs";
  if List.exists (fun w -> w < 1) legs then invalid_arg "Cell.compound: leg width < 1";
  Compound (List.sort (fun a b -> compare b a) legs)

let width = function
  | Dynamic (_, w) -> w
  | Compound legs -> List.fold_left ( + ) 0 legs
  | Static_inverter -> 1

let series_transistors = function
  | Dynamic (And, w) -> w
  | Dynamic (Or, _) -> 1
  | Compound legs -> List.fold_left max 1 legs
  | Static_inverter -> 1

let name = function
  | Dynamic (And, w) -> Printf.sprintf "DAND%d" w
  | Dynamic (Or, w) -> Printf.sprintf "DOR%d" w
  | Compound legs ->
    "DAO" ^ String.concat "" (List.map string_of_int legs)
  | Static_inverter -> "INV"

let equal a b = a = b

let pp ppf t = Format.pp_print_string ppf (name t)
