module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Inverterless = Dpa_synth.Inverterless

type t = {
  net : Netlist.t;
  lits : (int * Inverterless.polarity) array;
  assignment : Dpa_synth.Phase.assignment;
  lib : Library.t;
  mutable drives : float array;
  absorbed : bool array;  (* AND folded into a consuming compound cell *)
  compound : (int, int list) Hashtbl.t;  (* OR node -> pulldown leg widths *)
}

(* Split [ids] into a balanced tree of [op] gates of width ≤ [maxw]. *)
let rec tree_reduce net op maxw ids =
  let n = Array.length ids in
  if n = 1 then ids.(0)
  else if n <= maxw then Netlist.add_gate net (op ids)
  else begin
    (* chunk into ⌈n / maxw⌉ groups as evenly as possible *)
    let groups = (n + maxw - 1) / maxw in
    let parents =
      Array.init groups (fun g ->
          let start = g * n / groups in
          let stop = (g + 1) * n / groups in
          let chunk = Array.sub ids start (stop - start) in
          tree_reduce net op maxw chunk)
    in
    tree_reduce net op maxw parents
  end

let map ?(library = Library.default) inv =
  let src = Inverterless.block inv in
  let net = Netlist.create ~name:(Netlist.name src ^ "_mapped") () in
  let mapping = Array.make (Netlist.size src) (-1) in
  Netlist.iter_nodes
    (fun i g ->
      let remap xs = Array.map (fun x -> mapping.(x)) xs in
      mapping.(i) <-
        (match g with
        | Gate.Input -> Netlist.add_input ?name:(Netlist.node_name src i) net
        | Gate.Const b -> Netlist.add_gate net (Gate.Const b)
        | Gate.And xs ->
          if Array.length xs = 1 then mapping.(xs.(0))
          else
            tree_reduce net (fun ids -> Gate.And ids) library.Library.max_and_width (remap xs)
        | Gate.Or xs ->
          if Array.length xs = 1 then mapping.(xs.(0))
          else tree_reduce net (fun ids -> Gate.Or ids) library.Library.max_or_width (remap xs)
        | Gate.Buf _ | Gate.Not _ | Gate.Xor _ ->
          invalid_arg "Mapped.map: inverterless block must contain only AND/OR"))
    src;
  Array.iter (fun (po, d) -> Netlist.add_output net po mapping.(d)) (Netlist.outputs src);
  (* compound absorption: fold single-fanout AND terms into the consuming
     OR's pulldown network when the library offers OR-of-AND cells *)
  let n = Netlist.size net in
  let absorbed = Array.make n false in
  let compound = Hashtbl.create 16 in
  if library.Library.compound_legs >= 2 then begin
    let fanouts = Dpa_logic.Topo.fanout_counts net in
    let po_drivers = Array.make n false in
    Array.iter (fun (_, d) -> po_drivers.(d) <- true) (Netlist.outputs net);
    Netlist.iter_nodes
      (fun i g ->
        match g with
        | Gate.Or xs when Array.length xs <= library.Library.compound_legs ->
          let legs = ref [] and any_absorbed = ref false in
          let marks = ref [] in
          Array.iter
            (fun x ->
              match Netlist.gate net x with
              | Gate.And ws
                when fanouts.(x) = 1 && (not po_drivers.(x))
                     && Array.length ws <= library.Library.max_and_width ->
                legs := Array.length ws :: !legs;
                marks := x :: !marks;
                any_absorbed := true
              | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _
              | Gate.Or _ | Gate.Xor _ -> legs := 1 :: !legs)
            xs;
          if !any_absorbed then begin
            List.iter (fun x -> absorbed.(x) <- true) !marks;
            Hashtbl.replace compound i !legs
          end
        | Gate.Or _ | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _
        | Gate.Xor _ -> ())
      net
  end;
  {
    net;
    lits = Inverterless.literals inv;
    assignment = Inverterless.phases inv;
    lib = library;
    drives = Array.make n 1.0;
    absorbed;
    compound;
  }

let net t = t.net

let library t = t.lib

let assignment t = Array.copy t.assignment

let literals t = Array.copy t.lits

let cell_of_node t i =
  if t.absorbed.(i) then None
  else
    match Hashtbl.find_opt t.compound i with
    | Some legs -> Some (Cell.compound legs)
    | None -> (
      match Netlist.gate t.net i with
      | Gate.And _ | Gate.Or _ -> Some (Library.cell_of_gate t.lib (Netlist.gate t.net i))
      | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> None)

let is_absorbed t i = t.absorbed.(i)

let input_inverters t =
  Array.fold_left
    (fun acc (_, pol) ->
      match pol with Inverterless.Neg -> acc + 1 | Inverterless.Pos -> acc)
    0 t.lits

let output_inverters t = Dpa_synth.Phase.count_negative t.assignment

let dynamic_cells t =
  let count = ref 0 in
  Netlist.iter_nodes
    (fun i _ -> match cell_of_node t i with Some _ -> incr count | None -> ())
    t.net;
  !count

let size t = dynamic_cells t + input_inverters t + output_inverters t

let drive t i = t.drives.(i)

let set_drive t i d =
  if d <= 0.0 then invalid_arg "Mapped.set_drive: drive must be positive";
  t.drives.(i) <- d

let eval_original_outputs t vec =
  let literal_vec =
    Array.map
      (fun (pos, pol) ->
        match pol with
        | Inverterless.Pos -> vec.(pos)
        | Inverterless.Neg -> not vec.(pos))
      t.lits
  in
  let outs = Dpa_logic.Eval.outputs t.net literal_vec in
  Array.mapi
    (fun k v ->
      match t.assignment.(k) with
      | Dpa_synth.Phase.Positive -> v
      | Dpa_synth.Phase.Negative -> not v)
    outs
