(** Irredundant sum-of-products extraction from BDDs (Minato–Morreale).

    Computes a cube cover [C] with [L ≤ C ≤ U] in which no cube and no
    literal is redundant — the classical BDD-based two-level minimization
    underlying the "technology independent minimization" step of synthesis
    flows. With [L = U = f] the cover is exactly [f]. *)

type literal = {
  level : int;  (** BDD level of the variable *)
  positive : bool;
}

type cube = literal list
(** Conjunction of literals, levels strictly increasing; [[]] is the
    tautology cube. *)

val of_interval :
  Robdd.manager -> lower:Robdd.node -> upper:Robdd.node -> cube list
(** Raises [Invalid_argument] if [lower ∧ ¬upper] is satisfiable (the
    interval is empty). Memoized per call; linear-ish in the result. *)

val of_node : Robdd.manager -> Robdd.node -> cube list
(** [of_interval ~lower:f ~upper:f]. *)

val cube_to_bdd : Robdd.manager -> cube -> Robdd.node

val cover_to_bdd : Robdd.manager -> cube list -> Robdd.node

val literal_count : cube list -> int
(** Total literals — the classical two-level cost metric. *)
