(** Reduced ordered binary decision diagrams (Bryant 1986).

    A manager owns a fixed variable order over levels [0 … nvars-1]
    (level 0 is tested first / topmost). Nodes are interned in a unique
    table, so structural equality of functions is id equality. The manager
    also memoizes [ite], the single combinator all Boolean operations are
    built from. *)

type manager

type node = int
(** Node handle, valid for the creating manager only. *)

val create : nvars:int -> manager
(** Fresh manager with [nvars] variable levels. *)

val nvars : manager -> int

val bdd_false : node

val bdd_true : node

val var : manager -> int -> node
(** [var m level] is the single-variable function for [level]. Raises
    [Invalid_argument] outside [0 … nvars-1]. *)

val ite : manager -> node -> node -> node -> node
(** If-then-else: [ite m f g h = (f ∧ g) ∨ (¬f ∧ h)]. *)

val apply_and : manager -> node -> node -> node

val apply_or : manager -> node -> node -> node

val apply_xor : manager -> node -> node -> node

val neg : manager -> node -> node

val level : manager -> node -> int
(** Decision level of an internal node; raises on terminals. *)

val low : manager -> node -> node

val high : manager -> node -> node

val is_terminal : node -> bool

val eval : manager -> node -> bool array -> bool
(** [eval m f assignment] with [assignment] indexed by level. *)

val size : manager -> node -> int
(** Internal (non-terminal) node count of one function. *)

val shared_size : manager -> node list -> int
(** Internal node count of the union of the given functions' graphs — the
    quantity the paper's Fig. 10 compares across variable orders. *)

val total_nodes : manager -> int
(** Nodes ever created in the manager (memory-pressure metric). *)

val support : manager -> node -> int list
(** Levels the function actually depends on, ascending. *)

val to_dot : manager -> ?var_name:(int -> string) -> (string * node) list -> string
(** Graphviz rendering of the shared graph of the given labelled roots
    (dashed = low edge, solid = high edge). [var_name] labels decision
    levels, default ["x<level>"]. *)

val probability : manager -> float array -> node -> float
(** [probability m p f] is the exact probability that [f] evaluates true
    when level [l] is independently true with probability [p.(l)] — linear
    in the node count (memoized descent). *)
