lib/bdd/reorder.mli: Dpa_logic
