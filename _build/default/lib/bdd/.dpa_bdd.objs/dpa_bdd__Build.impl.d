lib/bdd/build.ml: Array Dpa_logic Hashtbl List Ordering Robdd
