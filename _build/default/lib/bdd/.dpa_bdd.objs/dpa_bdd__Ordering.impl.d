lib/bdd/ordering.ml: Array Dpa_logic Dpa_util Fun Hashtbl List
