lib/bdd/reorder.ml: Array Build
