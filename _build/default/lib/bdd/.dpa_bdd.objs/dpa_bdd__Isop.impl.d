lib/bdd/isop.ml: Hashtbl List Robdd
