lib/bdd/robdd.mli:
