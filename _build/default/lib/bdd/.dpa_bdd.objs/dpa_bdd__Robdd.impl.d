lib/bdd/robdd.ml: Array Buffer Dpa_util Hashtbl List Printf
