lib/bdd/isop.mli: Robdd
