lib/bdd/equiv.ml: Array Build Dpa_logic Fun Printf Robdd String
