lib/bdd/ordering.mli: Dpa_logic Dpa_util
