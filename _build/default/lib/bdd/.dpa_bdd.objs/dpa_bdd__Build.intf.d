lib/bdd/build.mli: Dpa_logic Robdd
