lib/bdd/equiv.mli: Dpa_logic
