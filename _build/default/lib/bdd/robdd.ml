module Vec = Dpa_util.Vec

type node = int

type manager = {
  nv : int;
  lvl : int Vec.t; (* per node: decision level; terminals use terminal_level *)
  lo : int Vec.t;
  hi : int Vec.t;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let bdd_false = 0
let bdd_true = 1
let terminal_level = max_int

let create ~nvars =
  let m =
    {
      nv = nvars;
      lvl = Vec.create ~dummy:0 ();
      lo = Vec.create ~dummy:0 ();
      hi = Vec.create ~dummy:0 ();
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
    }
  in
  (* terminals occupy ids 0 and 1 *)
  ignore (Vec.push m.lvl terminal_level);
  ignore (Vec.push m.lvl terminal_level);
  ignore (Vec.push m.lo 0);
  ignore (Vec.push m.lo 1);
  ignore (Vec.push m.hi 0);
  ignore (Vec.push m.hi 1);
  m

let nvars m = m.nv

let is_terminal n = n = bdd_false || n = bdd_true

let level m n =
  if is_terminal n then invalid_arg "Robdd.level: terminal node"
  else Vec.get m.lvl n

let low m n = Vec.get m.lo n

let high m n = Vec.get m.hi n

let node_level m n = Vec.get m.lvl n

let mk m l lo hi =
  if lo = hi then lo
  else
    let key = (l, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      let id = Vec.push m.lvl l in
      let id' = Vec.push m.lo lo in
      let id'' = Vec.push m.hi hi in
      assert (id = id' && id = id'');
      Hashtbl.replace m.unique key id;
      id

let var m l =
  if l < 0 || l >= m.nv then invalid_arg (Printf.sprintf "Robdd.var: level %d out of range" l);
  mk m l bdd_false bdd_true

(* Shannon cofactors of [n] with respect to level [l] (l <= level of n). *)
let cofactors m l n =
  if is_terminal n || node_level m n > l then n, n else low m n, high m n

let rec ite m f g h =
  if f = bdd_true then g
  else if f = bdd_false then h
  else if g = h then g
  else if g = bdd_true && h = bdd_false then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some id -> id
    | None ->
      let l =
        min (node_level m f) (min (node_level m g) (node_level m h))
      in
      let f0, f1 = cofactors m l f in
      let g0, g1 = cofactors m l g in
      let h0, h1 = cofactors m l h in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let id = mk m l r0 r1 in
      Hashtbl.replace m.ite_cache key id;
      id
  end

let apply_and m a b = ite m a b bdd_false

let apply_or m a b = ite m a bdd_true b

let neg m a = ite m a bdd_false bdd_true

let apply_xor m a b = ite m a (neg m b) b

let rec eval m f assignment =
  if f = bdd_true then true
  else if f = bdd_false then false
  else if assignment.(level m f) then eval m (high m f) assignment
  else eval m (low m f) assignment

let visit_reachable m roots f =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if (not (is_terminal n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      f n;
      go (low m n);
      go (high m n)
    end
  in
  List.iter go roots

let shared_size m roots =
  let count = ref 0 in
  visit_reachable m roots (fun _ -> incr count);
  !count

let size m root = shared_size m [ root ]

let total_nodes m = Vec.length m.lvl

let support m root =
  let levels = Hashtbl.create 16 in
  visit_reachable m [ root ] (fun n -> Hashtbl.replace levels (level m n) ());
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) levels [])

let to_dot m ?(var_name = Printf.sprintf "x%d") roots =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph robdd {\n  rankdir=TB;\n";
  Buffer.add_string buf "  t0 [shape=box,label=\"0\"];\n  t1 [shape=box,label=\"1\"];\n";
  visit_reachable m (List.map snd roots) (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" n (var_name (level m n)));
      let edge child style =
        if is_terminal child then
          Buffer.add_string buf (Printf.sprintf "  n%d -> t%d [style=%s];\n" n child style)
        else Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=%s];\n" n child style)
      in
      edge (low m n) "dashed";
      edge (high m n) "solid");
  List.iter
    (fun (name, root) ->
      Buffer.add_string buf (Printf.sprintf "  r_%s [shape=plaintext,label=\"%s\"];\n" name name);
      if is_terminal root then
        Buffer.add_string buf (Printf.sprintf "  r_%s -> t%d;\n" name root)
      else Buffer.add_string buf (Printf.sprintf "  r_%s -> n%d;\n" name root))
    roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let probability m probs root =
  if Array.length probs <> m.nv then
    invalid_arg "Robdd.probability: probability vector length mismatch";
  let memo = Hashtbl.create 64 in
  let rec go n =
    if n = bdd_true then 1.0
    else if n = bdd_false then 0.0
    else
      match Hashtbl.find_opt memo n with
      | Some p -> p
      | None ->
        let pv = probs.(level m n) in
        let p = (pv *. go (high m n)) +. ((1.0 -. pv) *. go (low m n)) in
        Hashtbl.replace memo n p;
        p
  in
  go root
