type result = {
  order : int array;
  nodes : int;
  initial_nodes : int;
  swaps_accepted : int;
  passes : int;
}

let cost net order = Build.shared_all_size net (Build.of_netlist ~order net)

let refine ?(max_passes = 8) net order0 =
  let order = Array.copy order0 in
  let n = Array.length order in
  let best = ref (cost net order) in
  let initial_nodes = !best in
  let swaps = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for l = 0 to n - 2 do
      let tmp = order.(l) in
      order.(l) <- order.(l + 1);
      order.(l + 1) <- tmp;
      let c = cost net order in
      if c < !best then begin
        best := c;
        incr swaps;
        improved := true
      end
      else begin
        (* revert *)
        let tmp = order.(l) in
        order.(l) <- order.(l + 1);
        order.(l + 1) <- tmp
      end
    done
  done;
  { order; nodes = !best; initial_nodes; swaps_accepted = !swaps; passes = !passes }
