type literal = {
  level : int;
  positive : bool;
}

type cube = literal list

let cube_to_bdd m cube =
  List.fold_left
    (fun acc { level; positive } ->
      let v = Robdd.var m level in
      Robdd.apply_and m acc (if positive then v else Robdd.neg m v))
    Robdd.bdd_true cube

let cover_to_bdd m cubes =
  List.fold_left (fun acc c -> Robdd.apply_or m acc (cube_to_bdd m c)) Robdd.bdd_false cubes

let literal_count cubes = List.fold_left (fun acc c -> acc + List.length c) 0 cubes

(* Cofactors of [n] with respect to [level] (which is ≤ the node's own
   level for every node visited by the recursion). *)
let cofactors m level n =
  if Robdd.is_terminal n || Robdd.level m n > level then (n, n)
  else (Robdd.low m n, Robdd.high m n)

let top_level m a b =
  let lv n = if Robdd.is_terminal n then max_int else Robdd.level m n in
  min (lv a) (lv b)

(* Minato-Morreale: returns the cube list and the BDD of its function. *)
let rec isop m memo lower upper =
  if lower = Robdd.bdd_false then ([], Robdd.bdd_false)
  else if upper = Robdd.bdd_true then ([ [] ], Robdd.bdd_true)
  else begin
    let key = (lower, upper) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let v = top_level m lower upper in
      let l0, l1 = cofactors m v lower in
      let u0, u1 = cofactors m v upper in
      (* cubes that need the negative literal: minterms of l0 not
         coverable by a cube valid in both halves *)
      let cubes0, g0 = isop m memo (Robdd.apply_and m l0 (Robdd.neg m u1)) u0 in
      let cubes1, g1 = isop m memo (Robdd.apply_and m l1 (Robdd.neg m u0)) u1 in
      (* what remains uncovered must be covered by v-free cubes *)
      let rest0 = Robdd.apply_and m l0 (Robdd.neg m g0) in
      let rest1 = Robdd.apply_and m l1 (Robdd.neg m g1) in
      let lower' = Robdd.apply_or m rest0 rest1 in
      let upper' = Robdd.apply_and m u0 u1 in
      let cubes2, g2 = isop m memo lower' upper' in
      let neg_lit = { level = v; positive = false } in
      let pos_lit = { level = v; positive = true } in
      let cubes =
        List.map (fun c -> neg_lit :: c) cubes0
        @ List.map (fun c -> pos_lit :: c) cubes1
        @ cubes2
      in
      let var = Robdd.var m v in
      let func =
        Robdd.apply_or m
          (Robdd.apply_or m
             (Robdd.apply_and m (Robdd.neg m var) g0)
             (Robdd.apply_and m var g1))
          g2
      in
      let r = (cubes, func) in
      Hashtbl.replace memo key r;
      r
  end

let of_interval m ~lower ~upper =
  if Robdd.apply_and m lower (Robdd.neg m upper) <> Robdd.bdd_false then
    invalid_arg "Isop.of_interval: lower is not contained in upper";
  let memo = Hashtbl.create 64 in
  let cubes, func = isop m memo lower upper in
  (* internal consistency: lower ≤ func ≤ upper *)
  assert (Robdd.apply_and m lower (Robdd.neg m func) = Robdd.bdd_false);
  assert (Robdd.apply_and m func (Robdd.neg m upper) = Robdd.bdd_false);
  cubes

let of_node m f = of_interval m ~lower:f ~upper:f
