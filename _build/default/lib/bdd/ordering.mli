(** BDD variable-ordering heuristics (paper §4.2.2, Fig. 10).

    An ordering is a permutation [ord] of input {e positions} (indices into
    [Netlist.inputs]): [ord.(level)] is the input placed at BDD level
    [level] (level 0 on top, tested first).

    The paper's heuristic: traverse gates topologically, visiting same-level
    gates in decreasing fanout-cone cardinality, record the order in which
    primary inputs are {e first} used, and place variables in the {e
    reverse} of that order — inputs used early (near the PIs, large fanout
    cones) end up at the bottom of the BDD. *)

val reverse_topological : Dpa_logic.Netlist.t -> int array
(** The paper's ordering. Inputs never referenced by any gate are appended
    at the bottom. *)

val topological : Dpa_logic.Netlist.t -> int array
(** First-visit order itself (no reversal) — the middle row of Fig. 10,
    used as a comparison point. *)

val declaration : Dpa_logic.Netlist.t -> int array
(** Inputs in declaration order — the naive baseline. *)

val disturbed : Dpa_logic.Netlist.t -> int array
(** The paper's "disturbed signal grouping": the reverse-topological order
    with the bottom variable hoisted to second position, breaking the
    natural grouping (Fig. 10 bottom row). *)

val shuffled : Dpa_util.Rng.t -> Dpa_logic.Netlist.t -> int array
(** Uniform random order, for ablation studies. *)
