type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Separator -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iter2
      (fun (w, a) c -> Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      (List.combine widths t.aligns)
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  line t.headers;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> line cells)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int = string_of_int
