(** Fixed-universe bit sets.

    Transitive-fanin cones and cone overlaps ([O(i,j)] in the paper's cost
    function) are computed over node ids of a fixed netlist, so a dense
    bitset gives linear-time unions and intersections. *)

type t

val create : int -> t
(** [create n] is the empty subset of [{0, …, n-1}]. *)

val universe_size : t -> int

val copy : t -> t

val add : t -> int -> unit

val remove : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. Universes must match. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [|a ∩ b|] without allocating the intersection. *)

val iter : (int -> unit) -> t -> unit
(** Visits members in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val equal : t -> t -> bool
