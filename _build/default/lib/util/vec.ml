type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i t.len)

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy arr =
  let t = create ~capacity:(max (Array.length arr) 1) ~dummy () in
  Array.iter (fun x -> ignore (push t x)) arr;
  t

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0
