(** Small statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percent_change : from:float -> to_:float -> float
(** [(from - to_) / from * 100]. The paper's "% Pwr Sav." and (negated)
    "% Area Pen." columns. Returns 0 when [from = 0]. *)

val relative_error : expected:float -> actual:float -> float
(** [|expected - actual| / max |expected| eps]. *)

val clamp : lo:float -> hi:float -> float -> float
