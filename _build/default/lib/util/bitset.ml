type t = {
  words : Bytes.t; (* packed little-endian 64-bit words *)
  n : int;
}

let bits_per_word = 64

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  assert (n >= 0);
  { words = Bytes.make (8 * max (word_count n) 1) '\000'; n }

let universe_size t = t.n

let copy t = { words = Bytes.copy t.words; n = t.n }

let get_word t i = Bytes.get_int64_le t.words (8 * i)

let set_word t i v = Bytes.set_int64_le t.words (8 * i) v

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: %d outside universe [0,%d)" i t.n)

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  set_word t w (Int64.logor (get_word t w) (Int64.shift_left 1L b))

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  set_word t w (Int64.logand (get_word t w) (Int64.lognot (Int64.shift_left 1L b)))

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  Int64.logand (Int64.shift_right_logical (get_word t w) b) 1L = 1L

let popcount x =
  let rec go x acc = if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
  go x 0

let cardinal t =
  let c = ref 0 in
  for i = 0 to word_count t.n - 1 do
    c := !c + popcount (get_word t i)
  done;
  !c

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let union_into dst src =
  same_universe dst src;
  for i = 0 to word_count dst.n - 1 do
    set_word dst i (Int64.logor (get_word dst i) (get_word src i))
  done

let inter_cardinal a b =
  same_universe a b;
  let c = ref 0 in
  for i = 0 to word_count a.n - 1 do
    c := !c + popcount (Int64.logand (get_word a i) (get_word b i))
  done;
  !c

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let equal a b = a.n = b.n && Bytes.equal a.words b.words
