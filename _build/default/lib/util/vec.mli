(** Growable arrays.

    Netlists, BDD node tables and gate lists all grow monotonically; this is
    the shared backing structure. Indices are stable once assigned. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [dummy] fills unused capacity and
    is never observable through the API. *)

val length : 'a t -> int

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
(** Bounds-checked access. *)

val set : 'a t -> int -> 'a -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array of the live elements. *)

val of_array : dummy:'a -> 'a array -> 'a t

val clear : 'a t -> unit
(** Removes all elements; capacity is retained. *)
