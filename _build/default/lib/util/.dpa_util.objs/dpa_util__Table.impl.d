lib/util/table.ml: Buffer List Printf String
