lib/util/stats.mli:
