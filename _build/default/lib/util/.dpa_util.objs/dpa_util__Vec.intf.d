lib/util/vec.mli:
