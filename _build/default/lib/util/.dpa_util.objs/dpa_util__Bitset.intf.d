lib/util/bitset.mli:
