lib/util/bitset.ml: Bytes Int64 List Printf
