lib/util/table.mli:
