lib/util/rng.mli:
