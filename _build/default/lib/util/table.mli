(** Plain-text table rendering for experiment reports.

    Every reproduced table/figure is printed as an aligned ASCII table so
    the bench output can be compared side by side with the paper. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Row length must match the number of columns. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 2 decimals. *)

val cell_int : int -> string
