let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percent_change ~from ~to_ =
  if from = 0.0 then 0.0 else (from -. to_) /. from *. 100.0

let relative_error ~expected ~actual =
  let denom = Float.max (Float.abs expected) 1e-12 in
  Float.abs (expected -. actual) /. denom

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)
