(** Seeded synthetic circuit generator.

    The MCNC benchmarks and Intel control blocks of the paper's tables are
    not redistributable, so experiments run on synthetic multi-level
    networks that reproduce the structural features phase assignment is
    sensitive to:

    - each output's cone draws from a sliding {e window} of inputs, so
      cone supports are bounded (keeping exact BDD probabilities cheap)
      while neighbouring cones overlap — the [O(i,j)] duplication term;
    - a pool of shared subfunctions is reused across outputs (trapped
      inverters and duplication appear exactly as in real netlists);
    - AND/OR bias and per-edge inverter probability skew internal signal
      probabilities away from ½, which is what makes phase choice matter. *)

type params = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;  (** window width (inputs per output cone) *)
  gates_per_output : int;
  max_fanin : int;  (** 2 … k *)
  and_bias : float;  (** probability a new gate is AND *)
  bias_spread : float;
      (** alternating per-output offset applied to [and_bias] (even
          outputs lean OR, odd outputs lean AND), giving neighbouring
          cones opposed probability skews *)
  inverter_prob : float;  (** probability an operand edge is complemented *)
  reuse_fraction : float;  (** share of operands drawn from earlier cones *)
}

val default : params
(** 16 inputs, 4 outputs, support 8, 10 gates/output, fanin ≤ 3,
    balanced AND/OR, no bias spread, inverter 0.25, reuse 0.3, seed 1. *)

val combinational : params -> Dpa_logic.Netlist.t
(** Deterministic in [params] (including [seed]). Outputs are named
    [po0 … poN-1] and are always proper gates (never a bare input or
    constant). *)

val sequential : params -> n_ffs:int -> Dpa_seq.Seq_netlist.t
(** Adds [n_ffs] flip-flops whose Q pins participate as extra inputs and
    whose D pins tap random internal nodes, yielding s-graphs with real
    cycle structure. *)
